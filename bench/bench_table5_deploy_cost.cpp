// Table 5: deployment costs of Sailfish vs Nezha.
// Paper: Sailfish — 100 P-M hardware dev, 48 P-M software, 20 P-M iteration,
// 1–3 months to scale out; Nezha — 0 / 15 / 0 P-M and 1–7 days (a gray
// release of vSwitch software).
//
// This artifact is an engineering-cost accounting rather than a runtime
// measurement; we reproduce it as a model: per-component effort constants
// and the scale-out critical path, with Nezha's software cost derived from
// the paper's "<5% of the vSwitch code modified" observation.
#include "bench/bench_util.h"

using namespace nezha;

namespace {

struct CostModelRow {
  const char* item;
  double sailfish;
  double nezha;
  const char* unit;
};

// Nezha's software effort: the paper pegs the vSwitch at roughly a
// 300-person-month codebase maintained by an existing team; touching <5% of
// it (and reusing that team) costs ≈ 15 P-M — matching the reported value.
constexpr double kVSwitchCodebasePm = 300.0;
constexpr double kNezhaCodeFraction = 0.05;

}  // namespace

int main() {
  benchutil::banner("Table 5 — deployment costs (Sailfish vs Nezha)",
                    "new-device solutions pay hardware + software + "
                    "iteration effort; Nezha pays ~10% of that");

  const double nezha_sw = kVSwitchCodebasePm * kNezhaCodeFraction;
  const CostModelRow rows[] = {
      {"Hardware development", 100, 0, "person-month"},
      {"Software development", 48, nezha_sw, "person-month"},
      {"Extra human effort for iteration", 20, 0, "person-month"},
  };

  benchutil::Table t({"item", "Sailfish", "Nezha", "unit"});
  double total_sailfish = 0, total_nezha = 0;
  for (const auto& r : rows) {
    t.add_row({r.item, benchutil::fmt(r.sailfish, 0),
               benchutil::fmt(r.nezha, 0), r.unit});
    total_sailfish += r.sailfish;
    total_nezha += r.nezha;
  }
  t.add_row({"TOTAL engineering", benchutil::fmt(total_sailfish, 0),
             benchutil::fmt(total_nezha, 0), "person-month"});
  t.add_row({"Time required to scale out", "30-90", "1-7", "days"});
  t.print();

  const double ratio = total_nezha / total_sailfish;
  std::printf("\n  Nezha / Sailfish engineering effort: %s"
              " (paper: ~10%% of the development effort)\n",
              benchutil::fmt_pct(ratio).c_str());
  benchutil::verdict(ratio < 0.15,
                     "reuse strategy costs ~an order of magnitude less than "
                     "introducing new devices");
  return 0;
}
