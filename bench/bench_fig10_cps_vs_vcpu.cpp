// Fig 10: CPS under different #vCPU cores in the VM, with/without Nezha.
// Paper: without Nezha the vSwitch caps CPS regardless of VM size; with
// Nezha CPS grows with vCPUs but sublinearly — VM kernel locks and
// connection-management limits now bind.
#include "bench/bench_util.h"
#include "src/core/testbed.h"
#include "src/workload/cps_workload.h"

using namespace nezha;

namespace {

constexpr std::uint32_t kVpc = 7;
constexpr tables::VnicId kServer = 100;
constexpr int kClients = 4;

double measure_cps(int server_vcpus, bool with_nezha) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 40;
  cfg.vswitch.cpu.cores = 2;
  cfg.vswitch.cpu.hz_per_core = 0.25e9;
  // Keep the buffer-in-packets comparable to the full-scale SmartNIC: the
  // queue bound scales inversely with the CPU slow-down.
  cfg.vswitch.cpu.max_queue_delay = common::milliseconds(16);
  cfg.vswitch.cost = tables::CostModel::production();
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  core::Testbed bed(cfg);

  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  server.profile.synthetic_rule_bytes = 8 << 20;
  bed.add_vnic(30, server);

  std::vector<std::unique_ptr<workload::CpsWorkload>> clients;
  for (int c = 0; c < kClients; ++c) {
    vswitch::VnicConfig client;
    client.id = static_cast<tables::VnicId>(c + 1);
    client.addr = tables::OverlayAddr{
        kVpc, net::Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(c + 1))};
    const std::size_t client_switch = 32 + static_cast<std::size_t>(c);
    bed.add_vnic(client_switch, client);
    workload::CpsWorkloadConfig w;
    w.concurrency = 160;  // closed loop (netperf TCP_CRR style)
    w.seed = 200 + static_cast<std::uint64_t>(c);
    w.server_kernel = workload::VmKernelConfig{
        .vcpus = server_vcpus, .cps_per_core = 16500, .contention = 0.045};
    w.client_kernel =
        workload::VmKernelConfig{.vcpus = 64, .cps_per_core = 30000};
    clients.push_back(std::make_unique<workload::CpsWorkload>(
        bed, client_switch, client.id, 30, kServer, w));
  }

  if (with_nezha) {
    (void)bed.controller().trigger_offload(kServer, 8);
    bed.run_for(common::seconds(4));
  }
  const common::TimePoint t0 = bed.loop().now();
  for (auto& c : clients) c->start();
  bed.run_for(common::seconds(3));
  for (auto& c : clients) c->stop();
  double cps = 0;
  for (auto& c : clients) {
    cps += c->cps_over(t0 + common::seconds(1), t0 + common::seconds(3));
  }
  return cps;
}

}  // namespace

int main() {
  benchutil::banner("Figure 10 — CPS vs #vCPU cores in the VM",
                    "without Nezha: flat (vSwitch-bound); with Nezha: grows "
                    "sublinearly (VM kernel-bound)");

  benchutil::Table t({"#vCPUs", "CPS w/o Nezha", "CPS w/ Nezha",
                      "w/ / w/o"});
  double base8 = 0, base64 = 0, nezha8 = 0, nezha64 = 0;
  for (int vcpus : {8, 16, 32, 48, 64}) {
    const double without = measure_cps(vcpus, false);
    const double with = measure_cps(vcpus, true);
    if (vcpus == 8) { base8 = without; nezha8 = with; }
    if (vcpus == 64) { base64 = without; nezha64 = with; }
    t.add_row({std::to_string(vcpus), benchutil::fmt_si(without),
               benchutil::fmt_si(with), benchutil::fmt(with / without, 2) + "x"});
  }
  t.print();

  const double without_growth = base64 / base8;
  const double with_growth = nezha64 / nezha8;
  std::printf("\n  CPS growth 8→64 vCPUs: w/o Nezha %.2fx (paper: ~flat),"
              " w/ Nezha %.2fx (paper: sublinear, <8x)\n",
              without_growth, with_growth);
  benchutil::verdict(without_growth < 1.2, "without Nezha the vSwitch caps "
                                           "CPS regardless of VM size");
  benchutil::verdict(with_growth > 1.5 && with_growth < 8.0,
                     "with Nezha CPS follows the VM but sublinearly "
                     "(kernel locks)");
  return 0;
}
