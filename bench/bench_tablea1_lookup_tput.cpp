// Table A1: rule-table lookup throughput (Mpps) vs packet size × #ACL rules.
// Paper (8-core SmartNIC): 6.612M at 64B/0 rules, degrading to 4.762M at
// 512B/1000 rules — throughput falls with both rule count (ACL scan cost)
// and packet size (NIC→vSwitch data movement).
//
// Two reproductions: (a) the cost-model throughput at the paper's hardware
// point (20e9 cycles/s), which is the series the table reports; (b) a live
// host microbenchmark of RuleTableSet::lookup as a sanity check that the
// real code's rule-count scaling matches the model's.
#include <chrono>

#include "bench/bench_util.h"
#include "src/tables/acl.h"
#include "src/tables/cost_model.h"
#include "src/tables/rule_set.h"

using namespace nezha;

namespace {

double model_mpps(const tables::CostModel& cost, std::size_t rules,
                  std::size_t pkt_bytes) {
  const double per_pkt = cost.slow_path_chain_cycles(rules, 5, true) +
                         cost.parse_cycles + cost.session_insert_cycles +
                         cost.encap_cycles +
                         cost.per_byte_cycles * static_cast<double>(pkt_bytes);
  return 20e9 / per_pkt / 1e6;  // 8 cores x 2.5GHz
}

tables::RuleTableSet make_rules(std::size_t acl_rules) {
  tables::RuleTableSet rs;
  for (std::size_t i = 0; i < acl_rules; ++i) {
    rs.acl().add_rule(tables::AclRule{
        .priority = static_cast<std::uint32_t>(i + 10),
        .dst = tables::Prefix{net::Ipv4Addr(10, 1, static_cast<uint8_t>(i),
                                            0),
                              24},
        .dst_ports = tables::PortRange{1000, 2000}});
  }
  rs.commit_update();
  return rs;
}

double host_lookups_per_sec(std::size_t acl_rules) {
  auto rs = make_rules(acl_rules);
  net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 250, 0, 2),
                    40000, 80, net::IpProto::kTcp};
  constexpr int kIters = 200000;
  volatile std::uint32_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    ft.src_port = static_cast<std::uint16_t>(1024 + i % 60000);
    sink += static_cast<std::uint32_t>(
        rs.lookup(ft).tx.acl_verdict == flow::Verdict::kAccept);
  }
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  return kIters / elapsed;
}

}  // namespace

int main() {
  benchutil::banner("Table A1 — rule-table lookup throughput (Mpps)",
                    "6.612M @ 64B/0 rules → 4.762M @ 512B/1000 rules");

  const tables::CostModel cost;  // Table A1 calibration (microbench tables)
  const std::size_t pkt_sizes[] = {64, 128, 256, 512};
  const std::size_t rule_counts[] = {0, 1, 8, 64, 100, 1000};
  const double paper[4][6] = {
      {6.612, 6.609, 6.333, 5.973, 5.966, 5.422},
      {6.543, 6.455, 6.303, 5.826, 5.702, 5.365},
      {6.415, 6.341, 6.030, 5.430, 5.685, 5.228},
      {5.985, 5.925, 5.455, 5.258, 5.035, 4.762},
  };

  benchutil::Table t({"pkt size", "#rules", "paper (Mpps)", "model (Mpps)"});
  double worst_rel_err = 0;
  for (int p = 0; p < 4; ++p) {
    for (int r = 0; r < 6; ++r) {
      const double measured = model_mpps(cost, rule_counts[r], pkt_sizes[p]);
      const double rel_err =
          std::abs(measured - paper[p][r]) / paper[p][r];
      worst_rel_err = std::max(worst_rel_err, rel_err);
      t.add_row({std::to_string(pkt_sizes[p]) + "B",
                 std::to_string(rule_counts[r]), benchutil::fmt(paper[p][r], 3),
                 benchutil::fmt(measured, 3)});
    }
  }
  t.print();
  std::printf("\n  Worst cell relative error vs paper: %s\n",
              benchutil::fmt_pct(worst_rel_err).c_str());
  // The paper's table itself is non-monotonic in places (e.g. 256B row:
  // 5.430 @ 64 rules but 5.685 @ 100) — measurement noise a smooth cost
  // model cannot chase; 25% bounds every cell, most are within 10%.
  benchutil::verdict(worst_rel_err < 0.25,
                     "model within 25% of every Table A1 cell (paper data "
                     "is non-monotonic in places)");

  // Live microbenchmark: verify the real lookup code degrades with rule
  // count the way the model says (ratio 0 → 1000 rules ≈ 6.6/5.4 ≈ 1.22).
  std::printf("\n  Host microbenchmark of RuleTableSet::lookup:\n");
  benchutil::Table h({"#rules", "host lookups/s"});
  const double base = host_lookups_per_sec(0);
  double with_1000 = 0;
  for (std::size_t rules : {0ul, 100ul, 1000ul}) {
    const double rate = rules == 0 ? base : host_lookups_per_sec(rules);
    if (rules == 1000) with_1000 = rate;
    h.add_row({std::to_string(rules), benchutil::fmt_si(rate)});
  }
  h.print();
  benchutil::verdict(base > with_1000,
                     "real lookup code slows with ACL rule count");
  return 0;
}
