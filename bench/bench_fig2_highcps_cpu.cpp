// Fig 2: CPU usage of high-CPS VMs and their vSwitches.
// Paper: every high-CPS VM saturates its vSwitch (>95% CPU) while the VMs
// themselves are lightly loaded (90% below 60% CPU) — the resource-gap
// motivation for Nezha.
#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/workload/fleet_model.h"

using namespace nezha;

int main() {
  benchutil::banner(
      "Figure 2 — CPU usage of high-CPS VMs vs their vSwitches",
      "vSwitch CPU > 95% in all cases; 90% of the VMs below 60% CPU");

  workload::FleetModel model(
      workload::FleetModelConfig{.num_vswitches = 10000, .seed = 2});
  const auto pairs = model.sample_high_cps_pairs(10000);

  common::Percentiles vm, vs;
  std::size_t vm_below_60 = 0, vs_above_95 = 0;
  for (const auto& p : pairs) {
    vm.add(p.vm_cpu * 100);
    vs.add(p.vswitch_cpu * 100);
    if (p.vm_cpu < 0.60) ++vm_below_60;
    if (p.vswitch_cpu > 0.95) ++vs_above_95;
  }

  benchutil::Table t({"percentile of high-CPS VMs", "VM CPU (%)",
                      "vSwitch CPU (%)"});
  for (double q : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    t.add_row({"P" + benchutil::fmt(q, 0), benchutil::fmt(vm.percentile(q), 1),
               benchutil::fmt(vs.percentile(q), 1)});
  }
  t.print();

  const double frac_vm = static_cast<double>(vm_below_60) / pairs.size();
  const double frac_vs = static_cast<double>(vs_above_95) / pairs.size();
  std::printf("\n  VMs below 60%% CPU: %s (paper: 90%%)\n",
              benchutil::fmt_pct(frac_vm).c_str());
  std::printf("  vSwitches above 95%% CPU: %s (paper: 100%%)\n",
              benchutil::fmt_pct(frac_vs).c_str());
  benchutil::verdict(frac_vm > 0.85 && frac_vm < 0.95 && frac_vs > 0.999,
                     "high-CPS VMs idle while their vSwitches saturate");
  return 0;
}
