// Fig 14: impact of an FE crash on the region-level packet loss rate.
// Paper: a crash causes a loss-rate surge lasting ≈2s (detection via ping
// polling + failover reconfiguration), affecting only the 1/N of traffic
// hashed to the dead FE (active-active); then the system fully recovers.
#include "bench/bench_util.h"
#include "src/core/testbed.h"

using namespace nezha;

int main(int argc, char** argv) {
  const bool clos = benchutil::has_flag(argc, argv, "--clos");
  benchutil::banner(std::string("Figure 14 — impact of FE crash on packet "
                                "loss rate") +
                        (clos ? " [Clos fabric]" : " [single rack]"),
                    "loss surge for ≈2s on ~1/4 of flows, then full recovery");

  core::TestbedConfig cfg;
  if (clos) cfg = core::make_clos_testbed_config(16, /*hosts_per_leaf=*/4);
  cfg.num_vswitches = 16;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.monitor.probe_interval = common::milliseconds(500);
  cfg.monitor.probe_timeout = common::milliseconds(300);
  cfg.monitor.miss_threshold = 3;
  // Sent/delivered tallies live in the telemetry registry (metrics only;
  // no trace consumer here).
  cfg.telemetry.enabled = true;
  cfg.telemetry.trace = false;
  core::Testbed bed(cfg);
  telemetry::MetricsRegistry& metrics = bed.telemetry()->metrics();
  const auto sent_ctr = metrics.counter("bench.pkts_sent");
  const auto delivered_ctr = metrics.counter("bench.pkts_delivered");

  constexpr std::uint32_t kVpc = 7;
  constexpr tables::VnicId kServer = 100;
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  bed.add_vnic(10, server);
  vswitch::VnicConfig client;
  client.id = 1;
  client.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 1, 1)};
  bed.add_vnic(12, client);

  bed.vswitch(10).set_vm_delivery([&metrics, delivered_ctr](
                                      tables::VnicId, const net::Packet&) {
    metrics.add(delivered_ctr);
  });

  (void)bed.controller().trigger_offload(kServer, 4);
  bed.run_for(common::seconds(4));
  bed.watch_fe_hosts();
  bed.monitor().start();

  // Steady traffic: 200 flows × 100 pps = 20K pps toward the server.
  constexpr int kFlows = 200;
  constexpr double kPps = 100.0;
  auto send_burst = [&bed, &metrics, sent_ctr]() {
    for (int f = 0; f < kFlows; ++f) {
      net::FiveTuple ft{net::Ipv4Addr(10, 0, 1, 1),
                        net::Ipv4Addr(10, 0, 0, 100),
                        static_cast<std::uint16_t>(20000 + f), 80,
                        net::IpProto::kUdp};
      bed.vswitch(12).from_vm(1, net::make_udp_packet(ft, 100, 7));
    }
    metrics.add(sent_ctr, kFlows);
  };
  send_burst();
  auto pump_id = std::make_shared<sim::EventId>();
  *pump_id = bed.loop().schedule_periodic(
      static_cast<common::Duration>(common::kSecond / kPps),
      [&bed, send_burst, pump_id]() {
        if (bed.loop().now() > common::seconds(16)) {
          bed.loop().cancel(*pump_id);
          return;
        }
        send_burst();
      });
  bed.run_for(common::seconds(2));

  // Crash one FE at t≈6s (not the client's host).
  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId n : bed.controller().fe_nodes_of(kServer)) {
    if (n != 12) { victim = n; break; }
  }
  const common::TimePoint crash_at = bed.loop().now();
  bed.network().crash(victim);

  // Sample loss rate in 250ms windows.
  benchutil::Table t({"t since crash (s)", "loss rate"});
  std::uint64_t prev_sent = metrics.counter_value(sent_ctr);
  std::uint64_t prev_delivered = metrics.counter_value(delivered_ctr);
  double max_loss = 0;
  common::TimePoint loss_start = -1, loss_end = -1;
  for (int w = 0; w < 24; ++w) {
    bed.run_for(common::milliseconds(250));
    const std::uint64_t ws = metrics.counter_value(sent_ctr) - prev_sent;
    const std::uint64_t wd =
        metrics.counter_value(delivered_ctr) - prev_delivered;
    prev_sent += ws;
    prev_delivered += wd;
    const double loss =
        ws == 0 ? 0 : 1.0 - static_cast<double>(wd) / static_cast<double>(ws);
    const double ts = common::to_seconds(bed.loop().now() - crash_at);
    if (loss > 0.01) {
      if (loss_start < 0) loss_start = bed.loop().now();
      loss_end = bed.loop().now();
      max_loss = std::max(max_loss, loss);
    }
    t.add_row({benchutil::fmt(ts, 2), benchutil::fmt_pct(loss, 2)});
  }
  t.print();

  const double surge_s =
      loss_start < 0 ? 0 : common::to_seconds(loss_end - loss_start) + 0.25;
  std::printf("\n  Loss surge duration: %.2fs (paper: ≈2s);"
              " peak loss: %s (active-active: ~1/4 of flows)\n",
              surge_s, benchutil::fmt_pct(max_loss).c_str());
  std::printf("  Failover events: %llu; crashes declared: %llu\n",
              static_cast<unsigned long long>(
                  bed.controller().failover_events()),
              static_cast<unsigned long long>(
                  bed.monitor().crashes_declared()));
  benchutil::verdict(surge_s > 0.5 && surge_s < 3.5,
                     "loss surge lasts ≈2s (detection + reconfiguration)");
  benchutil::verdict(max_loss > 0.10 && max_loss < 0.45,
                     "only ~1/#FEs of traffic is affected (active-active)");
  return 0;
}
