// Ablation: session-consistent vs per-direction FE hashing (§3.2.3).
//
// Nezha's state/table decoupling makes BOTH legal: because the session
// state lives only at the BE, the two directions of a flow may hash to
// different FEs with no correctness impact. This ablation quantifies the
// cost of exercising that freedom: splitting directions runs the rule
// chain once per direction (double slow-path work) and stores the cached
// flow twice (double FE cache memory), exactly the "cache friendliness"
// concern the paper raises for packet-level balancing.
#include "bench/bench_util.h"
#include "src/core/testbed.h"
#include "src/workload/cps_workload.h"

using namespace nezha;

namespace {

constexpr std::uint32_t kVpc = 7;
constexpr tables::VnicId kServer = 100;
constexpr int kClients = 4;

struct Result {
  double cps = 0;
  std::uint64_t fe_chain_runs = 0;
  std::uint64_t completed = 0;
  std::size_t fe_cache_entries = 0;
  double chains_per_conn() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(fe_chain_runs) /
                                static_cast<double>(completed);
  }
};

Result run(bool session_consistent) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 40;
  cfg.vswitch.cpu.cores = 2;
  cfg.vswitch.cpu.hz_per_core = 0.25e9;
  cfg.vswitch.cpu.max_queue_delay = common::milliseconds(16);
  cfg.vswitch.cost = tables::CostModel::production();
  cfg.vswitch.session_consistent_fe_hash = session_consistent;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  core::Testbed bed(cfg);

  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  bed.add_vnic(30, server);
  std::vector<std::unique_ptr<workload::CpsWorkload>> clients;
  for (int c = 0; c < kClients; ++c) {
    vswitch::VnicConfig client;
    client.id = static_cast<tables::VnicId>(c + 1);
    client.addr = tables::OverlayAddr{
        kVpc, net::Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(c + 1))};
    bed.add_vnic(32 + static_cast<std::size_t>(c), client);
    workload::CpsWorkloadConfig w;
    w.concurrency = 160;
    w.seed = 400 + static_cast<std::uint64_t>(c);
    w.server_kernel = workload::VmKernelConfig{
        .vcpus = 16, .cps_per_core = 16500, .contention = 0.045};
    w.client_kernel =
        workload::VmKernelConfig{.vcpus = 64, .cps_per_core = 30000};
    clients.push_back(std::make_unique<workload::CpsWorkload>(
        bed, 32 + static_cast<std::size_t>(c), client.id, 30, kServer, w));
  }

  (void)bed.controller().trigger_offload(kServer, 4);
  bed.run_for(common::seconds(4));
  const common::TimePoint t0 = bed.loop().now();
  for (auto& c : clients) c->start();
  bed.run_for(common::seconds(2));
  for (auto& c : clients) c->stop();

  Result r;
  for (auto& c : clients) {
    r.cps += c->cps_over(t0 + common::milliseconds(500), t0 + common::seconds(2));
    r.completed += c->completed();
  }
  for (sim::NodeId n : bed.controller().fe_nodes_of(kServer)) {
    r.fe_chain_runs += bed.vswitch(n).slow_path_lookups();
    if (auto* fe = bed.vswitch(n).frontend(kServer)) {
      r.fe_cache_entries += fe->flow_cache.size();
    }
  }
  return r;
}

}  // namespace

int main() {
  benchutil::banner("Ablation — FE hashing: session-consistent vs "
                    "per-direction (§3.2.3)",
                    "splitting directions across FEs is legal under Nezha "
                    "but doubles rule lookups and cached-flow memory");

  const Result consistent = run(true);
  const Result split = run(false);

  benchutil::Table t({"FE hash", "CPS (4 FEs)", "chains/conn",
                      "FE cache entries"});
  t.add_row({"session-consistent", benchutil::fmt_si(consistent.cps),
             benchutil::fmt(consistent.chains_per_conn(), 2),
             std::to_string(consistent.fe_cache_entries)});
  t.add_row({"per-direction", benchutil::fmt_si(split.cps),
             benchutil::fmt(split.chains_per_conn(), 2),
             std::to_string(split.fe_cache_entries)});
  t.print();

  const double chain_ratio =
      split.chains_per_conn() / consistent.chains_per_conn();
  std::printf("\n  Chains per connection (split / consistent): %.2f"
              " (expected ≈2: one chain per direction)\n", chain_ratio);
  benchutil::verdict(chain_ratio > 1.6,
                     "per-direction hashing roughly doubles slow-path work");
  benchutil::verdict(consistent.cps >= split.cps * 0.95,
                     "session-consistent hashing never loses throughput");
  return 0;
}
