// Shared output helpers for the per-figure/table benchmark binaries.
//
// Every bench prints: a banner naming the paper artifact it regenerates,
// the rows/series the paper reports (paper value next to measured value
// where applicable), and a PASS/CHECK verdict line per headline claim so
// the harness output is self-auditing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace nezha::benchutil {

/// Prints the bench banner: which figure/table, what the paper showed.
void banner(const std::string& artifact, const std::string& claim);

/// Simple aligned-column table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 2);
std::string fmt_si(double v, int precision = 2);  // 1.3M, 42.0K, ...
std::string fmt_pct(double fraction, int precision = 1);

/// Prints "  [SHAPE OK] <claim>" or "  [CHECK] <claim>" based on ok.
void verdict(bool ok, const std::string& claim);

/// True when `flag` (e.g. "--clos") appears among the program arguments.
/// The per-figure benches use this to switch the testbed from the default
/// single-rack tiered topology onto the 2-tier Clos fabric.
bool has_flag(int argc, char** argv, const std::string& flag);

/// Integer-valued flag: accepts "--threads 4" and "--threads=4"; returns
/// `def` when the flag is absent or its value does not parse.
long int_flag(int argc, char** argv, const std::string& flag, long def);

}  // namespace nezha::benchutil
