#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace nezha::benchutil {

void banner(const std::string& artifact, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("Paper: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("  ");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("  ");
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_si(double v, int precision) {
  char buf[64];
  const double a = std::fabs(v);
  if (a >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.*fG", precision, v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.*fM", precision, v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.*fK", precision, v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  }
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void verdict(bool ok, const std::string& claim) {
  std::printf("  [%s] %s\n", ok ? "SHAPE OK" : "CHECK", claim.c_str());
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

long int_flag(int argc, char** argv, const std::string& flag, long def) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) {
      char* end = nullptr;
      const long v = std::strtol(argv[i + 1], &end, 10);
      return (end != nullptr && *end == '\0') ? v : def;
    }
    if (arg.size() > flag.size() + 1 && arg.compare(0, flag.size(), flag) == 0 &&
        arg[flag.size()] == '=') {
      char* end = nullptr;
      const long v = std::strtol(arg.c_str() + flag.size() + 1, &end, 10);
      return (end != nullptr && *end == '\0') ? v : def;
    }
  }
  return def;
}

}  // namespace nezha::benchutil
