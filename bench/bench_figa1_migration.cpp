// Fig A1 (+ §7.2): VM live-migration downtime vs VM size, against Nezha's
// alternative for offloaded vNICs (updating the BE location on the FEs).
// Paper: migration downtime/completion grow with vCPUs and memory — tens of
// minutes for a 1TB VM — while Nezha's BE re-pointing takes effect in <1ms
// and remote offloading reaches full effect in ~2s (P99) regardless of size.
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/testbed.h"
#include "src/workload/migration_model.h"

using namespace nezha;

int main() {
  benchutil::banner("Figure A1 — VM migration downtime vs VM resources",
                    "downtime grows with vCPU/memory; Nezha redirect is O(1)");

  workload::MigrationModel model;
  common::Rng rng(41);

  benchutil::Table t({"vCPUs", "memory (GB)", "migration downtime (ms)",
                      "migration completion (s)"});
  struct Shape {
    int vcpus;
    double mem_gb;
  };
  const Shape shapes[] = {{8, 32},   {16, 64},   {32, 128},
                          {64, 256}, {96, 512},  {128, 1024}};
  double smallest = 0, largest = 0;
  double completion_1tb = 0;
  for (const auto& s : shapes) {
    common::Summary down, comp;
    for (int i = 0; i < 500; ++i) {
      down.add(common::to_millis(model.downtime(s.vcpus, s.mem_gb, rng)));
      comp.add(common::to_seconds(model.completion_time(s.mem_gb, rng)));
    }
    if (s.mem_gb == 32) smallest = down.mean();
    if (s.mem_gb == 1024) {
      largest = down.mean();
      completion_1tb = comp.mean();
    }
    t.add_row({std::to_string(s.vcpus), benchutil::fmt(s.mem_gb, 0),
               benchutil::fmt(down.mean(), 0), benchutil::fmt(comp.mean(), 0)});
  }
  t.print();

  // Nezha's alternative, measured on the live testbed: migrate_backend.
  core::TestbedConfig cfg;
  cfg.num_vswitches = 12;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  core::Testbed bed(cfg);
  vswitch::VnicConfig v;
  v.id = 1;
  v.addr = tables::OverlayAddr{7, net::Ipv4Addr(10, 0, 0, 1)};
  bed.add_vnic(0, v);
  (void)bed.controller().trigger_offload(1);
  bed.run_for(common::seconds(4));
  const common::TimePoint t0 = bed.loop().now();
  (void)bed.controller().migrate_backend(1, &bed.vswitch(9));
  const double redirect_ms = common::to_millis(bed.loop().now() - t0);

  std::printf("\n  Nezha BE re-pointing (any VM size): %.3fms"
              " (paper: <1ms)\n", redirect_ms);
  std::printf("  1TB VM migration completion: %.0fs (paper: tens of"
              " minutes)\n", completion_1tb);
  benchutil::verdict(largest > smallest * 3 && redirect_ms < 1.0 &&
                         completion_1tb > 600,
                     "migration cost scales with VM size; Nezha redirect "
                     "does not");
  return 0;
}
