// Fig 15 (+ §7.1): average semantic state size per service in a region.
// Paper: the fixed allocation is 64B per session, but the average *used*
// state is only 5–8B; variable-length states could improve #concurrent
// flows by up to 8x (64B / 8B).
//
// We drive four service mixes through live vSwitches and census
// SessionState::used_bytes() over the resulting session tables.
#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/core/testbed.h"
#include "src/tables/prefix.h"

using namespace nezha;

namespace {

constexpr std::uint32_t kVpc = 7;

struct ServiceResult {
  double avg_used = 0;
  std::size_t sessions = 0;
};

/// Runs `flows` TCP flows of the given service shape through a fresh
/// testbed and returns the state-size census at the server vSwitch.
ServiceResult run_service(bool stats_policy, bool stateful_decap,
                          bool established) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 4;
  cfg.controller.auto_offload = false;
  core::Testbed bed(cfg);
  vswitch::VnicConfig server;
  server.id = 100;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  bed.add_vnic(1, server, stateful_decap);
  vswitch::VnicConfig client;
  client.id = 1;
  client.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 1, 1)};
  bed.add_vnic(0, client);
  if (stats_policy) {
    auto* rules = bed.vswitch(1).vnic(100)->rules();
    rules->stats_policy().add_policy(tables::Prefix::any(),
                                     flow::StatsMode::kPacketsAndBytes);
    rules->commit_update();
  }

  constexpr int kFlows = 500;
  for (int f = 0; f < kFlows; ++f) {
    net::FiveTuple ft{client.addr.ip, server.addr.ip,
                      static_cast<std::uint16_t>(10000 + f), 80,
                      net::IpProto::kTcp};
    bed.vswitch(0).from_vm(
        1, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0, kVpc));
    if (established) {
      bed.run_for(common::microseconds(100));
      bed.vswitch(1).from_vm(100, net::make_tcp_packet(
                                      ft.reversed(),
                                      net::TcpFlags{.syn = true, .ack = true},
                                      0, kVpc));
      bed.run_for(common::microseconds(100));
      bed.vswitch(0).from_vm(
          1, net::make_tcp_packet(ft, net::TcpFlags{.ack = true}, 120, kVpc));
    }
  }
  bed.run_for(common::milliseconds(20));

  ServiceResult r;
  common::Summary used;
  bed.vswitch(1).sessions().for_each(
      [&](const flow::SessionKey&, const flow::SessionEntry& e) {
        used.add(static_cast<double>(e.state.used_bytes()));
      });
  r.avg_used = used.mean();
  r.sessions = used.count();
  return r;
}

}  // namespace

int main() {
  benchutil::banner("Figure 15 — average state size in a region",
                    "avg used state 5–8B vs a fixed 64B allocation; "
                    "variable-length states could gain up to 8x (§7.1)");

  struct Service {
    const char* name;
    bool stats;
    bool decap;
    bool established;
  };
  const Service services[] = {
      {"plain-forwarding (embryonic)", false, false, false},
      {"stateful-acl web", false, false, true},
      {"real-server behind LB (decap)", false, true, true},
      {"metered tenant (flow stats)", true, false, true},
  };

  benchutil::Table t({"service", "sessions", "avg used state (B)",
                      "allocated (B)"});
  common::Summary overall;
  for (const auto& s : services) {
    const ServiceResult r = run_service(s.stats, s.decap, s.established);
    overall.add(r.avg_used);
    t.add_row({s.name, std::to_string(r.sessions),
               benchutil::fmt(r.avg_used, 1),
               std::to_string(flow::kStateAllocBytes)});
  }
  t.print();

  const double avg = overall.mean();
  const double potential = static_cast<double>(flow::kStateAllocBytes) / avg;
  std::printf("\n  Region-wide average used state: %.1fB (paper: 5–8B);"
              " potential #flows gain from variable-length states: %.1fx"
              " (paper: up to 8x)\n", avg, potential);
  benchutil::verdict(avg >= 2.0 && avg <= 12.0,
                     "used state is an order of magnitude below the 64B "
                     "allocation");
  benchutil::verdict(potential >= 5.0, "variable-length states buy ≥5x");
  return 0;
}
