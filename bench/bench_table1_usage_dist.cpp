// Table 1: normalized distribution of per-VM CPS, #concurrent-flows and
// #vNICs usage (each normalized to the P9999 user).
// Paper: P50 users create ~0.5% of the P9999 user's load — service usage is
// dominated by a handful of heavy users.
#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/workload/fleet_model.h"

using namespace nezha;

int main() {
  benchutil::banner("Table 1 — normalized usage distribution",
                    "P50 ≈ 0.5–0.8% of P9999; heavy users dominate");

  workload::FleetModel model(workload::FleetModelConfig{.seed = 11});
  const std::size_t n = 200000;

  struct Row {
    const char* name;
    double q;
    double paper[3];  // CPS, #flows, #vNICs
  };
  const Row rows[] = {
      {"P50", 50, {0.53, 0.78, 0.65}},
      {"P90", 90, {1.41, 2.36, 1.0}},
      {"P99", 99, {6.41, 6.39, 6.0}},
      {"P999", 99.9, {18.38, 29.17, 55.0}},
      {"P9999", 99.99, {100.0, 100.0, 100.0}},
  };

  common::Percentiles dist[3];
  for (int k = 0; k < 3; ++k) {
    for (double v :
         model.sample_usage(static_cast<workload::HotspotCause>(k), n)) {
      dist[k].add(v * 100);
    }
  }

  benchutil::Table t({"quantile", "CPS paper", "CPS meas", "#flows paper",
                      "#flows meas", "#vNICs paper", "#vNICs meas"});
  bool ok = true;
  for (const auto& r : rows) {
    std::vector<std::string> cells{r.name};
    for (int k = 0; k < 3; ++k) {
      const double measured = dist[k].percentile(r.q);
      cells.push_back(benchutil::fmt(r.paper[k]) + "%");
      cells.push_back(benchutil::fmt(measured) + "%");
      if (r.paper[k] >= 1.0) {
        ok = ok && measured > r.paper[k] * 0.5 && measured < r.paper[k] * 2.0;
      }
    }
    // reorder: quantile, cps paper, cps meas, flows paper, flows meas, ...
    t.add_row({cells[0], cells[1], cells[2], cells[3], cells[4], cells[5],
               cells[6]});
  }
  t.print();
  benchutil::verdict(ok, "median users are ~1% of the P9999 heavy user");
  return 0;
}
