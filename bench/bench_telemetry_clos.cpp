// Telemetry smoke bench (CI gate): one Clos fleet scenario, run twice —
// telemetry off, then fully on (flight recorder + metric sampler) — to
// enforce the observer guarantees end to end:
//
//   1. the telemetry-on run's workload fingerprint is bit-identical to the
//      telemetry-off run (observation never perturbs the simulation);
//   2. the recorded trace reconstructs at least one connection's complete
//      BE→FE→peer forwarding detour;
//   3. the JSON time-series and the binary trace dump are written out as
//      build artifacts (paths settable via --json / --trace).
//
// Unlike the figure benches this one is a hard gate: any failed check makes
// it exit nonzero so CI fails the build.
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/testbed.h"
#include "src/telemetry/trace_query.h"
#include "src/workload/fleet_model.h"

using namespace nezha;

namespace {

constexpr std::size_t kVSwitches = 32;
constexpr std::size_t kPairs = 6;
constexpr std::uint64_t kSeed = 20260807;

struct Run {
  std::uint64_t fingerprint = 0;
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::size_t offloads = 0;
  std::vector<telemetry::TraceEvent> events;
  std::size_t samples = 0;
};

Run run_scenario(bool with_telemetry, const std::string& json_path,
                 const std::string& trace_path) {
  core::TestbedConfig cfg =
      core::make_clos_testbed_config(kVSwitches, /*hosts_per_leaf=*/8,
                                     /*num_spines=*/2);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  if (with_telemetry) {
    cfg.telemetry.enabled = true;
    cfg.telemetry.events_per_node = 1 << 12;
    cfg.telemetry.sample_period = common::milliseconds(250);
  }
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = kPairs;
  sc.base_attempts_per_sec = 200.0;
  sc.seed = kSeed;
  workload::FleetScenario scenario(bed, sc);
  scenario.deploy();

  Run r;
  r.offloads = scenario.offload_all();
  bed.run_for(common::seconds(4));
  scenario.start_traffic();
  bed.run_for(common::seconds(3));
  scenario.stop_traffic();
  bed.run_for(common::seconds(1));

  for (const auto& wl : scenario.workloads()) {
    r.attempted += wl->attempted();
    r.completed += wl->completed();
  }
  r.fingerprint = scenario.fingerprint();

  if (bed.telemetry() != nullptr) {
    r.events = bed.telemetry()->recorder().merged();
    r.samples = bed.telemetry()->metrics().samples_taken();
    std::ofstream js(json_path);
    bed.telemetry()->write_json(js);
    std::ofstream tr(trace_path, std::ios::binary);
    bed.telemetry()->dump_trace(tr);
  }
  return r;
}

const char* flag_value(int argc, char** argv, const char* flag,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      flag_value(argc, argv, "--json", "telemetry_clos.json");
  const std::string trace_path =
      flag_value(argc, argv, "--trace", "telemetry_clos.trace");

  benchutil::banner(
      "Telemetry smoke — Clos fleet with the full observer plane on",
      "tracing must not perturb the simulation and must reconstruct the "
      "BE->FE->peer detour");

  const Run off = run_scenario(false, json_path, trace_path);
  const Run on = run_scenario(true, json_path, trace_path);

  benchutil::Table t({"run", "fingerprint", "attempted", "completed",
                      "offloads", "trace events", "samples"});
  const auto row = [&t](const char* name, const Run& r) {
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    t.add_row({name, fp, std::to_string(r.attempted),
               std::to_string(r.completed), std::to_string(r.offloads),
               std::to_string(r.events.size()), std::to_string(r.samples)});
  };
  row("telemetry off", off);
  row("telemetry on", on);
  t.print();

  // Gate 1: observation changes nothing.
  const bool identical = on.fingerprint == off.fingerprint &&
                         on.attempted == off.attempted &&
                         on.completed == off.completed;
  benchutil::verdict(identical,
                     "telemetry-on run is bit-identical to telemetry-off");

  // Gate 2: the trace reconstructs a full BE->FE->peer path.
  std::size_t redirects = 0;
  bool complete = false;
  for (const auto& e : on.events) {
    if (e.kind != telemetry::EventKind::kBeFeRedirect || e.flow == 0) {
      continue;
    }
    ++redirects;
    if (!complete &&
        telemetry::check_be_fe_peer_path(on.events, e.flow).complete()) {
      complete = true;
    }
  }
  benchutil::verdict(complete, "a connection's full BE->FE->peer detour "
                               "reconstructed from the trace");

  // Gate 3: artifacts exist and are non-trivial.
  const bool have_data =
      !on.events.empty() && on.samples > 0 && redirects > 0;
  benchutil::verdict(have_data, "trace events, redirects and sampler rows "
                                "all recorded");
  std::printf("\n  artifacts: %s (time series), %s (%zu trace events)\n",
              json_path.c_str(), trace_path.c_str(), on.events.size());

  return (identical && complete && have_data) ? 0 : 1;
}
