// Policy bench matrix (DESIGN.md §14): the three FE-selection policies on
// the two scenarios where strategy, not mechanism, decides the outcome.
//
//   noisy_neighbor — an offloaded server whose 4-FE pool includes one host
//     saturated by a co-located tenant. Static hashing keeps sending a
//     quarter of the flows into the hot FE's queue; the load-aware policy
//     reads the published weight book and routes around it. Reports CPS
//     and per-hop-class p99 (be_rx = offloaded detour, local_rx = plain
//     local delivery) plus delivered fraction, per policy.
//
//   failover_tight_pool — an FE crash in a cluster with zero idle hosts.
//     The paper's min-4 replacement cannot find a home, so static (and
//     load-aware) run on at 3 FEs — overloaded — while push-aside evicts a
//     spare FE from an oversized neighbor pool and restores the fourth.
//     Reports windowed loss around the crash and whether the pool healed.
//
// Output: human tables + BENCH_policy.json (schema in README.md), shard-
// compatible via --shards/--threads; --smoke shrinks the measure windows.
// Exit code 1 when no policy beats static on p99 or failover loss — the
// matrix's reason to exist.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/core/testbed.h"
#include "src/policy/fe_policy.h"
#include "src/workload/cps_workload.h"

using namespace nezha;

namespace {

constexpr std::uint32_t kVpc = 7;

using policy::PolicyKind;

constexpr PolicyKind kPolicies[3] = {PolicyKind::kStaticHash,
                                     PolicyKind::kLoadAwareWeighted,
                                     PolicyKind::kPushAsideDisplacement};

struct MatrixFlags {
  std::size_t shards = 1;
  int threads = 1;
  bool smoke = false;
};

/// Single-core, low-clock vSwitch CPUs so a handful of pumped UDP flows
/// makes a host *genuinely* busy — the controller's utilization samples
/// (not a test seam) drive the idle filter, the weight book and the
/// displacement victim choice, exactly as in a full-size fleet.
core::TestbedConfig scenario_config(PolicyKind kind, const MatrixFlags& fl) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(
      16, /*hosts_per_leaf=*/4, /*num_spines=*/4, /*oversubscription=*/2.0);
  cfg.vswitch.cpu.cores = 1;
  cfg.vswitch.cpu.hz_per_core = 2e7;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.controller.fe_policy = kind;
  cfg.shards = fl.shards;
  cfg.threads = 1;  // both scenarios churn the control plane mid-run
  return cfg;
}

net::Ipv4Addr add_vnic(core::Testbed& bed, std::size_t node,
                       tables::VnicId id, std::uint8_t subnet,
                       std::uint8_t host) {
  vswitch::VnicConfig v;
  v.id = id;
  v.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, subnet, host)};
  bed.add_vnic(node, v);
  return v.addr.ip;
}

/// Pumps `flows` UDP flows from a vNIC every `period`, on the client's
/// shard loop. Returns the sent counter (attempted from_vm calls).
std::shared_ptr<std::uint64_t> pump(core::Testbed& bed, std::size_t node,
                                    tables::VnicId vnic, net::Ipv4Addr src,
                                    net::Ipv4Addr dst, int flows,
                                    std::uint16_t base_port,
                                    common::Duration period,
                                    bool stamp = false) {
  auto sent = std::make_shared<std::uint64_t>(0);
  sim::EventLoop& loop = bed.loop_of(node);
  loop.schedule_periodic(period, [&bed, &loop, node, vnic, src, dst, flows,
                                  base_port, stamp, sent]() {
    for (int f = 0; f < flows; ++f) {
      const net::FiveTuple ft{src, dst,
                              static_cast<std::uint16_t>(base_port + f), 80,
                              net::IpProto::kUdp};
      net::Packet pkt = net::make_udp_packet(ft, 200, kVpc);
      if (stamp) pkt.created_at = loop.now();
      bed.vswitch(node).from_vm(vnic, std::move(pkt));
      ++*sent;
    }
  });
  return sent;
}

// ------------------------------------------------------- noisy neighbor

struct NoisyResult {
  double cps = 0;
  double p99_be_rx_us = 0;
  double avg_be_rx_us = 0;
  double p99_local_rx_us = 0;
  double delivered_fraction = 0;
  std::uint64_t fingerprint = 0;
};

NoisyResult run_noisy_neighbor(PolicyKind kind, const MatrixFlags& fl) {
  core::Testbed bed(scenario_config(kind, fl));
  const common::Duration measure =
      fl.smoke ? common::milliseconds(500) : common::seconds(2);

  // CPS server A on node 0 → FEs {1,2,3,4} (same-rack first). CpsWorkload
  // owns vswitch 0's vm_delivery slot, so the latency probes get their own
  // offloaded target: vnic 110 homed on node 2 — a rack-mate of the hot
  // host, so its pool also picks up node 1.
  add_vnic(bed, 0, 100, 0, 100);
  const net::Ipv4Addr det_ip = add_vnic(bed, 2, 110, 0, 110);
  // Local-path server (never offloaded) for the local_rx hop class.
  const net::Ipv4Addr local_ip = add_vnic(bed, 6, 300, 0, 30);
  const net::Ipv4Addr probe_ip = add_vnic(bed, 12, 1, 1, 1);
  const net::Ipv4Addr local_probe_ip = add_vnic(bed, 14, 301, 1, 2);
  // Noisy co-tenant: local server on FE host 1, client on node 5 pumping
  // at its CPU capacity → node 1 saturates (the CPU model sheds excess).
  const net::Ipv4Addr noisy_ip = add_vnic(bed, 1, 401, 2, 1);
  const net::Ipv4Addr noisy_client_ip = add_vnic(bed, 5, 400, 2, 2);
  add_vnic(bed, 13, 2, 1, 3);  // CPS client

  if (!bed.controller().trigger_offload(100, 4).ok() ||
      !bed.controller().trigger_offload(110, 4).ok()) {
    std::fprintf(stderr, "noisy_neighbor: offload failed\n");
    return {};
  }
  {
    const auto pool = bed.controller().fe_nodes_of(110);
    if (std::find(pool.begin(), pool.end(), sim::NodeId{1}) == pool.end()) {
      std::fprintf(stderr,
                   "noisy_neighbor: probe pool misses the hot host — "
                   "placement drifted, scenario needs retuning\n");
    }
  }
  bed.run_for(common::seconds(2));

  common::Percentiles be_lat = common::Percentiles::bounded(0.0, 20000.0, 2000);
  common::Percentiles local_lat =
      common::Percentiles::bounded(0.0, 20000.0, 2000);
  std::uint64_t be_delivered = 0;
  sim::EventLoop& det_loop = bed.loop_of(2);
  bed.vswitch(2).set_vm_delivery(
      [&](tables::VnicId id, const net::Packet& p) {
        if (id != 110 || p.created_at == 0) return;
        ++be_delivered;
        be_lat.add(common::to_micros(det_loop.now() - p.created_at));
      });
  sim::EventLoop& local_loop = bed.loop_of(6);
  bed.vswitch(6).set_vm_delivery(
      [&](tables::VnicId id, const net::Packet& p) {
        if (id != 300 || p.created_at == 0) return;
        local_lat.add(common::to_micros(local_loop.now() - p.created_at));
      });

  // Noise first, so the weight snapshot sees the hot host.
  pump(bed, 5, 400, noisy_client_ip, noisy_ip, 32, 40000,
       common::milliseconds(1));
  bed.run_for(common::milliseconds(400));
  bed.controller().refresh_fleet_sample();
  bed.run_for(common::milliseconds(400));
  bed.controller().refresh_fleet_sample();
  bed.controller().publish_fe_weights();
  bed.run_for(common::milliseconds(100));

  // Probes: 32 flows through the offloaded detour, 16 through the local
  // path; modest rates so the probes themselves never load the FEs.
  auto be_sent = pump(bed, 12, 1, probe_ip, det_ip, 32, 30000,
                      common::milliseconds(10), /*stamp=*/true);
  pump(bed, 14, 301, local_probe_ip, local_ip, 16, 31000,
       common::milliseconds(10), /*stamp=*/true);

  workload::CpsWorkloadConfig w;
  w.attempts_per_sec = fl.smoke ? 1000.0 : 2000.0;
  w.seed = 42;
  workload::CpsWorkload cps(bed, 13, 2, 0, 100, w);

  bed.run_for(common::milliseconds(200));
  be_lat.clear();
  local_lat.clear();
  be_delivered = 0;
  *be_sent = 0;

  cps.start();
  bed.run_for(measure);
  cps.stop();

  NoisyResult r;
  r.cps = static_cast<double>(cps.completed()) / common::to_seconds(measure);
  r.p99_be_rx_us = be_lat.percentile(99);
  r.avg_be_rx_us = be_lat.mean();
  r.p99_local_rx_us = local_lat.percentile(99);
  r.delivered_fraction =
      *be_sent == 0 ? 0
                    : static_cast<double>(be_delivered) /
                          static_cast<double>(*be_sent);
  r.fingerprint = bed.net_totals().delivered ^ (cps.completed() << 32);
  return r;
}

// -------------------------------------------------- tight-pool failover

struct FailoverResult {
  double pre_loss = 0;        // baseline loss fraction before the crash
  double post_loss = 0;       // loss fraction over the post-crash windows
  double peak_window_loss = 0;
  std::size_t pool_final = 0;
  bool pool_restored = false;
  std::uint64_t displacements = 0;
  std::uint64_t lost_packets = 0;
  std::uint64_t fingerprint = 0;
};

FailoverResult run_tight_pool_failover(PolicyKind kind,
                                       const MatrixFlags& fl) {
  core::TestbedConfig cfg = scenario_config(kind, fl);
  // No FPGA fast path in this scenario: FE forwarding runs at full
  // software cost, so a 4-FE pool sits just under capacity and a 3-FE
  // pool genuinely sheds — the pool size, not the mechanism, is the
  // bottleneck under test.
  cfg.vswitch.cost.fe_cache_hit_accel_factor = 1.0;
  // Tighter busy threshold: the donor FE hosts' load is a static hash of
  // ~40 surviving flows over 5 hosts, so the lightest donor sits near
  // 0.35 — busy in this fleet's terms, and the operator knob is exactly
  // how that judgment is expressed. Keeps every host non-idle at crash
  // time without over-driving the donors.
  cfg.controller.scale_threshold = 0.25;
  core::Testbed bed(cfg);

  // Donor pool first (all hosts idle): B on node 0 → FEs {1..5}, one FE
  // above the minimum of 4 — exactly one spare to push aside.
  const net::Ipv4Addr b_ip = add_vnic(bed, 0, 200, 0, 200);
  if (!bed.controller().trigger_offload(200, 5).ok()) {
    std::fprintf(stderr, "failover: donor offload failed\n");
    return {};
  }
  bed.run_for(common::seconds(2));

  // The donor FE hosts' load is B's *own* FE traffic (clients on 6 and 7,
  // home deliveries keep node 0 warm too): busy enough to fail the idle
  // filter, yet evicting one donor FE re-hashes B's flows to the other
  // four and frees that host's capacity for real. Co-located noise would
  // stay after the eviction and strand the displaced FE on a hot host.
  for (std::size_t n = 6; n <= 7; ++n) {
    const auto cli = add_vnic(bed, n, static_cast<tables::VnicId>(210 + n), 3,
                              static_cast<std::uint8_t>(n));
    pump(bed, n, static_cast<tables::VnicId>(210 + n), cli, b_ip, 64,
         static_cast<std::uint16_t>(40000 + n * 64), common::milliseconds(1));
  }
  bed.controller().refresh_fleet_sample();  // checkpoint: loaded window only
  bed.run_for(common::milliseconds(400));
  bed.controller().refresh_fleet_sample();

  // Now the busy filter steers A's pool into rack 2: FEs {9,10,11,12}.
  const net::Ipv4Addr a_ip = add_vnic(bed, 8, 100, 0, 100);
  if (!bed.controller().trigger_offload(100, 4).ok()) {
    std::fprintf(stderr, "failover: victim offload failed\n");
    return {};
  }
  bed.run_for(common::seconds(2));

  std::uint64_t delivered = 0;
  bed.vswitch(8).set_vm_delivery(
      [&delivered](tables::VnicId id, const net::Packet&) {
        if (id == 100) ++delivered;
      });

  // Three saturated clients over four FEs ≈ 0.75 utilization per FE host:
  // healthy with 4 FEs, overloaded at 3. The clients also keep their own
  // hosts (13,14,15) busy, so the min-FE replacement finds nothing idle.
  std::vector<std::shared_ptr<std::uint64_t>> senders;
  for (int c = 0; c < 3; ++c) {
    const auto cli = add_vnic(bed, 13 + static_cast<std::size_t>(c),
                              static_cast<tables::VnicId>(10 + c), 4,
                              static_cast<std::uint8_t>(c + 1));
    senders.push_back(pump(bed, 13 + static_cast<std::size_t>(c),
                           static_cast<tables::VnicId>(10 + c), cli, a_ip, 32,
                           static_cast<std::uint16_t>(20000 + c * 64),
                           common::milliseconds(1)));
  }
  // Checkpoint the fleet samplers now: the next refresh must measure only
  // the loaded window, not the 2s idle settle above, or the client hosts
  // would look idle and hand the recovery path a free replacement.
  bed.controller().refresh_fleet_sample();
  // Publish the weight book from this quiet snapshot: A's pool has no load
  // yet, so load-aware starts balanced. Publishing after A's clients ramp
  // would dump the whole load on whichever FE sampled lightest.
  if (kind == PolicyKind::kLoadAwareWeighted) {
    bed.controller().publish_fe_weights();
  }
  bed.run_for(common::milliseconds(500));
  bed.controller().refresh_fleet_sample();

  auto offered = [&senders]() {
    std::uint64_t s = 0;
    for (const auto& p : senders) s += *p;
    return s;
  };

  // Baseline window.
  const common::Duration window =
      fl.smoke ? common::milliseconds(250) : common::milliseconds(500);
  std::uint64_t sent0 = offered(), del0 = delivered;
  bed.run_for(window + window);
  FailoverResult r;
  {
    const std::uint64_t ws = offered() - sent0, wd = delivered - del0;
    r.pre_loss =
        ws == 0 ? 0 : 1.0 - static_cast<double>(wd) / static_cast<double>(ws);
  }

  // Crash the pool's first FE on every shard network, notify failover.
  const auto pool0 = bed.controller().fe_nodes_of(100);
  const sim::NodeId victim = pool0.front();
  for (std::uint32_t s = 0; s < bed.shard_count(); ++s) {
    bed.network_of_shard(s).crash(victim);
  }
  bed.controller().handle_fe_crash(victim);

  const int windows = fl.smoke ? 6 : 8;
  std::uint64_t post_sent = 0, post_del = 0;
  for (int w = 0; w < windows; ++w) {
    sent0 = offered();
    del0 = delivered;
    bed.run_for(window);
    const std::uint64_t ws = offered() - sent0, wd = delivered - del0;
    post_sent += ws;
    post_del += wd;
    const double loss =
        ws == 0 ? 0 : 1.0 - static_cast<double>(wd) / static_cast<double>(ws);
    r.peak_window_loss = std::max(r.peak_window_loss, loss);
  }
  r.post_loss = post_sent == 0
                    ? 0
                    : 1.0 - static_cast<double>(post_del) /
                          static_cast<double>(post_sent);
  r.lost_packets = post_sent - post_del;
  r.pool_final = bed.controller().fe_nodes_of(100).size();
  r.pool_restored = r.pool_final >= 4;
  r.displacements = bed.controller().displacement_events();
  r.fingerprint = bed.net_totals().delivered ^
                  (static_cast<std::uint64_t>(r.pool_final) << 56);
  return r;
}

const char* policy_key(PolicyKind k) { return policy::to_string(k); }

}  // namespace

int main(int argc, char** argv) {
  MatrixFlags fl;
  fl.shards = static_cast<std::size_t>(
      std::max(1L, benchutil::int_flag(argc, argv, "--shards", 1)));
  fl.threads = static_cast<int>(
      std::max(1L, benchutil::int_flag(argc, argv, "--threads", 1)));
  fl.smoke = benchutil::has_flag(argc, argv, "--smoke");

  benchutil::banner(
      "FE-selection policy matrix (DESIGN.md \xc2\xa7" "14)",
      "load-aware weights route around a hot FE; push-aside restores a "
      "crashed pool when no idle host exists");

  std::map<PolicyKind, NoisyResult> noisy;
  std::map<PolicyKind, FailoverResult> fo;
  for (PolicyKind k : kPolicies) {
    noisy[k] = run_noisy_neighbor(k, fl);
    fo[k] = run_tight_pool_failover(k, fl);
  }

  benchutil::Table nt({"policy", "cps", "p99 be_rx (us)", "avg be_rx (us)",
                       "p99 local_rx (us)", "probe delivered"});
  for (PolicyKind k : kPolicies) {
    const NoisyResult& r = noisy[k];
    nt.add_row({policy_key(k), benchutil::fmt_si(r.cps, 1),
                benchutil::fmt(r.p99_be_rx_us, 1),
                benchutil::fmt(r.avg_be_rx_us, 1),
                benchutil::fmt(r.p99_local_rx_us, 1),
                benchutil::fmt_pct(r.delivered_fraction)});
  }
  nt.print();
  std::printf("\n");
  benchutil::Table ft({"policy", "pre loss", "post loss", "peak loss",
                       "pool", "displaced"});
  for (PolicyKind k : kPolicies) {
    const FailoverResult& r = fo[k];
    ft.add_row({policy_key(k), benchutil::fmt_pct(r.pre_loss),
                benchutil::fmt_pct(r.post_loss),
                benchutil::fmt_pct(r.peak_window_loss),
                std::to_string(r.pool_final),
                std::to_string(r.displacements)});
  }
  ft.print();

  const NoisyResult& st_n = noisy[PolicyKind::kStaticHash];
  const NoisyResult& la_n = noisy[PolicyKind::kLoadAwareWeighted];
  const FailoverResult& st_f = fo[PolicyKind::kStaticHash];
  const FailoverResult& pa_f = fo[PolicyKind::kPushAsideDisplacement];

  const bool la_beats_p99 = la_n.p99_be_rx_us < st_n.p99_be_rx_us &&
                            la_n.delivered_fraction >= st_n.delivered_fraction;
  const bool pa_beats_loss =
      pa_f.pool_restored && !st_f.pool_restored &&
      pa_f.post_loss < st_f.post_loss;
  benchutil::verdict(la_beats_p99,
                     "load-aware beats static on p99 through a noisy "
                     "neighbor (weighted rendezvous routes around it)");
  benchutil::verdict(pa_beats_loss,
                     "push-aside beats static on failover loss in a tight "
                     "pool (displaced spare restores the minimum)");
  benchutil::verdict(st_n.delivered_fraction > 0 && st_f.pre_loss < 0.5,
                     "static baseline carried traffic in both scenarios");

  FILE* f = std::fopen("BENCH_policy.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"schema\": 1,\n");
    std::fprintf(f, "  \"sharding\": {\"shards\": %zu, \"threads\": %d},\n",
                 fl.shards, fl.threads);
    std::fprintf(f, "  \"noisy_neighbor\": {\n");
    for (std::size_t i = 0; i < 3; ++i) {
      const NoisyResult& r = noisy[kPolicies[i]];
      std::fprintf(f,
                   "    \"%s\": {\"cps\": %.1f, "
                   "\"be_rx_p99_latency_us\": %.3f, "
                   "\"be_rx_avg_latency_us\": %.3f, "
                   "\"local_rx_p99_latency_us\": %.3f, "
                   "\"probe_delivered\": %.4f, "
                   "\"fingerprint\": \"%016llx\"}%s\n",
                   policy_key(kPolicies[i]), r.cps, r.p99_be_rx_us,
                   r.avg_be_rx_us, r.p99_local_rx_us, r.delivered_fraction,
                   static_cast<unsigned long long>(r.fingerprint),
                   i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  },\n  \"failover_tight_pool\": {\n");
    for (std::size_t i = 0; i < 3; ++i) {
      const FailoverResult& r = fo[kPolicies[i]];
      std::fprintf(
          f,
          "    \"%s\": {\"pre_loss\": %.4f, \"post_loss\": %.4f, "
          "\"peak_window_loss\": %.4f, \"final_fes\": %zu, "
          "\"pool_restored\": %s, \"displacement_events\": %llu, "
          "\"lost_packets\": %llu, \"fingerprint\": \"%016llx\"}%s\n",
          policy_key(kPolicies[i]), r.pre_loss, r.post_loss,
          r.peak_window_loss, r.pool_final,
          r.pool_restored ? "true" : "false",
          static_cast<unsigned long long>(r.displacements),
          static_cast<unsigned long long>(r.lost_packets),
          static_cast<unsigned long long>(r.fingerprint),
          i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\n  wrote BENCH_policy.json\n");
  }

  return (la_beats_p99 || pa_beats_loss) ? 0 : 1;
}
