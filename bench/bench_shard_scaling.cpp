// Sharded-engine scaling: a 10K-vswitch Clos fleet advanced in parallel,
// with the control plane live (fenced) inside the threaded window.
//
// The scenario is the FleetScenario heavy-hitter mix (servers strided
// across the leaf tier, most server vNICs offloaded onto cross-rack FE
// pools) plus the full churn script: a mid-window offload push for the
// held-back servers, a monitor-detected FE crash and failover, and a
// fleet-wide hash reseed — all fired through the epoch-fence protocol, so
// the whole run (setup, churn and traffic) executes under worker threads.
// Recorded per sweep point:
//   * wall-clock speedup vs the unsharded reference and vs the 1-thread
//     sharded run (the same epochs, rings, fences and merges, minus
//     parallelism);
//   * determinism: every thread count must produce the same fingerprint —
//     a hard exit-code gate, not a report line;
//   * fence/fast-forward counters (fenced sections run, epochs skipped) —
//     both must be non-zero or the bench is not exercising the protocol it
//     claims to measure (also a gate, host-independent);
//   * the per-shard busy-time balance, whose sum/max bounds the speedup any
//     machine can extract from this partition (on hosts with fewer cores
//     than shards, that bound is the honest headline);
//   * the phase profile: wall-clock attribution of each worker's time to
//     {snapshot, advance, barrier-wait, fast-forward, fence} plus the
//     deterministic event counts behind it (epochs, fence barriers,
//     fast-forward jumps). The event counts must be identical at every
//     thread count — a gate; the wall-clock fields are report-only and
//     excluded from every determinism comparison.
// An ablation block at threads=1 toggles {fences, fast_forward}: the
// fast-forward-off run must reproduce the fast-forward-on fingerprint
// bit-for-bit (gate); the fences-off rows run the legacy single-threaded
// control-plane semantics and are reported for wall-clock context only.
//
// Output: stdout tables + BENCH_shard.json (schema nezha-bench-shard-v3,
// README.md) in the CWD, diffable with tools/nezha_report (wall-clock
// profile fields classify as informational there, never regressions).
//
// `--smoke` (CI): a small fleet, threads {1, 2}, churn enabled; exits
// non-zero unless the 2-thread fingerprint equals the 1-thread one, traffic
// crossed shards, conservation closed, the failover fired, and both the
// skipped-epoch and fenced-section counters are non-zero. No JSON.
//
// Flags: --vswitches N (10240) --shards K (8) --pairs P (64)
//        --window-ms W (1000) --max-threads T (8)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/invariants.h"
#include "src/core/testbed.h"
#include "src/workload/fleet_model.h"

using namespace nezha;

namespace {

double wall_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RunOpts {
  std::size_t vswitches = 10240;
  std::size_t shards = 8;
  int threads = 1;
  std::size_t pairs = 64;
  int window_ms = 1000;
  std::uint64_t seed = 7;
  bool churn = true;
  bool fences = true;
  bool fast_forward = true;
};

struct RunResult {
  std::uint64_t fingerprint = 0;
  core::Testbed::NetTotals totals{};
  std::uint64_t attempted = 0;
  std::uint64_t ctl_events = 0;  // offload+fallback+scale+failover
  double wall_sec = 0;  // traffic window only (setup/drain excluded)
  std::uint64_t delivered = 0;
  std::uint64_t completed = 0;
  std::uint64_t exported = 0;
  std::uint64_t imported = 0;
  std::uint64_t pending = 0;
  std::uint64_t late = 0;
  std::uint64_t epochs = 0;
  std::uint64_t epochs_skipped = 0;
  std::uint64_t fenced_sections = 0;
  std::uint64_t failovers = 0;
  double busy_balance = 0;   // mean/max of per-shard busy time (1.0 = even)
  double ideal_speedup = 0;  // sum/max of per-shard busy time
  // Phase profile, summed across shards. The *_wall_ns fields are
  // wall-clock (report-only); prof_epochs / fence_barriers / ff_jumps are
  // deterministic event counts gated for thread-invariance.
  std::uint64_t prof_epochs = 0;
  std::uint64_t fence_barriers = 0;
  std::uint64_t ff_jumps = 0;
  std::uint64_t snapshot_wall_ns = 0;
  std::uint64_t advance_wall_ns = 0;
  std::uint64_t barrier_wait_wall_ns = 0;
  std::uint64_t fast_forward_wall_ns = 0;
  std::uint64_t fence_wall_ns = 0;
  std::size_t violations = 0;
  std::string report;
};

/// One full scenario run, threaded end-to-end when o.fences (deploy,
/// offload, churn and the timed traffic window all execute under o.threads
/// workers; the fence protocol keeps the outcome thread-count invariant).
/// With o.fences == false the run is pinned to 1 worker — the legacy
/// control-plane rule this bench's protocol removed — and serves as the
/// ablation baseline. shards == 1 builds the engine-less reference bed.
RunResult run_one(const RunOpts& o) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(o.vswitches);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.monitor.probe_interval = common::milliseconds(100);
  cfg.monitor.probe_timeout = common::milliseconds(50);
  cfg.monitor.miss_threshold = 2;
  cfg.shards = o.shards;
  cfg.threads = o.fences ? o.threads : 1;
  cfg.shard_fences = o.fences;
  cfg.shard_fast_forward = o.fast_forward;
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = o.pairs;
  sc.base_attempts_per_sec = 400.0;
  sc.seed = o.seed;
  workload::FleetScenario scenario(bed, sc);
  core::InvariantChecker checker(bed,
                                 core::InvariantCheckerConfig{.seed = o.seed});

  scenario.deploy();
  scenario.offload_all(o.churn ? o.pairs / 4 : 0);
  bed.run_for(common::seconds(1));  // offload workflows settle
  checker.check();

  scenario.start_traffic();
  if (o.churn) {
    // Offload push / FE crash / hash reseed inside the timed window,
    // scaled so detection + failover complete before the window closes.
    scenario.schedule_churn(common::milliseconds(o.window_ms / 10),
                            common::milliseconds(o.window_ms / 4),
                            common::milliseconds(o.window_ms * 3 / 5));
  }
  const std::uint64_t delivered_before = bed.net_totals().delivered;
  const auto t0 = std::chrono::steady_clock::now();
  bed.run_for(common::milliseconds(o.window_ms));
  const double wall = wall_seconds(t0);
  scenario.stop_traffic();
  bed.run_for(common::milliseconds(250));
  checker.check();

  RunResult r;
  r.fingerprint = scenario.fingerprint();
  r.wall_sec = wall;
  r.delivered = bed.net_totals().delivered - delivered_before;
  for (const auto& wl : scenario.workloads()) {
    r.completed += wl->completed();
    r.attempted += wl->attempted();
  }
  r.ctl_events = bed.controller().offload_events() +
                 bed.controller().fallback_events() +
                 bed.controller().scale_out_events() +
                 bed.controller().scale_in_events() +
                 bed.controller().failover_events() +
                 bed.controller().fes_provisioned_total();
  r.failovers = bed.controller().failover_events();
  const core::Testbed::NetTotals t = bed.net_totals();
  r.totals = t;
  r.exported = t.exported;
  r.imported = t.imported;
  if (bed.engine() != nullptr) {
    r.pending = bed.engine()->tokens_pending();
    r.late = bed.engine()->late_tokens();
    r.epochs = bed.engine()->epochs_run();
    r.epochs_skipped = bed.engine()->epochs_skipped();
    r.fenced_sections = bed.engine()->fenced_sections_run();
    std::uint64_t sum = 0, mx = 0;
    for (std::uint32_t s = 0; s < bed.shard_count(); ++s) {
      const std::uint64_t b = bed.engine()->shard_busy_ns(s);
      sum += b;
      mx = std::max(mx, b);
    }
    if (mx > 0) {
      r.busy_balance = static_cast<double>(sum) /
                       (static_cast<double>(mx) *
                        static_cast<double>(bed.shard_count()));
      r.ideal_speedup = static_cast<double>(sum) / static_cast<double>(mx);
    }
    for (std::uint32_t s = 0; s < bed.shard_count(); ++s) {
      const auto p = bed.engine()->phase_profile(s);
      r.prof_epochs += p.epochs;
      r.snapshot_wall_ns += p.snapshot_ns;
      r.advance_wall_ns += p.advance_ns;
      r.barrier_wait_wall_ns += p.barrier_wait_ns;
      r.fast_forward_wall_ns += p.fast_forward_ns;
    }
    const auto ep = bed.engine()->engine_profile();
    r.fence_wall_ns = ep.fence_wall_ns;
    r.fence_barriers = ep.fence_barriers;
    r.ff_jumps = ep.ff_jumps;
  }
  r.violations = checker.violations().size();
  r.report = checker.ok() ? "" : checker.report();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::has_flag(argc, argv, "--smoke");
  RunOpts base;
  base.vswitches = static_cast<std::size_t>(std::max(
      64L, benchutil::int_flag(argc, argv, "--vswitches", smoke ? 128 : 10240)));
  base.shards = static_cast<std::size_t>(
      std::max(1L, benchutil::int_flag(argc, argv, "--shards", 8)));
  base.pairs = static_cast<std::size_t>(std::max(
      4L, benchutil::int_flag(argc, argv, "--pairs", smoke ? 8 : 64)));
  base.window_ms = static_cast<int>(std::max(
      200L, benchutil::int_flag(argc, argv, "--window-ms", smoke ? 600 : 1000)));
  const int max_threads = static_cast<int>(
      std::max(1L, benchutil::int_flag(argc, argv, "--max-threads", 8)));
  const unsigned hw = std::thread::hardware_concurrency();

  benchutil::banner(
      "Sharded engine scaling — threaded control plane under churn",
      smoke ? "smoke mode: N-thread fingerprint == 1-thread + conservation "
              "+ failover under fences"
            : "epoch fences let churn (offload push, FE crash, reseed) run "
              "under worker threads without changing a single outcome");
  std::printf("  %zu vswitches, %zu shards, %zu pairs, %dms window, churn "
              "on, host has %u core(s)\n",
              base.vswitches, base.shards, base.pairs, base.window_ms, hw);

  if (smoke) {
    RunOpts o1 = base;
    o1.threads = 1;
    RunOpts o2 = base;
    o2.threads = 2;
    const RunResult t1 = run_one(o1);
    const RunResult t2 = run_one(o2);
    const bool deterministic = t1.fingerprint == t2.fingerprint;
    const bool crossed = t1.exported > 0;
    const bool conserved = t1.violations == 0 && t2.violations == 0 &&
                           t2.exported == t2.imported + t2.pending &&
                           t2.late == 0;
    const bool churned = t1.failovers > 0 && t2.failovers == t1.failovers;
    const bool protocol = t1.epochs_skipped > 0 && t1.fenced_sections > 0 &&
                          t2.fenced_sections > 0;
    const bool profile_inv = t1.prof_epochs == t2.prof_epochs &&
                             t1.fence_barriers == t2.fence_barriers &&
                             t1.ff_jumps == t2.ff_jumps;
    benchutil::verdict(deterministic,
                       "2-thread fingerprint == 1-thread fingerprint "
                       "(churn included)");
    benchutil::verdict(crossed, "offload traffic crossed shard boundaries");
    benchutil::verdict(conserved,
                       "cross-shard conservation + conservative lookahead");
    benchutil::verdict(churned, "FE crash detected and failed over at every "
                                "thread count");
    benchutil::verdict(protocol, "fenced sections ran and sparse epochs "
                                 "were skipped");
    benchutil::verdict(profile_inv,
                       "profile event counts (epochs, fence barriers, "
                       "ff jumps) match across thread counts");
    if (!t1.report.empty()) std::printf("%s\n", t1.report.c_str());
    if (!t2.report.empty()) std::printf("%s\n", t2.report.c_str());
    return deterministic && crossed && conserved && churned && protocol &&
                   profile_inv
               ? 0
               : 1;
  }

  // Reference: the classic engine-less testbed (what every run before the
  // sharded engine measured), same churn script via plain loop events.
  std::printf("\n  [unsharded reference]\n");
  RunOpts oref = base;
  oref.shards = 1;
  oref.threads = 1;
  const RunResult ref = run_one(oref);
  std::printf("    %.2fs wall for the %dms window, %llu packets\n",
              ref.wall_sec, base.window_ms,
              static_cast<unsigned long long>(ref.delivered));

  std::vector<int> sweep;
  for (int t = 1; t <= max_threads; t *= 2) sweep.push_back(t);
  std::vector<RunResult> results;
  for (const int t : sweep) {
    std::printf("  [%d thread(s)] running...\n", t);
    std::fflush(stdout);
    RunOpts o = base;
    o.threads = t;
    results.push_back(run_one(o));
  }

  benchutil::Table tab({"threads", "wall (s)", "vs unsharded", "vs 1-thread",
                        "pkts/wall-sec", "busy balance", "skipped",
                        "fences"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RunResult& r = results[i];
    tab.add_row({std::to_string(sweep[i]), benchutil::fmt(r.wall_sec, 2),
                 benchutil::fmt(ref.wall_sec / r.wall_sec, 2) + "x",
                 benchutil::fmt(results[0].wall_sec / r.wall_sec, 2) + "x",
                 benchutil::fmt_si(static_cast<double>(r.delivered) /
                                   r.wall_sec),
                 benchutil::fmt_pct(r.busy_balance),
                 std::to_string(r.epochs_skipped),
                 std::to_string(r.fenced_sections)});
  }
  tab.print();

  // Where the wall-clock went, per thread count (wall-clock columns are
  // host-dependent; the three count columns must not move with threads).
  std::printf("\n  [phase profile — worker wall-clock attribution]\n");
  benchutil::Table ptab({"threads", "advance (ms)", "snapshot (ms)",
                         "barrier (ms)", "fast-fwd (ms)", "fence (ms)",
                         "epochs", "fence-barriers", "ff-jumps"});
  const auto ms = [](std::uint64_t ns) {
    return benchutil::fmt(static_cast<double>(ns) / 1e6, 1);
  };
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RunResult& r = results[i];
    ptab.add_row({std::to_string(sweep[i]), ms(r.advance_wall_ns),
                  ms(r.snapshot_wall_ns), ms(r.barrier_wait_wall_ns),
                  ms(r.fast_forward_wall_ns), ms(r.fence_wall_ns),
                  std::to_string(r.prof_epochs),
                  std::to_string(r.fence_barriers),
                  std::to_string(r.ff_jumps)});
  }
  ptab.print();

  // Ablation at threads=1: fast-forward off must reproduce the sweep
  // fingerprint; fences off (legacy single-threaded control plane) is
  // wall-clock context only — its event interleaving differs by design.
  std::printf("\n  [ablation, threads=1]\n");
  struct Ablation {
    bool fences;
    bool fast_forward;
    RunResult r;
  };
  std::vector<Ablation> ablation;
  for (const auto& [fen, ff] : std::vector<std::pair<bool, bool>>{
           {true, false}, {false, true}, {false, false}}) {
    RunOpts o = base;
    o.threads = 1;
    o.fences = fen;
    o.fast_forward = ff;
    std::printf("    fences=%d fast_forward=%d running...\n", fen ? 1 : 0,
                ff ? 1 : 0);
    std::fflush(stdout);
    ablation.push_back(Ablation{fen, ff, run_one(o)});
  }
  benchutil::Table atab(
      {"fences", "fast-fwd", "wall (s)", "epochs", "skipped", "sections"});
  for (const Ablation& a : ablation) {
    atab.add_row({a.fences ? "on" : "off", a.fast_forward ? "on" : "off",
                  benchutil::fmt(a.r.wall_sec, 2),
                  std::to_string(a.r.epochs),
                  std::to_string(a.r.epochs_skipped),
                  std::to_string(a.r.fenced_sections)});
  }
  atab.print();

  bool deterministic = true;
  for (const RunResult& r : results) {
    deterministic = deterministic && r.fingerprint == results[0].fingerprint;
  }
  bool conserved = ref.violations == 0;
  for (const RunResult& r : results) {
    conserved = conserved && r.violations == 0 &&
                r.exported == r.imported + r.pending && r.late == 0;
  }
  const RunResult& last = results.back();
  const double best_wall =
      std::min_element(results.begin(), results.end(),
                       [](const RunResult& a, const RunResult& b) {
                         return a.wall_sec < b.wall_sec;
                       })
          ->wall_sec;
  const double best_vs_unsharded = ref.wall_sec / best_wall;
  const double best_vs_1thread = results[0].wall_sec / best_wall;
  const bool protocol_live =
      results[0].epochs_skipped > 0 && results[0].fenced_sections > 0;
  const bool ff_invariant =
      ablation[0].r.fingerprint == results[0].fingerprint &&
      ablation[0].r.epochs_skipped == 0;
  bool churned = ref.failovers > 0;
  for (const RunResult& r : results) {
    churned = churned && r.failovers == results[0].failovers &&
              r.failovers > 0;
  }
  bool profile_inv = true;
  for (const RunResult& r : results) {
    profile_inv = profile_inv && r.prof_epochs == results[0].prof_epochs &&
                  r.fence_barriers == results[0].fence_barriers &&
                  r.ff_jumps == results[0].ff_jumps;
  }

  benchutil::verdict(deterministic,
                     "every thread count produced the same fingerprint "
                     "(churn included)");
  benchutil::verdict(conserved,
                     "cross-shard conservation + 0 late tokens at every "
                     "thread count");
  benchutil::verdict(churned,
                     "FE crash detected and failed over identically at "
                     "every thread count");
  benchutil::verdict(protocol_live,
                     "fenced sections ran and sparse epochs were skipped");
  benchutil::verdict(ff_invariant,
                     "fast-forward off reproduces the fast-forward-on "
                     "fingerprint");
  benchutil::verdict(profile_inv,
                     "profile event counts (epochs, fence barriers, ff "
                     "jumps) identical at every thread count");
  benchutil::verdict(last.ideal_speedup >= 4.0,
                     "shard busy-time balance supports >= 4x (sum/max of "
                     "per-shard busy time)");
  if (hw >= 8) {
    benchutil::verdict(best_vs_1thread >= 3.0,
                       ">= 3x wall-clock vs the 1-thread sharded churn run");
    benchutil::verdict(best_vs_unsharded >= 4.0,
                       ">= 4x wall-clock vs the unsharded single thread");
  } else {
    std::printf("  [SKIP] wall-clock gates (>=3x vs 1-thread, >=4x vs "
                "unsharded) need >= 8 cores; this host has %u — measured "
                "%.2fx / %.2fx, balance-bound %.2fx\n",
                hw, best_vs_1thread, best_vs_unsharded, last.ideal_speedup);
  }
  if (!deterministic) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::printf(
          "    threads=%d fp=%016llx att=%llu comp=%llu sent=%llu del=%llu "
          "drop=%llu infl=%llu bytes=%llu exp=%llu imp=%llu ctl=%llu\n",
          sweep[i], static_cast<unsigned long long>(r.fingerprint),
          static_cast<unsigned long long>(r.attempted),
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.totals.sent),
          static_cast<unsigned long long>(r.totals.delivered),
          static_cast<unsigned long long>(r.totals.dropped),
          static_cast<unsigned long long>(r.totals.in_flight),
          static_cast<unsigned long long>(r.totals.total_bytes),
          static_cast<unsigned long long>(r.totals.exported),
          static_cast<unsigned long long>(r.totals.imported),
          static_cast<unsigned long long>(r.ctl_events));
    }
  }

  std::FILE* json = std::fopen("BENCH_shard.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"schema\": \"nezha-bench-shard-v3\",\n"
               "  \"config\": {\"num_vswitches\": %zu, \"shards\": %zu, "
               "\"pairs\": %zu, \"window_ms\": %d, \"seed\": %llu, "
               "\"hardware_concurrency\": %u, \"quiesce_fences\": 1, "
               "\"fast_forward\": 1, \"churn\": 1},\n"
               "  \"unsharded_reference\": {\"wall_seconds\": %.3f, "
               "\"pkts_per_wall_sec\": %.0f, \"delivered_packets\": %llu, "
               "\"completed_connections\": %llu, \"failovers\": %llu},\n"
               "  \"sweep\": [\n",
               base.vswitches, base.shards, base.pairs, base.window_ms,
               static_cast<unsigned long long>(base.seed), hw, ref.wall_sec,
               static_cast<double>(ref.delivered) / ref.wall_sec,
               static_cast<unsigned long long>(ref.delivered),
               static_cast<unsigned long long>(ref.completed),
               static_cast<unsigned long long>(ref.failovers));
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(
        json,
        "    {\"threads\": %d, \"wall_seconds\": %.3f, "
        "\"speedup_vs_unsharded\": %.3f, \"speedup_vs_1thread\": %.3f, "
        "\"pkts_per_wall_sec\": %.0f, \"busy_balance\": %.4f, "
        "\"ideal_speedup_from_balance\": %.3f, \"exported_tokens\": %llu, "
        "\"epochs\": %llu, \"epochs_skipped\": %llu, "
        "\"fenced_sections\": %llu, \"failovers\": %llu,\n"
        "     \"profile\": {\"epochs\": %llu, \"fence_barriers\": %llu, "
        "\"ff_jumps\": %llu, \"snapshot_wall_ns\": %llu, "
        "\"advance_wall_ns\": %llu, \"barrier_wait_wall_ns\": %llu, "
        "\"fast_forward_wall_ns\": %llu, \"fence_wall_ns\": %llu}}%s\n",
        sweep[i], r.wall_sec, ref.wall_sec / r.wall_sec,
        results[0].wall_sec / r.wall_sec,
        static_cast<double>(r.delivered) / r.wall_sec, r.busy_balance,
        r.ideal_speedup, static_cast<unsigned long long>(r.exported),
        static_cast<unsigned long long>(r.epochs),
        static_cast<unsigned long long>(r.epochs_skipped),
        static_cast<unsigned long long>(r.fenced_sections),
        static_cast<unsigned long long>(r.failovers),
        static_cast<unsigned long long>(r.prof_epochs),
        static_cast<unsigned long long>(r.fence_barriers),
        static_cast<unsigned long long>(r.ff_jumps),
        static_cast<unsigned long long>(r.snapshot_wall_ns),
        static_cast<unsigned long long>(r.advance_wall_ns),
        static_cast<unsigned long long>(r.barrier_wait_wall_ns),
        static_cast<unsigned long long>(r.fast_forward_wall_ns),
        static_cast<unsigned long long>(r.fence_wall_ns),
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"ablation\": [\n");
  for (std::size_t i = 0; i < ablation.size(); ++i) {
    const Ablation& a = ablation[i];
    std::fprintf(
        json,
        "    {\"fences\": %d, \"fast_forward\": %d, \"threads\": 1, "
        "\"wall_seconds\": %.3f, \"fingerprint_hex\": \"%016llx\", "
        "\"epochs\": %llu, \"epochs_skipped\": %llu, "
        "\"fenced_sections\": %llu}%s\n",
        a.fences ? 1 : 0, a.fast_forward ? 1 : 0, a.r.wall_sec,
        static_cast<unsigned long long>(a.r.fingerprint),
        static_cast<unsigned long long>(a.r.epochs),
        static_cast<unsigned long long>(a.r.epochs_skipped),
        static_cast<unsigned long long>(a.r.fenced_sections),
        i + 1 < ablation.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"determinism\": {\"fingerprints_equal_across_threads\": "
               "%d, \"fast_forward_invariant\": %d, "
               "\"profile_counts_thread_invariant\": %d, "
               "\"fingerprint_hex\": \"%016llx\"}\n"
               "}\n",
               deterministic ? 1 : 0, ff_invariant ? 1 : 0,
               profile_inv ? 1 : 0,
               static_cast<unsigned long long>(results[0].fingerprint));
  std::fclose(json);
  std::printf("\n  Wrote BENCH_shard.json\n");

  // Wall-clock gates only apply on hosts with enough cores; determinism,
  // conservation, churn, protocol-liveness and balance gates always do.
  const bool gates_ok =
      deterministic && conserved && churned && protocol_live &&
      ff_invariant && profile_inv && last.ideal_speedup >= 4.0 &&
      (hw < 8 || (best_vs_1thread >= 3.0 && best_vs_unsharded >= 4.0));
  return gates_ok ? 0 : 1;
}
