// Sharded-engine scaling: a 10K-vswitch Clos fleet advanced in parallel.
//
// The scenario is the FleetScenario heavy-hitter mix (servers strided
// across the leaf tier, every server offloaded onto a cross-rack FE pool),
// run once on the classic single-loop testbed as the wall-clock reference
// and then on the sharded engine across a worker-thread sweep. Three things
// are recorded per sweep point:
//   * wall-clock speedup vs the unsharded reference and vs the 1-thread
//     sharded run (the same epochs, rings and merges, minus parallelism);
//   * determinism: every thread count must produce the same fingerprint —
//     this is a hard exit-code gate, not a report line;
//   * the per-shard busy-time balance, whose sum/max bounds the speedup any
//     machine can extract from this partition (on hosts with fewer cores
//     than shards, that bound is the honest headline — measured speedup on
//     an oversubscribed host only measures the scheduler).
//
// Output: stdout tables + BENCH_shard.json (schema nezha-bench-shard-v1,
// README.md) next to the binary's CWD, diffable with tools/nezha_report.
//
// `--smoke` (CI): a small fleet, threads {1, 2}; exits non-zero unless the
// 2-thread fingerprint equals the 1-thread one, traffic actually crossed
// shards, and the cross-shard conservation identity closed. No JSON.
//
// Flags: --vswitches N (10240) --shards K (8) --pairs P (64)
//        --window-ms W (1000) --max-threads T (8)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/invariants.h"
#include "src/core/testbed.h"
#include "src/workload/fleet_model.h"

using namespace nezha;

namespace {

double wall_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RunResult {
  std::uint64_t fingerprint = 0;
  core::Testbed::NetTotals totals{};
  std::uint64_t attempted = 0;
  std::uint64_t ctl_events = 0;  // offload+fallback+scale+failover
  double wall_sec = 0;  // traffic window only (setup/drain excluded)
  std::uint64_t delivered = 0;
  std::uint64_t completed = 0;
  std::uint64_t exported = 0;
  std::uint64_t imported = 0;
  std::uint64_t pending = 0;
  std::uint64_t late = 0;
  std::uint64_t epochs = 0;
  double busy_balance = 0;   // mean/max of per-shard busy time (1.0 = even)
  double ideal_speedup = 0;  // sum/max of per-shard busy time
  std::size_t violations = 0;
  std::string report;
};

/// One full scenario run: deploy + offload at 1 worker (control plane),
/// then a timed traffic window at `threads` workers, then a quiescent drain
/// and invariant check. shards == 1 builds the engine-less reference bed.
RunResult run_one(std::size_t vswitches, std::size_t shards, int threads,
                  std::size_t pairs, int window_ms, std::uint64_t seed) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(vswitches);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.shards = shards;
  cfg.threads = 1;
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = pairs;
  sc.base_attempts_per_sec = 400.0;
  sc.seed = seed;
  workload::FleetScenario scenario(bed, sc);
  core::InvariantChecker checker(bed,
                                 core::InvariantCheckerConfig{.seed = seed});

  scenario.deploy();
  scenario.offload_all();
  bed.run_for(common::seconds(1));  // offload workflows, single-threaded
  checker.check();

  bed.set_threads(threads);
  scenario.start_traffic();
  const std::uint64_t delivered_before = bed.net_totals().delivered;
  const auto t0 = std::chrono::steady_clock::now();
  bed.run_for(common::milliseconds(window_ms));
  const double wall = wall_seconds(t0);
  scenario.stop_traffic();
  bed.run_for(common::milliseconds(250));
  checker.check();

  RunResult r;
  r.fingerprint = scenario.fingerprint();
  r.wall_sec = wall;
  r.delivered = bed.net_totals().delivered - delivered_before;
  for (const auto& wl : scenario.workloads()) {
    r.completed += wl->completed();
    r.attempted += wl->attempted();
  }
  r.ctl_events = bed.controller().offload_events() +
                 bed.controller().fallback_events() +
                 bed.controller().scale_out_events() +
                 bed.controller().scale_in_events() +
                 bed.controller().failover_events() +
                 bed.controller().fes_provisioned_total();
  const core::Testbed::NetTotals t = bed.net_totals();
  r.totals = t;
  r.exported = t.exported;
  r.imported = t.imported;
  if (bed.engine() != nullptr) {
    r.pending = bed.engine()->tokens_pending();
    r.late = bed.engine()->late_tokens();
    r.epochs = bed.engine()->epochs_run();
    std::uint64_t sum = 0, mx = 0;
    for (std::uint32_t s = 0; s < bed.shard_count(); ++s) {
      const std::uint64_t b = bed.engine()->shard_busy_ns(s);
      sum += b;
      mx = std::max(mx, b);
    }
    if (mx > 0) {
      r.busy_balance = static_cast<double>(sum) /
                       (static_cast<double>(mx) *
                        static_cast<double>(bed.shard_count()));
      r.ideal_speedup = static_cast<double>(sum) / static_cast<double>(mx);
    }
  }
  r.violations = checker.violations().size();
  r.report = checker.ok() ? "" : checker.report();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::has_flag(argc, argv, "--smoke");
  const std::size_t vswitches = static_cast<std::size_t>(std::max(
      64L, benchutil::int_flag(argc, argv, "--vswitches", smoke ? 128 : 10240)));
  const std::size_t shards = static_cast<std::size_t>(
      std::max(1L, benchutil::int_flag(argc, argv, "--shards", 8)));
  const std::size_t pairs = static_cast<std::size_t>(std::max(
      1L, benchutil::int_flag(argc, argv, "--pairs", smoke ? 8 : 64)));
  const int window_ms = static_cast<int>(std::max(
      50L, benchutil::int_flag(argc, argv, "--window-ms", smoke ? 500 : 1000)));
  const int max_threads = static_cast<int>(
      std::max(1L, benchutil::int_flag(argc, argv, "--max-threads", 8)));
  constexpr std::uint64_t kSeed = 7;
  const unsigned hw = std::thread::hardware_concurrency();

  benchutil::banner(
      "Sharded engine scaling — parallel fleet simulation",
      smoke ? "smoke mode: N-thread fingerprint == 1-thread + conservation"
            : "lockstep-epoch shards turn cores into simulated-fleet "
              "wall-clock speedup without changing a single outcome");
  std::printf("  %zu vswitches, %zu shards, %zu pairs, %dms window, host "
              "has %u core(s)\n",
              vswitches, shards, pairs, window_ms, hw);

  if (smoke) {
    const RunResult t1 = run_one(vswitches, shards, 1, pairs, window_ms, kSeed);
    const RunResult t2 = run_one(vswitches, shards, 2, pairs, window_ms, kSeed);
    const bool deterministic = t1.fingerprint == t2.fingerprint;
    const bool crossed = t1.exported > 0;
    const bool conserved = t1.violations == 0 && t2.violations == 0 &&
                           t2.exported == t2.imported + t2.pending &&
                           t2.late == 0;
    benchutil::verdict(deterministic,
                       "2-thread fingerprint == 1-thread fingerprint");
    benchutil::verdict(crossed, "offload traffic crossed shard boundaries");
    benchutil::verdict(conserved,
                       "cross-shard conservation + conservative lookahead");
    if (!t1.report.empty()) std::printf("%s\n", t1.report.c_str());
    if (!t2.report.empty()) std::printf("%s\n", t2.report.c_str());
    return deterministic && crossed && conserved ? 0 : 1;
  }

  // Reference: the classic engine-less testbed (what every run before the
  // sharded engine measured).
  std::printf("\n  [unsharded reference]\n");
  const RunResult ref = run_one(vswitches, 1, 1, pairs, window_ms, kSeed);
  std::printf("    %.2fs wall for the %dms window, %llu packets\n",
              ref.wall_sec, window_ms,
              static_cast<unsigned long long>(ref.delivered));

  std::vector<int> sweep;
  for (int t = 1; t <= max_threads; t *= 2) sweep.push_back(t);
  std::vector<RunResult> results;
  for (const int t : sweep) {
    std::printf("  [%d thread(s)] running...\n", t);
    std::fflush(stdout);
    results.push_back(run_one(vswitches, shards, t, pairs, window_ms, kSeed));
  }

  benchutil::Table tab({"threads", "wall (s)", "vs unsharded", "vs 1-thread",
                        "pkts/wall-sec", "busy balance"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RunResult& r = results[i];
    tab.add_row({std::to_string(sweep[i]), benchutil::fmt(r.wall_sec, 2),
                 benchutil::fmt(ref.wall_sec / r.wall_sec, 2) + "x",
                 benchutil::fmt(results[0].wall_sec / r.wall_sec, 2) + "x",
                 benchutil::fmt_si(static_cast<double>(r.delivered) /
                                   r.wall_sec),
                 benchutil::fmt_pct(r.busy_balance)});
  }
  tab.print();

  bool deterministic = true;
  for (const RunResult& r : results) {
    deterministic = deterministic && r.fingerprint == results[0].fingerprint;
  }
  bool conserved = ref.violations == 0;
  for (const RunResult& r : results) {
    conserved = conserved && r.violations == 0 &&
                r.exported == r.imported + r.pending && r.late == 0;
  }
  const RunResult& last = results.back();
  const double best_speedup =
      ref.wall_sec /
      std::min_element(results.begin(), results.end(),
                       [](const RunResult& a, const RunResult& b) {
                         return a.wall_sec < b.wall_sec;
                       })
          ->wall_sec;

  benchutil::verdict(deterministic,
                     "every thread count produced the same fingerprint");
  benchutil::verdict(conserved,
                     "cross-shard conservation + 0 late tokens at every "
                     "thread count");
  benchutil::verdict(last.ideal_speedup >= 4.0,
                     "shard busy-time balance supports >= 4x (sum/max of "
                     "per-shard busy time)");
  if (hw >= 8) {
    benchutil::verdict(best_speedup >= 4.0,
                       ">= 4x wall-clock vs the unsharded single thread");
  } else {
    std::printf("  [SKIP] wall-clock >=4x gate needs >= 8 cores; this host "
                "has %u — measured best %.2fx, balance-bound %.2fx\n",
                hw, best_speedup, last.ideal_speedup);
  }
  if (!deterministic) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::printf(
          "    threads=%d fp=%016llx att=%llu comp=%llu sent=%llu del=%llu "
          "drop=%llu infl=%llu bytes=%llu exp=%llu imp=%llu ctl=%llu\n",
          sweep[i], static_cast<unsigned long long>(r.fingerprint),
          static_cast<unsigned long long>(r.attempted),
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.totals.sent),
          static_cast<unsigned long long>(r.totals.delivered),
          static_cast<unsigned long long>(r.totals.dropped),
          static_cast<unsigned long long>(r.totals.in_flight),
          static_cast<unsigned long long>(r.totals.total_bytes),
          static_cast<unsigned long long>(r.totals.exported),
          static_cast<unsigned long long>(r.totals.imported),
          static_cast<unsigned long long>(r.ctl_events));
    }
  }

  std::FILE* json = std::fopen("BENCH_shard.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"schema\": \"nezha-bench-shard-v1\",\n"
               "  \"config\": {\"num_vswitches\": %zu, \"shards\": %zu, "
               "\"pairs\": %zu, \"window_ms\": %d, \"seed\": %llu, "
               "\"hardware_concurrency\": %u},\n"
               "  \"unsharded_reference\": {\"wall_seconds\": %.3f, "
               "\"pkts_per_wall_sec\": %.0f, \"delivered_packets\": %llu, "
               "\"completed_connections\": %llu},\n"
               "  \"sweep\": [\n",
               vswitches, shards, pairs, window_ms,
               static_cast<unsigned long long>(kSeed), hw, ref.wall_sec,
               static_cast<double>(ref.delivered) / ref.wall_sec,
               static_cast<unsigned long long>(ref.delivered),
               static_cast<unsigned long long>(ref.completed));
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(
        json,
        "    {\"threads\": %d, \"wall_seconds\": %.3f, "
        "\"speedup_vs_unsharded\": %.3f, \"speedup_vs_1thread\": %.3f, "
        "\"pkts_per_wall_sec\": %.0f, \"busy_balance\": %.4f, "
        "\"ideal_speedup_from_balance\": %.3f, \"exported_tokens\": %llu, "
        "\"epochs\": %llu}%s\n",
        sweep[i], r.wall_sec, ref.wall_sec / r.wall_sec,
        results[0].wall_sec / r.wall_sec,
        static_cast<double>(r.delivered) / r.wall_sec, r.busy_balance,
        r.ideal_speedup, static_cast<unsigned long long>(r.exported),
        static_cast<unsigned long long>(r.epochs),
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"determinism\": {\"fingerprints_equal_across_threads\": "
               "%d, \"fingerprint_hex\": \"%016llx\"}\n"
               "}\n",
               deterministic ? 1 : 0,
               static_cast<unsigned long long>(results[0].fingerprint));
  std::fclose(json);
  std::printf("\n  Wrote BENCH_shard.json\n");

  // The wall-clock gate only applies on hosts with enough cores; the
  // determinism/conservation/balance gates always do.
  const bool gates_ok = deterministic && conserved &&
                        last.ideal_speedup >= 4.0 &&
                        (hw < 8 || best_speedup >= 4.0);
  return gates_ok ? 0 : 1;
}
