// Table 4: completion time for activating offloading (trigger → all
// traffic forwarded through the FEs).
// Paper: avg 1077ms, P90 1503ms, P99 2087ms, P999 2858ms.
//
// We run thousands of offload events through the controller's actual
// workflow (FE config pushes, BE config, gateway update, learning interval)
// on a fleet testbed and report the recorded activation distribution.
#include "bench/bench_util.h"
#include "src/core/testbed.h"

using namespace nezha;

int main() {
  benchutil::banner("Table 4 — completion time for activating offloading",
                    "avg 1077ms, P90 1503ms, P99 2087ms, P999 2858ms");

  // A fleet big enough to host many independent offloads.
  core::TestbedConfig cfg;
  cfg.num_vswitches = 64;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.vswitch.rule_memory_bytes = 64ull << 30;  // never the limiting factor
  core::Testbed bed(cfg);

  constexpr int kEvents = 4000;
  for (int i = 0; i < kEvents; ++i) {
    vswitch::VnicConfig v;
    v.id = static_cast<tables::VnicId>(i + 1);
    v.addr = tables::OverlayAddr{
        7, net::Ipv4Addr(10, static_cast<std::uint8_t>(1 + i / 60000),
                         static_cast<std::uint8_t>((i / 250) % 240),
                         static_cast<std::uint8_t>(i % 250 + 1))};
    v.profile.synthetic_rule_bytes = 2 << 20;
    const std::size_t home = i % bed.size();
    bed.add_vnic(home, v);
    auto st = bed.controller().trigger_offload(v.id);
    if (!st.ok()) {
      std::printf("offload %d failed: %s\n", i, st.error().message.c_str());
      return 1;
    }
    bed.run_for(common::seconds(5));  // let the workflow finish
  }

  const auto& completion = bed.controller().offload_completion();
  benchutil::Table t({"statistic", "paper (ms)", "measured (ms)"});
  t.add_row({"avg", "1077", benchutil::fmt(completion.mean(), 0)});
  t.add_row({"P90", "1503", benchutil::fmt(completion.percentile(90), 0)});
  t.add_row({"P99", "2087", benchutil::fmt(completion.percentile(99), 0)});
  t.add_row({"P999", "2858", benchutil::fmt(completion.percentile(99.9), 0)});
  t.print();

  benchutil::verdict(completion.mean() > 600 && completion.mean() < 1600 &&
                         completion.percentile(99) < 3500,
                     "activation ≈1s average, ≈2s P99 (seconds, not minutes)");
  std::printf("  (%d offload events simulated)\n", kEvents);
  return 0;
}
