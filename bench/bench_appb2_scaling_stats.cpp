// Appendix B.2: 30-day production validation of the initial-#FEs choice.
// Paper: 2,499 offload events provisioned 10,062 FEs in total against a
// theoretical 9,996 (= 2499 × 4) — at most 66 scale-outs, i.e. ≤2.6% of the
// resource pools ever needed to grow beyond the initial 4 FEs.
//
// We replay a month of offload events through the controller on a fleet
// testbed; each offloaded vNIC's demand is drawn from the heavy-tailed
// usage model, and scale-out fires only when one vNIC's demand exceeds the
// 4-FE pool capacity — reproducing the "4 is almost always enough" result.
#include <cmath>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/testbed.h"
#include "src/workload/fleet_model.h"

using namespace nezha;

int main() {
  benchutil::banner("Appendix B.2 — 30-day scale-out statistics",
                    "2499 offloads → 10062 FEs; ≤2.6% of pools scaled out");

  core::TestbedConfig cfg;
  cfg.num_vswitches = 96;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.vswitch.rule_memory_bytes = 64ull << 30;
  core::Testbed bed(cfg);

  workload::FleetModel fleet(workload::FleetModelConfig{.seed = 30});
  common::Rng rng(31);

  constexpr int kOffloadEvents = 2499;
  // A 4-FE pool covers the vast majority of offloaded vNICs; only the very
  // top of the usage tail (the few users whose demand exceeds ~4x a single
  // vSwitch) needs more. Draw demand in units of "single-vSwitch CPS
  // capacity" from the Table-1 tail, scaled so an offload is triggered at
  // ~1x and the heaviest users reach ~5-6x.
  const auto usage =
      fleet.sample_usage(workload::HotspotCause::kCps, kOffloadEvents);

  int scale_out_events = 0;
  std::uint64_t extra_fes = 0;
  for (int i = 0; i < kOffloadEvents; ++i) {
    vswitch::VnicConfig v;
    v.id = static_cast<tables::VnicId>(i + 1);
    v.addr = tables::OverlayAddr{
        7, net::Ipv4Addr(10, static_cast<std::uint8_t>(1 + i / 60000),
                         static_cast<std::uint8_t>((i / 250) % 240),
                         static_cast<std::uint8_t>(i % 250 + 1))};
    v.profile.synthetic_rule_bytes = 2 << 20;
    bed.add_vnic(i % bed.size(), v);
    if (!bed.controller().trigger_offload(v.id).ok()) continue;
    bed.run_for(common::seconds(5));

    // Demand in FE units: offload triggers near 1 vSwitch of load; the
    // usage sample places the vNIC in the heavy tail, scaled so that the
    // P97-ish user needs a 5th FE (the paper's 2.6% scale-out rate) and
    // even the heaviest users need only one or two extra.
    const double demand_fes = 1.0 + 62.0 * usage[static_cast<size_t>(i)];
    if (demand_fes > 4.0) {
      const auto add = std::min<std::size_t>(
          2, static_cast<std::size_t>(std::ceil(demand_fes)) - 4);
      if (bed.controller().scale_out(v.id, add).ok()) {
        ++scale_out_events;
        extra_fes += add;
        bed.run_for(common::seconds(2));
      }
    }
  }

  const std::uint64_t total_fes = bed.controller().fes_provisioned_total();
  benchutil::Table t({"metric", "paper", "measured"});
  t.add_row({"offload events", "2499", std::to_string(kOffloadEvents)});
  t.add_row({"theoretical FEs (x4)", "9996",
             std::to_string(kOffloadEvents * 4)});
  t.add_row({"total FEs provisioned", "10062", std::to_string(total_fes)});
  t.add_row({"scale-out events (max)", "66", std::to_string(scale_out_events)});
  t.add_row({"pools that scaled out", "<=2.6%",
             benchutil::fmt_pct(static_cast<double>(scale_out_events) /
                                kOffloadEvents)});
  t.print();

  const double frac =
      static_cast<double>(scale_out_events) / kOffloadEvents;
  benchutil::verdict(frac < 0.06 && total_fes >= 9996ull,
                     "4 initial FEs satisfy >94% of offloads");
  return 0;
}
