// Ablation: Nezha's state-decoupled pool vs a Sirius-style stateful pool.
//
// Two architectural taxes of keeping state in the remote pool (§2.3.3, §8):
//  1) In-line replication (ping-pong between primary/secondary card) halves
//     the pool's new-connection capacity.
//  2) Load rebalancing requires state transfer for long-lived flows; Nezha
//     rebalances with zero state movement (a moved flow just re-executes
//     one rule lookup at the new FE, ~10µs).
#include "bench/bench_util.h"
#include "src/baseline/capacity_model.h"
#include "src/baseline/sirius_model.h"
#include "src/common/rng.h"

using namespace nezha;

int main() {
  benchutil::banner("Ablation — Nezha vs Sirius-style stateful pool",
                    "in-line replication halves pool CPS; bucket moves "
                    "transfer long-lived state, Nezha moves none");

  // --- CPS capacity of an N-node pool, equal per-node capability ---
  baseline::DeploymentParams p;
  p.vm_kernel_cps_limit = 1e12;  // isolate the pool term
  const double per_node_cps = p.vswitch_cycles_per_sec / p.conn_cycles_fe;
  benchutil::Table t({"#pool nodes", "Nezha pool CPS", "Sirius pool CPS",
                      "Nezha / Sirius"});
  bool cps_ok = true;
  for (std::size_t n : {2ul, 4ul, 8ul, 16ul}) {
    const double nezha = baseline::CapacityModel::nezha_cps(p, n);
    const double sirius = baseline::SiriusModel::effective_cps(per_node_cps, n);
    // Beyond ~6 nodes Nezha's BE (single state owner) becomes its own
    // ceiling; the replication tax comparison applies while the pool term
    // dominates.
    if (n <= 4) cps_ok = cps_ok && nezha > 1.8 * sirius;
    t.add_row({std::to_string(n), benchutil::fmt_si(nezha),
               benchutil::fmt_si(sirius), benchutil::fmt(nezha / sirius, 2)});
  }
  t.print();
  benchutil::verdict(cps_ok,
                     "active-active stateless pool ≈2x the ping-pong "
                     "replicated pool (while pool-bound; Nezha's own BE "
                     "ceiling appears at large N)");

  // --- state transfer under load rebalancing ---
  baseline::SiriusModel sirius(4, 64);
  common::Rng rng(55);
  std::size_t long_lived = 0;
  constexpr int kFlows = 20000;
  for (int i = 0; i < kFlows; ++i) {
    net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1),
                      net::Ipv4Addr(10, rng.uniform_u64(0, 255) & 0xff,
                                    rng.uniform_u64(0, 255) & 0xff, 2),
                      static_cast<std::uint16_t>(rng.uniform_u64(1024, 65535)),
                      443, net::IpProto::kTcp};
    const bool ll = rng.chance(0.2);  // 20% long-lived
    if (ll) ++long_lived;
    sirius.flow_started(ft, ll);
  }
  std::uint64_t transfers = 0;
  for (int round = 0; round < 8; ++round) transfers += sirius.rebalance(4);

  benchutil::Table t2({"metric", "Sirius", "Nezha"});
  t2.add_row({"live flows", std::to_string(sirius.live_flows()),
              std::to_string(kFlows)});
  t2.add_row({"state transfers over 8 rebalances", std::to_string(transfers),
              "0"});
  t2.add_row({"per-moved-flow cost", "state snapshot + transfer + sync",
              "one rule-table lookup (~10us)"});
  t2.print();
  benchutil::verdict(transfers > 0,
                     "the stateful pool cannot rebalance long-lived flows "
                     "without state transfer");
  std::printf("  (%zu of %d flows long-lived; Nezha keeps state at the BE "
              "in one copy, so rebalancing moves nothing)\n",
              long_lived, kFlows);
  return 0;
}
