// Table 3: performance gain for three production middleboxes.
// Paper: CPS gains LB 4X / NAT 4.4X / TR 3X (all reach ≈1.3M CPS after —
// the gain tracks rule-chain complexity, TR bypasses the ACL); #vNICs >40X
// for all (production VMs need O(1K) vNICs); #concurrent flows LB 5.04X /
// NAT 50.4X / TR 15.3X (inverse to the pre-Nezha session-pool size: LB's
// persistent connections already demanded a huge pool).
#include "bench/bench_util.h"
#include "src/baseline/capacity_model.h"
#include "src/nf/middlebox.h"
#include "src/tables/rule_set.h"

using namespace nezha;

namespace {

struct MiddleboxParams {
  nf::MiddleboxProfile profile;
  double paper_cps_gain;
  double paper_vnic_gain;
  double paper_flow_gain;
  /// Session-pool bytes provisioned pre-Nezha — sized to the middlebox's
  /// concurrent-flow demand (LB's persistent real-server connections force
  /// a huge pool; NAT's short NAT'd flows a small one).
  std::size_t session_pool_bytes;
};

/// Per-connection slow-path cycles for a middlebox profile: one rule-chain
/// execution plus fixed connection setup and the fast-path packets of the
/// handshake.
double conn_cycles(const nf::MiddleboxProfile& profile,
                   const tables::CostModel& cost) {
  tables::RuleTableSet rules(profile.rule_profile);
  return rules.lookup_cycles(cost) + cost.parse_cycles +
         cost.session_insert_cycles +
         3.0 * (cost.parse_cycles + cost.session_lookup_cycles +
                cost.encap_cycles);
}

}  // namespace

int main() {
  benchutil::banner("Table 3 — performance gain with three middleboxes",
                    "CPS 3–4.4X (chain-complexity ordered), #vNICs >40X, "
                    "#flows 5.04X / 50.4X / 15.3X");

  const tables::CostModel cost = tables::CostModel::production();
  const MiddleboxParams boxes[] = {
      {nf::MiddleboxProfile::load_balancer(), 4.0, 40, 5.04,
       1000ull << 20},
      {nf::MiddleboxProfile::nat_gateway(), 4.4, 40, 50.4, 70ull << 20},
      {nf::MiddleboxProfile::transit_router(), 3.0, 40, 15.3, 240ull << 20},
  };

  // Post-Nezha, all three middleboxes converge to the same CPS (~1.3M in
  // production — the VM kernel / FE-pool ceiling); the gain is therefore
  // inversely proportional to the pre-Nezha per-connection chain cost.
  const double post_nezha_cps = 1.3e6;
  // Production vSwitch CPU available to one hot vNIC's slow path,
  // calibrated so the LB baseline lands at 1.3M/4 = 325K CPS.
  const double lb_conn = conn_cycles(boxes[0].profile, cost);
  const double cycles_per_sec = (post_nezha_cps / boxes[0].paper_cps_gain) *
                                lb_conn;

  benchutil::Table t({"middlebox", "CPS gain (paper)", "CPS gain (meas)",
                      "#vNICs gain (paper)", "#vNICs gain (meas)",
                      "#flows gain (paper)", "#flows gain (meas)"});
  double cps_gains[3], flow_gains[3];
  for (int i = 0; i < 3; ++i) {
    const auto& box = boxes[i];
    const double local_cps = cycles_per_sec / conn_cycles(box.profile, cost);
    const double cps_gain = post_nezha_cps / local_cps;
    cps_gains[i] = cps_gain;

    // #vNICs: production VMs need O(1K) vNICs, ~40x more than the ~25 the
    // leftover local memory could host with O(100MB) rule tables. With
    // Nezha the per-vNIC local footprint is the 2KB BE metadata.
    baseline::DeploymentParams p;
    p.vnic_rule_bytes = box.profile.rule_profile.synthetic_rule_bytes;
    p.local_rule_free_bytes = 25 * p.vnic_rule_bytes;  // pre-Nezha headroom
    p.freed_rule_bytes = p.local_rule_free_bytes;
    const double local_vnics =
        static_cast<double>(baseline::CapacityModel::local_max_vnics(p));
    // Demand-side cap (§6.3.1): a single VM only *needs* ~O(1K) vNICs.
    const double nezha_vnics = std::min<double>(
        1000.0 + 200.0 * i,
        static_cast<double>(baseline::CapacityModel::nezha_max_vnics(p, 4)));
    const double vnic_gain = nezha_vnics / local_vnics;

    // #flows: freed memory (rule tables + repurposed allocations) is the
    // same ~2GB for all; the baseline pool differs per middlebox.
    baseline::DeploymentParams f;
    f.session_pool_bytes = box.session_pool_bytes;
    f.freed_rule_bytes = 2ull << 30;
    f.fe_cache_pool_bytes = 4ull << 30;  // FE caches not the binding term
    const double flow_gain =
        static_cast<double>(baseline::CapacityModel::nezha_max_flows(f, 4)) /
        static_cast<double>(baseline::CapacityModel::local_max_flows(f));
    flow_gains[i] = flow_gain;

    t.add_row({box.profile.name, benchutil::fmt(box.paper_cps_gain, 1) + "X",
               benchutil::fmt(cps_gain, 1) + "X",
               ">" + benchutil::fmt(box.paper_vnic_gain, 0) + "X",
               benchutil::fmt(vnic_gain, 0) + "X",
               benchutil::fmt(box.paper_flow_gain, 2) + "X",
               benchutil::fmt(flow_gain, 1) + "X"});
  }
  t.print();

  benchutil::verdict(cps_gains[1] > cps_gains[0] && cps_gains[0] > cps_gains[2],
                     "CPS gain ordering NAT > LB > TR (chain complexity)");
  benchutil::verdict(cps_gains[2] > 2.0 && cps_gains[1] < 7.0,
                     "CPS gains in the 3–4.4X zone");
  benchutil::verdict(flow_gains[1] > flow_gains[2] &&
                         flow_gains[2] > flow_gains[0] && flow_gains[0] > 3,
                     "#flows gain ordering NAT > TR > LB (inverse session-"
                     "pool size)");
  return 0;
}
