// Engine hot-path microbenchmarks + end-to-end throughput baseline.
//
// Unlike the per-figure benches (which reproduce paper artifacts), this one
// tracks the simulator's OWN performance trajectory: the four hot paths the
// slow-path chain and flow-table bottlenecks stress (§2.2.2) — ACL lookup,
// LPM lookup, session-table ops, event-loop ops — plus an end-to-end
// packets-per-wall-clock-second run on the standard testbed topology.
//
// Output: human-readable tables on stdout AND a machine-readable
// BENCH_engine.json (schema v4, documented in README.md) so future PRs have
// a recorded baseline to beat (tools/nezha_report diffs a fresh run against
// the checked-in copy). Reference implementations of the pre-overhaul
// structures (linear ACL scan, all-33-lengths LPM probe) are kept inline
// here both as the speedup denominator and as a differential sanity check:
// the bench aborts if the indexed structures ever disagree with them.
//
// Additional phases (this PR): a steady-state allocation audit (the
// zero-allocation datapath contract, counted via the nezha_alloc_hook
// operator-new replacement) and a 1024-vswitch Clos macro run exercising
// the dense underlay at fleet scale.
//
// `--smoke` runs only the determinism + allocation gates (Release CI job):
// exits non-zero if the e2e fingerprint drifts, a steady-state packet
// allocates, or the setup phase exceeds its per-connection allocation
// budget; does not rewrite BENCH_engine.json.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/testbed.h"
#include "src/flow/session_table.h"
#include "src/sim/event_loop.h"
#include "src/tables/acl.h"
#include "src/tables/lpm.h"
#include "src/workload/cps_workload.h"
#include "support/alloc_hook.h"

using namespace nezha;

namespace {

// Pre-change baseline: the pre-burst-mode binary running this same e2e
// scenario, measured interleaved with the post-change binary on the same
// machine in the same session (wall-clock on this shared container drifts
// ±15-20% between sessions, so only interleaved A/B ratios are trustworthy
// — see the README re-baselining note).
constexpr double kPreChangeE2ePktsPerSec = 879000;
constexpr double kPreChangeAclLookupsPerSec = 813636;
// Steady-state datapath baseline: the pre-zero-allocation binary on the
// offloaded BE↔FE pump, same interleaved-A/B method.
constexpr double kPreChangeSteadyPktsPerSec = 2.48e6;
// Burst configuration for the e2e run (DESIGN.md §11): the largest windows
// whose event-interleaving distortion stays within 0.02% of the exact-timing
// run. (wnet=256µs cost −0.5% packets, wcpu=128µs −4% — quantization delay
// compounds through the closed-loop handshake RTT, so the windows below are
// the knee, not the maximum.) Aging at the closed-TTL cadence keeps the
// dead-entry population ~10x smaller under ~570K conns/s churn; it is
// fingerprint-neutral (aging is wall-clock-only bookkeeping).
constexpr int kE2eNetBurstUs = 192;
constexpr int kE2eCpuBurstUs = 64;
constexpr int kE2eTimerWindowUs = 64;
constexpr int kE2eAgingPeriodMs = 100;
// Determinism fingerprint of the e2e run under the burst configuration
// above. Re-baselined (from 4585995/1146438, the exact-timing fingerprint
// the seed engine produced) when burst windows were turned on for this
// scenario: window quantization legitimately shifts event interleaving by
// −0.017% packets / −0.013% connections. Exact timing (all windows 0)
// still reproduces the old fingerprint and stays the unit-test default;
// tests/burst_determinism_test.cpp pins both.
constexpr std::uint64_t kGoldenE2ePackets = 4585200;
constexpr std::uint64_t kGoldenE2eConnections = 1146286;
// Setup-phase allocation budget: once slabs, indexes and timer rings are
// warm (first simulated second), opening a connection must be amortized
// allocation-free. What remains under the budget is session-slab growth —
// established entries age on an 8s TTL, so the table is still ramping
// toward equilibrium through the whole 4s run (measured ~0.012/conn; the
// per-closure spill this gate was built to catch costs ~0.5/conn).
constexpr double kSetupAllocsPerConnBudget = 0.02;

double wall_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ------------------------------------------------------------ reference ACL
// Faithful copy of the pre-overhaul AclTable: one priority-sorted vector,
// scanned linearly until the first match.
struct ReferenceAcl {
  std::vector<tables::AclRule> rules;
  flow::Verdict default_verdict = flow::Verdict::kAccept;

  void add_rule(tables::AclRule rule) {
    auto pos = std::lower_bound(rules.begin(), rules.end(), rule,
                                [](const tables::AclRule& a,
                                   const tables::AclRule& b) {
                                  return a.priority < b.priority;
                                });
    rules.insert(pos, std::move(rule));
  }
  flow::Verdict lookup(const net::FiveTuple& ft, flow::Direction dir) const {
    for (const auto& rule : rules) {
      if (rule.direction && *rule.direction != dir) continue;
      if (rule.proto && *rule.proto != ft.proto) continue;
      if (!rule.src.contains(ft.src_ip)) continue;
      if (!rule.dst.contains(ft.dst_ip)) continue;
      if (!rule.src_ports.contains(ft.src_port)) continue;
      if (!rule.dst_ports.contains(ft.dst_port)) continue;
      return rule.verdict;
    }
    return default_verdict;
  }
};

// ------------------------------------------------------------ reference LPM
// Faithful copy of the pre-overhaul LpmTable::lookup: probe every length
// from /32 down, including empty ones.
struct ReferenceLpm {
  std::array<std::unordered_map<std::uint32_t, int>, 33> levels;

  void insert(tables::Prefix p, int v) {
    levels[p.length].insert_or_assign(p.network(), v);
  }
  const int* lookup(net::Ipv4Addr ip) const {
    for (int len = 32; len >= 0; --len) {
      const auto& level = levels[static_cast<std::size_t>(len)];
      if (level.empty()) continue;
      const std::uint32_t mask = (len == 0) ? 0u : (~0u << (32 - len));
      auto it = level.find(ip.value() & mask);
      if (it != level.end()) return &it->second;
    }
    return nullptr;
  }
};

net::FiveTuple random_tuple(common::Rng& rng) {
  return net::FiveTuple{
      net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
      net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
      static_cast<std::uint16_t>(rng.uniform_u64(0, 65535)),
      static_cast<std::uint16_t>(rng.uniform_u64(0, 65535)),
      rng.chance(0.5) ? net::IpProto::kTcp : net::IpProto::kUdp};
}

// A realistic mixed tenant ACL: prefix scopes, port ranges, a spread of
// protocols and directions (what the (proto, direction) partitioning and the
// priority merge have to handle in the field).
tables::AclRule random_rule(common::Rng& rng) {
  tables::AclRule r;
  r.priority = static_cast<std::uint32_t>(rng.uniform_u64(0, 1000));
  r.src = tables::Prefix{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                         static_cast<std::uint8_t>(rng.uniform_u64(8, 24))};
  r.dst = tables::Prefix{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                         static_cast<std::uint8_t>(rng.uniform_u64(8, 24))};
  const std::uint16_t lo =
      static_cast<std::uint16_t>(rng.uniform_u64(0, 60000));
  r.dst_ports = tables::PortRange{
      lo, static_cast<std::uint16_t>(lo + rng.uniform_u64(0, 4000))};
  const std::uint64_t proto = rng.uniform_u64(0, 3);
  if (proto == 0) r.proto = net::IpProto::kTcp;
  if (proto == 1) r.proto = net::IpProto::kUdp;
  if (proto == 2) r.proto = net::IpProto::kIcmp;
  const std::uint64_t dir = rng.uniform_u64(0, 2);
  if (dir == 0) r.direction = flow::Direction::kTx;
  if (dir == 1) r.direction = flow::Direction::kRx;
  r.verdict = rng.chance(0.5) ? flow::Verdict::kDrop : flow::Verdict::kAccept;
  return r;
}

struct AclResult {
  double indexed_per_sec = 0;
  double reference_per_sec = 0;
};

AclResult bench_acl(std::size_t n_rules, int n_lookups) {
  common::Rng rng(0xac1);
  tables::AclTable acl(flow::Verdict::kAccept);
  ReferenceAcl ref;
  for (std::size_t i = 0; i < n_rules; ++i) {
    const tables::AclRule r = random_rule(rng);
    acl.add_rule(r);
    ref.add_rule(r);
  }
  std::vector<net::FiveTuple> queries;
  std::vector<flow::Direction> dirs;
  queries.reserve(static_cast<std::size_t>(n_lookups));
  for (int i = 0; i < n_lookups; ++i) {
    queries.push_back(random_tuple(rng));
    dirs.push_back(rng.chance(0.5) ? flow::Direction::kTx
                                   : flow::Direction::kRx);
  }

  AclResult out;
  std::uint64_t sum_idx = 0, sum_ref = 0;
  // Alternating best-of-N rounds: a single back-to-back measurement hands
  // whichever loop runs second warmed caches and predictors.
  for (int round = 0; round < 3; ++round) {
    std::uint64_t s = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n_lookups; ++i) {
      s += static_cast<std::uint64_t>(
          acl.lookup(queries[static_cast<std::size_t>(i)],
                     dirs[static_cast<std::size_t>(i)]));
    }
    out.indexed_per_sec =
        std::max(out.indexed_per_sec, n_lookups / wall_seconds(t0));
    sum_idx = s;

    s = 0;
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n_lookups; ++i) {
      s += static_cast<std::uint64_t>(
          ref.lookup(queries[static_cast<std::size_t>(i)],
                     dirs[static_cast<std::size_t>(i)]));
    }
    out.reference_per_sec =
        std::max(out.reference_per_sec, n_lookups / wall_seconds(t0));
    sum_ref = s;
  }

  if (sum_idx != sum_ref) {
    std::fprintf(stderr, "FATAL: ACL differential mismatch (%llu vs %llu)\n",
                 static_cast<unsigned long long>(sum_idx),
                 static_cast<unsigned long long>(sum_ref));
    std::abort();
  }
  return out;
}

struct LpmResult {
  double indexed_per_sec = 0;
  double reference_per_sec = 0;
};

LpmResult bench_lpm(std::size_t n_prefixes, int n_lookups) {
  common::Rng rng(0x17a);
  tables::LpmTable<int> lpm;
  ReferenceLpm ref;
  // Routing tables populate a handful of lengths, not all 33.
  const std::uint8_t lengths[] = {10, 16, 20, 24, 32};
  for (std::size_t i = 0; i < n_prefixes; ++i) {
    tables::Prefix p{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                     lengths[rng.uniform_u64(0, 4)]};
    lpm.insert(p, static_cast<int>(i));
    ref.insert(p, static_cast<int>(i));
  }
  std::vector<net::Ipv4Addr> queries;
  queries.reserve(static_cast<std::size_t>(n_lookups));
  for (int i = 0; i < n_lookups; ++i) {
    queries.emplace_back(static_cast<std::uint32_t>(rng.next()));
  }

  LpmResult out;
  std::uint64_t sum_idx = 0, sum_ref = 0;
  // Alternating best-of-N rounds (see bench_acl).
  for (int round = 0; round < 3; ++round) {
    std::uint64_t s = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (const auto ip : queries) {
      const int* v = lpm.lookup(ip);
      s += v ? static_cast<std::uint64_t>(*v) : 0xdead;
    }
    out.indexed_per_sec =
        std::max(out.indexed_per_sec, n_lookups / wall_seconds(t0));
    sum_idx = s;

    s = 0;
    t0 = std::chrono::steady_clock::now();
    for (const auto ip : queries) {
      const int* v = ref.lookup(ip);
      s += v ? static_cast<std::uint64_t>(*v) : 0xdead;
    }
    out.reference_per_sec =
        std::max(out.reference_per_sec, n_lookups / wall_seconds(t0));
    sum_ref = s;
  }

  if (sum_idx != sum_ref) {
    std::fprintf(stderr, "FATAL: LPM differential mismatch\n");
    std::abort();
  }
  return out;
}

// Session table: churn (find_or_create + find + erase) and the aging sweep
// with a large live table — the two patterns the flat layout and the TTL
// wheel target.
struct SessionResult {
  double churn_ops_per_sec = 0;
  double age_sweeps_per_sec = 0;
};

SessionResult bench_session_table(std::size_t n_keys) {
  common::Rng rng(0x5e55);
  std::vector<flow::SessionKey> keys;
  keys.reserve(n_keys);
  for (std::size_t i = 0; i < n_keys; ++i) {
    keys.push_back(flow::SessionKey::from_packet(
        static_cast<std::uint32_t>(rng.uniform_u64(1, 8)), random_tuple(rng)));
  }

  SessionResult out;
  flow::SessionTable table{flow::SessionTableConfig{}};
  std::uint64_t ops = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < 3; ++round) {
    for (const auto& k : keys) {
      auto* e = table.find_or_create(k, 0);
      e->state.last_active = common::seconds(1);
      ++ops;
    }
    for (const auto& k : keys) {
      ops += table.find(k) != nullptr;
    }
    for (std::size_t i = 0; i < keys.size(); i += 2) {
      table.erase(keys[i]);
      ++ops;
    }
  }
  out.churn_ops_per_sec = static_cast<double>(ops) / wall_seconds(t0);

  // Aging: a full table where nothing is expired — the common steady-state
  // sweep. The pre-overhaul table rescans every entry per sweep.
  flow::SessionTable aged{flow::SessionTableConfig{}};
  for (const auto& k : keys) {
    auto* e = aged.find_or_create(k, 0);
    e->state.last_active = 0;
  }
  constexpr int kSweeps = 200;
  t0 = std::chrono::steady_clock::now();
  std::size_t removed = 0;
  for (int s = 0; s < kSweeps; ++s) {
    removed += aged.age_out(common::seconds(1));  // established TTL is 8s
  }
  out.age_sweeps_per_sec = kSweeps / wall_seconds(t0);
  if (removed != 0) {
    std::fprintf(stderr, "FATAL: aging bench evicted live entries\n");
    std::abort();
  }
  return out;
}

double bench_event_loop(int n_events) {
  common::Rng rng(0xeeee);
  sim::EventLoop loop;
  std::vector<sim::EventId> ids;
  ids.reserve(static_cast<std::size_t>(n_events));
  std::uint64_t fired = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n_events; ++i) {
    ids.push_back(loop.schedule_at(
        static_cast<common::TimePoint>(rng.uniform_u64(0, 10'000'000)),
        [&fired]() { ++fired; }));
  }
  int cancels = 0;
  for (int i = 0; i < n_events; ++i) {
    if (rng.chance(0.3)) {
      loop.cancel(ids[static_cast<std::size_t>(i)]);
      ++cancels;
    }
  }
  loop.run();
  const double elapsed = wall_seconds(t0);
  const double total_ops =
      static_cast<double>(n_events) + cancels + static_cast<double>(fired);
  return total_ops / elapsed;
}

// End-to-end: the standard testbed topology under a connection-heavy
// workload with production-sized tenant ACLs — every new flow runs the
// slow-path chain, every packet touches the session table, every hop is an
// event. Reported as simulated packets delivered per wall-clock second.
struct E2eResult {
  double pkts_per_wall_sec = 0;
  double conns_per_wall_sec = 0;
  std::uint64_t delivered = 0;
  std::uint64_t completed_conns = 0;
  /// Setup-phase allocation audit: heap allocations per NEW connection over
  /// the post-warmup window (the connection-setup analogue of the
  /// steady-state allocs-per-packet gate).
  double setup_allocs_per_conn = 0;
  std::uint64_t setup_window_conns = 0;
  std::uint64_t setup_window_allocs = 0;
};

E2eResult bench_e2e() {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 8;
  cfg.vswitch.cost = tables::CostModel::production();
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.network.rx_burst_window = common::microseconds(kE2eNetBurstUs);
  cfg.vswitch.cpu_burst_window = common::microseconds(kE2eCpuBurstUs);
  cfg.vswitch.aging_period = common::milliseconds(kE2eAgingPeriodMs);
  core::Testbed bed(cfg);

  constexpr std::uint32_t kVpc = 7;
  constexpr tables::VnicId kServer = 100;
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  bed.add_vnic(0, server);
  // Production-sized tenant ACL on the server vNIC.
  common::Rng rng(0xe2e);
  auto& server_acl = bed.vswitch(0).vnic(kServer)->rules()->acl();
  for (int i = 0; i < 1000; ++i) {
    tables::AclRule r = random_rule(rng);
    r.priority += 10;  // keep priority 0 free for the allow rule below
    r.verdict = flow::Verdict::kDrop;
    // Scope the random rules into address space the workload never uses so
    // the chain cost is realistic but the traffic still flows.
    r.src.addr = net::Ipv4Addr(172, 16, static_cast<std::uint8_t>(i % 200),
                               1);
    r.src.length = 30;
    server_acl.add_rule(r);
  }
  bed.vswitch(0).vnic(kServer)->rules()->commit_update();

  std::vector<std::unique_ptr<workload::CpsWorkload>> clients;
  for (int c = 0; c < 2; ++c) {
    vswitch::VnicConfig client;
    client.id = static_cast<tables::VnicId>(c + 1);
    client.addr = tables::OverlayAddr{
        kVpc, net::Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(c + 1))};
    const std::size_t client_switch = 1 + static_cast<std::size_t>(c);
    bed.add_vnic(client_switch, client);
    workload::CpsWorkloadConfig w;
    w.concurrency = 128;  // closed loop: ride at capacity
    w.seed = 300 + static_cast<std::uint64_t>(c);
    w.timer_window = common::microseconds(kE2eTimerWindowUs);
    clients.push_back(std::make_unique<workload::CpsWorkload>(
        bed, client_switch, client.id, 0, kServer, w));
  }
  for (std::size_t i = 0; i < bed.size(); ++i) bed.vswitch(i).start_aging();

  for (auto& c : clients) c->start();
  const auto t0 = std::chrono::steady_clock::now();
  // Warmup second: slabs, probe indexes and timer rings reach their
  // steady sizes (splitting run_for never changes event order). Everything
  // after it is the setup-phase allocation window: the scenario opens
  // ~290K fresh connections per simulated second, so per-connection
  // allocation creep shows up here at full magnification.
  bed.run_for(common::seconds(1));
  const std::uint64_t warm_allocs = support::alloc_counts().news;
  std::uint64_t warm_conns = 0;
  for (auto& c : clients) warm_conns += c->completed();
  bed.run_for(common::seconds(3));
  const double elapsed = wall_seconds(t0);
  for (auto& c : clients) c->stop();

  E2eResult out;
  out.delivered = bed.network().delivered();
  for (auto& c : clients) out.completed_conns += c->completed();
  out.pkts_per_wall_sec = static_cast<double>(out.delivered) / elapsed;
  out.conns_per_wall_sec = static_cast<double>(out.completed_conns) / elapsed;
  out.setup_window_allocs = support::alloc_counts().news - warm_allocs;
  out.setup_window_conns = out.completed_conns - warm_conns;
  out.setup_allocs_per_conn =
      out.setup_window_conns > 0
          ? static_cast<double>(out.setup_window_allocs) /
                static_cast<double>(out.setup_window_conns)
          : -1.0;
  return out;
}

// Steady-state allocation audit: a BE↔FE offloaded flow pumped through the
// full client → FE → BE datapath (and the reverse BE → FE → client path)
// with the operator-new hook counting. After warmup (slabs sized, session
// and cache entries created, placements learned) the datapath contract is
// ZERO heap allocations per packet.
struct AllocResult {
  double allocs_per_packet = 0;
  std::uint64_t window_packets = 0;
  std::uint64_t window_allocs = 0;
  /// Steady-state datapath throughput over a longer timed pump window (0 in
  /// smoke mode, which only runs the allocation gate).
  double steady_pkts_per_sec = 0;
};

AllocResult bench_steady_alloc(bool timed) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 8;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  // Keep gateway-map refreshes out of the measurement window: a refresh is
  // control-plane work and may allocate.
  cfg.vswitch.learning_interval = common::seconds(100000);
  core::Testbed bed(cfg);

  constexpr std::uint32_t kVpc = 3;
  constexpr tables::VnicId kClient = 1, kServer = 2;
  vswitch::VnicConfig client;
  client.id = kClient;
  client.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 1)};
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 2)};
  bed.add_vnic(0, client);
  bed.add_vnic(1, server);
  if (!bed.controller().trigger_offload(kServer).ok()) {
    std::fprintf(stderr, "FATAL: alloc bench offload failed\n");
    std::abort();
  }
  bed.run_for(common::seconds(4));

  const net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1),
                          net::Ipv4Addr(10, 0, 0, 2), 40000, 80,
                          net::IpProto::kTcp};
  const auto pump = [&](int iterations) {
    for (int i = 0; i < iterations; ++i) {
      bed.vswitch(0).from_vm(
          kClient, net::make_tcp_packet(ft, net::TcpFlags{.ack = true}, 100,
                                        kVpc));
      bed.vswitch(1).from_vm(
          kServer, net::make_tcp_packet(ft.reversed(),
                                        net::TcpFlags{.ack = true}, 100,
                                        kVpc));
      bed.run_for(common::milliseconds(1));
    }
  };

  pump(/*iterations=*/256);  // warmup: grow every slab and table once

  const std::uint64_t delivered_before = bed.network().delivered();
  const std::uint64_t allocs_before = support::alloc_counts().news;
  pump(/*iterations=*/4096);
  const std::uint64_t window_allocs =
      support::alloc_counts().news - allocs_before;
  const std::uint64_t window_packets =
      bed.network().delivered() - delivered_before;

  AllocResult out;
  out.window_packets = window_packets;
  out.window_allocs = window_allocs;
  out.allocs_per_packet = window_packets > 0
                              ? static_cast<double>(window_allocs) /
                                    static_cast<double>(window_packets)
                              : -1.0;
  if (timed) {
    // Steady-state datapath throughput: the number the zero-allocation work
    // targets directly. The end-to-end run below is connection-setup bound
    // (4 packets per connection), which dilutes per-packet datapath gains.
    const std::uint64_t timed_before = bed.network().delivered();
    const auto t0 = std::chrono::steady_clock::now();
    pump(/*iterations=*/100000);
    const double elapsed = wall_seconds(t0);
    out.steady_pkts_per_sec =
        static_cast<double>(bed.network().delivered() - timed_before) /
        elapsed;
  }
  return out;
}

// 1024-vswitch Clos macro run: the dense underlay (vector-indexed nodes and
// ports, precomputed fabric-link indices, pooled in-flight records) carrying
// BE↔FE offload traffic across spines at fleet scale.
struct ClosResult {
  std::size_t num_vswitches = 0;
  double pkts_per_wall_sec = 0;
  std::uint64_t delivered = 0;
  std::uint64_t completed_conns = 0;
};

ClosResult bench_clos(std::size_t num_vswitches, std::size_t shards,
                      int threads) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(num_vswitches);
  cfg.vswitch.cost = tables::CostModel::production();
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  // Same burst configuration as the e2e run: the macro row should measure
  // the fleet on the production fast path, not the exact-timing debug path.
  cfg.network.rx_burst_window = common::microseconds(kE2eNetBurstUs);
  cfg.vswitch.cpu_burst_window = common::microseconds(kE2eCpuBurstUs);
  cfg.vswitch.aging_period = common::milliseconds(kE2eAgingPeriodMs);
  // --shards/--threads: partition the fleet onto the sharded engine and run
  // the measured window on worker threads. Setup (offload workflows) stays
  // single-threaded per the Testbed control-plane rule.
  cfg.shards = shards;
  cfg.threads = 1;
  core::Testbed bed(cfg);

  constexpr std::uint32_t kVpc = 11;
  constexpr std::size_t kPairs = 16;
  std::vector<std::unique_ptr<workload::CpsWorkload>> clients;
  for (std::size_t p = 0; p < kPairs; ++p) {
    // Spread pairs across the whole fleet, client and server on different
    // racks so every flow crosses the spine layer.
    const std::size_t server_switch = p * (num_vswitches / kPairs);
    std::size_t client_switch =
        server_switch + num_vswitches / (2 * kPairs);
    if (bed.shard_count() > 1 &&
        bed.shard_of_node(static_cast<sim::NodeId>(client_switch)) !=
            bed.shard_of_node(static_cast<sim::NodeId>(server_switch))) {
      // Sharded bed: CpsWorkload endpoints must share a shard. Walk forward
      // to the first same-shard switch on a different rack (offload BE↔FE
      // legs still cross shards — FE pools ignore shard boundaries).
      const std::uint32_t want =
          bed.shard_of_node(static_cast<sim::NodeId>(server_switch));
      const auto& topo = bed.network().topology();
      for (std::size_t off = 1; off < num_vswitches; ++off) {
        const std::size_t cand = (server_switch + off) % num_vswitches;
        if (bed.shard_of_node(static_cast<sim::NodeId>(cand)) != want) continue;
        client_switch = cand;
        if (topo.tor_of(static_cast<sim::NodeId>(cand)) !=
            topo.tor_of(static_cast<sim::NodeId>(server_switch))) {
          break;
        }
      }
    }
    vswitch::VnicConfig server;
    server.id = static_cast<tables::VnicId>(100 + p);
    server.addr = tables::OverlayAddr{
        kVpc, net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(p), 100)};
    bed.add_vnic(server_switch, server);
    vswitch::VnicConfig client;
    client.id = static_cast<tables::VnicId>(1 + p);
    client.addr = tables::OverlayAddr{
        kVpc, net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(p), 1)};
    bed.add_vnic(client_switch, client);
    if (!bed.controller().trigger_offload(server.id).ok()) {
      std::fprintf(stderr, "FATAL: clos bench offload failed\n");
      std::abort();
    }
    workload::CpsWorkloadConfig w;
    // Sized to cover the burst-quantized cross-spine RTT (every fabric hop
    // rounds up to the RX window, so a Clos traversal is ~1ms round-trip):
    // a closed loop needs enough in-flight connections to pipeline that
    // latency away, or the row measures window skew instead of capacity.
    w.concurrency = 256;
    w.seed = 900 + static_cast<std::uint64_t>(p);
    w.timer_window = common::microseconds(kE2eTimerWindowUs);
    clients.push_back(std::make_unique<workload::CpsWorkload>(
        bed, client_switch, client.id, server_switch, server.id, w));
  }
  bed.run_for(common::seconds(4));  // complete every offload workflow
  for (std::size_t i = 0; i < bed.size(); ++i) bed.vswitch(i).start_aging();

  const std::uint64_t delivered_before = bed.net_totals().delivered;
  bed.set_threads(threads);  // traffic phase only; setup ran single-threaded
  for (auto& c : clients) c->start();
  const auto t0 = std::chrono::steady_clock::now();
  bed.run_for(common::seconds(1));
  const double elapsed = wall_seconds(t0);
  for (auto& c : clients) c->stop();

  ClosResult out;
  out.num_vswitches = num_vswitches;
  out.delivered = bed.net_totals().delivered - delivered_before;
  for (auto& c : clients) out.completed_conns += c->completed();
  out.pkts_per_wall_sec = static_cast<double>(out.delivered) / elapsed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::has_flag(argc, argv, "--smoke");
  // Sharded-engine knobs for the Clos macro row (README: BENCH schema v4).
  // The e2e determinism/allocation gates always run on the classic 1-shard
  // path — they pin the golden fingerprints, which are per shard_count.
  const std::size_t shards = static_cast<std::size_t>(
      std::max(1L, benchutil::int_flag(argc, argv, "--shards", 1)));
  const int threads = static_cast<int>(
      std::max(1L, benchutil::int_flag(argc, argv, "--threads", 1)));

  benchutil::banner(
      "Engine hot paths — simulator performance trajectory",
      smoke ? "smoke mode: determinism fingerprint + zero-allocation gates"
            : "slab event loop, flat session table, indexed ACL/LPM, "
              "zero-allocation datapath, 1024-vswitch Clos underlay");

  // The three CI gates, run in both modes.
  const E2eResult e2e = bench_e2e();
  const AllocResult alloc = bench_steady_alloc(/*timed=*/!smoke);

  std::printf("\n  Setup-phase e2e run: %llu simulated packets, "
              "%s pkts/sec / %s conns/sec wall-clock (%llu connections)\n",
              static_cast<unsigned long long>(e2e.delivered),
              benchutil::fmt_si(e2e.pkts_per_wall_sec).c_str(),
              benchutil::fmt_si(e2e.conns_per_wall_sec).c_str(),
              static_cast<unsigned long long>(e2e.completed_conns));
  std::printf("  Setup-phase allocations: %llu over %llu new connections "
              "(%.5f/connection)\n",
              static_cast<unsigned long long>(e2e.setup_window_allocs),
              static_cast<unsigned long long>(e2e.setup_window_conns),
              e2e.setup_allocs_per_conn);
  std::printf("  Steady-state allocations: %llu over %llu packets "
              "(%.4f/packet)\n",
              static_cast<unsigned long long>(alloc.window_allocs),
              static_cast<unsigned long long>(alloc.window_packets),
              alloc.allocs_per_packet);

  const bool fingerprint_ok = e2e.delivered == kGoldenE2ePackets &&
                              e2e.completed_conns == kGoldenE2eConnections;
  const bool allocs_ok = alloc.window_packets > 0 && alloc.window_allocs == 0;
  const bool setup_allocs_ok =
      e2e.setup_window_conns > 0 &&
      e2e.setup_allocs_per_conn <= kSetupAllocsPerConnBudget;
  benchutil::verdict(fingerprint_ok,
                     "determinism fingerprint 4585200/1146286 unchanged");
  benchutil::verdict(allocs_ok, "0 heap allocations per steady-state packet");
  benchutil::verdict(setup_allocs_ok,
                     "setup phase <= 0.02 heap allocations per connection");
  const bool gates_ok = fingerprint_ok && allocs_ok && setup_allocs_ok;
  if (smoke) return gates_ok ? 0 : 1;

  const AclResult acl = bench_acl(/*n_rules=*/1000, /*n_lookups=*/100000);
  const LpmResult lpm = bench_lpm(/*n_prefixes=*/20000, /*n_lookups=*/500000);
  const SessionResult sess = bench_session_table(/*n_keys=*/100000);
  const double loop_ops = bench_event_loop(/*n_events=*/500000);
  const ClosResult clos = bench_clos(/*num_vswitches=*/1024, shards, threads);

  const double acl_speedup = acl.indexed_per_sec / acl.reference_per_sec;
  const double lpm_speedup = lpm.indexed_per_sec / lpm.reference_per_sec;

  benchutil::Table t({"hot path", "ops/sec", "reference", "speedup"});
  t.add_row({"ACL lookup (1k rules)", benchutil::fmt_si(acl.indexed_per_sec),
             benchutil::fmt_si(acl.reference_per_sec),
             benchutil::fmt(acl_speedup, 2) + "x"});
  t.add_row({"LPM lookup (20k pfx)", benchutil::fmt_si(lpm.indexed_per_sec),
             benchutil::fmt_si(lpm.reference_per_sec),
             benchutil::fmt(lpm_speedup, 2) + "x"});
  t.add_row({"session churn", benchutil::fmt_si(sess.churn_ops_per_sec), "-",
             "-"});
  t.add_row({"age sweep (100k live)",
             benchutil::fmt_si(sess.age_sweeps_per_sec) + "/s", "-", "-"});
  t.add_row({"event loop", benchutil::fmt_si(loop_ops), "-", "-"});
  t.print();

  std::printf("\n  Clos macro run (%zu vswitches, %zu shard(s) x %d "
              "thread(s)): %llu packets, "
              "%s pkts/sec wall-clock (%llu connections)\n",
              clos.num_vswitches, shards, threads,
              static_cast<unsigned long long>(clos.delivered),
              benchutil::fmt_si(clos.pkts_per_wall_sec).c_str(),
              static_cast<unsigned long long>(clos.completed_conns));
  std::printf("\n  Steady-phase datapath: %s pkts/sec "
              "(pre-change %s → %.2fx)\n",
              benchutil::fmt_si(alloc.steady_pkts_per_sec).c_str(),
              benchutil::fmt_si(kPreChangeSteadyPktsPerSec).c_str(),
              alloc.steady_pkts_per_sec / kPreChangeSteadyPktsPerSec);
  std::printf("  Setup-phase e2e vs pre-burst baseline: %s pkts/sec "
              "→ %.2fx\n",
              benchutil::fmt_si(kPreChangeE2ePktsPerSec).c_str(),
              e2e.pkts_per_wall_sec / kPreChangeE2ePktsPerSec);
  benchutil::verdict(
      alloc.steady_pkts_per_sec >= 1.5 * kPreChangeSteadyPktsPerSec,
      "steady-state datapath >= 1.5x pre-change (2.5M pkts/s) baseline");
  benchutil::verdict(
      e2e.pkts_per_wall_sec >= 1.5 * kPreChangeE2ePktsPerSec,
      "end-to-end throughput >= 1.5x the pre-burst (879K pkts/s) baseline");
  std::printf("  note: the end-to-end scenario is connection-setup bound "
              "(4 pkts/conn), so this\n"
              "  row tracks the setup fast path (burst windows, timer rings, "
              "setup cache);\n"
              "  per-packet datapath gains land in the steady-phase number "
              "(README: re-baselining).\n");
  benchutil::verdict(lpm_speedup >= 1.0,
                     "LPM probe list >= the naive 33-length reference");
  benchutil::verdict(acl_speedup >= 5.0,
                     "ACL lookup >= 5x the linear scan at 1k rules");

  std::FILE* json = std::fopen("BENCH_engine.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_engine.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"schema\": \"nezha-bench-engine-v4\",\n"
               "  \"sharding\": {\"shards\": %zu, \"threads\": %d},\n"
               "  \"structures\": {\n",
               shards, threads);
  std::fprintf(json,
               "    \"acl_lookup\": {\"ops_per_sec\": %.0f, "
               "\"reference_ops_per_sec\": %.0f, \"speedup\": %.3f},\n"
               "    \"lpm_lookup\": {\"ops_per_sec\": %.0f, "
               "\"reference_ops_per_sec\": %.0f, \"speedup\": %.3f},\n"
               "    \"session_table\": {\"churn_ops_per_sec\": %.0f, "
               "\"age_sweeps_per_sec\": %.1f},\n"
               "    \"event_loop\": {\"ops_per_sec\": %.0f}\n"
               "  },\n"
               "  \"datapath\": {\n"
               "    \"allocs_per_packet\": %.4f,\n"
               "    \"steady_window_packets\": %llu,\n"
               "    \"steady_window_allocs\": %llu,\n"
               "    \"steady_pkts_per_sec\": %.0f,\n"
               "    \"pre_change_steady_pkts_per_sec\": %.0f,\n"
               "    \"steady_speedup_vs_baseline\": %.3f\n"
               "  },\n"
               "  \"end_to_end\": {\n"
               "    \"burst_config\": {\"rx_burst_window_us\": %d, "
               "\"cpu_burst_window_us\": %d, \"workload_timer_window_us\": "
               "%d, \"aging_period_ms\": %d},\n"
               "    \"setup_phase\": {\n"
               "      \"pkts_per_sec_wallclock\": %.0f,\n"
               "      \"conns_per_sec_wallclock\": %.0f,\n"
               "      \"simulated_packets\": %llu,\n"
               "      \"completed_connections\": %llu,\n"
               "      \"allocs_per_new_connection\": %.5f,\n"
               "      \"setup_window_connections\": %llu,\n"
               "      \"setup_window_allocs\": %llu,\n"
               "      \"pre_change_baseline_pkts_per_sec\": %.0f,\n"
               "      \"speedup_vs_baseline\": %.3f\n"
               "    },\n"
               "    \"steady_phase\": {\n"
               "      \"pkts_per_sec_wallclock\": %.0f,\n"
               "      \"allocs_per_packet\": %.4f\n"
               "    }\n"
               "  },\n"
               "  \"clos_macro\": {\n"
               "    \"num_vswitches\": %zu,\n"
               "    \"pkts_per_sec_wallclock\": %.0f,\n"
               "    \"simulated_packets\": %llu,\n"
               "    \"completed_connections\": %llu\n"
               "  }\n"
               "}\n",
               acl.indexed_per_sec, acl.reference_per_sec, acl_speedup,
               lpm.indexed_per_sec, lpm.reference_per_sec, lpm_speedup,
               sess.churn_ops_per_sec, sess.age_sweeps_per_sec, loop_ops,
               alloc.allocs_per_packet,
               static_cast<unsigned long long>(alloc.window_packets),
               static_cast<unsigned long long>(alloc.window_allocs),
               alloc.steady_pkts_per_sec, kPreChangeSteadyPktsPerSec,
               alloc.steady_pkts_per_sec / kPreChangeSteadyPktsPerSec,
               kE2eNetBurstUs, kE2eCpuBurstUs, kE2eTimerWindowUs,
               kE2eAgingPeriodMs, e2e.pkts_per_wall_sec,
               e2e.conns_per_wall_sec,
               static_cast<unsigned long long>(e2e.delivered),
               static_cast<unsigned long long>(e2e.completed_conns),
               e2e.setup_allocs_per_conn,
               static_cast<unsigned long long>(e2e.setup_window_conns),
               static_cast<unsigned long long>(e2e.setup_window_allocs),
               kPreChangeE2ePktsPerSec,
               e2e.pkts_per_wall_sec / kPreChangeE2ePktsPerSec,
               alloc.steady_pkts_per_sec, alloc.allocs_per_packet,
               clos.num_vswitches, clos.pkts_per_wall_sec,
               static_cast<unsigned long long>(clos.delivered),
               static_cast<unsigned long long>(clos.completed_conns));
  std::fclose(json);
  std::printf("\n  Wrote BENCH_engine.json\n");
  (void)kPreChangeAclLookupsPerSec;
  return gates_ok ? 0 : 1;
}
