// Fig 11: vSwitch CPU utilization during offloading and FE scaling.
// Paper: ramping the vNIC's CPS drives the BE vSwitch toward the offload
// threshold (70%); activation drops BE CPU from ~70% to ~10%; when the FEs'
// average CPU exceeds 40%, scale-out doubles the pool (4 → 8 FEs) and
// halves FE utilization.
//
// Here the controller runs fully automatically (monitoring, thresholds,
// Fig 8 decision logic); the bench only ramps the offered load.
#include "bench/bench_util.h"
#include "src/core/testbed.h"
#include "src/workload/cps_workload.h"

using namespace nezha;

int main(int argc, char** argv) {
  const bool clos = benchutil::has_flag(argc, argv, "--clos");
  benchutil::banner(std::string("Figure 11 — CPU utilization during "
                                "offloading/scaling") +
                        (clos ? " [Clos fabric]" : " [single rack]"),
                    "BE: ramps to 70% → drops to ~10% on offload; FEs "
                    "scale out 4→8 when avg FE CPU > 40%");

  core::TestbedConfig cfg;
  if (clos) cfg = core::make_clos_testbed_config(40, /*hosts_per_leaf=*/8);
  cfg.num_vswitches = 40;
  cfg.vswitch.cpu.cores = 2;
  cfg.vswitch.cpu.hz_per_core = 0.25e9;
  // Keep the buffer-in-packets comparable to the full-scale SmartNIC: the
  // queue bound scales inversely with the CPU slow-down.
  cfg.vswitch.cpu.max_queue_delay = common::milliseconds(16);
  cfg.vswitch.cost = tables::CostModel::production();
  cfg.controller.auto_offload = true;
  cfg.controller.auto_scale = true;
  cfg.controller.monitor_period = common::milliseconds(250);
  // CPU-utilization series come from the telemetry registry's per-vSwitch
  // gauges; the sampler tick matches the bench's 500ms reporting window.
  cfg.telemetry.enabled = true;
  cfg.telemetry.trace = false;  // metrics only; no trace consumer here
  cfg.telemetry.sample_period = common::milliseconds(500);
  cfg.telemetry.max_samples = 64;
  core::Testbed bed(cfg);
  telemetry::MetricsRegistry& metrics = bed.telemetry()->metrics();

  constexpr std::uint32_t kVpc = 7;
  constexpr tables::VnicId kServer = 100;
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  server.profile.synthetic_rule_bytes = 8 << 20;
  bed.add_vnic(30, server);

  constexpr int kClients = 4;
  std::vector<std::unique_ptr<workload::CpsWorkload>> clients;
  for (int c = 0; c < kClients; ++c) {
    vswitch::VnicConfig client;
    client.id = static_cast<tables::VnicId>(c + 1);
    client.addr = tables::OverlayAddr{
        kVpc, net::Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(c + 1))};
    const std::size_t client_switch = 32 + static_cast<std::size_t>(c);
    bed.add_vnic(client_switch, client);
    workload::CpsWorkloadConfig w;
    w.attempts_per_sec = 2000;  // ramped below
    w.seed = 300 + static_cast<std::uint64_t>(c);
    w.server_kernel = workload::VmKernelConfig{
        .vcpus = 32, .cps_per_core = 16500, .contention = 0.045};
    w.client_kernel =
        workload::VmKernelConfig{.vcpus = 64, .cps_per_core = 30000};
    clients.push_back(std::make_unique<workload::CpsWorkload>(
        bed, client_switch, client.id, 30, kServer, w));
  }

  bed.controller().start();
  for (auto& c : clients) c->start();

  // Ramp the per-client offered load 2K → 40K conn/s over 12 seconds.
  for (int step = 0; step <= 24; ++step) {
    bed.loop().schedule_at(common::milliseconds(500) * step, [&, step]() {
      for (auto& c : clients) {
        c->set_attempts_per_sec(2000 + step * 1150.0);
      }
    });
  }

  // BE + average-FE utilization from the registry's last sampler tick
  // (the tick at each 500ms boundary fires inside run_for before it
  // returns, so the read covers exactly the preceding window).
  const auto be_gauge = metrics.find_gauge("vs30.cpu_util");
  benchutil::Table t({"t (s)", "offered CPS", "BE CPU", "avg FE CPU",
                      "#FEs", "mode"});
  double be_peak = 0, be_after_offload = 1.0;
  bool offloaded_seen = false;
  std::size_t max_fes = 0;

  for (int tick = 1; tick <= 36; ++tick) {
    bed.run_for(common::milliseconds(500));
    const common::TimePoint now = bed.loop().now();
    const double be_util = metrics.last_sample_gauge(be_gauge);
    const auto fes = bed.controller().fe_nodes_of(kServer);
    double fe_util = 0;
    for (sim::NodeId n : fes) {
      fe_util += metrics.last_sample_gauge(
          metrics.find_gauge("vs" + std::to_string(n) + ".cpu_util"));
    }
    if (!fes.empty()) fe_util /= static_cast<double>(fes.size());
    max_fes = std::max(max_fes, fes.size());

    const auto* vnic = bed.vswitch(30).find_vnic(kServer);
    const std::string mode = to_string(vnic->mode());
    if (vnic->mode() == vswitch::VnicMode::kLocal) {
      be_peak = std::max(be_peak, be_util);
    }
    if (vnic->mode() == vswitch::VnicMode::kOffloaded) {
      offloaded_seen = true;
      be_after_offload = std::min(be_after_offload, be_util);
    }
    if (tick % 2 == 0) {
      double offered = 0;
      for (auto& c : clients) offered += 2000 + std::min(tick, 24) * 1150.0;
      t.add_row({benchutil::fmt(common::to_seconds(now), 1),
                 benchutil::fmt_si(offered, 0), benchutil::fmt_pct(be_util),
                 benchutil::fmt_pct(fe_util), std::to_string(fes.size()),
                 mode});
    }
  }
  t.print();

  std::printf("\n  BE peak before offload: %s (paper: ~70%% trigger);"
              " BE floor after offload: %s (paper: ~10%%)\n",
              benchutil::fmt_pct(be_peak).c_str(),
              benchutil::fmt_pct(be_after_offload).c_str());
  std::printf("  Max #FEs: %zu (paper: scale-out 4 → 8)\n", max_fes);
  benchutil::verdict(offloaded_seen && be_peak > 0.55 &&
                         be_after_offload < 0.25,
                     "offload drops BE CPU from ~70% to ~10%");
  benchutil::verdict(max_fes >= 8 && max_fes <= 16,
                     "FE pool scales out (4 -> 8+) when FE CPU crosses 40%");
  return 0;
}
