// Fig 12: end-to-end latency with/without Nezha as load grows.
// Paper: identical below the 70% offload trigger; slightly higher with
// Nezha around 80% (one extra hop, <10µs); without Nezha latency explodes
// past ~90% as the local vSwitch melts down, while with Nezha it stays flat.
//
// Setup mirrors the paper: a hot vNIC receives traffic whose aggregate rate
// sets the x-axis (the CPU utilization it would impose on the local
// vSwitch). A fixed-rate probe flow measures delivery latency. With Nezha
// the flows spread across 4 FEs and the BE runs its hardware-accelerated
// path (§7.3), so the same offered load leaves every node uncongested.
#include <memory>

#include "bench/bench_util.h"
#include "src/core/testbed.h"

using namespace nezha;

namespace {

constexpr std::uint32_t kVpc = 7;
constexpr tables::VnicId kServer = 100;
constexpr int kClientSwitches = 4;
constexpr int kFlowsPerClient = 16;

bool g_clos = false;

core::TestbedConfig testbed_config() {
  core::TestbedConfig cfg;
  if (g_clos) cfg = core::make_clos_testbed_config(16, /*hosts_per_leaf=*/4);
  cfg.num_vswitches = 16;
  cfg.vswitch.cpu.cores = 2;
  cfg.vswitch.cpu.hz_per_core = 0.25e9;
  cfg.vswitch.cost = tables::CostModel::production();
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  // Probe latency/delivery go through the telemetry registry (metrics
  // only; the flight recorder stays off — no trace consumer here).
  cfg.telemetry.enabled = true;
  cfg.telemetry.trace = false;
  return cfg;
}

double rx_packet_cycles(const tables::CostModel& cost, std::size_t bytes) {
  return cost.parse_cycles + cost.decap_cycles + cost.session_lookup_cycles +
         cost.per_byte_cycles * static_cast<double>(bytes);
}

struct RunResult {
  double avg_latency_us = 0;
  double p99_latency_us = 0;
  double delivered_fraction = 0;
};

RunResult run(double utilization, bool with_nezha) {
  core::Testbed bed(testbed_config());
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  bed.add_vnic(10, server);

  std::vector<net::FiveTuple> flows;
  for (int c = 0; c < kClientSwitches; ++c) {
    vswitch::VnicConfig client;
    client.id = static_cast<tables::VnicId>(c + 1);
    client.addr = tables::OverlayAddr{
        kVpc, net::Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(c + 1))};
    bed.add_vnic(12 + static_cast<std::size_t>(c), client);
    for (int f = 0; f < kFlowsPerClient; ++f) {
      flows.push_back(net::FiveTuple{client.addr.ip, server.addr.ip,
                                     static_cast<std::uint16_t>(30000 + f),
                                     80, net::IpProto::kUdp});
    }
  }
  const net::FiveTuple probe_ft{net::Ipv4Addr(10, 0, 1, 1),
                                net::Ipv4Addr(10, 0, 0, 100), 39999, 80,
                                net::IpProto::kUdp};

  // Bounded-memory histogram: 10ns-grain buckets over [0, 20ms] cover
  // everything short of total meltdown; the overflow bucket absorbs the
  // rest (mean stays exact — the slot tracks the true sum).
  telemetry::MetricsRegistry& metrics = bed.telemetry()->metrics();
  const auto lat_hist =
      metrics.histogram("bench.probe_latency_us", 0.0, 20000.0, 2000);
  const auto delivered_ctr = metrics.counter("bench.probe_delivered");
  // The registry has no per-histogram reset, so gate measurement on a flag
  // instead of clearing after warmup.
  bool measuring = false;
  bed.vswitch(10).set_vm_delivery(
      [&](tables::VnicId, const net::Packet& p) {
        if (measuring && p.inner.ft == probe_ft) {
          metrics.add(delivered_ctr);
          metrics.observe(lat_hist,
                          common::to_micros(bed.loop().now() - p.created_at));
        }
      });

  if (with_nezha) {
    (void)bed.controller().trigger_offload(kServer, 4);
    bed.run_for(common::seconds(4));
  }

  constexpr std::uint16_t kPayload = 200;
  const double capacity =
      bed.vswitch(10).cpu().cycles_per_second() /
      rx_packet_cycles(testbed_config().vswitch.cost,
                       net::make_udp_packet(flows[0], kPayload).inner.wire_size());
  const double total_rate = capacity * utilization;
  const double per_flow_rate = total_rate / static_cast<double>(flows.size());
  const double probe_rate = capacity * 0.01;

  // Warm every flow so the measurement sees pure fast-path behaviour.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    bed.vswitch(12 + i / kFlowsPerClient % kClientSwitches)
        .from_vm(static_cast<tables::VnicId>(i / kFlowsPerClient + 1),
                 net::make_udp_packet(flows[i], kPayload, kVpc));
  }
  bed.vswitch(12).from_vm(1, net::make_udp_packet(probe_ft, kPayload, kVpc));
  bed.run_for(common::milliseconds(100));
  measuring = true;

  const common::TimePoint t0 = bed.loop().now();
  const common::Duration window = common::milliseconds(400);
  std::uint64_t probe_sent = 0;
  // Background streams.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto gap = static_cast<common::Duration>(
        static_cast<double>(common::kSecond) / per_flow_rate);
    const std::size_t cidx = i / kFlowsPerClient;
    const auto vnic = static_cast<tables::VnicId>(cidx + 1);
    for (common::TimePoint t = t0 + static_cast<common::Duration>(i * 97);
         t < t0 + window; t += gap) {
      bed.loop().schedule_at(t, [&bed, ft = flows[i], cidx, vnic]() {
        bed.vswitch(12 + cidx).from_vm(
            vnic, net::make_udp_packet(ft, kPayload, kVpc));
      });
    }
  }
  // Probe stream.
  {
    const auto gap = static_cast<common::Duration>(
        static_cast<double>(common::kSecond) / probe_rate);
    for (common::TimePoint t = t0; t < t0 + window; t += gap) {
      bed.loop().schedule_at(t, [&bed, probe_ft]() {
        net::Packet pkt = net::make_udp_packet(probe_ft, kPayload, kVpc);
        pkt.created_at = bed.loop().now();
        bed.vswitch(12).from_vm(1, std::move(pkt));
      });
      ++probe_sent;
    }
  }
  bed.run_for(window + common::milliseconds(100));

  RunResult r;
  r.avg_latency_us = metrics.hist_mean(lat_hist);
  r.p99_latency_us = metrics.hist_quantile(lat_hist, 99);
  const std::uint64_t probe_delivered = metrics.counter_value(delivered_ctr);
  r.delivered_fraction =
      probe_sent == 0
          ? 0
          : static_cast<double>(probe_delivered) / static_cast<double>(probe_sent);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  g_clos = benchutil::has_flag(argc, argv, "--clos");
  benchutil::banner(std::string("Figure 12 — end-to-end latency "
                                "with/without Nezha") +
                        (g_clos ? " [Clos fabric]" : " [single rack]"),
                    "equal below 70%; +<10µs with Nezha at ~80%; without "
                    "Nezha latency explodes past ~90%");

  benchutil::Table t({"vSwitch load", "lat w/o (us)", "lat w/ (us)",
                      "probe delivered w/o", "probe delivered w/"});
  double idle_lat = 0;
  double mid_delta = 0;
  double without_overload_lat = 0, with_overload_lat = 0;
  double without_overload_delivery = 1, with_overload_delivery = 0;
  for (double util : {0.10, 0.30, 0.50, 0.70, 0.80, 0.95, 1.10, 1.30}) {
    const RunResult without = run(util, false);
    // Per the paper, offloading engages above the 70% trigger.
    const RunResult with = util > 0.70 ? run(util, true) : without;
    t.add_row({benchutil::fmt_pct(util, 0),
               benchutil::fmt(without.avg_latency_us, 1),
               benchutil::fmt(with.avg_latency_us, 1),
               benchutil::fmt_pct(without.delivered_fraction),
               benchutil::fmt_pct(with.delivered_fraction)});
    if (util == 0.10) idle_lat = without.avg_latency_us;
    // The extra-hop cost compares the offloaded path against the
    // *uncongested* local path (at 80% the local vSwitch already queues).
    if (util == 0.80) mid_delta = with.avg_latency_us - idle_lat;
    if (util == 1.30) {
      without_overload_lat = without.avg_latency_us;
      with_overload_lat = with.avg_latency_us;
      without_overload_delivery = without.delivered_fraction;
      with_overload_delivery = with.delivered_fraction;
    }
  }
  t.print();

  std::printf("\n  Extra latency at 80%% load (one extra hop): %.1fus"
              " (paper: <10us)\n", mid_delta);
  std::printf("  At 130%% load: w/o Nezha %.1fus avg + %s delivered;"
              " w/ Nezha %.1fus + %s delivered\n",
              without_overload_lat,
              benchutil::fmt_pct(without_overload_delivery).c_str(),
              with_overload_lat,
              benchutil::fmt_pct(with_overload_delivery).c_str());
  if (g_clos) {
    // On Clos the baseline path already crosses the spine, so the FE detour
    // adds little or nothing on top — only boundedness is meaningful.
    benchutil::verdict(mid_delta > -10 && mid_delta < 50,
                       "offload detour stays bounded on the Clos fabric");
  } else {
    benchutil::verdict(mid_delta > 0 && mid_delta < 25,
                       "extra hop costs on the order of 10us");
  }
  benchutil::verdict((without_overload_lat > 5 * with_overload_lat ||
                      without_overload_delivery < 0.9) &&
                         with_overload_delivery > 0.99,
                     "past saturation the local vSwitch melts down while "
                     "Nezha stays flat");
  return 0;
}
