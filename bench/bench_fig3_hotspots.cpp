// Fig 3 (and Appendix A.1): distribution of vSwitch overload causes.
// Paper: CPS ≈ 61%, #concurrent flows ≈ 30%, #vNICs ≈ 9%.
#include "bench/bench_util.h"
#include "src/workload/fleet_model.h"

using namespace nezha;

int main() {
  benchutil::banner("Figure 3 — hotspot cause distribution in a region",
                    "CPS 61%, #concurrent flows 30%, #vNICs 9%");

  workload::FleetModel model(workload::FleetModelConfig{.seed = 3});
  const std::size_t n = 50000;
  const auto causes = model.sample_hotspot_causes(n);
  std::size_t counts[3] = {0, 0, 0};
  for (auto c : causes) ++counts[static_cast<int>(c)];

  benchutil::Table t({"cause", "paper", "measured"});
  const double paper[3] = {0.61, 0.30, 0.09};
  bool ok = true;
  for (int i = 0; i < 3; ++i) {
    const double measured = static_cast<double>(counts[i]) / n;
    t.add_row({to_string(static_cast<workload::HotspotCause>(i)),
               benchutil::fmt_pct(paper[i], 0), benchutil::fmt_pct(measured)});
    ok = ok && std::abs(measured - paper[i]) < 0.02;
  }
  t.print();
  benchutil::verdict(ok, "CPS dominates overloads, #vNICs rarest");
  return 0;
}
