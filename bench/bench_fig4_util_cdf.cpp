// Fig 4: CPU and memory utilization CDFs over O(10K) vSwitches.
// Paper: CPU avg≈5%, P90 15%, P99 41%, P999 68%, P9999 90% (max 98%);
// memory avg≈1.5%, P90 15%, P99 34%, P999 93%, P9999 96% — extreme load
// imbalance: a few saturated vSwitches amid an idle fleet.
#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/workload/fleet_model.h"

using namespace nezha;

int main() {
  benchutil::banner("Figure 4 — resource utilization CDF on O(10K) vSwitches",
                    "P9999/avg skew: ~20x for CPU, ~64x for memory");

  workload::FleetModel model(
      workload::FleetModelConfig{.num_vswitches = 10000, .seed = 4});
  common::Percentiles cpu, mem;
  for (double v : model.sample_cpu_utilization()) cpu.add(v * 100);
  for (double v : model.sample_memory_utilization()) mem.add(v * 100);

  struct Anchor {
    const char* name;
    double q;
    double paper_cpu;
    double paper_mem;
  };
  const Anchor anchors[] = {{"P50", 50, 2.5, 0.6},   {"P90", 90, 15, 15},
                            {"P99", 99, 41, 34},     {"P999", 99.9, 68, 93},
                            {"P9999", 99.99, 90, 96}, {"max", 100, 98, 96}};

  benchutil::Table t({"quantile", "CPU paper (%)", "CPU measured (%)",
                      "mem paper (%)", "mem measured (%)"});
  for (const auto& a : anchors) {
    t.add_row({a.name, benchutil::fmt(a.paper_cpu, 1),
               benchutil::fmt(cpu.percentile(a.q), 1),
               benchutil::fmt(a.paper_mem, 1),
               benchutil::fmt(mem.percentile(a.q), 1)});
  }
  t.add_row({"avg", "5.0", benchutil::fmt(cpu.mean(), 1), "1.5",
             benchutil::fmt(mem.mean(), 1)});
  t.print();

  const double cpu_skew = cpu.percentile(99.99) / cpu.mean();
  const double mem_skew = mem.percentile(99.99) / mem.mean();
  std::printf("\n  P9999/avg skew: CPU %.1fx (paper ~20x), memory %.1fx"
              " (paper ~64x)\n", cpu_skew, mem_skew);
  benchutil::verdict(cpu.percentile(99.99) > 80 && cpu.mean() < 10 &&
                         mem.percentile(99.9) > 80 && mem_skew > 15,
                     "most vSwitches idle, a tiny tail saturated");
  return 0;
}
