// Fig 9: performance gain under different #FEs (auto-scaling disabled).
// Paper: CPS gain grows with #FEs up to 4, then plateaus ≈3.3x (the VM
// kernel becomes the bottleneck); #concurrent-flows gain plateaus ≈3.8x;
// #vNICs gain is proportional to #FEs (theoretical cap 1000x = 2MB/2KB).
//
// CPS is measured by running the full packet-level TCP_CRR workload through
// the simulated testbed at each FE count; the memory capacities use the
// calibrated capacity model (same constants as the dataplane).
#include "bench/bench_util.h"
#include "src/baseline/capacity_model.h"
#include "src/core/testbed.h"
#include "src/workload/cps_workload.h"

using namespace nezha;

namespace {

constexpr std::uint32_t kVpc = 7;
constexpr tables::VnicId kServer = 100;
constexpr int kClients = 4;

bool g_clos = false;

core::TestbedConfig testbed_config() {
  core::TestbedConfig cfg;
  if (g_clos) cfg = core::make_clos_testbed_config(40, /*hosts_per_leaf=*/8);
  cfg.num_vswitches = 40;
  // Scaled-down SmartNIC: the shape (gain vs #FEs) is invariant to the
  // absolute CPU scale; this keeps the simulation fast.
  cfg.vswitch.cpu.cores = 2;
  cfg.vswitch.cpu.hz_per_core = 0.25e9;
  // Keep the buffer-in-packets comparable to the full-scale SmartNIC: the
  // queue bound scales inversely with the CPU slow-down.
  cfg.vswitch.cpu.max_queue_delay = common::milliseconds(16);
  cfg.vswitch.cost = tables::CostModel::production();
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.controller.initial_fes = 4;
  return cfg;
}

workload::CpsWorkloadConfig workload_config(int client_index) {
  workload::CpsWorkloadConfig w;
  w.concurrency = 160;  // closed loop (netperf TCP_CRR style)
  w.seed = 100 + static_cast<std::uint64_t>(client_index);
  // Server guest kernel: ~145K CPS ceiling → the 3.3x plateau.
  w.server_kernel = workload::VmKernelConfig{.vcpus = 16,
                                             .cps_per_core = 16500,
                                             .contention = 0.045};
  // Client guests never bottleneck.
  w.client_kernel = workload::VmKernelConfig{.vcpus = 64,
                                             .cps_per_core = 30000};
  return w;
}

/// Measures steady-state CPS with `num_fes` frontends (0 = no Nezha).
double measure_cps(std::size_t num_fes) {
  core::Testbed bed(testbed_config());
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  server.profile.synthetic_rule_bytes = 8 << 20;
  bed.add_vnic(30, server);  // home on a high id; FEs picked from low ids

  std::vector<std::unique_ptr<workload::CpsWorkload>> clients;
  for (int c = 0; c < kClients; ++c) {
    vswitch::VnicConfig client;
    client.id = static_cast<tables::VnicId>(c + 1);
    client.addr = tables::OverlayAddr{
        kVpc, net::Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(c + 1))};
    const std::size_t client_switch = 32 + static_cast<std::size_t>(c);
    bed.add_vnic(client_switch, client);
    clients.push_back(std::make_unique<workload::CpsWorkload>(
        bed, client_switch, client.id, 30, kServer, workload_config(c)));
  }

  if (num_fes > 0) {
    auto st = bed.controller().trigger_offload(kServer, num_fes);
    if (!st.ok()) {
      std::fprintf(stderr, "offload failed: %s\n", st.error().message.c_str());
      return 0;
    }
    bed.run_for(common::seconds(4));  // activation completes
  }
  const common::TimePoint t0 = bed.loop().now();
  for (auto& c : clients) c->start();
  bed.run_for(common::seconds(3));
  for (auto& c : clients) c->stop();

  double cps = 0;
  for (auto& c : clients) {
    // Skip the first second as warm-up.
    cps += c->cps_over(t0 + common::seconds(1), t0 + common::seconds(3));
  }
  return cps;
}

}  // namespace

int main(int argc, char** argv) {
  g_clos = benchutil::has_flag(argc, argv, "--clos");
  benchutil::banner(std::string("Figure 9 — performance gain vs #FEs") +
                        (g_clos ? " [Clos fabric]" : " [single rack]"),
                    "CPS plateaus ≈3.3x above 4 FEs (VM-bound); #flows "
                    "plateaus ≈3.8x; #vNICs ∝ #FEs");

  const double base_cps = measure_cps(0);
  baseline::DeploymentParams p;
  const double base_flows =
      static_cast<double>(baseline::CapacityModel::local_max_flows(p));
  const double base_vnics =
      static_cast<double>(baseline::CapacityModel::local_max_vnics(p));

  benchutil::Table t({"#FEs", "CPS", "CPS gain", "#flows gain",
                      "#vNICs gain"});
  double cps4 = 0, cps12 = 0;
  double flows4 = 0, flows12 = 0;
  for (std::size_t fes : {0, 1, 2, 4, 8, 12}) {
    const double cps = fes == 0 ? base_cps : measure_cps(fes);
    const double flows = static_cast<double>(
        baseline::CapacityModel::nezha_max_flows(p, fes));
    const double vnics = static_cast<double>(
        baseline::CapacityModel::nezha_max_vnics(p, fes));
    if (fes == 4) { cps4 = cps; flows4 = flows; }
    if (fes == 12) { cps12 = cps; flows12 = flows; }
    t.add_row({std::to_string(fes), benchutil::fmt_si(cps),
               benchutil::fmt(cps / base_cps, 2) + "x",
               benchutil::fmt(flows / base_flows, 2) + "x",
               benchutil::fmt(vnics / base_vnics, 1) + "x"});
  }
  t.print();

  const double plateau_gain = cps12 / base_cps;
  std::printf("\n  CPS plateau gain: %.2fx (paper ≈3.3x); 12-FE vs 4-FE"
              " CPS ratio: %.2f (paper ≈1.0 — VM-bound)\n",
              plateau_gain, cps12 / cps4);
  benchutil::verdict(plateau_gain > 2.5 && plateau_gain < 4.5 &&
                         cps12 / cps4 < 1.15,
                     "CPS gain saturates ≈3.3x beyond 4 FEs");
  benchutil::verdict(flows12 / base_flows > 3.0 && flows12 == flows4,
                     "#flows gain plateaus ≈3.8x at 4 FEs (BE-memory bound)");
  return 0;
}
