// Topology matrix: single-rack vs 2-tier Clos for the paper's two most
// fabric-sensitive scenarios.
//
// Fig 12 shape (end-to-end latency of an offloaded vNIC under load) and
// Fig 14 shape (packet loss during FE failover) are rerun on both fabrics
// with otherwise identical configs. The Clos columns show what the
// single-rack experiments hide: the extra leaf→spine→leaf hops on every
// cross-rack BE↔FE leg and the spine serialization shared by all pairs.
//
// Output: human-readable tables on stdout AND machine-readable
// BENCH_topo.json (schema in README.md) recorded next to the binary's CWD,
// mirroring the BENCH_engine.json convention.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/core/testbed.h"

using namespace nezha;

namespace {

constexpr std::uint32_t kVpc = 7;
constexpr tables::VnicId kServer = 100;

core::TestbedConfig base_config(bool clos, std::size_t num_vswitches,
                                std::uint32_t hosts_per_leaf,
                                std::size_t shards) {
  core::TestbedConfig cfg;
  if (clos) cfg = core::make_clos_testbed_config(num_vswitches, hosts_per_leaf);
  cfg.num_vswitches = num_vswitches;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  // --shards only applies to the Clos runs: sharding partitions racks, and
  // the single-rack fabric has exactly one. Setup always runs 1 worker.
  cfg.shards = clos ? shards : 1;
  cfg.threads = 1;
  return cfg;
}

// ------------------------------------------------- Fig 12 shape: latency

struct LatencyResult {
  double avg_us = 0;
  double p99_us = 0;
  double delivered_fraction = 0;
  double throughput_pps = 0;
};

/// Offloaded server under steady cross-switch UDP load; a 1%-rate probe
/// flow measures delivery latency. Condensed from bench_fig12 (one load
/// point, offload always on) so the fabric is the only variable.
LatencyResult run_latency(bool clos, std::size_t shards, int threads) {
  core::Testbed bed(base_config(clos, 16, /*hosts_per_leaf=*/4, shards));
  // On a sharded bed the endpoints may land in different shards, so every
  // client-side event schedules on the client's shard loop and latency is
  // read off the server's (deliveries fire on the server's shard thread).
  sim::EventLoop& client_loop = bed.loop_of(12);
  sim::EventLoop& server_loop = bed.loop_of(10);
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  bed.add_vnic(10, server);
  vswitch::VnicConfig client;
  client.id = 1;
  client.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 1, 1)};
  bed.add_vnic(12, client);

  constexpr int kFlows = 32;
  const net::FiveTuple probe_ft{net::Ipv4Addr(10, 0, 1, 1),
                                net::Ipv4Addr(10, 0, 0, 100), 39999, 80,
                                net::IpProto::kUdp};
  // Bounded mode: the matrix sweeps several fabrics per run, so keep the
  // probe-latency memory O(buckets) (mean stays exact, p99 within 10us).
  common::Percentiles latency =
      common::Percentiles::bounded(0.0, 20000.0, 2000);
  std::uint64_t probe_delivered = 0, delivered = 0;
  bed.vswitch(10).set_vm_delivery(
      [&](tables::VnicId, const net::Packet& p) {
        ++delivered;
        if (p.inner.ft == probe_ft) {
          ++probe_delivered;
          latency.add(common::to_micros(server_loop.now() - p.created_at));
        }
      });

  (void)bed.controller().trigger_offload(kServer, 4);
  bed.run_for(common::seconds(4));
  bed.set_threads(threads);  // offload workflow done; traffic may thread

  // Warm all flows onto the fast path.
  for (int f = 0; f < kFlows; ++f) {
    net::FiveTuple ft{net::Ipv4Addr(10, 0, 1, 1),
                      net::Ipv4Addr(10, 0, 0, 100),
                      static_cast<std::uint16_t>(30000 + f), 80,
                      net::IpProto::kUdp};
    bed.vswitch(12).from_vm(1, net::make_udp_packet(ft, 200, kVpc));
  }
  bed.vswitch(12).from_vm(1, net::make_udp_packet(probe_ft, 200, kVpc));
  bed.run_for(common::milliseconds(100));
  latency.clear();
  probe_delivered = 0;
  delivered = 0;

  // 32 flows x 2K pps + probe at 500 pps for 400ms.
  const common::TimePoint t0 = client_loop.now();
  const common::Duration window = common::milliseconds(400);
  std::uint64_t probe_sent = 0;
  for (int f = 0; f < kFlows; ++f) {
    net::FiveTuple ft{net::Ipv4Addr(10, 0, 1, 1),
                      net::Ipv4Addr(10, 0, 0, 100),
                      static_cast<std::uint16_t>(30000 + f), 80,
                      net::IpProto::kUdp};
    for (common::TimePoint t = t0 + static_cast<common::Duration>(f * 97);
         t < t0 + window; t += common::microseconds(500)) {
      client_loop.schedule_at(t, [&bed, ft]() {
        bed.vswitch(12).from_vm(1, net::make_udp_packet(ft, 200, kVpc));
      });
    }
  }
  for (common::TimePoint t = t0; t < t0 + window;
       t += common::milliseconds(2)) {
    client_loop.schedule_at(t, [&bed, &client_loop, probe_ft]() {
      net::Packet pkt = net::make_udp_packet(probe_ft, 200, kVpc);
      pkt.created_at = client_loop.now();
      bed.vswitch(12).from_vm(1, std::move(pkt));
    });
    ++probe_sent;
  }
  bed.run_for(window + common::milliseconds(100));

  LatencyResult r;
  r.avg_us = latency.mean();
  r.p99_us = latency.percentile(99);
  r.delivered_fraction =
      probe_sent == 0 ? 0
                      : static_cast<double>(probe_delivered) /
                            static_cast<double>(probe_sent);
  r.throughput_pps = static_cast<double>(delivered) /
                     common::to_seconds(window);
  return r;
}

// ---------------------------------------------- Fig 14 shape: failover

struct FailoverResult {
  double surge_s = 0;
  double max_loss = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
};

/// Steady traffic toward an offloaded server, one FE crash, monitor-driven
/// failover; loss rate sampled in 250ms windows. Condensed from
/// bench_fig14 with identical detection parameters on both fabrics.
/// Sharding applies, but the run always uses 1 worker thread: the
/// monitor-driven failover workflow mutates vswitch state across shards
/// mid-run, which the Testbed threading rules reserve for 1-thread runs.
FailoverResult run_failover(bool clos, std::size_t shards) {
  core::TestbedConfig cfg = base_config(clos, 16, /*hosts_per_leaf=*/4, shards);
  cfg.monitor.probe_interval = common::milliseconds(500);
  cfg.monitor.probe_timeout = common::milliseconds(300);
  cfg.monitor.miss_threshold = 3;
  core::Testbed bed(cfg);

  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  bed.add_vnic(10, server);
  vswitch::VnicConfig client;
  client.id = 1;
  client.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 1, 1)};
  bed.add_vnic(12, client);

  std::uint64_t delivered = 0;
  bed.vswitch(10).set_vm_delivery(
      [&](tables::VnicId, const net::Packet&) { ++delivered; });

  (void)bed.controller().trigger_offload(kServer, 4);
  bed.run_for(common::seconds(4));
  bed.watch_fe_hosts();
  bed.monitor().start();

  constexpr int kFlows = 200;
  std::uint64_t sent = 0;
  auto send_burst = [&bed, &sent]() {
    for (int f = 0; f < kFlows; ++f) {
      net::FiveTuple ft{net::Ipv4Addr(10, 0, 1, 1),
                        net::Ipv4Addr(10, 0, 0, 100),
                        static_cast<std::uint16_t>(20000 + f), 80,
                        net::IpProto::kUdp};
      bed.vswitch(12).from_vm(1, net::make_udp_packet(ft, 100, kVpc));
      ++sent;
    }
  };
  send_burst();
  // The pump injects at the client vswitch, so it lives on the client's
  // shard loop (== bed.loop() on unsharded beds).
  sim::EventLoop& pump_loop = bed.loop_of(12);
  auto pump_id = std::make_shared<sim::EventId>();
  *pump_id = pump_loop.schedule_periodic(
      common::milliseconds(10), [&pump_loop, send_burst, pump_id]() {
        if (pump_loop.now() > common::seconds(14)) {
          pump_loop.cancel(*pump_id);
          return;
        }
        send_burst();
      });
  bed.run_for(common::seconds(2));

  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId n : bed.controller().fe_nodes_of(kServer)) {
    if (n != 12) {
      victim = n;
      break;
    }
  }
  bed.network_of(victim).crash(victim);

  FailoverResult r;
  std::uint64_t prev_sent = sent, prev_delivered = delivered;
  common::TimePoint loss_start = -1, loss_end = -1;
  for (int w = 0; w < 24; ++w) {
    bed.run_for(common::milliseconds(250));
    const std::uint64_t ws = sent - prev_sent;
    const std::uint64_t wd = delivered - prev_delivered;
    prev_sent = sent;
    prev_delivered = delivered;
    const double loss =
        ws == 0 ? 0
                : 1.0 - static_cast<double>(wd) / static_cast<double>(ws);
    if (loss > 0.01) {
      if (loss_start < 0) loss_start = bed.loop().now();
      loss_end = bed.loop().now();
      r.max_loss = std::max(r.max_loss, loss);
    }
  }
  r.surge_s = loss_start < 0
                  ? 0
                  : common::to_seconds(loss_end - loss_start) + 0.25;
  r.sent = sent;
  r.delivered = delivered;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // Sharded-engine knobs (README: BENCH schema v4). Only the Clos runs can
  // shard (racks are the partition unit); the failover scenario additionally
  // pins its traffic phase to 1 thread — see run_failover.
  const std::size_t shards = static_cast<std::size_t>(
      std::max(1L, benchutil::int_flag(argc, argv, "--shards", 1)));
  const int threads = static_cast<int>(
      std::max(1L, benchutil::int_flag(argc, argv, "--threads", 1)));

  benchutil::banner(
      "Topology matrix — single rack vs 2-tier Clos",
      "cross-rack offload adds bounded fabric latency; failover behaviour "
      "is fabric-independent");

  const LatencyResult lat_rack = run_latency(false, shards, threads);
  const LatencyResult lat_clos = run_latency(true, shards, threads);
  const FailoverResult fo_rack = run_failover(false, shards);
  const FailoverResult fo_clos = run_failover(true, shards);

  benchutil::Table lt({"fabric", "avg lat (us)", "p99 lat (us)",
                       "probe delivered", "throughput (pps)"});
  lt.add_row({"single-rack", benchutil::fmt(lat_rack.avg_us, 1),
              benchutil::fmt(lat_rack.p99_us, 1),
              benchutil::fmt_pct(lat_rack.delivered_fraction),
              benchutil::fmt_si(lat_rack.throughput_pps, 1)});
  lt.add_row({"clos", benchutil::fmt(lat_clos.avg_us, 1),
              benchutil::fmt(lat_clos.p99_us, 1),
              benchutil::fmt_pct(lat_clos.delivered_fraction),
              benchutil::fmt_si(lat_clos.throughput_pps, 1)});
  lt.print();

  std::printf("\n");
  benchutil::Table ft({"fabric", "loss surge (s)", "peak loss", "sent",
                       "delivered"});
  ft.add_row({"single-rack", benchutil::fmt(fo_rack.surge_s, 2),
              benchutil::fmt_pct(fo_rack.max_loss),
              std::to_string(fo_rack.sent),
              std::to_string(fo_rack.delivered)});
  ft.add_row({"clos", benchutil::fmt(fo_clos.surge_s, 2),
              benchutil::fmt_pct(fo_clos.max_loss),
              std::to_string(fo_clos.sent),
              std::to_string(fo_clos.delivered)});
  ft.print();

  const double lat_delta = lat_clos.avg_us - lat_rack.avg_us;
  benchutil::verdict(lat_delta > 0 && lat_delta < 100,
                     "Clos adds bounded cross-rack latency (2x leaf-spine "
                     "RTT per offloaded hop)");
  benchutil::verdict(lat_clos.delivered_fraction > 0.99,
                     "fabric queues absorb the offered load (no spine loss)");
  benchutil::verdict(fo_clos.surge_s > 0.5 && fo_clos.surge_s < 3.5 &&
                         fo_rack.surge_s > 0.5 && fo_rack.surge_s < 3.5,
                     "failover surge stays ~2s on both fabrics (detection-"
                     "bound, not fabric-bound)");

  FILE* f = std::fopen("BENCH_topo.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"schema\": 2,\n");
    std::fprintf(f,
                 "  \"sharding\": {\"shards\": %zu, \"threads\": %d},\n",
                 shards, threads);
    std::fprintf(f, "  \"fig12_latency\": {\n");
    auto lat_json = [f](const char* name, const LatencyResult& r,
                        const char* tail) {
      std::fprintf(f,
                   "    \"%s\": {\"avg_latency_us\": %.3f, "
                   "\"p99_latency_us\": %.3f, \"probe_delivered\": %.4f, "
                   "\"throughput_pps\": %.1f}%s\n",
                   name, r.avg_us, r.p99_us, r.delivered_fraction,
                   r.throughput_pps, tail);
    };
    lat_json("single_rack", lat_rack, ",");
    lat_json("clos", lat_clos, "");
    std::fprintf(f, "  },\n  \"fig14_failover\": {\n");
    auto fo_json = [f](const char* name, const FailoverResult& r,
                       const char* tail) {
      std::fprintf(f,
                   "    \"%s\": {\"loss_surge_s\": %.3f, "
                   "\"peak_loss\": %.4f, \"sent\": %llu, "
                   "\"delivered\": %llu}%s\n",
                   name, r.surge_s, r.max_loss,
                   static_cast<unsigned long long>(r.sent),
                   static_cast<unsigned long long>(r.delivered), tail);
    };
    fo_json("single_rack", fo_rack, ",");
    fo_json("clos", fo_clos, "");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\n  wrote BENCH_topo.json\n");
  }
  return 0;
}
