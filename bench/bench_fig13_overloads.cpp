// Fig 13: daily vSwitch overload occurrences before/after Nezha, per cause,
// in two regions.
// Paper: >99.9% of CPS and #concurrent-flows overloads resolved; #vNICs
// overloads eliminated entirely (rule tables are created directly on FEs).
// The small residue exists because offload activation takes up to ~2.8s
// (P999) while some load surges overwhelm the vSwitch faster than that.
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/workload/fleet_model.h"

using namespace nezha;

int main() {
  benchutil::banner("Figure 13 — daily overload occurrence before/after Nezha",
                    ">99.9% of CPS/#flow overloads resolved; #vNICs → 0");

  workload::FleetModel fleet(workload::FleetModelConfig{.seed = 13});
  common::Rng rng(14);

  // Activation-race model: an overload is NOT prevented only when the load
  // surge saturates the vSwitch faster than offload activation completes.
  // Activation: lognormal matching Table 4 (avg ~1.1s, P999 ~2.9s).
  // Surge ramp: how long the vSwitch can still absorb load after the
  // trigger fires — minutes for organic growth, seconds for flash crowds.
  auto activation_s = [&]() { return rng.lognormal(0.02, 0.33); };
  // Load surges in production build over tens of seconds to minutes
  // (clients ramping, retry storms); sub-3s cliff-edge surges are the rare
  // tail that produces the residual overloads in Fig 13.
  auto surge_headroom_s = [&]() { return rng.lognormal(4.1, 1.35); };

  const char* regions[] = {"region-A", "region-B"};
  const int daily_overloads[2] = {9000, 4800};  // before-Nezha daily events

  benchutil::Table t({"region", "cause", "before (daily)", "after (daily)",
                      "resolved"});
  bool all_ok = true;
  for (int r = 0; r < 2; ++r) {
    const auto causes = fleet.sample_hotspot_causes(
        static_cast<std::size_t>(daily_overloads[r]));
    int before[3] = {0, 0, 0}, after[3] = {0, 0, 0};
    for (auto c : causes) {
      const int k = static_cast<int>(c);
      ++before[k];
      if (c == workload::HotspotCause::kVnics) {
        // vNIC rule tables are created directly on the FEs — no race at all.
        continue;
      }
      if (activation_s() > surge_headroom_s()) ++after[k];
    }
    for (int k = 0; k < 3; ++k) {
      const double resolved =
          before[k] == 0 ? 1.0
                         : 1.0 - static_cast<double>(after[k]) / before[k];
      t.add_row({regions[r],
                 to_string(static_cast<workload::HotspotCause>(k)),
                 std::to_string(before[k]), std::to_string(after[k]),
                 benchutil::fmt_pct(resolved, 2)});
      if (k < 2) all_ok = all_ok && resolved > 0.995;
      else all_ok = all_ok && after[k] == 0;
    }
  }
  t.print();
  benchutil::verdict(all_ok,
                     ">99.5% of CPS/#flows overloads mitigated, #vNICs "
                     "overloads eliminated");
  return 0;
}
