# Empty compiler generated dependencies file for example_middlebox_offload.
# This may be replaced when dependencies are built.
