file(REMOVE_RECURSE
  "CMakeFiles/example_middlebox_offload.dir/middlebox_offload.cpp.o"
  "CMakeFiles/example_middlebox_offload.dir/middlebox_offload.cpp.o.d"
  "example_middlebox_offload"
  "example_middlebox_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_middlebox_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
