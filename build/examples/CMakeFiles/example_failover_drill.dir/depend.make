# Empty dependencies file for example_failover_drill.
# This may be replaced when dependencies are built.
