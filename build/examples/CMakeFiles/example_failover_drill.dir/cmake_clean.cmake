file(REMOVE_RECURSE
  "CMakeFiles/example_failover_drill.dir/failover_drill.cpp.o"
  "CMakeFiles/example_failover_drill.dir/failover_drill.cpp.o.d"
  "example_failover_drill"
  "example_failover_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_failover_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
