
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/nezha_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/chaos_test.cpp" "tests/CMakeFiles/nezha_tests.dir/chaos_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/chaos_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/nezha_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/controller_test.cpp" "tests/CMakeFiles/nezha_tests.dir/controller_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/controller_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/nezha_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/flow_test.cpp" "tests/CMakeFiles/nezha_tests.dir/flow_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/flow_test.cpp.o.d"
  "/root/repo/tests/mirror_test.cpp" "tests/CMakeFiles/nezha_tests.dir/mirror_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/mirror_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/nezha_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/nezha_core_test.cpp" "tests/CMakeFiles/nezha_tests.dir/nezha_core_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/nezha_core_test.cpp.o.d"
  "/root/repo/tests/nf_test.cpp" "tests/CMakeFiles/nezha_tests.dir/nf_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/nf_test.cpp.o.d"
  "/root/repo/tests/pcap_test.cpp" "tests/CMakeFiles/nezha_tests.dir/pcap_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/pcap_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/nezha_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/qos_test.cpp" "tests/CMakeFiles/nezha_tests.dir/qos_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/qos_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/nezha_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/tables_test.cpp" "tests/CMakeFiles/nezha_tests.dir/tables_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/tables_test.cpp.o.d"
  "/root/repo/tests/vswitch_test.cpp" "tests/CMakeFiles/nezha_tests.dir/vswitch_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/vswitch_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/nezha_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/nezha_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nezha.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
