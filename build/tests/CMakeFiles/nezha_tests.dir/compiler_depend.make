# Empty compiler generated dependencies file for nezha_tests.
# This may be replaced when dependencies are built.
