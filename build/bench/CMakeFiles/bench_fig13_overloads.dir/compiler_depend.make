# Empty compiler generated dependencies file for bench_fig13_overloads.
# This may be replaced when dependencies are built.
