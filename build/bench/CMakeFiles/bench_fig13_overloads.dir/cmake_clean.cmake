file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_overloads.dir/bench_fig13_overloads.cpp.o"
  "CMakeFiles/bench_fig13_overloads.dir/bench_fig13_overloads.cpp.o.d"
  "bench_fig13_overloads"
  "bench_fig13_overloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_overloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
