# Empty dependencies file for bench_fig2_highcps_cpu.
# This may be replaced when dependencies are built.
