file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_gain_vs_fes.dir/bench_fig9_gain_vs_fes.cpp.o"
  "CMakeFiles/bench_fig9_gain_vs_fes.dir/bench_fig9_gain_vs_fes.cpp.o.d"
  "bench_fig9_gain_vs_fes"
  "bench_fig9_gain_vs_fes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_gain_vs_fes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
