# Empty compiler generated dependencies file for bench_fig9_gain_vs_fes.
# This may be replaced when dependencies are built.
