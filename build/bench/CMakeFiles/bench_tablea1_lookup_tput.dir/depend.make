# Empty dependencies file for bench_tablea1_lookup_tput.
# This may be replaced when dependencies are built.
