file(REMOVE_RECURSE
  "CMakeFiles/bench_tablea1_lookup_tput.dir/bench_tablea1_lookup_tput.cpp.o"
  "CMakeFiles/bench_tablea1_lookup_tput.dir/bench_tablea1_lookup_tput.cpp.o.d"
  "bench_tablea1_lookup_tput"
  "bench_tablea1_lookup_tput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tablea1_lookup_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
