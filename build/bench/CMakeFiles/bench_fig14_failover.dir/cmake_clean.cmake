file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_failover.dir/bench_fig14_failover.cpp.o"
  "CMakeFiles/bench_fig14_failover.dir/bench_fig14_failover.cpp.o.d"
  "bench_fig14_failover"
  "bench_fig14_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
