# Empty dependencies file for bench_fig11_offload_timeline.
# This may be replaced when dependencies are built.
