# Empty dependencies file for bench_appb2_scaling_stats.
# This may be replaced when dependencies are built.
