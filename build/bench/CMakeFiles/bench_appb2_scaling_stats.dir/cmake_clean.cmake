file(REMOVE_RECURSE
  "CMakeFiles/bench_appb2_scaling_stats.dir/bench_appb2_scaling_stats.cpp.o"
  "CMakeFiles/bench_appb2_scaling_stats.dir/bench_appb2_scaling_stats.cpp.o.d"
  "bench_appb2_scaling_stats"
  "bench_appb2_scaling_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appb2_scaling_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
