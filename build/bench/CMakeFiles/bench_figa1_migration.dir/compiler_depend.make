# Empty compiler generated dependencies file for bench_figa1_migration.
# This may be replaced when dependencies are built.
