file(REMOVE_RECURSE
  "CMakeFiles/bench_figa1_migration.dir/bench_figa1_migration.cpp.o"
  "CMakeFiles/bench_figa1_migration.dir/bench_figa1_migration.cpp.o.d"
  "bench_figa1_migration"
  "bench_figa1_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figa1_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
