# Empty dependencies file for bench_ablation_vs_sirius.
# This may be replaced when dependencies are built.
