file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vs_sirius.dir/bench_ablation_vs_sirius.cpp.o"
  "CMakeFiles/bench_ablation_vs_sirius.dir/bench_ablation_vs_sirius.cpp.o.d"
  "bench_ablation_vs_sirius"
  "bench_ablation_vs_sirius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vs_sirius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
