file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_usage_dist.dir/bench_table1_usage_dist.cpp.o"
  "CMakeFiles/bench_table1_usage_dist.dir/bench_table1_usage_dist.cpp.o.d"
  "bench_table1_usage_dist"
  "bench_table1_usage_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_usage_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
