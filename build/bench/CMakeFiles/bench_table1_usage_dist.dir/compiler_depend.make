# Empty compiler generated dependencies file for bench_table1_usage_dist.
# This may be replaced when dependencies are built.
