# Empty compiler generated dependencies file for bench_table4_activation_time.
# This may be replaced when dependencies are built.
