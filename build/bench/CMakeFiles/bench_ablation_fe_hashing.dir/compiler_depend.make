# Empty compiler generated dependencies file for bench_ablation_fe_hashing.
# This may be replaced when dependencies are built.
