file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cps_vs_vcpu.dir/bench_fig10_cps_vs_vcpu.cpp.o"
  "CMakeFiles/bench_fig10_cps_vs_vcpu.dir/bench_fig10_cps_vs_vcpu.cpp.o.d"
  "bench_fig10_cps_vs_vcpu"
  "bench_fig10_cps_vs_vcpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cps_vs_vcpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
