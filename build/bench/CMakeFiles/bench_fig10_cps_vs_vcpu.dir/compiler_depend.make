# Empty compiler generated dependencies file for bench_fig10_cps_vs_vcpu.
# This may be replaced when dependencies are built.
