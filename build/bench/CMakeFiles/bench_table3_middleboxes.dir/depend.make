# Empty dependencies file for bench_table3_middleboxes.
# This may be replaced when dependencies are built.
