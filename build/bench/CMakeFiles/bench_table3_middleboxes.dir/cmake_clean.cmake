file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_middleboxes.dir/bench_table3_middleboxes.cpp.o"
  "CMakeFiles/bench_table3_middleboxes.dir/bench_table3_middleboxes.cpp.o.d"
  "bench_table3_middleboxes"
  "bench_table3_middleboxes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_middleboxes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
