file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_hotspots.dir/bench_fig3_hotspots.cpp.o"
  "CMakeFiles/bench_fig3_hotspots.dir/bench_fig3_hotspots.cpp.o.d"
  "bench_fig3_hotspots"
  "bench_fig3_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
