
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/capacity_model.cpp" "src/CMakeFiles/nezha.dir/baseline/capacity_model.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/baseline/capacity_model.cpp.o.d"
  "/root/repo/src/baseline/sirius_model.cpp" "src/CMakeFiles/nezha.dir/baseline/sirius_model.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/baseline/sirius_model.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/nezha.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/nezha.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/nezha.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/time.cpp" "src/CMakeFiles/nezha.dir/common/time.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/common/time.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/CMakeFiles/nezha.dir/core/controller.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/core/controller.cpp.o.d"
  "/root/repo/src/core/link_prober.cpp" "src/CMakeFiles/nezha.dir/core/link_prober.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/core/link_prober.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/CMakeFiles/nezha.dir/core/monitor.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/core/monitor.cpp.o.d"
  "/root/repo/src/core/testbed.cpp" "src/CMakeFiles/nezha.dir/core/testbed.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/core/testbed.cpp.o.d"
  "/root/repo/src/flow/pre_actions.cpp" "src/CMakeFiles/nezha.dir/flow/pre_actions.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/flow/pre_actions.cpp.o.d"
  "/root/repo/src/flow/session.cpp" "src/CMakeFiles/nezha.dir/flow/session.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/flow/session.cpp.o.d"
  "/root/repo/src/flow/session_table.cpp" "src/CMakeFiles/nezha.dir/flow/session_table.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/flow/session_table.cpp.o.d"
  "/root/repo/src/flow/tcp_fsm.cpp" "src/CMakeFiles/nezha.dir/flow/tcp_fsm.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/flow/tcp_fsm.cpp.o.d"
  "/root/repo/src/net/addr.cpp" "src/CMakeFiles/nezha.dir/net/addr.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/net/addr.cpp.o.d"
  "/root/repo/src/net/carrier.cpp" "src/CMakeFiles/nezha.dir/net/carrier.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/net/carrier.cpp.o.d"
  "/root/repo/src/net/five_tuple.cpp" "src/CMakeFiles/nezha.dir/net/five_tuple.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/net/five_tuple.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/CMakeFiles/nezha.dir/net/headers.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/net/headers.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/nezha.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/CMakeFiles/nezha.dir/net/pcap.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/net/pcap.cpp.o.d"
  "/root/repo/src/nf/middlebox.cpp" "src/CMakeFiles/nezha.dir/nf/middlebox.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/nf/middlebox.cpp.o.d"
  "/root/repo/src/nf/stateful.cpp" "src/CMakeFiles/nezha.dir/nf/stateful.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/nf/stateful.cpp.o.d"
  "/root/repo/src/sim/event_loop.cpp" "src/CMakeFiles/nezha.dir/sim/event_loop.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/sim/event_loop.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/nezha.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/nezha.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/sim/topology.cpp.o.d"
  "/root/repo/src/tables/acl.cpp" "src/CMakeFiles/nezha.dir/tables/acl.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/tables/acl.cpp.o.d"
  "/root/repo/src/tables/policy_tables.cpp" "src/CMakeFiles/nezha.dir/tables/policy_tables.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/tables/policy_tables.cpp.o.d"
  "/root/repo/src/tables/rule_set.cpp" "src/CMakeFiles/nezha.dir/tables/rule_set.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/tables/rule_set.cpp.o.d"
  "/root/repo/src/tables/vnic_server_map.cpp" "src/CMakeFiles/nezha.dir/tables/vnic_server_map.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/tables/vnic_server_map.cpp.o.d"
  "/root/repo/src/vswitch/learned_map.cpp" "src/CMakeFiles/nezha.dir/vswitch/learned_map.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/vswitch/learned_map.cpp.o.d"
  "/root/repo/src/vswitch/resources.cpp" "src/CMakeFiles/nezha.dir/vswitch/resources.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/vswitch/resources.cpp.o.d"
  "/root/repo/src/vswitch/vnic.cpp" "src/CMakeFiles/nezha.dir/vswitch/vnic.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/vswitch/vnic.cpp.o.d"
  "/root/repo/src/vswitch/vswitch.cpp" "src/CMakeFiles/nezha.dir/vswitch/vswitch.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/vswitch/vswitch.cpp.o.d"
  "/root/repo/src/workload/cps_workload.cpp" "src/CMakeFiles/nezha.dir/workload/cps_workload.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/workload/cps_workload.cpp.o.d"
  "/root/repo/src/workload/fleet_model.cpp" "src/CMakeFiles/nezha.dir/workload/fleet_model.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/workload/fleet_model.cpp.o.d"
  "/root/repo/src/workload/migration_model.cpp" "src/CMakeFiles/nezha.dir/workload/migration_model.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/workload/migration_model.cpp.o.d"
  "/root/repo/src/workload/syn_flood.cpp" "src/CMakeFiles/nezha.dir/workload/syn_flood.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/workload/syn_flood.cpp.o.d"
  "/root/repo/src/workload/vm_model.cpp" "src/CMakeFiles/nezha.dir/workload/vm_model.cpp.o" "gcc" "src/CMakeFiles/nezha.dir/workload/vm_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
