# Empty dependencies file for nezha.
# This may be replaced when dependencies are built.
