file(REMOVE_RECURSE
  "libnezha.a"
)
