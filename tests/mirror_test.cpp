// Traffic-mirroring integration tests: copies reach the collector from the
// local path and — after offload — from the FEs where the pre-actions are
// evaluated, in both directions.
#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/tables/prefix.h"

namespace nezha {
namespace {

using common::milliseconds;
using common::seconds;
using tables::OverlayAddr;
using tables::VnicId;
using vswitch::VnicConfig;

constexpr std::uint32_t kVpc = 44;

class MirrorTest : public ::testing::Test {
 protected:
  MirrorTest() : bed_(make_config()) {
    VnicConfig a;
    a.id = 1;
    a.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 1)};
    bed_.add_vnic(0, a);
    VnicConfig b;
    b.id = 2;
    b.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 2)};
    bed_.add_vnic(1, b);

    // The collector is vSwitch 8 (e.g. a flow-log appliance's server).
    collector_ = bed_.vswitch(8).location();
    bed_.network().set_trace([this](common::TimePoint, const net::Packet& p,
                                    sim::NodeId, sim::NodeId to) {
      if (to == 8 && p.encapsulated() && p.overlay->dst_ip == collector_.ip) {
        ++copies_at_collector_;
      }
    });

    // Mirror everything vNIC 1 sends to 10.0.0.2.
    auto* rules = bed_.vswitch(0).vnic(1)->rules();
    rules->mirrors().add_mirror(
        tables::Prefix::host(net::Ipv4Addr(10, 0, 0, 2)),
        flow::NextHop{collector_.ip, collector_.mac});
    rules->commit_update();
  }

  static core::TestbedConfig make_config() {
    core::TestbedConfig cfg;
    cfg.num_vswitches = 12;
    cfg.controller.auto_offload = false;
    cfg.controller.auto_scale = false;
    return cfg;
  }

  void send(int n) {
    for (int i = 0; i < n; ++i) {
      net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                        static_cast<std::uint16_t>(6000 + i), 80,
                        net::IpProto::kUdp};
      bed_.vswitch(0).from_vm(1, net::make_udp_packet(ft, 100, kVpc));
    }
    bed_.run_for(milliseconds(50));
  }

  core::Testbed bed_;
  tables::Location collector_;
  std::uint64_t copies_at_collector_ = 0;
};

TEST_F(MirrorTest, LocalPathMirrorsToCollector) {
  send(10);
  EXPECT_EQ(copies_at_collector_, 10u);
  EXPECT_EQ(bed_.vswitch(0).mirrored(), 10u);
  // Originals still delivered.
  EXPECT_EQ(bed_.vswitch(1).vm_deliveries(), 10u);
}

TEST_F(MirrorTest, OffloadedPathMirrorsFromFrontend) {
  ASSERT_TRUE(bed_.controller().trigger_offload(1).ok());
  bed_.run_for(seconds(4));
  send(10);
  EXPECT_EQ(copies_at_collector_, 10u);
  // The copies were produced at FEs, not at the (table-less) BE.
  EXPECT_EQ(bed_.vswitch(0).mirrored(), 0u);
  std::uint64_t fe_mirrored = 0;
  for (sim::NodeId n : bed_.controller().fe_nodes_of(1)) {
    fe_mirrored += bed_.vswitch(n).mirrored();
  }
  EXPECT_EQ(fe_mirrored, 10u);
  EXPECT_EQ(bed_.vswitch(1).vm_deliveries(), 10u);
}

TEST_F(MirrorTest, RxDirectionMirroredAtEvaluationPoint) {
  // Mirror traffic vNIC 2 receives: configure the mirror on vNIC 2 (keyed
  // by its TX destination = the peer 10.0.0.1).
  auto* rules = bed_.vswitch(1).vnic(2)->rules();
  rules->mirrors().add_mirror(
      tables::Prefix::host(net::Ipv4Addr(10, 0, 0, 1)),
      flow::NextHop{collector_.ip, collector_.mac});
  rules->commit_update();

  send(5);  // vNIC1 → vNIC2: vNIC2's RX path mirrors them too
  // 5 copies from vNIC1's TX mirror + 5 from vNIC2's RX mirror.
  EXPECT_EQ(copies_at_collector_, 10u);
  EXPECT_EQ(bed_.vswitch(1).mirrored(), 5u);
}

}  // namespace
}  // namespace nezha
