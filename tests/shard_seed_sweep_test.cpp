// Monte Carlo seed sweep over the 10K-node twin (ROADMAP sharding
// follow-on): N seeds through the sharded engine with full churn enabled —
// a mid-window offload push, a monitor-detected FE crash, a fleet-wide
// hash reseed — asserting every run is invariant-clean and each seed's
// fingerprint is stable across worker-thread counts (the DESIGN.md §15
// determinism contract, exercised at fleet scale rather than on the
// 64-switch twin the determinism suite uses).
//
// Under TSan or a Debug build the twin is scaled down (same topology
// shape, fewer racks) so each parameterized case stays well inside the
// 120s ctest timeout; the Release sweep runs the full 10240-vSwitch twin.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/core/invariants.h"
#include "src/core/testbed.h"
#include "src/workload/fleet_model.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NEZHA_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define NEZHA_TSAN 1
#endif

namespace nezha {
namespace {

#if defined(NEZHA_TSAN) || !defined(NDEBUG)
constexpr std::size_t kVSwitches = 1024;  // scaled twin (sanitizer/debug)
constexpr std::uint64_t kSeeds[] = {101, 102};
#else
constexpr std::size_t kVSwitches = 10240;  // the 10K-node twin
constexpr std::uint64_t kSeeds[] = {101, 102, 103};
#endif
constexpr std::size_t kPairs = 12;
constexpr std::size_t kShards = 8;

struct SweepRun {
  std::uint64_t fingerprint = 0;
  std::uint64_t completed = 0;
  std::uint64_t exported = 0;
  std::uint64_t late_tokens = 0;
  std::uint64_t epochs_skipped = 0;
  std::uint64_t failovers = 0;
  std::size_t violations = 0;
  std::string report;
};

SweepRun run_seed(std::uint64_t seed, int threads) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(
      kVSwitches, /*hosts_per_leaf=*/8, /*num_spines=*/4,
      /*oversubscription=*/2.0);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.monitor.probe_interval = common::milliseconds(100);
  cfg.monitor.probe_timeout = common::milliseconds(50);
  cfg.monitor.miss_threshold = 2;
  cfg.shards = kShards;
  cfg.threads = threads;  // end-to-end threaded: setup, churn and all
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = kPairs;
  sc.base_attempts_per_sec = 200.0;
  sc.seed = seed;
  workload::FleetScenario scenario(bed, sc);
  core::InvariantChecker checker(bed,
                                 core::InvariantCheckerConfig{.seed = seed});

  scenario.deploy();
  scenario.offload_all(/*holdback=*/kPairs / 4);
  bed.run_for(common::milliseconds(700));
  checker.check();

  scenario.start_traffic();
  scenario.schedule_churn(common::milliseconds(100),
                          common::milliseconds(250),
                          common::milliseconds(600));
  for (int slice = 0; slice < 4; ++slice) {
    bed.run_for(common::milliseconds(300));
    checker.check();
  }
  scenario.stop_traffic();
  bed.run_for(common::milliseconds(400));
  checker.check();

  SweepRun r;
  r.fingerprint = scenario.fingerprint();
  for (const auto& wl : scenario.workloads()) r.completed += wl->completed();
  r.exported = bed.net_totals().exported;
  if (bed.engine() != nullptr) {
    r.late_tokens = bed.engine()->late_tokens();
    r.epochs_skipped = bed.engine()->epochs_skipped();
  }
  r.failovers = bed.controller().failover_events();
  r.violations = checker.violations().size();
  r.report = checker.ok() ? "" : checker.report();
  return r;
}

class ShardSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardSeedSweep, ChurnRunIsCleanAndThreadInvariant) {
  const std::uint64_t seed = GetParam();
  const SweepRun t1 = run_seed(seed, 1);
  const SweepRun t2 = run_seed(seed, 2);

  EXPECT_EQ(t1.violations, 0u) << "seed " << seed << ":\n" << t1.report;
  EXPECT_EQ(t2.violations, 0u) << "seed " << seed << ":\n" << t2.report;
  EXPECT_EQ(t2.fingerprint, t1.fingerprint)
      << "seed " << seed << ": thread count changed the outcome";
  EXPECT_EQ(t2.completed, t1.completed);
  EXPECT_EQ(t2.failovers, t1.failovers);

  // The sweep must exercise what it claims: cross-shard traffic, a real
  // failover, connection progress, fast-forwarded epochs, zero lookahead
  // violations at 10K-node scale.
  EXPECT_GT(t1.exported, 0u);
  EXPECT_EQ(t1.late_tokens, 0u);
  EXPECT_GT(t1.epochs_skipped, 0u);
  EXPECT_GT(t1.failovers, 0u) << "seed " << seed << ": no failover fired";
  EXPECT_GT(t1.completed, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardSeedSweep, ::testing::ValuesIn(kSeeds),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace nezha
