// SLO tracker tests (DESIGN.md §16): threshold-crossing semantics on a
// bare registry, determinism of the `slo` JSON section (byte-equal across
// same-seed runs and across worker-thread counts, summed violation
// counters included), and the hard gate that wiring the tracker into the
// telemetry plane does not perturb the simulation — the e2e golden
// fingerprints must survive telemetry+SLO bit-for-bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/testbed.h"
#include "src/sim/event_loop.h"
#include "src/tables/rule_set.h"
#include "src/telemetry/hub.h"
#include "src/telemetry/slo.h"
#include "src/workload/cps_workload.h"
#include "src/workload/fleet_model.h"

namespace nezha {
namespace {

using common::milliseconds;
using common::seconds;
using telemetry::Hub;
using telemetry::MetricsRegistry;
using telemetry::SloRule;
using telemetry::SloTracker;
using telemetry::SloWiring;
using telemetry::TelemetryConfig;

// ------------------------------------------------------ threshold crossing

TelemetryConfig bare_hub_config() {
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.sample_period = milliseconds(10);
  cfg.events_per_node = 64;
  return cfg;
}

/// Drives the sampler in whole-tick steps: `set(i)` runs before the i-th
/// tick (1-based) is taken, so gauge reads at that tick see its values.
template <typename SetFn>
void drive_ticks(sim::EventLoop& loop, Hub& hub, int ticks, SetFn set) {
  for (int i = 1; i <= ticks; ++i) {
    set(i);
    loop.run_until(milliseconds(10) * i);
  }
  (void)hub;
}

TEST(SloThresholdTest, CpuHeadroomBreachCountsBurnsAndTraces) {
  TelemetryConfig cfg = bare_hub_config();
  cfg.slo.max_cpu_util = 0.95;
  cfg.slo.burn_window = 4;
  Hub hub(/*num_nodes=*/8, cfg);
  sim::EventLoop loop;

  double cpu3 = 0.0, cpu5 = 0.0;
  MetricsRegistry& m = hub.metrics();
  m.gauge("vs3.cpu_util", [&cpu3] { return cpu3; });
  m.gauge("vs5.cpu_util", [&cpu5] { return cpu5; });
  hub.enable_slo(SloWiring{/*fleet_node=*/8, /*monitor_node=*/9, 2});
  ASSERT_NE(hub.slo(), nullptr);
  hub.start_sampler(loop);

  // 5 healthy ticks, then 5 with vs5 saturated.
  drive_ticks(loop, hub, 10, [&](int i) {
    cpu3 = 0.40;
    cpu5 = i <= 5 ? 0.60 : 0.99;
  });
  hub.stop_sampler();

  const SloTracker& slo = *hub.slo();
  EXPECT_TRUE(slo.rule_active(SloRule::kCpuHeadroom));
  EXPECT_EQ(slo.violations(SloRule::kCpuHeadroom), 5u);
  EXPECT_EQ(slo.total_violations(), 5u);
  // Burn window is 4 ticks, all in breach at the end.
  EXPECT_DOUBLE_EQ(slo.burn_rate(SloRule::kCpuHeadroom), 1.0);
  // Counters were interned before the sampler started and track 1:1.
  const auto c = m.find_counter("slo.violations");
  const auto cr = m.find_counter("slo.violations.cpu_util");
  ASSERT_NE(c, MetricsRegistry::kInvalidId);
  ASSERT_NE(cr, MetricsRegistry::kInvalidId);
  EXPECT_EQ(m.counter_value(c), 5u);
  EXPECT_EQ(m.counter_value(cr), 5u);
  // Every violation names the offending node (vs5, the fleet max).
  std::size_t trace_events = 0;
  for (const auto& e : hub.recorder().merged()) {
    if (e.kind != telemetry::EventKind::kSloViolation) continue;
    ++trace_events;
    EXPECT_EQ(e.a, static_cast<std::uint64_t>(SloRule::kCpuHeadroom));
    EXPECT_EQ(e.node, 5u);
    EXPECT_EQ(e.b, 990u);  // 0.99 * 1000, truncated
  }
  EXPECT_EQ(trace_events, 5u);
}

TEST(SloThresholdTest, WindowedP99BreachesOnlyWhileTailIsSlow) {
  TelemetryConfig cfg = bare_hub_config();
  cfg.slo.p99_local_rx_us = 1500.0;
  Hub hub(4, cfg);
  sim::EventLoop loop;

  MetricsRegistry& m = hub.metrics();
  const auto h = m.histogram("latency.local_rx_us", 0.0, 2000.0, 20);
  hub.enable_slo(SloWiring{4, 5, 2});
  hub.start_sampler(loop);

  // Ticks 1-3: fast window (p99 ~ 100us). Ticks 4-6: slow (~1800us).
  // Ticks 7-8: no new observations at all — the rule must not evaluate.
  drive_ticks(loop, hub, 8, [&](int i) {
    if (i > 6) return;
    for (int k = 0; k < 100; ++k) m.observe(h, i <= 3 ? 100.0 : 1800.0);
  });
  hub.stop_sampler();

  const SloTracker& slo = *hub.slo();
  EXPECT_TRUE(slo.rule_active(SloRule::kP99LocalRx));
  EXPECT_EQ(slo.violations(SloRule::kP99LocalRx), 3u);
  // Ticks 7-8 carried no samples: only 6 evaluated ticks.
  const std::string json = [&] {
    std::ostringstream os;
    hub.write_json(os);
    return os.str();
  }();
  EXPECT_NE(json.find("\"p99_local_rx_us\": {\"threshold\": 1500"),
            std::string::npos);
  EXPECT_NE(json.find("\"ticks\": 6"), std::string::npos);
}

TEST(SloThresholdTest, ProbeLossComparesAgainstLaggedProbeCount) {
  TelemetryConfig cfg = bare_hub_config();
  cfg.slo.max_probe_loss = 0.05;
  Hub hub(4, cfg);
  sim::EventLoop loop;

  double sent = 0.0, replies = 0.0;
  MetricsRegistry& m = hub.metrics();
  m.gauge("mon.probes_sent", [&sent] { return sent; });
  m.gauge("mon.probe_replies", [&replies] { return replies; });
  hub.enable_slo(SloWiring{4, /*monitor_node=*/9, /*probe_lag_ticks=*/2});
  hub.start_sampler(loop);

  // Phase 1 (ticks 1-10): replies keep pace — in-flight probes must never
  // read as loss. Phase 2 (ticks 11-20): replies freeze, probes continue.
  drive_ticks(loop, hub, 20, [&](int i) {
    sent = 10.0 * i;
    if (i <= 10) replies = sent;
  });
  hub.stop_sampler();

  const SloTracker& slo = *hub.slo();
  EXPECT_TRUE(slo.rule_active(SloRule::kProbeLoss));
  EXPECT_GT(slo.violations(SloRule::kProbeLoss), 0u);
  // The healthy phase contributed zero: every violation happened after the
  // reply counter froze at 100, i.e. loss vs the lagged baseline.
  EXPECT_LE(slo.violations(SloRule::kProbeLoss), 10u);
  for (const auto& e : hub.recorder().merged()) {
    if (e.kind != telemetry::EventKind::kSloViolation) continue;
    EXPECT_EQ(e.a, static_cast<std::uint64_t>(SloRule::kProbeLoss));
    EXPECT_EQ(e.node, 9u);  // attributed to the monitor slot
  }
}

TEST(SloThresholdTest, UnwiredRulesStayInactiveAndHarmless) {
  TelemetryConfig cfg = bare_hub_config();
  Hub hub(2, cfg);
  sim::EventLoop loop;
  hub.enable_slo(SloWiring{2, 3, 2});
  hub.start_sampler(loop);
  loop.run_until(milliseconds(100));
  hub.stop_sampler();

  const SloTracker& slo = *hub.slo();
  for (std::size_t r = 0; r < static_cast<std::size_t>(SloRule::kCount);
       ++r) {
    EXPECT_FALSE(slo.rule_active(static_cast<SloRule>(r)));
  }
  EXPECT_EQ(slo.total_violations(), 0u);
  std::ostringstream os;
  hub.write_json(os);
  EXPECT_NE(os.str().find("\"slo\": "), std::string::npos);
  EXPECT_NE(os.str().find("\"total_violations\": 0"), std::string::npos);
}

TEST(SloThresholdTest, DisabledSloConfigWiresNoTracker) {
  TelemetryConfig cfg = bare_hub_config();
  cfg.slo.enabled = false;
  Hub hub(2, cfg);
  hub.enable_slo(SloWiring{2, 3, 2});
  EXPECT_EQ(hub.slo(), nullptr);
  std::ostringstream os;
  hub.write_json(os);
  EXPECT_EQ(os.str().find("\"slo\": "), std::string::npos);
}

// ------------------------------------------------- determinism (Clos bed)

struct ClosRun {
  std::uint64_t fingerprint = 0;
  std::string metrics_json;
  std::string slo_section;
  std::uint64_t slo_violations = 0;  // summed across shard hubs
};

/// Fleet scenario on the Clos fabric with telemetry+SLO on. shards == 1 is
/// the engine-less reference; shards > 1 exercises the sharded hubs at the
/// given worker-thread count.
ClosRun run_clos(std::uint64_t seed, std::size_t shards, int threads) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(
      /*num_vswitches=*/64, /*hosts_per_leaf=*/8, /*num_spines=*/4,
      /*oversubscription=*/2.0);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.monitor.probe_interval = milliseconds(100);
  cfg.monitor.probe_timeout = milliseconds(50);
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.telemetry.enabled = true;
  cfg.telemetry.events_per_node = 1 << 10;
  cfg.telemetry.sample_period = milliseconds(250);
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = 6;
  sc.base_attempts_per_sec = 200.0;
  sc.seed = seed;
  workload::FleetScenario scenario(bed, sc);

  scenario.deploy();
  scenario.offload_all();
  bed.run_for(seconds(2));
  scenario.start_traffic();
  bed.run_for(seconds(2));
  scenario.stop_traffic();
  bed.run_for(milliseconds(500));

  ClosRun r;
  r.fingerprint = scenario.fingerprint();
  std::ostringstream js;
  bed.telemetry()->write_json(js);
  r.metrics_json = js.str();
  // The `slo` section is the trailing registered section; everything from
  // its key to the end of the document is tracker-owned bytes.
  const std::size_t at = r.metrics_json.find("\"slo\": ");
  EXPECT_NE(at, std::string::npos);
  r.slo_section =
      at == std::string::npos ? "" : r.metrics_json.substr(at);
  for (std::uint32_t s = 0; s < bed.shard_count(); ++s) {
    telemetry::Hub* hub = bed.telemetry_of_shard(s);
    EXPECT_NE(hub, nullptr) << "shard " << s;
    if (hub == nullptr) continue;
    const auto& m = hub->metrics();
    const auto id = m.find_counter("slo.violations");
    EXPECT_NE(id, MetricsRegistry::kInvalidId) << "shard " << s;
    if (id != MetricsRegistry::kInvalidId) {
      r.slo_violations += m.counter_value(id);
    }
    EXPECT_NE(hub->slo(), nullptr) << "shard " << s;
  }
  return r;
}

TEST(SloDeterminismTest, SameSeedRunsEmitByteIdenticalSloSection) {
  const ClosRun a = run_clos(7, /*shards=*/1, /*threads=*/1);
  const ClosRun b = run_clos(7, /*shards=*/1, /*threads=*/1);
  EXPECT_FALSE(a.slo_section.empty());
  EXPECT_EQ(a.slo_section, b.slo_section)
      << "same-seed slo sections differ: tracker state is nondeterministic";
  // The unsharded bed carries no wall-clock sections at all, so the whole
  // telemetry document is run-invariant too.
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.slo_violations, b.slo_violations);
}

TEST(SloDeterminismTest, SloOutcomeIsWorkerThreadInvariant) {
  const ClosRun t1 = run_clos(11, /*shards=*/4, /*threads=*/1);
  const ClosRun t2 = run_clos(11, /*shards=*/4, /*threads=*/2);
  EXPECT_EQ(t1.fingerprint, t2.fingerprint);
  EXPECT_FALSE(t1.slo_section.empty());
  EXPECT_EQ(t1.slo_section, t2.slo_section)
      << "shard-0 slo section depends on the worker-thread count";
  EXPECT_EQ(t1.slo_violations, t2.slo_violations)
      << "summed slo.violations counters depend on the thread count";
}

// ---------------------------------------------- golden fingerprint gate

constexpr std::uint64_t kGoldenBurstPackets = 4585200;
constexpr std::uint64_t kGoldenBurstConnections = 1146286;
constexpr std::uint64_t kGoldenExactPackets = 4585995;
constexpr std::uint64_t kGoldenExactConnections = 1146438;

// Byte-for-byte the e2e bench's tenant ACL generator (the rule stream from
// Rng(0xe2e) is part of the scenario identity — see policy_golden_test).
tables::AclRule random_rule(common::Rng& rng) {
  tables::AclRule r;
  r.priority = static_cast<std::uint32_t>(rng.uniform_u64(0, 1000));
  r.src = tables::Prefix{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                         static_cast<std::uint8_t>(rng.uniform_u64(8, 24))};
  r.dst = tables::Prefix{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                         static_cast<std::uint8_t>(rng.uniform_u64(8, 24))};
  const std::uint16_t lo =
      static_cast<std::uint16_t>(rng.uniform_u64(0, 60000));
  r.dst_ports = tables::PortRange{
      lo, static_cast<std::uint16_t>(lo + rng.uniform_u64(0, 4000))};
  const std::uint64_t proto = rng.uniform_u64(0, 3);
  if (proto == 0) r.proto = net::IpProto::kTcp;
  if (proto == 1) r.proto = net::IpProto::kUdp;
  if (proto == 2) r.proto = net::IpProto::kIcmp;
  const std::uint64_t dir = rng.uniform_u64(0, 2);
  if (dir == 0) r.direction = flow::Direction::kTx;
  if (dir == 1) r.direction = flow::Direction::kRx;
  r.verdict = rng.chance(0.5) ? flow::Verdict::kDrop : flow::Verdict::kAccept;
  return r;
}

struct Fingerprint {
  std::uint64_t delivered = 0;
  std::uint64_t completed = 0;
};

/// The policy_golden_test e2e scenario with the full telemetry plane (SLO
/// tracker included) switched on. The tracker samples the simulation; it
/// must never steer it.
Fingerprint run_e2e_with_slo(bool bursts) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 8;
  cfg.vswitch.cost = tables::CostModel::production();
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  if (bursts) {
    cfg.network.rx_burst_window = common::microseconds(192);
    cfg.vswitch.cpu_burst_window = common::microseconds(64);
    cfg.vswitch.aging_period = milliseconds(100);
  }
  cfg.telemetry.enabled = true;
  cfg.telemetry.events_per_node = 1 << 12;
  core::Testbed bed(cfg);

  constexpr std::uint32_t kVpc = 7;
  constexpr tables::VnicId kServer = 100;
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  bed.add_vnic(0, server);
  common::Rng rng(0xe2e);
  auto& server_acl = bed.vswitch(0).vnic(kServer)->rules()->acl();
  for (int i = 0; i < 1000; ++i) {
    tables::AclRule r = random_rule(rng);
    r.priority += 10;
    r.verdict = flow::Verdict::kDrop;
    r.src.addr = net::Ipv4Addr(172, 16, static_cast<std::uint8_t>(i % 200), 1);
    r.src.length = 30;
    server_acl.add_rule(r);
  }
  bed.vswitch(0).vnic(kServer)->rules()->commit_update();

  std::vector<std::unique_ptr<workload::CpsWorkload>> clients;
  for (int c = 0; c < 2; ++c) {
    vswitch::VnicConfig client;
    client.id = static_cast<tables::VnicId>(c + 1);
    client.addr = tables::OverlayAddr{
        kVpc, net::Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(c + 1))};
    const std::size_t client_switch = 1 + static_cast<std::size_t>(c);
    bed.add_vnic(client_switch, client);
    workload::CpsWorkloadConfig w;
    w.concurrency = 128;
    w.seed = 300 + static_cast<std::uint64_t>(c);
    if (bursts) w.timer_window = common::microseconds(64);
    clients.push_back(std::make_unique<workload::CpsWorkload>(
        bed, client_switch, client.id, 0, kServer, w));
  }
  for (std::size_t i = 0; i < bed.size(); ++i) bed.vswitch(i).start_aging();

  for (auto& c : clients) c->start();
  bed.run_for(seconds(1));
  bed.run_for(seconds(3));
  for (auto& c : clients) c->stop();

  // The tracker really ran: counters exist and the section renders.
  EXPECT_NE(bed.telemetry(), nullptr);
  EXPECT_NE(bed.telemetry()->slo(), nullptr);
  std::ostringstream js;
  bed.telemetry()->write_json(js);
  EXPECT_NE(js.str().find("\"slo\": "), std::string::npos);

  Fingerprint fp;
  fp.delivered = bed.network().delivered();
  for (auto& c : clients) fp.completed += c->completed();
  return fp;
}

TEST(SloGoldenTest, TelemetryWithSloPreservesBurstGoldenFingerprint) {
  const Fingerprint fp = run_e2e_with_slo(/*bursts=*/true);
  EXPECT_EQ(fp.delivered, kGoldenBurstPackets);
  EXPECT_EQ(fp.completed, kGoldenBurstConnections);
}

TEST(SloGoldenTest, TelemetryWithSloPreservesExactGoldenFingerprint) {
  const Fingerprint fp = run_e2e_with_slo(/*bursts=*/false);
  EXPECT_EQ(fp.delivered, kGoldenExactPackets);
  EXPECT_EQ(fp.completed, kGoldenExactConnections);
}

}  // namespace
}  // namespace nezha
