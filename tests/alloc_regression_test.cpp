// Allocation-regression guard for the zero-allocation datapath contract:
// a steady-state packet through the full BE↔FE offload path (client →
// FE → BE → VM, and BE → FE → client on the reverse direction) must not
// touch the heap. Counted with the nezha_alloc_hook operator-new
// replacement linked into this binary.
//
// A second test pins the per-connection-SETUP allocation count (session
// table entry, FE flow-cache entry, pre-action cache) so growth there is
// visible in review rather than silent.
// A third test drives the production connection-setup fast path (CPS
// workload with burst windows, DESIGN.md §11) and pins its allocation rate:
// once slabs are warm, opening a connection must be allocation-free apart
// from the session-table slab growing toward its TTL equilibrium.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/testbed.h"
#include "src/vswitch/vswitch.h"
#include "src/workload/cps_workload.h"
#include "support/alloc_hook.h"

namespace nezha {
namespace {

using common::milliseconds;
using common::seconds;
using tables::OverlayAddr;
using tables::VnicId;
using vswitch::VnicConfig;
using vswitch::VnicMode;

constexpr std::uint32_t kVpc = 5;
constexpr VnicId kClientVnic = 1;
constexpr VnicId kServerVnic = 2;

class AllocRegressionTest : public ::testing::Test {
 protected:
  AllocRegressionTest() : bed_(make_config()) {
    client_ip_ = net::Ipv4Addr(10, 0, 0, 1);
    server_ip_ = net::Ipv4Addr(10, 0, 0, 2);
    VnicConfig client;
    client.id = kClientVnic;
    client.addr = OverlayAddr{kVpc, client_ip_};
    VnicConfig server;
    server.id = kServerVnic;
    server.addr = OverlayAddr{kVpc, server_ip_};
    bed_.add_vnic(0, client);
    bed_.add_vnic(1, server);
  }

  static core::TestbedConfig make_config() {
    core::TestbedConfig cfg;
    cfg.num_vswitches = 8;
    cfg.controller.auto_offload = false;
    cfg.controller.auto_scale = false;
    // A gateway-map refresh is control-plane work and may allocate; keep
    // it out of every measurement window.
    cfg.vswitch.learning_interval = seconds(100000);
    return cfg;
  }

  void offload_server() {
    ASSERT_TRUE(bed_.controller().trigger_offload(kServerVnic).ok());
    bed_.run_for(seconds(4));
    ASSERT_EQ(bed_.vswitch(1).vnic(kServerVnic)->mode(),
              VnicMode::kOffloaded);
  }

  net::FiveTuple flow(std::uint16_t sport) const {
    return net::FiveTuple{client_ip_, server_ip_, sport, 80,
                          net::IpProto::kTcp};
  }

  /// Pushes `iterations` packet pairs (client→server and server→client)
  /// through the datapath, draining the loop after each pair.
  void pump(std::uint16_t sport, int iterations) {
    const net::FiveTuple ft = flow(sport);
    for (int i = 0; i < iterations; ++i) {
      bed_.vswitch(0).from_vm(
          kClientVnic,
          net::make_tcp_packet(ft, net::TcpFlags{.ack = true}, 100, kVpc));
      bed_.vswitch(1).from_vm(
          kServerVnic,
          net::make_tcp_packet(ft.reversed(), net::TcpFlags{.ack = true},
                               100, kVpc));
      bed_.run_for(milliseconds(1));
    }
  }

  core::Testbed bed_;
  net::Ipv4Addr client_ip_, server_ip_;
};

TEST_F(AllocRegressionTest, SteadyStatePacketsAllocateNothing) {
  offload_server();
  pump(40000, /*iterations=*/256);  // warmup: size every slab and table

  const std::uint64_t delivered_before = bed_.network().delivered();
  const std::uint64_t allocs_before = support::alloc_counts().news;
  pump(40000, /*iterations=*/1024);
  const std::uint64_t window_allocs =
      support::alloc_counts().news - allocs_before;
  const std::uint64_t window_packets =
      bed_.network().delivered() - delivered_before;

  // The window must have carried real traffic (4 underlay hops per pump
  // iteration: client→FE, FE→BE, BE→FE, FE→client).
  EXPECT_GE(window_packets, 4 * 1024u);
  EXPECT_EQ(window_allocs, 0u)
      << "steady-state datapath allocated " << window_allocs << " times over "
      << window_packets << " packets";
}

TEST_F(AllocRegressionTest, ConnectionSetupAllocationsArePinned) {
  offload_server();
  pump(40000, /*iterations=*/256);  // warm the shared slabs/tables first

  // Open fresh connections (distinct 5-tuples): each creates a BE session
  // entry, an FE flow-cache entry, and a cached pre-actions copy, all of
  // which legitimately allocate — but the count per connection is a budget,
  // not a blank check. Pin it so creep shows up as a test failure.
  constexpr int kConns = 64;
  const std::uint64_t allocs_before = support::alloc_counts().news;
  for (int c = 0; c < kConns; ++c) {
    const net::FiveTuple ft = flow(static_cast<std::uint16_t>(41000 + c));
    bed_.vswitch(0).from_vm(
        kClientVnic,
        net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 100, kVpc));
    bed_.run_for(milliseconds(1));
  }
  const std::uint64_t setup_allocs =
      support::alloc_counts().news - allocs_before;
  const double per_conn =
      static_cast<double>(setup_allocs) / static_cast<double>(kConns);

  // Budget: hash-table nodes for the BE session entry, the FE cache entry
  // and the client-side session entry, plus occasional table rehashes
  // amortized across the batch. Measured ~6/conn; 12 leaves headroom for
  // rehash spikes without hiding a per-packet regression (which would add
  // hundreds across the 64-connection batch).
  EXPECT_LE(per_conn, 12.0)
      << "connection setup now allocates " << per_conn
      << " times per connection (" << setup_allocs << " total)";
}

// The hand-crafted-SYN budget above measures table costs per brand-new
// 5-tuple. This one measures the whole production setup phase — closed-loop
// CPS workloads, coalesced timers, burst windows, session aging — where
// tuples recycle and every per-connection step must run out of pools:
// after a warmup that sizes the slabs, the per-connection allocation rate
// must stay near zero (the residual is the session-table slab still growing
// toward its established-TTL equilibrium, amortized over thousands of
// connections). A heap-spilling closure on any handshake step costs ~0.5
// allocations per connection and fails this immediately.
TEST(CpsSetupPhaseAllocTest, WarmSetupPathAllocatesNearZeroPerConnection) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 4;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.vswitch.learning_interval = seconds(100000);
  // The production burst configuration (bench_engine_hotpath's e2e row).
  cfg.network.rx_burst_window = common::microseconds(192);
  cfg.vswitch.cpu_burst_window = common::microseconds(64);
  cfg.vswitch.aging_period = milliseconds(100);
  core::Testbed bed(cfg);

  VnicConfig server;
  server.id = kServerVnic;
  server.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 2)};
  bed.add_vnic(0, server);
  std::vector<std::unique_ptr<workload::CpsWorkload>> clients;
  for (int c = 0; c < 2; ++c) {
    VnicConfig client;
    client.id = static_cast<VnicId>(10 + c);
    client.addr =
        OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(c + 1))};
    bed.add_vnic(1 + static_cast<std::size_t>(c), client);
    workload::CpsWorkloadConfig w;
    w.concurrency = 64;
    w.seed = 900 + static_cast<std::uint64_t>(c);
    w.timer_window = common::microseconds(64);
    clients.push_back(std::make_unique<workload::CpsWorkload>(
        bed, 1 + static_cast<std::size_t>(c), client.id, 0, kServerVnic, w));
  }
  for (std::size_t i = 0; i < bed.size(); ++i) bed.vswitch(i).start_aging();

  for (auto& c : clients) c->start();
  bed.run_for(milliseconds(600));  // warmup: size pools, rings, tables

  const std::uint64_t allocs_before = support::alloc_counts().news;
  std::uint64_t conns_before = 0;
  for (auto& c : clients) conns_before += c->completed();

  bed.run_for(seconds(1));

  const std::uint64_t window_allocs =
      support::alloc_counts().news - allocs_before;
  std::uint64_t window_conns = 0;
  for (auto& c : clients) window_conns += c->completed();
  window_conns -= conns_before;
  for (auto& c : clients) c->stop();

  ASSERT_GT(window_conns, 10000u) << "scenario carried too little load to "
                                  << "make the per-connection rate meaningful";
  const double per_conn =
      static_cast<double>(window_allocs) / static_cast<double>(window_conns);
  // Same contract the bench --smoke gates at 0.02 over a longer window; the
  // shorter test window sees proportionally more slab-growth residue, so
  // the budget is looser — but still ~5x below one spilled closure.
  EXPECT_LE(per_conn, 0.1)
      << "setup phase allocated " << window_allocs << " times over "
      << window_conns << " connections (" << per_conn << "/connection)";
}

}  // namespace
}  // namespace nezha
