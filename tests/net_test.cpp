// Unit tests for src/net: addresses, 5-tuples, header codecs, the Nezha
// carrier shim, and full-packet serialize/parse round trips.
#include <gtest/gtest.h>

#include "src/net/addr.h"
#include "src/net/carrier.h"
#include "src/net/five_tuple.h"
#include "src/net/headers.h"
#include "src/net/packet.h"

namespace nezha::net {
namespace {

TEST(Ipv4AddrTest, ParseAndFormat) {
  Ipv4Addr a(10, 1, 2, 3);
  EXPECT_EQ(a.to_string(), "10.1.2.3");
  EXPECT_EQ(Ipv4Addr::parse("10.1.2.3"), a);
  Ipv4Addr out;
  EXPECT_TRUE(Ipv4Addr::try_parse("255.255.255.255", out));
  EXPECT_EQ(out.value(), 0xffffffffu);
  EXPECT_FALSE(Ipv4Addr::try_parse("256.1.1.1", out));
  EXPECT_FALSE(Ipv4Addr::try_parse("1.2.3", out));
  EXPECT_FALSE(Ipv4Addr::try_parse("1.2.3.4.5", out));
  EXPECT_FALSE(Ipv4Addr::try_parse("junk", out));
}

TEST(MacAddrTest, RoundTrip) {
  MacAddr m(0x001122334455ULL);
  EXPECT_EQ(m.to_string(), "00:11:22:33:44:55");
  EXPECT_EQ(m.value(), 0x001122334455ULL);
  EXPECT_EQ(MacAddr(m.bytes()), m);
}

FiveTuple sample_tuple() {
  return FiveTuple{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 12345, 80,
                   IpProto::kTcp};
}

TEST(FiveTupleTest, ReverseIsInvolution) {
  const FiveTuple ft = sample_tuple();
  EXPECT_EQ(ft.reversed().reversed(), ft);
  EXPECT_EQ(ft.reversed().src_ip, ft.dst_ip);
  EXPECT_EQ(ft.reversed().dst_port, ft.src_port);
}

TEST(FiveTupleTest, CanonicalSharedByBothDirections) {
  const FiveTuple ft = sample_tuple();
  EXPECT_EQ(ft.canonical(), ft.reversed().canonical());
  EXPECT_TRUE(ft.canonical().is_canonical());
}

TEST(FiveTupleTest, HashDeterministicAndDirectional) {
  const FiveTuple ft = sample_tuple();
  EXPECT_EQ(flow_hash(ft), flow_hash(ft));
  EXPECT_NE(flow_hash(ft), flow_hash(ft.reversed()));
  EXPECT_NE(flow_hash(ft, 1), flow_hash(ft, 2));
}

TEST(FiveTupleTest, HashSpreadsAcrossBuckets) {
  // 5-tuple hashing is Nezha's whole load-balancing story; verify the
  // spread over a 4-FE pool is within a few percent of uniform.
  constexpr int kFlows = 40000;
  int buckets[4] = {0, 0, 0, 0};
  for (int i = 0; i < kFlows; ++i) {
    FiveTuple ft{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 1, 0, 1),
                 static_cast<std::uint16_t>(1024 + i % 60000),
                 static_cast<std::uint16_t>(80 + i / 60000), IpProto::kTcp};
    ++buckets[flow_hash(ft) % 4];
  }
  for (int b : buckets) {
    EXPECT_NEAR(b, kFlows / 4, kFlows / 4 * 0.05);
  }
}

TEST(HeaderTest, EthernetRoundTrip) {
  EthernetHeader h{MacAddr(0xaabbccddeeffULL), MacAddr(0x112233445566ULL),
                   kEtherTypeIpv4};
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  EXPECT_EQ(buf.size(), EthernetHeader::kSize);
  ByteReader r(buf);
  EXPECT_EQ(EthernetHeader::parse(r), h);
}

TEST(HeaderTest, Ipv4RoundTripAndChecksum) {
  Ipv4Header h;
  h.src = Ipv4Addr(192, 168, 1, 1);
  h.dst = Ipv4Addr(192, 168, 1, 2);
  h.total_length = 100;
  h.ttl = 63;
  h.protocol = IpProto::kUdp;
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  ASSERT_EQ(buf.size(), Ipv4Header::kSize);
  // A correct IPv4 header checksums to zero over the full header.
  EXPECT_EQ(internet_checksum(buf), 0);
  ByteReader r(buf);
  EXPECT_EQ(Ipv4Header::parse(r), h);
}

TEST(HeaderTest, TcpFlagsRoundTrip) {
  for (int bits = 0; bits < 32; ++bits) {
    TcpFlags f;
    f.fin = bits & 1;
    f.syn = bits & 2;
    f.rst = bits & 4;
    f.psh = bits & 8;
    f.ack = bits & 16;
    EXPECT_EQ(TcpFlags::from_byte(f.to_byte()), f);
  }
}

TEST(HeaderTest, TcpRoundTrip) {
  TcpHeader h;
  h.src_port = 4321;
  h.dst_port = 443;
  h.seq = 0xdeadbeef;
  h.ack = 0x12345678;
  h.flags.syn = true;
  h.flags.ack = true;
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  EXPECT_EQ(buf.size(), TcpHeader::kSize);
  ByteReader r(buf);
  EXPECT_EQ(TcpHeader::parse(r), h);
}

TEST(HeaderTest, VxlanRoundTrip24BitVni) {
  VxlanHeader h{0xabcdef};
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  EXPECT_EQ(buf.size(), VxlanHeader::kSize);
  ByteReader r(buf);
  EXPECT_EQ(VxlanHeader::parse(r), h);
}

TEST(CarrierTest, RoundTripWithTlvs) {
  CarrierHeader c;
  c.flags.is_notify = true;
  c.add(CarrierTlvType::kStateSnapshot, {1, 2, 3, 4});
  c.add(CarrierTlvType::kVnicId, {9, 8, 7, 6, 5, 4, 3, 2});
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  c.serialize(w);
  EXPECT_EQ(buf.size(), c.wire_size());
  ByteReader r(buf);
  auto parsed = CarrierHeader::parse(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), c);
  ASSERT_TRUE(parsed.value().find(CarrierTlvType::kVnicId).has_value());
  EXPECT_EQ(parsed.value().find(CarrierTlvType::kVnicId)->size(), 8u);
  EXPECT_FALSE(parsed.value().find(CarrierTlvType::kPreActions).has_value());
}

TEST(CarrierTest, RejectsBadVersion) {
  std::vector<std::uint8_t> buf = {9, 0, 0, 4};
  ByteReader r(buf);
  EXPECT_FALSE(CarrierHeader::parse(r).ok());
}

TEST(CarrierTest, RejectsTruncatedTlv) {
  CarrierHeader c;
  c.add(CarrierTlvType::kPreActions, {1, 2, 3, 4, 5, 6});
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  c.serialize(w);
  buf.resize(buf.size() - 2);  // chop the TLV payload
  ByteReader r(buf);
  EXPECT_FALSE(CarrierHeader::parse(r).ok());
}

TEST(CarrierTest, AddRejectsTlvCountOverflow) {
  CarrierHeader c;
  for (std::size_t i = 0; i < CarrierHeader::kMaxTlvs; ++i) {
    EXPECT_TRUE(c.add(CarrierTlvType::kNotify, {static_cast<std::uint8_t>(i)}));
  }
  EXPECT_FALSE(c.add(CarrierTlvType::kNotify, {0xff}));
  EXPECT_TRUE(c.add_uninit(CarrierTlvType::kNotify, 1).empty());
  EXPECT_EQ(c.tlv_count(), CarrierHeader::kMaxTlvs);
}

TEST(CarrierTest, AddRejectsArenaOverflow) {
  CarrierHeader c;
  const std::vector<std::uint8_t> big(CarrierHeader::kArenaCapacity - 10, 0xab);
  ASSERT_TRUE(c.add(CarrierTlvType::kPreActions, big));
  // 11 more bytes would exceed the arena even though the TLV slot is free.
  EXPECT_FALSE(c.add(CarrierTlvType::kDecapInfo,
                     std::vector<std::uint8_t>(11, 0xcd)));
  EXPECT_TRUE(c.add_uninit(CarrierTlvType::kDecapInfo, 11).empty());
  // A payload that still fits is accepted.
  EXPECT_TRUE(c.add(CarrierTlvType::kDecapInfo,
                    std::vector<std::uint8_t>(10, 0xcd)));
  EXPECT_EQ(c.tlv_count(), 2u);
}

TEST(CarrierTest, ParseRejectsOverCapacityWire) {
  // A wire image with more TLVs than the inline arena can hold must be
  // rejected at parse time, not silently truncated.
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  const std::size_t n_tlvs = CarrierHeader::kMaxTlvs + 1;
  w.u8(CarrierHeader::kVersion);
  w.u8(0);
  w.u16(static_cast<std::uint16_t>(CarrierHeader::kBaseSize + n_tlvs * 5));
  for (std::size_t i = 0; i < n_tlvs; ++i) {
    w.u16(static_cast<std::uint16_t>(CarrierTlvType::kNotify));
    w.u16(1);
    w.u8(static_cast<std::uint8_t>(i));
  }
  ByteReader r(buf);
  EXPECT_FALSE(CarrierHeader::parse(r).ok());
}

TEST(CarrierTest, AddUninitEncodesInPlace) {
  CarrierHeader c;
  auto dst = c.add_uninit(CarrierTlvType::kVnicId, 8);
  ASSERT_EQ(dst.size(), 8u);
  FixedWriter w(dst);
  w.u64(0x1122334455667788ULL);
  EXPECT_EQ(w.written(), 8u);
  auto got = c.find(CarrierTlvType::kVnicId);
  ASSERT_TRUE(got.has_value());
  ByteReader r(*got);
  EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
}

TEST(PacketTest, BarePacketRoundTrip) {
  Packet pkt = make_tcp_packet(sample_tuple(), TcpFlags{.syn = true}, 100, 7);
  const auto bytes = pkt.serialize();
  EXPECT_EQ(bytes.size(), pkt.wire_size());
  auto parsed = Packet::parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().inner, pkt.inner);
  EXPECT_FALSE(parsed.value().encapsulated());
}

TEST(PacketTest, EncapRoundTripPreservesInnerAndVni) {
  Packet pkt = make_tcp_packet(sample_tuple(), TcpFlags{.ack = true}, 64, 42);
  pkt.encap(Ipv4Addr(172, 16, 0, 1), MacAddr(0x1ULL), Ipv4Addr(172, 16, 0, 2),
            MacAddr(0x2ULL));
  ASSERT_TRUE(pkt.encapsulated());
  EXPECT_EQ(pkt.overlay->vni, 42u);
  const auto bytes = pkt.serialize();
  EXPECT_EQ(bytes.size(), pkt.wire_size());
  auto parsed = Packet::parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().inner, pkt.inner);
  ASSERT_TRUE(parsed.value().encapsulated());
  EXPECT_EQ(parsed.value().overlay, pkt.overlay);
  EXPECT_EQ(parsed.value().vpc_id, 42u);
}

TEST(PacketTest, EncapWithCarrierRoundTrip) {
  Packet pkt = make_udp_packet(sample_tuple(), 32, 9);
  pkt.encap(Ipv4Addr(172, 16, 0, 1), MacAddr(0x1ULL), Ipv4Addr(172, 16, 0, 2),
            MacAddr(0x2ULL));
  CarrierHeader c;
  c.flags.from_frontend = true;
  c.add(CarrierTlvType::kPreActions, {0xde, 0xad});
  pkt.carrier = c;
  const auto bytes = pkt.serialize();
  EXPECT_EQ(bytes.size(), pkt.wire_size());
  auto parsed = Packet::parse(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.value().carrier.has_value());
  EXPECT_EQ(*parsed.value().carrier, c);
  EXPECT_EQ(parsed.value().inner, pkt.inner);
}

TEST(PacketTest, DecapStripsOverlayAndCarrier) {
  Packet pkt = make_tcp_packet(sample_tuple(), TcpFlags{}, 0, 3);
  pkt.encap(Ipv4Addr(1, 1, 1, 1), MacAddr(0x1ULL), Ipv4Addr(2, 2, 2, 2),
            MacAddr(0x2ULL));
  pkt.carrier = CarrierHeader{};
  auto removed = pkt.decap();
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->src_ip, Ipv4Addr(1, 1, 1, 1));
  EXPECT_FALSE(pkt.encapsulated());
  EXPECT_FALSE(pkt.carrier.has_value());
}

TEST(PacketTest, EntropyPortIsFlowStable) {
  Packet a = make_tcp_packet(sample_tuple(), TcpFlags{}, 0, 1);
  Packet b = make_tcp_packet(sample_tuple(), TcpFlags{.ack = true}, 99, 1);
  a.encap(Ipv4Addr(1, 1, 1, 1), MacAddr(1ULL), Ipv4Addr(2, 2, 2, 2),
          MacAddr(2ULL));
  b.encap(Ipv4Addr(1, 1, 1, 1), MacAddr(1ULL), Ipv4Addr(2, 2, 2, 2),
          MacAddr(2ULL));
  EXPECT_EQ(a.overlay->src_port, b.overlay->src_port);
}

TEST(PacketTest, WireSizeAccountsForEncapOverhead) {
  Packet pkt = make_udp_packet(sample_tuple(), 100, 1);
  const std::size_t bare = pkt.wire_size();
  pkt.encap(Ipv4Addr(1, 1, 1, 1), MacAddr(1ULL), Ipv4Addr(2, 2, 2, 2),
            MacAddr(2ULL));
  EXPECT_EQ(pkt.wire_size(), bare + Overlay::kSize);
  CarrierHeader c;
  c.add(CarrierTlvType::kStateSnapshot, std::vector<std::uint8_t>(7));
  pkt.carrier = c;
  EXPECT_EQ(pkt.wire_size(), bare + Overlay::kSize + c.wire_size());
}

TEST(PacketTest, ParseRejectsTruncated) {
  Packet pkt = make_tcp_packet(sample_tuple(), TcpFlags{}, 50, 1);
  auto bytes = pkt.serialize();
  bytes.resize(20);
  EXPECT_FALSE(Packet::parse(bytes).ok());
}

}  // namespace
}  // namespace nezha::net
