// Unit tests for the NF layer: the §5.1 stateful-ACL truth table of
// finalize_action, stateful-decap routing, and the middlebox profiles that
// drive Table 3.
#include <gtest/gtest.h>

#include "src/nf/middlebox.h"
#include "src/nf/stateful.h"
#include "src/tables/cost_model.h"
#include "src/tables/rule_set.h"

namespace nezha::nf {
namespace {

using flow::Direction;
using flow::FirstDirection;
using flow::PreActions;
using flow::SessionState;
using flow::Verdict;

PreActions pre(Verdict tx, Verdict rx) {
  PreActions p;
  p.tx.acl_verdict = tx;
  p.rx.acl_verdict = rx;
  return p;
}

SessionState state_with_first(FirstDirection dir) {
  SessionState s;
  s.first_dir = dir;
  return s;
}

TEST(FinalizeActionTest, AcceptWhenOwnPreActionAccepts) {
  // §5.1: pre-action accept is final regardless of state.
  auto p = pre(Verdict::kAccept, Verdict::kAccept);
  for (auto first : {FirstDirection::kNone, FirstDirection::kTx,
                     FirstDirection::kRx}) {
    EXPECT_EQ(finalize_action(Direction::kTx, p, state_with_first(first)),
              Verdict::kAccept);
    EXPECT_EQ(finalize_action(Direction::kRx, p, state_with_first(first)),
              Verdict::kAccept);
  }
}

TEST(FinalizeActionTest, Section51TruthTable) {
  // Paper's exact example: RX pre-action drop, TX pre-action accept.
  auto p = pre(Verdict::kAccept, Verdict::kDrop);
  // "If the state is TX, the final action for both RX and TX is accept."
  EXPECT_EQ(finalize_action(Direction::kTx, p,
                            state_with_first(FirstDirection::kTx)),
            Verdict::kAccept);
  EXPECT_EQ(finalize_action(Direction::kRx, p,
                            state_with_first(FirstDirection::kTx)),
            Verdict::kAccept);
  // "If the state is RX, the final action for the RX packet will be drop"
  // (unsolicited flow).
  EXPECT_EQ(finalize_action(Direction::kRx, p,
                            state_with_first(FirstDirection::kRx)),
            Verdict::kDrop);
}

TEST(FinalizeActionTest, SymmetricCaseOutboundDeny) {
  // Mirror case: outbound denied, inbound allowed → locally-generated
  // responses to an externally-initiated session must pass.
  auto p = pre(Verdict::kDrop, Verdict::kAccept);
  EXPECT_EQ(finalize_action(Direction::kTx, p,
                            state_with_first(FirstDirection::kRx)),
            Verdict::kAccept);
  EXPECT_EQ(finalize_action(Direction::kTx, p,
                            state_with_first(FirstDirection::kTx)),
            Verdict::kDrop);
}

TEST(FinalizeActionTest, BothDroppedStaysDropped) {
  auto p = pre(Verdict::kDrop, Verdict::kDrop);
  for (auto first : {FirstDirection::kNone, FirstDirection::kTx,
                     FirstDirection::kRx}) {
    EXPECT_EQ(finalize_action(Direction::kTx, p, state_with_first(first)),
              Verdict::kDrop);
    EXPECT_EQ(finalize_action(Direction::kRx, p, state_with_first(first)),
              Verdict::kDrop);
  }
}

TEST(FinalizeActionTest, UninitializedStateGivesNoException) {
  // First packet of a denied direction with no recorded state: drop.
  auto p = pre(Verdict::kAccept, Verdict::kDrop);
  EXPECT_EQ(finalize_action(Direction::kRx, p,
                            state_with_first(FirstDirection::kNone)),
            Verdict::kDrop);
}

TEST(StatefulDecapTest, ResponseDstPrefersRecordedLb) {
  SessionState s;
  const net::Ipv4Addr fallback(10, 0, 0, 1);
  EXPECT_EQ(response_overlay_dst(s, fallback), fallback);
  s.decap_src_ip = net::Ipv4Addr(100, 100, 1, 1);
  EXPECT_EQ(response_overlay_dst(s, fallback), s.decap_src_ip);
}

TEST(MiddleboxProfileTest, ChainComplexityOrdering) {
  // §6.3.1: NAT has the heaviest chain, TR the lightest (ACL bypassed) —
  // this ordering is what produces the 4.4X > 4X > 3X CPS gains.
  tables::CostModel cost;
  auto lb = MiddleboxProfile::load_balancer();
  auto nat = MiddleboxProfile::nat_gateway();
  auto tr = MiddleboxProfile::transit_router();

  tables::RuleTableSet lb_rules(lb.rule_profile);
  tables::RuleTableSet nat_rules(nat.rule_profile);
  tables::RuleTableSet tr_rules(tr.rule_profile);
  EXPECT_GT(nat_rules.lookup_cycles(cost), lb_rules.lookup_cycles(cost));
  EXPECT_GT(lb_rules.lookup_cycles(cost), tr_rules.lookup_cycles(cost));
  EXPECT_FALSE(tr.rule_profile.acl_enabled);
}

TEST(MiddleboxProfileTest, RuleTablesAreO100MB) {
  // §6.3.1: middlebox rule tables are generally O(100MB).
  for (auto profile : {MiddleboxProfile::load_balancer(),
                       MiddleboxProfile::nat_gateway(),
                       MiddleboxProfile::transit_router()}) {
    EXPECT_GE(profile.rule_profile.synthetic_rule_bytes, 50ull << 20);
    EXPECT_LE(profile.rule_profile.synthetic_rule_bytes, 500ull << 20);
  }
}

TEST(MiddleboxProfileTest, LbSessionLongevityDominates) {
  // LB maintains persistent connections to real servers (§6.3.1) — the
  // root cause of its smaller #concurrent-flows gain.
  auto lb = MiddleboxProfile::load_balancer();
  auto nat = MiddleboxProfile::nat_gateway();
  EXPECT_GT(lb.mean_connection_lifetime, nat.mean_connection_lifetime);
  EXPECT_GT(lb.persistent_fraction, 0.0);
  EXPECT_TRUE(lb.stateful_decap);
}

}  // namespace
}  // namespace nezha::nf
