// Property tests for the packet wire codec: VXLAN overlay + carrier shim +
// inner frame.
//
// Two properties, checked over randomized frames:
//   1. Round-trip identity: parse(serialize(p)) reproduces every wire-visible
//      field, and serialize∘parse∘serialize is byte-stable.
//   2. Robustness: truncated prefixes and bit-flipped mutants of valid frames
//      never crash or over-read (ASan/UBSan enforce the memory part); inputs
//      too short to hold the inner frame are rejected with an error.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/net/packet.h"

namespace nezha {
namespace {

net::Ipv4Addr random_ip(common::Rng& rng) {
  return net::Ipv4Addr(static_cast<std::uint32_t>(
      rng.uniform_u64(1, 0xfffffffeULL)));
}

/// Locally-administered MACs (first octet 0x02), as every frame factory in
/// the simulator produces. The codec's carrier-shim detection peeks at the
/// byte after the VXLAN header, so an inner dst MAC starting with the
/// carrier version byte (0x01) would be misdetected as a shim — the codec's
/// contract excludes such MACs and we generate within it.
net::MacAddr random_mac(common::Rng& rng) {
  return net::MacAddr(0x020000000000ULL |
                      rng.uniform_u64(0, 0xffffffffffULL));
}

/// Serializable protocols only: the codec models TCP and UDP inner frames.
net::FiveTuple random_ft(common::Rng& rng) {
  return net::FiveTuple{
      random_ip(rng), random_ip(rng),
      static_cast<std::uint16_t>(rng.uniform_u64(0, 0xffff)),
      static_cast<std::uint16_t>(rng.uniform_u64(0, 0xffff)),
      rng.chance(0.5) ? net::IpProto::kTcp : net::IpProto::kUdp};
}

net::Packet random_packet(common::Rng& rng) {
  net::Packet pkt;
  pkt.inner.ft = random_ft(rng);
  pkt.inner.src_mac = random_mac(rng);
  pkt.inner.dst_mac = random_mac(rng);
  pkt.inner.payload_len =
      static_cast<std::uint16_t>(rng.uniform_u64(0, 1400));
  if (pkt.inner.ft.proto == net::IpProto::kTcp) {
    pkt.inner.tcp_flags.syn = rng.chance(0.5);
    pkt.inner.tcp_flags.ack = rng.chance(0.5);
    pkt.inner.tcp_flags.fin = rng.chance(0.3);
    pkt.inner.tcp_flags.rst = rng.chance(0.2);
    pkt.inner.tcp_flags.psh = rng.chance(0.3);
    pkt.inner.seq = static_cast<std::uint32_t>(rng.next());
    pkt.inner.ack_no = static_cast<std::uint32_t>(rng.next());
  }
  pkt.vpc_id = static_cast<std::uint32_t>(rng.uniform_u64(0, 0xffffff));

  if (rng.chance(0.7)) {
    pkt.encap(random_ip(rng), random_mac(rng), random_ip(rng),
              random_mac(rng));
    if (rng.chance(0.6)) {
      net::CarrierHeader carrier;
      carrier.flags.is_notify = rng.chance(0.3);
      carrier.flags.from_frontend = rng.chance(0.5);
      const int num_tlvs = static_cast<int>(rng.uniform_u64(1, 4));
      for (int t = 0; t < num_tlvs; ++t) {
        std::vector<std::uint8_t> value(rng.uniform_u64(0, 64));
        for (auto& b : value) {
          b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
        }
        carrier.add(static_cast<net::CarrierTlvType>(rng.uniform_u64(1, 5)),
                    std::move(value));
      }
      pkt.carrier = std::move(carrier);
    }
  }
  return pkt;
}

class CodecRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTripTest, SerializeParseIsIdentity) {
  common::Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    const net::Packet pkt = random_packet(rng);
    const std::vector<std::uint8_t> bytes = pkt.serialize();
    ASSERT_EQ(bytes.size(), pkt.wire_size()) << pkt.to_string();

    auto parsed = net::Packet::parse(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message << " " << pkt.to_string();
    const net::Packet& got = parsed.value();

    EXPECT_EQ(got.inner, pkt.inner) << pkt.to_string();
    ASSERT_EQ(got.overlay.has_value(), pkt.overlay.has_value());
    if (pkt.overlay) {
      EXPECT_EQ(*got.overlay, *pkt.overlay);
      // vpc_id is sim metadata; on the wire it only survives via the VNI.
      EXPECT_EQ(got.vpc_id, pkt.overlay->vni);
    }
    ASSERT_EQ(got.carrier.has_value(), pkt.carrier.has_value());
    if (pkt.carrier) EXPECT_EQ(*got.carrier, *pkt.carrier);

    // Byte-stability: re-serializing the parse result is the identity.
    EXPECT_EQ(got.serialize(), bytes) << pkt.to_string();
  }
}

TEST_P(CodecRoundTripTest, TruncatedInputsAreRejectedWithoutOverread) {
  common::Rng rng(GetParam() ^ 0x7472756eULL);
  for (int iter = 0; iter < 300; ++iter) {
    const net::Packet pkt = random_packet(rng);
    const std::vector<std::uint8_t> bytes = pkt.serialize();

    // Every strict prefix: must never crash or read past the span. Heap
    // copies sized exactly to the prefix let ASan catch any over-read.
    for (std::size_t len = 0; len < bytes.size();
         len += 1 + rng.uniform_u64(0, 6)) {
      const std::vector<std::uint8_t> prefix(bytes.begin(),
                                             bytes.begin() + len);
      auto parsed = net::Packet::parse(prefix);
      // A prefix cannot hold the full inner frame, so the only acceptable
      // "success" would be a packet that fits entirely in the prefix.
      if (parsed.ok()) {
        EXPECT_LE(parsed.value().wire_size(), len);
      }
    }

    // Too short for even the smallest inner frame: always an error.
    const std::size_t min_inner = net::EthernetHeader::kSize +
                                  net::Ipv4Header::kSize +
                                  net::UdpHeader::kSize;
    for (std::size_t len = 0; len < min_inner && len < bytes.size(); ++len) {
      const std::vector<std::uint8_t> prefix(bytes.begin(),
                                             bytes.begin() + len);
      EXPECT_FALSE(net::Packet::parse(prefix).ok()) << "len=" << len;
    }
  }
}

TEST_P(CodecRoundTripTest, BitFlippedAndGarbageInputsDoNotCrash) {
  common::Rng rng(GetParam() ^ 0x67617262ULL);
  for (int iter = 0; iter < 300; ++iter) {
    const net::Packet pkt = random_packet(rng);
    std::vector<std::uint8_t> bytes = pkt.serialize();

    // Flip a handful of random bits; parse may succeed or fail, but must
    // never crash, over-read, or loop.
    for (int flips = 0; flips < 8; ++flips) {
      const std::size_t pos = rng.uniform_u64(0, bytes.size() - 1);
      bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_u64(0, 7));
      (void)net::Packet::parse(bytes);
    }

    // Pure garbage of random length.
    std::vector<std::uint8_t> garbage(rng.uniform_u64(0, 200));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    }
    (void)net::Packet::parse(garbage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTripTest,
                         ::testing::Values(1ull, 0xc0dec5ull));

}  // namespace
}  // namespace nezha
