// Telemetry plane tests: flight-recorder ring semantics (wraparound,
// tie ordering, byte-identical dumps), metrics registry + sampler
// determinism, trace-query reconstruction, and the two hard runtime
// contracts — tracing-on steady state allocates nothing, and a
// telemetry-enabled run's simulation outcome matches a telemetry-off run.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/testbed.h"
#include "src/net/five_tuple.h"
#include "src/sim/event_loop.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/hub.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace_query.h"
#include "src/vswitch/vswitch.h"
#include "support/alloc_hook.h"

namespace nezha::telemetry {
namespace {

using common::milliseconds;
using common::seconds;

TraceEvent make_event(std::uint32_t node, common::TimePoint at,
                      EventKind kind, std::uint64_t flow = 0) {
  TraceEvent e;
  e.node = node;
  e.at = at;
  e.kind = kind;
  e.flow = flow;
  return e;
}

// ---------------------------------------------------------------- recorder

TEST(FlightRecorderTest, WraparoundKeepsNewestEventsPerNode) {
  FlightRecorder rec(/*num_nodes=*/2, /*events_per_node=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent e = make_event(0, i, EventKind::kPktEnqueue);
    e.a = static_cast<std::uint64_t>(i);
    rec.record(e);
  }
  rec.record(make_event(1, 100, EventKind::kPktDeliver));

  EXPECT_EQ(rec.ring_count(0), 4u);
  EXPECT_EQ(rec.ring_overwritten(0), 6u);
  EXPECT_EQ(rec.ring_count(1), 1u);
  EXPECT_EQ(rec.recorded(), 11u);

  // Node 0 retains exactly its 4 newest events, oldest-first in the merge.
  const auto events = rec.merged();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a, static_cast<std::uint64_t>(6 + i));
  }
  EXPECT_EQ(events[4].node, 1u);
}

TEST(FlightRecorderTest, ChattyNodeCannotEvictQuietNodesHistory) {
  FlightRecorder rec(/*num_nodes=*/2, /*events_per_node=*/8);
  rec.record(make_event(1, 0, EventKind::kProbeSent));
  for (int i = 0; i < 10000; ++i) {
    rec.record(make_event(0, i, EventKind::kPktEnqueue));
  }
  EXPECT_EQ(rec.ring_count(1), 1u);  // survived the flood
  EXPECT_EQ(rec.ring_overwritten(1), 0u);
}

TEST(FlightRecorderTest, SpilloverRingCatchesOutOfRangeNodes) {
  FlightRecorder rec(/*num_nodes=*/2, /*events_per_node=*/4);
  rec.record(make_event(77, 0, EventKind::kCtrlScaleIn));
  EXPECT_EQ(rec.ring_count(2), 1u);  // index num_nodes = spillover
  ASSERT_EQ(rec.merged().size(), 1u);
  EXPECT_EQ(rec.merged()[0].node, 77u);
}

TEST(FlightRecorderTest, SameTimestampEventsKeepRecordOrder) {
  // Three nodes record at the identical sim time; the merge must order by
  // the global record sequence, not by node or ring position.
  FlightRecorder rec(/*num_nodes=*/3, /*events_per_node=*/4);
  rec.record(make_event(2, 5, EventKind::kPktEnqueue, 0xaa));
  rec.record(make_event(0, 5, EventKind::kPktDeliver, 0xbb));
  rec.record(make_event(1, 5, EventKind::kVmDeliver, 0xcc));
  const auto events = rec.merged();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].flow, 0xaau);
  EXPECT_EQ(events[1].flow, 0xbbu);
  EXPECT_EQ(events[2].flow, 0xccu);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
}

TEST(FlightRecorderTest, IdenticalRunsDumpByteIdentically) {
  auto fill = [](FlightRecorder& rec) {
    for (int i = 0; i < 100; ++i) {
      TraceEvent e = make_event(i % 3, i * 10, EventKind::kCpuOpStart,
                                0x1234u + i);
      e.detail = static_cast<std::uint8_t>(Stage::kBeTx);
      rec.record(e);
    }
  };
  FlightRecorder a(3, 32), b(3, 32);
  fill(a);
  fill(b);
  std::ostringstream da, db;
  a.dump(da);
  b.dump(db);
  EXPECT_FALSE(da.str().empty());
  EXPECT_EQ(da.str(), db.str());
}

TEST(FlightRecorderTest, DumpRoundTripsThroughLoadTrace) {
  FlightRecorder rec(2, 8);
  rec.record(make_event(0, 7, EventKind::kTableMiss, 0xf00));
  rec.record(make_event(1, 9, EventKind::kVmDeliver, 0xf00));
  std::stringstream ss;
  rec.dump(ss);
  auto loaded = load_trace(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  const auto& events = loaded.value();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kTableMiss);
  EXPECT_EQ(events[0].at, 7);
  EXPECT_EQ(events[1].kind, EventKind::kVmDeliver);
}

TEST(FlightRecorderTest, LoadTraceRejectsCorruptHeader) {
  std::stringstream ss;
  ss << "not a trace dump at all";
  EXPECT_FALSE(load_trace(ss).ok());
}

// ----------------------------------------------------------------- metrics

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry m;
  const auto c1 = m.counter("x");
  const auto c2 = m.counter("x");
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(m.counter_count(), 1u);
  m.add(c1, 3);
  m.add(c2, 4);
  EXPECT_EQ(m.counter_value(c1), 7u);
  EXPECT_EQ(m.find_counter("x"), c1);
  EXPECT_EQ(m.find_counter("nope"), MetricsRegistry::kInvalidId);
}

TEST(MetricsRegistryTest, SamplerRecordsDeterministicSeries) {
  auto run_once = [](std::string* json) {
    sim::EventLoop loop;
    MetricsRegistry m;
    const auto c = m.counter("pkts");
    double g_value = 0.0;
    m.gauge("depth", [&g_value] { return g_value; });
    const auto h = m.histogram("lat_us", 0.0, 100.0, 10);
    m.start_sampler(loop, milliseconds(10), /*max_samples=*/64);
    loop.schedule_periodic(milliseconds(3), [&] {
      m.add(c);
      g_value += 1.5;
      m.observe(h, 42.0);
    });
    loop.run_until(milliseconds(100));
    m.stop_sampler();
    std::ostringstream os;
    m.write_json(os);
    *json = os.str();
    return m.samples_taken();
  };
  std::string j1, j2;
  const std::size_t n1 = run_once(&j1);
  const std::size_t n2 = run_once(&j2);
  EXPECT_EQ(n1, 10u);
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(j1, j2) << "sampler JSON must be byte-identical across runs";
  EXPECT_NE(j1.find("\"schema\": \"nezha-telemetry-v1\""), std::string::npos);
  EXPECT_NE(j1.find("c:pkts"), std::string::npos);
  EXPECT_NE(j1.find("g:depth"), std::string::npos);
  EXPECT_NE(j1.find("lat_us"), std::string::npos);
}

TEST(MetricsRegistryTest, TicksBeyondCapacityAreDroppedNotGrown) {
  sim::EventLoop loop;
  MetricsRegistry m;
  m.counter("c");
  m.start_sampler(loop, milliseconds(1), /*max_samples=*/5);
  loop.run_until(milliseconds(20));
  m.stop_sampler();
  EXPECT_EQ(m.samples_taken(), 5u);
  EXPECT_EQ(m.dropped_ticks(), 15u);
}

// -------------------------------------------------------------- trace query

TEST(TraceQueryTest, SlowestSetupsRanksByLatency) {
  std::vector<TraceEvent> events;
  auto miss = [&](std::uint64_t flow, common::TimePoint at) {
    events.push_back(make_event(0, at, EventKind::kTableMiss, flow));
  };
  auto deliver = [&](std::uint64_t flow, common::TimePoint at) {
    events.push_back(make_event(1, at, EventKind::kVmDeliver, flow));
  };
  miss(0xa, 100);
  deliver(0xa, 400);   // 300ns setup
  miss(0xb, 100);
  deliver(0xb, 150);   // 50ns setup
  miss(0xc, 200);
  deliver(0xc, 900);   // 700ns setup
  miss(0xd, 100);      // never delivered: excluded
  for (std::size_t i = 0; i < events.size(); ++i) events[i].seq = i + 1;

  const auto top = slowest_setups(events, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].flow, 0xcu);
  EXPECT_EQ(top[0].latency(), 700);
  EXPECT_EQ(top[1].flow, 0xau);
  EXPECT_EQ(top[1].latency(), 300);
}

TEST(TraceQueryTest, AuditFlagsIllegalAndDiscontinuousTransitions) {
  std::vector<TraceEvent> events;
  auto mode = [&](std::uint32_t node, std::uint64_t vnic, std::uint8_t from,
                  std::uint8_t to, common::TimePoint at) {
    TraceEvent e = make_event(node, at, EventKind::kVnicMode);
    e.a = vnic;
    e.detail = pack_mode_transition(from, to);
    events.push_back(e);
  };
  mode(3, 1, 0, 1, 10);  // local -> dual: legal
  mode(3, 1, 1, 2, 20);  // dual -> offloaded: legal
  mode(3, 1, 2, 0, 30);  // offloaded -> local: ILLEGAL edge (skips fallback)
  mode(3, 2, 0, 1, 40);  // second vnic, legal
  mode(3, 2, 2, 3, 50);  // edge legal but discontinuous (prev state was 1)
  mode(9, 1, 3, 3, 60);  // other node: not in this audit
  for (std::size_t i = 0; i < events.size(); ++i) events[i].seq = i + 1;

  const auto steps = audit_vswitch(events, 3);
  ASSERT_EQ(steps.size(), 5u);
  EXPECT_TRUE(steps[0].legal);
  EXPECT_TRUE(steps[1].legal);
  EXPECT_FALSE(steps[2].legal);
  EXPECT_TRUE(steps[3].legal);
  EXPECT_FALSE(steps[4].legal);
}

TEST(TraceQueryTest, PathCheckRequiresAllFourLegs) {
  const std::uint64_t flow = 0xdeadbeef;
  std::vector<TraceEvent> events;
  auto push = [&](std::uint32_t node, EventKind kind, Stage stage) {
    TraceEvent e = make_event(node, 0, EventKind::kPktEnqueue, flow);
    e.kind = kind;
    e.detail = static_cast<std::uint8_t>(stage);
    e.seq = events.size() + 1;
    events.push_back(e);
  };
  push(5, EventKind::kCpuOpStart, Stage::kBeTx);      // BE charges CPU
  push(5, EventKind::kBeFeRedirect, Stage::kBeTx);    // BE picks the FE
  push(9, EventKind::kCpuOpStart, Stage::kFeTx);      // FE forwards
  EXPECT_FALSE(check_be_fe_peer_path(events, flow).complete());

  push(2, EventKind::kVmDeliver, Stage::kFeTx);       // peer VM delivery
  const auto check = check_be_fe_peer_path(events, flow);
  EXPECT_TRUE(check.complete());
  EXPECT_EQ(check.be_node, 5u);
  EXPECT_EQ(check.fe_node, 9u);
  EXPECT_EQ(check.peer_node, 2u);
  EXPECT_EQ(check.timeline.size(), 4u);
}

// ------------------------------------------------- integration (testbed)

core::TestbedConfig telemetry_testbed_config() {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 8;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  // Keep gateway-map refreshes (which may allocate) out of measurement
  // windows, mirroring the alloc-regression suite.
  cfg.vswitch.learning_interval = seconds(100000);
  cfg.telemetry.enabled = true;
  cfg.telemetry.events_per_node = 1 << 12;
  cfg.telemetry.sample_period = milliseconds(50);
  return cfg;
}

constexpr std::uint32_t kVpc = 5;
constexpr tables::VnicId kClientVnic = 1;
constexpr tables::VnicId kServerVnic = 2;
// The client lives on the highest-id vSwitch: the controller picks FEs by
// ascending id among idle switches, so the FE pool for the server (home 1)
// is {0, 2, 3, 4} and never collides with the client's host — the peer
// delivery genuinely happens at a third node.
constexpr std::size_t kClientHost = 7;
constexpr std::size_t kServerHost = 1;

class TelemetryIntegrationTest : public ::testing::Test {
 protected:
  explicit TelemetryIntegrationTest(
      core::TestbedConfig cfg = telemetry_testbed_config())
      : bed_(cfg) {
    client_ip_ = net::Ipv4Addr(10, 0, 0, 1);
    server_ip_ = net::Ipv4Addr(10, 0, 0, 2);
    vswitch::VnicConfig client;
    client.id = kClientVnic;
    client.addr = tables::OverlayAddr{kVpc, client_ip_};
    vswitch::VnicConfig server;
    server.id = kServerVnic;
    server.addr = tables::OverlayAddr{kVpc, server_ip_};
    bed_.add_vnic(kClientHost, client);
    bed_.add_vnic(kServerHost, server);
  }

  void offload_server() {
    ASSERT_TRUE(bed_.controller().trigger_offload(kServerVnic).ok());
    bed_.run_for(seconds(4));
    ASSERT_EQ(bed_.vswitch(kServerHost).vnic(kServerVnic)->mode(),
              vswitch::VnicMode::kOffloaded);
  }

  net::FiveTuple flow(std::uint16_t sport) const {
    return net::FiveTuple{client_ip_, server_ip_, sport, 80,
                          net::IpProto::kTcp};
  }

  void pump(std::uint16_t sport, int iterations) {
    const net::FiveTuple ft = flow(sport);
    for (int i = 0; i < iterations; ++i) {
      // created_at feeds the per-hop-class latency histograms (workloads
      // stamp it the same way; it is telemetry metadata, not sim state).
      net::Packet c2s =
          net::make_tcp_packet(ft, net::TcpFlags{.ack = true}, 100, kVpc);
      c2s.created_at = bed_.loop().now();
      bed_.vswitch(kClientHost).from_vm(kClientVnic, std::move(c2s));
      net::Packet s2c = net::make_tcp_packet(
          ft.reversed(), net::TcpFlags{.ack = true}, 100, kVpc);
      s2c.created_at = bed_.loop().now();
      bed_.vswitch(kServerHost).from_vm(kServerVnic, std::move(s2c));
      bed_.run_for(milliseconds(1));
    }
  }

  core::Testbed bed_;
  net::Ipv4Addr client_ip_, server_ip_;
};

TEST_F(TelemetryIntegrationTest, TracingOnSteadyStateAllocatesNothing) {
  offload_server();
  pump(40000, /*iterations=*/256);  // warmup: slabs, tables, rings, rows

  const std::uint64_t delivered_before = bed_.network().delivered();
  const std::uint64_t recorded_before = bed_.telemetry()->recorder().recorded();
  const std::uint64_t allocs_before = support::alloc_counts().news;
  pump(40000, /*iterations=*/1024);
  const std::uint64_t window_allocs =
      support::alloc_counts().news - allocs_before;
  const std::uint64_t window_packets =
      bed_.network().delivered() - delivered_before;
  const std::uint64_t window_events =
      bed_.telemetry()->recorder().recorded() - recorded_before;

  EXPECT_GE(window_packets, 4 * 1024u);
  EXPECT_GT(window_events, window_packets)
      << "tracing-on window recorded implausibly few events";
  EXPECT_EQ(window_allocs, 0u)
      << "telemetry-on steady state allocated " << window_allocs
      << " times over " << window_events << " trace events";
}

TEST_F(TelemetryIntegrationTest, ReconstructsBeFePeerTimeline) {
  offload_server();
  pump(41000, /*iterations=*/8);

  // The server→client direction traverses the detour: BE charges be_tx,
  // redirects to an FE, the FE forwards, the client VM receives.
  const std::uint64_t flow_id =
      net::flow_hash(flow(41000).canonical(), 0);
  const auto events = bed_.telemetry()->recorder().merged();
  const auto check = check_be_fe_peer_path(events, flow_id);
  EXPECT_TRUE(check.complete())
      << "be_tx=" << check.have_be_tx << " redirect=" << check.have_redirect
      << " fe_hop=" << check.have_fe_hop
      << " peer=" << check.have_peer_deliver;
  EXPECT_NE(check.be_node, check.fe_node);
  EXPECT_NE(check.fe_node, check.peer_node);
  EXPECT_FALSE(check.timeline.empty());

  // The same flow also has a measurable first-packet setup.
  const auto slow = slowest_setups(events, 5);
  EXPECT_FALSE(slow.empty());

  // And the offload FSM audit for the server's home vSwitch is clean.
  const auto steps = audit_vswitch(events, /*node=*/1);
  ASSERT_FALSE(steps.empty());
  for (const auto& t : steps) {
    EXPECT_TRUE(t.legal) << "illegal vnic mode step " << unsigned(t.from)
                         << " -> " << unsigned(t.to);
  }
}

TEST_F(TelemetryIntegrationTest, SamplerSeriesAndHistogramsPopulate) {
  offload_server();
  pump(42000, /*iterations=*/64);

  auto& m = bed_.telemetry()->metrics();
  EXPECT_GT(m.samples_taken(), 0u);
  const auto g = m.find_gauge("vs1.sessions");
  ASSERT_NE(g, MetricsRegistry::kInvalidId);
  EXPECT_GT(m.last_sample_gauge(g), 0.0);
  const auto h = m.find_histogram("latency.local_rx_us");
  ASSERT_NE(h, MetricsRegistry::kInvalidId);
  EXPECT_GT(m.hist_count(h), 0u);

  std::ostringstream os;
  bed_.telemetry()->write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("vs1.sessions"), std::string::npos);
  EXPECT_NE(json.find("latency.local_rx_us"), std::string::npos);
}

TEST(TelemetryDeterminismTest, TwoRunsDumpByteIdenticalTraces) {
  auto run_once = [](std::string* trace, std::string* json) {
    core::TestbedConfig cfg = telemetry_testbed_config();
    core::Testbed bed(cfg);
    vswitch::VnicConfig client;
    client.id = kClientVnic;
    client.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 1)};
    vswitch::VnicConfig server;
    server.id = kServerVnic;
    server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 2)};
    bed.add_vnic(0, client);
    bed.add_vnic(1, server);
    EXPECT_TRUE(bed.controller().trigger_offload(kServerVnic).ok());
    bed.run_for(seconds(4));
    const net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1),
                            net::Ipv4Addr(10, 0, 0, 2), 43000, 80,
                            net::IpProto::kTcp};
    for (int i = 0; i < 32; ++i) {
      bed.vswitch(0).from_vm(
          kClientVnic,
          net::make_tcp_packet(ft, net::TcpFlags{.ack = true}, 100, kVpc));
      bed.run_for(milliseconds(1));
    }
    std::ostringstream ts, js;
    bed.telemetry()->dump_trace(ts);
    bed.telemetry()->write_json(js);
    *trace = ts.str();
    *json = js.str();
  };
  std::string t1, j1, t2, j2;
  run_once(&t1, &j1);
  run_once(&t2, &j2);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2) << "same-seed trace dumps differ";
  EXPECT_EQ(j1, j2) << "same-seed metric JSON differs";
}

}  // namespace
}  // namespace nezha::telemetry
