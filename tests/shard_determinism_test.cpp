// Sharded-engine determinism and conservation guarantees (DESIGN.md §13).
//
// The parallel engine's contract: a sharded run's outcome is a pure
// function of (config, seed, shard_count) — independent of the number of
// worker threads and of wall-clock interleaving — and the packet
// conservation identity extends across shard boundaries (every exported
// token is imported exactly once or still pending in a ring). These tests
// pin that contract on a fleet-scale Clos scenario whose offloaded BE↔FE
// traffic genuinely crosses shards:
//  * shards=1 is exactly the legacy single-loop testbed (same fingerprint
//    as a default-config run — the golden-fingerprint gates in CI cover
//    the pinned burst/exact constants on this same path);
//  * N-shard runs reproduce bit-for-bit across repeated runs;
//  * N-shard runs are identical at 1 and 2 worker threads;
//  * the invariant harness (including the cross-shard identity) stays
//    green throughout a threaded run.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/core/invariants.h"
#include "src/core/testbed.h"
#include "src/workload/fleet_model.h"

namespace nezha {
namespace {

constexpr std::size_t kVSwitches = 64;
constexpr std::size_t kPairs = 8;

struct ShardRun {
  std::uint64_t fingerprint = 0;
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::uint64_t exported = 0;
  std::uint64_t imported = 0;
  std::uint64_t tokens_pending = 0;
  std::uint64_t late_tokens = 0;
  std::uint64_t epochs = 0;
  std::size_t violations = 0;
  std::string report;
};

/// Clos fleet scenario with every server vNIC offloaded, driven in slices
/// with quiescent invariant checks between them. `shards == 1` builds the
/// classic engine-less testbed; `threads` only applies to the traffic
/// phase (control-plane workflows run at 1 thread, per the Testbed rules).
ShardRun run_sharded(std::size_t shards, int threads, std::uint64_t seed) {
  // 4-host racks: the min-4-FE pools cannot fit beside their BE in one
  // rack, so offload traffic is forced across leaves — and across shards.
  core::TestbedConfig cfg = core::make_clos_testbed_config(
      kVSwitches, /*hosts_per_leaf=*/4, /*num_spines=*/4,
      /*oversubscription=*/2.0);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.shards = shards;
  cfg.threads = 1;
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = kPairs;
  sc.base_attempts_per_sec = 400.0;
  sc.seed = seed;
  workload::FleetScenario scenario(bed, sc);
  core::InvariantChecker checker(bed,
                                 core::InvariantCheckerConfig{.seed = seed});

  scenario.deploy();
  scenario.offload_all();
  bed.run_for(common::seconds(1));  // offload workflows, single-threaded
  checker.check();

  bed.set_threads(threads);
  scenario.start_traffic();
  for (int slice = 0; slice < 6; ++slice) {
    bed.run_for(common::milliseconds(250));
    checker.check();  // all shards quiescent between run_for() calls
  }
  scenario.stop_traffic();
  bed.run_for(common::milliseconds(250));
  checker.check();

  ShardRun r;
  r.fingerprint = scenario.fingerprint();
  for (const auto& wl : scenario.workloads()) {
    r.attempted += wl->attempted();
    r.completed += wl->completed();
  }
  const core::Testbed::NetTotals t = bed.net_totals();
  r.exported = t.exported;
  r.imported = t.imported;
  if (bed.engine() != nullptr) {
    r.tokens_pending = bed.engine()->tokens_pending();
    r.late_tokens = bed.engine()->late_tokens();
    r.epochs = bed.engine()->epochs_run();
  }
  r.violations = checker.violations().size();
  r.report = checker.ok() ? "" : checker.report();
  return r;
}

TEST(ShardDeterminism, OneShardIsExactlyTheLegacyTestbed) {
  // shards=1 must not construct an engine at all, and must reproduce a
  // default-config (pre-shard) run bit-for-bit: same objects, same path.
  const ShardRun legacy = run_sharded(1, 1, 7);
  const ShardRun one = run_sharded(1, 4, 7);  // threads ignored w/o engine
  EXPECT_EQ(one.fingerprint, legacy.fingerprint)
      << "a 1-shard testbed diverged from the classic single-loop path";
  EXPECT_EQ(one.exported, 0u);
  EXPECT_EQ(one.imported, 0u);
  EXPECT_EQ(one.epochs, 0u);
  EXPECT_EQ(legacy.violations, 0u) << legacy.report;
  EXPECT_GT(legacy.completed, 100u);
}

TEST(ShardDeterminism, ShardedRunsReproduceBitForBit) {
  const ShardRun a = run_sharded(4, 1, 7);
  const ShardRun b = run_sharded(4, 1, 7);
  EXPECT_EQ(a.fingerprint, b.fingerprint)
      << "same (config, seed, shard_count) runs diverged";
  EXPECT_EQ(a.attempted, b.attempted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.exported, b.exported);
  EXPECT_EQ(a.violations, 0u) << a.report;
  EXPECT_GT(a.completed, 100u);
  // The offloaded BE↔FE legs must actually cross shard boundaries, or this
  // suite is vacuous.
  EXPECT_GT(a.exported, 0u) << "no cross-shard traffic was exercised";
}

TEST(ShardDeterminism, ThreadCountDoesNotChangeTheOutcome) {
  const ShardRun t1 = run_sharded(4, 1, 7);
  const ShardRun t2 = run_sharded(4, 2, 7);
  EXPECT_EQ(t2.fingerprint, t1.fingerprint)
      << "worker-thread count leaked into the simulation outcome";
  EXPECT_EQ(t2.attempted, t1.attempted);
  EXPECT_EQ(t2.completed, t1.completed);
  EXPECT_EQ(t2.exported, t1.exported);
  EXPECT_EQ(t2.imported, t1.imported);
  EXPECT_EQ(t2.violations, 0u) << t2.report;
}

TEST(ShardDeterminism, CrossShardConservationHolds) {
  const ShardRun r = run_sharded(4, 2, 11);
  EXPECT_EQ(r.violations, 0u) << r.report;  // incl. per-shard identities
  EXPECT_GT(r.exported, 0u);
  EXPECT_EQ(r.exported, r.imported + r.tokens_pending)
      << "a token was lost or duplicated across a shard boundary";
  EXPECT_EQ(r.late_tokens, 0u)
      << "conservative lookahead violated: the epoch exceeds the minimum "
         "cross-shard latency";
  EXPECT_GT(r.epochs, 0u);
}

TEST(ShardDeterminism, DifferentSeedsDiverge) {
  const ShardRun a = run_sharded(4, 2, 7);
  const ShardRun b = run_sharded(4, 2, 8);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

}  // namespace
}  // namespace nezha
