// Sharded-engine determinism and conservation guarantees (DESIGN.md §13).
//
// The parallel engine's contract: a sharded run's outcome is a pure
// function of (config, seed, shard_count) — independent of the number of
// worker threads and of wall-clock interleaving — and the packet
// conservation identity extends across shard boundaries (every exported
// token is imported exactly once or still pending in a ring). These tests
// pin that contract on a fleet-scale Clos scenario whose offloaded BE↔FE
// traffic genuinely crosses shards:
//  * shards=1 is exactly the legacy single-loop testbed (same fingerprint
//    as a default-config run — the golden-fingerprint gates in CI cover
//    the pinned burst/exact constants on this same path);
//  * N-shard runs reproduce bit-for-bit across repeated runs;
//  * N-shard runs are identical at 1 and 2 worker threads;
//  * the invariant harness (including the cross-shard identity) stays
//    green throughout a threaded run.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/core/invariants.h"
#include "src/core/testbed.h"
#include "src/workload/fleet_model.h"

namespace nezha {
namespace {

constexpr std::size_t kVSwitches = 64;
constexpr std::size_t kPairs = 8;

struct ShardRun {
  std::uint64_t fingerprint = 0;
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::uint64_t exported = 0;
  std::uint64_t imported = 0;
  std::uint64_t tokens_pending = 0;
  std::uint64_t late_tokens = 0;
  std::uint64_t epochs = 0;
  std::size_t violations = 0;
  std::string report;
};

/// Clos fleet scenario with every server vNIC offloaded, driven in slices
/// with quiescent invariant checks between them. `shards == 1` builds the
/// classic engine-less testbed; `threads` only applies to the traffic
/// phase (control-plane workflows run at 1 thread, per the Testbed rules).
ShardRun run_sharded(std::size_t shards, int threads, std::uint64_t seed) {
  // 4-host racks: the min-4-FE pools cannot fit beside their BE in one
  // rack, so offload traffic is forced across leaves — and across shards.
  core::TestbedConfig cfg = core::make_clos_testbed_config(
      kVSwitches, /*hosts_per_leaf=*/4, /*num_spines=*/4,
      /*oversubscription=*/2.0);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.shards = shards;
  cfg.threads = 1;
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = kPairs;
  sc.base_attempts_per_sec = 400.0;
  sc.seed = seed;
  workload::FleetScenario scenario(bed, sc);
  core::InvariantChecker checker(bed,
                                 core::InvariantCheckerConfig{.seed = seed});

  scenario.deploy();
  scenario.offload_all();
  bed.run_for(common::seconds(1));  // offload workflows, single-threaded
  checker.check();

  bed.set_threads(threads);
  scenario.start_traffic();
  for (int slice = 0; slice < 6; ++slice) {
    bed.run_for(common::milliseconds(250));
    checker.check();  // all shards quiescent between run_for() calls
  }
  scenario.stop_traffic();
  bed.run_for(common::milliseconds(250));
  checker.check();

  ShardRun r;
  r.fingerprint = scenario.fingerprint();
  for (const auto& wl : scenario.workloads()) {
    r.attempted += wl->attempted();
    r.completed += wl->completed();
  }
  const core::Testbed::NetTotals t = bed.net_totals();
  r.exported = t.exported;
  r.imported = t.imported;
  if (bed.engine() != nullptr) {
    r.tokens_pending = bed.engine()->tokens_pending();
    r.late_tokens = bed.engine()->late_tokens();
    r.epochs = bed.engine()->epochs_run();
  }
  r.violations = checker.violations().size();
  r.report = checker.ok() ? "" : checker.report();
  return r;
}

TEST(ShardDeterminism, OneShardIsExactlyTheLegacyTestbed) {
  // shards=1 must not construct an engine at all, and must reproduce a
  // default-config (pre-shard) run bit-for-bit: same objects, same path.
  const ShardRun legacy = run_sharded(1, 1, 7);
  const ShardRun one = run_sharded(1, 4, 7);  // threads ignored w/o engine
  EXPECT_EQ(one.fingerprint, legacy.fingerprint)
      << "a 1-shard testbed diverged from the classic single-loop path";
  EXPECT_EQ(one.exported, 0u);
  EXPECT_EQ(one.imported, 0u);
  EXPECT_EQ(one.epochs, 0u);
  EXPECT_EQ(legacy.violations, 0u) << legacy.report;
  EXPECT_GT(legacy.completed, 100u);
}

TEST(ShardDeterminism, ShardedRunsReproduceBitForBit) {
  const ShardRun a = run_sharded(4, 1, 7);
  const ShardRun b = run_sharded(4, 1, 7);
  EXPECT_EQ(a.fingerprint, b.fingerprint)
      << "same (config, seed, shard_count) runs diverged";
  EXPECT_EQ(a.attempted, b.attempted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.exported, b.exported);
  EXPECT_EQ(a.violations, 0u) << a.report;
  EXPECT_GT(a.completed, 100u);
  // The offloaded BE↔FE legs must actually cross shard boundaries, or this
  // suite is vacuous.
  EXPECT_GT(a.exported, 0u) << "no cross-shard traffic was exercised";
}

TEST(ShardDeterminism, ThreadCountDoesNotChangeTheOutcome) {
  const ShardRun t1 = run_sharded(4, 1, 7);
  const ShardRun t2 = run_sharded(4, 2, 7);
  EXPECT_EQ(t2.fingerprint, t1.fingerprint)
      << "worker-thread count leaked into the simulation outcome";
  EXPECT_EQ(t2.attempted, t1.attempted);
  EXPECT_EQ(t2.completed, t1.completed);
  EXPECT_EQ(t2.exported, t1.exported);
  EXPECT_EQ(t2.imported, t1.imported);
  EXPECT_EQ(t2.violations, 0u) << t2.report;
}

TEST(ShardDeterminism, CrossShardConservationHolds) {
  const ShardRun r = run_sharded(4, 2, 11);
  EXPECT_EQ(r.violations, 0u) << r.report;  // incl. per-shard identities
  EXPECT_GT(r.exported, 0u);
  EXPECT_EQ(r.exported, r.imported + r.tokens_pending)
      << "a token was lost or duplicated across a shard boundary";
  EXPECT_EQ(r.late_tokens, 0u)
      << "conservative lookahead violated: the epoch exceeds the minimum "
         "cross-shard latency";
  EXPECT_GT(r.epochs, 0u);
}

TEST(ShardDeterminism, DifferentSeedsDiverge) {
  const ShardRun a = run_sharded(4, 2, 7);
  const ShardRun b = run_sharded(4, 2, 8);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

// ---------------------------------------------------------------------------
// Threaded control plane (DESIGN.md §15): full churn — a mid-window offload
// push, an FE crash detected by the health monitor, and a fleet-wide hash
// reseed — runs end-to-end at any thread count through the fence protocol,
// bit-identical to threads=1.

struct ChurnRun {
  std::uint64_t fingerprint = 0;
  std::uint64_t completed = 0;
  std::uint64_t exported = 0;
  std::uint64_t late_tokens = 0;
  std::uint64_t failovers = 0;
  std::uint64_t epochs_skipped = 0;
  std::uint64_t fences_run = 0;
  sim::NodeId crashed_fe = 0;
  std::size_t violations = 0;
  std::string report;
};

ChurnRun run_churn(std::size_t shards, int threads, std::uint64_t seed,
                   bool fast_forward = true) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(
      kVSwitches, /*hosts_per_leaf=*/4, /*num_spines=*/4,
      /*oversubscription=*/2.0);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  // Fast monitor so the crash is declared well inside the window.
  cfg.monitor.probe_interval = common::milliseconds(100);
  cfg.monitor.probe_timeout = common::milliseconds(50);
  cfg.monitor.miss_threshold = 2;
  cfg.shards = shards;
  cfg.threads = threads;  // threaded from construction: no 1-thread phases
  cfg.shard_fast_forward = fast_forward;
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = kPairs;
  sc.base_attempts_per_sec = 400.0;
  sc.seed = seed;
  workload::FleetScenario scenario(bed, sc);
  core::InvariantChecker checker(bed,
                                 core::InvariantCheckerConfig{.seed = seed});

  scenario.deploy();
  // Hold a quarter of the servers back so the churn's offload push has
  // real work; the initial workflows run under worker threads too.
  scenario.offload_all(/*holdback=*/kPairs / 4);
  bed.run_for(common::seconds(1));
  checker.check();

  scenario.start_traffic();
  scenario.schedule_churn(common::milliseconds(100),
                          common::milliseconds(250),
                          common::milliseconds(600));
  for (int slice = 0; slice < 6; ++slice) {
    bed.run_for(common::milliseconds(250));
    checker.check();
  }
  scenario.stop_traffic();
  bed.run_for(common::milliseconds(500));
  checker.check();

  ChurnRun r;
  r.fingerprint = scenario.fingerprint();
  for (const auto& wl : scenario.workloads()) r.completed += wl->completed();
  r.exported = bed.net_totals().exported;
  if (bed.engine() != nullptr) {
    r.late_tokens = bed.engine()->late_tokens();
    r.epochs_skipped = bed.engine()->epochs_skipped();
    r.fences_run = bed.engine()->fenced_sections_run();
  }
  r.failovers = bed.controller().failover_events();
  r.crashed_fe = scenario.crashed_fe();
  r.violations = checker.violations().size();
  r.report = checker.ok() ? "" : checker.report();
  return r;
}

TEST(ShardDeterminism, ThreadedChurnMatchesSingleThread) {
  const ChurnRun t1 = run_churn(4, 1, 7);
  const ChurnRun t2 = run_churn(4, 2, 7);
  EXPECT_EQ(t2.fingerprint, t1.fingerprint)
      << "thread count leaked into a churn (control-plane) outcome";
  EXPECT_EQ(t2.completed, t1.completed);
  EXPECT_EQ(t2.failovers, t1.failovers);
  EXPECT_EQ(t2.epochs_skipped, t1.epochs_skipped)
      << "fast-forward decisions depend on barrier-published state only, "
         "so even the skipped-epoch count must be thread-invariant";
  EXPECT_EQ(t1.violations, 0u) << t1.report;
  EXPECT_EQ(t2.violations, 0u) << t2.report;
  // The run must actually exercise the machinery it claims to test.
  EXPECT_GT(t1.failovers, 0u) << "the churn's FE crash never failed over";
  EXPECT_NE(t1.crashed_fe, 0u);
  EXPECT_GT(t1.fences_run, 0u) << "no fenced sections executed";
  EXPECT_GT(t1.completed, 100u);
  EXPECT_GT(t1.exported, 0u);
  EXPECT_EQ(t1.late_tokens, 0u);
}

TEST(ShardDeterminism, FastForwardDoesNotChangeOutcome) {
  const ChurnRun on = run_churn(4, 2, 9, /*fast_forward=*/true);
  const ChurnRun off = run_churn(4, 2, 9, /*fast_forward=*/false);
  EXPECT_EQ(on.fingerprint, off.fingerprint)
      << "sparse-epoch fast-forward changed an outcome (must be a pure "
         "wall-clock optimization)";
  EXPECT_EQ(on.completed, off.completed);
  EXPECT_EQ(on.failovers, off.failovers);
  EXPECT_GT(on.epochs_skipped, 0u) << "fast-forward never engaged";
  EXPECT_EQ(off.epochs_skipped, 0u);
  EXPECT_EQ(on.violations, 0u) << on.report;
  EXPECT_EQ(off.violations, 0u) << off.report;
}

TEST(ShardDeterminism, FencesExecuteInDueThenSeqOrderAndStuckOnesKeep) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(
      8, /*hosts_per_leaf=*/4, /*num_spines=*/2, /*oversubscription=*/2.0);
  cfg.shards = 2;
  cfg.threads = 2;
  core::Testbed bed(cfg);
  ASSERT_NE(bed.engine(), nullptr);

  const common::TimePoint t0 = bed.loop().now();
  std::vector<int> order;
  // Registered out of due order; 0 means "next barrier" (earliest).
  bed.engine()->schedule_fenced(t0 + common::milliseconds(2),
                                [&order]() { order.push_back(0); });
  bed.engine()->schedule_fenced(t0 + common::milliseconds(1),
                                [&order]() { order.push_back(1); });
  bed.engine()->schedule_fenced(t0 + common::milliseconds(1),
                                [&order]() { order.push_back(2); });
  bed.engine()->schedule_fenced(0, [&order]() { order.push_back(3); });
  // Due beyond this window: must NOT run now, must survive to the next.
  bed.engine()->schedule_fenced(t0 + common::milliseconds(10),
                                [&order]() { order.push_back(4); });

  bed.run_for(common::milliseconds(5));
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2, 0}))
      << "fences must run in (due, registration) order";
  EXPECT_EQ(bed.engine()->fences_queued(), 1u)
      << "the not-yet-due fence should remain queued (the 'stuck fence' "
         "signature nezha_trace audit reports)";
  bed.run_for(common::milliseconds(10));
  EXPECT_EQ(order.size(), 5u);
  EXPECT_EQ(order.back(), 4);
  EXPECT_EQ(bed.engine()->fences_queued(), 0u);
  EXPECT_EQ(bed.engine()->fenced_sections_run(), 5u);
}

}  // namespace
}  // namespace nezha
