// Integration tests of the vSwitch dataplane in traditional (local) mode:
// end-to-end delivery across two vSwitches, fast/slow path behaviour,
// stateful ACL semantics, resource-exhaustion bottlenecks, and the CPU
// queue/utilization model.
#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/nf/stateful.h"
#include "src/tables/acl.h"
#include "src/vswitch/resources.h"
#include "src/vswitch/vswitch.h"

namespace nezha {
namespace {

using common::microseconds;
using common::milliseconds;
using common::seconds;
using tables::OverlayAddr;
using tables::VnicId;
using vswitch::VnicConfig;

constexpr std::uint32_t kVpc = 77;

VnicConfig make_vnic(VnicId id, net::Ipv4Addr overlay_ip,
                     std::size_t rule_bytes = 1 << 20) {
  VnicConfig cfg;
  cfg.id = id;
  cfg.addr = OverlayAddr{kVpc, overlay_ip};
  cfg.profile.synthetic_rule_bytes = rule_bytes;
  return cfg;
}

struct Delivery {
  VnicId vnic;
  net::Packet pkt;
};

class LocalPathTest : public ::testing::Test {
 protected:
  LocalPathTest() : bed_(make_config()) {
    client_ip_ = net::Ipv4Addr(10, 0, 0, 1);
    server_ip_ = net::Ipv4Addr(10, 0, 0, 2);
    bed_.add_vnic(0, make_vnic(1, client_ip_));
    bed_.add_vnic(1, make_vnic(2, server_ip_));
    bed_.vswitch(0).set_vm_delivery(
        [this](VnicId v, const net::Packet& p) {
          client_rx_.push_back({v, p});
        });
    bed_.vswitch(1).set_vm_delivery(
        [this](VnicId v, const net::Packet& p) {
          server_rx_.push_back({v, p});
        });
  }

  static core::TestbedConfig make_config() {
    core::TestbedConfig cfg;
    cfg.num_vswitches = 4;
    return cfg;
  }

  net::FiveTuple client_to_server(std::uint16_t sport = 40000,
                                  std::uint16_t dport = 80) const {
    return net::FiveTuple{client_ip_, server_ip_, sport, dport,
                          net::IpProto::kTcp};
  }

  void send_from_client(const net::FiveTuple& ft, net::TcpFlags flags) {
    bed_.vswitch(0).from_vm(1, net::make_tcp_packet(ft, flags, 100, kVpc));
  }
  void send_from_server(const net::FiveTuple& ft, net::TcpFlags flags) {
    bed_.vswitch(1).from_vm(2, net::make_tcp_packet(ft, flags, 100, kVpc));
  }

  core::Testbed bed_;
  net::Ipv4Addr client_ip_, server_ip_;
  std::vector<Delivery> client_rx_, server_rx_;
};

TEST_F(LocalPathTest, EndToEndDelivery) {
  send_from_client(client_to_server(), net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(10));
  ASSERT_EQ(server_rx_.size(), 1u);
  EXPECT_EQ(server_rx_[0].vnic, 2u);
  EXPECT_EQ(server_rx_[0].pkt.inner.ft.dst_ip, server_ip_);
  // The client side ran a slow-path lookup for the first packet; so did the
  // server side on RX.
  EXPECT_EQ(bed_.vswitch(0).slow_path_lookups(), 1u);
  EXPECT_EQ(bed_.vswitch(1).slow_path_lookups(), 1u);
}

TEST_F(LocalPathTest, SecondPacketUsesFastPath) {
  send_from_client(client_to_server(), net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(10));
  send_from_client(client_to_server(), net::TcpFlags{.ack = true});
  bed_.run_for(milliseconds(10));
  EXPECT_EQ(bed_.vswitch(0).slow_path_lookups(), 1u);
  EXPECT_GE(bed_.vswitch(0).fast_path_hits(), 1u);
  EXPECT_EQ(server_rx_.size(), 2u);
}

TEST_F(LocalPathTest, BidirectionalFlowSharesSession) {
  auto ft = client_to_server();
  send_from_client(ft, net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(10));
  send_from_server(ft.reversed(), net::TcpFlags{.syn = true, .ack = true});
  bed_.run_for(milliseconds(10));
  ASSERT_EQ(client_rx_.size(), 1u);
  // Server holds ONE session entry for the bidirectional flow.
  EXPECT_EQ(bed_.vswitch(1).sessions().size(), 1u);
  const auto key = flow::SessionKey::from_packet(kVpc, ft);
  const auto* entry = bed_.vswitch(1).sessions().find(key);
  ASSERT_NE(entry, nullptr);
  // From the server's viewpoint the first packet was RX.
  EXPECT_EQ(entry->state.first_dir, flow::FirstDirection::kRx);
}

TEST_F(LocalPathTest, StatefulAclDropsUnsolicitedRx) {
  // Deny all inbound on the server vNIC (classic stateful-ACL setup).
  auto* rules = bed_.vswitch(1).vnic(2)->rules();
  rules->acl().add_rule(tables::AclRule{
      .priority = 1,
      .direction = flow::Direction::kRx,
      .verdict = flow::Verdict::kDrop});
  rules->commit_update();

  send_from_client(client_to_server(), net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(10));
  EXPECT_EQ(server_rx_.size(), 0u);
  EXPECT_EQ(bed_.vswitch(1).counters().get("drop.acl"), 1u);
}

TEST_F(LocalPathTest, StatefulAclAllowsResponsesToLocalInitiation) {
  auto* rules = bed_.vswitch(1).vnic(2)->rules();
  rules->acl().add_rule(tables::AclRule{
      .priority = 1,
      .direction = flow::Direction::kRx,
      .verdict = flow::Verdict::kDrop});
  rules->commit_update();

  // Server initiates (TX) toward the client; the client's response must be
  // accepted despite the deny-all-inbound ACL (§5.1).
  auto server_ft = client_to_server().reversed();  // server → client
  send_from_server(server_ft, net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(10));
  ASSERT_EQ(client_rx_.size(), 1u);
  send_from_client(server_ft.reversed(),
                   net::TcpFlags{.syn = true, .ack = true});
  bed_.run_for(milliseconds(10));
  EXPECT_EQ(server_rx_.size(), 1u);
  EXPECT_EQ(bed_.vswitch(1).counters().get("drop.acl"), 0u);
}

TEST_F(LocalPathTest, RuleUpdateInvalidatesCachedFlows) {
  send_from_client(client_to_server(), net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(10));
  EXPECT_EQ(bed_.vswitch(1).slow_path_lookups(), 1u);

  // Tenant updates the server ACL: the cached flow must be regenerated.
  auto* rules = bed_.vswitch(1).vnic(2)->rules();
  rules->acl().add_rule(tables::AclRule{
      .priority = 1,
      .direction = flow::Direction::kRx,
      .verdict = flow::Verdict::kDrop});
  rules->commit_update();
  bed_.vswitch(1).invalidate_cached_flows(2);

  send_from_client(client_to_server(), net::TcpFlags{.ack = true});
  bed_.run_for(milliseconds(10));
  EXPECT_EQ(bed_.vswitch(1).slow_path_lookups(), 2u);
  // The new verdict applies... but the session was client-initiated (RX
  // first at the server), so the deny-inbound rule now drops it.
  EXPECT_EQ(bed_.vswitch(1).counters().get("drop.acl"), 1u);
}

TEST_F(LocalPathTest, VnicMemoryBottleneck) {
  // #vNICs is limited by slow-path rule memory (§2.2.2).
  core::TestbedConfig cfg;
  cfg.num_vswitches = 1;
  cfg.vswitch.rule_memory_bytes = 10 * (1 << 20);
  core::Testbed small(cfg);
  std::size_t added = 0;
  for (VnicId id = 1; id <= 20; ++id) {
    auto st = small.vswitch(0).add_vnic(
        make_vnic(id, net::Ipv4Addr(10, 1, 0, static_cast<uint8_t>(id)),
                  3 * (1 << 20)));
    if (!st.ok()) break;
    ++added;
  }
  EXPECT_EQ(added, 3u);  // 3 * (3MB + small tables) fits in 10MB, 4th fails
  EXPECT_GT(small.vswitch(0).rule_memory().failures(), 0u);
}

TEST_F(LocalPathTest, SessionMemoryBottleneck) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 2;
  cfg.vswitch.session_memory_bytes = 10 * 128;  // ten full entries
  core::Testbed small(cfg);
  small.add_vnic(0, make_vnic(1, net::Ipv4Addr(10, 0, 0, 1)));
  for (int i = 0; i < 20; ++i) {
    net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 9, 9),
                      static_cast<std::uint16_t>(1000 + i), 80,
                      net::IpProto::kTcp};
    small.vswitch(0).from_vm(1, net::make_tcp_packet(
                                    ft, net::TcpFlags{.syn = true}, 0, kVpc));
  }
  small.run_for(milliseconds(10));
  EXPECT_GT(small.vswitch(0).counters().get("drop.session_full"), 0u);
  EXPECT_LE(small.vswitch(0).sessions().memory_bytes(), 10u * 128u);
}

TEST_F(LocalPathTest, CpuOverloadDropsPackets) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 2;
  cfg.vswitch.cpu.cores = 1;
  cfg.vswitch.cpu.hz_per_core = 1e6;  // absurdly slow: 1M cycles/s
  cfg.vswitch.cpu.max_queue_delay = milliseconds(1);
  core::Testbed slow(cfg);
  slow.add_vnic(0, make_vnic(1, net::Ipv4Addr(10, 0, 0, 1)));
  slow.add_vnic(1, make_vnic(2, net::Ipv4Addr(10, 0, 0, 2)));
  for (int i = 0; i < 100; ++i) {
    net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                      static_cast<std::uint16_t>(1000 + i), 80,
                      net::IpProto::kTcp};
    slow.vswitch(0).from_vm(
        1, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0, kVpc));
  }
  slow.run_for(seconds(1));
  EXPECT_GT(slow.vswitch(0).counters().get("drop.cpu_overload"), 0u);
  EXPECT_GT(slow.vswitch(0).cpu().rejected(), 0u);
}

TEST_F(LocalPathTest, AgingReclaimsSessionMemory) {
  bed_.vswitch(0).start_aging();
  send_from_client(client_to_server(), net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(10));
  EXPECT_EQ(bed_.vswitch(0).sessions().size(), 1u);
  const std::size_t used = bed_.vswitch(0).session_memory().used();
  EXPECT_GT(used, 0u);
  // Embryonic sessions age out after ~1s (§7.3 short SYN aging).
  bed_.run_for(seconds(3));
  EXPECT_EQ(bed_.vswitch(0).sessions().size(), 0u);
  EXPECT_EQ(bed_.vswitch(0).session_memory().used(), 0u);
}

TEST_F(LocalPathTest, UnknownDestinationCountsNoRoute) {
  net::FiveTuple ft{client_ip_, net::Ipv4Addr(10, 9, 9, 9), 1000, 80,
                    net::IpProto::kTcp};
  bed_.vswitch(0).from_vm(
      1, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0, kVpc));
  bed_.run_for(milliseconds(10));
  EXPECT_EQ(bed_.vswitch(0).counters().get("drop.no_route"), 1u);
}

TEST(CpuModelTest, UtilizationSamplerExact) {
  vswitch::CpuModel cpu(vswitch::CpuConfig{.cores = 1, .hz_per_core = 1e9});
  vswitch::UtilizationSampler sampler;
  // 500M cycles at t=0 → busy exactly [0, 500ms).
  auto out = cpu.consume(5e8, 0);
  ASSERT_TRUE(out.accepted);
  EXPECT_EQ(out.done, milliseconds(500));
  EXPECT_NEAR(sampler.sample(cpu, common::seconds(1)), 0.5, 1e-9);
  // Second window fully idle.
  EXPECT_NEAR(sampler.sample(cpu, common::seconds(2)), 0.0, 1e-9);
}

TEST(CpuModelTest, QueueDelayGrowsUnderBacklog) {
  vswitch::CpuModel cpu(vswitch::CpuConfig{
      .cores = 1, .hz_per_core = 1e9, .max_queue_delay = milliseconds(10)});
  auto first = cpu.consume(1e6, 0);  // 1ms of work
  EXPECT_EQ(first.queue_delay, 0);
  auto second = cpu.consume(1e6, 0);
  EXPECT_EQ(second.queue_delay, milliseconds(1));
  // Saturate: the queue delay cap eventually rejects.
  bool rejected = false;
  for (int i = 0; i < 100; ++i) {
    if (!cpu.consume(1e6, 0).accepted) {
      rejected = true;
      break;
    }
  }
  EXPECT_TRUE(rejected);
}

TEST(MemoryPoolTest, ReserveRelease) {
  vswitch::MemoryPool pool(100);
  EXPECT_TRUE(pool.reserve(60));
  EXPECT_FALSE(pool.reserve(50));
  EXPECT_EQ(pool.failures(), 1u);
  EXPECT_DOUBLE_EQ(pool.utilization(), 0.6);
  pool.release(60);
  EXPECT_EQ(pool.used(), 0u);
  pool.release(10);  // over-release clamps
  EXPECT_EQ(pool.used(), 0u);
}

}  // namespace
}  // namespace nezha
