// Unit tests for the flow layer: pre-action serialization, TCP FSM,
// session state semantics (first-direction, stateful decap, statistics,
// Fig-15 used-bytes census), and the session table in its three shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "src/flow/pre_actions.h"
#include "src/flow/session.h"
#include "src/flow/session_table.h"
#include "src/flow/tcp_fsm.h"

namespace nezha::flow {
namespace {

using common::milliseconds;
using common::seconds;
using net::FiveTuple;
using net::Ipv4Addr;
using net::IpProto;
using net::TcpFlags;

FiveTuple tx_tuple() {
  return FiveTuple{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 40000, 80,
                   IpProto::kTcp};
}

TEST(PreActionsTest, SerializeParseRoundTrip) {
  PreActions p;
  p.rule_version = 17;
  p.tx.acl_verdict = Verdict::kAccept;
  p.tx.nat_enabled = true;
  p.tx.nat_ip = Ipv4Addr(100, 64, 0, 5);
  p.tx.nat_port = 4096;
  p.tx.rate_limit_kbps = 1000;
  p.tx.stats_mode = StatsMode::kBytes;
  p.tx.next_hop = NextHop{Ipv4Addr(172, 16, 1, 2), net::MacAddr(0x42ULL)};
  p.rx.acl_verdict = Verdict::kDrop;
  p.rx.mirror = true;
  auto bytes = p.serialize();
  auto parsed = PreActions::parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), p);
}

TEST(PreActionsTest, ParseRejectsGarbage) {
  std::vector<std::uint8_t> junk(5, 0xff);
  EXPECT_FALSE(PreActions::parse(junk).ok());
}

TEST(PreActionsTest, FixedSizeEncodeMatchesHeapEncode) {
  PreActions p;
  p.rule_version = 99;
  p.tx.nat_enabled = true;
  p.tx.nat_ip = Ipv4Addr(100, 64, 9, 9);
  p.tx.mirror = true;
  p.tx.mirror_target = NextHop{Ipv4Addr(172, 16, 0, 9), net::MacAddr(0x9ULL)};
  p.rx.acl_verdict = Verdict::kDrop;
  p.rx.rate_limit_kbps = 1234;
  const auto heap = p.serialize();
  ASSERT_EQ(heap.size(), PreActions::kWireSize);
  std::array<std::uint8_t, PreActions::kWireSize> fixed{};
  p.serialize_into(fixed);
  EXPECT_TRUE(std::equal(heap.begin(), heap.end(), fixed.begin()));
  auto parsed = PreActions::parse(fixed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), p);
}

TEST(PreActionsTest, ParseRejectsTruncatedFixedEncoding) {
  PreActions p;
  p.rule_version = 7;
  auto bytes = p.serialize();
  bytes.resize(PreActions::kWireSize - 1);
  EXPECT_FALSE(PreActions::parse(bytes).ok());
}

TEST(SessionStateTest, SnapshotFixedEncodeMatchesHeapEncode) {
  SessionState s;
  s.first_dir = FirstDirection::kRx;
  s.stats_mode = StatsMode::kBytes;
  s.decap_src_ip = Ipv4Addr(192, 168, 3, 4);
  const auto heap = s.serialize_snapshot();
  ASSERT_EQ(heap.size(), SessionState::kSnapshotWireSize);
  std::array<std::uint8_t, SessionState::kSnapshotWireSize> fixed{};
  s.serialize_snapshot_into(fixed);
  EXPECT_TRUE(std::equal(heap.begin(), heap.end(), fixed.begin()));
  auto parsed = SessionState::parse_snapshot(fixed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().first_dir, s.first_dir);
  EXPECT_EQ(parsed.value().stats_mode, s.stats_mode);
  EXPECT_EQ(parsed.value().decap_src_ip, s.decap_src_ip);
}

TEST(PreActionsTest, DirAccessor) {
  PreActions p;
  p.tx.rate_limit_kbps = 1;
  p.rx.rate_limit_kbps = 2;
  EXPECT_EQ(p.dir(Direction::kTx).rate_limit_kbps, 1u);
  EXPECT_EQ(p.dir(Direction::kRx).rate_limit_kbps, 2u);
}

TEST(TcpFsmTest, ThreeWayHandshake) {
  TcpFsm fsm;
  EXPECT_EQ(fsm.state(), TcpFsmState::kNone);
  EXPECT_TRUE(fsm.embryonic());
  fsm.on_packet(Direction::kTx, TcpFlags{.syn = true});
  EXPECT_EQ(fsm.state(), TcpFsmState::kSynSent);
  EXPECT_TRUE(fsm.embryonic());
  fsm.on_packet(Direction::kRx, TcpFlags{.syn = true, .ack = true});
  EXPECT_EQ(fsm.state(), TcpFsmState::kSynReceived);
  fsm.on_packet(Direction::kTx, TcpFlags{.ack = true});
  EXPECT_TRUE(fsm.established());
  EXPECT_FALSE(fsm.embryonic());
}

TEST(TcpFsmTest, GracefulClose) {
  TcpFsm fsm;
  fsm.on_packet(Direction::kTx, TcpFlags{.syn = true});
  fsm.on_packet(Direction::kRx, TcpFlags{.syn = true, .ack = true});
  fsm.on_packet(Direction::kTx, TcpFlags{.ack = true});
  fsm.on_packet(Direction::kTx, TcpFlags{.ack = true, .fin = true});
  EXPECT_EQ(fsm.state(), TcpFsmState::kFinWait);
  fsm.on_packet(Direction::kRx, TcpFlags{.ack = true, .fin = true});
  EXPECT_EQ(fsm.state(), TcpFsmState::kClosing);
  fsm.on_packet(Direction::kTx, TcpFlags{.ack = true});
  EXPECT_EQ(fsm.state(), TcpFsmState::kClosed);
  EXPECT_TRUE(fsm.closed());
}

TEST(TcpFsmTest, ResetFromAnyState) {
  TcpFsm fsm;
  fsm.on_packet(Direction::kTx, TcpFlags{.syn = true});
  fsm.on_packet(Direction::kRx, TcpFlags{.rst = true});
  EXPECT_EQ(fsm.state(), TcpFsmState::kReset);
  EXPECT_TRUE(fsm.closed());
}

TEST(TcpFsmTest, MidFlowPickupPromotesToEstablished) {
  // After FE failover, a new FE may see mid-flow ACK packets first.
  TcpFsm fsm;
  fsm.on_packet(Direction::kRx, TcpFlags{.ack = true, .psh = true});
  EXPECT_TRUE(fsm.established());
}

TEST(TcpFsmTest, DuplicateSynIsIdempotent) {
  TcpFsm fsm;
  fsm.on_packet(Direction::kTx, TcpFlags{.syn = true});
  fsm.on_packet(Direction::kTx, TcpFlags{.syn = true});  // retransmit
  EXPECT_EQ(fsm.state(), TcpFsmState::kSynSent);
}

TEST(SessionStateTest, FirstDirectionStickiness) {
  SessionState s;
  EXPECT_FALSE(s.initialized());
  s.observe(Direction::kRx, TcpFlags{.syn = true}, true, 64, 0);
  EXPECT_EQ(s.first_dir, FirstDirection::kRx);
  s.observe(Direction::kTx, TcpFlags{.syn = true, .ack = true}, true, 64, 1);
  EXPECT_EQ(s.first_dir, FirstDirection::kRx);  // first direction is sticky
  EXPECT_TRUE(s.initialized());
}

TEST(SessionStateTest, StatsOnlyWhenPolicyActive) {
  SessionState s;
  s.observe(Direction::kTx, TcpFlags{}, true, 100, 0);
  EXPECT_EQ(s.pkts_tx, 0u);
  s.stats_mode = StatsMode::kPacketsAndBytes;
  s.observe(Direction::kTx, TcpFlags{}, true, 100, 1);
  s.observe(Direction::kRx, TcpFlags{}, true, 200, 2);
  EXPECT_EQ(s.pkts_tx, 1u);
  EXPECT_EQ(s.pkts_rx, 1u);
  EXPECT_EQ(s.bytes_tx, 100u);
  EXPECT_EQ(s.bytes_rx, 200u);
}

TEST(SessionStateTest, UsedBytesCensus) {
  // Fig 15: most states are far smaller than the fixed 64B allocation.
  SessionState s;
  EXPECT_EQ(s.used_bytes(), 0u);
  s.observe(Direction::kTx, TcpFlags{.syn = true}, true, 64, 0);
  EXPECT_EQ(s.used_bytes(), 2u);  // first_dir + fsm
  s.decap_src_ip = Ipv4Addr(10, 9, 9, 9);
  EXPECT_EQ(s.used_bytes(), 6u);
  s.stats_mode = StatsMode::kPacketsAndBytes;
  EXPECT_EQ(s.used_bytes(), 23u);
  EXPECT_LT(s.used_bytes(), kStateAllocBytes);
}

TEST(SessionStateTest, SnapshotRoundTrip) {
  SessionState s;
  s.observe(Direction::kTx, TcpFlags{.syn = true}, true, 64, 0);
  s.decap_src_ip = Ipv4Addr(10, 1, 1, 1);
  s.stats_mode = StatsMode::kPackets;
  auto snap = SessionState::parse_snapshot(s.serialize_snapshot());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().first_dir, FirstDirection::kTx);
  EXPECT_EQ(snap.value().decap_src_ip, s.decap_src_ip);
  EXPECT_EQ(snap.value().stats_mode, StatsMode::kPackets);
}

TEST(SessionKeyTest, BothDirectionsShareKey) {
  auto k1 = SessionKey::from_packet(5, tx_tuple());
  auto k2 = SessionKey::from_packet(5, tx_tuple().reversed());
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(SessionKeyHash{}(k1), SessionKeyHash{}(k2));
  // Different tenants with the same 5-tuple must not collide (VPC in key).
  auto k3 = SessionKey::from_packet(6, tx_tuple());
  EXPECT_FALSE(k1 == k3);
}

TEST(SessionTableTest, EntryBytesReflectConfiguration) {
  SessionTable full{SessionTableConfig{}};
  SessionTable be_only{SessionTableConfig{.store_pre_actions = false}};
  SessionTable fe_cache{SessionTableConfig{.store_state = false}};
  EXPECT_EQ(full.entry_bytes(), kSessionKeyBytes + kPreActionsBytes + kStateAllocBytes);
  EXPECT_EQ(be_only.entry_bytes(), kSessionKeyBytes + kStateAllocBytes);
  EXPECT_EQ(fe_cache.entry_bytes(), kSessionKeyBytes + kPreActionsBytes);
  // The BE shape must be smaller: that margin is where Nezha's extra
  // #concurrent-flows capacity comes from.
  EXPECT_LT(be_only.entry_bytes(), full.entry_bytes());
}

TEST(SessionTableTest, FindOrCreateAndCapacity) {
  SessionTable t{SessionTableConfig{.capacity_bytes = 3 * 128}};
  ASSERT_EQ(t.entry_bytes(), 128u);
  for (int i = 0; i < 3; ++i) {
    FiveTuple ft = tx_tuple();
    ft.src_port = static_cast<std::uint16_t>(1000 + i);
    EXPECT_NE(t.find_or_create(SessionKey::from_packet(1, ft), 0), nullptr);
  }
  FiveTuple ft = tx_tuple();
  ft.src_port = 2000;
  EXPECT_EQ(t.find_or_create(SessionKey::from_packet(1, ft), 0), nullptr);
  EXPECT_EQ(t.insert_failures(), 1u);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.memory_bytes(), 3 * 128u);
}

TEST(SessionTableTest, ExistingEntryFoundEvenWhenFull) {
  SessionTable t{SessionTableConfig{.capacity_bytes = 128}};
  auto key = SessionKey::from_packet(1, tx_tuple());
  EXPECT_NE(t.find_or_create(key, 0), nullptr);
  EXPECT_NE(t.find_or_create(key, 1), nullptr);  // lookup, not insert
  EXPECT_EQ(t.insert_failures(), 0u);
}

TEST(SessionTableTest, AgingRespectsFsmDependentTtl) {
  SessionTable t{SessionTableConfig{
      .established_ttl = seconds(8), .embryonic_ttl = seconds(1)}};
  auto syn_key = SessionKey::from_packet(1, tx_tuple());
  auto* syn_entry = t.find_or_create(syn_key, 0);
  syn_entry->state.observe(Direction::kTx, TcpFlags{.syn = true}, true, 64, 0);

  FiveTuple est_ft = tx_tuple();
  est_ft.src_port = 50000;
  auto est_key = SessionKey::from_packet(1, est_ft);
  auto* est_entry = t.find_or_create(est_key, 0);
  est_entry->state.observe(Direction::kTx, TcpFlags{.syn = true}, true, 64, 0);
  est_entry->state.observe(Direction::kRx, TcpFlags{.syn = true, .ack = true},
                           true, 64, 0);
  est_entry->state.observe(Direction::kTx, TcpFlags{.ack = true}, true, 64, 0);

  // After 2s: the embryonic (SYN-flood-style) session ages out (§7.3), the
  // established one survives.
  EXPECT_EQ(t.age_out(seconds(2)), 1u);
  EXPECT_EQ(t.find(syn_key), nullptr);
  EXPECT_NE(t.find(est_key), nullptr);
  // After 10s idle, the established session goes too.
  EXPECT_EQ(t.age_out(seconds(10)), 1u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(SessionTableTest, ActivityRefreshesAging) {
  SessionTable t{SessionTableConfig{.established_ttl = seconds(8)}};
  auto key = SessionKey::from_packet(1, tx_tuple());
  auto* e = t.find_or_create(key, 0);
  e->state.observe(Direction::kRx, TcpFlags{.ack = true}, true, 64,
                   seconds(7));
  EXPECT_EQ(t.age_out(seconds(8)), 0u);  // refreshed at t=7
  EXPECT_EQ(t.age_out(seconds(16)), 1u);
}

TEST(SessionTableTest, InvalidatePreActionsKeepsState) {
  SessionTable t{SessionTableConfig{}};
  auto key = SessionKey::from_packet(1, tx_tuple());
  auto* e = t.find_or_create(key, 0);
  e->pre_actions = PreActions{};
  e->state.observe(Direction::kTx, TcpFlags{.syn = true}, true, 64, 0);
  t.invalidate_pre_actions();
  ASSERT_NE(t.find(key), nullptr);
  EXPECT_FALSE(t.find(key)->pre_actions.has_value());
  EXPECT_EQ(t.find(key)->state.first_dir, FirstDirection::kTx);
}

TEST(SessionTableTest, InvalidateOnPureFlowCacheErases) {
  SessionTable t{SessionTableConfig{.store_state = false}};
  auto key = SessionKey::from_packet(1, tx_tuple());
  t.find_or_create(key, 0);
  t.invalidate_pre_actions();
  EXPECT_EQ(t.size(), 0u);
}

TEST(SessionTableTest, ClosedSessionsAgeFastest) {
  SessionTable t{SessionTableConfig{.closed_ttl = milliseconds(100)}};
  auto key = SessionKey::from_packet(1, tx_tuple());
  auto* e = t.find_or_create(key, 0);
  e->state.observe(Direction::kTx, TcpFlags{.rst = true}, true, 64, 0);
  EXPECT_EQ(t.age_out(milliseconds(150)), 1u);
}

}  // namespace
}  // namespace nezha::flow
