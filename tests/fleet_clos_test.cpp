// Fleet-scale Clos acceptance test.
//
// Instantiates the full multi-ToR testbed — 128 vSwitches across a 2-tier
// leaf/spine fabric — populates it with cross-rack client/server pairs via
// FleetScenario, offloads every server vNIC concurrently, runs CPS traffic
// whose BE↔FE legs compete for spine bandwidth, and induces an FE crash
// mid-run. The InvariantChecker runs continuously throughout and must stay
// green; the run's counter fingerprint must be identical across two
// executions of the same seed (the simulation is a pure function of
// config + seed).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "src/core/invariants.h"
#include "src/core/testbed.h"
#include "src/telemetry/trace_query.h"
#include "src/workload/fleet_model.h"

namespace nezha {
namespace {

constexpr std::size_t kVSwitches = 128;
constexpr std::size_t kPairs = 10;  // >= 8 concurrent offloads

struct FleetRun {
  std::uint64_t fingerprint = 0;
  std::size_t offloads_accepted = 0;
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::uint64_t spine_traffic = 0;
  std::size_t violations = 0;
  std::uint64_t checks = 0;
  std::string report;
  // Telemetry runs only: the flight-recorder events, metric sample count
  // and the JSON snapshot (empty otherwise).
  std::vector<telemetry::TraceEvent> events;
  std::size_t samples_taken = 0;
  std::string metrics_json;
};

FleetRun run_fleet_scenario(std::uint64_t seed, bool with_telemetry = false) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(
      kVSwitches, /*hosts_per_leaf=*/8, /*num_spines=*/4,
      /*oversubscription=*/2.0);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  if (with_telemetry) {
    cfg.telemetry.enabled = true;
    // 4K events/node keeps the 131-ring recorder under ~30 MB at this
    // fleet size while retaining several seconds of per-node history.
    cfg.telemetry.events_per_node = 1 << 12;
    cfg.telemetry.sample_period = common::milliseconds(250);
  }
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = kPairs;
  sc.base_attempts_per_sec = 200.0;
  sc.seed = seed;
  workload::FleetScenario scenario(bed, sc);

  core::InvariantChecker checker(
      bed, core::InvariantCheckerConfig{.seed = seed});
  checker.attach(common::milliseconds(50));

  scenario.deploy();
  checker.record("deploy pairs=" + std::to_string(kPairs));

  FleetRun r;
  r.offloads_accepted = scenario.offload_all();
  checker.record("offload_all accepted=" +
                 std::to_string(r.offloads_accepted));
  bed.run_for(common::seconds(4));

  scenario.start_traffic();
  checker.record("start_traffic");
  bed.run_for(common::seconds(2));

  // Induce an FE crash under load; the monitor-equivalent notification goes
  // straight to the controller, as in the other chaos suites.
  const tables::VnicId victim_vnic = scenario.server_vnics().front();
  const auto fes = bed.controller().fe_nodes_of(victim_vnic);
  if (!fes.empty()) {
    const sim::NodeId victim = fes.front();
    checker.record("crash node=" + std::to_string(victim));
    bed.network().crash(victim);
    bed.controller().handle_fe_crash(victim);
  }
  bed.run_for(common::seconds(3));

  scenario.stop_traffic();
  checker.record("stop_traffic");
  bed.run_for(common::seconds(1));
  checker.check();

  for (const auto& wl : scenario.workloads()) {
    r.attempted += wl->attempted();
    r.completed += wl->completed();
  }
  for (std::uint64_t b : bed.network().spine_bytes()) r.spine_traffic += b;
  r.fingerprint = scenario.fingerprint();
  r.violations = checker.violations().size();
  r.checks = checker.checks_run();
  r.report = checker.ok() ? "" : checker.report();
  if (bed.telemetry() != nullptr) {
    r.events = bed.telemetry()->recorder().merged();
    r.samples_taken = bed.telemetry()->metrics().samples_taken();
    std::ostringstream js;
    bed.telemetry()->write_json(js);
    r.metrics_json = js.str();
  }
  return r;
}

TEST(FleetClos, FleetScaleRunWithFeCrashKeepsInvariants) {
  const FleetRun r = run_fleet_scenario(42);

  EXPECT_GE(r.offloads_accepted, 8u) << "not enough concurrent offloads";
  EXPECT_EQ(r.violations, 0u) << r.report;
  EXPECT_GT(r.checks, 100u);
  EXPECT_GT(r.attempted, 0u);
  EXPECT_GT(r.completed, 0u) << "no CPS handshakes completed over the fabric";
  EXPECT_GT(r.spine_traffic, 0u)
      << "cross-rack pairs produced no spine-tier traffic";
}

TEST(FleetClos, SameSeedRunsProduceIdenticalFingerprints) {
  const FleetRun a = run_fleet_scenario(7);
  const FleetRun b = run_fleet_scenario(7);
  EXPECT_EQ(a.fingerprint, b.fingerprint)
      << "same-seed fleet runs diverged: nondeterminism in the engine";
  EXPECT_EQ(a.attempted, b.attempted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.violations, 0u) << a.report;
  EXPECT_EQ(b.violations, 0u) << b.report;
}

// Tentpole acceptance: turning the full telemetry plane on (flight
// recorder + metric sampler) must not perturb the simulation — the
// workload fingerprint is bit-identical to the telemetry-off run — and the
// recorded trace must reconstruct at least one connection's complete
// BE→FE→peer forwarding detour at fleet scale.
TEST(FleetClos, TelemetryOnMatchesTelemetryOffFingerprint) {
  const FleetRun off = run_fleet_scenario(7, /*with_telemetry=*/false);
  const FleetRun on = run_fleet_scenario(7, /*with_telemetry=*/true);

  EXPECT_EQ(on.fingerprint, off.fingerprint)
      << "enabling telemetry changed the simulation outcome";
  EXPECT_EQ(on.attempted, off.attempted);
  EXPECT_EQ(on.completed, off.completed);
  EXPECT_EQ(on.violations, 0u) << on.report;

  EXPECT_FALSE(on.events.empty());
  EXPECT_GT(on.samples_taken, 0u);
  EXPECT_NE(on.metrics_json.find("nezha-telemetry-v1"), std::string::npos);
  // The registry carries the fleet-wide per-hop-class latency series.
  EXPECT_NE(on.metrics_json.find("latency.be_rx_us"), std::string::npos);

  // Every BE→FE redirect names a flow; at least one of them must trace out
  // the full detour (a crashed FE can legitimately truncate others).
  std::size_t redirects = 0;
  bool complete = false;
  std::uint64_t witness = 0;
  for (const auto& e : on.events) {
    if (e.kind != telemetry::EventKind::kBeFeRedirect || e.flow == 0) {
      continue;
    }
    ++redirects;
    if (!complete &&
        telemetry::check_be_fe_peer_path(on.events, e.flow).complete()) {
      complete = true;
      witness = e.flow;
    }
  }
  EXPECT_GT(redirects, 0u) << "no BE→FE redirects were traced";
  EXPECT_TRUE(complete)
      << "no connection's BE→FE→peer path reconstructed from " << redirects
      << " redirects";
  if (complete) {
    const auto check = telemetry::check_be_fe_peer_path(on.events, witness);
    EXPECT_NE(check.be_node, check.fe_node);
    EXPECT_NE(check.peer_node, check.fe_node);
  }
}

TEST(FleetClos, DifferentSeedsProduceDifferentTraffic) {
  const FleetRun a = run_fleet_scenario(7);
  const FleetRun c = run_fleet_scenario(8);
  // The fleet model reshuffles load scales and workload arrivals per seed;
  // identical fingerprints across seeds would mean the seed is ignored.
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

}  // namespace
}  // namespace nezha
