// Differential test for the full RuleTableSet::lookup chain.
//
// The production path is indexed (tuple-space ACL classes, bitmask-guided
// LPM); this test pins its semantics against a deliberately naive reference
// — linear priority scan for the ACL, scan-all-lengths LPM for every policy
// table — across 10k randomized rule mutations with lookups after each.
// Any divergence (priority ties, wildcard replication, lazy index rebuild,
// NAT pool math) shows up as a PreActions mismatch at a specific mutation
// step, which the failure message pins by seed and step for replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/net/five_tuple.h"
#include "src/tables/rule_set.h"

namespace nezha {
namespace {

using tables::AclRule;
using tables::NatTable;
using tables::PortRange;
using tables::Prefix;

// --- naive reference implementations -------------------------------------

/// Linear scan over all rules: lowest priority value wins, insertion order
/// breaks ties.
class ReferenceAcl {
 public:
  void add_rule(const AclRule& rule) { rules_.push_back(rule); }
  void clear() { rules_.clear(); }

  flow::Verdict lookup(const net::FiveTuple& ft, flow::Direction dir) const {
    const AclRule* best = nullptr;
    for (const AclRule& r : rules_) {
      if (r.proto.has_value() && *r.proto != ft.proto) continue;
      if (r.direction.has_value() && *r.direction != dir) continue;
      if (!r.src.contains(ft.src_ip) || !r.dst.contains(ft.dst_ip)) continue;
      if (!r.src_ports.contains(ft.src_port) ||
          !r.dst_ports.contains(ft.dst_port)) {
        continue;
      }
      if (best == nullptr || r.priority < best->priority) best = &r;
    }
    return best == nullptr ? flow::Verdict::kAccept : best->verdict;
  }

 private:
  std::vector<AclRule> rules_;
};

/// Scan-all-entries longest-prefix match. Mirrors LpmTable's overwrite
/// semantics: inserting the same (length, network) replaces the value.
template <typename V>
class ReferenceLpm {
 public:
  void insert(Prefix p, V value) {
    for (auto& e : entries_) {
      if (e.prefix.length == p.length && e.prefix.network() == p.network()) {
        e.value = std::move(value);
        return;
      }
    }
    entries_.push_back(Entry{p, std::move(value)});
  }
  void clear() { entries_.clear(); }

  const V* lookup(net::Ipv4Addr ip) const {
    const Entry* best = nullptr;
    for (const Entry& e : entries_) {
      if (!e.prefix.contains(ip)) continue;
      if (best == nullptr || e.prefix.length > best->prefix.length) best = &e;
    }
    return best == nullptr ? nullptr : &best->value;
  }

 private:
  struct Entry {
    Prefix prefix;
    V value;
  };
  std::vector<Entry> entries_;
};

/// Reference for the whole chain; mirrors RuleTableSet::lookup line by line
/// but on the naive structures above.
class ReferenceRuleSet {
 public:
  ReferenceAcl acl;
  ReferenceLpm<std::uint32_t> qos;
  ReferenceLpm<NatTable::Pool> nat;
  ReferenceLpm<flow::StatsMode> stats;
  ReferenceLpm<flow::NextHop> routes;
  ReferenceLpm<flow::NextHop> mirrors;
  std::uint32_t version = 1;

  flow::PreActions lookup(const net::FiveTuple& tx_ft) const {
    flow::PreActions pre;
    pre.rule_version = version;
    const net::FiveTuple rx_ft = tx_ft.reversed();

    pre.tx.acl_verdict = acl.lookup(tx_ft, flow::Direction::kTx);
    pre.rx.acl_verdict = acl.lookup(rx_ft, flow::Direction::kRx);

    if (const std::uint32_t* kbps = qos.lookup(tx_ft.dst_ip)) {
      pre.tx.rate_limit_kbps = pre.rx.rate_limit_kbps = *kbps;
    }

    const flow::StatsMode* sm = stats.lookup(tx_ft.dst_ip);
    pre.tx.stats_mode = pre.rx.stats_mode =
        sm == nullptr ? flow::StatsMode::kNone : *sm;

    if (const NatTable::Pool* pool = nat.lookup(tx_ft.dst_ip)) {
      const std::uint64_t h = net::flow_hash(tx_ft, 0x4e41545fULL);
      pre.tx.nat_enabled = true;
      pre.tx.nat_ip = net::Ipv4Addr(
          pool->base_ip.value() + static_cast<std::uint32_t>(h % pool->ip_count));
      pre.tx.nat_port = static_cast<std::uint16_t>(
          pool->base_port + (h / pool->ip_count) % pool->ports_per_ip);
    }

    if (const flow::NextHop* hop = routes.lookup(tx_ft.dst_ip)) {
      pre.tx.next_hop = *hop;
    }

    if (const flow::NextHop* collector = mirrors.lookup(tx_ft.dst_ip)) {
      pre.tx.mirror = pre.rx.mirror = true;
      pre.tx.mirror_target = pre.rx.mirror_target = *collector;
    }
    return pre;
  }
};

// --- randomized generators ------------------------------------------------

/// Addresses drawn from a small 10.42.x.y pool so random prefixes actually
/// match random tuples (uniform 32-bit addresses would make every lookup a
/// default-verdict miss).
net::Ipv4Addr random_ip(common::Rng& rng) {
  return net::Ipv4Addr(10, 42, static_cast<std::uint8_t>(rng.uniform_u64(0, 3)),
                       static_cast<std::uint8_t>(rng.uniform_u64(0, 15)));
}

Prefix random_prefix(common::Rng& rng) {
  // Lengths biased to the interesting range; /0 and /32 included.
  static constexpr std::uint8_t kLengths[] = {0, 8, 16, 24, 26, 28, 30, 31, 32};
  return Prefix{random_ip(rng),
                kLengths[rng.uniform_u64(0, std::size(kLengths) - 1)]};
}

PortRange random_ports(common::Rng& rng) {
  if (rng.chance(0.3)) return PortRange::any();
  const auto lo = static_cast<std::uint16_t>(rng.uniform_u64(1, 100));
  const auto hi = static_cast<std::uint16_t>(
      lo + static_cast<std::uint16_t>(rng.uniform_u64(0, 30)));
  return PortRange{lo, hi};
}

net::FiveTuple random_tuple(common::Rng& rng) {
  static constexpr net::IpProto kProtos[] = {
      net::IpProto::kTcp, net::IpProto::kUdp, net::IpProto::kIcmp};
  return net::FiveTuple{random_ip(rng), random_ip(rng),
                        static_cast<std::uint16_t>(rng.uniform_u64(1, 130)),
                        static_cast<std::uint16_t>(rng.uniform_u64(1, 130)),
                        kProtos[rng.uniform_u64(0, 2)]};
}

AclRule random_rule(common::Rng& rng) {
  AclRule r;
  r.priority = static_cast<std::uint32_t>(rng.uniform_u64(0, 15));
  r.src = random_prefix(rng);
  r.dst = random_prefix(rng);
  r.src_ports = random_ports(rng);
  r.dst_ports = random_ports(rng);
  if (rng.chance(0.5)) {
    static constexpr net::IpProto kProtos[] = {
        net::IpProto::kTcp, net::IpProto::kUdp, net::IpProto::kIcmp};
    r.proto = kProtos[rng.uniform_u64(0, 2)];
  }
  if (rng.chance(0.4)) {
    r.direction = rng.chance(0.5) ? flow::Direction::kTx : flow::Direction::kRx;
  }
  r.verdict = rng.chance(0.5) ? flow::Verdict::kAccept : flow::Verdict::kDrop;
  return r;
}

// --- the differential driver ----------------------------------------------

class RuleLookupDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuleLookupDiffTest, IndexedChainMatchesNaiveReference) {
  common::Rng rng(GetParam());
  tables::RuleTableSet impl;
  ReferenceRuleSet ref;

  constexpr int kMutations = 10000;
  constexpr int kLookupsPerMutation = 4;
  constexpr std::size_t kMaxAclRules = 1500;

  for (int step = 0; step < kMutations; ++step) {
    switch (rng.uniform_u64(0, 9)) {
      case 0:
      case 1:
      case 2: {  // ACL rules dominate churn, as in production
        const AclRule r = random_rule(rng);
        impl.acl().add_rule(r);
        ref.acl.add_rule(r);
        break;
      }
      case 3: {
        const Prefix p = random_prefix(rng);
        const auto kbps =
            static_cast<std::uint32_t>(rng.uniform_u64(0, 1000000));
        impl.qos().add_rate(p, kbps);
        ref.qos.insert(p, kbps);
        break;
      }
      case 4: {
        const Prefix p = random_prefix(rng);
        NatTable::Pool pool;
        pool.base_ip = net::Ipv4Addr(192, 0, 2,
                                     static_cast<std::uint8_t>(
                                         rng.uniform_u64(0, 200)));
        pool.base_port = static_cast<std::uint16_t>(rng.uniform_u64(1024, 2048));
        pool.ip_count = static_cast<std::uint32_t>(rng.uniform_u64(1, 8));
        pool.ports_per_ip =
            static_cast<std::uint16_t>(rng.uniform_u64(16, 60000));
        impl.nat().add_pool(p, pool);
        ref.nat.insert(p, pool);
        break;
      }
      case 5: {
        const Prefix p = random_prefix(rng);
        const auto mode =
            static_cast<flow::StatsMode>(rng.uniform_u64(0, 3));
        impl.stats_policy().add_policy(p, mode);
        ref.stats.insert(p, mode);
        break;
      }
      case 6: {
        const Prefix p = random_prefix(rng);
        const flow::NextHop hop{random_ip(rng), net::MacAddr{}};
        impl.policy_routes().add_override(p, hop);
        ref.routes.insert(p, hop);
        break;
      }
      case 7: {
        const Prefix p = random_prefix(rng);
        const flow::NextHop hop{random_ip(rng), net::MacAddr{}};
        impl.mirrors().add_mirror(p, hop);
        ref.mirrors.insert(p, hop);
        break;
      }
      case 8: {  // occasional full-table churn
        if (rng.chance(0.05)) {
          impl.acl().clear();
          ref.acl.clear();
        }
        break;
      }
      case 9: {
        if (rng.chance(0.05)) {
          impl.qos().clear();
          ref.qos.clear();
          impl.stats_policy().clear();
          ref.stats.clear();
        }
        break;
      }
    }
    // Keep the lazy per-mutation ACL index rebuild from going quadratic.
    if (impl.acl().rule_count() > kMaxAclRules) {
      impl.acl().clear();
      ref.acl.clear();
    }
    impl.commit_update();
    ref.version = impl.version();

    for (int i = 0; i < kLookupsPerMutation; ++i) {
      const net::FiveTuple ft = random_tuple(rng);
      const flow::PreActions got = impl.lookup(ft);
      const flow::PreActions want = ref.lookup(ft);
      ASSERT_EQ(got, want) << "divergence at seed=" << GetParam()
                           << " step=" << step << " tuple=" << ft.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleLookupDiffTest,
                         ::testing::Values(0xd1ffull, 0xacdcull));

// --- flow-setup cache (DESIGN.md §11) -------------------------------------
//
// lookup_cached() must be indistinguishable from lookup() across arbitrary
// table churn: the cache is validated against setup_epoch(), which counts
// every table mutation (committed or not), so a stale entry can never be
// served. These tests drive the same randomized mutation stream as the
// chain differential, but read through the cache — each tuple twice, so
// both the miss-fill path and the hit path face the reference — and then
// pin the invalidation contract per table type explicitly.

class SetupCacheDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SetupCacheDiffTest, CachedChainMatchesNaiveReferenceAcrossChurn) {
  common::Rng rng(GetParam());
  tables::RuleTableSet impl;
  ReferenceRuleSet ref;

  constexpr int kMutations = 4000;
  constexpr std::size_t kMaxAclRules = 1500;

  for (int step = 0; step < kMutations; ++step) {
    switch (rng.uniform_u64(0, 6)) {
      case 0:
      case 1: {
        const AclRule r = random_rule(rng);
        impl.acl().add_rule(r);
        ref.acl.add_rule(r);
        break;
      }
      case 2: {
        const Prefix p = random_prefix(rng);
        const auto kbps =
            static_cast<std::uint32_t>(rng.uniform_u64(0, 1000000));
        impl.qos().add_rate(p, kbps);
        ref.qos.insert(p, kbps);
        break;
      }
      case 3: {
        const Prefix p = random_prefix(rng);
        NatTable::Pool pool;
        pool.base_ip = net::Ipv4Addr(
            192, 0, 2, static_cast<std::uint8_t>(rng.uniform_u64(0, 200)));
        pool.base_port =
            static_cast<std::uint16_t>(rng.uniform_u64(1024, 2048));
        pool.ip_count = static_cast<std::uint32_t>(rng.uniform_u64(1, 8));
        pool.ports_per_ip =
            static_cast<std::uint16_t>(rng.uniform_u64(16, 60000));
        impl.nat().add_pool(p, pool);
        ref.nat.insert(p, pool);
        break;
      }
      case 4: {
        const Prefix p = random_prefix(rng);
        const auto mode = static_cast<flow::StatsMode>(rng.uniform_u64(0, 3));
        impl.stats_policy().add_policy(p, mode);
        ref.stats.insert(p, mode);
        break;
      }
      case 5: {
        const Prefix p = random_prefix(rng);
        const flow::NextHop hop{random_ip(rng), net::MacAddr{}};
        impl.policy_routes().add_override(p, hop);
        ref.routes.insert(p, hop);
        break;
      }
      case 6: {
        const Prefix p = random_prefix(rng);
        const flow::NextHop hop{random_ip(rng), net::MacAddr{}};
        impl.mirrors().add_mirror(p, hop);
        ref.mirrors.insert(p, hop);
        break;
      }
    }
    if (impl.acl().rule_count() > kMaxAclRules) {
      impl.acl().clear();
      ref.acl.clear();
    }
    impl.commit_update();
    ref.version = impl.version();

    for (int i = 0; i < 3; ++i) {
      const net::FiveTuple ft = random_tuple(rng);
      const flow::PreActions want = ref.lookup(ft);
      // First read fills (or revalidates) the cache entry, second must be
      // served from it — both have to match the naive reference exactly.
      const flow::PreActions miss = impl.lookup_cached(ft);
      const flow::PreActions hit = impl.lookup_cached(ft);
      ASSERT_EQ(miss, want) << "cached (fill) diverged at seed=" << GetParam()
                            << " step=" << step << " tuple=" << ft.to_string();
      ASSERT_EQ(hit, want) << "cached (hit) diverged at seed=" << GetParam()
                           << " step=" << step << " tuple=" << ft.to_string();
    }
  }
  // The loop must actually have exercised the hit path, not just misses
  // (port-masked keys make repeat reads of the same tuple cache hits).
  EXPECT_GT(impl.setup_cache_hits(), static_cast<std::uint64_t>(kMutations));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetupCacheDiffTest,
                         ::testing::Values(0xcac4eull, 0xf10full));

TEST(SetupCacheInvalidationTest, EveryTableTypeInvalidatesOnMutation) {
  tables::RuleTableSet impl;
  impl.commit_update();
  const net::FiveTuple ft{net::Ipv4Addr(10, 42, 0, 5),
                          net::Ipv4Addr(10, 42, 1, 9), 7000, 80,
                          net::IpProto::kTcp};

  // Fill, then hit: baseline cache behavior on an unchanged table set.
  const flow::PreActions before = impl.lookup_cached(ft);
  ASSERT_EQ(impl.lookup_cached(ft), before);
  ASSERT_EQ(impl.setup_cache_misses(), 1u);
  ASSERT_EQ(impl.setup_cache_hits(), 1u);

  // One mutation per table type; each must be observed through the cache
  // immediately after commit — and must actually change the result for ft,
  // otherwise this test wouldn't distinguish a stale hit from a fresh miss.
  const auto mutate_and_check = [&](const char* table, auto&& mutate) {
    const flow::PreActions prev = impl.lookup_cached(ft);
    mutate();
    impl.commit_update();
    const flow::PreActions got = impl.lookup_cached(ft);
    ASSERT_EQ(got, impl.lookup(ft)) << table << ": cache served stale entry";
    // commit_update() bumps rule_version, so a stale hit can't hide behind
    // an otherwise-unchanged result; additionally require a field change.
    ASSERT_NE(got, prev) << table << ": mutation should have changed the "
                         << "result for the probe tuple";
    ASSERT_EQ(impl.lookup_cached(ft), got);  // and the new entry re-caches
  };

  mutate_and_check("acl", [&] {
    AclRule r;
    r.priority = 0;
    r.src = Prefix{ft.src_ip, 32};
    r.dst = Prefix{ft.dst_ip, 32};
    r.verdict = flow::Verdict::kDrop;
    impl.acl().add_rule(r);
  });
  mutate_and_check("qos",
                   [&] { impl.qos().add_rate(Prefix{ft.dst_ip, 32}, 4242); });
  mutate_and_check("nat", [&] {
    NatTable::Pool pool;
    pool.base_ip = net::Ipv4Addr(192, 0, 2, 1);
    pool.base_port = 1024;
    pool.ip_count = 4;
    pool.ports_per_ip = 1024;
    impl.nat().add_pool(Prefix{ft.dst_ip, 32}, pool);
  });
  mutate_and_check("stats", [&] {
    impl.stats_policy().add_policy(Prefix{ft.dst_ip, 32},
                                   flow::StatsMode::kPacketsAndBytes);
  });
  mutate_and_check("policy_routes", [&] {
    impl.policy_routes().add_override(
        Prefix{ft.dst_ip, 32},
        flow::NextHop{net::Ipv4Addr(10, 42, 3, 3), net::MacAddr{}});
  });
  mutate_and_check("mirrors", [&] {
    impl.mirrors().add_mirror(
        Prefix{ft.dst_ip, 32},
        flow::NextHop{net::Ipv4Addr(10, 42, 3, 4), net::MacAddr{}});
  });
}

TEST(SetupCacheInvalidationTest, UncommittedMutationIsNotServedStale) {
  tables::RuleTableSet impl;
  impl.commit_update();
  const net::FiveTuple ft{net::Ipv4Addr(10, 42, 0, 5),
                          net::Ipv4Addr(10, 42, 1, 9), 7000, 80,
                          net::IpProto::kTcp};
  (void)impl.lookup_cached(ft);  // fill
  const std::uint64_t epoch_before = impl.setup_epoch();

  // Mutate WITHOUT commit_update(): the epoch counts raw table mutations,
  // so the cache must revalidate even before the update is committed and
  // keep serving exactly what lookup() serves in this half-applied state.
  impl.qos().add_rate(Prefix{ft.dst_ip, 32}, 777);
  EXPECT_NE(impl.setup_epoch(), epoch_before);
  const std::uint64_t misses_before = impl.setup_cache_misses();
  EXPECT_EQ(impl.lookup_cached(ft), impl.lookup(ft));
  EXPECT_EQ(impl.setup_cache_misses(), misses_before + 1)
      << "uncommitted mutation should have forced a cache refill";

  impl.commit_update();
  EXPECT_EQ(impl.lookup_cached(ft), impl.lookup(ft));
}

}  // namespace
}  // namespace nezha
