// Tests for the workload layer: VM kernel scaling law, the TCP_CRR-style
// CPS workload end to end, fleet distribution anchors, SYN-flood memory
// behaviour, and the migration cost model.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stats.h"
#include "src/core/testbed.h"
#include "src/workload/cps_workload.h"
#include "src/workload/fleet_model.h"
#include "src/workload/migration_model.h"
#include "src/workload/syn_flood.h"
#include "src/workload/vm_model.h"

namespace nezha::workload {
namespace {

using common::milliseconds;
using common::seconds;

TEST(VmKernelTest, CapacityGrowsSublinearly) {
  const double cps8 = VmKernel(VmKernelConfig{.vcpus = 8}).max_cps();
  const double cps16 = VmKernel(VmKernelConfig{.vcpus = 16}).max_cps();
  const double cps32 = VmKernel(VmKernelConfig{.vcpus = 32}).max_cps();
  const double cps64 = VmKernel(VmKernelConfig{.vcpus = 64}).max_cps();
  EXPECT_GT(cps16, cps8);
  EXPECT_GT(cps32, cps16);
  EXPECT_GT(cps64, cps32);
  // Doubling cores yields less than double the CPS (kernel locks, Fig 10).
  EXPECT_LT(cps16 / cps8, 2.0);
  EXPECT_LT(cps64 / cps32, cps16 / cps8);
}

TEST(VmKernelTest, AdmissionRespectsCapacity) {
  VmKernel kernel(VmKernelConfig{.vcpus = 1,
                                 .cps_per_core = 1000,
                                 .contention = 0.0,
                                 .max_backlog = milliseconds(10)});
  // Offer 100 connections at t=0: 1000/s capacity and 10ms backlog admit
  // only ~10 instantly.
  std::uint64_t admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (kernel.admit(0).accepted) ++admitted;
  }
  EXPECT_GE(admitted, 9u);
  EXPECT_LE(admitted, 12u);
  EXPECT_GT(kernel.rejected(), 0u);
}

class CpsWorkloadTest : public ::testing::Test {
 protected:
  CpsWorkloadTest() : bed_(make_config()) {
    vswitch::VnicConfig client, server;
    client.id = 1;
    client.addr = {3, net::Ipv4Addr(10, 0, 0, 1)};
    server.id = 2;
    server.addr = {3, net::Ipv4Addr(10, 0, 0, 2)};
    bed_.add_vnic(0, client);
    bed_.add_vnic(1, server);
  }
  static core::TestbedConfig make_config() {
    core::TestbedConfig cfg;
    cfg.num_vswitches = 8;
    cfg.controller.auto_offload = false;
    cfg.controller.auto_scale = false;
    return cfg;
  }
  core::Testbed bed_;
};

TEST_F(CpsWorkloadTest, CompletesConnectionsLocally) {
  CpsWorkloadConfig cfg;
  cfg.attempts_per_sec = 2000;
  CpsWorkload wl(bed_, 0, 1, 1, 2, cfg);
  wl.start();
  bed_.run_for(seconds(1));
  wl.stop();
  EXPECT_GT(wl.attempted(), 1500u);
  // Nearly every attempt completes at this modest load.
  EXPECT_GT(wl.completed(), wl.attempted() * 9 / 10);
  EXPECT_GT(wl.connect_latency_us().count(), 0u);
  // Connect latency at light load ≈ 2 × (5us fabric + VM service).
  EXPECT_LT(wl.connect_latency_us().median(), 500.0);
}

TEST_F(CpsWorkloadTest, VSwitchCpuBoundsCps) {
  // Throttle the server vSwitch CPU so the slow path saturates: completed
  // CPS must flatten well below the offered load.
  core::TestbedConfig cfg = make_config();
  cfg.vswitch.cpu.cores = 1;
  cfg.vswitch.cpu.hz_per_core = 25e6;  // ~6000 slow-path lookups/s
  core::Testbed bed(cfg);
  vswitch::VnicConfig client, server;
  client.id = 1;
  client.addr = {3, net::Ipv4Addr(10, 0, 0, 1)};
  server.id = 2;
  server.addr = {3, net::Ipv4Addr(10, 0, 0, 2)};
  bed.add_vnic(0, client);
  bed.add_vnic(1, server);
  CpsWorkloadConfig wcfg;
  wcfg.attempts_per_sec = 50000;
  CpsWorkload wl(bed, 0, 1, 1, 2, wcfg);
  wl.start();
  bed.run_for(seconds(1));
  wl.stop();
  EXPECT_LT(wl.completed(), 20000u);
  EXPECT_GT(bed.vswitch(0).counters().get("drop.cpu_overload") +
                bed.vswitch(1).counters().get("drop.cpu_overload"),
            0u);
}

TEST_F(CpsWorkloadTest, CpsOverWindow) {
  CpsWorkloadConfig cfg;
  cfg.attempts_per_sec = 1000;
  CpsWorkload wl(bed_, 0, 1, 1, 2, cfg);
  wl.start();
  bed_.run_for(seconds(2));
  wl.stop();
  const double cps = wl.cps_over(seconds(1), seconds(2));
  EXPECT_GT(cps, 700.0);
  EXPECT_LT(cps, 1300.0);
}

TEST(QuantileDistributionTest, InterpolatesAnchors) {
  QuantileDistribution dist({{0.0, 1.0}, {0.5, 10.0}, {1.0, 100.0}});
  EXPECT_DOUBLE_EQ(dist.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.value_at(0.5), 10.0);
  EXPECT_DOUBLE_EQ(dist.value_at(1.0), 100.0);
  // Log-linear midpoint.
  EXPECT_NEAR(dist.value_at(0.25), std::sqrt(10.0), 1e-9);
  EXPECT_THROW(QuantileDistribution({{0.5, 1.0}}), std::invalid_argument);
}

TEST(FleetModelTest, CpuUtilizationMatchesPaperAnchors) {
  FleetModel model(FleetModelConfig{.num_vswitches = 200000, .seed = 5});
  auto samples = model.sample_cpu_utilization();
  common::Percentiles p;
  for (double v : samples) p.add(v);
  // Fig 4a: avg ≈ 5%, P90 ≈ 15%, P99 ≈ 41%, P9999 ≈ 90%.
  EXPECT_NEAR(p.mean(), 0.05, 0.02);
  EXPECT_NEAR(p.percentile(90), 0.15, 0.02);
  EXPECT_NEAR(p.percentile(99), 0.41, 0.05);
  EXPECT_NEAR(p.percentile(99.99), 0.90, 0.05);
}

TEST(FleetModelTest, MemoryUtilizationMatchesPaperAnchors) {
  FleetModel model(FleetModelConfig{.num_vswitches = 200000, .seed = 6});
  auto samples = model.sample_memory_utilization();
  common::Percentiles p;
  for (double v : samples) p.add(v);
  // Fig 4b anchors. (The paper's "average ≈1.5%" is not exactly achievable
  // jointly with P90 = 15% — the top decile alone contributes ≥1.5% — so we
  // assert the percentile anchors and a loose bound on the mean.)
  EXPECT_NEAR(p.percentile(90), 0.15, 0.02);
  EXPECT_NEAR(p.percentile(99), 0.34, 0.05);
  EXPECT_NEAR(p.percentile(99.9), 0.93, 0.08);
  EXPECT_LT(p.mean(), 0.05);
  EXPECT_GT(p.percentile(99.99) / p.mean(), 15.0);
}

TEST(FleetModelTest, HotspotCauseShares) {
  FleetModel model(FleetModelConfig{.seed = 7});
  auto causes = model.sample_hotspot_causes(100000);
  std::size_t cps = 0, flows = 0, vnics = 0;
  for (auto c : causes) {
    if (c == HotspotCause::kCps) ++cps;
    else if (c == HotspotCause::kConcurrentFlows) ++flows;
    else ++vnics;
  }
  EXPECT_NEAR(static_cast<double>(cps) / 100000, 0.61, 0.01);
  EXPECT_NEAR(static_cast<double>(flows) / 100000, 0.30, 0.01);
  EXPECT_NEAR(static_cast<double>(vnics) / 100000, 0.09, 0.01);
}

TEST(FleetModelTest, UsageTailMatchesTable1) {
  FleetModel model(FleetModelConfig{.seed = 8});
  auto usage = model.sample_usage(HotspotCause::kCps, 500000);
  common::Percentiles p;
  for (double v : usage) p.add(v);
  // Table 1: P50 = 0.53% of the P9999 user's usage.
  EXPECT_NEAR(p.median(), 0.0053, 0.001);
  EXPECT_NEAR(p.percentile(99), 0.0641, 0.01);
  EXPECT_GT(p.percentile(99.99), 0.5);
}

TEST(FleetModelTest, HighCpsPairsMatchFig2) {
  FleetModel model(FleetModelConfig{.seed = 9});
  auto pairs = model.sample_high_cps_pairs(50000);
  std::size_t vm_below_60 = 0;
  for (const auto& pr : pairs) {
    EXPECT_GT(pr.vswitch_cpu, 0.95);
    if (pr.vm_cpu < 0.60) ++vm_below_60;
  }
  EXPECT_NEAR(static_cast<double>(vm_below_60) / 50000, 0.90, 0.02);
}

TEST_F(CpsWorkloadTest, SynFloodFillsBackendStateUntilAged) {
  // §7.3: flood SYNs; embryonic aging reclaims the state.
  bed_.vswitch(0).start_aging();
  SynFlood flood(bed_, 0, 1, net::Ipv4Addr(10, 0, 0, 2),
                 SynFloodConfig{.syns_per_sec = 5000});
  flood.start();
  bed_.run_for(milliseconds(800));
  flood.stop();
  EXPECT_GT(flood.sent(), 3000u);
  const std::size_t during = bed_.vswitch(0).sessions().size();
  EXPECT_GT(during, 1000u);
  // After the embryonic TTL (1s) + a sweep, the sessions are gone.
  bed_.run_for(seconds(3));
  EXPECT_LT(bed_.vswitch(0).sessions().size(), during / 10);
}

TEST(MigrationModelTest, DowntimeGrowsWithResources) {
  MigrationModel model;
  common::Rng rng(10);
  common::Summary small, large;
  for (int i = 0; i < 200; ++i) {
    small.add(common::to_millis(model.downtime(8, 32, rng)));
    large.add(common::to_millis(model.downtime(128, 1024, rng)));
  }
  EXPECT_GT(large.mean(), small.mean() * 3);
  // Fig A1 / §7.2: a 1TB VM migration takes tens of minutes to complete.
  common::Summary completion;
  for (int i = 0; i < 200; ++i) {
    completion.add(common::to_seconds(model.completion_time(1024, rng)));
  }
  EXPECT_GT(completion.mean(), 600.0);
}

}  // namespace
}  // namespace nezha::workload
