// Selection-determinism properties of the FE policy lab (DESIGN.md §14).
//
// Contract under test: every policy's pick() is a pure function of
// (tuple, FE list, seed, weight book) — same inputs, same FE, always —
// and at bed level the same (config, seed, gauge snapshot) yields the
// identical FE choice across two runs and across shard/thread counts, for
// all three policies. Plus the unit properties each implementation leans
// on: StaticHashPolicy is exactly flow_hash % n (the pre-policy code),
// weighted rendezvous moves only the removed FE's flows and honors the
// weight book, and the placement rank orders match the documented
// comparators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/invariants.h"
#include "src/core/testbed.h"
#include "src/policy/fe_policy.h"
#include "src/workload/fleet_model.h"

namespace nezha {
namespace {

using policy::FeWeightBook;
using policy::PlacementCandidate;
using policy::PolicyKind;

net::FiveTuple random_tuple(common::Rng& rng) {
  return net::FiveTuple{
      net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
      net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
      static_cast<std::uint16_t>(rng.uniform_u64(1024, 65535)),
      static_cast<std::uint16_t>(rng.uniform_u64(1, 1024)),
      rng.chance(0.5) ? net::IpProto::kTcp : net::IpProto::kUdp};
}

std::vector<tables::Location> make_fes(std::size_t n) {
  std::vector<tables::Location> fes;
  for (std::size_t i = 0; i < n; ++i) {
    fes.push_back(tables::Location{
        net::Ipv4Addr(10, 200, 0, static_cast<std::uint8_t>(i + 1)),
        net::MacAddr{{0, 1, 2, 3, 4, static_cast<std::uint8_t>(i + 1)}}});
  }
  return fes;
}

std::unique_ptr<policy::FeSelectionPolicy> make_local(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLoadAwareWeighted:
      return std::make_unique<policy::LoadAwareWeightedPolicy>();
    case PolicyKind::kPushAsideDisplacement:
      return std::make_unique<policy::PushAsideDisplacementPolicy>();
    case PolicyKind::kStaticHash: break;
  }
  return std::make_unique<policy::StaticHashPolicy>();
}

class PolicyPickTest : public ::testing::TestWithParam<PolicyKind> {};

// Same (tuple, list, seed, book) → same index, across repeated calls, the
// shared singleton, and a freshly constructed instance (policies are
// stateless by contract).
TEST_P(PolicyPickTest, PickIsAPureFunction) {
  const auto& p = policy::policy_for(GetParam());
  const auto local = make_local(GetParam());
  const auto fes = make_fes(5);
  FeWeightBook book;
  book.set(fes[1].ip, 3);
  book.set(fes[3].ip, 61);
  common::Rng rng(0xda7a);
  for (int i = 0; i < 2000; ++i) {
    const net::FiveTuple ft = random_tuple(rng);
    const std::uint64_t seed = rng.next();
    const std::size_t a = p.pick(ft, fes.data(), fes.size(), seed, book);
    const std::size_t b = p.pick(ft, fes.data(), fes.size(), seed, book);
    const std::size_t c = local->pick(ft, fes.data(), fes.size(), seed, book);
    ASSERT_EQ(a, b);
    ASSERT_EQ(a, c);
    ASSERT_LT(a, fes.size());
  }
}

TEST_P(PolicyPickTest, PickStaysInRangeForEveryPoolSize) {
  const auto& p = policy::policy_for(GetParam());
  FeWeightBook book;
  common::Rng rng(7);
  for (std::size_t n = 1; n <= 8; ++n) {
    const auto fes = make_fes(n);
    for (int i = 0; i < 200; ++i) {
      const std::size_t idx =
          p.pick(random_tuple(rng), fes.data(), n, rng.next(), book);
      ASSERT_LT(idx, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyPickTest,
    ::testing::Values(PolicyKind::kStaticHash, PolicyKind::kLoadAwareWeighted,
                      PolicyKind::kPushAsideDisplacement),
    [](const auto& info) { return policy::to_string(info.param); });

// The default policy is bit-for-bit the pre-policy inline code: pick ==
// flow_hash(tuple, seed) % n. The golden-fingerprint gates depend on it.
TEST(PolicySelectionTest, StaticHashMatchesLegacyModulo) {
  const auto& p = policy::policy_for(PolicyKind::kStaticHash);
  const auto fes = make_fes(4);
  FeWeightBook book;
  common::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const net::FiveTuple ft = random_tuple(rng);
    const std::uint64_t seed = rng.next();
    EXPECT_EQ(p.pick(ft, fes.data(), fes.size(), seed, book),
              net::flow_hash(ft, seed) % fes.size());
  }
}

// Rendezvous hashing's defining property: removing one FE remaps only the
// flows that FE served; every other flow keeps its choice (compare by IP,
// since indexes shift after the removal).
TEST(PolicySelectionTest, RendezvousRemovalMovesOnlyTheRemovedFesFlows) {
  const auto& p = policy::policy_for(PolicyKind::kLoadAwareWeighted);
  const auto fes = make_fes(5);
  auto shrunk = fes;
  const tables::Location removed = shrunk[2];
  shrunk.erase(shrunk.begin() + 2);
  FeWeightBook book;
  common::Rng rng(13);
  int moved = 0;
  for (int i = 0; i < 2000; ++i) {
    const net::FiveTuple ft = random_tuple(rng);
    const auto before = fes[p.pick(ft, fes.data(), fes.size(), 99, book)];
    const auto after =
        shrunk[p.pick(ft, shrunk.data(), shrunk.size(), 99, book)];
    if (before.ip.value() == removed.ip.value()) {
      ++moved;
    } else {
      ASSERT_EQ(before.ip.value(), after.ip.value());
    }
  }
  EXPECT_GT(moved, 0);  // the removed FE did serve some flows
}

// A weight-1 FE among weight-64 peers should serve (close to) 1/(1+64*4)
// of the flows; an all-equal book spreads roughly uniformly.
TEST(PolicySelectionTest, RendezvousHonorsTheWeightBook) {
  const auto& p = policy::policy_for(PolicyKind::kLoadAwareWeighted);
  const auto fes = make_fes(5);
  FeWeightBook heavy;
  for (const auto& fe : fes) heavy.set(fe.ip, 64);
  heavy.set(fes[0].ip, 1);
  FeWeightBook uniform;
  common::Rng rng(17);
  int cold = 0;
  std::vector<int> share(fes.size(), 0);
  const int kFlows = 4000;
  for (int i = 0; i < kFlows; ++i) {
    const net::FiveTuple ft = random_tuple(rng);
    if (p.pick(ft, fes.data(), fes.size(), 5, heavy) == 0) ++cold;
    ++share[p.pick(ft, fes.data(), fes.size(), 5, uniform)];
  }
  // Weighted rendezvous with score = weight * U32 gives the weight-1 FE a
  // tiny share (argmax of one low-scaled draw vs four full ones).
  EXPECT_LT(cold, kFlows / 20);
  for (std::size_t i = 0; i < fes.size(); ++i) {
    EXPECT_GT(share[i], kFlows / 10) << "FE " << i << " starved";
    EXPECT_LT(share[i], kFlows / 2) << "FE " << i << " overloaded";
  }
}

// The default rank (static + push-aside) must order exactly like the
// pre-policy Controller::select_frontends comparator.
TEST(PolicySelectionTest, DefaultRankMatchesLegacyComparator) {
  common::Rng rng(19);
  std::vector<PlacementCandidate> cands;
  for (std::uint32_t i = 0; i < 40; ++i) {
    cands.push_back(PlacementCandidate{
        i, static_cast<int>(rng.uniform_u64(0, 2)),
        static_cast<double>(rng.uniform_u64(0, 4)) * 0.1, 0.0, 0});
  }
  auto expected = cands;
  std::sort(expected.begin(), expected.end(),
            [](const PlacementCandidate& a, const PlacementCandidate& b) {
              if (a.tier != b.tier) return a.tier < b.tier;
              if (a.cpu_util != b.cpu_util) return a.cpu_util < b.cpu_util;
              return a.node < b.node;
            });
  for (PolicyKind kind :
       {PolicyKind::kStaticHash, PolicyKind::kPushAsideDisplacement}) {
    auto got = cands;
    policy::policy_for(kind).rank(got);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].node, expected[i].node) << policy::to_string(kind);
    }
  }
}

// Load-aware ranking folds port backlog into the load key: an idle-CPU
// host with a saturated egress port ranks behind a moderately busy host
// with an empty queue (same tier).
TEST(PolicySelectionTest, LoadAwareRankFoldsQueueBacklog) {
  std::vector<PlacementCandidate> cands;
  cands.push_back(PlacementCandidate{1, 0, 0.1, 3e6, 0});  // queue-saturated
  cands.push_back(PlacementCandidate{2, 0, 0.3, 0.0, 0});
  policy::policy_for(PolicyKind::kLoadAwareWeighted).rank(cands);
  EXPECT_EQ(cands[0].node, 2u);
  EXPECT_EQ(cands[1].node, 1u);
}

// ---------------------------------------------------------------- bed level

struct BedRun {
  std::uint64_t fingerprint = 0;
  std::uint64_t completed = 0;
  std::map<tables::VnicId, std::vector<sim::NodeId>> pools;
  std::size_t violations = 0;
  std::string report;
};

/// Clos fleet with every server vNIC offloaded under `kind`; traffic runs
/// at `threads` workers after single-threaded setup (the Testbed's
/// control-plane rule). The outcome must be a pure function of
/// (config, seed, shards) — never of `threads`.
BedRun run_fleet(PolicyKind kind, std::size_t shards, int threads,
                 std::uint64_t seed) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(
      32, /*hosts_per_leaf=*/4, /*num_spines=*/4, /*oversubscription=*/2.0);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.controller.fe_policy = kind;
  cfg.shards = shards;
  cfg.threads = 1;
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = 4;
  sc.base_attempts_per_sec = 300.0;
  sc.seed = seed;
  workload::FleetScenario scenario(bed, sc);
  core::InvariantChecker checker(bed,
                                 core::InvariantCheckerConfig{.seed = seed});

  scenario.deploy();
  scenario.offload_all();
  bed.run_for(common::seconds(1));
  checker.check();

  bed.set_threads(threads);
  scenario.start_traffic();
  for (int slice = 0; slice < 4; ++slice) {
    bed.run_for(common::milliseconds(250));
    checker.check();
  }
  scenario.stop_traffic();
  bed.run_for(common::milliseconds(250));
  checker.check();

  BedRun r;
  r.fingerprint = scenario.fingerprint();
  for (const auto& wl : scenario.workloads()) r.completed += wl->completed();
  for (tables::VnicId id : bed.controller().vnic_ids()) {
    r.pools[id] = bed.controller().fe_nodes_of(id);
  }
  r.violations = checker.violations().size();
  r.report = checker.ok() ? "" : checker.report();
  return r;
}

class PolicyBedDeterminismTest : public ::testing::TestWithParam<PolicyKind> {
};

TEST_P(PolicyBedDeterminismTest, TwoRunsReproduceBitForBit) {
  const BedRun a = run_fleet(GetParam(), 2, 1, 23);
  const BedRun b = run_fleet(GetParam(), 2, 1, 23);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.pools, b.pools);
  EXPECT_EQ(a.violations, 0u) << a.report;
  EXPECT_GT(a.completed, 50u);
}

TEST_P(PolicyBedDeterminismTest, ThreadCountNeverChangesTheOutcome) {
  const BedRun one = run_fleet(GetParam(), 2, 1, 23);
  const BedRun two = run_fleet(GetParam(), 2, 2, 23);
  EXPECT_EQ(one.fingerprint, two.fingerprint)
      << policy::to_string(GetParam())
      << ": a worker-thread count leaked into the simulation result";
  EXPECT_EQ(one.pools, two.pools);
  EXPECT_EQ(two.violations, 0u) << two.report;
}

// Placement is controller logic, independent of how the simulation is
// sharded: the FE pools chosen for every vNIC must agree between a 1-shard
// and a 2-shard bed (traffic fingerprints may differ across shard counts;
// FE choice may not — pick() inputs are identical, so the unit-level
// purity tests extend the guarantee to the per-flow choice).
TEST_P(PolicyBedDeterminismTest, FePoolsAgreeAcrossShardCounts) {
  const BedRun one = run_fleet(GetParam(), 1, 1, 23);
  const BedRun two = run_fleet(GetParam(), 2, 1, 23);
  EXPECT_EQ(one.pools, two.pools) << policy::to_string(GetParam());
  EXPECT_EQ(one.violations, 0u) << one.report;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyBedDeterminismTest,
    ::testing::Values(PolicyKind::kStaticHash, PolicyKind::kLoadAwareWeighted,
                      PolicyKind::kPushAsideDisplacement),
    [](const auto& info) { return policy::to_string(info.param); });

}  // namespace
}  // namespace nezha
