// Unit tests for src/common: time formatting, RNG determinism and
// distribution sanity, statistics accumulators.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/time.h"

namespace nezha::common {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(seconds(2), 2'000'000'000);
  EXPECT_EQ(milliseconds(3), 3'000'000);
  EXPECT_EQ(microseconds(7), 7'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_micros(microseconds(9)), 9.0);
  EXPECT_EQ(from_seconds(1.5), milliseconds(1500));
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(format_duration(seconds(2)), "2.000s");
  EXPECT_EQ(format_duration(milliseconds(1500)), "1.500s");
  EXPECT_EQ(format_duration(microseconds(250)), "250.000us");
  EXPECT_EQ(format_duration(42), "42ns");
  EXPECT_EQ(format_duration(-milliseconds(3)), "-3.000ms");
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.uniform();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMean) {
  Rng rng(11);
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  Summary s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, ParetoTailHeavierThanExponential) {
  Rng rng(19);
  Percentiles pareto, expo;
  for (int i = 0; i < 50000; ++i) {
    pareto.add(rng.pareto(1.0, 1.2));
    expo.add(rng.exponential(6.0));  // matched rough mean
  }
  // Pareto P999/P50 ratio must dominate the exponential's.
  const double pr = pareto.percentile(99.9) / pareto.median();
  const double er = expo.percentile(99.9) / expo.median();
  EXPECT_GT(pr, er);
}

TEST(RngTest, ZipfSkew) {
  Rng rng(23);
  std::uint64_t rank1 = 0, total = 20000;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (rng.zipf(100, 1.1) == 1) ++rank1;
  }
  // Rank 1 must receive far more than the uniform share (1%).
  EXPECT_GT(rank1, total / 20);
}

TEST(RngTest, ZipfInRange) {
  Rng rng(29);
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.zipf(50, 0.9);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 50u);
  }
  // Large-n path.
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.zipf(1u << 20, 1.2);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1u << 20);
  }
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(31);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(RngTest, ForkIndependence) {
  Rng parent(5);
  Rng child = parent.fork();
  // Child stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SummaryTest, Basics) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(SummaryTest, MergeMatchesCombined) {
  Rng rng(37);
  Summary a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(0, 1);
    if (i % 2 == 0) a.add(x); else b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryTest, MergeWithEmpty) {
  Summary a, b;
  a.add(5.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(PercentilesTest, ExactValues) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.min(), 1.0);
  EXPECT_DOUBLE_EQ(p.max(), 100.0);
  EXPECT_NEAR(p.median(), 50.5, 1e-9);
  EXPECT_NEAR(p.percentile(90), 90.1, 0.2);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(p.mean(), 0.0);
  EXPECT_TRUE(p.empty());
}

TEST(PercentilesTest, AddAfterQueryResorts) {
  Percentiles p;
  p.add(10);
  EXPECT_DOUBLE_EQ(p.median(), 10.0);
  p.add(0);
  EXPECT_DOUBLE_EQ(p.min(), 0.0);
}

TEST(HistogramTest, BucketsAndCdf) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
  EXPECT_DOUBLE_EQ(h.cdf_at(4), 0.5);
  EXPECT_DOUBLE_EQ(h.cdf_at(9), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
}

TEST(HistogramTest, OverflowUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-1.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(CounterTest, IncrementAndSort) {
  Counter c;
  c.inc("a");
  c.inc("b", 5);
  c.inc("a", 2);
  EXPECT_EQ(c.get("a"), 3u);
  EXPECT_EQ(c.get("b"), 5u);
  EXPECT_EQ(c.get("missing"), 0u);
  auto sorted = c.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, "b");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  Result<int> err(make_error("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().message, "boom");
  EXPECT_EQ(err.value_or(7), 7);
  EXPECT_THROW(err.value(), std::runtime_error);
}

TEST(ResultTest, StatusDefaultsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status f(make_error("bad"));
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.error().message, "bad");
}

}  // namespace
}  // namespace nezha::common
