// Controller-focused unit tests: the automatic monitoring loop (offload
// trigger at the 70% threshold, Fig 8's fe-vs-local decision), the
// fallback guard, FE selection locality, learned-map staleness, and the
// activation-time bookkeeping.
#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/vswitch/learned_map.h"

namespace nezha {
namespace {

using common::milliseconds;
using common::seconds;
using tables::OverlayAddr;
using tables::VnicId;
using vswitch::VnicConfig;

constexpr std::uint32_t kVpc = 51;

TEST(LearnedMapTest, StalenessBoundedByLearningInterval) {
  tables::VnicServerMap gateway;
  const OverlayAddr addr{kVpc, net::Ipv4Addr(10, 0, 0, 5)};
  const tables::Location old_loc{net::Ipv4Addr(172, 16, 0, 1),
                                 net::MacAddr(1ULL)};
  const tables::Location new_loc{net::Ipv4Addr(172, 16, 0, 2),
                                 net::MacAddr(2ULL)};
  gateway.set_placement(addr, 1, {old_loc});

  vswitch::LearnedVnicMap learned(gateway, milliseconds(200));
  const auto* e1 = learned.resolve(addr, 0);
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e1->placement.locations[0], old_loc);

  // The gateway re-points the vNIC; a fresh cache entry keeps serving the
  // stale location until the learning interval elapses...
  gateway.set_placement(addr, 1, {new_loc});
  const auto* e2 = learned.resolve(addr, milliseconds(100));
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e2->placement.locations[0], old_loc);
  // ...and re-learns at/after the interval.
  const auto* e3 = learned.resolve(addr, milliseconds(200));
  ASSERT_NE(e3, nullptr);
  EXPECT_EQ(e3->placement.locations[0], new_loc);
}

TEST(LearnedMapTest, InvalidateForcesImmediateRelearn) {
  tables::VnicServerMap gateway;
  const OverlayAddr addr{kVpc, net::Ipv4Addr(10, 0, 0, 6)};
  gateway.set_placement(addr, 1, {{net::Ipv4Addr(1, 1, 1, 1), net::MacAddr(1ULL)}});
  vswitch::LearnedVnicMap learned(gateway, milliseconds(200));
  (void)learned.resolve(addr, 0);
  gateway.set_placement(addr, 1, {{net::Ipv4Addr(2, 2, 2, 2), net::MacAddr(2ULL)}});
  learned.invalidate(addr);
  const auto* e = learned.resolve(addr, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->placement.locations[0].ip, net::Ipv4Addr(2, 2, 2, 2));
}

TEST(LearnedMapTest, UnknownAddrReturnsNull) {
  tables::VnicServerMap gateway;
  vswitch::LearnedVnicMap learned(gateway, milliseconds(200));
  EXPECT_EQ(learned.resolve(OverlayAddr{1, net::Ipv4Addr(9, 9, 9, 9)}, 0),
            nullptr);
}

class AutoControllerTest : public ::testing::Test {
 protected:
  AutoControllerTest() : bed_(make_config()) {
    VnicConfig hot;
    hot.id = 7;
    hot.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 7)};
    hot.profile.synthetic_rule_bytes = 8 << 20;
    bed_.add_vnic(0, hot);
    VnicConfig peer;
    peer.id = 8;
    peer.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 8)};
    bed_.add_vnic(10, peer);
  }

  static core::TestbedConfig make_config() {
    core::TestbedConfig cfg;
    cfg.num_vswitches = 16;
    // A slow vSwitch so modest load crosses the 70% trigger.
    cfg.vswitch.cpu.cores = 1;
    cfg.vswitch.cpu.hz_per_core = 20e6;
    cfg.vswitch.cpu.max_queue_delay = milliseconds(50);
    cfg.controller.monitor_period = milliseconds(250);
    return cfg;
  }

  void pump_hot_vnic(int flows_per_tick) {
    for (int i = 0; i < flows_per_tick; ++i) {
      net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 7), net::Ipv4Addr(10, 0, 0, 8),
                        static_cast<std::uint16_t>(1024 + seq_ % 60000),
                        static_cast<std::uint16_t>(80 + seq_ / 60000),
                        net::IpProto::kTcp};
      ++seq_;
      bed_.vswitch(0).from_vm(
          7, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0, kVpc));
    }
  }

  /// Drives the hot vNIC's TX slow path at `flows_per_tick` new flows per
  /// 10ms until `until`.
  void drive_load(int flows_per_tick, common::TimePoint until) {
    pump_hot_vnic(flows_per_tick);
    auto id = std::make_shared<sim::EventId>();
    *id = bed_.loop().schedule_periodic(
        milliseconds(10), [this, id, flows_per_tick, until]() {
          if (bed_.loop().now() > until) {
            bed_.loop().cancel(*id);
            return;
          }
          pump_hot_vnic(flows_per_tick);
        });
  }

  core::Testbed bed_;
  std::uint32_t seq_ = 0;
};

TEST_F(AutoControllerTest, MonitoringTriggersOffloadAboveThreshold) {
  bed_.controller().start();
  // ~65 slow-path lookups per 10ms ≈ 0.9 of the 20M-cycle budget.
  drive_load(65, seconds(20));
  bed_.run_for(seconds(8));
  EXPECT_TRUE(bed_.controller().is_offloaded(7));
  // The peer vNIC's vSwitch saturates on RX processing of the same flood,
  // so the monitor legitimately offloads it too — at least one event, and
  // vNIC 7 ends up in the offloaded final stage.
  EXPECT_GE(bed_.controller().offload_events(), 1u);
  EXPECT_EQ(bed_.vswitch(0).vnic(7)->mode(), vswitch::VnicMode::kOffloaded);
}

TEST_F(AutoControllerTest, NoOffloadBelowThreshold) {
  bed_.controller().start();
  drive_load(5, seconds(10));  // ~13% utilization
  bed_.run_for(seconds(8));
  EXPECT_FALSE(bed_.controller().is_offloaded(7));
  EXPECT_EQ(bed_.controller().offload_events(), 0u);
}

TEST_F(AutoControllerTest, FallbackGuardRejectsBusyHome) {
  bed_.controller().start();
  drive_load(65, seconds(30));
  bed_.run_for(seconds(8));
  ASSERT_TRUE(bed_.controller().is_offloaded(7));
  // BE work alone is light; trip the guard with a second, local vNIC on
  // the same switch driven between the 40% fallback-safe level and the 70%
  // offload trigger (so the monitor won't just offload it too).
  VnicConfig local;
  local.id = 9;
  local.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 9)};
  ASSERT_TRUE(bed_.vswitch(0).add_vnic(local).ok());
  bed_.controller().register_vnic(&bed_.vswitch(0), local, false);
  auto pump_local = [this]() {
    for (int i = 0; i < 32; ++i) {
      net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 9), net::Ipv4Addr(10, 0, 0, 8),
                        static_cast<std::uint16_t>(2024 + seq_ % 60000), 81,
                        net::IpProto::kTcp};
      ++seq_;
      bed_.vswitch(0).from_vm(
          9, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0, kVpc));
    }
  };
  pump_local();
  auto id = std::make_shared<sim::EventId>();
  *id = bed_.loop().schedule_periodic(
      milliseconds(10), [this, id, pump_local]() {
        if (bed_.loop().now() > seconds(30)) {
          bed_.loop().cancel(*id);
          return;
        }
        pump_local();
      });
  bed_.run_for(seconds(2));
  // Home utilization is far above the 40% safe level: fallback refused.
  EXPECT_FALSE(bed_.controller().trigger_fallback(7).ok());
}

TEST_F(AutoControllerTest, SelectionPrefersSameTor) {
  // All 16 switches share a ToR by default config (40/ToR); shrink the ToR
  // so locality matters.
  core::TestbedConfig cfg;
  cfg.num_vswitches = 24;
  cfg.topology.servers_per_tor = 8;
  cfg.controller.auto_offload = false;
  core::Testbed bed(cfg);
  VnicConfig v;
  v.id = 7;
  v.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 7)};
  bed.add_vnic(2, v);  // home in ToR 0 (nodes 0..7)
  ASSERT_TRUE(bed.controller().trigger_offload(7).ok());
  bed.run_for(seconds(4));
  for (sim::NodeId n : bed.controller().fe_nodes_of(7)) {
    EXPECT_TRUE(bed.network().topology().same_tor(2, n))
        << "FE " << n << " not in the home ToR";
  }
}

TEST_F(AutoControllerTest, CompletionSamplesAccumulate) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 16;
  cfg.controller.auto_offload = false;
  core::Testbed bed(cfg);
  for (int i = 0; i < 8; ++i) {
    VnicConfig v;
    v.id = static_cast<VnicId>(100 + i);
    v.addr = OverlayAddr{kVpc,
                         net::Ipv4Addr(10, 1, 0, static_cast<std::uint8_t>(i + 1))};
    bed.add_vnic(static_cast<std::size_t>(i), v);
    ASSERT_TRUE(bed.controller().trigger_offload(v.id).ok());
    bed.run_for(seconds(5));
  }
  EXPECT_EQ(bed.controller().offload_completion().count(), 8u);
  // Each completion includes at least the learning interval.
  EXPECT_GT(bed.controller().offload_completion().min(), 200.0);
}

}  // namespace
}  // namespace nezha
