// Differential gate for the FE-selection policy plumbing (DESIGN.md §14):
// with StaticHashPolicy — the default — routed through the plug-in path,
// the e2e bench scenario must reproduce both pinned golden fingerprints
// bit-for-bit:
//
//   burst config (192/64/64us windows, 100ms aging): 4585200 packets,
//     1146286 connections
//   exact timing (all windows 0, defaults):          4585995 packets,
//     1146438 connections
//
// The scenario is a faithful replica of bench_engine_hotpath's bench_e2e
// (8 vswitches, production cost model, 1000-rule tenant ACL from Rng(0xe2e),
// two 128-concurrency CPS clients, 1s warmup + 3s run). Any drift means the
// policy refactor perturbed the simulation — the virtual dispatch must be
// semantics-preserving, not just "close". A second differential pins that
// PushAsideDisplacementPolicy's hot path (same static modulo, displacement
// is placement-time only) is bit-identical on the same scenario.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/testbed.h"
#include "src/policy/fe_policy.h"
#include "src/tables/rule_set.h"
#include "src/workload/cps_workload.h"

namespace nezha {
namespace {

constexpr std::uint64_t kGoldenBurstPackets = 4585200;
constexpr std::uint64_t kGoldenBurstConnections = 1146286;
constexpr std::uint64_t kGoldenExactPackets = 4585995;
constexpr std::uint64_t kGoldenExactConnections = 1146438;

// Byte-for-byte the e2e bench's tenant ACL generator (the rule stream from
// Rng(0xe2e) is part of the scenario identity).
tables::AclRule random_rule(common::Rng& rng) {
  tables::AclRule r;
  r.priority = static_cast<std::uint32_t>(rng.uniform_u64(0, 1000));
  r.src = tables::Prefix{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                         static_cast<std::uint8_t>(rng.uniform_u64(8, 24))};
  r.dst = tables::Prefix{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                         static_cast<std::uint8_t>(rng.uniform_u64(8, 24))};
  const std::uint16_t lo =
      static_cast<std::uint16_t>(rng.uniform_u64(0, 60000));
  r.dst_ports = tables::PortRange{
      lo, static_cast<std::uint16_t>(lo + rng.uniform_u64(0, 4000))};
  const std::uint64_t proto = rng.uniform_u64(0, 3);
  if (proto == 0) r.proto = net::IpProto::kTcp;
  if (proto == 1) r.proto = net::IpProto::kUdp;
  if (proto == 2) r.proto = net::IpProto::kIcmp;
  const std::uint64_t dir = rng.uniform_u64(0, 2);
  if (dir == 0) r.direction = flow::Direction::kTx;
  if (dir == 1) r.direction = flow::Direction::kRx;
  r.verdict = rng.chance(0.5) ? flow::Verdict::kDrop : flow::Verdict::kAccept;
  return r;
}

struct Fingerprint {
  std::uint64_t delivered = 0;
  std::uint64_t completed = 0;
};

Fingerprint run_e2e(bool bursts, policy::PolicyKind kind) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 8;
  cfg.vswitch.cost = tables::CostModel::production();
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.controller.fe_policy = kind;
  if (bursts) {
    cfg.network.rx_burst_window = common::microseconds(192);
    cfg.vswitch.cpu_burst_window = common::microseconds(64);
    cfg.vswitch.aging_period = common::milliseconds(100);
  }
  core::Testbed bed(cfg);
  EXPECT_EQ(bed.controller().fe_policy(), kind);
  EXPECT_EQ(bed.vswitch(0).fe_policy().kind(), kind);

  constexpr std::uint32_t kVpc = 7;
  constexpr tables::VnicId kServer = 100;
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  bed.add_vnic(0, server);
  common::Rng rng(0xe2e);
  auto& server_acl = bed.vswitch(0).vnic(kServer)->rules()->acl();
  for (int i = 0; i < 1000; ++i) {
    tables::AclRule r = random_rule(rng);
    r.priority += 10;
    r.verdict = flow::Verdict::kDrop;
    r.src.addr = net::Ipv4Addr(172, 16, static_cast<std::uint8_t>(i % 200), 1);
    r.src.length = 30;
    server_acl.add_rule(r);
  }
  bed.vswitch(0).vnic(kServer)->rules()->commit_update();

  std::vector<std::unique_ptr<workload::CpsWorkload>> clients;
  for (int c = 0; c < 2; ++c) {
    vswitch::VnicConfig client;
    client.id = static_cast<tables::VnicId>(c + 1);
    client.addr = tables::OverlayAddr{
        kVpc, net::Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(c + 1))};
    const std::size_t client_switch = 1 + static_cast<std::size_t>(c);
    bed.add_vnic(client_switch, client);
    workload::CpsWorkloadConfig w;
    w.concurrency = 128;
    w.seed = 300 + static_cast<std::uint64_t>(c);
    if (bursts) w.timer_window = common::microseconds(64);
    clients.push_back(std::make_unique<workload::CpsWorkload>(
        bed, client_switch, client.id, 0, kServer, w));
  }
  for (std::size_t i = 0; i < bed.size(); ++i) bed.vswitch(i).start_aging();

  for (auto& c : clients) c->start();
  bed.run_for(common::seconds(1));
  bed.run_for(common::seconds(3));
  for (auto& c : clients) c->stop();

  Fingerprint fp;
  fp.delivered = bed.network().delivered();
  for (auto& c : clients) fp.completed += c->completed();
  return fp;
}

TEST(PolicyGoldenTest, StaticHashReproducesBurstGoldenFingerprint) {
  const Fingerprint fp = run_e2e(true, policy::PolicyKind::kStaticHash);
  EXPECT_EQ(fp.delivered, kGoldenBurstPackets);
  EXPECT_EQ(fp.completed, kGoldenBurstConnections);
}

TEST(PolicyGoldenTest, StaticHashReproducesExactGoldenFingerprint) {
  const Fingerprint fp = run_e2e(false, policy::PolicyKind::kStaticHash);
  EXPECT_EQ(fp.delivered, kGoldenExactPackets);
  EXPECT_EQ(fp.completed, kGoldenExactConnections);
}

// Push-aside shares the static hot path (displacement only changes
// placement decisions, and this scenario never displaces), so its run must
// be bit-identical to the golden numbers too — pinning that a policy swap
// alone cannot perturb the datapath.
TEST(PolicyGoldenTest, PushAsideHotPathMatchesBurstGoldenFingerprint) {
  const Fingerprint fp =
      run_e2e(true, policy::PolicyKind::kPushAsideDisplacement);
  EXPECT_EQ(fp.delivered, kGoldenBurstPackets);
  EXPECT_EQ(fp.completed, kGoldenBurstConnections);
}

}  // namespace
}  // namespace nezha
