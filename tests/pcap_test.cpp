// Pcap writer tests: file structure (global header + records) and the
// network-trace capture path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/core/testbed.h"
#include "src/net/pcap.h"

namespace nezha::net {
namespace {

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

std::uint32_t u32le(const std::vector<std::uint8_t>& b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

TEST(PcapTest, HeaderAndRecordsWellFormed) {
  const std::string path = ::testing::TempDir() + "/nezha_test.pcap";
  auto writer = PcapWriter::open(path);
  ASSERT_TRUE(writer.ok());

  FiveTuple ft{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1000, 80,
               IpProto::kTcp};
  Packet p1 = make_tcp_packet(ft, TcpFlags{.syn = true}, 10, 7);
  Packet p2 = make_udp_packet(ft, 100, 7);
  p2.encap(Ipv4Addr(1, 1, 1, 1), MacAddr(1ULL), Ipv4Addr(2, 2, 2, 2),
           MacAddr(2ULL));
  writer.value().write(p1, common::milliseconds(1500));
  writer.value().write(p2, common::seconds(2));
  writer.value().flush();
  EXPECT_EQ(writer.value().packets_written(), 2u);

  const auto bytes = read_all(path);
  ASSERT_GE(bytes.size(), 24u);
  EXPECT_EQ(u32le(bytes, 0), 0xa1b2c3d4u);  // magic
  EXPECT_EQ(u32le(bytes, 20), 1u);          // LINKTYPE_ETHERNET

  // Record 1: ts 1.500000, lengths == p1 frame size.
  std::size_t off = 24;
  EXPECT_EQ(u32le(bytes, off), 1u);
  EXPECT_EQ(u32le(bytes, off + 4), 500000u);
  const std::uint32_t len1 = u32le(bytes, off + 8);
  EXPECT_EQ(len1, p1.wire_size());
  EXPECT_EQ(u32le(bytes, off + 12), len1);

  // Record 2 follows immediately; the captured bytes parse back.
  off += 16 + len1;
  const std::uint32_t len2 = u32le(bytes, off + 8);
  EXPECT_EQ(len2, p2.wire_size());
  std::span<const std::uint8_t> frame2(bytes.data() + off + 16, len2);
  auto parsed = Packet::parse(frame2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().inner, p2.inner);
  EXPECT_EQ(parsed.value().overlay, p2.overlay);

  // Total file size adds up exactly.
  EXPECT_EQ(bytes.size(), 24u + 16u + len1 + 16u + len2);
  std::remove(path.c_str());
}

TEST(PcapTest, CapturesFabricTraffic) {
  const std::string path = ::testing::TempDir() + "/nezha_fabric.pcap";
  auto writer = PcapWriter::open(path);
  ASSERT_TRUE(writer.ok());

  core::TestbedConfig cfg;
  cfg.num_vswitches = 4;
  core::Testbed bed(cfg);
  vswitch::VnicConfig a, b;
  a.id = 1;
  a.addr = {7, Ipv4Addr(10, 0, 0, 1)};
  b.id = 2;
  b.addr = {7, Ipv4Addr(10, 0, 0, 2)};
  bed.add_vnic(0, a);
  bed.add_vnic(1, b);
  bed.network().set_trace([&](common::TimePoint t, const Packet& p,
                              sim::NodeId, sim::NodeId) {
    writer.value().write(p, t);
  });
  for (int i = 0; i < 5; ++i) {
    FiveTuple ft{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2),
                 static_cast<std::uint16_t>(2000 + i), 80, IpProto::kTcp};
    bed.vswitch(0).from_vm(1, make_tcp_packet(ft, TcpFlags{.syn = true}, 40,
                                              7));
  }
  bed.run_for(common::milliseconds(20));
  writer.value().flush();
  EXPECT_EQ(writer.value().packets_written(), 5u);
  EXPECT_GT(read_all(path).size(), 24u + 5 * (16u + 90u));
  std::remove(path.c_str());
}

// Regression: the trace tap used to sit on the point-to-point delivery
// path only, so cross-leaf packets taking the Clos fast path never reached
// the pcap callback. Every delivered packet — whatever path it took — must
// pass the single delivery tap exactly once.
TEST(PcapTest, CapturesClosFabricTraffic) {
  const std::string path = ::testing::TempDir() + "/nezha_clos.pcap";
  auto writer = PcapWriter::open(path);
  ASSERT_TRUE(writer.ok());

  // 2 hosts per leaf: vSwitch 0 and vSwitch 2 sit under different leaves,
  // so their traffic crosses the contended spine fabric.
  core::TestbedConfig cfg = core::make_clos_testbed_config(8, 2, 2);
  core::Testbed bed(cfg);
  vswitch::VnicConfig a, b;
  a.id = 1;
  a.addr = {7, Ipv4Addr(10, 0, 0, 1)};
  b.id = 2;
  b.addr = {7, Ipv4Addr(10, 0, 0, 2)};
  bed.add_vnic(0, a);
  bed.add_vnic(2, b);
  std::uint64_t traced = 0;
  bed.network().set_trace([&](common::TimePoint t, const Packet& p,
                              sim::NodeId, sim::NodeId) {
    ++traced;
    writer.value().write(p, t);
  });
  for (int i = 0; i < 5; ++i) {
    FiveTuple ft{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2),
                 static_cast<std::uint16_t>(2000 + i), 80, IpProto::kTcp};
    bed.vswitch(0).from_vm(1, make_tcp_packet(ft, TcpFlags{.syn = true}, 40,
                                              7));
  }
  bed.run_for(common::milliseconds(20));
  writer.value().flush();
  EXPECT_EQ(bed.network().delivered(), 5u);
  EXPECT_EQ(traced, bed.network().delivered());
  EXPECT_EQ(writer.value().packets_written(), 5u);
  std::remove(path.c_str());
}

TEST(PcapTest, OpenFailsOnBadPath) {
  EXPECT_FALSE(PcapWriter::open("/nonexistent-dir/x/y.pcap").ok());
}

}  // namespace
}  // namespace nezha::net
