// Chaos/invariant tests: drive the controller through randomized event
// sequences (offloads, fallbacks, scale-outs, scale-ins, crashes, heals,
// migrations) under background traffic and assert global invariants after
// every settle period. Deterministic per seed.
#include <gtest/gtest.h>

#include <unordered_set>

#include "src/common/rng.h"
#include "src/core/invariants.h"
#include "src/core/testbed.h"

namespace nezha {
namespace {

using common::milliseconds;
using common::seconds;
using tables::OverlayAddr;
using tables::VnicId;
using vswitch::VnicConfig;
using vswitch::VnicMode;

constexpr std::uint32_t kVpc = 31;
constexpr std::size_t kSwitches = 24;
constexpr int kVnics = 6;

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ChaosTest() : bed_(make_config()) {
    for (int i = 0; i < kVnics; ++i) {
      VnicConfig v;
      v.id = static_cast<VnicId>(100 + i);
      v.addr = OverlayAddr{
          kVpc, net::Ipv4Addr(10, 9, 0, static_cast<std::uint8_t>(i + 1))};
      v.profile.synthetic_rule_bytes = 2 << 20;
      bed_.add_vnic(static_cast<std::size_t>(i), v);
      vnics_.push_back(v.id);
    }
    // A traffic source on a switch that hosts no managed vNIC.
    VnicConfig client;
    client.id = 1;
    client.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 9, 1, 1)};
    bed_.add_vnic(20, client);
  }

  static core::TestbedConfig make_config() {
    core::TestbedConfig cfg;
    cfg.num_vswitches = kSwitches;
    cfg.controller.auto_offload = false;
    cfg.controller.auto_scale = false;
    return cfg;
  }

  void pump_traffic() {
    for (int i = 0; i < kVnics; ++i) {
      net::FiveTuple ft{net::Ipv4Addr(10, 9, 1, 1),
                        net::Ipv4Addr(10, 9, 0, static_cast<std::uint8_t>(i + 1)),
                        static_cast<std::uint16_t>(40000 + seq_++ % 20000), 80,
                        net::IpProto::kTcp};
      bed_.vswitch(20).from_vm(
          1, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0, kVpc));
    }
  }

  /// Global invariants that must hold whenever no transition is in flight.
  void check_invariants() {
    for (VnicId id : vnics_) {
      vswitch::VSwitch* home = bed_.controller().home_of(id);
      ASSERT_NE(home, nullptr);
      vswitch::Vnic* v = home->vnic(id);
      ASSERT_NE(v, nullptr) << "vnic " << id << " missing at its home";
      const auto fes = bed_.controller().fe_nodes_of(id);

      if (bed_.controller().is_offloaded(id)) {
        // Offloaded: enough healthy FEs, placement published, BE knows them.
        EXPECT_GE(fes.size(), 1u);
        for (sim::NodeId n : fes) {
          EXPECT_NE(n, home->id()) << "BE selected as its own FE";
        }
        EXPECT_EQ(v->fe_locations().size(), fes.size());
      } else {
        EXPECT_EQ(v->mode(), VnicMode::kLocal);
        EXPECT_TRUE(v->has_local_tables());
        EXPECT_TRUE(fes.empty());
      }
      // Gateway placement resolves to live locations.
      const auto* entry = bed_.gateway().lookup(v->addr());
      ASSERT_NE(entry, nullptr);
      EXPECT_FALSE(entry->placement.locations.empty());
    }
    // Memory pools never over-release.
    for (std::size_t i = 0; i < bed_.size(); ++i) {
      EXPECT_LE(bed_.vswitch(i).rule_memory().used(),
                bed_.vswitch(i).rule_memory().capacity());
      EXPECT_LE(bed_.vswitch(i).session_memory().used(),
                bed_.vswitch(i).session_memory().capacity());
    }
  }

  core::Testbed bed_;
  std::vector<VnicId> vnics_;
  std::uint32_t seq_ = 0;
};

TEST_P(ChaosTest, RandomOperationSequencePreservesInvariants) {
  common::Rng rng(GetParam());
  std::unordered_set<sim::NodeId> crashed;

  for (int round = 0; round < 30; ++round) {
    pump_traffic();
    const VnicId id = vnics_[rng.uniform_u64(0, vnics_.size() - 1)];
    switch (rng.uniform_u64(0, 5)) {
      case 0:
        (void)bed_.controller().trigger_offload(id);
        break;
      case 1:
        (void)bed_.controller().trigger_fallback(id);
        break;
      case 2:
        (void)bed_.controller().scale_out(id, 2);
        break;
      case 3: {
        const auto fes = bed_.controller().fe_nodes_of(id);
        if (!fes.empty()) {
          bed_.controller().scale_in_vswitch(
              fes[rng.uniform_u64(0, fes.size() - 1)]);
        }
        break;
      }
      case 4: {
        // Crash a random FE-hosting switch (and tell the controller, as the
        // monitor would); heal it a moment later so the pool recovers.
        const auto fes = bed_.controller().fe_nodes_of(id);
        if (!fes.empty() && crashed.empty()) {
          const sim::NodeId victim = fes[rng.uniform_u64(0, fes.size() - 1)];
          bed_.network().crash(victim);
          crashed.insert(victim);
          bed_.controller().handle_fe_crash(victim);
          bed_.loop().schedule_after(seconds(2), [this, victim, &crashed]() {
            bed_.network().heal(victim);
            crashed.erase(victim);
          });
        }
        break;
      }
      case 5: {
        // BE migration of an offloaded vNIC to a random healthy switch
        // that doesn't already host a managed vNIC.
        const std::size_t target = 6 + rng.uniform_u64(0, 10);
        if (bed_.controller().is_offloaded(id) &&
            !crashed.contains(static_cast<sim::NodeId>(target))) {
          (void)bed_.controller().migrate_backend(id, &bed_.vswitch(target));
        }
        break;
      }
    }
    // Let all in-flight workflows complete before checking invariants.
    bed_.run_for(seconds(6));
    check_invariants();
  }

  // Finally: everything still forwards traffic end to end.
  std::uint64_t delivered = 0;
  for (int i = 0; i < kVnics; ++i) {
    vswitch::VSwitch* home =
        bed_.controller().home_of(static_cast<VnicId>(100 + i));
    home->set_vm_delivery(
        [&](VnicId, const net::Packet&) { ++delivered; });
  }
  pump_traffic();
  bed_.run_for(milliseconds(300));
  EXPECT_EQ(delivered, static_cast<std::uint64_t>(kVnics));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull));

// ---------------------------------------------------------------------------
// Clos chaos: the same guarantees must hold when BE↔FE traffic traverses a
// leaf/spine fabric, including an FE crash landing in the middle of a
// scale-out window. The InvariantChecker runs continuously, so any transient
// inconsistency between operations (not just at settle points) is caught.

class ClosChaosTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static constexpr std::size_t kClosSwitches = 32;
  static constexpr int kClosVnics = 4;

  ClosChaosTest() : bed_(make_config()) {
    const std::uint32_t hosts_per_leaf =
        bed_.network().topology().config().clos.hosts_per_leaf;
    for (int i = 0; i < kClosVnics; ++i) {
      VnicConfig v;
      v.id = static_cast<VnicId>(100 + i);
      v.addr = OverlayAddr{
          kVpc, net::Ipv4Addr(10, 9, 0, static_cast<std::uint8_t>(i + 1))};
      v.profile.synthetic_rule_bytes = 2 << 20;
      // One managed vNIC per leaf, so FE pools and traffic cross racks.
      bed_.add_vnic(static_cast<std::size_t>(i) * hosts_per_leaf, v);
      vnics_.push_back(v.id);
    }
    VnicConfig client;
    client.id = 1;
    client.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 9, 1, 1)};
    bed_.add_vnic(kClosSwitches - 1, client);
  }

  static core::TestbedConfig make_config() {
    core::TestbedConfig cfg =
        core::make_clos_testbed_config(kClosSwitches, /*hosts_per_leaf=*/4,
                                       /*num_spines=*/2);
    cfg.controller.auto_offload = false;
    cfg.controller.auto_scale = false;
    return cfg;
  }

  void pump_traffic() {
    for (int i = 0; i < kClosVnics; ++i) {
      net::FiveTuple ft{
          net::Ipv4Addr(10, 9, 1, 1),
          net::Ipv4Addr(10, 9, 0, static_cast<std::uint8_t>(i + 1)),
          static_cast<std::uint16_t>(40000 + seq_++ % 20000), 80,
          net::IpProto::kTcp};
      bed_.vswitch(kClosSwitches - 1)
          .from_vm(1, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0,
                                           kVpc));
    }
  }

  core::Testbed bed_;
  std::vector<VnicId> vnics_;
  std::uint32_t seq_ = 0;
};

TEST_P(ClosChaosTest, FeCrashDuringScaleOutKeepsInvariantsAndRecovers) {
  common::Rng rng(GetParam());
  core::InvariantChecker checker(
      bed_, core::InvariantCheckerConfig{.seed = GetParam()});
  checker.attach(milliseconds(25));

  // Offload every managed vNIC and let the workflows finish.
  for (VnicId id : vnics_) {
    checker.record("trigger_offload vnic=" + std::to_string(id));
    ASSERT_TRUE(bed_.controller().trigger_offload(id).ok());
  }
  pump_traffic();
  bed_.run_for(seconds(6));
  ASSERT_TRUE(checker.ok()) << checker.report();

  // Start a scale-out, then kill one of the vNIC's FEs while the new FEs'
  // rule tables are still being installed (the scale-out publish window).
  const VnicId id = vnics_[rng.uniform_u64(0, vnics_.size() - 1)];
  checker.record("scale_out vnic=" + std::to_string(id));
  ASSERT_TRUE(bed_.controller().scale_out(id, 2).ok());
  const auto fes = bed_.controller().fe_nodes_of(id);
  ASSERT_FALSE(fes.empty());
  const sim::NodeId victim = fes[rng.uniform_u64(0, fes.size() - 1)];
  bed_.loop().schedule_after(milliseconds(5), [this, victim, &checker]() {
    checker.record("crash node=" + std::to_string(victim));
    bed_.network().crash(victim);
    bed_.controller().handle_fe_crash(victim);
  });
  pump_traffic();
  bed_.run_for(seconds(6));

  // The harness stayed green through the whole crash-during-scale-out
  // window, and the controller restored a healthy offloaded pool.
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.checks_run(), 100u);
  EXPECT_TRUE(bed_.controller().is_offloaded(id));
  const auto recovered = bed_.controller().fe_nodes_of(id);
  EXPECT_GE(recovered.size(), 4u) << "min-FE pool not restored";
  for (sim::NodeId n : recovered) {
    EXPECT_NE(n, victim) << "crashed FE still in the pool";
  }

  // Traffic still flows end to end across the fabric.
  std::uint64_t delivered = 0;
  for (VnicId v : vnics_) {
    bed_.controller().home_of(v)->set_vm_delivery(
        [&](VnicId, const net::Packet&) { ++delivered; });
  }
  pump_traffic();
  bed_.run_for(milliseconds(300));
  EXPECT_EQ(delivered, static_cast<std::uint64_t>(kClosVnics));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosChaosTest,
                         ::testing::Values(1ull, 4ull, 9ull));

}  // namespace
}  // namespace nezha
