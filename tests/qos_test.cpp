// QoS rate-limiting tests: the token-bucket pre-action enforced at the
// single node that owns the flow — locally before offload, at the flow's
// one FE after offload (Nezha's answer to the distributed rate-limiting
// coordination Sirius needs, §2.3.3).
#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/tables/prefix.h"

namespace nezha {
namespace {

using common::milliseconds;
using common::seconds;
using tables::OverlayAddr;
using tables::VnicId;
using vswitch::VnicConfig;

constexpr std::uint32_t kVpc = 33;

TEST(QosBucketTest, TokenBucketMath) {
  flow::SessionEntry entry;
  // 8 kbps = 1000 bytes/s; burst = one second = 8000 bits.
  EXPECT_TRUE(entry.qos_admit(8, 4000, seconds(1)));
  EXPECT_TRUE(entry.qos_admit(8, 4000, seconds(1)));
  EXPECT_FALSE(entry.qos_admit(8, 1, seconds(1)));  // bucket drained
  // Half a second refills 4000 bits.
  EXPECT_TRUE(entry.qos_admit(8, 4000, seconds(1) + milliseconds(500)));
  EXPECT_FALSE(entry.qos_admit(8, 4000, seconds(1) + milliseconds(500)));
  // Unlimited always passes.
  EXPECT_TRUE(entry.qos_admit(0, 1 << 30, seconds(2)));
}

class QosPathTest : public ::testing::Test {
 protected:
  QosPathTest() : bed_(make_config()) {
    VnicConfig sender;
    sender.id = 1;
    sender.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 1)};
    bed_.add_vnic(0, sender);
    VnicConfig receiver;
    receiver.id = 2;
    receiver.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 2)};
    bed_.add_vnic(1, receiver);
    bed_.vswitch(1).set_vm_delivery(
        [this](VnicId, const net::Packet&) { ++delivered_; });

    // Rate-limit the sender's traffic to ~80 kbps (≈16 600-byte packets/s
    // after the 1-second burst).
    auto* rules = bed_.vswitch(0).vnic(1)->rules();
    rules->qos().add_rate(tables::Prefix::host(receiver.addr.ip), 80);
    rules->commit_update();
  }

  static core::TestbedConfig make_config() {
    core::TestbedConfig cfg;
    cfg.num_vswitches = 12;
    cfg.controller.auto_offload = false;
    cfg.controller.auto_scale = false;
    return cfg;
  }

  /// Sends `count` packets of one flow over `duration`.
  void stream(int count, common::Duration duration) {
    const net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1),
                            net::Ipv4Addr(10, 0, 0, 2), 5000, 80,
                            net::IpProto::kUdp};
    const common::Duration gap = duration / count;
    for (int i = 0; i < count; ++i) {
      bed_.loop().schedule_after(gap * i, [this, ft]() {
        bed_.vswitch(0).from_vm(1, net::make_udp_packet(ft, 600, kVpc));
      });
    }
    bed_.run_for(duration + milliseconds(100));
  }

  core::Testbed bed_;
  std::uint64_t delivered_ = 0;
};

TEST_F(QosPathTest, LocalPathEnforcesRate) {
  // Offer ~200 packets over 2s (~520 kbps) against an 80 kbps limit:
  // burst (1s worth ≈ 15 pkts) + 2s refill (~31 pkts) ≈ 46 pass.
  stream(200, seconds(2));
  EXPECT_GT(bed_.vswitch(0).counters().get("drop.qos"), 100u);
  EXPECT_GT(delivered_, 20u);
  EXPECT_LT(delivered_, 80u);
}

TEST_F(QosPathTest, OffloadedPathEnforcesAtFrontend) {
  // After offload, TX packets are finalized at the flow's single FE — the
  // rate limit moves there with the cached pre-actions.
  ASSERT_TRUE(bed_.controller().trigger_offload(1).ok());
  bed_.run_for(seconds(4));
  ASSERT_TRUE(bed_.controller().is_offloaded(1));

  stream(200, seconds(2));
  std::uint64_t fe_qos_drops = 0;
  for (sim::NodeId n : bed_.controller().fe_nodes_of(1)) {
    fe_qos_drops += bed_.vswitch(n).counters().get("drop.qos");
  }
  EXPECT_GT(fe_qos_drops, 100u);
  EXPECT_GT(delivered_, 20u);
  EXPECT_LT(delivered_, 80u);
  // The BE applied no rate limiting of its own: one enforcement point.
  EXPECT_EQ(bed_.vswitch(0).counters().get("drop.qos"), 0u);
}

TEST_F(QosPathTest, UnlimitedFlowsUnaffected) {
  // A different destination without a QoS rule is never throttled.
  VnicConfig other;
  other.id = 3;
  other.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 3)};
  bed_.add_vnic(2, other);
  std::uint64_t other_rx = 0;
  bed_.vswitch(2).set_vm_delivery(
      [&](VnicId, const net::Packet&) { ++other_rx; });
  const net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1),
                          net::Ipv4Addr(10, 0, 0, 3), 5000, 80,
                          net::IpProto::kUdp};
  for (int i = 0; i < 100; ++i) {
    bed_.vswitch(0).from_vm(1, net::make_udp_packet(ft, 600, kVpc));
  }
  bed_.run_for(milliseconds(100));
  EXPECT_EQ(other_rx, 100u);
}

}  // namespace
}  // namespace nezha
