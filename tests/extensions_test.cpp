// Tests for the §7/Appendix-C extensions: FE-BE mutual link probing under
// network partitions (§C.1), elephant-flow pinning and fleet-wide hash
// reseeding (§7.5), variable-length states (§7.1), and child vNICs sharing
// one I/O adapter (§7.4).
#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/vswitch/vswitch.h"

namespace nezha {
namespace {

using common::milliseconds;
using common::seconds;
using tables::OverlayAddr;
using tables::VnicId;
using vswitch::VnicConfig;

constexpr std::uint32_t kVpc = 21;

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() : bed_(make_config()) {
    VnicConfig client;
    client.id = 1;
    client.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 1)};
    bed_.add_vnic(12, client);
    VnicConfig server;
    server.id = 2;
    server.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 2)};
    bed_.add_vnic(10, server);
    bed_.vswitch(10).set_vm_delivery(
        [this](VnicId, const net::Packet&) { ++server_rx_; });
  }

  static core::TestbedConfig make_config() {
    core::TestbedConfig cfg;
    cfg.num_vswitches = 16;
    cfg.controller.auto_offload = false;
    cfg.controller.auto_scale = false;
    return cfg;
  }

  void offload_server() {
    ASSERT_TRUE(bed_.controller().trigger_offload(2).ok());
    bed_.run_for(seconds(4));
  }

  void client_sends(std::uint16_t port) {
    net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                      port, 80, net::IpProto::kTcp};
    bed_.vswitch(12).from_vm(
        1, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0, kVpc));
  }

  core::Testbed bed_;
  std::uint64_t server_rx_ = 0;
};

TEST(NetworkPartitionTest, DropsOnlyThePartitionedPair) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 4;
  core::Testbed bed(cfg);
  bed.network().partition(0, 1);
  EXPECT_TRUE(bed.network().partitioned(0, 1));
  EXPECT_TRUE(bed.network().partitioned(1, 0));  // symmetric
  EXPECT_FALSE(bed.network().partitioned(0, 2));

  net::FiveTuple ft{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2),
                    1, 2, net::IpProto::kUdp};
  bed.network().send(0, bed.vswitch(1).underlay_ip(),
                     net::make_udp_packet(ft));
  bed.network().send(0, bed.vswitch(2).underlay_ip(),
                     net::make_udp_packet(ft));
  bed.loop().run();
  EXPECT_EQ(bed.network().dropped_partitioned(), 1u);
  EXPECT_EQ(bed.network().delivered(), 1u);

  bed.network().heal_partition(0, 1);
  bed.network().send(0, bed.vswitch(1).underlay_ip(),
                     net::make_udp_packet(ft));
  bed.loop().run();
  EXPECT_EQ(bed.network().delivered(), 2u);
}

TEST_F(ExtensionsTest, LinkProberDetectsPartitionedFePath) {
  offload_server();
  bed_.watch_fe_links(2);

  const auto fes = bed_.controller().fe_nodes_of(2);
  ASSERT_EQ(fes.size(), 4u);
  // Partition the BE (node 10) from one FE; both nodes stay healthy, so
  // the centralized monitor would never notice (§C.1).
  const sim::NodeId cut = fes[0];
  bed_.network().partition(10, cut);
  bed_.run_for(seconds(8));

  EXPECT_EQ(bed_.link_prober().failures_declared(), 1u);
  const auto after = bed_.controller().fe_nodes_of(2);
  EXPECT_EQ(after.size(), 4u);  // replaced to keep the minimum
  EXPECT_EQ(std::count(after.begin(), after.end(), cut), 0);
  EXPECT_GT(bed_.link_prober().probes_sent(), 4u);
}

TEST_F(ExtensionsTest, LinkProberQuietWhenHealthy) {
  offload_server();
  bed_.watch_fe_links(2);
  bed_.run_for(seconds(8));
  EXPECT_EQ(bed_.link_prober().failures_declared(), 0u);
  EXPECT_EQ(bed_.controller().fe_nodes_of(2).size(), 4u);
}

TEST_F(ExtensionsTest, ElephantFlowPinOverridesHash) {
  offload_server();
  const auto fes = bed_.controller().fe_nodes_of(2);
  // Server-initiated elephant flow: pin it to a dedicated FE.
  const net::FiveTuple elephant{net::Ipv4Addr(10, 0, 0, 2),
                                net::Ipv4Addr(10, 0, 0, 1), 9000, 9001,
                                net::IpProto::kTcp};
  const sim::NodeId dedicated = fes[3];
  bed_.vswitch(10).pin_flow(2, elephant,
                            bed_.vswitch(dedicated).location());

  std::uint64_t via_dedicated = 0, via_others = 0;
  bed_.network().set_trace([&](common::TimePoint, const net::Packet& p,
                               sim::NodeId from, sim::NodeId to) {
    if (from == 10 && p.carrier.has_value()) {
      (to == dedicated ? via_dedicated : via_others) += 1;
    }
  });
  for (int i = 0; i < 20; ++i) {
    bed_.vswitch(10).from_vm(
        2, net::make_tcp_packet(elephant, net::TcpFlags{.ack = true}, 1000,
                                kVpc));
  }
  bed_.run_for(milliseconds(100));
  EXPECT_EQ(via_dedicated, 20u);
  EXPECT_EQ(via_others, 0u);

  // Unpin: the flow rehashes onto the normal 5-tuple mapping.
  bed_.vswitch(10).unpin_flow(2, elephant);
  via_dedicated = via_others = 0;
  bed_.vswitch(10).from_vm(
      2, net::make_tcp_packet(elephant, net::TcpFlags{.ack = true}, 1000,
                              kVpc));
  bed_.run_for(milliseconds(100));
  EXPECT_EQ(via_dedicated + via_others, 1u);
}

TEST_F(ExtensionsTest, HashReseedRedistributesFlows) {
  offload_server();
  // Record each flow's FE under seed 0, reseed, and verify (a) mappings
  // change for a meaningful fraction of flows and (b) traffic still works.
  const auto fes = bed_.controller().fe_nodes_of(2);
  auto fe_of = [&](std::uint16_t port) {
    net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                      port, 80, net::IpProto::kTcp};
    const std::uint64_t seed = bed_.vswitch(12).fe_hash_seed();
    return fes[net::flow_hash(ft.canonical(), seed) % fes.size()];
  };
  std::vector<sim::NodeId> before;
  for (std::uint16_t p = 0; p < 200; ++p) {
    before.push_back(fe_of(static_cast<std::uint16_t>(30000 + p)));
  }
  bed_.controller().reseed_fe_hash(0xfeedULL);
  EXPECT_EQ(bed_.vswitch(12).fe_hash_seed(), 0xfeedULL);
  int moved = 0;
  for (std::uint16_t p = 0; p < 200; ++p) {
    if (fe_of(static_cast<std::uint16_t>(30000 + p)) !=
        before[static_cast<std::size_t>(p)]) {
      ++moved;
    }
  }
  // With 4 FEs, ~3/4 of flows remap under an independent hash.
  EXPECT_GT(moved, 100);
  EXPECT_LT(moved, 200);

  for (std::uint16_t p = 0; p < 50; ++p) {
    client_sends(static_cast<std::uint16_t>(31000 + p));
  }
  bed_.run_for(milliseconds(200));
  EXPECT_EQ(server_rx_, 50u);  // rehash costs cache misses, never packets
}

TEST(VariableLengthStateTest, RaisesSessionCapacity) {
  // §7.1: with 8B average variable-length states, a locally-processed
  // session entry shrinks from key+state+cached-pre-actions = 16+64+48 =
  // 128B to 16+8+48 = 72B → ≈1.78x more sessions in the same pool. (The
  // full 8x headline applies to offloaded vNICs, whose entries carry no
  // cached pre-actions — see bench_fig15_state_size.)
  auto run = [](bool variable) {
    core::TestbedConfig cfg;
    cfg.num_vswitches = 2;
    cfg.vswitch.session_memory_bytes = 80 * 1000;  // 1000 fixed entries
    cfg.vswitch.variable_length_states = variable;
    core::Testbed bed(cfg);
    VnicConfig v;
    v.id = 1;
    v.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 1)};
    bed.add_vnic(0, v);
    for (int i = 0; i < 5000; ++i) {
      net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1),
                        net::Ipv4Addr(10, 5, 5, 5),
                        static_cast<std::uint16_t>(1000 + i % 60000),
                        static_cast<std::uint16_t>(80 + i / 60000),
                        net::IpProto::kTcp};
      bed.vswitch(0).from_vm(
          1, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0, kVpc));
    }
    bed.run_for(seconds(1));
    return bed.vswitch(0).sessions().size();
  };
  const std::size_t fixed = run(false);
  const std::size_t variable = run(true);
  const double ratio =
      static_cast<double>(variable) / static_cast<double>(fixed);
  EXPECT_NEAR(ratio, 128.0 / 72.0, 0.05);
}

TEST_F(ExtensionsTest, ChildVnicsShareParentAdapter) {
  // §7.4: two child vNICs bound to a parent; all traffic arrives through
  // the parent's I/O adapter (children demuxed by tag in the guest).
  VnicConfig parent;
  parent.id = 50;
  parent.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 2, 0, 1)};
  bed_.add_vnic(5, parent);
  for (VnicId child_id : {51u, 52u}) {
    VnicConfig child;
    child.id = child_id;
    child.addr = OverlayAddr{
        kVpc, net::Ipv4Addr(10, 2, 0, static_cast<std::uint8_t>(child_id))};
    child.parent = parent.id;
    child.vlan_tag = static_cast<std::uint16_t>(child_id);
    bed_.add_vnic(5, child);
  }
  std::vector<VnicId> delivered_to;
  bed_.vswitch(5).set_vm_delivery(
      [&](VnicId v, const net::Packet&) { delivered_to.push_back(v); });

  for (std::uint8_t last_octet : {1, 51, 52}) {  // parent, child, child
    net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1),
                      net::Ipv4Addr(10, 2, 0, last_octet),
                      40000, 80, net::IpProto::kTcp};
    bed_.vswitch(12).from_vm(
        1, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0, kVpc));
  }
  bed_.run_for(milliseconds(50));
  ASSERT_EQ(delivered_to.size(), 3u);
  // Every delivery went through the parent's adapter.
  EXPECT_EQ(bed_.vswitch(5).adapter_deliveries(50), 3u);
  EXPECT_EQ(bed_.vswitch(5).adapter_deliveries(51), 0u);
  EXPECT_EQ(bed_.vswitch(5).adapter_deliveries(52), 0u);
  // But the vSwitch still knows which child each packet belongs to.
  EXPECT_EQ(std::count(delivered_to.begin(), delivered_to.end(), 51u), 1);
}

TEST_F(ExtensionsTest, ChildVnicsHaveIndependentRuleTables) {
  VnicConfig parent;
  parent.id = 60;
  parent.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 3, 0, 1)};
  bed_.add_vnic(5, parent);
  VnicConfig child;
  child.id = 61;
  child.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 3, 0, 2)};
  child.parent = parent.id;
  bed_.add_vnic(5, child);

  // Deny inbound on the child only.
  auto* rules = bed_.vswitch(5).vnic(61)->rules();
  rules->acl().add_rule(tables::AclRule{
      .priority = 1,
      .direction = flow::Direction::kRx,
      .verdict = flow::Verdict::kDrop});
  rules->commit_update();

  std::uint64_t delivered = 0;
  bed_.vswitch(5).set_vm_delivery(
      [&](VnicId, const net::Packet&) { ++delivered; });
  for (std::uint8_t dst : {1, 2}) {
    net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 3, 0, dst),
                      40000, 80, net::IpProto::kTcp};
    bed_.vswitch(12).from_vm(
        1, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0, kVpc));
  }
  bed_.run_for(milliseconds(50));
  EXPECT_EQ(delivered, 1u);  // parent delivered, child dropped by its ACL
  EXPECT_EQ(bed_.vswitch(5).counters().get("drop.acl"), 1u);
}

}  // namespace
}  // namespace nezha
