// Unit tests for the discrete-event simulator: event loop ordering and
// cancellation, topology tiers, network delivery/latency/faults.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/network.h"
#include "src/sim/node.h"
#include "src/sim/topology.h"

namespace nezha::sim {
namespace {

using common::microseconds;
using common::milliseconds;
using common::TimePoint;

TEST(EventLoopTest, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoopTest, EqualTimesFireInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoopTest, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  EventId id = loop.schedule_at(10, [&] { fired = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoopTest, RunUntilAdvancesTime) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(10, [&] { ++count; });
  loop.schedule_at(100, [&] { ++count; });
  loop.run_until(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now(), 50);
  loop.run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, EventsScheduledWhileRunningFire) {
  EventLoop loop;
  int depth = 0;
  loop.schedule_at(1, [&] {
    ++depth;
    loop.schedule_after(1, [&] { ++depth; });
  });
  loop.run();
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(loop.now(), 2);
}

TEST(EventLoopTest, PastSchedulingClampsToNow) {
  EventLoop loop;
  loop.run_until(100);
  TimePoint fired_at = -1;
  loop.schedule_at(5, [&] { fired_at = loop.now(); });
  loop.run();
  EXPECT_EQ(fired_at, 100);
}

// Regression: a cancelled event at the queue head with at <= t used to make
// run_until(t) fire the *next* live event even when its timestamp was > t.
TEST(EventLoopTest, RunUntilDoesNotOvershootPastCancelledHead) {
  EventLoop loop;
  bool late_fired = false;
  EventId head = loop.schedule_at(10, [] {});
  loop.schedule_at(100, [&] { late_fired = true; });
  loop.cancel(head);
  loop.run_until(50);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(loop.now(), 50);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_TRUE(late_fired);
  EXPECT_EQ(loop.now(), 100);
}

// Regression: cancel-after-fire used to leave a permanent tombstone that made
// pending() = queue.size() - cancelled.size() underflow in size_t.
TEST(EventLoopTest, CancelAfterFireIsANoOp) {
  EventLoop loop;
  int fired = 0;
  EventId id = loop.schedule_at(10, [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 0u);
  loop.cancel(id);  // already fired: must not poison accounting
  EXPECT_EQ(loop.pending(), 0u);
  loop.schedule_at(20, [&] { ++fired; });
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.pending(), 0u);
}

// The raw fast path must interleave with std::function events in exact
// (at, seq) order and honor cancel() identically.
TEST(EventLoopTest, RawEventsOrderWithCallbacks) {
  EventLoop loop;
  std::vector<int> order;
  struct Ctx {
    std::vector<int>* order;
  } ctx{&order};
  const auto raw = [](void* c, std::uint64_t arg) {
    static_cast<Ctx*>(c)->order->push_back(static_cast<int>(arg));
  };
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_raw_at(10, raw, &ctx, 2);  // same time: schedule order wins
  loop.schedule_raw_at(5, raw, &ctx, 0);
  loop.schedule_at(20, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventLoopTest, RawEventCancelAndSlotReuse) {
  EventLoop loop;
  int fired = 0;
  struct Ctx {
    int* fired;
  } ctx{&fired};
  const auto raw = [](void* c, std::uint64_t arg) {
    *static_cast<Ctx*>(c)->fired += static_cast<int>(arg);
  };
  EventId id = loop.schedule_raw_at(10, raw, &ctx, 100);
  loop.cancel(id);
  loop.cancel(id);  // double-cancel is a no-op
  EXPECT_EQ(loop.pending(), 0u);
  loop.run();
  EXPECT_EQ(fired, 0);
  // The freed slot must not resurrect the raw pointer for a std::function
  // event that reuses it.
  bool cb_fired = false;
  loop.schedule_at(20, [&] { cb_fired = true; });
  loop.run();
  EXPECT_TRUE(cb_fired);
  EXPECT_EQ(fired, 0);
}

TEST(EventLoopTest, RawEventReschedulesFromCallee) {
  EventLoop loop;
  struct Ctx {
    EventLoop* loop;
    int count = 0;
    static void tick(void* self, std::uint64_t remaining) {
      auto* c = static_cast<Ctx*>(self);
      ++c->count;
      if (remaining > 0) {
        c->loop->schedule_raw_at(c->loop->now() + 5, &Ctx::tick, self,
                                 remaining - 1);
      }
    }
  } ctx{&loop};
  loop.schedule_raw_at(0, &Ctx::tick, &ctx, 9);
  loop.run();
  EXPECT_EQ(ctx.count, 10);
  EXPECT_EQ(loop.now(), 45);
}

TEST(EventLoopTest, DoubleCancelCountsOnce) {
  EventLoop loop;
  bool fired = false;
  EventId id = loop.schedule_at(10, [&] { fired = true; });
  loop.schedule_at(20, [] {});
  loop.cancel(id);
  loop.cancel(id);  // second cancel must not decrement pending again
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.pending(), 0u);
}

// A fired/cancelled id must never alias a later event that reuses its slot.
TEST(EventLoopTest, StaleIdDoesNotCancelRecycledSlot) {
  EventLoop loop;
  EventId first = loop.schedule_at(10, [] {});
  loop.run();
  bool fired = false;
  loop.schedule_at(20, [&] { fired = true; });  // recycles first's slot
  loop.cancel(first);                           // stale generation: no-op
  loop.run();
  EXPECT_TRUE(fired);
}

TEST(EventLoopTest, PeriodicFiresAtFixedCadenceUntilCancelled) {
  EventLoop loop;
  std::vector<TimePoint> fires;
  EventId id = loop.schedule_periodic(10, [&] { fires.push_back(loop.now()); });
  EXPECT_EQ(loop.pending(), 1u);  // a series counts as one pending event
  loop.run_until(35);
  EXPECT_EQ(fires, (std::vector<TimePoint>{10, 20, 30}));
  EXPECT_EQ(loop.pending(), 1u);
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
  loop.run();
  EXPECT_EQ(fires.size(), 3u);
}

TEST(EventLoopTest, PeriodicCanCancelItselfFromCallback) {
  EventLoop loop;
  int fires = 0;
  EventId id = 0;
  id = loop.schedule_periodic(5, [&] {
    if (++fires == 3) loop.cancel(id);
  });
  loop.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(loop.now(), 15);
  EXPECT_EQ(loop.pending(), 0u);
}

// The next periodic tick is sequenced after events its own callback
// scheduled at the same timestamp — matching the legacy self-rescheduling
// pattern, so converted call sites keep identical event order.
TEST(EventLoopTest, PeriodicTickOrdersAfterCallbackScheduledEvents) {
  EventLoop loop;
  std::vector<int> order;
  EventId id = 0;
  int ticks = 0;
  id = loop.schedule_periodic(10, [&] {
    order.push_back(1);
    loop.schedule_after(10, [&] { order.push_back(2); });
    if (++ticks == 2) loop.cancel(id);
  });
  loop.run();
  // t=10: tick. t=20: tick fired events interleave — the callback-scheduled
  // event (seq minted first) precedes the second tick.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(TopologyTest, TierClassification) {
  Topology topo(TopologyConfig{.servers_per_tor = 4, .tors_per_agg = 2});
  EXPECT_EQ(topo.hop_tier(0, 0), 0);
  EXPECT_EQ(topo.hop_tier(0, 3), 1);   // same ToR
  EXPECT_EQ(topo.hop_tier(0, 4), 2);   // same agg, different ToR
  EXPECT_EQ(topo.hop_tier(0, 8), 3);   // different agg
  EXPECT_TRUE(topo.same_tor(1, 2));
  EXPECT_FALSE(topo.same_tor(3, 4));
  EXPECT_TRUE(topo.same_agg(0, 7));
  EXPECT_FALSE(topo.same_agg(0, 8));
}

TEST(TopologyTest, LatencyIncreasesWithTier) {
  Topology topo(TopologyConfig{.servers_per_tor = 4, .tors_per_agg = 2});
  EXPECT_LT(topo.latency(0, 0), topo.latency(0, 1));
  EXPECT_LT(topo.latency(0, 1), topo.latency(0, 4));
  EXPECT_LT(topo.latency(0, 4), topo.latency(0, 8));
}

/// Minimal sink node recording arrivals.
class SinkNode : public Node {
 public:
  SinkNode(NodeId id, net::Ipv4Addr ip)
      : Node(id, "sink" + std::to_string(id), ip, net::MacAddr(id + 1)) {}
  void receive(net::Packet pkt) override {
    received.push_back(std::move(pkt));
  }
  std::vector<net::Packet> received;
};

net::Packet test_packet(std::uint16_t payload = 100) {
  net::FiveTuple ft{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                    1000, 80, net::IpProto::kUdp};
  return net::make_udp_packet(ft, payload);
}

struct NetworkFixture {
  EventLoop loop;
  Topology topo{TopologyConfig{.servers_per_tor = 4, .tors_per_agg = 2}};
  Network net{loop, topo};
  SinkNode a{0, net::Ipv4Addr(172, 16, 0, 1)};
  SinkNode b{1, net::Ipv4Addr(172, 16, 0, 2)};
  SinkNode far{8, net::Ipv4Addr(172, 16, 0, 9)};

  NetworkFixture() {
    net.attach(a);
    net.attach(b);
    net.attach(far);
  }
};

TEST(NetworkTest, DeliversToDestination) {
  NetworkFixture f;
  f.net.send(f.a.id(), f.b.underlay_ip(), test_packet());
  f.loop.run();
  EXPECT_EQ(f.b.received.size(), 1u);
  EXPECT_EQ(f.net.delivered(), 1u);
}

TEST(NetworkTest, LatencyMatchesTopologyPlusSerialization) {
  NetworkFixture f;
  f.net.send(f.a.id(), f.b.underlay_ip(), test_packet());
  f.loop.run();
  // same-ToR latency 5us + serialization of a small packet at 100G (~10ns).
  EXPECT_GE(f.loop.now(), microseconds(5));
  EXPECT_LT(f.loop.now(), microseconds(6));
}

TEST(NetworkTest, FartherNodesTakeLonger) {
  NetworkFixture f;
  TimePoint near_arrival = 0, far_arrival = 0;
  f.net.send(f.a.id(), f.b.underlay_ip(), test_packet());
  f.loop.run();
  near_arrival = f.loop.now();
  f.net.send(f.a.id(), f.far.underlay_ip(), test_packet());
  f.loop.run();
  far_arrival = f.loop.now() - near_arrival;
  EXPECT_GT(far_arrival, near_arrival);
}

TEST(NetworkTest, UnknownDestinationDropped) {
  NetworkFixture f;
  f.net.send(f.a.id(), net::Ipv4Addr(9, 9, 9, 9), test_packet());
  f.loop.run();
  EXPECT_EQ(f.net.dropped_no_route(), 1u);
  EXPECT_EQ(f.net.delivered(), 0u);
}

TEST(NetworkTest, CrashedNodeDropsTraffic) {
  NetworkFixture f;
  f.net.crash(f.b.id());
  f.net.send(f.a.id(), f.b.underlay_ip(), test_packet());
  f.loop.run();
  EXPECT_EQ(f.b.received.size(), 0u);
  EXPECT_EQ(f.net.dropped_crashed(), 1u);

  f.net.heal(f.b.id());
  f.net.send(f.a.id(), f.b.underlay_ip(), test_packet());
  f.loop.run();
  EXPECT_EQ(f.b.received.size(), 1u);
}

TEST(NetworkTest, CrashedSenderCannotSend) {
  NetworkFixture f;
  f.net.crash(f.a.id());
  f.net.send(f.a.id(), f.b.underlay_ip(), test_packet());
  f.loop.run();
  EXPECT_EQ(f.b.received.size(), 0u);
}

TEST(NetworkTest, InFlightPacketLostWhenDestinationCrashesMidFlight) {
  NetworkFixture f;
  f.net.send(f.a.id(), f.b.underlay_ip(), test_packet());
  f.net.crash(f.b.id());  // crash before delivery event fires
  f.loop.run();
  EXPECT_EQ(f.b.received.size(), 0u);
  EXPECT_EQ(f.net.dropped_crashed(), 1u);
}

TEST(NetworkTest, SerializationDelayAccumulatesAtPort) {
  // Two large back-to-back packets from one port: second arrives one full
  // serialization time after the first.
  EventLoop loop;
  Topology topo;
  Network net(loop, topo, NetworkConfig{.link_bps = 1e9});  // 1 Gbps
  SinkNode a{0, net::Ipv4Addr(1, 0, 0, 1)};
  SinkNode b{1, net::Ipv4Addr(1, 0, 0, 2)};
  net.attach(a);
  net.attach(b);
  std::vector<TimePoint> arrivals;
  net.set_trace([&](TimePoint t, const net::Packet&, NodeId, NodeId) {
    arrivals.push_back(t);
  });
  net.send(a.id(), b.underlay_ip(), test_packet(1200));
  net.send(a.id(), b.underlay_ip(), test_packet(1200));
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // ~1242B at 1Gbps ≈ 9.9us between the two arrivals.
  const auto gap = arrivals[1] - arrivals[0];
  EXPECT_GT(gap, microseconds(9));
  EXPECT_LT(gap, microseconds(11));
}

TEST(NetworkTest, EgressQueueOverflowTailDrops) {
  EventLoop loop;
  Topology topo;
  Network net(loop, topo,
              NetworkConfig{.link_bps = 1e6, .egress_queue_bytes = 3000});
  SinkNode a{0, net::Ipv4Addr(1, 0, 0, 1)};
  SinkNode b{1, net::Ipv4Addr(1, 0, 0, 2)};
  net.attach(a);
  net.attach(b);
  for (int i = 0; i < 10; ++i) {
    net.send(a.id(), b.underlay_ip(), test_packet(1200));
  }
  loop.run();
  EXPECT_GT(net.dropped_queue_full(), 0u);
  EXPECT_LT(b.received.size(), 10u);
  EXPECT_GT(b.received.size(), 0u);
}

TEST(NetworkTest, DetachRemovesRouting) {
  NetworkFixture f;
  f.net.detach(f.b.id());
  f.net.send(f.a.id(), net::Ipv4Addr(172, 16, 0, 2), test_packet());
  f.loop.run();
  EXPECT_EQ(f.net.dropped_no_route(), 1u);
}

}  // namespace
}  // namespace nezha::sim
