// Property-based and parameterized tests: randomized sweeps asserting the
// invariants the architecture leans on — codec round-trips, reference-model
// equivalence for the matchers, accounting conservation, and the stateful
// finalization truth table, all deterministic from fixed seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "src/common/rng.h"
#include "src/core/testbed.h"
#include "src/flow/session_table.h"
#include "src/net/packet.h"
#include "src/nf/stateful.h"
#include "src/sim/event_loop.h"
#include "src/tables/acl.h"
#include "src/tables/lpm.h"
#include "src/vswitch/resources.h"
#include "src/workload/cps_workload.h"

namespace nezha {
namespace {

common::Rng make_rng(std::uint64_t salt) { return common::Rng(0xabcd00 + salt); }

net::FiveTuple random_tuple(common::Rng& rng) {
  return net::FiveTuple{
      net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
      net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
      static_cast<std::uint16_t>(rng.uniform_u64(0, 65535)),
      static_cast<std::uint16_t>(rng.uniform_u64(0, 65535)),
      rng.chance(0.5) ? net::IpProto::kTcp : net::IpProto::kUdp};
}

// ---------------------------------------------------------------- packets

struct PacketCase {
  bool tcp;
  std::uint16_t payload;
  bool encap;
  int carrier_tlvs;  // -1 = no carrier
};

class PacketRoundTrip : public ::testing::TestWithParam<PacketCase> {};

TEST_P(PacketRoundTrip, SerializeParseIdentity) {
  const PacketCase& c = GetParam();
  common::Rng rng = make_rng(1);
  for (int iter = 0; iter < 50; ++iter) {
    net::FiveTuple ft = random_tuple(rng);
    ft.proto = c.tcp ? net::IpProto::kTcp : net::IpProto::kUdp;
    net::Packet pkt =
        c.tcp ? net::make_tcp_packet(
                    ft, net::TcpFlags::from_byte(
                            static_cast<std::uint8_t>(rng.uniform_u64(0, 31))),
                    c.payload, static_cast<std::uint32_t>(rng.uniform_u64(0, 0xffffff)))
              : net::make_udp_packet(ft, c.payload,
                                     static_cast<std::uint32_t>(
                                         rng.uniform_u64(0, 0xffffff)));
    if (c.encap) {
      pkt.encap(net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                net::MacAddr(rng.next() & 0xffffffffffffULL),
                net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                net::MacAddr(rng.next() & 0xffffffffffffULL));
      if (c.carrier_tlvs >= 0) {
        net::CarrierHeader carrier;
        for (int t = 0; t < c.carrier_tlvs; ++t) {
          std::vector<std::uint8_t> value(rng.uniform_u64(0, 40));
          for (auto& b : value) b = static_cast<std::uint8_t>(rng.next());
          carrier.add(static_cast<net::CarrierTlvType>(
                          rng.uniform_u64(1, 5)),
                      std::move(value));
        }
        pkt.carrier = std::move(carrier);
      }
    }
    const auto bytes = pkt.serialize();
    ASSERT_EQ(bytes.size(), pkt.wire_size());
    auto parsed = net::Packet::parse(bytes);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().inner, pkt.inner);
    EXPECT_EQ(parsed.value().overlay, pkt.overlay);
    EXPECT_EQ(parsed.value().carrier, pkt.carrier);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PacketRoundTrip,
    ::testing::Values(PacketCase{true, 0, false, -1},
                      PacketCase{false, 0, false, -1},
                      PacketCase{true, 64, false, -1},
                      PacketCase{true, 1400, false, -1},
                      PacketCase{true, 0, true, -1},
                      PacketCase{false, 512, true, -1},
                      PacketCase{true, 64, true, 0},
                      PacketCase{true, 64, true, 1},
                      PacketCase{false, 200, true, 3},
                      PacketCase{true, 1400, true,
                                 net::CarrierHeader::kMaxTlvs}));

TEST(PacketFuzz, ParseNeverMisbehavesOnRandomBytes) {
  common::Rng rng = make_rng(2);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.uniform_u64(0, 200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    // Must either parse or return an error — never crash or hang.
    (void)net::Packet::parse(junk);
  }
}

TEST(PacketFuzz, TruncatedRealPacketsRejectOrParse) {
  common::Rng rng = make_rng(3);
  net::Packet pkt = net::make_tcp_packet(random_tuple(rng),
                                         net::TcpFlags{.syn = true}, 300, 5);
  pkt.encap(net::Ipv4Addr(1, 2, 3, 4), net::MacAddr(1ULL),
            net::Ipv4Addr(5, 6, 7, 8), net::MacAddr(2ULL));
  const auto bytes = pkt.serialize();
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
    (void)net::Packet::parse(prefix);  // robustness only
  }
}

// ------------------------------------------------------------ five-tuples

TEST(FiveTupleProperty, CanonicalInvariants) {
  common::Rng rng = make_rng(4);
  for (int i = 0; i < 5000; ++i) {
    const net::FiveTuple ft = random_tuple(rng);
    EXPECT_EQ(ft.canonical(), ft.reversed().canonical());
    EXPECT_EQ(ft.canonical().canonical(), ft.canonical());  // idempotent
    // Canonicalization preserves the endpoint set.
    const auto c = ft.canonical();
    const bool same = (c == ft) || (c == ft.reversed());
    EXPECT_TRUE(same);
  }
}

TEST(FiveTupleProperty, HashUniformityChiSquared) {
  common::Rng rng = make_rng(5);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 64000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[net::flow_hash(random_tuple(rng)) % kBuckets];
  }
  double chi2 = 0;
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int b : counts) {
    chi2 += (b - expected) * (b - expected) / expected;
  }
  // 15 dof; P(chi2 > 37.7) ≈ 0.001.
  EXPECT_LT(chi2, 37.7);
}

// ---------------------------------------------------------------- LPM

TEST(LpmProperty, MatchesBruteForceReference) {
  common::Rng rng = make_rng(6);
  tables::LpmTable<int> lpm;
  std::vector<std::pair<tables::Prefix, int>> reference;
  for (int i = 0; i < 300; ++i) {
    tables::Prefix p{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                     static_cast<std::uint8_t>(rng.uniform_u64(0, 32))};
    lpm.insert(p, i);
    // The reference keeps only the latest value per distinct prefix.
    auto it = std::find_if(reference.begin(), reference.end(),
                           [&](const auto& e) {
                             return e.first.length == p.length &&
                                    e.first.network() == p.network();
                           });
    if (it != reference.end()) it->second = i;
    else reference.emplace_back(p, i);
  }
  for (int q = 0; q < 3000; ++q) {
    const net::Ipv4Addr ip(static_cast<std::uint32_t>(rng.next()));
    // Brute force: longest matching prefix, latest value.
    const std::pair<tables::Prefix, int>* best = nullptr;
    for (const auto& e : reference) {
      if (!e.first.contains(ip)) continue;
      if (best == nullptr || e.first.length > best->first.length) best = &e;
    }
    const int* got = lpm.lookup(ip);
    if (best == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, best->second);
    }
  }
}

// ---------------------------------------------------------------- ACL

TEST(AclProperty, MatchesBruteForceReference) {
  common::Rng rng = make_rng(7);
  tables::AclTable acl(flow::Verdict::kAccept);
  struct Ref {
    tables::AclRule rule;
  };
  std::vector<tables::AclRule> rules;
  for (int i = 0; i < 120; ++i) {
    tables::AclRule r;
    r.priority = static_cast<std::uint32_t>(rng.uniform_u64(0, 50));
    r.src = tables::Prefix{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                           static_cast<std::uint8_t>(rng.uniform_u64(0, 16))};
    r.dst = tables::Prefix{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                           static_cast<std::uint8_t>(rng.uniform_u64(0, 16))};
    const std::uint16_t lo = static_cast<std::uint16_t>(rng.uniform_u64(0, 60000));
    r.dst_ports = tables::PortRange{
        lo, static_cast<std::uint16_t>(lo + rng.uniform_u64(0, 5000))};
    if (rng.chance(0.3)) r.proto = net::IpProto::kTcp;
    if (rng.chance(0.3)) r.direction = flow::Direction::kRx;
    r.verdict = rng.chance(0.5) ? flow::Verdict::kDrop : flow::Verdict::kAccept;
    rules.push_back(r);
    acl.add_rule(r);
  }
  // Reference evaluator: stable sort by priority mirrors insertion order
  // within equal priorities.
  std::stable_sort(rules.begin(), rules.end(),
                   [](const tables::AclRule& a, const tables::AclRule& b) {
                     return a.priority < b.priority;
                   });
  auto reference = [&](const net::FiveTuple& ft, flow::Direction dir) {
    for (const auto& r : rules) {
      if (r.direction && *r.direction != dir) continue;
      if (r.proto && *r.proto != ft.proto) continue;
      if (!r.src.contains(ft.src_ip) || !r.dst.contains(ft.dst_ip)) continue;
      if (!r.src_ports.contains(ft.src_port) ||
          !r.dst_ports.contains(ft.dst_port)) {
        continue;
      }
      return r.verdict;
    }
    return flow::Verdict::kAccept;
  };
  for (int q = 0; q < 3000; ++q) {
    const net::FiveTuple ft = random_tuple(rng);
    const flow::Direction dir =
        rng.chance(0.5) ? flow::Direction::kTx : flow::Direction::kRx;
    EXPECT_EQ(acl.lookup(ft, dir), reference(ft, dir));
  }
}

// ----------------------------------------------------------- finalization

TEST(FinalizeProperty, ExhaustiveTruthTable) {
  // Exhaustive over verdict(tx) × verdict(rx) × first_dir × packet dir:
  // a packet passes iff its own pre-action accepts, or the session was
  // initiated from the opposite direction whose pre-action accepts.
  for (int vt = 0; vt < 2; ++vt) {
    for (int vr = 0; vr < 2; ++vr) {
      for (int fd = 0; fd < 3; ++fd) {
        for (int d = 0; d < 2; ++d) {
          flow::PreActions pre;
          pre.tx.acl_verdict = vt ? flow::Verdict::kDrop : flow::Verdict::kAccept;
          pre.rx.acl_verdict = vr ? flow::Verdict::kDrop : flow::Verdict::kAccept;
          flow::SessionState state;
          state.first_dir = static_cast<flow::FirstDirection>(fd);
          const auto dir = static_cast<flow::Direction>(d);

          const bool own_accepts =
              pre.dir(dir).acl_verdict == flow::Verdict::kAccept;
          const flow::Direction opp = flow::reverse(dir);
          const bool initiated_opp =
              (state.first_dir == flow::FirstDirection::kTx &&
               opp == flow::Direction::kTx) ||
              (state.first_dir == flow::FirstDirection::kRx &&
               opp == flow::Direction::kRx);
          const bool opp_accepts =
              pre.dir(opp).acl_verdict == flow::Verdict::kAccept;
          const bool expect_accept =
              own_accepts || (initiated_opp && opp_accepts);

          EXPECT_EQ(nf::finalize_action(dir, pre, state),
                    expect_accept ? flow::Verdict::kAccept
                                  : flow::Verdict::kDrop)
              << "vt=" << vt << " vr=" << vr << " fd=" << fd << " d=" << d;
        }
      }
    }
  }
}

// -------------------------------------------------------- session table

TEST(SessionTableProperty, MemoryAccountingConservation) {
  common::Rng rng = make_rng(8);
  flow::SessionTable table{flow::SessionTableConfig{}};
  std::vector<flow::SessionKey> live;
  for (int op = 0; op < 5000; ++op) {
    EXPECT_EQ(table.memory_bytes(), table.size() * table.entry_bytes());
    if (live.empty() || rng.chance(0.6)) {
      const auto key = flow::SessionKey::from_packet(
          static_cast<std::uint32_t>(rng.uniform_u64(0, 3)),
          random_tuple(rng));
      if (table.find(key) == nullptr) live.push_back(key);
      ASSERT_NE(table.find_or_create(key, op), nullptr);
    } else {
      const std::size_t idx = rng.uniform_u64(0, live.size() - 1);
      EXPECT_TRUE(table.erase(live[idx]));
      live.erase(live.begin() + static_cast<long>(idx));
    }
    EXPECT_EQ(table.size(), live.size());
  }
}

TEST(SessionTableProperty, AgeOutRemovesExactlyExpired) {
  common::Rng rng = make_rng(9);
  flow::SessionTable table{flow::SessionTableConfig{
      .established_ttl = common::seconds(8),
      .embryonic_ttl = common::seconds(1)}};
  std::map<int, common::TimePoint> expiry;  // index → expiry time
  std::vector<flow::SessionKey> keys;
  for (int i = 0; i < 400; ++i) {
    const auto key = flow::SessionKey::from_packet(1, random_tuple(rng));
    auto* e = table.find_or_create(key, 0);
    if (e == nullptr) continue;
    const auto last =
        static_cast<common::TimePoint>(rng.uniform_u64(0, common::seconds(4)));
    const bool established = rng.chance(0.5);
    if (established) {
      e->state.observe(flow::Direction::kTx, net::TcpFlags{.ack = true}, true,
                       64, last);
    } else {
      e->state.observe(flow::Direction::kTx, net::TcpFlags{.syn = true}, true,
                       64, last);
    }
    keys.push_back(key);
    expiry[i] = last + (established ? common::seconds(8) : common::seconds(1));
  }
  const common::TimePoint cutoff = common::seconds(5);
  std::size_t expected_removed = 0;
  for (const auto& [idx, at] : expiry) {
    if (at <= cutoff) ++expected_removed;
  }
  EXPECT_EQ(table.age_out(cutoff), expected_removed);
}

// ------------------------------------------------------------- CPU model

TEST(CpuModelProperty, ConservationAndMonotonicity) {
  common::Rng rng = make_rng(10);
  vswitch::CpuModel cpu(vswitch::CpuConfig{
      .cores = 2, .hz_per_core = 1e9,
      .max_queue_delay = common::milliseconds(1)});
  common::TimePoint now = 0;
  common::Duration prev_busy = 0;
  std::uint64_t offered = 0;
  for (int i = 0; i < 20000; ++i) {
    now += static_cast<common::Duration>(rng.exponential(500.0));
    const auto out = cpu.consume(rng.uniform(100.0, 5000.0), now);
    ++offered;
    if (out.accepted) {
      EXPECT_GE(out.done, now);
      EXPECT_GE(out.queue_delay, 0);
      EXPECT_LE(out.queue_delay, common::milliseconds(1));
    }
    const common::Duration busy = cpu.busy_integral(now);
    EXPECT_GE(busy, prev_busy);      // monotone
    EXPECT_LE(busy, now);            // can't be busier than wall time
    prev_busy = busy;
  }
  EXPECT_EQ(cpu.accepted() + cpu.rejected(), offered);
  EXPECT_GT(cpu.rejected(), 0u);  // the offered load exceeds capacity
}

// ------------------------------------------------------------ event loop

TEST(EventLoopProperty, RandomScheduleCancelOrdering) {
  common::Rng rng = make_rng(11);
  sim::EventLoop loop;
  std::vector<std::pair<common::TimePoint, int>> fired;
  std::vector<sim::EventId> ids;
  std::vector<bool> cancelled(3000, false);
  for (int i = 0; i < 3000; ++i) {
    const auto at = static_cast<common::TimePoint>(rng.uniform_u64(0, 1000000));
    ids.push_back(loop.schedule_at(at, [&fired, &loop, i]() {
      fired.emplace_back(loop.now(), i);
    }));
  }
  for (int i = 0; i < 3000; ++i) {
    if (rng.chance(0.3)) {
      loop.cancel(ids[static_cast<std::size_t>(i)]);
      cancelled[static_cast<std::size_t>(i)] = true;
    }
  }
  loop.run();
  std::size_t expected = 0;
  for (bool c : cancelled) {
    if (!c) ++expected;
  }
  EXPECT_EQ(fired.size(), expected);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);  // time-ordered
  }
  for (const auto& [t, idx] : fired) {
    EXPECT_FALSE(cancelled[static_cast<std::size_t>(idx)]);
  }
}

// ----------------------------------------- indexed-path differentials
//
// The ACL tuple-space index, the LPM populated-length bitmask, and the
// session table's TTL wheel must be pure optimizations: same answers as the
// straight-line reference evaluators, across mutation patterns that stress
// the incremental machinery (lazy rebuild, bitmask maintenance, re-queueing
// across multiple sweeps).

tables::AclRule random_acl_rule(common::Rng& rng) {
  tables::AclRule r;
  r.priority = static_cast<std::uint32_t>(rng.uniform_u64(0, 40));
  r.src = tables::Prefix{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                         static_cast<std::uint8_t>(rng.uniform_u64(0, 16))};
  r.dst = tables::Prefix{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                         static_cast<std::uint8_t>(rng.uniform_u64(0, 16))};
  const auto lo = static_cast<std::uint16_t>(rng.uniform_u64(0, 60000));
  r.src_ports = tables::PortRange{
      lo, static_cast<std::uint16_t>(lo + rng.uniform_u64(0, 8000))};
  const auto dlo = static_cast<std::uint16_t>(rng.uniform_u64(0, 60000));
  r.dst_ports = tables::PortRange{
      dlo, static_cast<std::uint16_t>(dlo + rng.uniform_u64(0, 8000))};
  switch (rng.uniform_u64(0, 3)) {
    case 0: r.proto = net::IpProto::kTcp; break;
    case 1: r.proto = net::IpProto::kUdp; break;
    case 2: r.proto = net::IpProto::kIcmp; break;
    default: break;  // wildcard
  }
  switch (rng.uniform_u64(0, 2)) {
    case 0: r.direction = flow::Direction::kTx; break;
    case 1: r.direction = flow::Direction::kRx; break;
    default: break;  // both
  }
  r.verdict = rng.chance(0.5) ? flow::Verdict::kDrop : flow::Verdict::kAccept;
  return r;
}

TEST(AclProperty, IndexedMatchesReferenceAcrossMutations) {
  common::Rng rng = make_rng(20);
  tables::AclTable acl(flow::Verdict::kAccept);
  std::vector<tables::AclRule> rules;

  // Reference: the pre-index semantics — scan in (priority, insertion)
  // order, first match wins.
  auto reference = [&](const net::FiveTuple& ft, flow::Direction dir) {
    std::vector<const tables::AclRule*> sorted;
    sorted.reserve(rules.size());
    for (const auto& r : rules) sorted.push_back(&r);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const tables::AclRule* a, const tables::AclRule* b) {
                       return a->priority < b->priority;
                     });
    for (const auto* r : sorted) {
      if (r->direction && *r->direction != dir) continue;
      if (r->proto && *r->proto != ft.proto) continue;
      if (!r->src.contains(ft.src_ip) || !r->dst.contains(ft.dst_ip)) continue;
      if (!r->src_ports.contains(ft.src_port) ||
          !r->dst_ports.contains(ft.dst_port)) {
        continue;
      }
      return r->verdict;
    }
    return flow::Verdict::kAccept;
  };
  auto random_query_tuple = [&]() {
    net::FiveTuple ft = random_tuple(rng);
    if (rng.chance(0.2)) ft.proto = net::IpProto::kIcmp;
    return ft;
  };

  // Interleave rule additions (and one clear) with query batches so the
  // lazy rebuild is exercised on every dirty→clean edge.
  for (int gen = 0; gen < 8; ++gen) {
    if (gen == 4) {
      acl.clear();
      rules.clear();
    }
    const int batch = 30 + gen * 10;
    for (int i = 0; i < batch; ++i) {
      const tables::AclRule r = random_acl_rule(rng);
      acl.add_rule(r);
      rules.push_back(r);
    }
    for (int q = 0; q < 400; ++q) {
      const net::FiveTuple ft = random_query_tuple();
      const flow::Direction dir =
          rng.chance(0.5) ? flow::Direction::kTx : flow::Direction::kRx;
      ASSERT_EQ(acl.lookup(ft, dir), reference(ft, dir))
          << "gen " << gen << " query " << q;
    }
  }
}

TEST(LpmProperty, EraseMaintainsPopulatedLengths) {
  common::Rng rng = make_rng(21);
  tables::LpmTable<int> lpm;
  // Few distinct lengths so erasures routinely empty out a whole length —
  // the populated-bitmask clear path.
  const std::uint8_t lengths[] = {0, 8, 12, 24, 32};
  std::map<std::pair<std::uint8_t, std::uint32_t>, int> reference;
  std::vector<tables::Prefix> inserted;
  int next_value = 0;
  for (int op = 0; op < 2000; ++op) {
    if (inserted.empty() || rng.chance(0.6)) {
      tables::Prefix p{net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                       lengths[rng.uniform_u64(0, 4)]};
      lpm.insert(p, next_value);
      reference[{p.length, p.network()}] = next_value;
      inserted.push_back(p);
      ++next_value;
    } else {
      const std::size_t idx = rng.uniform_u64(0, inserted.size() - 1);
      const tables::Prefix p = inserted[idx];
      inserted.erase(inserted.begin() + static_cast<long>(idx));
      const bool present = reference.erase({p.length, p.network()}) > 0;
      EXPECT_EQ(lpm.erase(p), present);
    }
    if (op % 50 != 0) continue;
    for (int q = 0; q < 60; ++q) {
      const net::Ipv4Addr ip(static_cast<std::uint32_t>(rng.next()));
      const int* best = nullptr;
      int best_len = -1;
      for (const auto& [key, v] : reference) {
        const tables::Prefix p{net::Ipv4Addr(key.second), key.first};
        if (p.contains(ip) && key.first > best_len) {
          best = &v;
          best_len = key.first;
        }
      }
      const int* got = lpm.lookup(ip);
      if (best == nullptr) {
        ASSERT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        ASSERT_EQ(*got, *best);
      }
    }
  }
  EXPECT_EQ(lpm.size(), reference.size());
}

TEST(SessionTableProperty, IncrementalAgingMatchesFullScanAcrossSweeps) {
  common::Rng rng = make_rng(22);
  flow::SessionTable table{flow::SessionTableConfig{
      .established_ttl = common::seconds(8),
      .embryonic_ttl = common::seconds(1),
      .closed_ttl = common::milliseconds(100)}};
  std::set<int> live;  // key index → alive in the model
  std::vector<flow::SessionKey> keys;
  for (int i = 0; i < 200; ++i) {
    net::FiveTuple ft = random_tuple(rng);
    ft.proto = net::IpProto::kTcp;
    keys.push_back(flow::SessionKey::from_packet(1, ft));
  }
  common::TimePoint now = 0;
  for (int round = 0; round < 60; ++round) {
    now += static_cast<common::Duration>(
        rng.uniform_u64(common::milliseconds(50), common::milliseconds(800)));
    // Mutate a random subset through the datapath pattern: observe + touch.
    for (int m = 0; m < 30; ++m) {
      const int idx = static_cast<int>(rng.uniform_u64(0, keys.size() - 1));
      auto* e = table.find_or_create(keys[static_cast<std::size_t>(idx)], now);
      ASSERT_NE(e, nullptr);
      live.insert(idx);
      net::TcpFlags flags;
      switch (rng.uniform_u64(0, 9)) {
        case 0: flags.syn = true; break;
        case 1: flags.rst = true; break;        // TTL shrinks to closed_ttl
        case 2: flags.fin = true; flags.ack = true; break;
        default: flags.ack = true; break;
      }
      e->state.observe(rng.chance(0.5) ? flow::Direction::kTx
                                       : flow::Direction::kRx,
                       flags, true, 64, now);
      table.touch(e);
    }
    if (rng.chance(0.15) && !live.empty()) {
      const int victim = *live.begin();
      EXPECT_TRUE(table.erase(keys[static_cast<std::size_t>(victim)]));
      live.erase(victim);
    }
    // Full-scan oracle evaluated just before the sweep: exactly the entries
    // whose idle time passed their FSM-dependent TTL must go.
    std::set<int> expected_gone;
    for (const int idx : live) {
      const auto* e = table.find(keys[static_cast<std::size_t>(idx)]);
      ASSERT_NE(e, nullptr);
      if (now - e->state.last_active >= table.ttl_of(*e)) {
        expected_gone.insert(idx);
      }
    }
    std::size_t evict_cb_count = 0;
    const std::size_t removed = table.age_out(
        now, [&](const flow::SessionKey&, const flow::SessionEntry&) {
          ++evict_cb_count;
        });
    EXPECT_EQ(removed, expected_gone.size()) << "round " << round;
    EXPECT_EQ(evict_cb_count, removed);
    for (const int idx : expected_gone) {
      EXPECT_EQ(table.find(keys[static_cast<std::size_t>(idx)]), nullptr);
      live.erase(idx);
    }
    for (const int idx : live) {
      EXPECT_NE(table.find(keys[static_cast<std::size_t>(idx)]), nullptr);
    }
    EXPECT_EQ(table.size(), live.size());
  }
}

// ----------------------------------------------------------- determinism

struct MiniRunStats {
  std::uint64_t delivered = 0;
  std::uint64_t completed = 0;
  std::uint64_t attempted = 0;
  std::size_t sessions = 0;
  bool operator==(const MiniRunStats&) const = default;
};

// End-to-end closed-loop run on the standard testbed; everything in the
// result is a pure function of the seed. This is the guard that the slab
// event loop, TTL-wheel aging, and indexed tables did not perturb
// simulation outcomes — only wall-clock speed.
MiniRunStats run_mini_testbed(std::uint64_t seed, int concurrency = 16) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 3;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  core::Testbed bed(cfg);

  constexpr std::uint32_t kVpc = 3;
  constexpr tables::VnicId kServer = 50;
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 50)};
  bed.add_vnic(0, server);

  vswitch::VnicConfig client;
  client.id = 1;
  client.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 1, 1)};
  bed.add_vnic(1, client);

  workload::CpsWorkloadConfig w;
  w.concurrency = concurrency;
  w.seed = seed;
  workload::CpsWorkload cps(bed, 1, client.id, 0, kServer, w);
  for (std::size_t i = 0; i < bed.size(); ++i) bed.vswitch(i).start_aging();
  cps.start();
  bed.run_for(common::milliseconds(400));
  cps.stop();

  MiniRunStats out;
  out.delivered = bed.network().delivered();
  out.completed = cps.completed();
  out.attempted = cps.attempted();
  out.sessions = bed.vswitch(0).sessions().size();
  return out;
}

TEST(DeterminismProperty, SameSeedIdenticalEndToEndStats) {
  const MiniRunStats a = run_mini_testbed(77);
  const MiniRunStats b = run_mini_testbed(77);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.delivered, 0u);
  EXPECT_GT(a.completed, 0u);
  // Non-vacuity: the run actually responds to its inputs (a capacity-
  // limited closed loop can coincide across nearby seeds, so vary the
  // offered load instead).
  const MiniRunStats c = run_mini_testbed(77, 8);
  EXPECT_FALSE(a == c);
}

// ------------------------------------------------------ pre-action codec

class PreActionsCodec : public ::testing::TestWithParam<int> {};

TEST_P(PreActionsCodec, RandomRoundTrips) {
  common::Rng rng = make_rng(static_cast<std::uint64_t>(12 + GetParam()));
  for (int i = 0; i < 500; ++i) {
    flow::PreActions p;
    p.rule_version = static_cast<std::uint32_t>(rng.next());
    for (flow::DirPreAction* d : {&p.tx, &p.rx}) {
      d->acl_verdict =
          rng.chance(0.5) ? flow::Verdict::kDrop : flow::Verdict::kAccept;
      d->nat_enabled = rng.chance(0.3);
      d->nat_ip = net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
      d->nat_port = static_cast<std::uint16_t>(rng.next());
      d->rate_limit_kbps = static_cast<std::uint32_t>(rng.next());
      d->stats_mode = static_cast<flow::StatsMode>(rng.uniform_u64(0, 3));
      d->mirror = rng.chance(0.2);
      d->next_hop.ip = net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
      d->next_hop.mac = net::MacAddr(rng.next() & 0xffffffffffffULL);
    }
    auto parsed = flow::PreActions::parse(p.serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreActionsCodec, ::testing::Range(0, 4));

}  // namespace
}  // namespace nezha
