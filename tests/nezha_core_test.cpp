// Integration tests of the Nezha core: the full offload workflow (dual
// running → final stage), the BE/FE datapath with state-carrying packets,
// the §5.1/§5.2 case studies end to end, notify packets, FE load balancing,
// scale-out/in, failover with the health monitor, fallback, and BE
// migration (§7.2).
#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/vswitch/vswitch.h"

namespace nezha {
namespace {

using common::milliseconds;
using common::seconds;
using tables::OverlayAddr;
using tables::VnicId;
using vswitch::VnicConfig;
using vswitch::VnicMode;

constexpr std::uint32_t kVpc = 9;
constexpr VnicId kClientVnic = 1;
constexpr VnicId kServerVnic = 2;

class NezhaCoreTest : public ::testing::Test {
 protected:
  NezhaCoreTest() : bed_(make_config()) {
    client_ip_ = net::Ipv4Addr(10, 0, 0, 1);
    server_ip_ = net::Ipv4Addr(10, 0, 0, 2);
    VnicConfig client;
    client.id = kClientVnic;
    client.addr = OverlayAddr{kVpc, client_ip_};
    client.profile.synthetic_rule_bytes = 1 << 20;
    VnicConfig server;
    server.id = kServerVnic;
    server.addr = OverlayAddr{kVpc, server_ip_};
    server.profile.synthetic_rule_bytes = 4 << 20;
    bed_.add_vnic(0, client);
    bed_.add_vnic(1, server);
    bed_.vswitch(0).set_vm_delivery(
        [this](VnicId, const net::Packet& p) { client_rx_.push_back(p); });
    bed_.vswitch(1).set_vm_delivery(
        [this](VnicId, const net::Packet& p) { server_rx_.push_back(p); });
  }

  static core::TestbedConfig make_config() {
    core::TestbedConfig cfg;
    cfg.num_vswitches = 12;
    cfg.controller.auto_offload = false;  // tests trigger explicitly
    cfg.controller.auto_scale = false;
    return cfg;
  }

  net::FiveTuple flow(std::uint16_t sport, std::uint16_t dport = 80) const {
    return net::FiveTuple{client_ip_, server_ip_, sport, dport,
                          net::IpProto::kTcp};
  }

  void client_sends(const net::FiveTuple& ft, net::TcpFlags flags) {
    bed_.vswitch(0).from_vm(kClientVnic,
                            net::make_tcp_packet(ft, flags, 100, kVpc));
  }
  void server_sends(const net::FiveTuple& ft, net::TcpFlags flags) {
    bed_.vswitch(1).from_vm(kServerVnic,
                            net::make_tcp_packet(ft, flags, 100, kVpc));
  }

  /// Runs the offload workflow to completion (config latencies ≈ 1s).
  void offload_server() {
    auto st = bed_.controller().trigger_offload(kServerVnic);
    ASSERT_TRUE(st.ok()) << st.error().message;
    bed_.run_for(seconds(4));
    ASSERT_EQ(bed_.vswitch(1).vnic(kServerVnic)->mode(), VnicMode::kOffloaded);
  }

  /// An FE node of the server vNIC that is NOT the client's vSwitch (node
  /// 0 can legitimately be selected as an FE — the pool reuses vSwitches
  /// that host their own vNICs — but crashing it would kill the client).
  sim::NodeId victim_fe() {
    for (sim::NodeId n : bed_.controller().fe_nodes_of(kServerVnic)) {
      if (n != 0) return n;
    }
    return sim::kInvalidNode;
  }

  std::size_t total_fe_cache_entries() {
    std::size_t n = 0;
    for (sim::NodeId node : bed_.controller().fe_nodes_of(kServerVnic)) {
      auto* fe = bed_.vswitch(node).frontend(kServerVnic);
      if (fe != nullptr) n += fe->flow_cache.size();
    }
    return n;
  }

  core::Testbed bed_;
  net::Ipv4Addr client_ip_, server_ip_;
  std::vector<net::Packet> client_rx_, server_rx_;
};

TEST_F(NezhaCoreTest, OffloadProvisionsFourFrontends) {
  offload_server();
  const auto fes = bed_.controller().fe_nodes_of(kServerVnic);
  EXPECT_EQ(fes.size(), 4u);
  for (sim::NodeId node : fes) {
    EXPECT_NE(bed_.vswitch(node).frontend(kServerVnic), nullptr);
    EXPECT_NE(node, 1u);  // never the BE itself
  }
  // Final stage: local rule tables are gone; only the 2KB BE metadata stays.
  EXPECT_FALSE(bed_.vswitch(1).vnic(kServerVnic)->has_local_tables());
  EXPECT_TRUE(bed_.controller().is_offloaded(kServerVnic));
  EXPECT_EQ(bed_.controller().offload_events(), 1u);
}

TEST_F(NezhaCoreTest, OffloadReleasesRuleMemory) {
  const std::size_t before = bed_.vswitch(1).rule_memory().used();
  offload_server();
  const std::size_t after = bed_.vswitch(1).rule_memory().used();
  // The 4MB synthetic rules are released; the 2KB BE metadata remains.
  EXPECT_LT(after, before);
  EXPECT_GE(before - after, (4u << 20) - vswitch::kBackendMetadataBytes);
}

TEST_F(NezhaCoreTest, RxPathThroughFrontendDelivers) {
  offload_server();
  client_sends(flow(40000), net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(300));  // allow learning + forwarding
  ASSERT_EQ(server_rx_.size(), 1u);
  // The packet was processed by exactly one FE (pre-actions lookup there)
  // and finalized at the BE.
  EXPECT_EQ(total_fe_cache_entries(), 1u);
  EXPECT_EQ(bed_.vswitch(1).counters().get("drop.stale_route"), 0u);
  // BE session state recorded the first direction as RX.
  const auto key = flow::SessionKey::from_packet(kVpc, flow(40000));
  const auto* entry = bed_.vswitch(1).sessions().find(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state.first_dir, flow::FirstDirection::kRx);
}

TEST_F(NezhaCoreTest, TxPathCarriesStateThroughFrontend) {
  offload_server();
  // Server-initiated flow: BE encapsulates its state into the packet, the
  // FE finalizes and forwards to the client.
  auto ft = flow(41000).reversed();  // server → client
  server_sends(ft, net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(300));
  ASSERT_EQ(client_rx_.size(), 1u);
  EXPECT_EQ(client_rx_[0].inner.ft.src_ip, server_ip_);
  // The BE ran no slow-path lookup (it has no tables); the FE did.
  EXPECT_EQ(bed_.vswitch(1).slow_path_lookups(), 0u);
  EXPECT_EQ(total_fe_cache_entries(), 1u);
}

TEST_F(NezhaCoreTest, TrafficDuringOffloadTransitionIsNotLost) {
  // Start continuous traffic, trigger the offload mid-stream, and verify
  // the dual-running stage masks the transition (no stale-route drops, all
  // packets delivered).
  int sent = 0;
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [&]() {
    if (bed_.loop().now() > seconds(5)) return;
    client_sends(flow(static_cast<std::uint16_t>(42000 + (sent % 100))),
                 net::TcpFlags{.ack = true});
    ++sent;
    bed_.loop().schedule_after(milliseconds(10), *pump);
  };
  bed_.loop().schedule_after(milliseconds(0), *pump);
  bed_.run_for(milliseconds(500));
  auto st = bed_.controller().trigger_offload(kServerVnic);
  ASSERT_TRUE(st.ok());
  bed_.run_for(seconds(6));
  EXPECT_EQ(bed_.vswitch(1).counters().get("drop.stale_route"), 0u);
  EXPECT_EQ(static_cast<int>(server_rx_.size()), sent);
}

TEST_F(NezhaCoreTest, StatefulAclAcrossOffload) {
  // §5.1 end to end, with the session established BEFORE the offload and
  // exercised after: state continuity at the BE is what keeps the ACL
  // decision stable.
  auto* rules = bed_.vswitch(1).vnic(kServerVnic)->rules();
  rules->acl().add_rule(tables::AclRule{
      .priority = 1,
      .direction = flow::Direction::kRx,
      .verdict = flow::Verdict::kDrop});
  rules->commit_update();

  // Server initiates → first_dir TX recorded locally.
  auto server_ft = flow(43000).reversed();
  server_sends(server_ft, net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(50));
  ASSERT_EQ(client_rx_.size(), 1u);

  offload_server();

  // Client response arrives via an FE; its RX pre-action says drop, but the
  // BE state says the session is TX-initiated → accept.
  client_sends(server_ft.reversed(), net::TcpFlags{.syn = true, .ack = true});
  bed_.run_for(milliseconds(300));
  EXPECT_EQ(server_rx_.size(), 1u);

  // An unsolicited flow from the client is still dropped (at the BE, using
  // FE-carried pre-actions).
  client_sends(flow(43999), net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(300));
  EXPECT_EQ(server_rx_.size(), 1u);
  EXPECT_GE(bed_.vswitch(1).counters().get("drop.acl"), 1u);
}

TEST_F(NezhaCoreTest, StatefulDecapAcrossOffload) {
  // §5.2: the server vNIC is a real server behind an LB; the vSwitch must
  // record the overlay source (LB address) from the first RX packet and
  // send TX responses back to it.
  core::TestbedConfig cfg = make_config();
  core::Testbed bed(cfg);
  net::Ipv4Addr rs_ip(10, 1, 0, 2);
  net::Ipv4Addr client_overlay(203, 0, 113, 7);  // stays unchanged through LB
  VnicConfig rs;
  rs.id = 5;
  rs.addr = OverlayAddr{kVpc, rs_ip};
  bed.add_vnic(1, rs, /*stateful_decap=*/true);
  std::vector<net::Packet> rs_rx;
  bed.vswitch(1).set_vm_delivery(
      [&](VnicId, const net::Packet& p) { rs_rx.push_back(p); });

  auto st = bed.controller().trigger_offload(5);
  ASSERT_TRUE(st.ok()) << st.error().message;
  bed.run_for(seconds(4));

  // The "LB" lives on vSwitch 0's server: inject an encapsulated packet
  // whose overlay source is the LB's underlay address.
  net::FiveTuple ft{client_overlay, rs_ip, 55555, 80, net::IpProto::kTcp};
  net::Packet pkt = net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0,
                                         kVpc);
  const net::Ipv4Addr lb_underlay = bed.vswitch(0).underlay_ip();
  // Send to one of the FEs, as the LB's vSwitch would after learning.
  const auto fes = bed.controller().fe_nodes_of(5);
  ASSERT_FALSE(fes.empty());
  pkt.encap(lb_underlay, bed.vswitch(0).mac(),
            bed.vswitch(fes[0]).underlay_ip(), bed.vswitch(fes[0]).mac());
  bed.network().send(bed.vswitch(0).id(), bed.vswitch(fes[0]).underlay_ip(),
                     std::move(pkt));
  bed.run_for(milliseconds(50));
  ASSERT_EQ(rs_rx.size(), 1u);

  // BE recorded the LB address in the session state.
  const auto key = flow::SessionKey::from_packet(kVpc, ft);
  const auto* entry = bed.vswitch(1).sessions().find(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state.decap_src_ip, lb_underlay);

  // RS response: TX path via an FE must target the LB's underlay address,
  // not the client's (which has no route here).
  std::uint64_t delivered_to_lb = 0;
  bed.network().set_trace([&](common::TimePoint, const net::Packet& p,
                              sim::NodeId, sim::NodeId to) {
    if (to == bed.vswitch(0).id() && p.encapsulated() &&
        p.overlay->dst_ip == lb_underlay) {
      ++delivered_to_lb;
    }
  });
  bed.vswitch(1).from_vm(
      5, net::make_tcp_packet(ft.reversed(),
                              net::TcpFlags{.syn = true, .ack = true}, 0,
                              kVpc));
  bed.run_for(milliseconds(50));
  EXPECT_EQ(delivered_to_lb, 1u);
}

TEST_F(NezhaCoreTest, NotifyPacketUpdatesBackendState) {
  // A flow-statistics policy lives in the rule tables (rule-table-involved
  // state, §3.2.2). After offload the BE does not see the tables; the FE
  // must notify it on the first TX packet's cache miss.
  auto* rules = bed_.vswitch(1).vnic(kServerVnic)->rules();
  rules->stats_policy().add_policy(
      tables::Prefix::any(), flow::StatsMode::kPacketsAndBytes);
  rules->commit_update();

  offload_server();

  auto ft = flow(44000).reversed();  // server → client
  server_sends(ft, net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(300));

  // The FE detected snapshot.stats_mode (none) != rule-table stats mode
  // (packets+bytes) and sent a notify packet.
  std::uint64_t notifies = 0;
  for (sim::NodeId node : bed_.controller().fe_nodes_of(kServerVnic)) {
    notifies += bed_.vswitch(node).notify_sent();
  }
  EXPECT_EQ(notifies, 1u);
  EXPECT_EQ(bed_.vswitch(1).counters().get("notify_received"), 1u);
  const auto key = flow::SessionKey::from_packet(kVpc, ft);
  const auto* entry = bed_.vswitch(1).sessions().find(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state.stats_mode, flow::StatsMode::kPacketsAndBytes);

  // Subsequent TX packets carry the updated state: no further notifies.
  server_sends(ft, net::TcpFlags{.ack = true});
  bed_.run_for(milliseconds(300));
  std::uint64_t notifies_after = 0;
  for (sim::NodeId node : bed_.controller().fe_nodes_of(kServerVnic)) {
    notifies_after += bed_.vswitch(node).notify_sent();
  }
  EXPECT_EQ(notifies_after, 1u);
}

TEST_F(NezhaCoreTest, FlowsSpreadAcrossFrontends) {
  offload_server();
  for (int i = 0; i < 200; ++i) {
    server_sends(flow(static_cast<std::uint16_t>(45000 + i)).reversed(),
                 net::TcpFlags{.syn = true});
  }
  bed_.run_for(milliseconds(500));
  // Every FE should have cached a meaningful share of the 200 flows.
  std::size_t with_load = 0;
  for (sim::NodeId node : bed_.controller().fe_nodes_of(kServerVnic)) {
    const auto* fe = bed_.vswitch(node).frontend(kServerVnic);
    ASSERT_NE(fe, nullptr);
    if (fe->flow_cache.size() >= 20) ++with_load;
  }
  EXPECT_EQ(with_load, 4u);
  EXPECT_EQ(total_fe_cache_entries(), 200u);
}

TEST_F(NezhaCoreTest, ScaleOutAddsFrontends) {
  offload_server();
  auto st = bed_.controller().scale_out(kServerVnic, 4);
  ASSERT_TRUE(st.ok()) << st.error().message;
  bed_.run_for(seconds(2));
  EXPECT_EQ(bed_.controller().fe_nodes_of(kServerVnic).size(), 8u);
  EXPECT_EQ(bed_.controller().scale_out_events(), 1u);
  // New flows keep flowing after the rehash.
  client_sends(flow(46000), net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(300));
  EXPECT_EQ(server_rx_.size(), 1u);
}

TEST_F(NezhaCoreTest, ScaleInEvictsAndReplenishes) {
  offload_server();
  const sim::NodeId evicted = victim_fe();
  bed_.controller().scale_in_vswitch(evicted);
  bed_.run_for(seconds(2));
  const auto after = bed_.controller().fe_nodes_of(kServerVnic);
  // min_fes = 4 is maintained: the evicted FE was replaced elsewhere.
  EXPECT_EQ(after.size(), 4u);
  EXPECT_EQ(std::count(after.begin(), after.end(), evicted), 0);
  EXPECT_EQ(bed_.controller().scale_in_events(), 1u);
  EXPECT_EQ(bed_.controller().scale_out_events(), 1u);
}

TEST_F(NezhaCoreTest, FailoverReplacesCrashedFrontend) {
  offload_server();
  bed_.watch_fe_hosts();
  bed_.monitor().start();
  bed_.run_for(seconds(2));  // monitoring warm-up, all healthy

  const sim::NodeId crashed = victim_fe();
  bed_.network().crash(crashed);
  bed_.run_for(seconds(4));

  EXPECT_EQ(bed_.monitor().crashes_declared(), 1u);
  EXPECT_EQ(bed_.controller().failover_events(), 1u);
  const auto after = bed_.controller().fe_nodes_of(kServerVnic);
  EXPECT_EQ(after.size(), 4u);
  EXPECT_EQ(std::count(after.begin(), after.end(), crashed), 0);

  // Traffic works again end to end.
  for (int i = 0; i < 40; ++i) {
    client_sends(flow(static_cast<std::uint16_t>(47000 + i)),
                 net::TcpFlags{.syn = true});
  }
  bed_.run_for(milliseconds(500));
  EXPECT_EQ(server_rx_.size(), 40u);
}

TEST_F(NezhaCoreTest, WidespreadFailureGuardSuppresses) {
  offload_server();
  bed_.watch_fe_hosts();
  bed_.monitor().start();
  bed_.run_for(seconds(1));
  // Crash 3 of the 4 FE hosts: the §C.2 guard must stop the cascade.
  const auto fes = bed_.controller().fe_nodes_of(kServerVnic);
  bed_.network().crash(fes[0]);
  bed_.network().crash(fes[1]);
  bed_.network().crash(fes[2]);
  bed_.run_for(seconds(5));
  EXPECT_GT(bed_.monitor().declarations_suppressed(), 0u);
  // At most half the targets were auto-declared.
  EXPECT_LE(bed_.monitor().crashes_declared(), 2u);
}

TEST_F(NezhaCoreTest, FallbackRestoresLocalProcessing) {
  offload_server();
  auto st = bed_.controller().trigger_fallback(kServerVnic);
  ASSERT_TRUE(st.ok()) << st.error().message;
  bed_.run_for(seconds(3));
  EXPECT_EQ(bed_.vswitch(1).vnic(kServerVnic)->mode(), VnicMode::kLocal);
  EXPECT_FALSE(bed_.controller().is_offloaded(kServerVnic));
  // FEs were dismantled after the retention window.
  for (std::size_t i = 0; i < bed_.size(); ++i) {
    EXPECT_EQ(bed_.vswitch(i).frontend(kServerVnic), nullptr);
  }
  // Traffic flows locally again.
  client_sends(flow(48000), net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(300));
  EXPECT_EQ(server_rx_.size(), 1u);
  EXPECT_GT(bed_.vswitch(1).slow_path_lookups(), 0u);
}

TEST_F(NezhaCoreTest, BackendMigrationIsInstant) {
  offload_server();
  vswitch::VSwitch& new_home = bed_.vswitch(7);
  std::vector<net::Packet> new_home_rx;
  new_home.set_vm_delivery(
      [&](VnicId, const net::Packet& p) { new_home_rx.push_back(p); });

  const common::TimePoint before = bed_.loop().now();
  auto st = bed_.controller().migrate_backend(kServerVnic, &new_home);
  ASSERT_TRUE(st.ok()) << st.error().message;
  // §7.2: takes effect in <1ms of simulated time (pure config update).
  EXPECT_LT(bed_.loop().now() - before, milliseconds(1));

  client_sends(flow(49000), net::TcpFlags{.syn = true});
  bed_.run_for(milliseconds(300));
  EXPECT_EQ(new_home_rx.size(), 1u);
  EXPECT_EQ(server_rx_.size(), 0u);
}

TEST_F(NezhaCoreTest, OffloadRejectsWhenPoolTooSmall) {
  core::TestbedConfig cfg = make_config();
  cfg.num_vswitches = 3;  // home + 2 candidates < 4 required
  core::Testbed tiny(cfg);
  VnicConfig v;
  v.id = 3;
  v.addr = OverlayAddr{kVpc, net::Ipv4Addr(10, 3, 0, 1)};
  tiny.add_vnic(0, v);
  auto st = tiny.controller().trigger_offload(3);
  EXPECT_FALSE(st.ok());
}

TEST_F(NezhaCoreTest, DoubleOffloadRejected) {
  offload_server();
  EXPECT_FALSE(bed_.controller().trigger_offload(kServerVnic).ok());
}

TEST_F(NezhaCoreTest, CompletionTimeRecorded) {
  offload_server();
  ASSERT_EQ(bed_.controller().offload_completion().count(), 1u);
  const double ms = bed_.controller().offload_completion().mean();
  // Order of magnitude of Table 4: hundreds of ms to a few seconds.
  EXPECT_GT(ms, 200.0);
  EXPECT_LT(ms, 5000.0);
}

}  // namespace
}  // namespace nezha
