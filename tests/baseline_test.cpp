// Tests for the baselines: analytic capacity model (Fig 9's shapes) and
// the Sirius bucket/replication model.
#include <gtest/gtest.h>

#include "src/baseline/capacity_model.h"
#include "src/baseline/sirius_model.h"
#include "src/common/rng.h"

namespace nezha::baseline {
namespace {

TEST(CapacityModelTest, NezhaCpsPlateausAtVmKernel) {
  DeploymentParams p;
  const double base = CapacityModel::local_cps(p);
  double prev = base;
  bool plateaued = false;
  for (std::size_t fes = 1; fes <= 16; ++fes) {
    const double cps = CapacityModel::nezha_cps(p, fes);
    EXPECT_GE(cps + 1e-9, prev);
    if (cps == prev && fes > 2) plateaued = true;
    prev = cps;
  }
  EXPECT_TRUE(plateaued);
  // Fig 9: the plateau sits around 3.3x of the local baseline.
  const double gain = CapacityModel::nezha_cps(p, 8) / base;
  EXPECT_GT(gain, 2.5);
  EXPECT_LT(gain, 4.5);
}

TEST(CapacityModelTest, FlowGainFeBoundThenBeBound) {
  DeploymentParams p;
  const auto base = CapacityModel::local_max_flows(p);
  // Below the knee, adding FEs adds flow capacity linearly.
  const auto one = CapacityModel::nezha_max_flows(p, 1);
  const auto two = CapacityModel::nezha_max_flows(p, 2);
  EXPECT_EQ(two, 2 * one);
  // Above ~4 FEs the BE state memory binds: the gain stops growing.
  const auto four = CapacityModel::nezha_max_flows(p, 4);
  const auto eight = CapacityModel::nezha_max_flows(p, 8);
  EXPECT_EQ(four, eight);
  const double gain = static_cast<double>(eight) / static_cast<double>(base);
  // Fig 9: ≈3.8x.
  EXPECT_GT(gain, 3.0);
  EXPECT_LT(gain, 5.0);
}

TEST(CapacityModelTest, VnicGainProportionalUntilMetadataBound) {
  DeploymentParams p;
  const auto base = CapacityModel::local_max_vnics(p);
  const auto g1 = CapacityModel::nezha_max_vnics(p, 1);
  const auto g2 = CapacityModel::nezha_max_vnics(p, 2);
  const auto g4 = CapacityModel::nezha_max_vnics(p, 4);
  EXPECT_EQ(g2, 2 * g1);
  EXPECT_EQ(g4, 4 * g1);
  EXPECT_GT(g1, base);  // even one idle FE beats the starved local pool
  // The BE metadata bound (2KB per vNIC over the freed memory) caps the
  // growth far out — consistent with the paper's theoretical 1000x
  // (rule table bytes / 2KB). With enough FEs, that bound binds.
  const auto be_bound =
      (p.local_rule_free_bytes + p.freed_rule_bytes) / p.be_metadata_bytes;
  const auto cap = CapacityModel::nezha_max_vnics(p, 100000);
  EXPECT_EQ(cap, be_bound);
  // And the theoretical per-vNIC ratio matches §6.2.1's 1000x arithmetic:
  // a 2MB rule table vs 2KB BE metadata.
  EXPECT_EQ((2u << 20) / p.be_metadata_bytes, 1024u);
}

TEST(CapacityModelTest, SiriusReplicationHalvesCps) {
  EXPECT_DOUBLE_EQ(CapacityModel::sirius_cps(100000, 4), 200000.0);
  DeploymentParams p;
  // For equal per-node capacity and enough nodes, Nezha's active-active
  // pool beats Sirius' ping-pong pool until the VM kernel binds.
  const double per_node_cps = p.vswitch_cycles_per_sec / p.conn_cycles_fe;
  EXPECT_GT(CapacityModel::nezha_cps(p, 2),
            CapacityModel::sirius_cps(per_node_cps, 2));
}

net::FiveTuple tuple(std::uint16_t port) {
  return net::FiveTuple{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                        port, 80, net::IpProto::kTcp};
}

TEST(SiriusModelTest, BucketsCoverCards) {
  SiriusModel sirius(4, 64);
  std::vector<bool> seen(4, false);
  for (std::uint16_t port = 1000; port < 2000; ++port) {
    seen[sirius.card_of(tuple(port))] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(SiriusModelTest, RebalanceMovesOnlyNewAndLongLivedFlows) {
  SiriusModel sirius(2, 8);
  common::Rng rng(3);
  std::vector<net::FiveTuple> short_flows, long_flows;
  for (std::uint16_t port = 1000; port < 1200; ++port) {
    const bool long_lived = (port % 4 == 0);
    sirius.flow_started(tuple(port), long_lived);
    (long_lived ? long_flows : short_flows).push_back(tuple(port));
  }
  // Capture short flows' card assignments before the move.
  std::vector<std::size_t> before;
  for (const auto& ft : short_flows) before.push_back(sirius.card_of(ft));

  const std::size_t transfers = sirius.rebalance(2);
  // Long-lived flows in moved buckets paid a state transfer.
  EXPECT_GT(transfers, 0u);
  EXPECT_EQ(sirius.state_transfers(), transfers);
  // Existing short flows stay pinned to their original card (minimal state
  // transfer — the Sirius design point).
  for (std::size_t i = 0; i < short_flows.size(); ++i) {
    EXPECT_EQ(sirius.card_of(short_flows[i]), before[i]);
  }
}

TEST(SiriusModelTest, RebalanceReducesImbalance) {
  SiriusModel sirius(4, 64);
  for (std::uint16_t port = 1000; port < 3000; ++port) {
    sirius.flow_started(tuple(port), false);
  }
  auto loads = sirius.card_loads();
  const auto max_before = *std::max_element(loads.begin(), loads.end());
  const auto min_before = *std::min_element(loads.begin(), loads.end());
  sirius.rebalance(4);
  // New flows after the rebalance land on the reassigned buckets.
  for (std::uint16_t port = 3000; port < 5000; ++port) {
    sirius.flow_started(tuple(port), false);
  }
  loads = sirius.card_loads();
  const auto max_after = *std::max_element(loads.begin(), loads.end());
  const auto min_after = *std::min_element(loads.begin(), loads.end());
  EXPECT_LT(static_cast<double>(max_after) / std::max<std::size_t>(1, min_after),
            static_cast<double>(max_before) / std::max<std::size_t>(1, min_before) +
                0.5);
}

TEST(SiriusModelTest, FinishedFlowsReleaseState) {
  SiriusModel sirius(2, 8);
  sirius.flow_started(tuple(1000), true);
  EXPECT_EQ(sirius.live_flows(), 1u);
  sirius.flow_finished(tuple(1000));
  EXPECT_EQ(sirius.live_flows(), 0u);
}

}  // namespace
}  // namespace nezha::baseline
