// Unit tests for the rule-table layer: prefixes, ACL priority matching,
// LPM, QoS/NAT/stats-policy/policy-route tables, the vNIC-server map, and
// the full per-vNIC RuleTableSet chain with its cost model.
#include <gtest/gtest.h>

#include "src/tables/acl.h"
#include "src/tables/cost_model.h"
#include "src/tables/lpm.h"
#include "src/tables/policy_tables.h"
#include "src/tables/prefix.h"
#include "src/tables/rule_set.h"
#include "src/tables/vnic_server_map.h"

namespace nezha::tables {
namespace {

using flow::Direction;
using flow::StatsMode;
using flow::Verdict;
using net::FiveTuple;
using net::Ipv4Addr;
using net::IpProto;

TEST(PrefixTest, ContainsAndMask) {
  Prefix p{Ipv4Addr(10, 1, 0, 0), 16};
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 1, 2, 3)));
  EXPECT_FALSE(p.contains(Ipv4Addr(10, 2, 0, 1)));
  EXPECT_EQ(p.mask(), 0xffff0000u);
  EXPECT_TRUE(Prefix::any().contains(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_EQ(Prefix::any().mask(), 0u);
  Prefix host = Prefix::host(Ipv4Addr(9, 9, 9, 9));
  EXPECT_TRUE(host.contains(Ipv4Addr(9, 9, 9, 9)));
  EXPECT_FALSE(host.contains(Ipv4Addr(9, 9, 9, 8)));
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(PortRangeTest, Bounds) {
  PortRange r{100, 200};
  EXPECT_TRUE(r.contains(100));
  EXPECT_TRUE(r.contains(200));
  EXPECT_FALSE(r.contains(99));
  EXPECT_FALSE(r.contains(201));
  EXPECT_TRUE(PortRange::any().contains(0));
  EXPECT_TRUE(PortRange::exact(443).contains(443));
  EXPECT_FALSE(PortRange::exact(443).contains(444));
}

FiveTuple web_flow() {
  return FiveTuple{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 1), 40000, 80,
                   IpProto::kTcp};
}

TEST(AclTest, DefaultVerdictWhenEmpty) {
  AclTable acl(Verdict::kDrop);
  EXPECT_EQ(acl.lookup(web_flow(), Direction::kTx), Verdict::kDrop);
  acl.set_default_verdict(Verdict::kAccept);
  EXPECT_EQ(acl.lookup(web_flow(), Direction::kTx), Verdict::kAccept);
}

TEST(AclTest, PriorityOrderWins) {
  AclTable acl(Verdict::kAccept);
  acl.add_rule(AclRule{.priority = 20,
                       .dst = Prefix{Ipv4Addr(10, 0, 1, 0), 24},
                       .verdict = Verdict::kAccept});
  acl.add_rule(AclRule{.priority = 10,
                       .dst = Prefix{Ipv4Addr(10, 0, 1, 0), 24},
                       .dst_ports = PortRange::exact(80),
                       .verdict = Verdict::kDrop});
  EXPECT_EQ(acl.lookup(web_flow(), Direction::kTx), Verdict::kDrop);
  FiveTuple other = web_flow();
  other.dst_port = 443;
  EXPECT_EQ(acl.lookup(other, Direction::kTx), Verdict::kAccept);
}

TEST(AclTest, DirectionScopedRules) {
  AclTable acl(Verdict::kAccept);
  acl.add_rule(AclRule{.priority = 1,
                       .direction = Direction::kRx,
                       .verdict = Verdict::kDrop});
  EXPECT_EQ(acl.lookup(web_flow(), Direction::kTx), Verdict::kAccept);
  EXPECT_EQ(acl.lookup(web_flow(), Direction::kRx), Verdict::kDrop);
}

TEST(AclTest, ProtoAndPortRangeMatch) {
  AclTable acl(Verdict::kAccept);
  acl.add_rule(AclRule{.priority = 1,
                       .dst_ports = PortRange{1000, 2000},
                       .proto = IpProto::kUdp,
                       .verdict = Verdict::kDrop});
  FiveTuple udp = web_flow();
  udp.proto = IpProto::kUdp;
  udp.dst_port = 1500;
  EXPECT_EQ(acl.lookup(udp, Direction::kTx), Verdict::kDrop);
  udp.dst_port = 2500;
  EXPECT_EQ(acl.lookup(udp, Direction::kTx), Verdict::kAccept);
  FiveTuple tcp = udp;
  tcp.proto = IpProto::kTcp;
  tcp.dst_port = 1500;
  EXPECT_EQ(acl.lookup(tcp, Direction::kTx), Verdict::kAccept);
}

TEST(AclTest, MemoryGrowsWithRules) {
  AclTable acl;
  EXPECT_EQ(acl.memory_bytes(), 0u);
  for (int i = 0; i < 10; ++i) {
    acl.add_rule(AclRule{.priority = static_cast<std::uint32_t>(i)});
  }
  EXPECT_EQ(acl.memory_bytes(), 10 * AclTable::kRuleBytes);
  acl.clear();
  EXPECT_EQ(acl.rule_count(), 0u);
}

TEST(LpmTest, LongestPrefixWins) {
  LpmTable<int> lpm;
  lpm.insert(Prefix{Ipv4Addr(10, 0, 0, 0), 8}, 8);
  lpm.insert(Prefix{Ipv4Addr(10, 1, 0, 0), 16}, 16);
  lpm.insert(Prefix{Ipv4Addr(10, 1, 2, 0), 24}, 24);
  ASSERT_NE(lpm.lookup(Ipv4Addr(10, 1, 2, 3)), nullptr);
  EXPECT_EQ(*lpm.lookup(Ipv4Addr(10, 1, 2, 3)), 24);
  EXPECT_EQ(*lpm.lookup(Ipv4Addr(10, 1, 9, 9)), 16);
  EXPECT_EQ(*lpm.lookup(Ipv4Addr(10, 9, 9, 9)), 8);
  EXPECT_EQ(lpm.lookup(Ipv4Addr(11, 0, 0, 1)), nullptr);
}

TEST(LpmTest, DefaultRouteMatchesAll) {
  LpmTable<int> lpm;
  lpm.insert(Prefix::any(), 0);
  EXPECT_NE(lpm.lookup(Ipv4Addr(1, 2, 3, 4)), nullptr);
}

TEST(LpmTest, EraseAndOverwrite) {
  LpmTable<int> lpm;
  Prefix p{Ipv4Addr(10, 0, 0, 0), 8};
  lpm.insert(p, 1);
  lpm.insert(p, 2);  // overwrite, size stays 1
  EXPECT_EQ(lpm.size(), 1u);
  EXPECT_EQ(*lpm.find_exact(p), 2);
  EXPECT_TRUE(lpm.erase(p));
  EXPECT_FALSE(lpm.erase(p));
  EXPECT_EQ(lpm.lookup(Ipv4Addr(10, 1, 1, 1)), nullptr);
}

TEST(QosTest, PrefixOverridesDefault) {
  QosTable qos;
  qos.set_default_rate_kbps(0);
  qos.add_rate(Prefix{Ipv4Addr(10, 0, 1, 0), 24}, 5000);
  EXPECT_EQ(qos.lookup(Ipv4Addr(10, 0, 1, 50)), 5000u);
  EXPECT_EQ(qos.lookup(Ipv4Addr(10, 0, 2, 50)), 0u);
}

TEST(NatTest, DeterministicAllocation) {
  NatTable nat;
  nat.add_pool(Prefix{Ipv4Addr(8, 8, 0, 0), 16},
               NatTable::Pool{.base_ip = Ipv4Addr(100, 64, 0, 0),
                              .base_port = 1024,
                              .ip_count = 4,
                              .ports_per_ip = 1000});
  FiveTuple ft = web_flow();
  ft.dst_ip = Ipv4Addr(8, 8, 8, 8);
  auto r1 = nat.lookup(ft);
  auto r2 = nat.lookup(ft);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->ip, r2->ip);
  EXPECT_EQ(r1->port, r2->port);
  // Allocation stays inside the pool.
  EXPECT_GE(r1->ip.value(), Ipv4Addr(100, 64, 0, 0).value());
  EXPECT_LT(r1->ip.value(), Ipv4Addr(100, 64, 0, 4).value());
  EXPECT_GE(r1->port, 1024);
  EXPECT_LT(r1->port, 2024);
  // Non-matching destinations get no NAT.
  EXPECT_FALSE(nat.lookup(web_flow()).has_value());
}

TEST(StatsPolicyTest, VersionBumpsOnChange) {
  StatsPolicyTable t;
  const auto v0 = t.version();
  t.add_policy(Prefix{Ipv4Addr(10, 0, 0, 0), 8}, StatsMode::kBytes);
  EXPECT_GT(t.version(), v0);
  EXPECT_EQ(t.lookup(Ipv4Addr(10, 1, 1, 1)), StatsMode::kBytes);
  EXPECT_EQ(t.lookup(Ipv4Addr(11, 1, 1, 1)), StatsMode::kNone);
}

TEST(PolicyRouteTest, OverrideOptional) {
  PolicyRouteTable t;
  EXPECT_FALSE(t.lookup(Ipv4Addr(10, 1, 1, 1)).has_value());
  t.add_override(Prefix{Ipv4Addr(10, 1, 0, 0), 16},
                 flow::NextHop{Ipv4Addr(172, 16, 0, 9), net::MacAddr(9ULL)});
  auto hop = t.lookup(Ipv4Addr(10, 1, 1, 1));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->ip, Ipv4Addr(172, 16, 0, 9));
}

TEST(VnicServerMapTest, PlacementVersioning) {
  VnicServerMap map;
  OverlayAddr addr{7, Ipv4Addr(10, 0, 0, 5)};
  map.set_placement(addr, 101,
                    {Location{Ipv4Addr(172, 16, 0, 1), net::MacAddr(1ULL)}});
  const auto* e1 = map.lookup(addr);
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e1->vnic, 101u);
  EXPECT_FALSE(e1->placement.offloaded());
  const auto v1 = e1->placement.version;

  // Offload: placement becomes a 4-FE set with a newer version.
  std::vector<Location> fes;
  for (std::uint32_t i = 0; i < 4; ++i) {
    fes.push_back(Location{Ipv4Addr(172, 16, 1, static_cast<uint8_t>(i + 1)),
                           net::MacAddr(i + 10ULL)});
  }
  map.set_placement(addr, 101, fes);
  const auto* e2 = map.lookup(addr);
  ASSERT_NE(e2, nullptr);
  EXPECT_TRUE(e2->placement.offloaded());
  EXPECT_GT(e2->placement.version, v1);
  EXPECT_EQ(e2->placement.locations.size(), 4u);

  EXPECT_TRUE(map.erase(addr));
  EXPECT_EQ(map.lookup(addr), nullptr);
}

TEST(VnicServerMapTest, TenantsIsolatedByVpc) {
  VnicServerMap map;
  map.set_placement(OverlayAddr{1, Ipv4Addr(10, 0, 0, 5)}, 1,
                    {Location{Ipv4Addr(172, 16, 0, 1), net::MacAddr(1ULL)}});
  EXPECT_EQ(map.lookup(OverlayAddr{2, Ipv4Addr(10, 0, 0, 5)}), nullptr);
}

RuleTableSet make_rule_set(bool acl_enabled = true, int tables = 5) {
  RuleTableSet rs(RuleSetProfile{.acl_enabled = acl_enabled,
                                 .num_tables = tables,
                                 .synthetic_rule_bytes = 1 << 20});
  rs.acl().add_rule(AclRule{.priority = 10,
                            .direction = Direction::kRx,
                            .verdict = Verdict::kDrop});
  rs.qos().add_rate(Prefix{Ipv4Addr(10, 0, 1, 0), 24}, 10000);
  rs.stats_policy().add_policy(Prefix{Ipv4Addr(10, 0, 1, 0), 24},
                               StatsMode::kPacketsAndBytes);
  rs.commit_update();
  return rs;
}

TEST(RuleTableSetTest, ChainProducesBidirectionalPreActions) {
  auto rs = make_rule_set();
  auto pre = rs.lookup(web_flow());
  EXPECT_EQ(pre.tx.acl_verdict, Verdict::kAccept);
  EXPECT_EQ(pre.rx.acl_verdict, Verdict::kDrop);  // stateful-ACL setup
  EXPECT_EQ(pre.tx.rate_limit_kbps, 10000u);
  EXPECT_EQ(pre.tx.stats_mode, StatsMode::kPacketsAndBytes);
  EXPECT_EQ(pre.rule_version, rs.version());
}

TEST(RuleTableSetTest, AclBypassProfile) {
  auto rs = make_rule_set(/*acl_enabled=*/false);
  auto pre = rs.lookup(web_flow());
  // Transit-router profile: ACL bypassed, everything accepted at ACL level.
  EXPECT_EQ(pre.rx.acl_verdict, Verdict::kAccept);
}

TEST(RuleTableSetTest, CommitUpdateBumpsVersion) {
  auto rs = make_rule_set();
  const auto v = rs.version();
  rs.acl().add_rule(AclRule{.priority = 5});
  rs.commit_update();
  EXPECT_GT(rs.version(), v);
  EXPECT_EQ(rs.lookup(web_flow()).rule_version, rs.version());
}

TEST(RuleTableSetTest, LookupCyclesGrowWithRulesAndTables) {
  CostModel model;
  auto rs5 = make_rule_set(true, 5);
  auto rs12 = make_rule_set(true, 12);
  EXPECT_GT(rs12.lookup_cycles(model), rs5.lookup_cycles(model));

  auto rs_rules = make_rule_set(true, 5);
  for (int i = 0; i < 1000; ++i) {
    rs_rules.acl().add_rule(AclRule{.priority = static_cast<uint32_t>(i + 100)});
  }
  EXPECT_GT(rs_rules.lookup_cycles(model), rs5.lookup_cycles(model));

  auto rs_noacl = make_rule_set(false, 5);
  EXPECT_LT(rs_noacl.lookup_cycles(model), rs5.lookup_cycles(model));
}

TEST(RuleTableSetTest, MemoryIncludesSyntheticBulk) {
  auto rs = make_rule_set();
  EXPECT_GE(rs.memory_bytes(), 1u << 20);
  EXPECT_GT(rs.memory_bytes(), rs.acl().memory_bytes());
}

TEST(RuleTableSetTest, MirrorPolicyFillsPreAction) {
  auto rs = make_rule_set();
  EXPECT_FALSE(rs.lookup(web_flow()).tx.mirror);
  const flow::NextHop collector{Ipv4Addr(172, 31, 0, 9), net::MacAddr(0x99ULL)};
  rs.mirrors().add_mirror(Prefix{Ipv4Addr(10, 0, 1, 0), 24}, collector);
  rs.commit_update();
  auto pre = rs.lookup(web_flow());
  EXPECT_TRUE(pre.tx.mirror);
  EXPECT_TRUE(pre.rx.mirror);
  EXPECT_EQ(pre.tx.mirror_target, collector);
  // Non-matching destinations stay unmirrored.
  FiveTuple other = web_flow();
  other.dst_ip = Ipv4Addr(10, 0, 9, 1);
  EXPECT_FALSE(rs.lookup(other).tx.mirror);
}

TEST(CostModelTest, TableA1Anchors) {
  // 8 cores * 2.5GHz = 20e9 cycles/s. Slow-path packet cost with 0 ACL
  // rules and 64B packets should land near 3.0k cycles so that throughput
  // ≈ 6.6 Mpps (Table A1's top-left cell).
  CostModel m;
  const double chain = m.slow_path_chain_cycles(0, 5, true);
  const double per_pkt = chain + m.parse_cycles + m.session_insert_cycles +
                         m.encap_cycles + 64.0 * m.per_byte_cycles;
  const double mpps = 20e9 / per_pkt / 1e6;
  EXPECT_GT(mpps, 6.0);
  EXPECT_LT(mpps, 7.3);
}

}  // namespace
}  // namespace nezha::tables
