// Churn-consistency suite for the FE-selection policy lab (DESIGN.md §14).
//
// Every policy must survive the full control-plane churn repertoire —
// scale-out, scale-in, FE crash, fleet-wide reseed, and (push-aside only)
// policy-triggered displacement — with the InvariantChecker green
// throughout and traffic still completing afterwards. Each stimulus is
// record()ed into the checker's replay ring, so a red run prints the
// (seed, stimulus trace) pair that reproduces it.
//
// Churn is applied quiescently between run_for() windows; the checker runs
// between windows too (the sharded-bed rule). A separate threaded case
// reruns the reseed churn at two worker threads and demands the identical
// fingerprint — worker count must never leak into the outcome, even across
// a mid-traffic policy stimulus (this case is in the TSan CI job's net).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/invariants.h"
#include "src/core/testbed.h"
#include "src/policy/fe_policy.h"
#include "src/vswitch/resources.h"
#include "src/workload/fleet_model.h"

namespace nezha {
namespace {

using policy::PolicyKind;

enum class Churn { kScaleOut, kScaleIn, kFeCrash, kReseed };

const char* to_string(Churn c) {
  switch (c) {
    case Churn::kScaleOut: return "ScaleOut";
    case Churn::kScaleIn: return "ScaleIn";
    case Churn::kFeCrash: return "FeCrash";
    case Churn::kReseed: return "Reseed";
  }
  return "?";
}

constexpr std::uint64_t kNewSeed = 0x5eedf00d;

struct ChurnRun {
  std::uint64_t fingerprint = 0;
  std::uint64_t completed_before = 0;
  std::uint64_t completed_after = 0;
  tables::VnicId target = 0;
  sim::NodeId victim = 0;
  std::vector<sim::NodeId> pool_before;
  std::vector<sim::NodeId> pool_after;
  std::map<tables::VnicId, std::vector<sim::NodeId>> all_pools;
  bool churn_ok = false;
  bool seeds_uniform = false;
  std::uint64_t seed_seen = 0;
  std::uint64_t displacements = 0;
  std::size_t violations = 0;
  std::string report;
};

std::uint64_t total_completed(const workload::FleetScenario& sc) {
  std::uint64_t sum = 0;
  for (const auto& wl : sc.workloads()) sum += wl->completed();
  return sum;
}

/// One churn experiment on a 16-host, 2-shard Clos bed: offload the fleet,
/// run traffic, apply the stimulus quiescently, keep running with invariant
/// checks between every window. `threads` > 1 is only safe for Churn
/// stimuli with no scheduled control-plane continuations (kReseed applies
/// synchronously; the others schedule config pushes that mutate vSwitches
/// from the controller's shard-0 loop).
ChurnRun run_churn(PolicyKind kind, Churn churn, std::uint64_t seed,
                   int threads = 1) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(
      16, /*hosts_per_leaf=*/4, /*num_spines=*/4, /*oversubscription=*/2.0);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.controller.fe_policy = kind;
  cfg.shards = 2;
  cfg.threads = 1;
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = 3;
  sc.base_attempts_per_sec = 400.0;
  sc.seed = seed;
  workload::FleetScenario scenario(bed, sc);
  core::InvariantChecker checker(bed,
                                 core::InvariantCheckerConfig{.seed = seed});

  scenario.deploy();
  checker.record("deploy pairs=3 policy=" +
                 std::string(policy::to_string(kind)));
  scenario.offload_all();
  checker.record("offload_all");
  // Let every offload workflow (and its config-push tail) finish before
  // traffic threads; threaded runs get a longer settle for the p999 tail.
  bed.run_for(common::seconds(threads > 1 ? 3 : 1));
  checker.check();

  ChurnRun r;
  for (tables::VnicId id : bed.controller().vnic_ids()) {
    if (bed.controller().is_offloaded(id)) {
      r.target = id;
      break;
    }
  }
  EXPECT_NE(r.target, 0u) << "no offloaded vNIC to churn";
  r.pool_before = bed.controller().fe_nodes_of(r.target);

  bed.set_threads(threads);
  scenario.start_traffic();
  checker.record("start_traffic");
  bed.run_for(common::milliseconds(250));
  checker.check();

  // ------------------------------------------------ the stimulus (quiescent)
  r.completed_before = total_completed(scenario);
  core::Controller& ctrl = bed.controller();
  switch (churn) {
    case Churn::kScaleOut:
      if (kind == PolicyKind::kLoadAwareWeighted) {
        // Exercise the telemetry-driven path: rank and pick with a real
        // weight book derived from the live fleet sample.
        ctrl.refresh_fleet_sample();
        ctrl.publish_fe_weights();
        checker.record("publish_fe_weights version!=0");
      }
      r.churn_ok = ctrl.scale_out(r.target, 4).ok();
      checker.record("scale_out vnic=" + std::to_string(r.target) + " +4");
      break;
    case Churn::kScaleIn:
      r.victim = r.pool_before.front();
      ctrl.scale_in_vswitch(r.victim);
      r.churn_ok = true;
      checker.record("scale_in node=" + std::to_string(r.victim));
      break;
    case Churn::kFeCrash:
      r.victim = r.pool_before.back();
      for (std::uint32_t s = 0; s < bed.shard_count(); ++s) {
        bed.network_of_shard(s).crash(r.victim);
      }
      checker.record("crash node=" + std::to_string(r.victim));
      ctrl.handle_fe_crash(r.victim);
      r.churn_ok = true;
      break;
    case Churn::kReseed:
      ctrl.reseed_fe_hash(kNewSeed);
      r.churn_ok = true;
      checker.record("reseed_fe_hash seed=" + std::to_string(kNewSeed));
      break;
  }

  // Post-churn traffic: mid-flight config pushes, re-learning senders and
  // rehashed flows all land inside these checked windows.
  for (int w = 0; w < 4; ++w) {
    bed.run_for(common::milliseconds(250));
    checker.check();
  }
  scenario.stop_traffic();
  bed.run_for(common::milliseconds(500));
  checker.check();

  r.fingerprint = scenario.fingerprint();
  r.completed_after = total_completed(scenario);
  r.pool_after = bed.controller().fe_nodes_of(r.target);
  for (tables::VnicId id : bed.controller().vnic_ids()) {
    r.all_pools[id] = bed.controller().fe_nodes_of(id);
  }
  r.seeds_uniform = true;
  r.seed_seen = bed.vswitch(0).fe_hash_seed();
  for (std::size_t i = 1; i < bed.size(); ++i) {
    if (bed.vswitch(i).fe_hash_seed() != r.seed_seen) r.seeds_uniform = false;
  }
  r.displacements = ctrl.displacement_events();
  r.violations = checker.violations().size();
  r.report = checker.ok() ? "" : checker.report();
  return r;
}

struct ChurnCase {
  PolicyKind kind;
  Churn churn;
};

class PolicyChurnMatrixTest : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(PolicyChurnMatrixTest, SurvivesChurnWithInvariantsGreen) {
  const ChurnCase c = GetParam();
  const ChurnRun r = run_churn(c.kind, c.churn, 23);

  EXPECT_EQ(r.violations, 0u) << r.report;
  EXPECT_TRUE(r.churn_ok);
  EXPECT_GT(r.completed_after, r.completed_before)
      << "no connections completed after the churn stimulus";
  EXPECT_EQ(r.pool_before.size(), 4u);

  switch (c.churn) {
    case Churn::kScaleOut: {
      EXPECT_EQ(r.pool_after.size(), 8u);
      auto sorted = r.pool_after;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end())
          << "duplicate FE node in the scaled-out pool";
      break;
    }
    case Churn::kScaleIn:
      // The evicting host leaves the pool; the controller's auto re-scale
      // restores the paper's minimum of 4 on other hosts.
      EXPECT_EQ(r.pool_after.size(), 4u);
      EXPECT_TRUE(std::find(r.pool_after.begin(), r.pool_after.end(),
                            r.victim) == r.pool_after.end())
          << "scaled-in node still in the FE pool";
      break;
    case Churn::kFeCrash:
      EXPECT_EQ(r.pool_after.size(), 4u);
      for (const auto& [id, pool] : r.all_pools) {
        EXPECT_TRUE(std::find(pool.begin(), pool.end(), r.victim) ==
                    pool.end())
            << "vnic " << id << " still routes via crashed node " << r.victim;
      }
      break;
    case Churn::kReseed:
      // §7.5: reseed is fleet-synchronous (sender and BE hashing must
      // agree) and placement-neutral — only the flow→FE mapping moves.
      EXPECT_TRUE(r.seeds_uniform);
      EXPECT_EQ(r.seed_seen, kNewSeed);
      EXPECT_EQ(r.pool_after, r.pool_before);
      break;
  }
  // Displacement never fires on this bed: the fleet has idle hosts, and
  // only the push-aside policy may displace at all.
  if (c.churn != Churn::kScaleOut ||
      c.kind != PolicyKind::kPushAsideDisplacement) {
    EXPECT_EQ(r.displacements, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyChurnMatrixTest,
    ::testing::Values(
        ChurnCase{PolicyKind::kStaticHash, Churn::kScaleOut},
        ChurnCase{PolicyKind::kStaticHash, Churn::kScaleIn},
        ChurnCase{PolicyKind::kStaticHash, Churn::kFeCrash},
        ChurnCase{PolicyKind::kStaticHash, Churn::kReseed},
        ChurnCase{PolicyKind::kLoadAwareWeighted, Churn::kScaleOut},
        ChurnCase{PolicyKind::kLoadAwareWeighted, Churn::kScaleIn},
        ChurnCase{PolicyKind::kLoadAwareWeighted, Churn::kFeCrash},
        ChurnCase{PolicyKind::kLoadAwareWeighted, Churn::kReseed},
        ChurnCase{PolicyKind::kPushAsideDisplacement, Churn::kScaleOut},
        ChurnCase{PolicyKind::kPushAsideDisplacement, Churn::kScaleIn},
        ChurnCase{PolicyKind::kPushAsideDisplacement, Churn::kFeCrash},
        ChurnCase{PolicyKind::kPushAsideDisplacement, Churn::kReseed}),
    [](const auto& info) {
      return std::string(policy::to_string(info.param.kind)) + "_" +
             to_string(info.param.churn);
    });

// Churn runs are replayable: the same (config, seed, stimulus) sequence
// reproduces the fingerprint and the final pools bit-for-bit. The crash
// stimulus is the harshest (placement rewrite + min-FE re-scale mid-run).
class PolicyChurnReplayTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyChurnReplayTest, CrashChurnReproducesBitForBit) {
  const ChurnRun a = run_churn(GetParam(), Churn::kFeCrash, 23);
  const ChurnRun b = run_churn(GetParam(), Churn::kFeCrash, 23);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.all_pools, b.all_pools);
  EXPECT_EQ(a.completed_after, b.completed_after);
  EXPECT_EQ(a.violations, 0u) << a.report;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyChurnReplayTest,
    ::testing::Values(PolicyKind::kStaticHash, PolicyKind::kLoadAwareWeighted,
                      PolicyKind::kPushAsideDisplacement),
    [](const auto& info) { return policy::to_string(info.param); });

// Worker threads must not change a churned run's outcome. Reseed is the
// one stimulus with no scheduled control-plane tail, so it is the one that
// may legally run under threaded traffic windows (applied quiescently
// between them). This case runs under TSan in CI.
TEST(PolicyChurnThreadedTest, ReseedOutcomeIsThreadInvariant) {
  for (PolicyKind kind :
       {PolicyKind::kStaticHash, PolicyKind::kLoadAwareWeighted}) {
    const ChurnRun one = run_churn(kind, Churn::kReseed, 23, 1);
    const ChurnRun two = run_churn(kind, Churn::kReseed, 23, 2);
    EXPECT_EQ(one.fingerprint, two.fingerprint)
        << policy::to_string(kind)
        << ": thread count leaked into a churned run";
    EXPECT_EQ(one.completed_after, two.completed_after);
    EXPECT_EQ(two.violations, 0u) << two.report;
    EXPECT_TRUE(two.seeds_uniform);
  }
}

// ---------------------------------------------------------------------------
// Policy-triggered displacement, on a deliberately saturated mini-cluster.
//
// Seven flat hosts, single-core low-clock CPUs so real traffic makes hosts
// genuinely busy (the controller's utilization samples — not a test seam —
// drive both the idle filter and the victim choice):
//
//   node 1: vNIC B's BE (saturated by FE-forwarded noise)
//   nodes 0, 2: B's two FEs (busy: ~half the noise each)
//   nodes 3, 4: noise clients (busy: local_tx at CPU capacity)
//   node 5: vNIC A's BE,  node 6: A's probe client (idle)
//
// When A asks for a 2-FE pool, exactly one idle host (node 6) exists.
// Push-aside displaces one of B's FEs (B's pool stays >= min_fes = 1) and
// the offload succeeds; the other policies must fail the offload cleanly —
// no displacement, no partial pool, B untouched, A still serving locally.
class PolicyChurnDisplacementTest
    : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyChurnDisplacementTest, SaturatedPoolDisplacesOnlyUnderPushAside) {
  const PolicyKind kind = GetParam();
  constexpr std::uint32_t kVpc = 7;

  core::TestbedConfig cfg;
  cfg.num_vswitches = 7;
  cfg.vswitch.cpu.cores = 1;
  cfg.vswitch.cpu.hz_per_core = 1.2e7;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.controller.fe_policy = kind;
  cfg.controller.min_fes = 1;  // scaled-down cluster: pools of 1-2 FEs
  core::Testbed bed(cfg);
  core::InvariantChecker checker(bed, core::InvariantCheckerConfig{.seed = 7});

  auto add = [&](std::size_t node, tables::VnicId id, std::uint8_t subnet,
                 std::uint8_t host) {
    vswitch::VnicConfig v;
    v.id = id;
    v.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, subnet, host)};
    bed.add_vnic(node, v);
    return v.addr.ip;
  };
  const net::Ipv4Addr b_ip = add(1, 200, 0, 200);
  const net::Ipv4Addr a_ip = add(5, 100, 0, 100);
  const net::Ipv4Addr noise1_ip = add(3, 201, 1, 1);
  const net::Ipv4Addr noise2_ip = add(4, 202, 1, 2);
  const net::Ipv4Addr probe_ip = add(6, 1, 1, 9);

  ASSERT_TRUE(bed.controller().trigger_offload(200, 2).ok());
  checker.record("trigger_offload vnic=200 fes=2");
  bed.run_for(common::seconds(2));
  checker.check();
  const std::vector<sim::NodeId> b_pool0 = bed.controller().fe_nodes_of(200);
  ASSERT_EQ(b_pool0, (std::vector<sim::NodeId>{0, 2}));

  // Noise: two clients, 24 UDP flows each, pumped at the clients' CPU
  // capacity (the CPU model sheds the excess) → both FE hosts sample busy.
  auto pump = [&bed](tables::VnicId vnic, std::size_t node,
                     net::Ipv4Addr src, net::Ipv4Addr dst, int flows,
                     std::uint16_t base_port, common::Duration period) {
    bed.loop().schedule_periodic(period, [&bed, vnic, node, src, dst, flows,
                                          base_port]() {
      for (int f = 0; f < flows; ++f) {
        const net::FiveTuple ft{src, dst,
                                static_cast<std::uint16_t>(base_port + f), 80,
                                net::IpProto::kUdp};
        bed.vswitch(node).from_vm(vnic, net::make_udp_packet(ft, 200, kVpc));
      }
    });
  };
  pump(201, 3, noise1_ip, b_ip, 24, 20000, common::milliseconds(1));
  pump(202, 4, noise2_ip, b_ip, 24, 21000, common::milliseconds(1));

  // Probe flows to A (still local mode — the churn under test is A's
  // offload attempt itself).
  constexpr int kProbeFlows = 16;
  std::map<std::uint16_t, std::uint64_t> probe_delivered;
  bed.vswitch(5).set_vm_delivery(
      [&probe_delivered](tables::VnicId id, const net::Packet& p) {
        if (id == 100) ++probe_delivered[p.inner.ft.src_port];
      });
  pump(1, 6, probe_ip, a_ip, kProbeFlows, 30000, common::milliseconds(10));

  // Sample utilization over the loaded window only: a sampler measures
  // [last checkpoint, now), so both the test's samplers and the
  // controller's fleet samplers checkpoint at noise start — otherwise the
  // idle setup seconds dilute the busy window below the threshold.
  bed.controller().refresh_fleet_sample();
  std::vector<vswitch::UtilizationSampler> samplers(bed.size());
  for (std::size_t i = 0; i < bed.size(); ++i) {
    samplers[i].sample(bed.vswitch(i).cpu(), bed.loop().now());
  }
  bed.run_for(common::milliseconds(400));
  checker.check();
  bed.controller().refresh_fleet_sample();
  checker.record("refresh_fleet_sample");
  for (sim::NodeId fe : {sim::NodeId{0}, sim::NodeId{2}}) {
    const double util = samplers[fe].sample(bed.vswitch(fe).cpu(),
                                            bed.loop().now());
    EXPECT_GE(util, bed.controller().config().scale_threshold)
        << "FE host " << fe << " did not sample busy — the displacement "
        << "scenario's noise calibration has rotted";
  }

  // ------------------------------------------------------------- the churn
  const common::Status st = bed.controller().trigger_offload(100, 2);
  checker.record("trigger_offload vnic=100 fes=2 -> " +
                 std::string(st.ok() ? "ok" : "refused"));
  for (int w = 0; w < 8; ++w) {
    bed.run_for(common::milliseconds(250));
    checker.check();
  }

  const auto a_pool = bed.controller().fe_nodes_of(100);
  const auto b_pool = bed.controller().fe_nodes_of(200);
  const std::uint64_t displaced = bed.controller().displacement_events();

  if (kind == PolicyKind::kPushAsideDisplacement) {
    EXPECT_TRUE(st.ok()) << "push-aside should displace its way to a pool";
    EXPECT_EQ(displaced, 1u);
    EXPECT_EQ(a_pool.size(), 2u);
    // One FE on the lone idle host, one pushed out of B's busy pair.
    EXPECT_TRUE(std::find(a_pool.begin(), a_pool.end(), 6u) != a_pool.end());
    EXPECT_EQ(b_pool.size(), 1u);  // donor kept >= min_fes
    EXPECT_TRUE(bed.controller().is_offloaded(100));
  } else {
    EXPECT_FALSE(st.ok()) << policy::to_string(kind)
                          << " must refuse, not displace";
    EXPECT_EQ(displaced, 0u);
    EXPECT_TRUE(a_pool.empty());
    EXPECT_EQ(b_pool, b_pool0) << "a refused offload touched B's pool";
    EXPECT_FALSE(bed.controller().is_offloaded(100));
  }

  // Liveness either way: every probe flow still reaches A in a fresh
  // window (offloaded detour for push-aside, local path for the rest).
  std::map<std::uint16_t, std::uint64_t> snapshot = probe_delivered;
  bed.run_for(common::milliseconds(400));
  checker.check();
  for (int f = 0; f < kProbeFlows; ++f) {
    const std::uint16_t port = static_cast<std::uint16_t>(30000 + f);
    EXPECT_GT(probe_delivered[port], snapshot[port])
        << "probe flow on port " << port << " blackholed after the churn";
  }
  EXPECT_EQ(checker.violations().size(), 0u) << checker.report();
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyChurnDisplacementTest,
    ::testing::Values(PolicyKind::kStaticHash, PolicyKind::kLoadAwareWeighted,
                      PolicyKind::kPushAsideDisplacement),
    [](const auto& info) { return policy::to_string(info.param); });

}  // namespace
}  // namespace nezha
