// Determinism guarantees of burst-mode processing (DESIGN.md §11).
//
// Burst windows (network RX drain, vSwitch CPU-op drain, workload timer
// coalescing) quantize WHEN work runs, but the drain order within a window
// is fixed (enqueue order = the order exact timing would have used), so a
// burst-mode run is exactly as deterministic as an exact-timing run: the
// same (config, seed) must reproduce the same packet/connection fingerprint
// bit-for-bit. These tests pin that, plus the two supporting contracts:
// exact timing (all windows 0, the unit-test default) is untouched by the
// burst machinery, and a burst run's event interleaving stays within a
// fraction of a percent of the exact-timing run — the quantization skew the
// bench re-baseline accounted for, not a behavioral change.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/invariants.h"
#include "src/core/testbed.h"
#include "src/workload/cps_workload.h"

namespace nezha {
namespace {

using common::microseconds;
using common::milliseconds;

struct Fingerprint {
  std::uint64_t delivered = 0;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t attempted = 0;

  bool operator==(const Fingerprint& o) const {
    return delivered == o.delivered && sent == o.sent &&
           completed == o.completed && attempted == o.attempted;
  }
};

struct RunOptions {
  bool bursts = false;
  bool check_invariants = false;
};

/// A small two-client CPS scenario (the e2e bench's shape, scaled down to
/// test runtime); returns its end-of-run fingerprint.
Fingerprint run_scenario(const RunOptions& opt) {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 4;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  if (opt.bursts) {
    // The production burst configuration from bench_engine_hotpath.
    cfg.network.rx_burst_window = microseconds(192);
    cfg.vswitch.cpu_burst_window = microseconds(64);
    cfg.vswitch.aging_period = milliseconds(100);
  }
  core::Testbed bed(cfg);

  constexpr std::uint32_t kVpc = 9;
  constexpr tables::VnicId kServer = 50;
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 50)};
  bed.add_vnic(0, server);

  std::vector<std::unique_ptr<workload::CpsWorkload>> clients;
  for (int c = 0; c < 2; ++c) {
    vswitch::VnicConfig client;
    client.id = static_cast<tables::VnicId>(c + 1);
    client.addr = tables::OverlayAddr{
        kVpc, net::Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(c + 1))};
    const std::size_t client_switch = 1 + static_cast<std::size_t>(c);
    bed.add_vnic(client_switch, client);
    workload::CpsWorkloadConfig w;
    // Enough in-flight connections to ride at capacity (like the bench's
    // e2e scenario): a capacity-bound closed loop pipelines away the
    // window-quantization latency, a starved one would multiply it.
    w.concurrency = 128;
    w.seed = 700 + static_cast<std::uint64_t>(c);
    if (opt.bursts) w.timer_window = microseconds(64);
    clients.push_back(std::make_unique<workload::CpsWorkload>(
        bed, client_switch, client.id, 0, kServer, w));
  }
  for (std::size_t i = 0; i < bed.size(); ++i) bed.vswitch(i).start_aging();

  core::InvariantChecker checker(bed, {.seed = 700});
  if (opt.check_invariants) checker.attach(milliseconds(10));

  for (auto& c : clients) c->start();
  bed.run_for(milliseconds(400));
  for (auto& c : clients) c->stop();

  if (opt.check_invariants) {
    EXPECT_GE(checker.checks_run(), 10u);
    EXPECT_TRUE(checker.ok()) << checker.report();
  }

  Fingerprint fp;
  fp.delivered = bed.network().delivered();
  fp.sent = bed.network().sent();
  for (auto& c : clients) {
    fp.completed += c->completed();
    fp.attempted += c->attempted();
  }
  return fp;
}

TEST(BurstDeterminismTest, TwoBurstRunsProduceIdenticalFingerprints) {
  const Fingerprint a = run_scenario({.bursts = true});
  const Fingerprint b = run_scenario({.bursts = true});
  EXPECT_TRUE(a == b) << "burst-mode run is not reproducible: " << a.delivered
                      << "/" << a.completed << " vs " << b.delivered << "/"
                      << b.completed;
  EXPECT_GT(a.completed, 1000u);  // the scenario carried real load
}

TEST(BurstDeterminismTest, TwoExactRunsProduceIdenticalFingerprints) {
  const Fingerprint a = run_scenario({.bursts = false});
  const Fingerprint b = run_scenario({.bursts = false});
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.completed, 1000u);
}

// Burst windows quantize event timing, which may legitimately shift the
// closed-loop interleaving — but only by the window skew, never by a
// behavioral amount. A drift beyond 1% means a burst path dropped,
// duplicated, or reordered work beyond its window.
TEST(BurstDeterminismTest, BurstFingerprintStaysWithinWindowSkewOfExact) {
  const Fingerprint burst = run_scenario({.bursts = true});
  const Fingerprint exact = run_scenario({.bursts = false});
  const auto close = [](std::uint64_t x, std::uint64_t y) {
    const double lo = static_cast<double>(x < y ? x : y);
    const double hi = static_cast<double>(x < y ? y : x);
    return hi <= lo * 1.01;
  };
  EXPECT_TRUE(close(burst.delivered, exact.delivered))
      << burst.delivered << " vs exact " << exact.delivered;
  EXPECT_TRUE(close(burst.completed, exact.completed))
      << burst.completed << " vs exact " << exact.completed;
}

TEST(BurstDeterminismTest, BurstRunSatisfiesInvariantHarness) {
  run_scenario({.bursts = true, .check_invariants = true});
}

}  // namespace
}  // namespace nezha
