// Golden-trace determinism test.
//
// Runs a fixed-seed failover scenario (the Fig 14 shape: steady traffic, an
// FE crash, ping-based detection, failover, recovery) and fingerprints every
// simulation-determined counter. Two in-process runs must agree bit-for-bit,
// and the fingerprint must equal a recorded golden constant — so any change
// to event ordering, timer math, hashing, or controller logic that alters
// observable behaviour fails loudly here rather than silently shifting
// benchmark numbers.
//
// Re-baselining: if you changed engine behaviour ON PURPOSE, run this test,
// take the "fingerprint=0x..." value from the failure message, update
// kGoldenFingerprint below, and call out the behaviour change in your PR
// description (see README "Golden trace" section).
#include <gtest/gtest.h>

#include <cstdint>

#include "src/core/testbed.h"
#include "src/net/packet.h"

namespace nezha {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct TraceResult {
  std::uint64_t fingerprint = 0;
  std::uint64_t delivered = 0;
  std::uint64_t failovers = 0;
};

/// One complete failover run. Everything observable derives from the fixed
/// config, so repeated calls must produce identical results.
TraceResult run_failover_trace() {
  core::TestbedConfig cfg;
  cfg.num_vswitches = 16;
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.monitor.probe_interval = common::milliseconds(500);
  cfg.monitor.probe_timeout = common::milliseconds(300);
  cfg.monitor.miss_threshold = 3;
  core::Testbed bed(cfg);

  constexpr std::uint32_t kVpc = 7;
  constexpr tables::VnicId kServer = 100;
  vswitch::VnicConfig server;
  server.id = kServer;
  server.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 0, 100)};
  bed.add_vnic(10, server);
  vswitch::VnicConfig client;
  client.id = 1;
  client.addr = tables::OverlayAddr{kVpc, net::Ipv4Addr(10, 0, 1, 1)};
  bed.add_vnic(12, client);

  std::uint64_t delivered = 0;
  bed.vswitch(10).set_vm_delivery(
      [&](tables::VnicId, const net::Packet&) { ++delivered; });

  (void)bed.controller().trigger_offload(kServer, 4);
  bed.run_for(common::seconds(4));
  bed.watch_fe_hosts();
  bed.monitor().start();

  // 64 flows x 50 pps steady traffic toward the offloaded server.
  constexpr int kFlows = 64;
  auto send_burst = [&bed]() {
    for (int f = 0; f < kFlows; ++f) {
      net::FiveTuple ft{net::Ipv4Addr(10, 0, 1, 1),
                        net::Ipv4Addr(10, 0, 0, 100),
                        static_cast<std::uint16_t>(20000 + f), 80,
                        net::IpProto::kUdp};
      bed.vswitch(12).from_vm(1, net::make_udp_packet(ft, 100, kVpc));
    }
  };
  send_burst();
  auto pump_id = std::make_shared<sim::EventId>();
  *pump_id = bed.loop().schedule_periodic(
      common::milliseconds(20), [&bed, send_burst, pump_id]() {
        if (bed.loop().now() > common::seconds(12)) {
          bed.loop().cancel(*pump_id);
          return;
        }
        send_burst();
      });
  bed.run_for(common::seconds(2));

  // Crash the first FE that is not the client's host; run to recovery.
  sim::NodeId victim = sim::kInvalidNode;
  for (sim::NodeId n : bed.controller().fe_nodes_of(kServer)) {
    if (n != 12) {
      victim = n;
      break;
    }
  }
  bed.network().crash(victim);
  bed.run_for(common::seconds(8));

  TraceResult r;
  r.delivered = delivered;
  r.failovers = bed.controller().failover_events();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, delivered);
  const sim::Network& net = bed.network();
  h = fnv1a(h, net.sent());
  h = fnv1a(h, net.delivered());
  h = fnv1a(h, net.dropped_total());
  h = fnv1a(h, net.in_flight());
  h = fnv1a(h, net.total_bytes_sent());
  const core::Controller& ctl = bed.controller();
  h = fnv1a(h, ctl.offload_events());
  h = fnv1a(h, ctl.fallback_events());
  h = fnv1a(h, ctl.scale_out_events());
  h = fnv1a(h, ctl.scale_in_events());
  h = fnv1a(h, ctl.failover_events());
  h = fnv1a(h, ctl.fes_provisioned_total());
  h = fnv1a(h, bed.monitor().crashes_declared());
  h = fnv1a(h, static_cast<std::uint64_t>(bed.loop().now()));
  r.fingerprint = h;
  return r;
}

/// Recorded fingerprint of the scenario above. Update ONLY for intentional
/// engine-behaviour changes (see file comment for the procedure).
constexpr std::uint64_t kGoldenFingerprint = 0x56043051879ec689ULL;

TEST(GoldenTrace, FailoverRunIsDeterministic) {
  const TraceResult a = run_failover_trace();
  const TraceResult b = run_failover_trace();
  EXPECT_EQ(a.fingerprint, b.fingerprint)
      << "same-seed runs diverged: the engine has a nondeterminism bug";
  EXPECT_EQ(a.delivered, b.delivered);

  // Sanity: the scenario exercised what it claims to.
  EXPECT_GT(a.delivered, 0u);
  EXPECT_GE(a.failovers, 1u) << "FE crash did not trigger a failover";
}

TEST(GoldenTrace, FailoverRunMatchesGoldenFingerprint) {
  const TraceResult r = run_failover_trace();
  EXPECT_EQ(r.fingerprint, kGoldenFingerprint)
      << "fingerprint=0x" << std::hex << r.fingerprint << std::dec
      << "\nEngine-observable behaviour changed. If intentional, re-baseline:"
      << "\n  1. copy the fingerprint above into kGoldenFingerprint"
      << "\n     (tests/golden_trace_test.cpp)"
      << "\n  2. explain the behaviour change in your PR description"
      << "\nSee README 'Golden trace' for details.";
}

}  // namespace
}  // namespace nezha
