// Monte Carlo seed sweep for the policy lab (DESIGN.md §14): sixteen
// seeds on a small Clos bed, each running deploy → offload → traffic →
// mid-run FE crash → recovery with the InvariantChecker green throughout.
// Policies rotate across seeds so every strategy sees a third of the
// sweep. Per-seed fingerprints are printed and attached to the test
// record — a future change that shifts any seed's outcome shows up as a
// fingerprint diff in the log, not just a pass/fail bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/invariants.h"
#include "src/core/testbed.h"
#include "src/policy/fe_policy.h"
#include "src/workload/fleet_model.h"

namespace nezha {
namespace {

using policy::PolicyKind;

struct SweepRun {
  std::uint64_t fingerprint = 0;
  std::uint64_t completed = 0;
  std::size_t violations = 0;
  std::string report;
};

SweepRun run_seed(std::uint64_t seed, PolicyKind kind) {
  core::TestbedConfig cfg = core::make_clos_testbed_config(
      16, /*hosts_per_leaf=*/4, /*num_spines=*/4, /*oversubscription=*/2.0);
  cfg.controller.auto_offload = false;
  cfg.controller.auto_scale = false;
  cfg.controller.fe_policy = kind;
  cfg.shards = 2;
  cfg.threads = 1;
  core::Testbed bed(cfg);

  workload::FleetScenarioConfig sc;
  sc.num_pairs = 2;
  sc.base_attempts_per_sec = 200.0;
  sc.seed = seed;
  workload::FleetScenario scenario(bed, sc);
  core::InvariantChecker checker(bed,
                                 core::InvariantCheckerConfig{.seed = seed});

  scenario.deploy();
  scenario.offload_all();
  checker.record("offload_all seed=" + std::to_string(seed));
  bed.run_for(common::seconds(1));
  checker.check();

  scenario.start_traffic();
  bed.run_for(common::milliseconds(500));
  checker.check();

  // Crash one FE of the first offloaded vNIC; the victim varies with the
  // seed via the placement the scenario produced.
  for (tables::VnicId id : bed.controller().vnic_ids()) {
    if (!bed.controller().is_offloaded(id)) continue;
    const auto pool = bed.controller().fe_nodes_of(id);
    if (pool.empty()) continue;
    const sim::NodeId victim = pool[seed % pool.size()];
    for (std::uint32_t s = 0; s < bed.shard_count(); ++s) {
      bed.network_of_shard(s).crash(victim);
    }
    checker.record("crash node=" + std::to_string(victim));
    bed.controller().handle_fe_crash(victim);
    break;
  }

  bed.run_for(common::milliseconds(500));
  checker.check();
  scenario.stop_traffic();
  bed.run_for(common::milliseconds(250));
  checker.check();

  SweepRun r;
  r.fingerprint = scenario.fingerprint();
  for (const auto& wl : scenario.workloads()) r.completed += wl->completed();
  r.violations = checker.violations().size();
  r.report = checker.ok() ? "" : checker.report();
  return r;
}

TEST(PolicySeedSweepTest, SixteenSeedsStayInvariantCleanAcrossPolicies) {
  constexpr PolicyKind kRotation[3] = {PolicyKind::kStaticHash,
                                       PolicyKind::kLoadAwareWeighted,
                                       PolicyKind::kPushAsideDisplacement};
  std::vector<std::uint64_t> fingerprints;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const PolicyKind kind = kRotation[seed % 3];
    const SweepRun r = run_seed(seed, kind);
    EXPECT_EQ(r.violations, 0u)
        << "seed " << seed << " (" << policy::to_string(kind) << "):\n"
        << r.report;
    EXPECT_GT(r.completed, 0u) << "seed " << seed << " completed nothing";
    std::printf("seed %2llu policy=%-11s fingerprint=%016llx completed=%llu\n",
                static_cast<unsigned long long>(seed),
                policy::to_string(kind),
                static_cast<unsigned long long>(r.fingerprint),
                static_cast<unsigned long long>(r.completed));
    RecordProperty("fingerprint_seed_" + std::to_string(seed),
                   std::to_string(r.fingerprint));
    fingerprints.push_back(r.fingerprint);
  }
  // Distinct seeds produce distinct trajectories — a sweep that collapses
  // to one fingerprint means the seed stopped reaching the simulation.
  std::sort(fingerprints.begin(), fingerprints.end());
  EXPECT_NE(fingerprints.front(), fingerprints.back());
}

}  // namespace
}  // namespace nezha
