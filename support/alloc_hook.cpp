// Counting replacements for the global allocation functions. Everything —
// the counters, the API, and the replaceable operators — lives in this one
// translation unit so the linker either pulls all of it or none of it (see
// alloc_hook.h for the flag semantics this provides).
#include "support/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace nezha::support {
namespace {

// Relaxed atomics: the sharded engine's worker threads allocate
// concurrently, and the counters must stay exact (and race-free under
// TSan) without ordering any other memory.
std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded == 0 ? align : rounded);
}

void counted_free(void* p) {
  if (p == nullptr) return;
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

AllocCounts alloc_counts() {
  return AllocCounts{g_news.load(std::memory_order_relaxed),
                     g_deletes.load(std::memory_order_relaxed),
                     g_bytes.load(std::memory_order_relaxed)};
}

void reset_alloc_counts() {
  g_news.store(0, std::memory_order_relaxed);
  g_deletes.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace nezha::support

// ------------------------------------------------- replaceable operators

void* operator new(std::size_t size) {
  void* p = nezha::support::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = nezha::support::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = nezha::support::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = nezha::support::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return nezha::support::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return nezha::support::counted_alloc(size);
}

void operator delete(void* p) noexcept { nezha::support::counted_free(p); }
void operator delete[](void* p) noexcept { nezha::support::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  nezha::support::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  nezha::support::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  nezha::support::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  nezha::support::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  nezha::support::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  nezha::support::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  nezha::support::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  nezha::support::counted_free(p);
}
