// Allocation-counting harness for benches and tests (never linked into the
// core `nezha` library). Linking `nezha_alloc_hook` replaces the global
// `operator new`/`operator delete` family with counting forwarders to
// malloc/free; `alloc_counts()` then reports what the process allocated.
//
// Link-time flag semantics: the replacement operators live in the same
// translation unit as `alloc_counts()`, so a binary that never calls the
// API never pulls the hook object out of the archive and runs with the
// stock allocator. Binaries that do call it (bench_engine_hotpath,
// alloc_regression_test) get exact counts.
//
// The simulator is single-threaded; counters are plain (non-atomic)
// globals.
#pragma once

#include <cstdint>

namespace nezha::support {

struct AllocCounts {
  std::uint64_t news = 0;    // operator new / new[] calls
  std::uint64_t deletes = 0; // operator delete / delete[] calls
  std::uint64_t bytes = 0;   // total bytes requested via operator new
};

/// Process-lifetime totals (monotonic; diff two snapshots for a window).
AllocCounts alloc_counts();

/// Resets all counters to zero.
void reset_alloc_counts();

}  // namespace nezha::support
