// Failover drill (§4.4): crash an FE under live traffic and watch the
// health monitor detect it, the controller fail over, and the pool heal
// back to its 4-FE minimum — narrated as a timeline.
//
//   $ ./example_failover_drill
#include <cstdio>

#include "src/core/testbed.h"

using namespace nezha;

int main() {
  core::TestbedConfig config;
  config.num_vswitches = 16;
  config.controller.auto_offload = false;
  config.monitor.probe_interval = common::milliseconds(500);
  config.monitor.miss_threshold = 3;
  core::Testbed bed(config);

  constexpr std::uint32_t kVpc = 3;
  vswitch::VnicConfig server;
  server.id = 9;
  server.addr = {kVpc, net::Ipv4Addr(10, 0, 0, 9)};
  bed.add_vnic(1, server);
  vswitch::VnicConfig client;
  client.id = 1;
  client.addr = {kVpc, net::Ipv4Addr(10, 0, 0, 1)};
  bed.add_vnic(14, client);

  std::uint64_t delivered = 0;
  bed.vswitch(1).set_vm_delivery(
      [&](tables::VnicId, const net::Packet&) { ++delivered; });

  (void)bed.controller().trigger_offload(server.id);
  bed.run_for(common::seconds(4));
  bed.watch_fe_hosts();
  bed.monitor().start();

  // 100 flows at 50pps each = 5K pps of steady traffic.
  std::uint64_t sent = 0;
  auto send_burst = [&]() {
    for (int f = 0; f < 100; ++f) {
      net::FiveTuple ft{client.addr.ip, server.addr.ip,
                        static_cast<std::uint16_t>(20000 + f), 80,
                        net::IpProto::kUdp};
      bed.vswitch(14).from_vm(1, net::make_udp_packet(ft, 64, kVpc));
      ++sent;
    }
  };
  send_burst();
  auto pump_id = std::make_shared<sim::EventId>();
  *pump_id =
      bed.loop().schedule_periodic(common::milliseconds(20), [&, pump_id]() {
        if (bed.loop().now() > common::seconds(20)) {
          bed.loop().cancel(*pump_id);
          return;
        }
        send_burst();
      });
  bed.run_for(common::seconds(2));

  auto fes = bed.controller().fe_nodes_of(server.id);
  sim::NodeId victim = fes[0] == 14 ? fes[1] : fes[0];
  std::printf("t=%.1fs  FE pool:", common::to_seconds(bed.loop().now()));
  for (auto n : fes) std::printf(" vswitch-%u", n);
  std::printf("\nt=%.1fs  !!! crashing vswitch-%u (SmartNIC failure)\n",
              common::to_seconds(bed.loop().now()), victim);
  const common::TimePoint crash_at = bed.loop().now();
  bed.network().crash(victim);

  std::uint64_t prev_sent = sent, prev_del = delivered;
  bool recovered = false;
  for (int w = 0; w < 20 && !recovered; ++w) {
    bed.run_for(common::milliseconds(500));
    const double loss =
        sent == prev_sent
            ? 0.0
            : 1.0 - static_cast<double>(delivered - prev_del) /
                        static_cast<double>(sent - prev_sent);
    std::printf("t=%.1fs  window loss %.1f%%  crashes declared %llu  "
                "failovers %llu\n",
                common::to_seconds(bed.loop().now()), loss * 100,
                static_cast<unsigned long long>(
                    bed.monitor().crashes_declared()),
                static_cast<unsigned long long>(
                    bed.controller().failover_events()));
    if (bed.controller().failover_events() > 0 && loss < 0.001) {
      recovered = true;
      std::printf("t=%.1fs  recovered %.2fs after the crash\n",
                  common::to_seconds(bed.loop().now()),
                  common::to_seconds(bed.loop().now() - crash_at));
    }
    prev_sent = sent;
    prev_del = delivered;
  }

  fes = bed.controller().fe_nodes_of(server.id);
  std::printf("final FE pool (min-4 maintained):");
  for (auto n : fes) std::printf(" vswitch-%u", n);
  std::printf("\nprobes sent %llu, replies %llu, suppressed declarations %llu\n",
              static_cast<unsigned long long>(bed.monitor().probes_sent()),
              static_cast<unsigned long long>(bed.monitor().replies_received()),
              static_cast<unsigned long long>(
                  bed.monitor().declarations_suppressed()));
  return recovered ? 0 : 1;
}
