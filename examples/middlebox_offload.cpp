// Middlebox scenario (§5 + §6.3): a load-balancer real server with a
// stateful ACL and stateful decapsulation, offloaded with Nezha.
//
// Demonstrates the two case studies of the paper end to end:
//  * stateful ACL: deny-all-inbound still admits responses to connections
//    the server initiated, before AND after the offload — because the
//    first-packet-direction state never leaves the BE;
//  * stateful decap: the real server's responses return to the LB address
//    recorded from the first packet's overlay header, even though that
//    lookup now happens at a remote FE.
//
//   $ ./example_middlebox_offload
#include <cstdio>

#include "src/core/testbed.h"
#include "src/nf/middlebox.h"
#include "src/tables/acl.h"

using namespace nezha;

int main() {
  core::TestbedConfig config;
  config.num_vswitches = 12;
  config.controller.auto_offload = false;
  core::Testbed bed(config);

  constexpr std::uint32_t kVpc = 11;
  // The real server behind an LB, using the load-balancer middlebox profile
  // (heavy rule tables, stateful decap).
  const nf::MiddleboxProfile lb_profile = nf::MiddleboxProfile::load_balancer();
  vswitch::VnicConfig rs;
  rs.id = 7;
  rs.addr = {kVpc, net::Ipv4Addr(10, 1, 0, 2)};
  rs.profile = lb_profile.rule_profile;
  bed.add_vnic(1, rs, /*stateful_decap=*/true);

  // A peer VM the server talks to (health-check target).
  vswitch::VnicConfig peer;
  peer.id = 8;
  peer.addr = {kVpc, net::Ipv4Addr(10, 1, 0, 9)};
  bed.add_vnic(2, peer);

  // Tenant intent: deny all inbound to the real server.
  auto* rules = bed.vswitch(1).vnic(rs.id)->rules();
  rules->acl().add_rule(tables::AclRule{
      .priority = 1,
      .direction = flow::Direction::kRx,
      .verdict = flow::Verdict::kDrop});
  rules->commit_update();

  std::uint64_t rs_rx = 0, peer_rx = 0;
  bed.vswitch(1).set_vm_delivery(
      [&](tables::VnicId, const net::Packet&) { ++rs_rx; });
  bed.vswitch(2).set_vm_delivery(
      [&](tables::VnicId, const net::Packet&) { ++peer_rx; });

  // The server initiates a health-check to the peer: records state TX.
  const net::FiveTuple health{rs.addr.ip, peer.addr.ip, 33000, 8080,
                              net::IpProto::kTcp};
  bed.vswitch(1).from_vm(
      rs.id, net::make_tcp_packet(health, net::TcpFlags{.syn = true}, 0, kVpc));
  bed.run_for(common::milliseconds(10));
  // The peer's response passes the deny-all-inbound ACL (stateful).
  bed.vswitch(2).from_vm(
      peer.id, net::make_tcp_packet(health.reversed(),
                                    net::TcpFlags{.syn = true, .ack = true},
                                    0, kVpc));
  bed.run_for(common::milliseconds(10));
  std::printf("before offload: health-check response admitted through "
              "deny-all-inbound ACL: %s\n", rs_rx == 1 ? "yes" : "NO");

  // Offload the middlebox vNIC: its O(100MB) rule tables move to 4 FEs.
  std::printf("offloading %s vNIC (%.0f MB rule tables)...\n",
              lb_profile.name.c_str(),
              static_cast<double>(rs.profile.synthetic_rule_bytes) / 1048576);
  auto st = bed.controller().trigger_offload(rs.id);
  if (!st.ok()) {
    std::printf("offload failed: %s\n", st.error().message.c_str());
    return 1;
  }
  bed.run_for(common::seconds(4));
  std::printf("offloaded; BE rule memory now %.3f MB\n",
              bed.vswitch(1).rule_memory().used() / 1048576.0);

  // §5.2 stateful decap, post-offload: LB traffic arrives via an FE with
  // the LB's address in the outer header; the BE records it; the server's
  // reply must return to the LB.
  const net::Ipv4Addr lb_underlay = bed.vswitch(5).underlay_ip();
  const net::FiveTuple client_conn{net::Ipv4Addr(203, 0, 113, 9), rs.addr.ip,
                                   55555, 80, net::IpProto::kTcp};
  // Also: stateful ACL still applies to unsolicited inbound... except the
  // LB flow is the canonical "RX-first" case that a real-server policy
  // allows on port 80; add that rule at an FE-visible priority.
  // (Rule updates post-offload go through the FEs, not the BE.)
  for (sim::NodeId n : bed.controller().fe_nodes_of(rs.id)) {
    auto* fe = bed.vswitch(n).frontend(rs.id);
    fe->rules.acl().add_rule(tables::AclRule{
        .priority = 0,
        .dst_ports = tables::PortRange::exact(80),
        .direction = flow::Direction::kRx,
        .verdict = flow::Verdict::kAccept});
    fe->rules.commit_update();
    bed.vswitch(n).invalidate_cached_flows(rs.id);
  }

  net::Packet from_lb =
      net::make_tcp_packet(client_conn, net::TcpFlags{.syn = true}, 0, kVpc);
  const auto fes = bed.controller().fe_nodes_of(rs.id);
  from_lb.encap(lb_underlay, bed.vswitch(5).mac(),
                bed.vswitch(fes[0]).underlay_ip(), bed.vswitch(fes[0]).mac());
  bed.network().send(bed.vswitch(5).id(), bed.vswitch(fes[0]).underlay_ip(),
                     std::move(from_lb));
  bed.run_for(common::milliseconds(10));
  std::printf("client SYN via LB delivered to real server: %s\n",
              rs_rx == 2 ? "yes" : "NO");

  std::uint64_t to_lb = 0;
  bed.network().set_trace([&](common::TimePoint, const net::Packet& p,
                              sim::NodeId, sim::NodeId to) {
    if (to == bed.vswitch(5).id() && p.encapsulated() &&
        p.overlay->dst_ip == lb_underlay) {
      ++to_lb;
    }
  });
  bed.vswitch(1).from_vm(
      rs.id, net::make_tcp_packet(client_conn.reversed(),
                                  net::TcpFlags{.syn = true, .ack = true}, 0,
                                  kVpc));
  bed.run_for(common::milliseconds(10));
  std::printf("server response routed back to the LB (stateful decap via "
              "FE): %s\n", to_lb == 1 ? "yes" : "NO");

  // Fall back when the surge is over.
  auto fb = bed.controller().trigger_fallback(rs.id);
  bed.run_for(common::seconds(3));
  std::printf("fallback: %s; vNIC mode: %s\n",
              fb.ok() ? "ok" : fb.error().message.c_str(),
              to_string(bed.vswitch(1).vnic(rs.id)->mode()).c_str());
  return 0;
}
