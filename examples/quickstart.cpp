// Quickstart: the smallest end-to-end Nezha scenario.
//
// Builds a simulated cluster, puts a client VM and a server VM on two
// SmartNIC vSwitches, sends traffic locally, then offloads the server's
// vNIC to a 4-FE remote pool and shows that (a) traffic keeps flowing,
// (b) the hot vSwitch's rule memory is released, and (c) the slow-path
// work moved to the frontends.
//
//   $ ./example_quickstart
#include <cstdio>

#include "src/core/testbed.h"

using namespace nezha;

int main() {
  // A 12-server cluster with default SmartNIC resources.
  core::TestbedConfig config;
  config.num_vswitches = 12;
  config.controller.auto_offload = false;  // we trigger it explicitly below
  core::Testbed bed(config);

  // Tenant VPC 42: client VM on server 0, busy web server VM on server 1.
  constexpr std::uint32_t kVpc = 42;
  vswitch::VnicConfig client;
  client.id = 1;
  client.addr = {kVpc, net::Ipv4Addr(10, 0, 0, 1)};
  bed.add_vnic(0, client);

  vswitch::VnicConfig server;
  server.id = 2;
  server.addr = {kVpc, net::Ipv4Addr(10, 0, 0, 2)};
  server.profile.synthetic_rule_bytes = 64 << 20;  // a beefy rule table
  bed.add_vnic(1, server);

  std::uint64_t delivered = 0;
  bed.vswitch(1).set_vm_delivery(
      [&](tables::VnicId, const net::Packet&) { ++delivered; });

  auto send_burst = [&](int flows) {
    for (int f = 0; f < flows; ++f) {
      net::FiveTuple ft{client.addr.ip, server.addr.ip,
                        static_cast<std::uint16_t>(40000 + f), 80,
                        net::IpProto::kTcp};
      bed.vswitch(0).from_vm(
          1, net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 100, kVpc));
    }
    bed.run_for(common::milliseconds(50));
  };

  std::printf("== before offload ==\n");
  send_burst(100);
  std::printf("delivered to server VM: %llu packets\n",
              static_cast<unsigned long long>(delivered));
  std::printf("server vSwitch rule memory: %.1f MB used, slow-path lookups:"
              " %llu\n",
              bed.vswitch(1).rule_memory().used() / 1048576.0,
              static_cast<unsigned long long>(
                  bed.vswitch(1).slow_path_lookups()));

  // Offload the hot vNIC to 4 idle SmartNICs. The controller configures
  // the FEs, the BE and the gateway, runs the dual-running stage, and
  // finalizes ~1s later — with zero interruption.
  auto status = bed.controller().trigger_offload(server.id);
  if (!status.ok()) {
    std::printf("offload failed: %s\n", status.error().message.c_str());
    return 1;
  }
  bed.run_for(common::seconds(4));

  std::printf("\n== after offload ==\n");
  std::printf("vNIC mode: %s; FE nodes:",
              to_string(bed.vswitch(1).vnic(server.id)->mode()).c_str());
  for (sim::NodeId n : bed.controller().fe_nodes_of(server.id)) {
    std::printf(" %u", n);
  }
  std::printf("\nactivation completion: %.0f ms\n",
              bed.controller().offload_completion().mean());

  const auto lookups_before = bed.vswitch(1).slow_path_lookups();
  send_burst(100);
  std::printf("delivered to server VM: %llu packets (no losses across the "
              "transition)\n",
              static_cast<unsigned long long>(delivered));
  std::printf("server vSwitch rule memory: %.3f MB used (tables moved to "
              "the FEs; 2KB BE metadata remains)\n",
              bed.vswitch(1).rule_memory().used() / 1048576.0);
  std::printf("server vSwitch slow-path lookups since offload: %llu\n",
              static_cast<unsigned long long>(
                  bed.vswitch(1).slow_path_lookups() - lookups_before));
  std::uint64_t fe_lookups = 0;
  for (sim::NodeId n : bed.controller().fe_nodes_of(server.id)) {
    fe_lookups += bed.vswitch(n).slow_path_lookups();
  }
  std::printf("frontend slow-path lookups: %llu (the work moved here)\n",
              static_cast<unsigned long long>(fe_lookups));
  std::printf("stale-route drops during transition: %llu\n",
              static_cast<unsigned long long>(
                  bed.vswitch(1).counters().get("drop.stale_route")));
  return 0;
}
