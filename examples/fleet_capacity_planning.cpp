// Fleet capacity planning: the operator-facing question behind §2.2 —
// given a region's utilization distribution, how much idle SmartNIC
// capacity exists for Nezha's resource pool, and what does each offload
// buy in CPS / #flows / #vNICs headroom?
//
//   $ ./example_fleet_capacity_planning
#include <cstdio>

#include "src/baseline/capacity_model.h"
#include "src/common/stats.h"
#include "src/workload/fleet_model.h"

using namespace nezha;

int main() {
  workload::FleetModelConfig cfg;
  cfg.num_vswitches = 10000;
  workload::FleetModel fleet(cfg);

  const auto cpu = fleet.sample_cpu_utilization();
  const auto mem = fleet.sample_memory_utilization();

  // Pool inventory: vSwitches idle enough to serve as FEs (below the 40%
  // scale threshold, App B.1).
  std::size_t eligible = 0;
  double spare_cpu = 0;
  for (std::size_t i = 0; i < cpu.size(); ++i) {
    if (cpu[i] < 0.40 && mem[i] < 0.40) {
      ++eligible;
      spare_cpu += 0.40 - cpu[i];
    }
  }
  std::printf("region fleet: %zu vSwitches\n", cpu.size());
  std::printf("FE-eligible (cpu & mem < 40%%): %zu (%.1f%%)\n", eligible,
              100.0 * static_cast<double>(eligible) /
                  static_cast<double>(cpu.size()));
  std::printf("aggregate spare CPU in the pool: %.0f vSwitch-equivalents\n",
              spare_cpu);

  // Hotspots needing help: above the 70% offload threshold.
  std::size_t hot = 0;
  for (std::size_t i = 0; i < cpu.size(); ++i) {
    if (cpu[i] > 0.70 || mem[i] > 0.70) ++hot;
  }
  std::printf("hotspots (cpu or mem > 70%%): %zu → %zu FEs needed at 4 per "
              "offload\n", hot, hot * 4);
  std::printf("pool-to-demand ratio: %.0fx — reuse comfortably covers the "
              "tail\n",
              static_cast<double>(eligible) / static_cast<double>(hot * 4));

  // What one offload buys, per the calibrated capacity model.
  baseline::DeploymentParams p;
  std::printf("\nper-offload headroom (4 FEs):\n");
  std::printf("  CPS: %.0fK → %.0fK (%.1fx)\n",
              baseline::CapacityModel::local_cps(p) / 1e3,
              baseline::CapacityModel::nezha_cps(p, 4) / 1e3,
              baseline::CapacityModel::nezha_cps(p, 4) /
                  baseline::CapacityModel::local_cps(p));
  std::printf("  #concurrent flows: %.1fM → %.1fM (%.1fx)\n",
              static_cast<double>(baseline::CapacityModel::local_max_flows(p)) / 1e6,
              static_cast<double>(baseline::CapacityModel::nezha_max_flows(p, 4)) / 1e6,
              static_cast<double>(baseline::CapacityModel::nezha_max_flows(p, 4)) /
                  static_cast<double>(baseline::CapacityModel::local_max_flows(p)));
  std::printf("  #vNICs: %zu → %zu (%.0fx)\n",
              baseline::CapacityModel::local_max_vnics(p),
              baseline::CapacityModel::nezha_max_vnics(p, 4),
              static_cast<double>(baseline::CapacityModel::nezha_max_vnics(p, 4)) /
                  static_cast<double>(baseline::CapacityModel::local_max_vnics(p)));

  // Sensitivity: the pool stays useful even if the fleet heats up.
  std::printf("\nsensitivity (uniform fleet heat-up):\n");
  for (double extra : {0.0, 0.10, 0.20, 0.30}) {
    std::size_t still_eligible = 0;
    for (std::size_t i = 0; i < cpu.size(); ++i) {
      if (cpu[i] + extra < 0.40 && mem[i] < 0.40) ++still_eligible;
    }
    std::printf("  +%2.0f%% fleet load → %5zu eligible FEs\n", extra * 100,
                still_eligible);
  }
  return 0;
}
