// Bench regression gate: diffs fresh bench JSON against a pinned baseline
// and exits nonzero when a metric regresses past the threshold.
//
//   nezha_report [--threshold 0.10] BASELINE FRESH [BASELINE2 FRESH2 ...]
//
// Each (baseline, fresh) pair is compared leaf by leaf: the JSON trees are
// flattened to dotted numeric paths ("end_to_end.pkts_per_sec_wallclock"),
// and each leaf is classified by name into higher-is-better (rates,
// speedups, delivery fractions), lower-is-better (allocations, latency,
// loss), or informational (counts, window sizes, config echoes — printed
// when they move, never gated; determinism fingerprints are the bench's
// own gate, not a relative-threshold matter). Leaves present on only one
// side are reported as schema drift, not regressions — the schema is
// versioned and grows.
//
// CI runs this after the bench binaries regenerate BENCH_engine.json /
// BENCH_topo.json, against the checked-in copies (see README "Recording a
// new baseline"): wall-clock rates on shared runners are noisy, which is
// exactly why the default threshold is a coarse 10% — it catches a path
// going off a cliff, while the bench's machine-independent [SHAPE] gates
// catch everything subtle.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- minimal JSON reader: numeric leaves only -------------------------------
//
// The bench writers emit a small, regular subset of JSON (objects, numbers,
// strings). This reader walks the full grammar but records only numeric
// leaves, keyed by their dotted path.

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  bool failed = false;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  void fail() { failed = true; }
};

using FlatMetrics = std::map<std::string, double>;

void parse_value(Parser& p, const std::string& path, FlatMetrics& out);

void parse_object(Parser& p, const std::string& path, FlatMetrics& out) {
  if (p.eat('}')) return;
  while (!p.failed) {
    p.skip_ws();
    if (p.i >= p.s.size() || p.s[p.i] != '"') return p.fail();
    ++p.i;
    std::string key;
    while (p.i < p.s.size() && p.s[p.i] != '"') key += p.s[p.i++];
    if (p.i >= p.s.size()) return p.fail();
    ++p.i;
    if (!p.eat(':')) return p.fail();
    parse_value(p, path.empty() ? key : path + "." + key, out);
    if (p.eat(',')) continue;
    if (p.eat('}')) return;
    return p.fail();
  }
}

void parse_array(Parser& p, const std::string& path, FlatMetrics& out) {
  if (p.eat(']')) return;
  for (int idx = 0; !p.failed; ++idx) {
    parse_value(p, path + "[" + std::to_string(idx) + "]", out);
    if (p.eat(',')) continue;
    if (p.eat(']')) return;
    return p.fail();
  }
}

void parse_value(Parser& p, const std::string& path, FlatMetrics& out) {
  p.skip_ws();
  if (p.i >= p.s.size()) return p.fail();
  const char c = p.s[p.i];
  if (c == '{') {
    ++p.i;
    return parse_object(p, path, out);
  }
  if (c == '[') {
    ++p.i;
    return parse_array(p, path, out);
  }
  if (c == '"') {  // string leaf (schema names): skipped
    ++p.i;
    while (p.i < p.s.size() && p.s[p.i] != '"') {
      if (p.s[p.i] == '\\') ++p.i;
      ++p.i;
    }
    if (p.i >= p.s.size()) return p.fail();
    ++p.i;
    return;
  }
  if (std::isalpha(static_cast<unsigned char>(c))) {  // true/false/null
    while (p.i < p.s.size() &&
           std::isalpha(static_cast<unsigned char>(p.s[p.i])))
      ++p.i;
    return;
  }
  // number
  const std::size_t start = p.i;
  while (p.i < p.s.size() &&
         (std::isdigit(static_cast<unsigned char>(p.s[p.i])) ||
          std::strchr("+-.eE", p.s[p.i]) != nullptr))
    ++p.i;
  if (p.i == start) return p.fail();
  out[path] = std::strtod(p.s.c_str() + start, nullptr);
}

bool load_metrics(const std::string& file, FlatMetrics& out) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "nezha_report: cannot open %s\n", file.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  Parser p{text};
  parse_value(p, "", out);
  p.skip_ws();
  if (p.failed || p.i != text.size()) {
    std::fprintf(stderr, "nezha_report: %s: malformed JSON near byte %zu\n",
                 file.c_str(), p.i);
    return false;
  }
  return true;
}

// --- metric classification --------------------------------------------------

enum class Direction { kHigherIsBetter, kLowerIsBetter, kInformational };

bool contains_any(const std::string& s, const std::vector<const char*>& subs) {
  for (const char* sub : subs)
    if (s.find(sub) != std::string::npos) return true;
  return false;
}

Direction classify(const std::string& path) {
  // Config echoes and pinned baselines are never judged: they describe the
  // run, they aren't results of it.
  if (contains_any(path, {"pre_change", "burst_config", "schema",
                          "num_vswitches", "window_", "_window"}))
    return Direction::kInformational;
  if (contains_any(path, {"per_sec", "_pps", "speedup", "sweeps",
                          "throughput", "probe_delivered"}))
    return Direction::kHigherIsBetter;
  if (contains_any(path, {"alloc", "latency", "loss"}))
    return Direction::kLowerIsBetter;
  // Counts (simulated_packets, completed_connections, sent, delivered...):
  // exact-equality properties of these are the bench binaries' own gates.
  return Direction::kInformational;
}

struct Delta {
  std::string path;
  double base;
  double fresh;
  double rel;  // signed change relative to baseline, + = fresh larger
  Direction dir;
  bool regression;
};

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  std::vector<std::string> files;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--threshold") == 0 && a + 1 < argc) {
      threshold = std::strtod(argv[++a], nullptr);
    } else if (std::strncmp(argv[a], "--threshold=", 12) == 0) {
      threshold = std::strtod(argv[a] + 12, nullptr);
    } else if (std::strcmp(argv[a], "--help") == 0) {
      std::printf(
          "usage: nezha_report [--threshold FRAC] BASELINE FRESH "
          "[BASELINE2 FRESH2 ...]\n");
      return 0;
    } else {
      files.push_back(argv[a]);
    }
  }
  if (files.empty() || files.size() % 2 != 0) {
    std::fprintf(stderr,
                 "nezha_report: need (baseline, fresh) file pairs; got %zu "
                 "file(s)\n",
                 files.size());
    return 2;
  }

  int regressions = 0;
  for (std::size_t pair = 0; pair + 1 < files.size(); pair += 2) {
    FlatMetrics base, fresh;
    if (!load_metrics(files[pair], base) ||
        !load_metrics(files[pair + 1], fresh))
      return 2;

    std::printf("== %s vs %s (threshold %.0f%%)\n", files[pair].c_str(),
                files[pair + 1].c_str(), threshold * 100.0);

    std::vector<Delta> deltas;
    for (const auto& [path, bval] : base) {
      auto it = fresh.find(path);
      if (it == fresh.end()) {
        // Present only in the baseline: the metric was removed (or renamed)
        // by a schema rev. Informational, never gated — show the stranded
        // baseline value so re-baselining is a conscious act.
        std::printf("  %-12s %-52s %14.4g -> (absent)\n", "[REMOVED]",
                    path.c_str(), bval);
        continue;
      }
      const double fval = it->second;
      Delta d{path, bval, fval, 0.0, classify(path), false};
      if (bval != 0.0) {
        d.rel = (fval - bval) / std::fabs(bval);
      } else {
        // Zero baseline (e.g. allocs_per_packet = 0): relative change is
        // undefined, so judge the absolute drift against the threshold.
        d.rel = fval;
      }
      if (d.dir == Direction::kHigherIsBetter)
        d.regression = d.rel < -threshold;
      else if (d.dir == Direction::kLowerIsBetter)
        d.regression = d.rel > threshold;
      deltas.push_back(d);
    }
    for (const auto& [path, fval] : fresh) {
      // Present only in the fresh run: a new metric the baseline predates.
      // Informational, never gated — it has nothing to regress against
      // until the baseline is re-recorded.
      if (base.find(path) == base.end())
        std::printf("  %-12s %-52s %14s -> %-14.4g\n", "[NEW]", path.c_str(),
                    "(absent)", fval);
    }

    for (const auto& d : deltas) {
      const char* tag = d.regression ? "[REGRESSION]"
                        : d.dir == Direction::kInformational
                            ? "[INFO]"
                            : "[OK]";
      if (d.regression) ++regressions;
      // Keep the report short: unchanged informational leaves are noise.
      if (d.dir == Direction::kInformational && d.base == d.fresh) continue;
      std::printf("  %-12s %-52s %14.4g -> %-14.4g (%+.1f%%)\n", tag,
                  d.path.c_str(), d.base, d.fresh, d.rel * 100.0);
    }
  }

  if (regressions > 0) {
    std::printf("nezha_report: %d metric(s) regressed past the threshold\n",
                regressions);
    return 1;
  }
  std::printf("nezha_report: no regressions past the threshold\n");
  return 0;
}
