// Verdict engine: the CI gate that turns bench JSON + telemetry streams
// into a one-page run verdict.
//
//   nezha_report [--threshold 0.10] [--telemetry FILE]... [--markdown FILE]
//                [--trajectory FILE] [BASELINE FRESH ...]
//
// Three inputs, one exit code:
//
//  * (baseline, fresh) bench pairs — compared leaf by leaf: the JSON trees
//    are flattened to dotted numeric paths and each leaf is classified by
//    name into higher-is-better (rates, speedups, delivery fractions),
//    lower-is-better (allocations, latency, loss), or informational
//    (counts, config echoes, wall-clock profile fields — printed when they
//    move, never gated). Leaves present on only one side are schema drift,
//    not regressions.
//  * --telemetry streams (`nezha-telemetry-v1` JSON) — the `slo` section
//    is evaluated per stream: any recorded violation fails the run, and
//    the per-rule burn rates / worst offenders feed the dashboard's SLO
//    table. The `sim.profile` section (sharded runs) feeds the shard phase
//    breakdown. An empty stream is "no samples" (warned, never fatal).
//  * --markdown renders the one-page dashboard; --trajectory appends a
//    one-line JSON run summary to a history file (BENCH_trajectory.jsonl).
//
// Exit: 0 clean; 1 on any regression past the threshold or any SLO
// violation; 2 on usage / unreadable or malformed input (reported with
// file and line).
//
// CI runs this after the bench binaries regenerate BENCH_*.json, against
// the checked-in copies (see README "Recording a new baseline"):
// wall-clock rates on shared runners are noisy, which is exactly why the
// default threshold is a coarse 10% — it catches a path going off a
// cliff, while the benches' machine-independent [SHAPE] gates catch
// everything subtle.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- minimal JSON reader: numeric leaves only -------------------------------
//
// The bench and telemetry writers emit a small, regular subset of JSON
// (objects, arrays, numbers, strings). This reader walks the full grammar
// but records only numeric leaves, keyed by their dotted path.

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  bool failed = false;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  void fail() { failed = true; }
};

using FlatMetrics = std::map<std::string, double>;

void parse_value(Parser& p, const std::string& path, FlatMetrics& out);

void parse_object(Parser& p, const std::string& path, FlatMetrics& out) {
  if (p.eat('}')) return;
  while (!p.failed) {
    p.skip_ws();
    if (p.i >= p.s.size() || p.s[p.i] != '"') return p.fail();
    ++p.i;
    std::string key;
    while (p.i < p.s.size() && p.s[p.i] != '"') key += p.s[p.i++];
    if (p.i >= p.s.size()) return p.fail();
    ++p.i;
    if (!p.eat(':')) return p.fail();
    parse_value(p, path.empty() ? key : path + "." + key, out);
    if (p.eat(',')) continue;
    if (p.eat('}')) return;
    return p.fail();
  }
}

void parse_array(Parser& p, const std::string& path, FlatMetrics& out) {
  if (p.eat(']')) return;
  for (int idx = 0; !p.failed; ++idx) {
    parse_value(p, path + "[" + std::to_string(idx) + "]", out);
    if (p.eat(',')) continue;
    if (p.eat(']')) return;
    return p.fail();
  }
}

void parse_value(Parser& p, const std::string& path, FlatMetrics& out) {
  p.skip_ws();
  if (p.i >= p.s.size()) return p.fail();
  const char c = p.s[p.i];
  if (c == '{') {
    ++p.i;
    return parse_object(p, path, out);
  }
  if (c == '[') {
    ++p.i;
    return parse_array(p, path, out);
  }
  if (c == '"') {  // string leaf (schema names): skipped
    ++p.i;
    while (p.i < p.s.size() && p.s[p.i] != '"') {
      if (p.s[p.i] == '\\') ++p.i;
      ++p.i;
    }
    if (p.i >= p.s.size()) return p.fail();
    ++p.i;
    return;
  }
  if (std::isalpha(static_cast<unsigned char>(c))) {  // true/false/null
    while (p.i < p.s.size() &&
           std::isalpha(static_cast<unsigned char>(p.s[p.i])))
      ++p.i;
    return;
  }
  // number
  const std::size_t start = p.i;
  while (p.i < p.s.size() &&
         (std::isdigit(static_cast<unsigned char>(p.s[p.i])) ||
          std::strchr("+-.eE", p.s[p.i]) != nullptr))
    ++p.i;
  if (p.i == start) return p.fail();
  out[path] = std::strtod(p.s.c_str() + start, nullptr);
}

/// 1-based line number of byte offset `at` (for parse diagnostics).
std::size_t line_of(const std::string& text, std::size_t at) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < at && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

enum class LoadResult { kOk, kEmpty, kError };

/// Parses `file` into flattened numeric leaves. An empty (or
/// whitespace-only) file is kEmpty — the caller decides whether that is
/// fatal. Malformed JSON reports the offending file and line.
LoadResult load_metrics(const std::string& file, FlatMetrics& out) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "nezha_report: cannot open %s\n", file.c_str());
    return LoadResult::kError;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  bool blank = true;
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      blank = false;
      break;
    }
  }
  if (blank) return LoadResult::kEmpty;
  Parser p{text};
  parse_value(p, "", out);
  p.skip_ws();
  if (p.failed || p.i != text.size()) {
    std::fprintf(stderr,
                 "nezha_report: %s: malformed JSON at line %zu (byte %zu of "
                 "%zu)%s\n",
                 file.c_str(), line_of(text, p.i), p.i, text.size(),
                 p.i >= text.size() ? " — input looks truncated" : "");
    return LoadResult::kError;
  }
  return LoadResult::kOk;
}

// --- metric classification --------------------------------------------------

enum class Direction { kHigherIsBetter, kLowerIsBetter, kInformational };

bool contains_any(const std::string& s, const std::vector<const char*>& subs) {
  for (const char* sub : subs)
    if (s.find(sub) != std::string::npos) return true;
  return false;
}

Direction classify(const std::string& path) {
  // Config echoes, pinned baselines and wall-clock profile attribution are
  // never judged: they describe the run, they aren't results of it. The
  // *_wall_ns profiler fields in particular exist to record where
  // wall-clock goes — gating them would turn runner noise into failures.
  if (contains_any(path, {"pre_change", "burst_config", "schema",
                          "num_vswitches", "window_", "_window", "wall_ns",
                          "profile.", "slo."}))
    return Direction::kInformational;
  if (contains_any(path, {"per_sec", "_pps", "speedup", "sweeps",
                          "throughput", "probe_delivered"}))
    return Direction::kHigherIsBetter;
  if (contains_any(path, {"alloc", "latency", "loss"}))
    return Direction::kLowerIsBetter;
  // Counts (simulated_packets, completed_connections, sent, delivered...):
  // exact-equality properties of these are the bench binaries' own gates.
  return Direction::kInformational;
}

struct Delta {
  std::string path;
  double base;
  double fresh;
  double rel;  // signed change relative to baseline, + = fresh larger
  Direction dir;
  bool regression;
};

struct PairReport {
  std::string base_file;
  std::string fresh_file;
  std::vector<Delta> deltas;
  std::vector<std::string> added;    // [NEW] paths
  std::vector<std::string> removed;  // [REMOVED] paths
  int regressions = 0;
};

// --- telemetry stream evaluation --------------------------------------------

struct SloRuleRow {
  std::string rule;
  double threshold = 0.0;
  double last = 0.0;
  double worst = 0.0;
  double burn = 0.0;
  std::uint64_t violations = 0;
  std::uint64_t worst_node = 0;
};

struct ShardProfileRow {
  std::uint64_t shard = 0;
  std::uint64_t epochs = 0;
  double snapshot_ns = 0.0;
  double advance_ns = 0.0;
  double wait_ns = 0.0;
  double ff_ns = 0.0;
  double fence_ns = 0.0;  // shard 0 only
  std::uint64_t fence_barriers = 0;
  std::uint64_t ff_jumps = 0;
  bool has_fence = false;
};

struct StreamReport {
  std::string file;
  bool empty = false;       // no samples (blank file or samples_taken == 0)
  std::uint64_t samples = 0;
  std::uint64_t slo_violations = 0;
  double max_burn = 0.0;
  std::vector<SloRuleRow> rules;
  bool has_profile = false;
  ShardProfileRow profile;
};

double get_or(const FlatMetrics& m, const std::string& key, double dflt) {
  const auto it = m.find(key);
  return it == m.end() ? dflt : it->second;
}

StreamReport evaluate_stream(const std::string& file, const FlatMetrics& m,
                             bool blank) {
  StreamReport r;
  r.file = file;
  if (blank) {
    r.empty = true;
    return r;
  }
  r.samples = static_cast<std::uint64_t>(get_or(m, "samples_taken", 0.0));
  if (r.samples == 0) r.empty = true;
  r.slo_violations =
      static_cast<std::uint64_t>(get_or(m, "slo.total_violations", 0.0));

  // Collect per-rule rows from the flattened "slo.rules.<rule>.<field>"
  // paths (rule names never contain a dot).
  const std::string prefix = "slo.rules.";
  for (auto it = m.lower_bound(prefix);
       it != m.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    const std::string rest = it->first.substr(prefix.size());
    const std::size_t dot = rest.find('.');
    if (dot == std::string::npos) continue;
    const std::string rule = rest.substr(0, dot);
    if (r.rules.empty() || r.rules.back().rule != rule) {
      SloRuleRow row;
      row.rule = rule;
      const std::string base = prefix + rule + ".";
      row.threshold = get_or(m, base + "threshold", 0.0);
      row.last = get_or(m, base + "last", 0.0);
      row.worst = get_or(m, base + "worst", 0.0);
      row.burn = get_or(m, base + "burn_rate", 0.0);
      row.violations =
          static_cast<std::uint64_t>(get_or(m, base + "violations", 0.0));
      row.worst_node =
          static_cast<std::uint64_t>(get_or(m, base + "worst_node", 0.0));
      if (row.burn > r.max_burn) r.max_burn = row.burn;
      r.rules.push_back(row);
    }
  }

  if (m.count("sim.profile.epochs") != 0) {
    r.has_profile = true;
    r.profile.shard =
        static_cast<std::uint64_t>(get_or(m, "sim.profile.shard", 0.0));
    r.profile.epochs =
        static_cast<std::uint64_t>(get_or(m, "sim.profile.epochs", 0.0));
    r.profile.snapshot_ns = get_or(m, "sim.profile.snapshot_wall_ns", 0.0);
    r.profile.advance_ns = get_or(m, "sim.profile.advance_wall_ns", 0.0);
    r.profile.wait_ns = get_or(m, "sim.profile.barrier_wait_wall_ns", 0.0);
    r.profile.ff_ns = get_or(m, "sim.profile.fast_forward_wall_ns", 0.0);
    if (m.count("sim.profile.fence_wall_ns") != 0) {
      r.profile.has_fence = true;
      r.profile.fence_ns = get_or(m, "sim.profile.fence_wall_ns", 0.0);
      r.profile.fence_barriers = static_cast<std::uint64_t>(
          get_or(m, "sim.profile.fence_barriers", 0.0));
      r.profile.ff_jumps =
          static_cast<std::uint64_t>(get_or(m, "sim.profile.ff_jumps", 0.0));
    }
  }
  return r;
}

// --- markdown dashboard -----------------------------------------------------

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string fmt_ms(double ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2f", ns * 1e-6);
  return buf;
}

void write_markdown(std::FILE* md, const std::vector<PairReport>& pairs,
                    const std::vector<StreamReport>& streams, double threshold,
                    int total_regressions, std::uint64_t total_slo,
                    const std::string& trajectory_file) {
  const bool pass = total_regressions == 0 && total_slo == 0;
  std::fprintf(md, "# nezha_report — %s\n\n", pass ? "PASS ✅" : "FAIL ❌");
  std::size_t added = 0, removed = 0;
  for (const PairReport& p : pairs) {
    added += p.added.size();
    removed += p.removed.size();
  }
  std::fprintf(md,
               "- bench pairs: %zu · regressions: %d (threshold %.0f%%) · "
               "schema drift: %zu new / %zu removed\n",
               pairs.size(), total_regressions, threshold * 100.0, added,
               removed);
  double max_burn = 0.0;
  for (const StreamReport& s : streams) {
    if (s.max_burn > max_burn) max_burn = s.max_burn;
  }
  std::fprintf(md,
               "- telemetry streams: %zu · SLO violations: %llu · max burn "
               "rate: %s\n\n",
               streams.size(), static_cast<unsigned long long>(total_slo),
               fmt(max_burn).c_str());

  std::fprintf(md, "## Headline rates\n\n");
  std::fprintf(md, "| pair | metric | baseline | fresh | Δ |\n");
  std::fprintf(md, "|---|---|---:|---:|---:|\n");
  bool any_rate = false;
  for (const PairReport& p : pairs) {
    // Every regression, plus the biggest movers among gated metrics.
    std::vector<const Delta*> rows;
    for (const Delta& d : p.deltas) {
      if (d.dir != Direction::kInformational) rows.push_back(&d);
    }
    std::sort(rows.begin(), rows.end(), [](const Delta* a, const Delta* b) {
      if (a->regression != b->regression) return a->regression;
      return std::fabs(a->rel) > std::fabs(b->rel);
    });
    std::size_t shown = 0;
    for (const Delta* d : rows) {
      if (!d->regression && shown >= 3) break;
      std::fprintf(md, "| %s | %s%s | %s | %s | %+.1f%% |\n",
                   p.fresh_file.c_str(), d->regression ? "**" : "",
                   (d->path + (d->regression ? "**" : "")).c_str(),
                   fmt(d->base).c_str(), fmt(d->fresh).c_str(),
                   d->rel * 100.0);
      ++shown;
      any_rate = true;
    }
  }
  if (!any_rate) std::fprintf(md, "| — | (no gated metrics) | | | |\n");

  std::fprintf(md, "\n## SLO\n\n");
  bool any_slo = false;
  std::fprintf(md,
               "| stream | rule | threshold | last | worst | worst node | "
               "burn rate | violations |\n");
  std::fprintf(md, "|---|---|---:|---:|---:|---:|---:|---:|\n");
  for (const StreamReport& s : streams) {
    if (s.empty) {
      std::fprintf(md, "| %s | _(no samples)_ | | | | | | |\n",
                   s.file.c_str());
      any_slo = true;
      continue;
    }
    for (const SloRuleRow& r : s.rules) {
      std::fprintf(md, "| %s | %s%s%s | %s | %s | %s | %llu | %s | %llu |\n",
                   s.file.c_str(), r.violations ? "**" : "", r.rule.c_str(),
                   r.violations ? "**" : "", fmt(r.threshold).c_str(),
                   fmt(r.last).c_str(), fmt(r.worst).c_str(),
                   static_cast<unsigned long long>(r.worst_node),
                   fmt(r.burn).c_str(),
                   static_cast<unsigned long long>(r.violations));
      any_slo = true;
    }
  }
  if (!any_slo) std::fprintf(md, "| — | (no telemetry stream) | | | | | | |\n");

  std::fprintf(md, "\n## Shard phase profile\n\n");
  bool any_prof = false;
  std::fprintf(md,
               "| stream | shard | epochs | snapshot ms | advance ms | "
               "barrier wait ms | fast-forward ms | fence ms | fence "
               "barriers | ff jumps |\n");
  std::fprintf(md, "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n");
  for (const StreamReport& s : streams) {
    if (!s.has_profile) continue;
    const ShardProfileRow& p = s.profile;
    std::fprintf(md,
                 "| %s | %llu | %llu | %s | %s | %s | %s | %s | %llu | %llu "
                 "|\n",
                 s.file.c_str(), static_cast<unsigned long long>(p.shard),
                 static_cast<unsigned long long>(p.epochs),
                 fmt_ms(p.snapshot_ns).c_str(), fmt_ms(p.advance_ns).c_str(),
                 fmt_ms(p.wait_ns).c_str(), fmt_ms(p.ff_ns).c_str(),
                 p.has_fence ? fmt_ms(p.fence_ns).c_str() : "—",
                 static_cast<unsigned long long>(p.fence_barriers),
                 static_cast<unsigned long long>(p.ff_jumps));
    any_prof = true;
  }
  if (!any_prof)
    std::fprintf(md, "| — | (no sharded telemetry stream) | | | | | | | | |\n");

  std::fprintf(md, "\n## Schema drift\n\n");
  bool any_drift = false;
  for (const PairReport& p : pairs) {
    for (const std::string& path : p.added) {
      std::fprintf(md, "- `[NEW]` %s: `%s`\n", p.fresh_file.c_str(),
                   path.c_str());
      any_drift = true;
    }
    for (const std::string& path : p.removed) {
      std::fprintf(md, "- `[REMOVED]` %s: `%s`\n", p.fresh_file.c_str(),
                   path.c_str());
      any_drift = true;
    }
  }
  if (!any_drift) std::fprintf(md, "- none\n");
  if (!trajectory_file.empty()) {
    std::fprintf(md, "\n_run summary appended to `%s`_\n",
                 trajectory_file.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  std::vector<std::string> files;
  std::vector<std::string> telemetry_files;
  std::string markdown_file;
  std::string trajectory_file;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--threshold") == 0 && a + 1 < argc) {
      threshold = std::strtod(argv[++a], nullptr);
    } else if (std::strncmp(argv[a], "--threshold=", 12) == 0) {
      threshold = std::strtod(argv[a] + 12, nullptr);
    } else if (std::strcmp(argv[a], "--telemetry") == 0 && a + 1 < argc) {
      telemetry_files.push_back(argv[++a]);
    } else if (std::strcmp(argv[a], "--markdown") == 0 && a + 1 < argc) {
      markdown_file = argv[++a];
    } else if (std::strcmp(argv[a], "--trajectory") == 0 && a + 1 < argc) {
      trajectory_file = argv[++a];
    } else if (std::strcmp(argv[a], "--help") == 0) {
      std::printf(
          "usage: nezha_report [--threshold FRAC] [--telemetry FILE]...\n"
          "                    [--markdown FILE] [--trajectory FILE]\n"
          "                    [BASELINE FRESH ...]\n");
      return 0;
    } else {
      files.push_back(argv[a]);
    }
  }
  if (files.size() % 2 != 0) {
    std::fprintf(stderr,
                 "nezha_report: need (baseline, fresh) file pairs; got %zu "
                 "file(s)\n",
                 files.size());
    return 2;
  }
  if (files.empty() && telemetry_files.empty()) {
    std::fprintf(stderr,
                 "nezha_report: nothing to do — pass bench pairs and/or "
                 "--telemetry streams (see --help)\n");
    return 2;
  }

  int total_regressions = 0;
  std::vector<PairReport> pairs;
  for (std::size_t pair = 0; pair + 1 < files.size(); pair += 2) {
    FlatMetrics base, fresh;
    // Bench inputs are mandatory content: an empty file here is an error
    // (a bench that wrote nothing), unlike a telemetry stream.
    const LoadResult rb = load_metrics(files[pair], base);
    const LoadResult rf = load_metrics(files[pair + 1], fresh);
    if (rb != LoadResult::kOk || rf != LoadResult::kOk) {
      if (rb == LoadResult::kEmpty)
        std::fprintf(stderr, "nezha_report: %s: empty bench JSON\n",
                     files[pair].c_str());
      if (rf == LoadResult::kEmpty)
        std::fprintf(stderr, "nezha_report: %s: empty bench JSON\n",
                     files[pair + 1].c_str());
      return 2;
    }

    PairReport rep;
    rep.base_file = files[pair];
    rep.fresh_file = files[pair + 1];

    std::printf("== %s vs %s (threshold %.0f%%)\n", files[pair].c_str(),
                files[pair + 1].c_str(), threshold * 100.0);

    for (const auto& [path, bval] : base) {
      auto it = fresh.find(path);
      if (it == fresh.end()) {
        // Present only in the baseline: the metric was removed (or renamed)
        // by a schema rev. Informational, never gated — show the stranded
        // baseline value so re-baselining is a conscious act.
        std::printf("  %-12s %-52s %14.4g -> (absent)\n", "[REMOVED]",
                    path.c_str(), bval);
        rep.removed.push_back(path);
        continue;
      }
      const double fval = it->second;
      Delta d{path, bval, fval, 0.0, classify(path), false};
      if (bval != 0.0) {
        d.rel = (fval - bval) / std::fabs(bval);
      } else {
        // Zero baseline (e.g. allocs_per_packet = 0): relative change is
        // undefined, so judge the absolute drift against the threshold.
        d.rel = fval;
      }
      if (d.dir == Direction::kHigherIsBetter)
        d.regression = d.rel < -threshold;
      else if (d.dir == Direction::kLowerIsBetter)
        d.regression = d.rel > threshold;
      rep.deltas.push_back(d);
    }
    for (const auto& [path, fval] : fresh) {
      // Present only in the fresh run: a new metric the baseline predates.
      // Informational, never gated — it has nothing to regress against
      // until the baseline is re-recorded.
      if (base.find(path) == base.end()) {
        std::printf("  %-12s %-52s %14s -> %-14.4g\n", "[NEW]", path.c_str(),
                    "(absent)", fval);
        rep.added.push_back(path);
      }
    }

    for (const auto& d : rep.deltas) {
      const char* tag = d.regression ? "[REGRESSION]"
                        : d.dir == Direction::kInformational
                            ? "[INFO]"
                            : "[OK]";
      if (d.regression) {
        ++rep.regressions;
        ++total_regressions;
      }
      // Keep the report short: unchanged informational leaves are noise,
      // and wall-clock profiler fields move every run by construction.
      if (d.dir == Direction::kInformational &&
          (d.base == d.fresh || d.path.find("wall_ns") != std::string::npos))
        continue;
      std::printf("  %-12s %-52s %14.4g -> %-14.4g (%+.1f%%)\n", tag,
                  d.path.c_str(), d.base, d.fresh, d.rel * 100.0);
    }
    pairs.push_back(std::move(rep));
  }

  std::uint64_t total_slo = 0;
  std::vector<StreamReport> streams;
  for (const std::string& tf : telemetry_files) {
    FlatMetrics m;
    const LoadResult res = load_metrics(tf, m);
    if (res == LoadResult::kError) return 2;
    StreamReport sr = evaluate_stream(tf, m, res == LoadResult::kEmpty);
    if (sr.empty) {
      std::printf("== telemetry %s: no samples (empty stream) — skipped\n",
                  tf.c_str());
    } else {
      std::printf("== telemetry %s: %llu samples, %llu SLO violation(s), "
                  "max burn %.3f\n",
                  tf.c_str(), static_cast<unsigned long long>(sr.samples),
                  static_cast<unsigned long long>(sr.slo_violations),
                  sr.max_burn);
      for (const SloRuleRow& r : sr.rules) {
        if (r.violations == 0) continue;
        std::printf(
            "  [SLO]        %-52s worst %.4g (node %llu) burn %.3f x%llu\n",
            r.rule.c_str(), r.worst,
            static_cast<unsigned long long>(r.worst_node), r.burn,
            static_cast<unsigned long long>(r.violations));
      }
      total_slo += sr.slo_violations;
    }
    streams.push_back(std::move(sr));
  }

  if (!markdown_file.empty()) {
    std::FILE* md = std::fopen(markdown_file.c_str(), "w");
    if (md == nullptr) {
      std::fprintf(stderr, "nezha_report: cannot write %s\n",
                   markdown_file.c_str());
      return 2;
    }
    write_markdown(md, pairs, streams, threshold, total_regressions,
                   total_slo, trajectory_file);
    std::fclose(md);
  }

  if (!trajectory_file.empty()) {
    std::FILE* tj = std::fopen(trajectory_file.c_str(), "a");
    if (tj == nullptr) {
      std::fprintf(stderr, "nezha_report: cannot append to %s\n",
                   trajectory_file.c_str());
      return 2;
    }
    std::size_t added = 0, removed = 0;
    for (const PairReport& p : pairs) {
      added += p.added.size();
      removed += p.removed.size();
    }
    double max_burn = 0.0;
    for (const StreamReport& s : streams) {
      if (s.max_burn > max_burn) max_burn = s.max_burn;
    }
    const bool pass = total_regressions == 0 && total_slo == 0;
    std::fprintf(tj,
                 "{\"utc\": %lld, \"pairs\": %zu, \"regressions\": %d, "
                 "\"new\": %zu, \"removed\": %zu, \"streams\": %zu, "
                 "\"slo_violations\": %llu, \"max_burn\": %.4g, "
                 "\"verdict\": \"%s\"}\n",
                 static_cast<long long>(std::time(nullptr)), pairs.size(),
                 total_regressions, added, removed, streams.size(),
                 static_cast<unsigned long long>(total_slo), max_burn,
                 pass ? "pass" : "fail");
    std::fclose(tj);
  }

  if (total_regressions > 0 || total_slo > 0) {
    std::printf(
        "nezha_report: FAIL — %d metric(s) regressed, %llu SLO "
        "violation(s)\n",
        total_regressions, static_cast<unsigned long long>(total_slo));
    return 1;
  }
  std::printf("nezha_report: no regressions past the threshold, SLOs met\n");
  return 0;
}
