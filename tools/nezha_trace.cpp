// nezha_trace: query tool for flight-recorder dumps.
//
// Answers the three questions the telemetry plane is built for:
//   timeline — every event touching one connection (or one packet), in
//              global record order, across all nodes of the fleet;
//   slowest  — the top-K slowest first-packet setups (table miss → first
//              VM delivery), the connections that paid the BE→FE detour
//              or a controller transition hardest;
//   audit    — the vNIC offload state machine as observed on one vSwitch,
//              flagging transitions that break the legal
//              local → dual-running → offloaded → dual-running → local
//              cycle (exit code 1 when any illegal step is found), plus a
//              shard section summarizing fenced control sections
//              (scheduled vs executed, flagging stuck fences) and an slo
//              section summarizing SLO-violation events per rule with
//              first/last sim-time and the worst offending node (exit
//              code 1 when any violation events are present);
//   path     — checks that one connection's trace contains the complete
//              BE → FE → peer forwarding detour (exit code 1 when not);
//   dump     — every event in record order (debugging aid).
//
// Dumps are written by telemetry::Hub::dump_trace / FlightRecorder::dump;
// both byte orders of identity fields are as recorded (host order — the
// dump is an offline artifact of the same build that produced it).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/telemetry/slo.h"
#include "src/telemetry/trace_query.h"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage:\n"
               "  nezha_trace timeline <dump> (--flow <hex> | --packet <id>)\n"
               "  nezha_trace slowest  <dump> [--k <n>]\n"
               "  nezha_trace audit    <dump> --node <id>   (also prints\n"
               "                       shard/fence and slo summaries across\n"
               "                       all nodes; exits 1 on SLO violations)\n"
               "  nezha_trace path     <dump> --flow <hex>\n"
               "  nezha_trace dump     <dump>\n"
               "\n"
               "  --flow takes the canonical-5-tuple hash printed in event\n"
               "  lines (flow=...., hex); --packet the decimal packet id.\n");
}

bool parse_u64(const char* s, int base, std::uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, base);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

/// Looks up `--name value` in argv; returns nullptr when absent.
const char* flag_value(int argc, char** argv, const char* name) {
  for (int i = 3; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

int cmd_timeline(const std::vector<nezha::telemetry::TraceEvent>& events,
                 int argc, char** argv) {
  const char* flow_arg = flag_value(argc, argv, "--flow");
  const char* pkt_arg = flag_value(argc, argv, "--packet");
  std::vector<nezha::telemetry::TraceEvent> selected;
  if (flow_arg != nullptr) {
    std::uint64_t flow = 0;
    if (!parse_u64(flow_arg, 16, &flow)) {
      std::fprintf(stderr, "nezha_trace: bad --flow '%s'\n", flow_arg);
      return 2;
    }
    selected = nezha::telemetry::filter_flow(events, flow);
  } else if (pkt_arg != nullptr) {
    std::uint64_t id = 0;
    if (!parse_u64(pkt_arg, 10, &id)) {
      std::fprintf(stderr, "nezha_trace: bad --packet '%s'\n", pkt_arg);
      return 2;
    }
    selected = nezha::telemetry::filter_packet(events, id);
  } else {
    usage(stderr);
    return 2;
  }
  nezha::telemetry::print_timeline(std::cout, selected);
  std::printf("%zu events\n", selected.size());
  return 0;
}

int cmd_slowest(const std::vector<nezha::telemetry::TraceEvent>& events,
                int argc, char** argv) {
  std::uint64_t k = 10;
  if (const char* k_arg = flag_value(argc, argv, "--k")) {
    if (!parse_u64(k_arg, 10, &k) || k == 0) {
      std::fprintf(stderr, "nezha_trace: bad --k '%s'\n", k_arg);
      return 2;
    }
  }
  const auto slow = nezha::telemetry::slowest_setups(
      events, static_cast<std::size_t>(k));
  std::printf("%-18s %16s %16s %12s\n", "flow", "miss_at", "deliver_at",
              "setup");
  for (const auto& s : slow) {
    std::printf("%016llx %16lld %16lld %12s\n",
                static_cast<unsigned long long>(s.flow),
                static_cast<long long>(s.miss_at),
                static_cast<long long>(s.deliver_at),
                nezha::common::format_duration(s.latency()).c_str());
  }
  std::printf("%zu setups\n", slow.size());
  return 0;
}

int cmd_audit(const std::vector<nezha::telemetry::TraceEvent>& events,
              int argc, char** argv) {
  const char* node_arg = flag_value(argc, argv, "--node");
  std::uint64_t node = 0;
  if (node_arg == nullptr || !parse_u64(node_arg, 10, &node)) {
    usage(stderr);
    return 2;
  }
  const auto steps = nezha::telemetry::audit_vswitch(
      events, static_cast<std::uint32_t>(node));
  std::size_t illegal = 0;
  for (const auto& t : steps) {
    if (!t.legal) ++illegal;
    std::printf("%16lld vnic=%llu %u -> %u %s\n",
                static_cast<long long>(t.at),
                static_cast<unsigned long long>(t.vnic),
                static_cast<unsigned>(t.from), static_cast<unsigned>(t.to),
                t.legal ? "ok" : "ILLEGAL");
  }
  std::printf("%zu transitions, %zu illegal\n", steps.size(), illegal);

  // Shard section: fenced-section lifecycle fleet-wide (not filtered by
  // --node — fences are engine-global). A scheduled fence with no matching
  // execution is "stuck": its due time lies beyond the last barrier, i.e.
  // the run ended before the section could run. That is legal (fences_
  // survive into the next window) but is exactly what to look at when a
  // control workflow seems to have vanished. Exit code stays driven by
  // illegal FSM transitions only.
  std::size_t sched = 0;
  std::size_t exec = 0;
  std::vector<const nezha::telemetry::TraceEvent*> pending;
  for (const auto& e : events) {
    if (e.kind == nezha::telemetry::EventKind::kFenceSched) {
      ++sched;
      pending.push_back(&e);
    } else if (e.kind == nezha::telemetry::EventKind::kFenceExec) {
      ++exec;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (pending[i]->b == e.b) {
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
  }
  if (sched != 0 || exec != 0) {
    std::printf("shard: %zu fenced sections scheduled, %zu executed, "
                "%zu stuck\n",
                sched, exec, pending.size());
    for (const auto* e : pending) {
      std::printf("  stuck fence seq=%llu due=%lld (scheduled at %lld)\n",
                  static_cast<unsigned long long>(e->b),
                  static_cast<long long>(e->a), static_cast<long long>(e->at));
    }
  }

  // SLO section (mirrors the fence section): violation events fleet-wide,
  // grouped per rule with first/last sim-time, the offending node of the
  // worst breach, and the count. Any violation fails the audit — these
  // events only exist when the in-sim tracker saw a declared SLO breached.
  struct SloGroup {
    std::size_t count = 0;
    long long first_at = 0;
    long long last_at = 0;
    double worst = 0.0;
    unsigned long long worst_node = 0;
  };
  std::map<std::uint64_t, SloGroup> slo_groups;
  for (const auto& e : events) {
    if (e.kind != nezha::telemetry::EventKind::kSloViolation) continue;
    SloGroup& g = slo_groups[e.a];
    const double v = static_cast<double>(e.b) / 1000.0;
    if (g.count == 0) {
      g.first_at = static_cast<long long>(e.at);
      g.worst = v;
      g.worst_node = e.node;
    } else if (v > g.worst) {
      g.worst = v;
      g.worst_node = e.node;
    }
    g.last_at = static_cast<long long>(e.at);
    ++g.count;
  }
  std::size_t slo_total = 0;
  if (!slo_groups.empty()) {
    std::printf("slo: %zu rule(s) violated\n", slo_groups.size());
    for (const auto& [rule, g] : slo_groups) {
      slo_total += g.count;
      std::printf("  %-18s x%-6zu first=%lld last=%lld worst=%.4g node=%llu\n",
                  std::string(nezha::telemetry::slo_rule_name(rule)).c_str(),
                  g.count, g.first_at, g.last_at, g.worst, g.worst_node);
    }
  }
  return illegal == 0 && slo_total == 0 ? 0 : 1;
}

int cmd_path(const std::vector<nezha::telemetry::TraceEvent>& events,
             int argc, char** argv) {
  const char* flow_arg = flag_value(argc, argv, "--flow");
  std::uint64_t flow = 0;
  if (flow_arg == nullptr || !parse_u64(flow_arg, 16, &flow)) {
    usage(stderr);
    return 2;
  }
  const auto check = nezha::telemetry::check_be_fe_peer_path(events, flow);
  nezha::telemetry::print_timeline(std::cout, check.timeline);
  std::printf("be_tx=%d redirect=%d fe_hop=%d peer_deliver=%d "
              "(be=%u fe=%u peer=%u)\n",
              check.have_be_tx ? 1 : 0, check.have_redirect ? 1 : 0,
              check.have_fe_hop ? 1 : 0, check.have_peer_deliver ? 1 : 0,
              check.be_node, check.fe_node, check.peer_node);
  std::printf(check.complete() ? "path: complete BE->FE->peer\n"
                               : "path: INCOMPLETE\n");
  return check.complete() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage(argc >= 2 && std::strcmp(argv[1], "--help") == 0 ? stdout : stderr);
    return argc >= 2 && std::strcmp(argv[1], "--help") == 0 ? 0 : 2;
  }
  const std::string cmd = argv[1];
  auto loaded = nezha::telemetry::load_trace_file(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "nezha_trace: %s: %s\n", argv[2],
                 loaded.error().message.c_str());
    return 1;
  }
  const std::vector<nezha::telemetry::TraceEvent> events =
      std::move(loaded).take();

  if (cmd == "timeline") return cmd_timeline(events, argc, argv);
  if (cmd == "slowest") return cmd_slowest(events, argc, argv);
  if (cmd == "audit") return cmd_audit(events, argc, argv);
  if (cmd == "path") return cmd_path(events, argc, argv);
  if (cmd == "dump") {
    nezha::telemetry::print_timeline(std::cout, events);
    std::printf("%zu events\n", events.size());
    return 0;
  }
  usage(stderr);
  return 2;
}
