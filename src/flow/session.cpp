#include "src/flow/session.h"

#include <cassert>

#include "src/net/bytes.h"

namespace nezha::flow {

void SessionState::observe(Direction dir, net::TcpFlags tcp_flags, bool is_tcp,
                           std::size_t wire_bytes, common::TimePoint now) {
  if (first_dir == FirstDirection::kNone) first_dir = to_first_direction(dir);
  if (is_tcp) fsm.on_packet(dir, tcp_flags);
  if (stats_mode == StatsMode::kPackets ||
      stats_mode == StatsMode::kPacketsAndBytes) {
    (dir == Direction::kTx ? pkts_tx : pkts_rx) += 1;
  }
  if (stats_mode == StatsMode::kBytes ||
      stats_mode == StatsMode::kPacketsAndBytes) {
    (dir == Direction::kTx ? bytes_tx : bytes_rx) += wire_bytes;
  }
  last_active = now;
}

std::size_t SessionState::used_bytes() const {
  std::size_t n = 0;
  if (first_dir != FirstDirection::kNone) n += 1;  // first-packet direction
  if (fsm.state() != TcpFsmState::kNone) n += 1;   // TCP FSM state
  if (decap_src_ip.value() != 0) n += 4;           // stateful-decap IP
  if (stats_mode != StatsMode::kNone) {
    n += 1;  // policy byte
    if (stats_mode == StatsMode::kPackets || stats_mode == StatsMode::kPacketsAndBytes)
      n += 8;  // packet counters (packed)
    if (stats_mode == StatsMode::kBytes || stats_mode == StatsMode::kPacketsAndBytes)
      n += 8;  // byte counters (packed)
  }
  return n;
}

void SessionState::serialize_snapshot_into(std::span<std::uint8_t> out) const {
  assert(out.size() == kSnapshotWireSize);
  net::FixedWriter w(out);
  w.u8(static_cast<std::uint8_t>(first_dir));
  w.u8(static_cast<std::uint8_t>(fsm.state()));
  w.u8(static_cast<std::uint8_t>(stats_mode));
  w.u32(decap_src_ip.value());
  assert(w.written() == kSnapshotWireSize);
}

std::vector<std::uint8_t> SessionState::serialize_snapshot() const {
  std::vector<std::uint8_t> out(kSnapshotWireSize);
  serialize_snapshot_into(out);
  return out;
}

common::Result<SessionState> SessionState::parse_snapshot(
    std::span<const std::uint8_t> bytes) {
  net::ByteReader r(bytes);
  SessionState s;
  s.first_dir = static_cast<FirstDirection>(r.u8());
  r.u8();  // FSM state is informational in the snapshot; the FE only needs
           // first_dir and the decap IP to finalize actions.
  s.stats_mode = static_cast<StatsMode>(r.u8());
  s.decap_src_ip = net::Ipv4Addr(r.u32());
  if (!r.ok()) return common::make_error("state snapshot: truncated");
  return s;
}

}  // namespace nezha::flow
