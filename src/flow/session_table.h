// Session table / flow cache.
//
// One class serves three deployment shapes (memory-accounted differently):
//  * traditional vSwitch: entries hold cached pre-actions AND state;
//  * Nezha BE:            entries hold state only (tables are remote);
//  * Nezha FE flow cache: entries hold pre-actions only (stateless).
//
// Memory accounting mirrors §2.2.2: key ≈ 16B (5-tuple + VPC), pre-actions
// ≈ 48B, state 64B fixed allocation — O(100B) per full entry. A byte
// capacity bounds the table; insertion fails when full, which is exactly the
// #concurrent-flows bottleneck.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "src/common/time.h"
#include "src/flow/pre_actions.h"
#include "src/flow/session.h"

namespace nezha::flow {

struct SessionEntry {
  std::optional<PreActions> pre_actions;
  SessionState state;
  common::TimePoint created_at = 0;
  /// Token bucket for the QoS pre-action (enforcement metadata, not session
  /// state — it never needs to leave the enforcing node).
  double qos_tokens_bits = 0;
  common::TimePoint qos_refilled_at = 0;

  /// Charges `bits` against the rate limit; returns false (drop) when the
  /// bucket is empty. `kbps` == 0 means unlimited. Burst: one second's
  /// worth of tokens.
  bool qos_admit(std::uint32_t kbps, std::size_t bits, common::TimePoint now);
};

struct SessionTableConfig {
  bool store_pre_actions = true;
  bool store_state = true;
  /// Byte budget; 0 means unlimited (useful in unit tests).
  std::size_t capacity_bytes = 0;
  /// Aging TTLs (§7.3: embryonic/SYN sessions age fast; the paper cites an
  /// 8s average lifetime for normal connections).
  common::Duration established_ttl = common::seconds(8);
  common::Duration embryonic_ttl = common::seconds(1);
  common::Duration closed_ttl = common::milliseconds(100);
};

class SessionTable {
 public:
  explicit SessionTable(SessionTableConfig config = {});

  /// Per-entry footprint under this table's configuration.
  std::size_t entry_bytes() const { return entry_bytes_; }

  std::size_t size() const { return entries_.size(); }
  std::size_t memory_bytes() const { return entries_.size() * entry_bytes_; }
  std::size_t capacity_bytes() const { return config_.capacity_bytes; }
  bool full() const {
    return config_.capacity_bytes != 0 &&
           memory_bytes() + entry_bytes_ > config_.capacity_bytes;
  }

  SessionEntry* find(const SessionKey& key);
  const SessionEntry* find(const SessionKey& key) const;

  /// Finds or creates an entry; returns nullptr when the table is full.
  SessionEntry* find_or_create(const SessionKey& key, common::TimePoint now);

  bool erase(const SessionKey& key);
  void clear();

  /// Drops every cached pre-action (rule-table update invalidation, §3.2.2);
  /// state-bearing entries survive, pure flow-cache entries are erased.
  void invalidate_pre_actions();

  /// Removes entries idle beyond their FSM-dependent TTL; returns the count.
  /// `on_evict` (optional) observes each removed entry — used by the
  /// vSwitch to release per-entry memory-pool reservations.
  using EvictFn = std::function<void(const SessionKey&, const SessionEntry&)>;
  std::size_t age_out(common::TimePoint now, const EvictFn& on_evict = {});

  /// TTL applicable to an entry (embryonic sessions age fast, §7.3).
  common::Duration ttl_of(const SessionEntry& entry) const;

  std::uint64_t insert_failures() const { return insert_failures_; }

  const SessionTableConfig& config() const { return config_; }

  /// Iteration support for censuses (e.g. the Fig 15 state-size census).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, entry] : entries_) fn(key, entry);
  }

 private:
  SessionTableConfig config_;
  std::size_t entry_bytes_;
  std::unordered_map<SessionKey, SessionEntry, SessionKeyHash> entries_;
  std::uint64_t insert_failures_ = 0;
};

}  // namespace nezha::flow
