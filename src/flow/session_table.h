// Session table / flow cache.
//
// One class serves three deployment shapes (memory-accounted differently):
//  * traditional vSwitch: entries hold cached pre-actions AND state;
//  * Nezha BE:            entries hold state only (tables are remote);
//  * Nezha FE flow cache: entries hold pre-actions only (stateless).
//
// Memory accounting mirrors §2.2.2: key ≈ 16B (5-tuple + VPC), pre-actions
// ≈ 48B, state 64B fixed allocation — O(100B) per full entry. A byte
// capacity bounds the table; insertion fails when full, which is exactly the
// #concurrent-flows bottleneck.
//
// Storage: entries live in fixed-size slab chunks (pointers returned by
// find/find_or_create stay valid until the entry is erased), indexed by an
// open-addressing probe table over a precomputed 64-bit flow hash — no
// per-node allocation or pointer chasing on the lookup hot path.
//
// Aging: a lazy TTL wheel. Every entry is queued in the bucket of its
// earliest *possible* deadline (TTLs are FSM-dependent, so that is
// last_active + min TTL at creation); age_out drains only buckets at or
// before `now`, recomputes each visited entry's exact deadline, and
// re-queues survivors at that deadline's bucket. Evictions are therefore
// exact while a sweep touches only expired candidates, not the whole table.
// External code that mutates an entry's state directly should call touch()
// afterwards so a TTL that *shrank* (e.g. FIN/RST → closed) re-queues the
// entry earlier; refreshes that extend the deadline need no notification.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/time.h"
#include "src/flow/pre_actions.h"
#include "src/flow/session.h"

namespace nezha::flow {

struct SessionEntry {
  std::optional<PreActions> pre_actions;
  SessionState state;
  common::TimePoint created_at = 0;
  /// Token bucket for the QoS pre-action (enforcement metadata, not session
  /// state — it never needs to leave the enforcing node).
  double qos_tokens_bits = 0;
  common::TimePoint qos_refilled_at = 0;
  /// Slab slot backing this entry; maintained by SessionTable (lets
  /// touch() reach the aging bookkeeping in O(1)).
  std::uint32_t table_slot = 0;

  /// Charges `bits` against the rate limit; returns false (drop) when the
  /// bucket is empty. `kbps` == 0 means unlimited. Burst: one second's
  /// worth of tokens.
  bool qos_admit(std::uint32_t kbps, std::size_t bits, common::TimePoint now);
};

struct SessionTableConfig {
  bool store_pre_actions = true;
  bool store_state = true;
  /// Byte budget; 0 means unlimited (useful in unit tests).
  std::size_t capacity_bytes = 0;
  /// Aging TTLs (§7.3: embryonic/SYN sessions age fast; the paper cites an
  /// 8s average lifetime for normal connections).
  common::Duration established_ttl = common::seconds(8);
  common::Duration embryonic_ttl = common::seconds(1);
  common::Duration closed_ttl = common::milliseconds(100);
};

class SessionTable {
 public:
  explicit SessionTable(SessionTableConfig config = {});

  /// Per-entry footprint under this table's configuration.
  std::size_t entry_bytes() const { return entry_bytes_; }

  std::size_t size() const { return size_; }
  std::size_t memory_bytes() const { return size_ * entry_bytes_; }
  std::size_t capacity_bytes() const { return config_.capacity_bytes; }
  bool full() const {
    return config_.capacity_bytes != 0 &&
           memory_bytes() + entry_bytes_ > config_.capacity_bytes;
  }

  SessionEntry* find(const SessionKey& key);
  const SessionEntry* find(const SessionKey& key) const;

  /// Finds or creates an entry; returns nullptr when the table is full.
  SessionEntry* find_or_create(const SessionKey& key, common::TimePoint now);

  /// Single-probe fusion of find() + find_or_create(): on a miss, `gate`
  /// (if set) decides whether creation may proceed — e.g. a memory-pool
  /// reservation — and nullptr is returned when it refuses or the table is
  /// full. The separate find-then-create idiom probes the index twice per
  /// new session; this probes once either way.
  SessionEntry* find_or_create_gated(const SessionKey& key,
                                     common::TimePoint now,
                                     bool (*gate)(void*), void* gate_ctx);

  bool erase(const SessionKey& key);
  void clear();

  /// Drops every cached pre-action (rule-table update invalidation, §3.2.2);
  /// state-bearing entries survive, pure flow-cache entries are erased.
  void invalidate_pre_actions();

  /// Removes entries idle beyond their FSM-dependent TTL; returns the count.
  /// `on_evict` (optional) observes each removed entry — used by the
  /// vSwitch to release per-entry memory-pool reservations.
  using EvictFn = std::function<void(const SessionKey&, const SessionEntry&)>;
  std::size_t age_out(common::TimePoint now, const EvictFn& on_evict = {});

  /// Re-syncs the aging wheel after the entry's state was mutated in place
  /// (the datapath calls this after state.observe()). Only needed when the
  /// mutation may have *shrunk* the deadline; always safe to call.
  void touch(const SessionEntry* entry);

  /// TTL applicable to an entry (embryonic sessions age fast, §7.3).
  common::Duration ttl_of(const SessionEntry& entry) const;

  std::uint64_t insert_failures() const { return insert_failures_; }

  const SessionTableConfig& config() const { return config_; }

  /// Burst-processing software prefetch (wall-clock only, no behavioral
  /// effect): step 1 computes the probe hash and prefetches the index cell;
  /// step 2 — issued after the other packets' step 1s, so the cell loads
  /// have landed — prefetches the key and entry the cell points at. A burst
  /// receiver runs step 1 across the whole burst, then step 2, then the
  /// actual per-packet find()s hit warm lines.
  std::uint64_t prefetch_index(const SessionKey& key) const;
  void prefetch_entry(std::uint64_t h) const;

  /// Iteration support for censuses (e.g. the Fig 15 state-size census).
  /// Order is slab order (deterministic for a given operation sequence).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t ci = 0; ci < chunks_.size(); ++ci) {
      const Chunk& chunk = *chunks_[ci];
      for (std::size_t ni = 0; ni < chunk.size(); ++ni) {
        if (chunk[ni].live) fn((*key_chunks_[ci])[ni], chunk[ni].entry);
      }
    }
  }

 private:
  static constexpr std::size_t kChunkSize = 512;
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  /// SoA hot-field split: keys live in a dense parallel slab (key_chunks_)
  /// so the probe loop's compares touch ~20B-stride lines instead of
  /// pulling whole Nodes; the fat Node (entry/state/aging bookkeeping) is
  /// only touched once a probe confirms the hit — which real processing
  /// pays anyway.
  struct Node {
    std::uint64_t hash = 0;
    SessionEntry entry;
    std::uint32_t gen = 1;       // bumped on free; stale wheel refs skip
    std::uint32_t wheel_seq = 0; // only the latest enqueue of a node is live
    std::int64_t wheel_bucket = 0;
    bool live = false;
  };
  using Chunk = std::vector<Node>;
  using KeyChunk = std::vector<SessionKey>;

  /// Probe cell: cached hash tag for cheap rejection + slab slot (or
  /// sentinel). The tag is the low 32 bits of the flow hash — placement
  /// still uses the full hash; a tag collision merely falls through to the
  /// key compare. 8 bytes/cell keeps the index cache-resident. Erases use
  /// backward-shift deletion (no tombstones), so session churn never forces
  /// an index rebuild and probe chains stay as short as the live load.
  struct Cell {
    std::uint32_t hash_tag = 0;
    std::uint32_t slot = kEmpty;
  };

  /// Wheel reference; stale once the node's gen or wheel_seq moves on.
  struct Ref {
    std::uint32_t slot;
    std::uint32_t gen;
    std::uint32_t seq;
  };

  static std::uint64_t hash_of(const SessionKey& key);
  Node& node_at(std::uint32_t slot) {
    return (*chunks_[slot / kChunkSize])[slot % kChunkSize];
  }
  const Node& node_at(std::uint32_t slot) const {
    return (*chunks_[slot / kChunkSize])[slot % kChunkSize];
  }
  SessionKey& key_at(std::uint32_t slot) {
    return (*key_chunks_[slot / kChunkSize])[slot % kChunkSize];
  }
  const SessionKey& key_at(std::uint32_t slot) const {
    return (*key_chunks_[slot / kChunkSize])[slot % kChunkSize];
  }

  std::uint32_t find_slot(const SessionKey& key, std::uint64_t h) const;
  void index_insert(std::uint64_t h, std::uint32_t slot);
  void index_erase(const SessionKey& key, std::uint64_t h);
  void rebuild_index(std::size_t new_size);

  std::int64_t bucket_of(common::TimePoint deadline) const {
    return deadline / wheel_width_;
  }
  std::vector<Ref>& wheel_cell(std::int64_t bucket) {
    return wheel_ring_[static_cast<std::size_t>(bucket) & wheel_mask_];
  }
  std::size_t drain_cell(std::vector<Ref>& cell, common::TimePoint now,
                         const EvictFn& on_evict,
                         std::vector<std::pair<std::int64_t, std::uint32_t>>&
                             requeue);
  common::TimePoint deadline_of(const Node& node) const {
    return node.entry.state.last_active + ttl_of(node.entry);
  }
  void wheel_enqueue(std::uint32_t slot, std::int64_t bucket);
  void free_node(std::uint32_t slot);

  SessionTableConfig config_;
  std::size_t entry_bytes_;
  /// Minimum TTL any entry can have — the conservative first-visit horizon.
  common::Duration min_ttl_;
  common::Duration wheel_width_;

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::unique_ptr<KeyChunk>> key_chunks_;  // parallel to chunks_
  std::vector<std::uint32_t> free_;
  std::vector<Cell> index_;
  std::size_t index_mask_ = 0;
  std::size_t size_ = 0;
  /// TTL wheel as a flat ring of bucket cells (power-of-two size covering
  /// the longest TTL plus slack). A cell may transiently hold refs for a
  /// bucket `ring_size` ahead of the drain cursor — an early visit merely
  /// recomputes the deadline and re-queues, so collisions cost work, never
  /// correctness. `wheel_floor_` is the lowest bucket that may still hold
  /// refs; touch() shrinking a deadline below it lowers it back.
  std::vector<std::vector<Ref>> wheel_ring_;
  std::size_t wheel_mask_ = 0;
  std::int64_t wheel_floor_ = 0;
  std::uint64_t insert_failures_ = 0;
};

}  // namespace nezha::flow
