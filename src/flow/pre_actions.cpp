#include "src/flow/pre_actions.h"

#include <cassert>

#include "src/net/bytes.h"

namespace nezha::flow {
namespace {

void write_dir(net::FixedWriter& w, const DirPreAction& d) {
  std::uint8_t flags = 0;
  if (d.acl_verdict == Verdict::kDrop) flags |= 0x01;
  if (d.nat_enabled) flags |= 0x02;
  if (d.mirror) flags |= 0x04;
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(d.stats_mode));
  w.u32(d.nat_ip.value());
  w.u16(d.nat_port);
  w.u32(d.rate_limit_kbps);
  w.u32(d.next_hop.ip.value());
  w.u64(d.next_hop.mac.value());
  w.u32(d.mirror_target.ip.value());
  w.u64(d.mirror_target.mac.value());
}

DirPreAction read_dir(net::ByteReader& r) {
  DirPreAction d;
  const std::uint8_t flags = r.u8();
  d.acl_verdict = (flags & 0x01) ? Verdict::kDrop : Verdict::kAccept;
  d.nat_enabled = flags & 0x02;
  d.mirror = flags & 0x04;
  d.stats_mode = static_cast<StatsMode>(r.u8());
  d.nat_ip = net::Ipv4Addr(r.u32());
  d.nat_port = r.u16();
  d.rate_limit_kbps = r.u32();
  d.next_hop.ip = net::Ipv4Addr(r.u32());
  d.next_hop.mac = net::MacAddr(r.u64());
  d.mirror_target.ip = net::Ipv4Addr(r.u32());
  d.mirror_target.mac = net::MacAddr(r.u64());
  return d;
}

}  // namespace

void PreActions::serialize_into(std::span<std::uint8_t> out) const {
  assert(out.size() == kWireSize);
  net::FixedWriter w(out);
  w.u32(rule_version);
  write_dir(w, tx);
  write_dir(w, rx);
  assert(w.written() == kWireSize);
}

std::vector<std::uint8_t> PreActions::serialize() const {
  std::vector<std::uint8_t> out(kWireSize);
  serialize_into(out);
  return out;
}

common::Result<PreActions> PreActions::parse(
    std::span<const std::uint8_t> bytes) {
  net::ByteReader r(bytes);
  PreActions p;
  p.rule_version = r.u32();
  p.tx = read_dir(r);
  p.rx = read_dir(r);
  if (!r.ok() || r.remaining() != 0) {
    return common::make_error("pre-actions: bad encoding");
  }
  return p;
}

}  // namespace nezha::flow
