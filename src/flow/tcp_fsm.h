// Connection-level TCP finite-state machine tracked in session state.
//
// This is the vSwitch's middlebox view of a connection (as in conntrack),
// driven by the flags of packets in each direction; it is deliberately
// simpler than an endpoint TCP implementation.
#pragma once

#include <cstdint>
#include <string>

#include "src/flow/direction.h"
#include "src/net/headers.h"

namespace nezha::flow {

enum class TcpFsmState : std::uint8_t {
  kNone = 0,        // no packet seen
  kSynSent = 1,     // SYN observed from the initiator
  kSynReceived = 2, // SYN+ACK observed from the responder
  kEstablished = 3, // final ACK of the handshake observed
  kFinWait = 4,     // one side sent FIN
  kClosing = 5,     // both sides sent FIN
  kClosed = 6,      // handshake-complete connection fully closed
  kReset = 7,       // RST observed
};

std::string to_string(TcpFsmState s);

class TcpFsm {
 public:
  TcpFsmState state() const { return state_; }
  bool established() const { return state_ == TcpFsmState::kEstablished; }
  bool closed() const {
    return state_ == TcpFsmState::kClosed || state_ == TcpFsmState::kReset;
  }
  /// True while the connection has not completed its handshake — such
  /// sessions get the short SYN aging time (§7.3).
  bool embryonic() const {
    return state_ == TcpFsmState::kNone || state_ == TcpFsmState::kSynSent ||
           state_ == TcpFsmState::kSynReceived;
  }

  /// Advances the FSM for a packet with `flags` travelling in direction
  /// `dir` relative to the session initiator (kTx = initiator→responder).
  void on_packet(Direction dir, net::TcpFlags flags);

 private:
  TcpFsmState state_ = TcpFsmState::kNone;
  bool fin_from_initiator_ = false;
  bool fin_from_responder_ = false;
};

}  // namespace nezha::flow
