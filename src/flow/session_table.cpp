#include "src/flow/session_table.h"

namespace nezha::flow {

bool SessionEntry::qos_admit(std::uint32_t kbps, std::size_t bits,
                             common::TimePoint now) {
  if (kbps == 0) return true;
  const double rate_bps = static_cast<double>(kbps) * 1000.0;
  const double burst_bits = rate_bps;  // one-second burst
  if (qos_refilled_at == 0) {
    qos_tokens_bits = burst_bits;
  } else {
    qos_tokens_bits += rate_bps * common::to_seconds(now - qos_refilled_at);
    if (qos_tokens_bits > burst_bits) qos_tokens_bits = burst_bits;
  }
  qos_refilled_at = now;
  if (qos_tokens_bits < static_cast<double>(bits)) return false;
  qos_tokens_bits -= static_cast<double>(bits);
  return true;
}

namespace {

std::size_t compute_entry_bytes(const SessionTableConfig& config) {
  std::size_t n = kSessionKeyBytes;
  if (config.store_pre_actions) n += kPreActionsBytes;
  if (config.store_state) n += kStateAllocBytes;
  return n;
}

}  // namespace

SessionTable::SessionTable(SessionTableConfig config)
    : config_(config), entry_bytes_(compute_entry_bytes(config)) {}

SessionEntry* SessionTable::find(const SessionKey& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const SessionEntry* SessionTable::find(const SessionKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

SessionEntry* SessionTable::find_or_create(const SessionKey& key,
                                           common::TimePoint now) {
  if (auto it = entries_.find(key); it != entries_.end()) return &it->second;
  if (full()) {
    ++insert_failures_;
    return nullptr;
  }
  auto [it, inserted] = entries_.emplace(key, SessionEntry{});
  it->second.created_at = now;
  it->second.state.last_active = now;
  return &it->second;
}

bool SessionTable::erase(const SessionKey& key) {
  return entries_.erase(key) > 0;
}

void SessionTable::clear() { entries_.clear(); }

void SessionTable::invalidate_pre_actions() {
  if (!config_.store_state) {
    // Pure flow cache: the whole entry is the pre-action.
    entries_.clear();
    return;
  }
  for (auto& [key, entry] : entries_) entry.pre_actions.reset();
}

common::Duration SessionTable::ttl_of(const SessionEntry& entry) const {
  if (!config_.store_state) return config_.established_ttl;
  if (entry.state.fsm.closed()) return config_.closed_ttl;
  if (entry.state.fsm.embryonic() &&
      entry.state.fsm.state() != TcpFsmState::kNone) {
    return config_.embryonic_ttl;
  }
  return config_.established_ttl;
}

std::size_t SessionTable::age_out(common::TimePoint now,
                                  const EvictFn& on_evict) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const common::Duration idle = now - it->second.state.last_active;
    if (idle >= ttl_of(it->second)) {
      if (on_evict) on_evict(it->first, it->second);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace nezha::flow
