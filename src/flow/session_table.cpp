#include "src/flow/session_table.h"

#include <algorithm>
#include <utility>

#include "src/net/five_tuple.h"

namespace nezha::flow {

bool SessionEntry::qos_admit(std::uint32_t kbps, std::size_t bits,
                             common::TimePoint now) {
  if (kbps == 0) return true;
  const double rate_bps = static_cast<double>(kbps) * 1000.0;
  const double burst_bits = rate_bps;  // one-second burst
  if (qos_refilled_at == 0) {
    qos_tokens_bits = burst_bits;
  } else {
    qos_tokens_bits += rate_bps * common::to_seconds(now - qos_refilled_at);
    if (qos_tokens_bits > burst_bits) qos_tokens_bits = burst_bits;
  }
  qos_refilled_at = now;
  if (qos_tokens_bits < static_cast<double>(bits)) return false;
  qos_tokens_bits -= static_cast<double>(bits);
  return true;
}

namespace {

std::size_t compute_entry_bytes(const SessionTableConfig& config) {
  std::size_t n = kSessionKeyBytes;
  if (config.store_pre_actions) n += kPreActionsBytes;
  if (config.store_state) n += kStateAllocBytes;
  return n;
}

constexpr std::size_t kInitialIndexSize = 64;  // power of two

}  // namespace

SessionTable::SessionTable(SessionTableConfig config)
    : config_(config), entry_bytes_(compute_entry_bytes(config)) {
  // Stateless tables have one fixed TTL; stateful ones can shrink down to
  // closed_ttl at any moment, so that is the conservative horizon.
  min_ttl_ = config_.established_ttl;
  if (config_.store_state) {
    min_ttl_ = std::min({config_.established_ttl, config_.embryonic_ttl,
                         config_.closed_ttl});
  }
  if (min_ttl_ < 1) min_ttl_ = 1;
  wheel_width_ = min_ttl_;
  index_.assign(kInitialIndexSize, Cell{});
  index_mask_ = kInitialIndexSize - 1;
}

std::uint64_t SessionTable::hash_of(const SessionKey& key) {
  return net::flow_hash(key.canonical_ft,
                        0x9e3779b97f4a7c15ull ^ key.vpc_id);
}

std::uint32_t SessionTable::find_slot(const SessionKey& key,
                                      std::uint64_t h) const {
  const auto tag = static_cast<std::uint32_t>(h);
  for (std::size_t i = h & index_mask_;; i = (i + 1) & index_mask_) {
    const Cell& cell = index_[i];
    if (cell.slot == kEmpty) return kEmpty;
    if (cell.slot == kTombstone) continue;
    if (cell.hash_tag == tag && node_at(cell.slot).key == key) {
      return cell.slot;
    }
  }
}

void SessionTable::index_insert(std::uint64_t h, std::uint32_t slot) {
  for (std::size_t i = h & index_mask_;; i = (i + 1) & index_mask_) {
    Cell& cell = index_[i];
    if (cell.slot == kEmpty || cell.slot == kTombstone) {
      if (cell.slot == kTombstone) --tombstones_;
      cell = Cell{static_cast<std::uint32_t>(h), slot};
      return;
    }
  }
}

void SessionTable::index_erase(const SessionKey& key, std::uint64_t h) {
  const auto tag = static_cast<std::uint32_t>(h);
  for (std::size_t i = h & index_mask_;; i = (i + 1) & index_mask_) {
    Cell& cell = index_[i];
    if (cell.slot == kEmpty) return;  // not present
    if (cell.slot != kTombstone && cell.hash_tag == tag &&
        node_at(cell.slot).key == key) {
      cell.slot = kTombstone;
      ++tombstones_;
      return;
    }
  }
}

void SessionTable::rebuild_index(std::size_t new_size) {
  index_.assign(new_size, Cell{});
  index_mask_ = new_size - 1;
  tombstones_ = 0;
  for (const auto& chunk : chunks_) {
    for (const Node& node : *chunk) {
      if (node.live) {
        const std::uint32_t slot = node.entry.table_slot;
        index_insert(node.hash, slot);
      }
    }
  }
}

void SessionTable::wheel_enqueue(std::uint32_t slot, std::int64_t bucket) {
  Node& node = node_at(slot);
  node.wheel_bucket = bucket;
  ++node.wheel_seq;
  wheel_[bucket].push_back(Ref{slot, node.gen, node.wheel_seq});
}

void SessionTable::free_node(std::uint32_t slot) {
  Node& node = node_at(slot);
  node.live = false;
  node.entry = SessionEntry{};
  ++node.gen;  // invalidates any wheel refs still pointing here
  free_.push_back(slot);
  --size_;
}

SessionEntry* SessionTable::find(const SessionKey& key) {
  const std::uint32_t slot = find_slot(key, hash_of(key));
  return slot == kEmpty ? nullptr : &node_at(slot).entry;
}

const SessionEntry* SessionTable::find(const SessionKey& key) const {
  const std::uint32_t slot = find_slot(key, hash_of(key));
  return slot == kEmpty ? nullptr : &node_at(slot).entry;
}

SessionEntry* SessionTable::find_or_create(const SessionKey& key,
                                           common::TimePoint now) {
  const std::uint64_t h = hash_of(key);
  if (const std::uint32_t slot = find_slot(key, h); slot != kEmpty) {
    return &node_at(slot).entry;
  }
  if (full()) {
    ++insert_failures_;
    return nullptr;
  }
  // Keep (live + tombstone) load below 3/4 so probe chains stay short.
  // Double only when live entries demand it; churn-driven rebuilds (the
  // common case — tombstones from aged-out sessions) stay at the same size
  // so the index tracks the concurrent-session working set instead of the
  // cumulative churn, keeping probes cache-resident.
  if ((size_ + tombstones_ + 1) * 4 > index_.size() * 3) {
    rebuild_index((size_ + 1) * 2 > index_.size() ? index_.size() * 2
                                                  : index_.size());
  }

  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    if (chunks_.empty() || chunks_.back()->size() == kChunkSize) {
      chunks_.push_back(std::make_unique<Chunk>());
      chunks_.back()->reserve(kChunkSize);
    }
    chunks_.back()->emplace_back();
    slot = static_cast<std::uint32_t>((chunks_.size() - 1) * kChunkSize +
                                      chunks_.back()->size() - 1);
  }
  Node& node = node_at(slot);
  node.key = key;
  node.hash = h;
  node.live = true;
  node.entry.created_at = now;
  node.entry.state.last_active = now;
  node.entry.table_slot = slot;
  index_insert(h, slot);
  ++size_;
  // Conservative first wheel visit: the entry's TTL may shrink to min_ttl_
  // via direct state mutation before the first sweep sees it; the visit
  // recomputes the exact deadline and re-queues.
  wheel_enqueue(slot, bucket_of(now + min_ttl_));
  return &node.entry;
}

bool SessionTable::erase(const SessionKey& key) {
  const std::uint64_t h = hash_of(key);
  const std::uint32_t slot = find_slot(key, h);
  if (slot == kEmpty) return false;
  index_erase(key, h);
  free_node(slot);
  return true;
}

void SessionTable::clear() {
  chunks_.clear();
  free_.clear();
  wheel_.clear();
  index_.assign(kInitialIndexSize, Cell{});
  index_mask_ = kInitialIndexSize - 1;
  size_ = 0;
  tombstones_ = 0;
}

void SessionTable::invalidate_pre_actions() {
  if (!config_.store_state) {
    // Pure flow cache: the whole entry is the pre-action.
    clear();
    return;
  }
  for (auto& chunk : chunks_) {
    for (Node& node : *chunk) {
      if (node.live) node.entry.pre_actions.reset();
    }
  }
}

common::Duration SessionTable::ttl_of(const SessionEntry& entry) const {
  if (!config_.store_state) return config_.established_ttl;
  if (entry.state.fsm.closed()) return config_.closed_ttl;
  if (entry.state.fsm.embryonic() &&
      entry.state.fsm.state() != TcpFsmState::kNone) {
    return config_.embryonic_ttl;
  }
  return config_.established_ttl;
}

void SessionTable::touch(const SessionEntry* entry) {
  const std::uint32_t slot = entry->table_slot;
  Node& node = node_at(slot);
  if (!node.live || &node.entry != entry) return;  // stale pointer
  const std::int64_t b = bucket_of(deadline_of(node));
  // Deadline extensions resolve lazily at the next visit; only a shrink
  // needs an earlier queue position to stay exact across sweeps.
  if (b < node.wheel_bucket) wheel_enqueue(slot, b);
}

std::size_t SessionTable::age_out(common::TimePoint now,
                                  const EvictFn& on_evict) {
  std::size_t removed = 0;
  const std::int64_t now_bucket = bucket_of(now);
  std::vector<std::pair<std::int64_t, std::uint32_t>> requeue;
  auto it = wheel_.begin();
  while (it != wheel_.end() && it->first <= now_bucket) {
    for (const Ref& ref : it->second) {
      if (ref.slot / kChunkSize >= chunks_.size()) continue;
      Node& node = node_at(ref.slot);
      if (!node.live || node.gen != ref.gen || node.wheel_seq != ref.seq) {
        continue;  // erased, recycled, or superseded by a later enqueue
      }
      const common::TimePoint deadline = deadline_of(node);
      if (deadline <= now) {
        if (on_evict) on_evict(node.key, node.entry);
        index_erase(node.key, node.hash);
        free_node(ref.slot);
        ++removed;
      } else {
        // Survivor: defer the re-queue so this drain loop's iterator stays
        // valid; a same-bucket deadline (> now) lands back where it was and
        // is simply revisited by the next sweep.
        requeue.emplace_back(bucket_of(deadline), ref.slot);
      }
    }
    it = wheel_.erase(it);
  }
  for (const auto& [bucket, slot] : requeue) wheel_enqueue(slot, bucket);
  return removed;
}

}  // namespace nezha::flow
