#include "src/flow/session_table.h"

#include <algorithm>
#include <utility>

#include "src/net/five_tuple.h"

namespace nezha::flow {

bool SessionEntry::qos_admit(std::uint32_t kbps, std::size_t bits,
                             common::TimePoint now) {
  if (kbps == 0) return true;
  const double rate_bps = static_cast<double>(kbps) * 1000.0;
  const double burst_bits = rate_bps;  // one-second burst
  if (qos_refilled_at == 0) {
    qos_tokens_bits = burst_bits;
  } else {
    qos_tokens_bits += rate_bps * common::to_seconds(now - qos_refilled_at);
    if (qos_tokens_bits > burst_bits) qos_tokens_bits = burst_bits;
  }
  qos_refilled_at = now;
  if (qos_tokens_bits < static_cast<double>(bits)) return false;
  qos_tokens_bits -= static_cast<double>(bits);
  return true;
}

namespace {

std::size_t compute_entry_bytes(const SessionTableConfig& config) {
  std::size_t n = kSessionKeyBytes;
  if (config.store_pre_actions) n += kPreActionsBytes;
  if (config.store_state) n += kStateAllocBytes;
  return n;
}

constexpr std::size_t kInitialIndexSize = 64;  // power of two

}  // namespace

SessionTable::SessionTable(SessionTableConfig config)
    : config_(config), entry_bytes_(compute_entry_bytes(config)) {
  // Stateless tables have one fixed TTL; stateful ones can shrink down to
  // closed_ttl at any moment, so that is the conservative horizon.
  min_ttl_ = config_.established_ttl;
  if (config_.store_state) {
    min_ttl_ = std::min({config_.established_ttl, config_.embryonic_ttl,
                         config_.closed_ttl});
  }
  if (min_ttl_ < 1) min_ttl_ = 1;
  wheel_width_ = min_ttl_;
  // Ring sized to span the longest TTL plus sweep slack; anything wider
  // (pathological TTL ratios, long sweep gaps) degrades to early visits of
  // colliding buckets, not to missed evictions.
  const std::int64_t span = config_.established_ttl / wheel_width_ + 4;
  std::size_t ring = 8;
  while (ring < static_cast<std::size_t>(span) && ring < 4096) ring *= 2;
  wheel_ring_.resize(ring);
  wheel_mask_ = ring - 1;
  index_.assign(kInitialIndexSize, Cell{});
  index_mask_ = kInitialIndexSize - 1;
}

std::uint64_t SessionTable::hash_of(const SessionKey& key) {
  return net::flow_hash(key.canonical_ft,
                        0x9e3779b97f4a7c15ull ^ key.vpc_id);
}

std::uint32_t SessionTable::find_slot(const SessionKey& key,
                                      std::uint64_t h) const {
  const auto tag = static_cast<std::uint32_t>(h);
  for (std::size_t i = h & index_mask_;; i = (i + 1) & index_mask_) {
    const Cell& cell = index_[i];
    if (cell.slot == kEmpty) return kEmpty;
    if (cell.hash_tag == tag && key_at(cell.slot) == key) {
      return cell.slot;
    }
  }
}

std::uint64_t SessionTable::prefetch_index(const SessionKey& key) const {
  const std::uint64_t h = hash_of(key);
  __builtin_prefetch(&index_[h & index_mask_]);
  return h;
}

void SessionTable::prefetch_entry(std::uint64_t h) const {
  const Cell& cell = index_[h & index_mask_];
  if (cell.slot != kEmpty && cell.slot / kChunkSize < chunks_.size()) {
    __builtin_prefetch(&key_at(cell.slot));
    __builtin_prefetch(&node_at(cell.slot).entry);
  }
}

void SessionTable::index_insert(std::uint64_t h, std::uint32_t slot) {
  for (std::size_t i = h & index_mask_;; i = (i + 1) & index_mask_) {
    Cell& cell = index_[i];
    if (cell.slot == kEmpty) {
      cell = Cell{static_cast<std::uint32_t>(h), slot};
      return;
    }
  }
}

void SessionTable::index_erase(const SessionKey& key, std::uint64_t h) {
  const auto tag = static_cast<std::uint32_t>(h);
  std::size_t i = h & index_mask_;
  for (;; i = (i + 1) & index_mask_) {
    const Cell& cell = index_[i];
    if (cell.slot == kEmpty) return;  // not present
    if (cell.hash_tag == tag && key_at(cell.slot) == key) break;
  }
  // Backward-shift deletion: walk the cluster after the hole and pull back
  // every cell whose home position lies at or before the hole. Leaves no
  // tombstones, so churn never degrades probes or forces a rebuild. The
  // home slot needs the full hash, which lives in the (still-live) node.
  for (std::size_t j = (i + 1) & index_mask_;; j = (j + 1) & index_mask_) {
    const Cell& cell = index_[j];
    if (cell.slot == kEmpty) break;
    const std::size_t home = node_at(cell.slot).hash & index_mask_;
    if (((j - home) & index_mask_) >= ((j - i) & index_mask_)) {
      index_[i] = cell;
      i = j;
    }
  }
  index_[i] = Cell{};
}

void SessionTable::rebuild_index(std::size_t new_size) {
  index_.assign(new_size, Cell{});
  index_mask_ = new_size - 1;
  for (const auto& chunk : chunks_) {
    for (const Node& node : *chunk) {
      if (node.live) {
        const std::uint32_t slot = node.entry.table_slot;
        index_insert(node.hash, slot);
      }
    }
  }
}

void SessionTable::wheel_enqueue(std::uint32_t slot, std::int64_t bucket) {
  Node& node = node_at(slot);
  node.wheel_bucket = bucket;
  ++node.wheel_seq;
  // A shrink below the drain cursor (touch() after FIN/RST) re-opens that
  // bucket; lowering the floor keeps the next sweep exact.
  if (bucket < wheel_floor_) wheel_floor_ = bucket;
  wheel_cell(bucket).push_back(Ref{slot, node.gen, node.wheel_seq});
}

void SessionTable::free_node(std::uint32_t slot) {
  Node& node = node_at(slot);
  node.live = false;
  node.entry = SessionEntry{};
  ++node.gen;  // invalidates any wheel refs still pointing here
  free_.push_back(slot);
  --size_;
}

SessionEntry* SessionTable::find(const SessionKey& key) {
  const std::uint32_t slot = find_slot(key, hash_of(key));
  return slot == kEmpty ? nullptr : &node_at(slot).entry;
}

const SessionEntry* SessionTable::find(const SessionKey& key) const {
  const std::uint32_t slot = find_slot(key, hash_of(key));
  return slot == kEmpty ? nullptr : &node_at(slot).entry;
}

SessionEntry* SessionTable::find_or_create(const SessionKey& key,
                                           common::TimePoint now) {
  return find_or_create_gated(key, now, nullptr, nullptr);
}

SessionEntry* SessionTable::find_or_create_gated(const SessionKey& key,
                                                 common::TimePoint now,
                                                 bool (*gate)(void*),
                                                 void* gate_ctx) {
  const std::uint64_t h = hash_of(key);
  if (const std::uint32_t slot = find_slot(key, h); slot != kEmpty) {
    return &node_at(slot).entry;
  }
  if (full()) {
    ++insert_failures_;
    return nullptr;
  }
  if (gate != nullptr && !gate(gate_ctx)) return nullptr;
  // Keep live load below 3/4 so probe chains stay short. Backward-shift
  // erases leave no tombstones, so rebuilds happen only on genuine growth
  // of the concurrent working set — churn never triggers one.
  if ((size_ + 1) * 4 > index_.size() * 3) {
    rebuild_index(index_.size() * 2);
  }

  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    if (chunks_.empty() || chunks_.back()->size() == kChunkSize) {
      chunks_.push_back(std::make_unique<Chunk>());
      chunks_.back()->reserve(kChunkSize);
      key_chunks_.push_back(std::make_unique<KeyChunk>());
      key_chunks_.back()->reserve(kChunkSize);
    }
    chunks_.back()->emplace_back();
    key_chunks_.back()->emplace_back();
    slot = static_cast<std::uint32_t>((chunks_.size() - 1) * kChunkSize +
                                      chunks_.back()->size() - 1);
  }
  Node& node = node_at(slot);
  key_at(slot) = key;
  node.hash = h;
  node.live = true;
  node.entry.created_at = now;
  node.entry.state.last_active = now;
  node.entry.table_slot = slot;
  index_insert(h, slot);
  ++size_;
  // Conservative first wheel visit: the entry's TTL may shrink to min_ttl_
  // via direct state mutation before the first sweep sees it; the visit
  // recomputes the exact deadline and re-queues.
  wheel_enqueue(slot, bucket_of(now + min_ttl_));
  return &node.entry;
}

bool SessionTable::erase(const SessionKey& key) {
  const std::uint64_t h = hash_of(key);
  const std::uint32_t slot = find_slot(key, h);
  if (slot == kEmpty) return false;
  index_erase(key, h);
  free_node(slot);
  return true;
}

void SessionTable::clear() {
  chunks_.clear();
  key_chunks_.clear();
  free_.clear();
  for (auto& cell : wheel_ring_) cell.clear();
  wheel_floor_ = 0;
  index_.assign(kInitialIndexSize, Cell{});
  index_mask_ = kInitialIndexSize - 1;
  size_ = 0;
}

void SessionTable::invalidate_pre_actions() {
  if (!config_.store_state) {
    // Pure flow cache: the whole entry is the pre-action.
    clear();
    return;
  }
  for (auto& chunk : chunks_) {
    for (Node& node : *chunk) {
      if (node.live) node.entry.pre_actions.reset();
    }
  }
}

common::Duration SessionTable::ttl_of(const SessionEntry& entry) const {
  if (!config_.store_state) return config_.established_ttl;
  if (entry.state.fsm.closed()) return config_.closed_ttl;
  if (entry.state.fsm.embryonic() &&
      entry.state.fsm.state() != TcpFsmState::kNone) {
    return config_.embryonic_ttl;
  }
  return config_.established_ttl;
}

void SessionTable::touch(const SessionEntry* entry) {
  const std::uint32_t slot = entry->table_slot;
  Node& node = node_at(slot);
  if (!node.live || &node.entry != entry) return;  // stale pointer
  const std::int64_t b = bucket_of(deadline_of(node));
  // Deadline extensions resolve lazily at the next visit; only a shrink
  // needs an earlier queue position to stay exact across sweeps.
  if (b < node.wheel_bucket) wheel_enqueue(slot, b);
}

std::size_t SessionTable::drain_cell(
    std::vector<Ref>& cell, common::TimePoint now, const EvictFn& on_evict,
    std::vector<std::pair<std::int64_t, std::uint32_t>>& requeue) {
  std::size_t removed = 0;
  for (std::size_t i = 0; i < cell.size(); ++i) {
    // Slide a prefetch ahead of the walk: each ref hits a random slab node,
    // and the visit logic below is long enough to hide most of the miss.
    if (i + 8 < cell.size() &&
        cell[i + 8].slot / kChunkSize < chunks_.size()) {
      __builtin_prefetch(&node_at(cell[i + 8].slot));
    }
    const Ref& ref = cell[i];
    if (ref.slot / kChunkSize >= chunks_.size()) continue;
    Node& node = node_at(ref.slot);
    if (!node.live || node.gen != ref.gen || node.wheel_seq != ref.seq) {
      continue;  // erased, recycled, or superseded by a later enqueue
    }
    const common::TimePoint deadline = deadline_of(node);
    if (deadline <= now) {
      const SessionKey& key = key_at(ref.slot);
      if (on_evict) on_evict(key, node.entry);
      index_erase(key, node.hash);
      free_node(ref.slot);
      ++removed;
    } else {
      // Survivor (or a ring collision from a future bucket): defer the
      // re-queue so the drain loop never mutates the cell it iterates; a
      // deadline still in a drained bucket is revisited by the next sweep.
      requeue.emplace_back(bucket_of(deadline), ref.slot);
    }
  }
  cell.clear();  // retains capacity — steady-state sweeps allocate nothing
  return removed;
}

std::size_t SessionTable::age_out(common::TimePoint now,
                                  const EvictFn& on_evict) {
  const std::int64_t now_bucket = bucket_of(now);
  if (now_bucket < wheel_floor_) return 0;  // nothing can be due yet
  std::size_t removed = 0;
  std::vector<std::pair<std::int64_t, std::uint32_t>> requeue;
  const std::size_t span =
      static_cast<std::size_t>(now_bucket - wheel_floor_) + 1;
  if (span >= wheel_ring_.size()) {
    // Sweep gap exceeded the ring: every cell is potentially due. A single
    // full pass visits each ref once (future ones just re-queue).
    for (auto& cell : wheel_ring_) {
      removed += drain_cell(cell, now, on_evict, requeue);
    }
  } else {
    for (std::int64_t b = wheel_floor_; b <= now_bucket; ++b) {
      removed += drain_cell(wheel_cell(b), now, on_evict, requeue);
    }
  }
  wheel_floor_ = now_bucket + 1;
  for (const auto& [bucket, slot] : requeue) wheel_enqueue(slot, bucket);
  return removed;
}

}  // namespace nezha::flow
