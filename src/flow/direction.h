// Packet direction relative to the vNIC: TX (egress, VM → network) and
// RX (ingress, network → VM). Nezha's workflows differ per direction
// (§3.2.1): TX packets pick up state at the BE first, RX packets pick up
// pre-actions at the FE first.
#pragma once

#include <cstdint>
#include <string>

namespace nezha::flow {

enum class Direction : std::uint8_t { kTx = 0, kRx = 1 };

inline Direction reverse(Direction d) {
  return d == Direction::kTx ? Direction::kRx : Direction::kTx;
}

inline std::string to_string(Direction d) {
  return d == Direction::kTx ? "TX" : "RX";
}

}  // namespace nezha::flow
