// Pre-actions: the *stateless* half of packet processing (§2.1).
//
// A rule-table lookup chain produces, for each direction of a flow, a
// preliminary verdict plus rewrite/QoS/statistics recipes. Pre-actions are
// not final for stateful NFs — the final action combines them with the
// session state (e.g. a stateful ACL accepts RX "drop" traffic when the
// session was initiated by local TX). Bidirectional pre-actions are cached
// per flow (the "cached flows" of Fig 1); under Nezha they live on the FE
// and travel to the BE inside RX packets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/result.h"
#include "src/flow/direction.h"
#include "src/net/addr.h"

namespace nezha::flow {

enum class Verdict : std::uint8_t { kAccept = 0, kDrop = 1 };

enum class StatsMode : std::uint8_t {
  kNone = 0,
  kPackets = 1,
  kBytes = 2,
  kPacketsAndBytes = 3,
};

/// Where to forward the packet next on the underlay.
struct NextHop {
  net::Ipv4Addr ip;
  net::MacAddr mac;
  bool valid() const { return ip.value() != 0; }
  bool operator==(const NextHop&) const = default;
};

/// Per-direction preliminary action from the rule-table chain.
struct DirPreAction {
  Verdict acl_verdict = Verdict::kAccept;
  // NAT rewrite recipe (applies to the inner header when enabled).
  bool nat_enabled = false;
  net::Ipv4Addr nat_ip;
  std::uint16_t nat_port = 0;
  // QoS: committed rate; 0 means unlimited.
  std::uint32_t rate_limit_kbps = 0;
  // Flow statistics policy (a *rule-table-involved* state input, §3.2.2).
  StatsMode stats_mode = StatsMode::kNone;
  // Traffic mirroring (advanced feature): when set, the processing node
  // sends a copy of the packet toward mirror_target (a collector).
  bool mirror = false;
  NextHop mirror_target;
  // Underlay destination for this direction (vNIC-server mapping result).
  NextHop next_hop;

  bool operator==(const DirPreAction&) const = default;
};

/// Bidirectional pre-actions cached as one flow entry.
struct PreActions {
  DirPreAction tx;
  DirPreAction rx;
  /// Version of the rule tables that produced this entry; bumped rule
  /// tables invalidate cached flows (§3.2.2).
  std::uint32_t rule_version = 0;

  const DirPreAction& dir(Direction d) const {
    return d == Direction::kTx ? tx : rx;
  }
  DirPreAction& dir(Direction d) { return d == Direction::kTx ? tx : rx; }

  /// Exact carrier-TLV wire size: rule_version (4) + two 36-byte directions.
  static constexpr std::size_t kWireSize = 76;

  /// Carrier-TLV encoding (FE→BE piggyback on RX packets) into a
  /// caller-provided kWireSize buffer — the datapath encode, heap-free.
  void serialize_into(std::span<std::uint8_t> out) const;
  /// Allocating convenience wrapper for cold callers (tests, tools).
  std::vector<std::uint8_t> serialize() const;
  static common::Result<PreActions> parse(
      std::span<const std::uint8_t> bytes);

  bool operator==(const PreActions&) const = default;
};

/// Nominal in-memory footprint of one cached-flow entry's pre-action halves
/// (used by the vSwitch memory model; the paper's session entry totals
/// O(100B) across 5-tuple + VPC + pre-actions + state).
inline constexpr std::size_t kPreActionsBytes = 48;

}  // namespace nezha::flow
