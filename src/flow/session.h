// Session state: the *stateful* half of packet processing, kept in exactly
// one local copy at the vNIC backend under Nezha (§3.1).
//
// A session covers both directions of a flow (bidirectional flows + state in
// a single entry, §2.1). The fixed 64-byte allocation mirrors the paper's
// production layout; used_bytes() reports the semantically meaningful size,
// which Fig 15 shows averages only 5–8B — the motivation for the
// variable-length-state extension (§7.1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/result.h"
#include "src/common/time.h"
#include "src/flow/direction.h"
#include "src/flow/pre_actions.h"
#include "src/flow/tcp_fsm.h"
#include "src/net/addr.h"
#include "src/net/five_tuple.h"

namespace nezha::flow {

/// Direction of the session's first packet — the core stateful-ACL input.
enum class FirstDirection : std::uint8_t { kNone = 0, kTx = 1, kRx = 2 };

inline FirstDirection to_first_direction(Direction d) {
  return d == Direction::kTx ? FirstDirection::kTx : FirstDirection::kRx;
}

/// Fixed per-session allocation in the production session table (§7.1).
inline constexpr std::size_t kStateAllocBytes = 64;

struct SessionState {
  FirstDirection first_dir = FirstDirection::kNone;
  TcpFsm fsm;
  /// Stateful decap (§5.2): overlay source IP recorded from the first RX
  /// packet so TX responses can be re-encapsulated toward the LB.
  net::Ipv4Addr decap_src_ip;
  /// Flow-statistics policy currently applied (a rule-table-involved state;
  /// updated via notify packets under Nezha, §3.2.2).
  StatsMode stats_mode = StatsMode::kNone;
  std::uint64_t pkts_tx = 0;
  std::uint64_t pkts_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  common::TimePoint last_active = 0;

  bool initialized() const { return first_dir != FirstDirection::kNone; }

  /// Records a packet: sets first_dir on the first packet, advances the TCP
  /// FSM, applies the statistics policy, refreshes the aging timestamp.
  void observe(Direction dir, net::TcpFlags tcp_flags, bool is_tcp,
               std::size_t wire_bytes, common::TimePoint now);

  /// Semantically used bytes (Fig 15): first_dir+fsm always, decap IP only
  /// when set, statistics counters only when a stats policy is active.
  std::size_t used_bytes() const;

  /// Exact snapshot wire size: first_dir, fsm state, stats mode, decap IP.
  static constexpr std::size_t kSnapshotWireSize = 7;

  /// Compact snapshot carried BE→FE in TX packets (kStateSnapshot TLV),
  /// encoded into a caller-provided kSnapshotWireSize buffer.
  void serialize_snapshot_into(std::span<std::uint8_t> out) const;
  /// Allocating convenience wrapper for cold callers.
  std::vector<std::uint8_t> serialize_snapshot() const;
  static common::Result<SessionState> parse_snapshot(
      std::span<const std::uint8_t> bytes);
};

/// Session-table key: tenant + canonical (direction-insensitive) 5-tuple.
struct SessionKey {
  std::uint32_t vpc_id = 0;
  net::FiveTuple canonical_ft;

  static SessionKey from_packet(std::uint32_t vpc, const net::FiveTuple& ft) {
    return SessionKey{vpc, ft.canonical()};
  }
  bool operator==(const SessionKey&) const = default;
};

/// Nominal footprint of a session-table key (5-tuple + VPC ID).
inline constexpr std::size_t kSessionKeyBytes = 16;

struct SessionKeyHash {
  std::size_t operator()(const SessionKey& k) const noexcept {
    return static_cast<std::size_t>(
        net::flow_hash(k.canonical_ft, 0x9e3779b9u ^ k.vpc_id));
  }
};

}  // namespace nezha::flow
