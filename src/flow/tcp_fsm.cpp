#include "src/flow/tcp_fsm.h"

namespace nezha::flow {

std::string to_string(TcpFsmState s) {
  switch (s) {
    case TcpFsmState::kNone: return "NONE";
    case TcpFsmState::kSynSent: return "SYN_SENT";
    case TcpFsmState::kSynReceived: return "SYN_RECEIVED";
    case TcpFsmState::kEstablished: return "ESTABLISHED";
    case TcpFsmState::kFinWait: return "FIN_WAIT";
    case TcpFsmState::kClosing: return "CLOSING";
    case TcpFsmState::kClosed: return "CLOSED";
    case TcpFsmState::kReset: return "RESET";
  }
  return "?";
}

void TcpFsm::on_packet(Direction dir, net::TcpFlags flags) {
  if (flags.rst) {
    state_ = TcpFsmState::kReset;
    return;
  }
  switch (state_) {
    case TcpFsmState::kNone:
      if (flags.syn && !flags.ack) state_ = TcpFsmState::kSynSent;
      // A non-SYN first packet leaves the FSM at kNone (e.g. mid-flow pickup
      // after failover); data packets then promote it below.
      else if (flags.ack) state_ = TcpFsmState::kEstablished;
      break;
    case TcpFsmState::kSynSent:
      if (flags.syn && flags.ack && dir == Direction::kRx) {
        state_ = TcpFsmState::kSynReceived;
      }
      break;
    case TcpFsmState::kSynReceived:
      if (flags.ack && !flags.syn) state_ = TcpFsmState::kEstablished;
      break;
    case TcpFsmState::kEstablished:
      if (flags.fin) {
        state_ = TcpFsmState::kFinWait;
        if (dir == Direction::kTx) fin_from_initiator_ = true;
        else fin_from_responder_ = true;
      }
      break;
    case TcpFsmState::kFinWait:
      if (flags.fin) {
        if (dir == Direction::kTx) fin_from_initiator_ = true;
        else fin_from_responder_ = true;
        if (fin_from_initiator_ && fin_from_responder_) {
          state_ = TcpFsmState::kClosing;
        }
      }
      break;
    case TcpFsmState::kClosing:
      if (flags.ack && !flags.fin) state_ = TcpFsmState::kClosed;
      break;
    case TcpFsmState::kClosed:
    case TcpFsmState::kReset:
      break;
  }
}

}  // namespace nezha::flow
