#include "src/workload/syn_flood.h"

namespace nezha::workload {

SynFlood::SynFlood(core::Testbed& bed, std::size_t attacker_switch,
                   tables::VnicId attacker_vnic, net::Ipv4Addr victim_ip,
                   SynFloodConfig config)
    : bed_(bed),
      attacker_(bed.vswitch(attacker_switch)),
      vnic_(attacker_vnic),
      victim_ip_(victim_ip),
      config_(config),
      rng_(config.seed) {
  const vswitch::Vnic* v = attacker_.find_vnic(attacker_vnic);
  if (v == nullptr) throw std::runtime_error("SynFlood: attacker missing");
  src_ip_ = v->addr().ip;
  vpc_ = v->addr().vpc_id;
}

void SynFlood::start() {
  running_ = true;
  schedule_next();
}

void SynFlood::schedule_next() {
  if (!running_) return;
  const double gap_s = rng_.exponential(1.0 / config_.syns_per_sec);
  bed_.loop().schedule_after(common::from_seconds(gap_s), [this]() {
    net::FiveTuple ft{src_ip_, victim_ip_,
                      static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535)),
                      static_cast<std::uint16_t>(rng_.uniform_u64(1, 1024)),
                      net::IpProto::kTcp};
    attacker_.from_vm(vnic_,
                      net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0,
                                           vpc_));
    ++sent_;
    schedule_next();
  });
}

}  // namespace nezha::workload
