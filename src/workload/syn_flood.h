// SYN-flood generator (§7.3): a local VM sprays SYN packets across many
// 5-tuples. Under Nezha each SYN creates a state entry at the BE even when
// the FE's rule tables would drop the flow — the short embryonic aging time
// is what bounds the resulting memory waste.
#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/core/testbed.h"

namespace nezha::workload {

struct SynFloodConfig {
  double syns_per_sec = 100000.0;
  std::uint64_t seed = 7;
};

class SynFlood {
 public:
  SynFlood(core::Testbed& bed, std::size_t attacker_switch,
           tables::VnicId attacker_vnic, net::Ipv4Addr victim_ip,
           SynFloodConfig config = {});

  void start();
  void stop() { running_ = false; }
  std::uint64_t sent() const { return sent_; }

 private:
  void schedule_next();

  core::Testbed& bed_;
  vswitch::VSwitch& attacker_;
  tables::VnicId vnic_;
  net::Ipv4Addr src_ip_;
  net::Ipv4Addr victim_ip_;
  std::uint32_t vpc_;
  SynFloodConfig config_;
  common::Rng rng_;
  std::uint64_t sent_ = 0;
  bool running_ = false;
};

}  // namespace nezha::workload
