#include "src/workload/fleet_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nezha::workload {

QuantileDistribution::QuantileDistribution(std::vector<Anchor> anchors)
    : anchors_(std::move(anchors)) {
  if (anchors_.size() < 2) {
    throw std::invalid_argument("QuantileDistribution needs >= 2 anchors");
  }
  std::sort(anchors_.begin(), anchors_.end(),
            [](const Anchor& a, const Anchor& b) {
              return a.quantile < b.quantile;
            });
}

double QuantileDistribution::value_at(double q) const {
  if (q <= anchors_.front().quantile) return anchors_.front().value;
  if (q >= anchors_.back().quantile) return anchors_.back().value;
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    if (q <= anchors_[i].quantile) {
      const Anchor& lo = anchors_[i - 1];
      const Anchor& hi = anchors_[i];
      const double t = (q - lo.quantile) / (hi.quantile - lo.quantile);
      // Log-linear interpolation keeps the heavy tail convex; fall back to
      // linear when a value is zero.
      if (lo.value > 0 && hi.value > 0) {
        return std::exp(std::log(lo.value) +
                        t * (std::log(hi.value) - std::log(lo.value)));
      }
      return lo.value + t * (hi.value - lo.value);
    }
  }
  return anchors_.back().value;
}

double QuantileDistribution::sample(common::Rng& rng) const {
  return value_at(rng.uniform());
}

std::string to_string(HotspotCause cause) {
  switch (cause) {
    case HotspotCause::kCps: return "CPS";
    case HotspotCause::kConcurrentFlows: return "#concurrent-flows";
    case HotspotCause::kVnics: return "#vNICs";
  }
  return "?";
}

FleetModel::FleetModel(FleetModelConfig config)
    : config_(config), rng_(config.seed) {}

std::vector<double> FleetModel::sample_cpu_utilization() {
  // Fig 4a anchors. The low quantiles are set so the mean lands near 5%.
  static const QuantileDistribution dist({{0.0, 0.002},
                                          {0.50, 0.025},
                                          {0.90, 0.15},
                                          {0.99, 0.41},
                                          {0.999, 0.68},
                                          {0.9999, 0.90},
                                          {1.0, 0.98}});
  std::vector<double> out(config_.num_vswitches);
  for (auto& v : out) v = dist.sample(rng_);
  return out;
}

std::vector<double> FleetModel::sample_memory_utilization() {
  // Fig 4b anchors; memory is even more skewed than CPU.
  static const QuantileDistribution dist({{0.0, 0.001},
                                          {0.50, 0.006},
                                          {0.90, 0.15},
                                          {0.99, 0.34},
                                          {0.999, 0.93},
                                          {0.9999, 0.96},
                                          {1.0, 0.96}});
  std::vector<double> out(config_.num_vswitches);
  for (auto& v : out) v = dist.sample(rng_);
  return out;
}

std::vector<double> FleetModel::sample_usage(HotspotCause kind,
                                             std::size_t n) {
  // Table 1 anchors, normalized to the P9999 user.
  const QuantileDistribution* dist = nullptr;
  static const QuantileDistribution cps({{0.0, 0.0005},
                                         {0.50, 0.0053},
                                         {0.90, 0.0141},
                                         {0.99, 0.0641},
                                         {0.999, 0.1838},
                                         {0.9999, 1.0},
                                         {1.0, 1.0}});
  static const QuantileDistribution flows({{0.0, 0.0008},
                                           {0.50, 0.0078},
                                           {0.90, 0.0236},
                                           {0.99, 0.0639},
                                           {0.999, 0.2917},
                                           {0.9999, 1.0},
                                           {1.0, 1.0}});
  static const QuantileDistribution vnics({{0.0, 0.0006},
                                           {0.50, 0.0065},
                                           {0.90, 0.01},
                                           {0.99, 0.06},
                                           {0.999, 0.55},
                                           {0.9999, 1.0},
                                           {1.0, 1.0}});
  switch (kind) {
    case HotspotCause::kCps: dist = &cps; break;
    case HotspotCause::kConcurrentFlows: dist = &flows; break;
    case HotspotCause::kVnics: dist = &vnics; break;
  }
  std::vector<double> out(n);
  for (auto& v : out) v = dist->sample(rng_);
  return out;
}

std::vector<HotspotCause> FleetModel::sample_hotspot_causes(std::size_t n) {
  // Fig 3 / App A.1: CPS 61%, #concurrent flows 30%, #vNICs 9%.
  std::vector<HotspotCause> out(n);
  for (auto& c : out) {
    const double u = rng_.uniform();
    if (u < 0.61) c = HotspotCause::kCps;
    else if (u < 0.91) c = HotspotCause::kConcurrentFlows;
    else c = HotspotCause::kVnics;
  }
  return out;
}

std::vector<FleetModel::HighCpsPair> FleetModel::sample_high_cps_pairs(
    std::size_t n) {
  // Fig 2: the vSwitch is saturated (>95%) for every high-CPS VM, while the
  // VM itself is mostly idle: 90% of VMs below 60% CPU.
  static const QuantileDistribution vm_cpu({{0.0, 0.05},
                                            {0.50, 0.28},
                                            {0.90, 0.60},
                                            {0.99, 0.85},
                                            {1.0, 0.97}});
  std::vector<HighCpsPair> out(n);
  for (auto& p : out) {
    p.vm_cpu = vm_cpu.sample(rng_);
    p.vswitch_cpu = rng_.uniform(0.95, 1.0);
  }
  return out;
}

}  // namespace nezha::workload
