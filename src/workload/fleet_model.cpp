#include "src/workload/fleet_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nezha::workload {

QuantileDistribution::QuantileDistribution(std::vector<Anchor> anchors)
    : anchors_(std::move(anchors)) {
  if (anchors_.size() < 2) {
    throw std::invalid_argument("QuantileDistribution needs >= 2 anchors");
  }
  std::sort(anchors_.begin(), anchors_.end(),
            [](const Anchor& a, const Anchor& b) {
              return a.quantile < b.quantile;
            });
}

double QuantileDistribution::value_at(double q) const {
  if (q <= anchors_.front().quantile) return anchors_.front().value;
  if (q >= anchors_.back().quantile) return anchors_.back().value;
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    if (q <= anchors_[i].quantile) {
      const Anchor& lo = anchors_[i - 1];
      const Anchor& hi = anchors_[i];
      const double t = (q - lo.quantile) / (hi.quantile - lo.quantile);
      // Log-linear interpolation keeps the heavy tail convex; fall back to
      // linear when a value is zero.
      if (lo.value > 0 && hi.value > 0) {
        return std::exp(std::log(lo.value) +
                        t * (std::log(hi.value) - std::log(lo.value)));
      }
      return lo.value + t * (hi.value - lo.value);
    }
  }
  return anchors_.back().value;
}

double QuantileDistribution::sample(common::Rng& rng) const {
  return value_at(rng.uniform());
}

std::string to_string(HotspotCause cause) {
  switch (cause) {
    case HotspotCause::kCps: return "CPS";
    case HotspotCause::kConcurrentFlows: return "#concurrent-flows";
    case HotspotCause::kVnics: return "#vNICs";
  }
  return "?";
}

FleetModel::FleetModel(FleetModelConfig config)
    : config_(config), rng_(config.seed) {}

std::vector<double> FleetModel::sample_cpu_utilization() {
  // Fig 4a anchors. The low quantiles are set so the mean lands near 5%.
  static const QuantileDistribution dist({{0.0, 0.002},
                                          {0.50, 0.025},
                                          {0.90, 0.15},
                                          {0.99, 0.41},
                                          {0.999, 0.68},
                                          {0.9999, 0.90},
                                          {1.0, 0.98}});
  std::vector<double> out(config_.num_vswitches);
  for (auto& v : out) v = dist.sample(rng_);
  return out;
}

std::vector<double> FleetModel::sample_memory_utilization() {
  // Fig 4b anchors; memory is even more skewed than CPU.
  static const QuantileDistribution dist({{0.0, 0.001},
                                          {0.50, 0.006},
                                          {0.90, 0.15},
                                          {0.99, 0.34},
                                          {0.999, 0.93},
                                          {0.9999, 0.96},
                                          {1.0, 0.96}});
  std::vector<double> out(config_.num_vswitches);
  for (auto& v : out) v = dist.sample(rng_);
  return out;
}

std::vector<double> FleetModel::sample_usage(HotspotCause kind,
                                             std::size_t n) {
  // Table 1 anchors, normalized to the P9999 user.
  const QuantileDistribution* dist = nullptr;
  static const QuantileDistribution cps({{0.0, 0.0005},
                                         {0.50, 0.0053},
                                         {0.90, 0.0141},
                                         {0.99, 0.0641},
                                         {0.999, 0.1838},
                                         {0.9999, 1.0},
                                         {1.0, 1.0}});
  static const QuantileDistribution flows({{0.0, 0.0008},
                                           {0.50, 0.0078},
                                           {0.90, 0.0236},
                                           {0.99, 0.0639},
                                           {0.999, 0.2917},
                                           {0.9999, 1.0},
                                           {1.0, 1.0}});
  static const QuantileDistribution vnics({{0.0, 0.0006},
                                           {0.50, 0.0065},
                                           {0.90, 0.01},
                                           {0.99, 0.06},
                                           {0.999, 0.55},
                                           {0.9999, 1.0},
                                           {1.0, 1.0}});
  switch (kind) {
    case HotspotCause::kCps: dist = &cps; break;
    case HotspotCause::kConcurrentFlows: dist = &flows; break;
    case HotspotCause::kVnics: dist = &vnics; break;
  }
  std::vector<double> out(n);
  for (auto& v : out) v = dist->sample(rng_);
  return out;
}

std::vector<HotspotCause> FleetModel::sample_hotspot_causes(std::size_t n) {
  // Fig 3 / App A.1: CPS 61%, #concurrent flows 30%, #vNICs 9%.
  std::vector<HotspotCause> out(n);
  for (auto& c : out) {
    const double u = rng_.uniform();
    if (u < 0.61) c = HotspotCause::kCps;
    else if (u < 0.91) c = HotspotCause::kConcurrentFlows;
    else c = HotspotCause::kVnics;
  }
  return out;
}

std::vector<FleetModel::HighCpsPair> FleetModel::sample_high_cps_pairs(
    std::size_t n) {
  // Fig 2: the vSwitch is saturated (>95%) for every high-CPS VM, while the
  // VM itself is mostly idle: 90% of VMs below 60% CPU.
  static const QuantileDistribution vm_cpu({{0.0, 0.05},
                                            {0.50, 0.28},
                                            {0.90, 0.60},
                                            {0.99, 0.85},
                                            {1.0, 0.97}});
  std::vector<HighCpsPair> out(n);
  for (auto& p : out) {
    p.vm_cpu = vm_cpu.sample(rng_);
    p.vswitch_cpu = rng_.uniform(0.95, 1.0);
  }
  return out;
}

// ---------------------------------------------------------------------------

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FleetScenario::FleetScenario(core::Testbed& bed, FleetScenarioConfig config)
    : bed_(bed), config_(config) {}

void FleetScenario::deploy() {
  const sim::Topology& topo = bed_.network().topology();
  const std::uint32_t hosts_per_leaf =
      topo.is_clos() ? topo.config().clos.hosts_per_leaf : 1;
  const std::size_t num_leaves =
      topo.is_clos() ? topo.config().clos.num_leaves
                     : std::max<std::size_t>(bed_.size(), 1);

  // Heavy-hitter load shaping from the Table-1 CPS usage law; the heaviest
  // pair runs at roughly 10x the baseline, the lightest near it.
  FleetModel model(FleetModelConfig{config_.num_pairs, config_.seed});
  pair_load_scale_ = model.sample_usage(HotspotCause::kCps, config_.num_pairs);
  for (double& s : pair_load_scale_) s = 1.0 + 9.0 * s;

  for (std::size_t i = 0; i < config_.num_pairs; ++i) {
    // Server i: first host of leaf i*L/P — pairs stride across the whole
    // leaf tier instead of packing the first P leaves, so a fleet-scale
    // scenario loads every rack region (and, on a sharded bed, every
    // shard). Client: a host half the fabric away, so every pair's traffic
    // crosses the spine tier.
    const std::size_t server_leaf =
        (i * num_leaves) / std::max<std::size_t>(config_.num_pairs, 1) %
        num_leaves;
    const std::size_t client_leaf = (server_leaf + num_leaves / 2) % num_leaves;
    std::size_t server_node = server_leaf * hosts_per_leaf;
    std::size_t client_node = client_leaf * hosts_per_leaf + 1;
    server_node = std::min(server_node, bed_.size() - 1);
    client_node = std::min(client_node, bed_.size() - 1);
    if (client_node == server_node) {
      client_node = (server_node + 1) % bed_.size();
    }
    if (bed_.shard_count() > 1 &&
        bed_.shard_of_node(static_cast<sim::NodeId>(client_node)) !=
            bed_.shard_of_node(static_cast<sim::NodeId>(server_node))) {
      // Sharded bed: CpsWorkload endpoints must share a shard. Deterministic
      // re-pick inside the server's shard, preferring another rack so the
      // pair still exercises the fabric (offload BE↔FE traffic crosses
      // shards regardless — FE pools ignore shard boundaries).
      const std::uint32_t want =
          bed_.shard_of_node(static_cast<sim::NodeId>(server_node));
      std::size_t fallback = server_node;
      std::size_t pick = server_node;
      for (std::size_t off = 1; off < bed_.size() && pick == server_node;
           ++off) {
        const std::size_t cand = (server_node + off) % bed_.size();
        if (bed_.shard_of_node(static_cast<sim::NodeId>(cand)) != want) {
          continue;
        }
        if (fallback == server_node) fallback = cand;
        if (topo.tor_of(static_cast<sim::NodeId>(cand)) !=
            topo.tor_of(static_cast<sim::NodeId>(server_node))) {
          pick = cand;
        }
      }
      client_node = pick != server_node ? pick : fallback;
    }

    vswitch::VnicConfig server;
    server.id = static_cast<tables::VnicId>(1000 + i);
    server.addr = tables::OverlayAddr{
        config_.vpc_id,
        net::Ipv4Addr(10, 50, static_cast<std::uint8_t>(i / 250),
                      static_cast<std::uint8_t>(i % 250 + 1))};
    server.profile.synthetic_rule_bytes = 2 << 20;
    bed_.add_vnic(server_node, server);

    vswitch::VnicConfig client;
    client.id = static_cast<tables::VnicId>(2000 + i);
    client.addr = tables::OverlayAddr{
        config_.vpc_id,
        net::Ipv4Addr(10, 60, static_cast<std::uint8_t>(i / 250),
                      static_cast<std::uint8_t>(i % 250 + 1))};
    bed_.add_vnic(client_node, client);

    servers_.push_back(server.id);
    server_switches_.push_back(server_node);
    client_switches_.push_back(client_node);
  }
}

std::size_t FleetScenario::offload_all(std::size_t holdback) {
  std::size_t accepted = 0;
  const std::size_t n =
      servers_.size() > holdback ? servers_.size() - holdback : 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (bed_.controller().trigger_offload(servers_[i], config_.fes_per_vnic)
            .ok()) {
      ++accepted;
    }
  }
  return accepted;
}

void FleetScenario::schedule_churn(common::Duration offload_at,
                                   common::Duration crash_at,
                                   common::Duration reseed_at) {
  const common::TimePoint t0 = bed_.loop().now();
  // (1) Offload push: bring every still-local server vNIC online
  // mid-window — the workflow offload_all's holdback left behind.
  bed_.schedule_control(t0 + offload_at, [this]() {
    for (tables::VnicId id : servers_) {
      if (bed_.controller().is_offloaded(id) ||
          bed_.controller().transition_pending(id)) {
        continue;
      }
      (void)bed_.controller().trigger_offload(id, config_.fes_per_vnic);
    }
  });
  // (2) FE crash, detected the honest way: the monitor watches every FE
  // host (many targets keep the §C.2 widespread-failure fraction low),
  // then the victim — the lowest-numbered FE of the first server's pool at
  // fire time — stops answering on EVERY shard's network (each shard
  // checks its own crash bit at the send source), and failover arrives via
  // probe loss → crash declaration → the fenced handle_fe_crash callback.
  bed_.schedule_control(t0 + crash_at, [this]() {
    if (servers_.empty()) return;
    const std::vector<sim::NodeId> fes =
        bed_.controller().fe_nodes_of(servers_.front());
    if (fes.empty()) return;
    const sim::NodeId victim = *std::min_element(fes.begin(), fes.end());
    crashed_fe_ = victim;
    bed_.watch_fe_hosts();
    bed_.monitor().start();
    for (std::uint32_t s = 0; s < bed_.shard_count(); ++s) {
      bed_.network_of_shard(static_cast<std::uint32_t>(s)).crash(victim);
    }
  });
  // (3) Fleet-wide FE-selection reseed (§7.5) — the same push a production
  // controller uses to fix an uneven 5-tuple hash landing.
  bed_.schedule_control(t0 + reseed_at, [this]() {
    bed_.controller().reseed_fe_hash(config_.seed ^ 0x9e3779b97f4a7c15ULL);
  });
}

void FleetScenario::start_traffic() {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    CpsWorkloadConfig wl;
    wl.attempts_per_sec = config_.base_attempts_per_sec * pair_load_scale_[i];
    wl.seed = config_.seed * 1000003 + i;
    workloads_.push_back(std::make_unique<CpsWorkload>(
        bed_, client_switches_[i], static_cast<tables::VnicId>(2000 + i),
        server_switches_[i], servers_[i], wl));
    workloads_.back()->start();
  }
}

void FleetScenario::stop_traffic() {
  for (auto& wl : workloads_) wl->stop();
}

std::uint64_t FleetScenario::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const auto& wl : workloads_) {
    h = fnv1a(h, wl->attempted());
    h = fnv1a(h, wl->completed());
  }
  // Fleet-wide sums in the same field order as the pre-shard single-network
  // digest, so a 1-shard testbed reproduces the historical fingerprints
  // bit-for-bit; the cross-shard counters only join on sharded beds.
  const core::Testbed::NetTotals t = bed_.net_totals();
  h = fnv1a(h, t.sent);
  h = fnv1a(h, t.delivered);
  h = fnv1a(h, t.dropped);
  h = fnv1a(h, t.in_flight);
  h = fnv1a(h, t.total_bytes);
  for (std::uint64_t b : t.spine_bytes) h = fnv1a(h, b);
  if (bed_.shard_count() > 1) {
    h = fnv1a(h, t.exported);
    h = fnv1a(h, t.imported);
  }
  const core::Controller& ctl = bed_.controller();
  h = fnv1a(h, ctl.offload_events());
  h = fnv1a(h, ctl.fallback_events());
  h = fnv1a(h, ctl.scale_out_events());
  h = fnv1a(h, ctl.scale_in_events());
  h = fnv1a(h, ctl.failover_events());
  h = fnv1a(h, ctl.fes_provisioned_total());
  return h;
}

}  // namespace nezha::workload
