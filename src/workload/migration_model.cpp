#include "src/workload/migration_model.h"

#include <cmath>

namespace nezha::workload {

common::Duration MigrationModel::downtime(int vcpus, double mem_gb,
                                          common::Rng& rng) const {
  const double mem_scale = std::pow(std::max(mem_gb, 1.0), config_.mem_alpha);
  const double vcpu_scale =
      1.0 + config_.vcpu_factor * static_cast<double>(vcpus) / 64.0;
  const double jitter = rng.lognormal(0.0, config_.jitter_sigma);
  return static_cast<common::Duration>(
      static_cast<double>(config_.base_downtime) * mem_scale * vcpu_scale *
      jitter);
}

common::Duration MigrationModel::completion_time(double mem_gb,
                                                 common::Rng& rng) const {
  const double seconds =
      mem_gb * 8.0 * config_.copy_passes / config_.copy_gbps;
  const double jitter = rng.lognormal(0.0, config_.jitter_sigma);
  return common::from_seconds(seconds * jitter);
}

}  // namespace nezha::workload
