#include "src/workload/vm_model.h"

namespace nezha::workload {

VmKernel::VmKernel(VmKernelConfig config) : config_(config) {
  const double n = static_cast<double>(config_.vcpus);
  max_cps_ = config_.cps_per_core * n / (1.0 + config_.contention * (n - 1.0));
  per_conn_ = static_cast<common::Duration>(
      static_cast<double>(common::kSecond) / max_cps_);
}

VmKernel::Outcome VmKernel::admit(common::TimePoint now) {
  Outcome out;
  if (busy_until_ < now) busy_until_ = now;
  if (busy_until_ - now > config_.max_backlog) {
    ++rejected_;
    return out;
  }
  busy_until_ += per_conn_;
  ++accepted_;
  out.accepted = true;
  out.done = busy_until_ + config_.service_latency;
  return out;
}

}  // namespace nezha::workload
