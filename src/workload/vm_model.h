// Guest-VM kernel model for connection handling.
//
// With Nezha the vSwitch stops being the CPS bottleneck and the VM kernel
// takes over (§6.2.2, Fig 10): kernel locks and connection-management limits
// make CPS grow sublinearly with vCPU count. We model the kernel as a queue
// server whose capacity follows a contention-discounted linear scaling law,
// and whose accept backlog bounds burst absorption.
#pragma once

#include <cstdint>

#include "src/common/time.h"

namespace nezha::workload {

struct VmKernelConfig {
  int vcpus = 16;
  /// Connections per second one uncontended core can complete.
  double cps_per_core = 30000.0;
  /// Lock-contention discount: capacity = cps_per_core * vcpus /
  /// (1 + contention * (vcpus - 1)). Higher values flatten Fig 10 earlier.
  double contention = 0.045;
  /// Per-connection kernel/app latency before the reply is issued.
  common::Duration service_latency = common::microseconds(30);
  /// Longest tolerated accept backlog before connections are refused.
  common::Duration max_backlog = common::milliseconds(20);
};

class VmKernel {
 public:
  explicit VmKernel(VmKernelConfig config = {});

  const VmKernelConfig& config() const { return config_; }

  /// Sustainable connections/second given the contention law.
  double max_cps() const { return max_cps_; }

  struct Outcome {
    bool accepted = false;
    common::TimePoint done = 0;  // when the kernel finishes this connection
  };

  /// Admits one connection at `now`; rejects when the backlog exceeds the
  /// limit (SYN queue overflow).
  Outcome admit(common::TimePoint now);

  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  VmKernelConfig config_;
  double max_cps_;
  common::Duration per_conn_;  // service time per connection
  common::TimePoint busy_until_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace nezha::workload
