// Fleet telemetry model: regenerates the production distributions behind
// Figs 2–4 and Table 1 from their published percentile anchors.
//
// The paper reports quantiles of CPU/memory utilization over O(10K)
// vSwitches and of per-VM service usage; we sample from the piecewise
// log-linear quantile function through those anchors. This reproduces the
// published shape by construction while remaining an honest generative
// model (samples between anchors are interpolated, the tail beyond P9999 is
// clamped to the reported maximum).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace nezha::workload {

/// A distribution defined by (quantile, value) anchor points.
class QuantileDistribution {
 public:
  struct Anchor {
    double quantile;  // in [0, 1]
    double value;
  };

  explicit QuantileDistribution(std::vector<Anchor> anchors);

  /// Inverse-CDF sample (log-linear interpolation between anchors).
  double sample(common::Rng& rng) const;
  double value_at(double quantile) const;

 private:
  std::vector<Anchor> anchors_;
};

struct FleetModelConfig {
  std::size_t num_vswitches = 10000;
  std::uint64_t seed = 20240901;
};

/// Which capability a hotspot exhausts (Fig 3 / Appendix A.1).
enum class HotspotCause { kCps, kConcurrentFlows, kVnics };
std::string to_string(HotspotCause cause);

class FleetModel {
 public:
  explicit FleetModel(FleetModelConfig config = {});

  /// §2.2.1 Fig 4a: per-vSwitch CPU utilization in [0,1].
  /// Anchors: avg≈5%, P90 15%, P99 41%, P999 68%, P9999 90%, max 98%.
  std::vector<double> sample_cpu_utilization();

  /// §2.2.1 Fig 4b: memory utilization.
  /// Anchors: avg≈1.5%, P90 15%, P99 34%, P999 93%, P9999 96%.
  std::vector<double> sample_memory_utilization();

  /// Table 1: per-VM service usage normalized to the P9999 user (=1.0),
  /// same quantile law for CPS / #flows / #vNICs with per-kind anchors.
  std::vector<double> sample_usage(HotspotCause kind, std::size_t n);

  /// Fig 3: the capability that caused each overload event
  /// (CPS 61%, #concurrent flows 30%, #vNICs 9%).
  std::vector<HotspotCause> sample_hotspot_causes(std::size_t n);

  /// Fig 2: paired (VM CPU, vSwitch CPU) for high-CPS VMs: vSwitch >95%
  /// in all cases while 90% of the VMs sit below 60%.
  struct HighCpsPair {
    double vm_cpu;
    double vswitch_cpu;
  };
  std::vector<HighCpsPair> sample_high_cps_pairs(std::size_t n);

  common::Rng& rng() { return rng_; }

 private:
  FleetModelConfig config_;
  common::Rng rng_;
};

}  // namespace nezha::workload
