// Fleet telemetry model: regenerates the production distributions behind
// Figs 2–4 and Table 1 from their published percentile anchors.
//
// The paper reports quantiles of CPU/memory utilization over O(10K)
// vSwitches and of per-VM service usage; we sample from the piecewise
// log-linear quantile function through those anchors. This reproduces the
// published shape by construction while remaining an honest generative
// model (samples between anchors are interpolated, the tail beyond P9999 is
// clamped to the reported maximum).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/testbed.h"
#include "src/workload/cps_workload.h"

namespace nezha::workload {

/// A distribution defined by (quantile, value) anchor points.
class QuantileDistribution {
 public:
  struct Anchor {
    double quantile;  // in [0, 1]
    double value;
  };

  explicit QuantileDistribution(std::vector<Anchor> anchors);

  /// Inverse-CDF sample (log-linear interpolation between anchors).
  double sample(common::Rng& rng) const;
  double value_at(double quantile) const;

 private:
  std::vector<Anchor> anchors_;
};

struct FleetModelConfig {
  std::size_t num_vswitches = 10000;
  std::uint64_t seed = 20240901;
};

/// Which capability a hotspot exhausts (Fig 3 / Appendix A.1).
enum class HotspotCause { kCps, kConcurrentFlows, kVnics };
std::string to_string(HotspotCause cause);

class FleetModel {
 public:
  explicit FleetModel(FleetModelConfig config = {});

  /// §2.2.1 Fig 4a: per-vSwitch CPU utilization in [0,1].
  /// Anchors: avg≈5%, P90 15%, P99 41%, P999 68%, P9999 90%, max 98%.
  std::vector<double> sample_cpu_utilization();

  /// §2.2.1 Fig 4b: memory utilization.
  /// Anchors: avg≈1.5%, P90 15%, P99 34%, P999 93%, P9999 96%.
  std::vector<double> sample_memory_utilization();

  /// Table 1: per-VM service usage normalized to the P9999 user (=1.0),
  /// same quantile law for CPS / #flows / #vNICs with per-kind anchors.
  std::vector<double> sample_usage(HotspotCause kind, std::size_t n);

  /// Fig 3: the capability that caused each overload event
  /// (CPS 61%, #concurrent flows 30%, #vNICs 9%).
  std::vector<HotspotCause> sample_hotspot_causes(std::size_t n);

  /// Fig 2: paired (VM CPU, vSwitch CPU) for high-CPS VMs: vSwitch >95%
  /// in all cases while 90% of the VMs sit below 60%.
  struct HighCpsPair {
    double vm_cpu;
    double vswitch_cpu;
  };
  std::vector<HighCpsPair> sample_high_cps_pairs(std::size_t n);

  common::Rng& rng() { return rng_; }

 private:
  FleetModelConfig config_;
  common::Rng rng_;
};

// ---------------------------------------------------------------------------

struct FleetScenarioConfig {
  /// Server (heavy, offloadable) vNICs; each gets a client vNIC placed in a
  /// different rack, so client→server traffic crosses the spine tier.
  std::size_t num_pairs = 8;
  /// FEs per offloaded vNIC (the paper's minimum pool is 4).
  std::size_t fes_per_vnic = 4;
  /// Baseline offered load per pair; scaled per pair by the Table-1 CPS
  /// usage distribution so the fleet has realistic heavy hitters.
  double base_attempts_per_sec = 5000.0;
  std::uint32_t vpc_id = 77;
  std::uint64_t seed = 1;
};

/// Fleet-scale scenario driver: populates a (typically ≥128-vSwitch, Clos)
/// testbed with cross-rack client/server vNIC pairs shaped by the fleet
/// telemetry model, offloads every server vNIC, and runs CPS workloads whose
/// BE↔FE and client→FE traffic traverses the underlay fabric. All decisions
/// derive from (config, seed), so a run's fingerprint() is reproducible
/// bit-for-bit.
class FleetScenario {
 public:
  FleetScenario(core::Testbed& bed, FleetScenarioConfig config = {});

  /// Creates the vNIC pairs: server i on the first host of leaf i (mod
  /// #leaves), its client on a host half the fabric away.
  void deploy();

  /// Offloads the server vNICs to fes_per_vnic FEs each, skipping the last
  /// `holdback` servers (left local so a mid-window churn push has work to
  /// do); returns how many offload workflows were accepted.
  std::size_t offload_all(std::size_t holdback = 0);

  /// Full-churn script for threaded end-to-end runs, fired through
  /// Testbed::schedule_control (fenced sections on a threaded bed, plain
  /// loop events otherwise). Relative to now:
  ///  * offload_at — offload every still-local server vNIC (the holdback);
  ///  * crash_at   — crash the lowest-numbered FE of the first server's
  ///    pool on every shard's network, with the health monitor watching
  ///    all FE hosts, so failover flows probe-loss → declaration →
  ///    handle_fe_crash;
  ///  * reseed_at  — fleet-wide FE hash reseed (§7.5).
  /// All three are pure functions of (config, seed) at fire time.
  void schedule_churn(common::Duration offload_at, common::Duration crash_at,
                      common::Duration reseed_at);
  /// Node crashed by the churn script (0 until the crash fires).
  sim::NodeId crashed_fe() const { return crashed_fe_; }

  void start_traffic();
  void stop_traffic();

  const std::vector<tables::VnicId>& server_vnics() const { return servers_; }
  const std::vector<std::unique_ptr<CpsWorkload>>& workloads() const {
    return workloads_;
  }

  /// FNV-1a digest of every workload/network/controller counter that the
  /// simulation determines: two identically-seeded runs must match exactly.
  std::uint64_t fingerprint() const;

 private:
  core::Testbed& bed_;
  FleetScenarioConfig config_;
  std::vector<tables::VnicId> servers_;
  std::vector<std::size_t> server_switches_;
  std::vector<std::size_t> client_switches_;
  std::vector<std::unique_ptr<CpsWorkload>> workloads_;
  std::vector<double> pair_load_scale_;
  sim::NodeId crashed_fe_ = 0;
};

}  // namespace nezha::workload
