#include "src/workload/cps_workload.h"

#include <algorithm>

namespace nezha::workload {

namespace {
constexpr std::size_t kInitialConnSlots = 256;  // power of two

std::size_t conn_hash(std::uint32_t ports) {
  return static_cast<std::size_t>(
      net::flow_hash_mix64(static_cast<std::uint64_t>(ports)));
}
}  // namespace

CpsWorkload::Conn* CpsWorkload::conn_find(std::uint32_t ports) {
  if (conns_.empty()) return nullptr;
  const std::size_t mask = conns_.size() - 1;
  for (std::size_t i = conn_hash(ports) & mask;; i = (i + 1) & mask) {
    Conn& c = conns_[i];
    if (c.ports == kConnEmpty) return nullptr;
    if (c.ports == ports) return &c;
  }
}

void CpsWorkload::conn_rehash(std::size_t new_size) {
  std::vector<Conn> old;
  old.swap(conns_);
  conns_.assign(new_size, Conn{});
  const std::size_t mask = conns_.size() - 1;
  for (const Conn& c : old) {
    if (c.ports == kConnEmpty) continue;
    std::size_t i = conn_hash(c.ports) & mask;
    while (conns_[i].ports != kConnEmpty) i = (i + 1) & mask;
    conns_[i] = c;
  }
}

CpsWorkload::Conn* CpsWorkload::conn_insert(std::uint32_t ports) {
  if (conns_.empty()) {
    conns_.assign(kInitialConnSlots, Conn{});
  } else if ((conn_count_ + 1) * 4 > conns_.size() * 3) {
    // Backward-shift erases leave no tombstones, so a rehash only ever
    // means the concurrent working set genuinely grew.
    conn_rehash(conns_.size() * 2);
  }
  const std::size_t mask = conns_.size() - 1;
  std::size_t i = conn_hash(ports) & mask;
  for (;; i = (i + 1) & mask) {
    Conn& c = conns_[i];
    if (c.ports == ports) return &c;  // reuse (port-space wrap)
    if (c.ports == kConnEmpty) break;
  }
  Conn* slot = &conns_[i];
  *slot = Conn{};
  slot->ports = ports;
  ++conn_count_;
  return slot;
}

void CpsWorkload::conn_erase(Conn* c) {
  // Backward-shift deletion: pull every cluster member whose home position
  // is at or before the hole back over it, leaving no tombstone.
  const std::size_t mask = conns_.size() - 1;
  std::size_t i = static_cast<std::size_t>(c - conns_.data());
  for (std::size_t j = (i + 1) & mask;; j = (j + 1) & mask) {
    Conn& n = conns_[j];
    if (n.ports == kConnEmpty) break;
    const std::size_t home = conn_hash(n.ports) & mask;
    if (((j - home) & mask) >= ((j - i) & mask)) {
      conns_[i] = n;
      i = j;
    }
  }
  conns_[i] = Conn{};
  --conn_count_;
}

CpsWorkload::CpsWorkload(core::Testbed& bed, std::size_t client_switch,
                         tables::VnicId client_vnic,
                         std::size_t server_switch,
                         tables::VnicId server_vnic, CpsWorkloadConfig config)
    : bed_(bed),
      loop_(bed.loop_of(client_switch)),
      client_switch_(bed.vswitch(client_switch)),
      server_switch_(bed.vswitch(server_switch)),
      client_vnic_(client_vnic),
      server_vnic_(server_vnic),
      config_(config),
      rng_(config.seed),
      client_kernel_(config.client_kernel),
      server_kernel_(config.server_kernel) {
  if (bed.shard_count() > 1 &&
      bed.shard_of_node(static_cast<sim::NodeId>(client_switch)) !=
          bed.shard_of_node(static_cast<sim::NodeId>(server_switch))) {
    throw std::runtime_error(
        "CpsWorkload: endpoints must share a shard on a sharded testbed");
  }
  const vswitch::Vnic* c = client_switch_.find_vnic(client_vnic);
  const vswitch::Vnic* s = server_switch_.find_vnic(server_vnic);
  if (c == nullptr || s == nullptr) {
    throw std::runtime_error("CpsWorkload: endpoints missing");
  }
  client_ip_ = c->addr().ip;
  server_ip_ = s->addr().ip;
  vpc_ = c->addr().vpc_id;
  client_switch_.set_vm_delivery(
      [this](tables::VnicId v, const net::Packet& p) {
        if (v == client_vnic_) on_client_delivery(p);
      });
  server_switch_.set_vm_delivery(
      [this](tables::VnicId v, const net::Packet& p) {
        if (v == server_vnic_) on_server_delivery(p);
      });
}

void CpsWorkload::start() {
  running_ = true;
  if (config_.concurrency > 0) {
    for (int i = 0; i < config_.concurrency; ++i) attempt();
  } else {
    schedule_next_attempt();
  }
}

void CpsWorkload::schedule_next_attempt() {
  if (!running_) return;
  const double gap_s = rng_.exponential(1.0 / config_.attempts_per_sec);
  loop_.schedule_after(common::from_seconds(gap_s), [this]() {
    attempt();
    schedule_next_attempt();
  });
}

net::FiveTuple CpsWorkload::next_tuple() {
  const std::uint32_t seq = conn_seq_++;
  // Cycle src ports 1024..64511 × a handful of server ports: >10^9 distinct
  // tuples before reuse.
  const auto src_port =
      static_cast<std::uint16_t>(1024 + seq % 63488);
  const auto dst_port = static_cast<std::uint16_t>(
      config_.base_port + (seq / 63488) % config_.server_ports);
  return net::FiveTuple{client_ip_, server_ip_, src_port, dst_port,
                        net::IpProto::kTcp};
}

void CpsWorkload::attempt() {
  if (!running_) return;
  ++attempted_;
  // The client kernel must have capacity to even issue the connect().
  const VmKernel::Outcome admit = client_kernel_.admit(loop_.now());
  if (!admit.accepted) {
    if (config_.concurrency > 0) {
      // Closed loop: don't lose the slot; retry when the kernel drains.
      if (config_.timer_window > 0) {
        timer_push(kTimerReattempt,
                   loop_.now() + common::milliseconds(5), 0);
      } else {
        loop_.schedule_after(common::milliseconds(5),
                                   [this]() { attempt(); });
      }
    }
    return;
  }
  const net::FiveTuple ft = next_tuple();
  const std::uint32_t ports = ports_key(ft);
  Conn* c = conn_insert(ports);
  c->syn_sent = loop_.now();
  c->established = 0;
  c->retries = 0;
  if (config_.timer_window > 0) {
    timer_push(kTimerSendSyn, admit.done, ports);
  } else {
    loop_.schedule_at(
        admit.done, [this, ports]() { send_syn(client_tuple(ports), 0); });
  }
}

void CpsWorkload::release_slot() {
  // Batched closed-loop admission: freed slots accumulate and one round
  // event (at this same timestamp) admits them all, so N completions
  // delivered in one burst share a single scheduling round.
  ++pending_slots_;
  if (round_scheduled_) return;
  round_scheduled_ = true;
  loop_.schedule_at(loop_.now(),
                          [this]() { admission_round(); });
}

void CpsWorkload::admission_round() {
  round_scheduled_ = false;
  const int n = pending_slots_;
  pending_slots_ = 0;
  for (int i = 0; i < n; ++i) attempt();
}

void CpsWorkload::timer_push(std::uint8_t kind, common::TimePoint at,
                             std::uint32_t ports, std::uint8_t attempt) {
  if (timer_qs_.empty()) {
    const int rto_levels =
        config_.max_syn_retries > 0 ? config_.max_syn_retries : 0;
    timer_qs_.resize(4 + static_cast<std::size_t>(rto_levels));
  }
  TimerQ& q =
      timer_qs_[kind == kTimerRto ? 4 + static_cast<std::size_t>(attempt)
                                  : kind];
  if (q.count == q.buf.size()) {
    std::vector<Timer> bigger(q.buf.empty() ? 64 : q.buf.size() * 2);
    for (std::size_t i = 0; i < q.count; ++i) {
      bigger[i] = q.buf[(q.head + i) & (q.buf.size() - 1)];
    }
    q.buf = std::move(bigger);
    q.head = 0;
  }
  const std::size_t mask = q.buf.size() - 1;
  // Monotone by construction; clamp defensively so a violation degrades to
  // a slightly later fire, never to ring reordering.
  if (q.count > 0) {
    const common::TimePoint prev = q.buf[(q.head + q.count - 1) & mask].at;
    if (at < prev) at = prev;
  }
  q.buf[(q.head + q.count) & mask] = Timer{at, ++timer_seq_, ports, kind,
                                           attempt};
  ++q.count;
  if (timer_draining_) return;  // drain re-arms once, after its loop
  const common::Duration w = config_.timer_window;
  const common::TimePoint fire = (at + w - 1) / w * w;
  if (timer_event_at_ < 0 || fire < timer_event_at_) {
    if (timer_event_at_ >= 0) loop_.cancel(timer_event_);
    timer_event_ = loop_.schedule_raw_at(
        fire, &CpsWorkload::timer_drain_thunk, this, 0);
    timer_event_at_ = fire;
  }
}

void CpsWorkload::timer_fire(const Timer& t) {
  switch (t.kind) {
    case kTimerSendSyn:
      send_syn(client_tuple(t.ports), 0);
      break;
    case kTimerSynAck:
      send_synack(client_tuple(t.ports).reversed());
      break;
    case kTimerRto: {
      Conn* rc = conn_find(t.ports);
      if (rc == nullptr || rc->established != 0) return;
      ++rc->retries;
      send_syn(client_tuple(t.ports), t.attempt + 1);
      break;
    }
    case kTimerGiveUp: {
      Conn* rc = conn_find(t.ports);
      if (rc != nullptr && rc->established == 0) {
        conn_erase(rc);
        if (config_.concurrency > 0) release_slot();
      }
      break;
    }
    case kTimerReattempt:
      attempt();
      break;
  }
}

void CpsWorkload::timer_drain() {
  timer_draining_ = true;
  timer_event_at_ = -1;
  const common::TimePoint now = loop_.now();
  // K-way merge of the ring fronts: fire everything due at `now` in
  // (at, seq) order. Timers pushed by fired handlers (e.g. a SYN's RTO, or
  // a SYN-ACK admission from a synchronous delivery) join their ring
  // mid-loop; if due at `now` they drain in this same pass, in order.
  for (;;) {
    TimerQ* best = nullptr;
    for (TimerQ& q : timer_qs_) {
      if (q.count == 0 || q.front().at > now) continue;
      if (best == nullptr || timer_later(best->front(), q.front())) {
        best = &q;
      }
    }
    if (best == nullptr) break;
    const Timer t = best->front();
    best->pop();
    timer_fire(t);
  }
  timer_draining_ = false;
  common::TimePoint next = -1;
  for (const TimerQ& q : timer_qs_) {
    if (q.count > 0 && (next < 0 || q.front().at < next)) {
      next = q.front().at;
    }
  }
  if (next >= 0) {
    const common::Duration w = config_.timer_window;
    const common::TimePoint fire = (next + w - 1) / w * w;
    timer_event_ = loop_.schedule_raw_at(
        fire, &CpsWorkload::timer_drain_thunk, this, 0);
    timer_event_at_ = fire;
  }
}

void CpsWorkload::send_syn(const net::FiveTuple& ft, int attempt) {
  const std::uint32_t ports = ports_key(ft);
  Conn* c = conn_find(ports);
  if (c == nullptr || c->established != 0) return;
  net::Packet syn = net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0,
                                         vpc_);
  syn.created_at = loop_.now();
  client_switch_.from_vm(client_vnic_, std::move(syn));
  const common::Duration rto = config_.syn_rto << attempt;
  if (attempt >= config_.max_syn_retries) {
    // Give up after one final RTO (frees the tracking entry and, in closed
    // loop mode, the concurrency slot).
    if (config_.timer_window > 0) {
      timer_push(kTimerGiveUp, loop_.now() + rto, ports);
    } else {
      loop_.schedule_after(rto, [this, ports]() {
        Conn* rc = conn_find(ports);
        if (rc != nullptr && rc->established == 0) {
          conn_erase(rc);
          if (config_.concurrency > 0) release_slot();
        }
      });
    }
    return;
  }
  // Exponential backoff retransmission, as the guest TCP stack would do.
  if (config_.timer_window > 0) {
    timer_push(kTimerRto, loop_.now() + rto, ports,
               static_cast<std::uint8_t>(attempt));
  } else {
    loop_.schedule_after(rto, [this, ports, attempt]() {
      Conn* rc = conn_find(ports);
      if (rc == nullptr || rc->established != 0) return;
      ++rc->retries;
      send_syn(client_tuple(ports), attempt + 1);
    });
  }
}

void CpsWorkload::on_server_delivery(const net::Packet& pkt) {
  const net::TcpFlags flags = pkt.inner.tcp_flags;
  if (flags.syn && !flags.ack) {
    // Server kernel accepts and replies SYN-ACK when it gets CPU.
    const VmKernel::Outcome admit = server_kernel_.admit(loop_.now());
    if (!admit.accepted) return;  // SYN queue overflow: client would retry
    const net::FiveTuple& ft = pkt.inner.ft;
    if (ft.src_ip == client_ip_ && ft.dst_ip == server_ip_ &&
        ft.proto == net::IpProto::kTcp) {
      const std::uint32_t ports = ports_key(ft);
      if (config_.timer_window > 0) {
        timer_push(kTimerSynAck, admit.done, ports);
      } else {
        loop_.schedule_at(admit.done, [this, ports]() {
          send_synack(client_tuple(ports).reversed());
        });
      }
    } else {
      // Rewritten (e.g. NAT'd) tuple: keep the exact reply address. The
      // port-pair key can't encode it, so this shape stays on the
      // per-timer event path regardless of timer_window — but with the
      // tuple parked in a pool slot instead of a heap-spilled closure.
      schedule_foreign_synack(admit.done, ft.reversed());
    }
  }
  // Final ACK / FIN handling needs no further server action in this model.
}

void CpsWorkload::schedule_foreign_synack(common::TimePoint at,
                                          const net::FiveTuple& reply) {
  std::uint32_t slot;
  if (!foreign_free_.empty()) {
    slot = foreign_free_.back();
    foreign_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(foreign_synacks_.size());
    foreign_synacks_.emplace_back();
  }
  foreign_synacks_[slot] = reply;
  loop_.schedule_raw_at(at, &CpsWorkload::foreign_synack_thunk, this,
                              slot);
}

void CpsWorkload::foreign_synack_thunk(void* self, std::uint64_t slot) {
  auto* w = static_cast<CpsWorkload*>(self);
  const net::FiveTuple reply =
      w->foreign_synacks_[static_cast<std::size_t>(slot)];
  w->foreign_free_.push_back(static_cast<std::uint32_t>(slot));
  w->send_synack(reply);
}

void CpsWorkload::send_synack(const net::FiveTuple& reply) {
  server_switch_.from_vm(
      server_vnic_,
      net::make_tcp_packet(reply, net::TcpFlags{.syn = true, .ack = true}, 0,
                           vpc_));
}

void CpsWorkload::on_client_delivery(const net::Packet& pkt) {
  const net::TcpFlags flags = pkt.inner.tcp_flags;
  if (!(flags.syn && flags.ack)) return;
  const net::FiveTuple ft = pkt.inner.ft.reversed();  // client-oriented
  // The port pair is only a valid key for untranslated workload tuples
  // (the full-tuple equality the old per-connection map gave for free).
  if (ft.src_ip != client_ip_ || ft.dst_ip != server_ip_ ||
      ft.proto != net::IpProto::kTcp) {
    return;
  }
  Conn* c = conn_find(ports_key(ft));
  if (c == nullptr || c->established != 0) return;
  c->established = 1;
  ++completed_;
  completions_.push_back(loop_.now());
  latency_.add(common::to_micros(loop_.now() - c->syn_sent));

  // Complete the handshake; optionally close.
  client_switch_.from_vm(
      client_vnic_, net::make_tcp_packet(ft, net::TcpFlags{.ack = true}, 0,
                                         vpc_));
  if (config_.close_connections) {
    client_switch_.from_vm(
        client_vnic_,
        net::make_tcp_packet(ft, net::TcpFlags{.ack = true, .fin = true}, 0,
                             vpc_));
  }
  // Re-find: from_vm can recurse into deliveries that mutate the table.
  if (Conn* again = conn_find(ports_key(ft))) conn_erase(again);
  if (config_.concurrency > 0) release_slot();
}

double CpsWorkload::cps_over(common::TimePoint t0,
                             common::TimePoint t1) const {
  if (t1 <= t0) return 0.0;
  std::uint64_t n = 0;
  for (common::TimePoint t : completions_) {
    if (t >= t0 && t < t1) ++n;
  }
  return static_cast<double>(n) / common::to_seconds(t1 - t0);
}

}  // namespace nezha::workload
