#include "src/workload/cps_workload.h"

namespace nezha::workload {

CpsWorkload::CpsWorkload(core::Testbed& bed, std::size_t client_switch,
                         tables::VnicId client_vnic,
                         std::size_t server_switch,
                         tables::VnicId server_vnic, CpsWorkloadConfig config)
    : bed_(bed),
      client_switch_(bed.vswitch(client_switch)),
      server_switch_(bed.vswitch(server_switch)),
      client_vnic_(client_vnic),
      server_vnic_(server_vnic),
      config_(config),
      rng_(config.seed),
      client_kernel_(config.client_kernel),
      server_kernel_(config.server_kernel) {
  const vswitch::Vnic* c = client_switch_.find_vnic(client_vnic);
  const vswitch::Vnic* s = server_switch_.find_vnic(server_vnic);
  if (c == nullptr || s == nullptr) {
    throw std::runtime_error("CpsWorkload: endpoints missing");
  }
  client_ip_ = c->addr().ip;
  server_ip_ = s->addr().ip;
  vpc_ = c->addr().vpc_id;
  client_switch_.set_vm_delivery(
      [this](tables::VnicId v, const net::Packet& p) {
        if (v == client_vnic_) on_client_delivery(p);
      });
  server_switch_.set_vm_delivery(
      [this](tables::VnicId v, const net::Packet& p) {
        if (v == server_vnic_) on_server_delivery(p);
      });
}

void CpsWorkload::start() {
  running_ = true;
  if (config_.concurrency > 0) {
    for (int i = 0; i < config_.concurrency; ++i) attempt();
  } else {
    schedule_next_attempt();
  }
}

void CpsWorkload::schedule_next_attempt() {
  if (!running_) return;
  const double gap_s = rng_.exponential(1.0 / config_.attempts_per_sec);
  bed_.loop().schedule_after(common::from_seconds(gap_s), [this]() {
    attempt();
    schedule_next_attempt();
  });
}

net::FiveTuple CpsWorkload::next_tuple() {
  const std::uint32_t seq = conn_seq_++;
  // Cycle src ports 1024..64511 × a handful of server ports: >10^9 distinct
  // tuples before reuse.
  const auto src_port =
      static_cast<std::uint16_t>(1024 + seq % 63488);
  const auto dst_port = static_cast<std::uint16_t>(
      config_.base_port + (seq / 63488) % config_.server_ports);
  return net::FiveTuple{client_ip_, server_ip_, src_port, dst_port,
                        net::IpProto::kTcp};
}

void CpsWorkload::attempt() {
  if (!running_) return;
  ++attempted_;
  // The client kernel must have capacity to even issue the connect().
  const VmKernel::Outcome admit = client_kernel_.admit(bed_.loop().now());
  if (!admit.accepted) {
    if (config_.concurrency > 0) {
      // Closed loop: don't lose the slot; retry when the kernel drains.
      bed_.loop().schedule_after(common::milliseconds(5),
                                 [this]() { attempt(); });
    }
    return;
  }
  const net::FiveTuple ft = next_tuple();
  conns_[ft] = Conn{bed_.loop().now(), false, 0};
  const std::uint32_t ports = ports_key(ft);
  bed_.loop().schedule_at(
      admit.done, [this, ports]() { send_syn(client_tuple(ports), 0); });
}

void CpsWorkload::send_syn(const net::FiveTuple& ft, int attempt) {
  auto it = conns_.find(ft);
  if (it == conns_.end() || it->second.established) return;
  net::Packet syn = net::make_tcp_packet(ft, net::TcpFlags{.syn = true}, 0,
                                         vpc_);
  syn.created_at = bed_.loop().now();
  client_switch_.from_vm(client_vnic_, std::move(syn));
  const std::uint32_t ports = ports_key(ft);
  if (attempt >= config_.max_syn_retries) {
    // Give up after one final RTO (frees the tracking entry and, in closed
    // loop mode, the concurrency slot).
    bed_.loop().schedule_after(config_.syn_rto << attempt, [this, ports]() {
      auto rit = conns_.find(client_tuple(ports));
      if (rit != conns_.end() && !rit->second.established) {
        conns_.erase(rit);
        if (config_.concurrency > 0) this->attempt();
      }
    });
    return;
  }
  // Exponential backoff retransmission, as the guest TCP stack would do.
  const common::Duration rto = config_.syn_rto << attempt;
  bed_.loop().schedule_after(rto, [this, ports, attempt]() {
    auto rit = conns_.find(client_tuple(ports));
    if (rit == conns_.end() || rit->second.established) return;
    ++rit->second.retries;
    send_syn(rit->first, attempt + 1);
  });
}

void CpsWorkload::on_server_delivery(const net::Packet& pkt) {
  const net::TcpFlags flags = pkt.inner.tcp_flags;
  if (flags.syn && !flags.ack) {
    // Server kernel accepts and replies SYN-ACK when it gets CPU.
    const VmKernel::Outcome admit = server_kernel_.admit(bed_.loop().now());
    if (!admit.accepted) return;  // SYN queue overflow: client would retry
    const net::FiveTuple& ft = pkt.inner.ft;
    if (ft.src_ip == client_ip_ && ft.dst_ip == server_ip_ &&
        ft.proto == net::IpProto::kTcp) {
      const std::uint32_t ports = ports_key(ft);
      bed_.loop().schedule_at(admit.done, [this, ports]() {
        send_synack(client_tuple(ports).reversed());
      });
    } else {
      // Rewritten (e.g. NAT'd) tuple: keep the exact reply address.
      const net::FiveTuple reply = ft.reversed();
      bed_.loop().schedule_at(admit.done,
                              [this, reply]() { send_synack(reply); });
    }
  }
  // Final ACK / FIN handling needs no further server action in this model.
}

void CpsWorkload::send_synack(const net::FiveTuple& reply) {
  server_switch_.from_vm(
      server_vnic_,
      net::make_tcp_packet(reply, net::TcpFlags{.syn = true, .ack = true}, 0,
                           vpc_));
}

void CpsWorkload::on_client_delivery(const net::Packet& pkt) {
  const net::TcpFlags flags = pkt.inner.tcp_flags;
  if (!(flags.syn && flags.ack)) return;
  const net::FiveTuple ft = pkt.inner.ft.reversed();  // client-oriented
  auto it = conns_.find(ft);
  if (it == conns_.end() || it->second.established) return;
  it->second.established = true;
  ++completed_;
  completions_.push_back(bed_.loop().now());
  latency_.add(common::to_micros(bed_.loop().now() - it->second.syn_sent));

  // Complete the handshake; optionally close.
  client_switch_.from_vm(
      client_vnic_, net::make_tcp_packet(ft, net::TcpFlags{.ack = true}, 0,
                                         vpc_));
  if (config_.close_connections) {
    client_switch_.from_vm(
        client_vnic_,
        net::make_tcp_packet(ft, net::TcpFlags{.ack = true, .fin = true}, 0,
                             vpc_));
  }
  conns_.erase(it);
  if (config_.concurrency > 0) attempt();
}

double CpsWorkload::cps_over(common::TimePoint t0,
                             common::TimePoint t1) const {
  if (t1 <= t0) return 0.0;
  std::uint64_t n = 0;
  for (common::TimePoint t : completions_) {
    if (t >= t0 && t < t1) ++n;
  }
  return static_cast<double>(n) / common::to_seconds(t1 - t0);
}

}  // namespace nezha::workload
