// VM live-migration cost model (Appendix A Fig A1, §7.2).
//
// The paper's production data show both migration completion time and
// downtime growing with the VM's purchased resources: state snapshotting,
// memory copy rounds and the final stop-and-copy all scale with memory,
// with vCPU count adding dirtying pressure. Nezha's alternative — updating
// the BE location config on the FEs — is O(1ms) regardless of VM size.
#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace nezha::workload {

struct MigrationModelConfig {
  /// Base downtime for a tiny VM (final stop-and-copy floor).
  common::Duration base_downtime = common::milliseconds(80);
  /// Downtime grows ~ mem^alpha (dirty-page resend tail).
  double mem_alpha = 0.55;
  /// vCPU dirtying pressure multiplier per 64 vCPUs.
  double vcpu_factor = 0.35;
  /// Completion time ≈ copy passes over memory at this effective rate.
  double copy_gbps = 6.0;
  double copy_passes = 2.2;
  /// Multiplicative lognormal jitter sigma.
  double jitter_sigma = 0.25;
};

class MigrationModel {
 public:
  explicit MigrationModel(MigrationModelConfig config = {})
      : config_(config) {}

  /// Service downtime during live migration of a VM.
  common::Duration downtime(int vcpus, double mem_gb, common::Rng& rng) const;

  /// End-to-end migration completion time.
  common::Duration completion_time(double mem_gb, common::Rng& rng) const;

 private:
  MigrationModelConfig config_;
};

}  // namespace nezha::workload
