// TCP_CRR-style connection workload (§6.2.1): a client VM opens short-lived
// TCP connections to a server VM as fast as the configured offered load
// allows; each connection is a real SYN / SYN-ACK / ACK / FIN exchange
// through the simulated vSwitches, with both guest kernels modeled.
//
// The measured completed-connections-per-second is the paper's CPS metric;
// connect latency (SYN sent → SYN-ACK delivered to the client VM) is the
// latency metric of Fig 12.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/testbed.h"
#include "src/workload/vm_model.h"

namespace nezha::workload {

struct CpsWorkloadConfig {
  /// Offered load: connection attempts per second (Poisson arrivals).
  /// Ignored when `concurrency` > 0.
  double attempts_per_sec = 50000.0;
  /// Closed-loop mode (netperf TCP_CRR): keep this many connections in
  /// flight, starting a new one the moment one completes (or gives up).
  /// Rides the system at capacity without retry-driven collapse.
  int concurrency = 0;
  VmKernelConfig client_kernel;
  VmKernelConfig server_kernel;
  /// Destination ports cycled to widen the 5-tuple space.
  std::uint16_t server_ports = 16;
  std::uint16_t base_port = 2000;
  /// Whether to close connections with a FIN exchange after establishment.
  bool close_connections = true;
  /// TCP-style SYN retransmission: lost handshake packets (vSwitch overload
  /// drops) are retried with exponential backoff, so completed CPS degrades
  /// to the bottleneck capacity instead of collapsing.
  int max_syn_retries = 8;
  common::Duration syn_rto = common::milliseconds(25);
  std::uint64_t seed = 42;
};

class CpsWorkload {
 public:
  /// Both endpoints must already exist: vNIC `client_vnic` on switch
  /// `client_switch`, `server_vnic` on `server_switch`, same VPC.
  CpsWorkload(core::Testbed& bed, std::size_t client_switch,
              tables::VnicId client_vnic, std::size_t server_switch,
              tables::VnicId server_vnic, CpsWorkloadConfig config = {});

  /// Starts generating attempts; runs until stop() or forever.
  void start();
  void stop() { running_ = false; }

  /// Changes the offered load on the fly (used by ramp scripts, Fig 11).
  void set_attempts_per_sec(double rate) { config_.attempts_per_sec = rate; }

  // --- results ---
  std::uint64_t attempted() const { return attempted_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t client_kernel_rejects() const {
    return client_kernel_.rejected();
  }
  std::uint64_t server_kernel_rejects() const {
    return server_kernel_.rejected();
  }
  /// Completed connections per second over [t0, t1].
  double cps_over(common::TimePoint t0, common::TimePoint t1) const;
  const common::Percentiles& connect_latency_us() const { return latency_; }

  /// Completion timestamps (for windowed rates, e.g. Fig 11 timelines).
  const std::vector<common::TimePoint>& completions() const {
    return completions_;
  }

 private:
  struct Conn {
    common::TimePoint syn_sent = 0;
    bool established = false;
    int retries = 0;
  };

  void schedule_next_attempt();
  void attempt();
  void send_syn(const net::FiveTuple& ft, int attempt);
  void on_client_delivery(const net::Packet& pkt);
  void on_server_delivery(const net::Packet& pkt);
  net::FiveTuple next_tuple();
  void send_synack(const net::FiveTuple& reply);

  /// Every workload tuple is client_ip -> server_ip over TCP, so a 32-bit
  /// port pair identifies it. Deferred per-connection steps capture this key
  /// instead of the 13-byte FiveTuple: [this, ports] (and even
  /// [this, ports, attempt]) fits std::function's 16-byte inline buffer, so
  /// the handshake schedules no heap allocations for its closures.
  static std::uint32_t ports_key(const net::FiveTuple& ft) {
    return static_cast<std::uint32_t>(ft.src_port) << 16 | ft.dst_port;
  }
  net::FiveTuple client_tuple(std::uint32_t ports) const {
    return net::FiveTuple{client_ip_, server_ip_,
                          static_cast<std::uint16_t>(ports >> 16),
                          static_cast<std::uint16_t>(ports & 0xffff),
                          net::IpProto::kTcp};
  }

  core::Testbed& bed_;
  vswitch::VSwitch& client_switch_;
  vswitch::VSwitch& server_switch_;
  tables::VnicId client_vnic_;
  tables::VnicId server_vnic_;
  net::Ipv4Addr client_ip_;
  net::Ipv4Addr server_ip_;
  std::uint32_t vpc_;
  CpsWorkloadConfig config_;
  common::Rng rng_;
  VmKernel client_kernel_;
  VmKernel server_kernel_;

  std::uint32_t conn_seq_ = 0;
  std::unordered_map<net::FiveTuple, Conn> conns_;
  std::uint64_t attempted_ = 0;
  std::uint64_t completed_ = 0;
  // Bounded estimator (10us buckets over [0, 20ms]): fleet-scale scenarios
  // push millions of connects through these, so per-sample buffering is out.
  // Mean/min/max stay exact; percentiles interpolate within one bucket.
  common::Percentiles latency_ =
      common::Percentiles::bounded(0.0, 20000.0, 2000);
  std::vector<common::TimePoint> completions_;
  bool running_ = false;
};

}  // namespace nezha::workload
