// TCP_CRR-style connection workload (§6.2.1): a client VM opens short-lived
// TCP connections to a server VM as fast as the configured offered load
// allows; each connection is a real SYN / SYN-ACK / ACK / FIN exchange
// through the simulated vSwitches, with both guest kernels modeled.
//
// The measured completed-connections-per-second is the paper's CPS metric;
// connect latency (SYN sent → SYN-ACK delivered to the client VM) is the
// latency metric of Fig 12.
#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/testbed.h"
#include "src/workload/vm_model.h"

namespace nezha::workload {

struct CpsWorkloadConfig {
  /// Offered load: connection attempts per second (Poisson arrivals).
  /// Ignored when `concurrency` > 0.
  double attempts_per_sec = 50000.0;
  /// Closed-loop mode (netperf TCP_CRR): keep this many connections in
  /// flight, starting a new one the moment one completes (or gives up).
  /// Rides the system at capacity without retry-driven collapse.
  int concurrency = 0;
  VmKernelConfig client_kernel;
  VmKernelConfig server_kernel;
  /// Destination ports cycled to widen the 5-tuple space.
  std::uint16_t server_ports = 16;
  std::uint16_t base_port = 2000;
  /// Whether to close connections with a FIN exchange after establishment.
  bool close_connections = true;
  /// TCP-style SYN retransmission: lost handshake packets (vSwitch overload
  /// drops) are retried with exponential backoff, so completed CPS degrades
  /// to the bottleneck capacity instead of collapsing.
  int max_syn_retries = 8;
  common::Duration syn_rto = common::milliseconds(25);
  /// When > 0, per-connection timers (kernel-admit completions, SYN RTOs,
  /// give-ups) are kept in a workload-local heap and drained by one event
  /// loop entry per window multiple, instead of one scheduled closure per
  /// timer — the connection-setup analogue of the datapath burst windows
  /// (DESIGN.md §11). Timers fire at their deadline rounded up to the
  /// window, so 0 (default) preserves exact per-timer event timing.
  common::Duration timer_window = 0;
  std::uint64_t seed = 42;
};

class CpsWorkload {
 public:
  /// Both endpoints must already exist: vNIC `client_vnic` on switch
  /// `client_switch`, `server_vnic` on `server_switch`, same VPC.
  /// Sharded beds (bed.shard_count() > 1): both endpoints must live in the
  /// same shard — the workload's timers and connection table belong to that
  /// shard's event loop, and delivery callbacks fire on both endpoints'
  /// shard threads (throws std::runtime_error otherwise).
  CpsWorkload(core::Testbed& bed, std::size_t client_switch,
              tables::VnicId client_vnic, std::size_t server_switch,
              tables::VnicId server_vnic, CpsWorkloadConfig config = {});

  /// Starts generating attempts; runs until stop() or forever.
  void start();
  void stop() { running_ = false; }

  /// Changes the offered load on the fly (used by ramp scripts, Fig 11).
  void set_attempts_per_sec(double rate) { config_.attempts_per_sec = rate; }

  // --- results ---
  std::uint64_t attempted() const { return attempted_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t client_kernel_rejects() const {
    return client_kernel_.rejected();
  }
  std::uint64_t server_kernel_rejects() const {
    return server_kernel_.rejected();
  }
  /// Completed connections per second over [t0, t1].
  double cps_over(common::TimePoint t0, common::TimePoint t1) const;
  const common::Percentiles& connect_latency_us() const { return latency_; }

  /// Completion timestamps (for windowed rates, e.g. Fig 11 timelines).
  const std::vector<common::TimePoint>& completions() const {
    return completions_;
  }

 private:
  /// Tracked connection, stored inline in a flat open-addressed table keyed
  /// by the 32-bit port pair (see ports_key). `ports` doubles as the slot
  /// marker: 0 = empty (workload ports are always ≥ 1024<<16, so it never
  /// collides with a real key); erases backward-shift the probe cluster, so
  /// there are no tombstones and churn never forces a rehash. No node
  /// allocation per connection — the table array is the only storage, and
  /// it only grows when the number of simultaneously tracked connections
  /// does. Entries move on erase, so Conn pointers are only valid until the
  /// next table mutation.
  struct Conn {
    std::uint32_t ports = 0;
    std::uint8_t established = 0;
    std::uint8_t retries = 0;
    common::TimePoint syn_sent = 0;
  };
  static constexpr std::uint32_t kConnEmpty = 0;

  Conn* conn_find(std::uint32_t ports);
  Conn* conn_insert(std::uint32_t ports);
  void conn_erase(Conn* c);
  void conn_rehash(std::size_t new_size);

  /// Coalesced per-connection timer (timer_window > 0): a POD entry in a
  /// workload-local store drained by one event-loop entry per window.
  /// Every class has monotone deadlines (a fixed offset from the monotone
  /// sim clock, or a FIFO kernel's completion times), so the store is a set
  /// of per-class FIFO rings — O(1) push/pop at any depth, unlike a heap
  /// that sifts past thousands of not-yet-expired RTO entries — and the
  /// drain is a K-way merge of the ring fronts on (at, seq), reproducing
  /// the event loop's schedule-order tie-break.
  enum TimerKind : std::uint8_t {
    kTimerSendSyn,    // client kernel admitted the connect; emit the SYN
    kTimerSynAck,     // server kernel accepted; emit the SYN-ACK
    kTimerRto,        // SYN retransmission backoff expired
    kTimerGiveUp,     // final RTO after max retries; drop the tracking entry
    kTimerReattempt,  // client kernel was full; retry the attempt
  };
  struct Timer {
    common::TimePoint at;
    std::uint64_t seq;
    std::uint32_t ports;
    std::uint8_t kind;
    std::uint8_t attempt;
  };
  static bool timer_later(const Timer& a, const Timer& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
  /// Power-of-two circular buffer; grows only when the in-flight timer
  /// population of its class does.
  struct TimerQ {
    std::vector<Timer> buf;
    std::size_t head = 0;
    std::size_t count = 0;
    const Timer& front() const { return buf[head]; }
    void pop() {
      head = (head + 1) & (buf.size() - 1);
      --count;
    }
  };
  void timer_push(std::uint8_t kind, common::TimePoint at,
                  std::uint32_t ports, std::uint8_t attempt = 0);
  void timer_fire(const Timer& t);
  void timer_drain();
  static void timer_drain_thunk(void* self, std::uint64_t) {
    static_cast<CpsWorkload*>(self)->timer_drain();
  }

  /// Deferred SYN-ACK for a rewritten (e.g. NAT'd) reply tuple: the
  /// full 5-tuple doesn't fit a 16-byte closure capture, so the tuple
  /// parks in a free-listed pool slot and the event carries the slot id
  /// through the raw function-pointer path — identical event timing and
  /// ordering to the closure it replaces, zero steady-state allocations.
  void schedule_foreign_synack(common::TimePoint at,
                               const net::FiveTuple& reply);
  static void foreign_synack_thunk(void* self, std::uint64_t slot);

  void schedule_next_attempt();
  void attempt();
  /// Closed-loop slot release: instead of immediately attempting a new
  /// connection per completion, freed slots join the next admission round —
  /// one scheduled event shared by every slot freed at this timestamp
  /// (burst deliveries free many at once).
  void release_slot();
  void admission_round();
  void send_syn(const net::FiveTuple& ft, int attempt);
  void on_client_delivery(const net::Packet& pkt);
  void on_server_delivery(const net::Packet& pkt);
  net::FiveTuple next_tuple();
  void send_synack(const net::FiveTuple& reply);

  /// Every workload tuple is client_ip -> server_ip over TCP, so a 32-bit
  /// port pair identifies it. Deferred per-connection steps capture this key
  /// instead of the 13-byte FiveTuple: [this, ports] (and even
  /// [this, ports, attempt]) fits std::function's 16-byte inline buffer, so
  /// the handshake schedules no heap allocations for its closures.
  static std::uint32_t ports_key(const net::FiveTuple& ft) {
    return static_cast<std::uint32_t>(ft.src_port) << 16 | ft.dst_port;
  }
  net::FiveTuple client_tuple(std::uint32_t ports) const {
    return net::FiveTuple{client_ip_, server_ip_,
                          static_cast<std::uint16_t>(ports >> 16),
                          static_cast<std::uint16_t>(ports & 0xffff),
                          net::IpProto::kTcp};
  }

  core::Testbed& bed_;
  /// The endpoints' shard loop (== bed.loop() on unsharded beds). All
  /// workload events schedule here so they run on the owning shard thread.
  sim::EventLoop& loop_;
  vswitch::VSwitch& client_switch_;
  vswitch::VSwitch& server_switch_;
  tables::VnicId client_vnic_;
  tables::VnicId server_vnic_;
  net::Ipv4Addr client_ip_;
  net::Ipv4Addr server_ip_;
  std::uint32_t vpc_;
  CpsWorkloadConfig config_;
  common::Rng rng_;
  VmKernel client_kernel_;
  VmKernel server_kernel_;

  std::uint32_t conn_seq_ = 0;
  // Flat open-addressed connection table (power-of-two size; see Conn).
  std::vector<Conn> conns_;
  std::size_t conn_count_ = 0;
  // Coalesced timer state: rings indexed [kSendSyn, kSynAck, kGiveUp,
  // kReattempt, rto level 0, rto level 1, ...]; one outstanding drain event
  // at the quantized earliest front (re-armed earlier when an earlier timer
  // arrives; cancel() is O(1)).
  std::vector<TimerQ> timer_qs_;
  std::uint64_t timer_seq_ = 0;
  sim::EventId timer_event_ = 0;
  common::TimePoint timer_event_at_ = -1;
  bool timer_draining_ = false;
  // Parked reply tuples for in-flight foreign SYN-ACKs (free-listed; grows
  // only to the peak number simultaneously deferred).
  std::vector<net::FiveTuple> foreign_synacks_;
  std::vector<std::uint32_t> foreign_free_;
  // Closed-loop admission batching state.
  int pending_slots_ = 0;
  bool round_scheduled_ = false;
  std::uint64_t attempted_ = 0;
  std::uint64_t completed_ = 0;
  // Bounded estimator (10us buckets over [0, 20ms]): fleet-scale scenarios
  // push millions of connects through these, so per-sample buffering is out.
  // Mean/min/max stay exact; percentiles interpolate within one bucket.
  common::Percentiles latency_ =
      common::Percentiles::bounded(0.0, 20000.0, 2000);
  std::vector<common::TimePoint> completions_;
  bool running_ = false;
};

}  // namespace nezha::workload
