#include "src/policy/fe_policy.h"

#include <algorithm>

namespace nezha::policy {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kStaticHash: return "static_hash";
    case PolicyKind::kLoadAwareWeighted: return "load_aware";
    case PolicyKind::kPushAsideDisplacement: return "push_aside";
  }
  return "unknown";
}

void FeSelectionPolicy::rank(std::vector<PlacementCandidate>& candidates) const {
  // App B.1: prefer close (same ToR first) then least-loaded, so the
  // selected set has similar performance-affecting attributes. Node id is
  // the deterministic tie-break. This comparator is byte-for-byte the
  // pre-policy Controller::select_frontends order.
  std::sort(candidates.begin(), candidates.end(),
            [](const PlacementCandidate& a, const PlacementCandidate& b) {
              if (a.tier != b.tier) return a.tier < b.tier;
              if (a.cpu_util != b.cpu_util) return a.cpu_util < b.cpu_util;
              return a.node < b.node;
            });
}

std::size_t StaticHashPolicy::pick(const net::FiveTuple& hash_ft,
                                   const tables::Location* /*fes*/,
                                   std::size_t n, std::uint64_t seed,
                                   const FeWeightBook& /*weights*/) const {
  return static_cast<std::size_t>(net::flow_hash(hash_ft, seed) % n);
}

double LoadAwareWeightedPolicy::load_score(const PlacementCandidate& c) {
  const double queue = c.queue_bytes / kQueueNormBytes;
  return std::min(1.0, c.cpu_util) + std::min(1.0, queue);
}

std::size_t LoadAwareWeightedPolicy::pick(const net::FiveTuple& hash_ft,
                                          const tables::Location* fes,
                                          std::size_t n, std::uint64_t seed,
                                          const FeWeightBook& weights) const {
  if (n <= 1) return 0;
  // Weighted rendezvous (highest-random-weight) hashing keyed on the FE's
  // underlay IP: per flow, score every FE with an independent hash scaled
  // by its published weight and take the argmax. Keying on the IP (not the
  // pool slot) means reordering the published list moves no flows, and
  // removing an FE remaps only the flows it served. (h >> 32) * weight
  // stays below 2^38 — no overflow, and the low hash bits never matter,
  // so ties are broken deterministically by pool index.
  const std::uint64_t fh = net::flow_hash(hash_ft, seed);
  std::size_t best = 0;
  std::uint64_t best_score = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ip_salt = net::flow_hash_mix64(
        static_cast<std::uint64_t>(fes[i].ip.value()) * 0x9e3779b97f4a7c15ULL +
        1);
    const std::uint64_t h = net::flow_hash_mix64(fh ^ ip_salt);
    const std::uint64_t score = (h >> 32) * weights.weight_of(fes[i].ip);
    if (i == 0 || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

void LoadAwareWeightedPolicy::rank(
    std::vector<PlacementCandidate>& candidates) const {
  // Same structure as the default (locality first, deterministic tie-break)
  // but the load key folds queue backlog into CPU so a host with an idle
  // CPU and a saturated port ranks behind a genuinely idle one.
  std::sort(candidates.begin(), candidates.end(),
            [](const PlacementCandidate& a, const PlacementCandidate& b) {
              if (a.tier != b.tier) return a.tier < b.tier;
              const double la = load_score(a);
              const double lb = load_score(b);
              if (la != lb) return la < lb;
              return a.node < b.node;
            });
}

std::size_t PushAsideDisplacementPolicy::pick(
    const net::FiveTuple& hash_ft, const tables::Location* /*fes*/,
    std::size_t n, std::uint64_t seed, const FeWeightBook& /*weights*/) const {
  // Displacement is a placement-time behavior; the hot path stays the
  // paper's static hash so the golden fingerprints hold under this policy
  // until a displacement actually changes the pool.
  return static_cast<std::size_t>(net::flow_hash(hash_ft, seed) % n);
}

const FeSelectionPolicy& policy_for(PolicyKind kind) {
  static const StaticHashPolicy static_hash;
  static const LoadAwareWeightedPolicy load_aware;
  static const PushAsideDisplacementPolicy push_aside;
  switch (kind) {
    case PolicyKind::kLoadAwareWeighted: return load_aware;
    case PolicyKind::kPushAsideDisplacement: return push_aside;
    case PolicyKind::kStaticHash: break;
  }
  return static_hash;
}

}  // namespace nezha::policy
