// FE-selection policy lab (DESIGN.md §14): pluggable strategies for the two
// places Nezha picks a frontend —
//
//  * the per-flow hot path: which FE of an offloaded vNIC's published pool
//    serves a given 5-tuple (sender-side resolve_dst and BE-side be_tx), and
//  * the control-plane placement path: which vSwitches the controller ranks
//    as FE hosts for offload / scale-out / failover replacement.
//
// Contract: a policy is a stateless pure function. pick() must be
// deterministic in (tuple, FE list, seed, weight book), allocation-free, and
// must return an index < n for every n >= 1 — every published FE is
// installed (Controller::publish_placement filters the rest), so any choice
// is safe, but senders and BEs only agree (session-consistent FE mapping)
// when they run the same policy with the same seed and weight book. FEs are
// stateless (state lives at the BE), so a disagreement during seed/weight
// propagation costs one extra rule lookup at the new FE, never a broken
// connection — the consistency argument in DESIGN.md §14 rests on that.
//
// This header deliberately depends only on net/ and tables/ so the policy
// layer sits below vswitch/ and core/ (both include it; no cycle).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/net/five_tuple.h"
#include "src/tables/vnic_server_map.h"

namespace nezha::policy {

enum class PolicyKind : std::uint8_t {
  /// The paper's behavior (§3.2.3): flow_hash(tuple, seed) % pool size.
  /// Bit-identical to the pre-policy code path; the default everywhere.
  kStaticHash = 0,
  /// Charon-style load-aware selection: weighted rendezvous hashing keyed
  /// on each FE's underlay IP, weights pushed fleet-wide by the controller
  /// from its per-FE cpu/queue samples (the same signals the telemetry
  /// registry's vs<i>.cpu_util / vs<i>.port_q gauges export).
  kLoadAwareWeighted = 1,
  /// PAM-style push-aside: hot path identical to kStaticHash, but when the
  /// controller cannot fill an FE pool from idle hosts it evicts the
  /// least-loaded busy neighbor's FE (from a pool that can spare one) and
  /// installs the requester there.
  kPushAsideDisplacement = 2,
};

const char* to_string(PolicyKind kind);

/// Fleet-wide FE weight table for kLoadAwareWeighted, keyed by FE underlay
/// IP (never by pool slot: keying on the IP means list reorders move no
/// flows and removing an FE only remaps the flows it served). Quantized to
/// [1, kMaxWeight] — never 0, so an FE still serving stale senders keeps
/// draining its flows. The controller recomputes and pushes the book to the
/// whole fleet; `version` lets tests assert propagation.
struct FeWeightBook {
  static constexpr std::uint16_t kDefaultWeight = 32;  // load-neutral
  static constexpr std::uint16_t kMaxWeight = 64;

  std::unordered_map<std::uint32_t, std::uint16_t> weight_by_ip;
  std::uint64_t version = 0;

  std::uint16_t weight_of(net::Ipv4Addr ip) const {
    if (weight_by_ip.empty()) return kDefaultWeight;
    auto it = weight_by_ip.find(ip.value());
    return it == weight_by_ip.end() ? kDefaultWeight : it->second;
  }
  void set(net::Ipv4Addr ip, std::uint16_t weight) {
    weight_by_ip[ip.value()] = weight;
  }
};

/// One FE-host candidate as the controller sees it when ranking placement:
/// a POD snapshot so the policy layer never touches vswitch/ types.
struct PlacementCandidate {
  std::uint32_t node = 0;     // sim::NodeId of the candidate vSwitch
  int tier = 0;               // topology hop tier from the vNIC's home
  double cpu_util = 0.0;      // controller's last sampled CPU utilization
  double queue_bytes = 0.0;   // egress port backlog (controller's shard view)
  std::uint32_t frontends = 0;  // FE instances already hosted there
};

class FeSelectionPolicy {
 public:
  virtual ~FeSelectionPolicy() = default;

  virtual PolicyKind kind() const = 0;
  const char* name() const { return to_string(kind()); }

  /// Hot path: index of the FE serving `hash_ft` out of `fes[0..n)`.
  /// Callers canonicalize the tuple first when session_consistent_fe_hash
  /// is on (unchanged from the pre-policy code). Must be alloc-free,
  /// deterministic, and in-range for every n >= 1.
  virtual std::size_t pick(const net::FiveTuple& hash_ft,
                           const tables::Location* fes, std::size_t n,
                           std::uint64_t seed,
                           const FeWeightBook& weights) const = 0;

  /// Control path: orders placement candidates best-first. The default is
  /// the paper's App B.1 preference — same ToR, then least-loaded, then
  /// lowest node id — exactly the pre-policy Controller::select_frontends
  /// comparator.
  virtual void rank(std::vector<PlacementCandidate>& candidates) const;

  /// True when the controller may displace a neighbor's FE to satisfy this
  /// policy's placement when no idle host remains.
  virtual bool displaces() const { return false; }
};

class StaticHashPolicy final : public FeSelectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kStaticHash; }
  std::size_t pick(const net::FiveTuple& hash_ft, const tables::Location* fes,
                   std::size_t n, std::uint64_t seed,
                   const FeWeightBook& weights) const override;
};

class LoadAwareWeightedPolicy final : public FeSelectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kLoadAwareWeighted; }
  std::size_t pick(const net::FiveTuple& hash_ft, const tables::Location* fes,
                   std::size_t n, std::uint64_t seed,
                   const FeWeightBook& weights) const override;
  void rank(std::vector<PlacementCandidate>& candidates) const override;

  /// Combined load signal used for ranking: CPU utilization plus the port
  /// backlog normalized against kQueueNormBytes, saturating at 1 each.
  static double load_score(const PlacementCandidate& c);
  /// Backlog considered "fully congested" (~1000 MTU packets).
  static constexpr double kQueueNormBytes = 1.5e6;
};

class PushAsideDisplacementPolicy final : public FeSelectionPolicy {
 public:
  PolicyKind kind() const override {
    return PolicyKind::kPushAsideDisplacement;
  }
  std::size_t pick(const net::FiveTuple& hash_ft, const tables::Location* fes,
                   std::size_t n, std::uint64_t seed,
                   const FeWeightBook& weights) const override;
  bool displaces() const override { return true; }
};

/// Process-wide stateless singletons (policies hold no state, so sharing
/// one instance across beds/switches is safe by construction).
const FeSelectionPolicy& policy_for(PolicyKind kind);

/// Convenience for callers holding a Location vector.
inline const tables::Location& pick_location(const FeSelectionPolicy& policy,
                                             const net::FiveTuple& hash_ft,
                                             const std::vector<tables::Location>& fes,
                                             std::uint64_t seed,
                                             const FeWeightBook& weights) {
  return fes[policy.pick(hash_ft, fes.data(), fes.size(), seed, weights)];
}

}  // namespace nezha::policy
