#include "src/baseline/sirius_model.h"

#include <algorithm>

namespace nezha::baseline {

SiriusModel::SiriusModel(std::size_t cards, std::size_t buckets)
    : cards_(cards), bucket_to_card_(buckets) {
  for (std::size_t b = 0; b < buckets; ++b) bucket_to_card_[b] = b % cards;
}

std::size_t SiriusModel::bucket_of(const net::FiveTuple& ft) const {
  return net::flow_hash(ft) % bucket_to_card_.size();
}

std::size_t SiriusModel::card_of(const net::FiveTuple& ft) const {
  auto it = flows_.find(ft);
  if (it != flows_.end()) return it->second.card;  // pinned
  return bucket_to_card_[bucket_of(ft)];
}

void SiriusModel::flow_started(const net::FiveTuple& ft, bool long_lived) {
  const std::size_t bucket = bucket_of(ft);
  flows_[ft] = FlowInfo{bucket, long_lived, bucket_to_card_[bucket]};
}

void SiriusModel::flow_finished(const net::FiveTuple& ft) {
  flows_.erase(ft);
}

std::vector<std::size_t> SiriusModel::card_loads() const {
  std::vector<std::size_t> loads(cards_, 0);
  for (const auto& [ft, info] : flows_) ++loads[info.card];
  return loads;
}

std::size_t SiriusModel::rebalance(std::size_t n_buckets) {
  auto loads = card_loads();
  const std::size_t src = static_cast<std::size_t>(
      std::max_element(loads.begin(), loads.end()) - loads.begin());
  const std::size_t dst = static_cast<std::size_t>(
      std::min_element(loads.begin(), loads.end()) - loads.begin());
  if (src == dst) return 0;

  // Pick the busiest buckets currently on src.
  std::vector<std::size_t> bucket_load(bucket_to_card_.size(), 0);
  for (const auto& [ft, info] : flows_) {
    if (bucket_to_card_[info.bucket] == src) ++bucket_load[info.bucket];
  }
  std::vector<std::size_t> candidates;
  for (std::size_t b = 0; b < bucket_to_card_.size(); ++b) {
    if (bucket_to_card_[b] == src) candidates.push_back(b);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) {
              return bucket_load[a] > bucket_load[b];
            });
  candidates.resize(std::min(n_buckets, candidates.size()));

  std::size_t transfers = 0;
  for (std::size_t b : candidates) {
    bucket_to_card_[b] = dst;
    // Existing flows stay pinned to src until completion — except
    // long-lived flows, whose state must move (§8).
    for (auto& [ft, info] : flows_) {
      if (info.bucket == b && info.long_lived) {
        info.card = dst;
        ++transfers;
      }
    }
  }
  state_transfers_ += transfers;
  return transfers;
}

}  // namespace nezha::baseline
