#include "src/baseline/capacity_model.h"

#include <algorithm>

namespace nezha::baseline {

double CapacityModel::local_cps(const DeploymentParams& p) {
  return std::min(p.vswitch_cycles_per_sec / p.conn_cycles_local,
                  p.vm_kernel_cps_limit);
}

double CapacityModel::nezha_cps(const DeploymentParams& p,
                                std::size_t num_fes) {
  if (num_fes == 0) return local_cps(p);
  const double be_bound = p.vswitch_cycles_per_sec / p.conn_cycles_be;
  const double fe_bound = static_cast<double>(num_fes) *
                          p.vswitch_cycles_per_sec / p.conn_cycles_fe;
  return std::min({be_bound, fe_bound, p.vm_kernel_cps_limit});
}

double CapacityModel::sirius_cps(double per_card_cps, std::size_t cards) {
  // In-line replication: packets that change state ping-pong between the
  // primary and secondary card, so each connection consumes capacity twice.
  return per_card_cps * static_cast<double>(cards) / 2.0;
}

std::size_t CapacityModel::local_max_flows(const DeploymentParams& p) {
  return p.session_pool_bytes / p.full_entry_bytes;
}

std::size_t CapacityModel::nezha_max_flows(const DeploymentParams& p,
                                           std::size_t num_fes) {
  if (num_fes == 0) return local_max_flows(p);
  // BE: states only, plus the memory released by evicting rule tables.
  const std::size_t be_state_bytes =
      p.session_pool_bytes +
      static_cast<std::size_t>(p.freed_rule_to_state_fraction *
                               static_cast<double>(p.freed_rule_bytes));
  const std::size_t be_bound = be_state_bytes / p.state_entry_bytes;
  // FE: every live flow needs a cached-flow entry at its FE.
  const std::size_t fe_bound =
      num_fes * (p.fe_cache_pool_bytes / p.cache_entry_bytes);
  return std::min(be_bound, fe_bound);
}

std::size_t CapacityModel::local_max_vnics(const DeploymentParams& p) {
  return std::max<std::size_t>(1, p.local_rule_free_bytes / p.vnic_rule_bytes);
}

std::size_t CapacityModel::nezha_max_vnics(const DeploymentParams& p,
                                           std::size_t num_fes) {
  if (num_fes == 0) return local_max_vnics(p);
  const std::size_t fe_bound =
      num_fes * (p.fe_rule_pool_bytes / p.vnic_rule_bytes);
  const std::size_t be_bound =
      (p.local_rule_free_bytes + p.freed_rule_bytes) / p.be_metadata_bytes;
  return std::min(fe_bound, be_bound);
}

}  // namespace nezha::baseline
