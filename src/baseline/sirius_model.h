// Sirius-style remote pool baseline (§2.3.3, §8).
//
// Sirius offloads a vNIC's processing to dedicated DPU cards and keeps
// per-connection state in the pool. Two consequences Nezha avoids:
//  1) fault tolerance needs in-line state replication — state-changing
//     packets ping-pong between a primary and a secondary card, halving the
//     pool's new-connection capacity;
//  2) load balancing hashes flows into a fixed number of buckets assigned
//     to cards; moving load reassigns buckets, and long-lived flows in a
//     moved bucket require state transfer between cards.
// This model implements the bucket machinery so the state-transfer volume
// and the replication tax can be measured against Nezha's zero-sync design.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/net/five_tuple.h"

namespace nezha::baseline {

class SiriusModel {
 public:
  /// `buckets` flows-hash buckets distributed over `cards` processing cards.
  SiriusModel(std::size_t cards, std::size_t buckets);

  std::size_t cards() const { return cards_; }
  std::size_t buckets() const { return bucket_to_card_.size(); }
  std::size_t card_of(const net::FiveTuple& ft) const;
  std::size_t bucket_of(const net::FiveTuple& ft) const;

  /// Registers a live flow (its state lives on the owning card).
  void flow_started(const net::FiveTuple& ft, bool long_lived);
  void flow_finished(const net::FiveTuple& ft);
  std::size_t live_flows() const { return flows_.size(); }

  /// Rebalances: moves `n` buckets from the most-loaded card to the
  /// least-loaded one. New flows go to the new card immediately; existing
  /// short flows stay until completion; LONG-LIVED flows must have their
  /// state transferred. Returns the number of state transfers incurred.
  std::size_t rebalance(std::size_t n_buckets);

  /// Per-card live-flow counts (load-imbalance metric).
  std::vector<std::size_t> card_loads() const;

  /// Cumulative state transfers since construction.
  std::uint64_t state_transfers() const { return state_transfers_; }

  /// New-connection capacity of the pool under in-line (ping-pong)
  /// replication: half the raw capacity (§2.3.3).
  static double effective_cps(double per_card_cps, std::size_t cards) {
    return per_card_cps * static_cast<double>(cards) / 2.0;
  }

 private:
  struct FlowInfo {
    std::size_t bucket;
    bool long_lived;
    std::size_t card;  // pinned card (stays after rebalance unless moved)
  };

  std::size_t cards_;
  std::vector<std::size_t> bucket_to_card_;
  std::unordered_map<net::FiveTuple, FlowInfo> flows_;
  std::uint64_t state_transfers_ = 0;
};

}  // namespace nezha::baseline
