// Analytic capacity models for the three network capabilities the paper
// tracks (CPS, #concurrent flows, #vNICs) under: a traditional local
// vSwitch, Nezha with N FEs, and a Sirius-style dedicated pool.
//
// These closed forms use the same constants as the simulation (cycle costs,
// entry sizes, pool budgets) and drive the capacity panels of Fig 9 and the
// Table 3 reproduction; the CPS claims are cross-checked against the packet
// level simulation in the benches.
#pragma once

#include <cstddef>

namespace nezha::baseline {

struct DeploymentParams {
  // --- CPU ---
  /// vSwitch cycles/second available to virtual networking.
  double vswitch_cycles_per_sec = 5e9;
  /// Slow-path cycles to establish one connection locally (rule chain for
  /// both directions + session setup + connection management).
  double conn_cycles_local = 40000.0;
  /// BE-side cycles per connection under Nezha (state init + carrier codec
  /// + encap for the handful of handshake packets).
  double conn_cycles_be = 6000.0;
  /// FE-side cycles per connection (the rule chain now runs there).
  double conn_cycles_fe = 36000.0;
  /// VM guest-kernel CPS ceiling (the post-Nezha bottleneck, Fig 10).
  double vm_kernel_cps_limit = 400000.0;

  // --- memory ---
  std::size_t session_pool_bytes = 1ull << 30;        // local fast path
  std::size_t fe_cache_pool_bytes = 512ull << 20;     // idle memory per FE
  std::size_t fe_rule_pool_bytes = 2ull << 30;        // idle slow path per FE
  std::size_t local_rule_free_bytes = 256ull << 20;   // free on the hot vSwitch
  std::size_t vnic_rule_bytes = 6ull << 20;           // per-vNIC table bulk
  std::size_t full_entry_bytes = 128;   // key + pre-actions + state
  std::size_t state_entry_bytes = 80;   // key + state (BE shape)
  std::size_t cache_entry_bytes = 64;   // key + pre-actions (FE shape)
  std::size_t be_metadata_bytes = 2048; // §6.2.1: per-vNIC BE data
  /// Fraction of the freed rule-table memory the BE repurposes for states.
  double freed_rule_to_state_fraction = 1.0;
  /// Rule memory freed by offloading (repurposed for states, §6.3.1). The
  /// default lands the Fig 9 #flows knee at 4 FEs with a ≈3.8x plateau.
  std::size_t freed_rule_bytes = 1400ull << 20;
};

struct CapacityModel {
  // ---------------- CPS ----------------
  static double local_cps(const DeploymentParams& p);
  /// min(BE CPU, N × FE CPU, VM kernel): the plateau above 4 FEs in Fig 9
  /// is the VM kernel term.
  static double nezha_cps(const DeploymentParams& p, std::size_t num_fes);
  /// Sirius in-line replication ping-pongs state-changing packets between
  /// primary and secondary cards: new-connection capacity is HALF the raw
  /// pool capacity (§2.3.3).
  static double sirius_cps(double per_card_cps, std::size_t cards);

  // ------------- #concurrent flows -------------
  static std::size_t local_max_flows(const DeploymentParams& p);
  /// min(BE state capacity incl. repurposed rule memory, N × FE cache
  /// capacity): FE-bound below ~4 FEs, BE-bound above (Fig 9).
  static std::size_t nezha_max_flows(const DeploymentParams& p,
                                     std::size_t num_fes);

  // ---------------- #vNICs ----------------
  static std::size_t local_max_vnics(const DeploymentParams& p);
  /// min(N × FE rule capacity, BE metadata capacity): proportional to #FEs
  /// until the 2KB-per-vNIC BE data exhausts the freed local memory
  /// (theoretical 1000x = 2MB/2KB, §6.2.1).
  static std::size_t nezha_max_vnics(const DeploymentParams& p,
                                     std::size_t num_fes);
};

}  // namespace nezha::baseline
