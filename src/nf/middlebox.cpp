#include "src/nf/middlebox.h"

namespace nezha::nf {

MiddleboxProfile MiddleboxProfile::load_balancer() {
  MiddleboxProfile p{};
  p.kind = MiddleboxKind::kLoadBalancer;
  p.name = "load-balancer";
  // LB performs ACL lookups plus advanced features (health probing policies,
  // mirroring): a long lookup chain, hence a high CPS gain (4X).
  p.rule_profile = tables::RuleSetProfile{
      .acl_enabled = true,
      .num_tables = 9,
      .synthetic_rule_bytes = 100ull * 1024 * 1024};
  p.stateful_decap = true;
  // Persistent connections to real servers dominate the session table.
  p.mean_connection_lifetime = common::seconds(60);
  p.persistent_fraction = 0.6;
  return p;
}

MiddleboxProfile MiddleboxProfile::nat_gateway() {
  MiddleboxProfile p{};
  p.kind = MiddleboxKind::kNatGateway;
  p.name = "nat-gateway";
  // NAT has the heaviest chain (ACL + NAT allocation + port policies):
  // highest CPS gain (4.4X).
  p.rule_profile = tables::RuleSetProfile{
      .acl_enabled = true,
      .num_tables = 12,
      .synthetic_rule_bytes = 120ull * 1024 * 1024};
  p.mean_connection_lifetime = common::seconds(8);
  return p;
}

MiddleboxProfile MiddleboxProfile::transit_router() {
  MiddleboxProfile p{};
  p.kind = MiddleboxKind::kTransitRouter;
  p.name = "transit-router";
  // TR bypasses ACL rules (§6.3.1): the simplest chain, lowest CPS gain (3X).
  p.rule_profile = tables::RuleSetProfile{
      .acl_enabled = false,
      .num_tables = 5,
      .synthetic_rule_bytes = 150ull * 1024 * 1024};
  p.mean_connection_lifetime = common::seconds(15);
  return p;
}

}  // namespace nezha::nf
