#include "src/nf/stateful.h"

namespace nezha::nf {

flow::Verdict finalize_action(flow::Direction dir,
                              const flow::PreActions& pre,
                              const flow::SessionState& state) {
  if (pre.dir(dir).acl_verdict == flow::Verdict::kAccept) {
    return flow::Verdict::kAccept;
  }
  // This direction's pre-action is "drop": allow only response traffic of a
  // session initiated from the opposite direction, and only if that
  // direction itself was permitted.
  const flow::Direction opposite = flow::reverse(dir);
  const bool initiated_opposite =
      (state.first_dir == flow::FirstDirection::kTx &&
       opposite == flow::Direction::kTx) ||
      (state.first_dir == flow::FirstDirection::kRx &&
       opposite == flow::Direction::kRx);
  if (initiated_opposite &&
      pre.dir(opposite).acl_verdict == flow::Verdict::kAccept) {
    return flow::Verdict::kAccept;
  }
  return flow::Verdict::kDrop;
}

net::Ipv4Addr response_overlay_dst(const flow::SessionState& state,
                                   net::Ipv4Addr default_dst) {
  return state.decap_src_ip.value() != 0 ? state.decap_src_ip : default_dst;
}

}  // namespace nezha::nf
