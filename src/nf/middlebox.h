// Cloud middlebox profiles used by the paper's production evaluation
// (§6.3.1, Table 3): Server Load Balancer, NAT gateway and Transit Router.
//
// Each profile fixes the characteristics that drive the differing Nezha
// gains: the slow-path lookup chain (TR bypasses the ACL → lowest CPS gain),
// rule-table bulk (all are O(100MB)) and session longevity (LB keeps
// long-lived connections to its real servers → largest session table,
// smallest #flows gain).
#pragma once

#include <cstddef>
#include <string>

#include "src/common/time.h"
#include "src/tables/rule_set.h"

namespace nezha::nf {

enum class MiddleboxKind { kLoadBalancer, kNatGateway, kTransitRouter };

struct MiddleboxProfile {
  MiddleboxKind kind;
  std::string name;
  /// Slow-path profile for the middlebox's vNICs.
  tables::RuleSetProfile rule_profile;
  /// Whether this middlebox performs stateful decapsulation (§5.2).
  bool stateful_decap = false;
  /// Mean connection lifetime (drives concurrent-flow accumulation: LB's
  /// persistent real-server connections bloat the session table, §2.2.2).
  common::Duration mean_connection_lifetime = common::seconds(8);
  /// Fraction of connections that are long-lived/persistent.
  double persistent_fraction = 0.0;

  static MiddleboxProfile load_balancer();
  static MiddleboxProfile nat_gateway();
  static MiddleboxProfile transit_router();
};

}  // namespace nezha::nf
