// Stateful network-function semantics: Action = func(pkt, rules, states).
//
// finalize_action() is the process_pkt(pre-actions, states) of Fig 1 — the
// one piece of logic that needs BOTH the stateless pre-actions and the
// session state, and therefore runs wherever the two meet: the local
// vSwitch traditionally; under Nezha at the FE for TX packets (state arrives
// in the packet) and at the BE for RX packets (pre-actions arrive in the
// packet). §5.1 walks through the stateful-ACL case this implements.
#pragma once

#include "src/flow/direction.h"
#include "src/flow/pre_actions.h"
#include "src/flow/session.h"

namespace nezha::nf {

/// Combines the pre-actions with the session state to produce the final
/// verdict for a packet travelling in `dir`.
///
/// Stateful-ACL rule (§5.1): a direction passes if its own pre-action
/// accepts, or if the session was initiated from the opposite direction and
/// that direction's pre-action accepts (responses to locally-initiated
/// connections must pass even when the ACL denies inbound traffic).
flow::Verdict finalize_action(flow::Direction dir,
                              const flow::PreActions& pre,
                              const flow::SessionState& state);

/// Stateful decapsulation (§5.2): returns the overlay destination a TX
/// response packet must be encapsulated toward. When the session recorded a
/// decap source IP (the LB's address, captured from the first RX packet),
/// responses go back to the LB rather than directly to the client.
net::Ipv4Addr response_overlay_dst(const flow::SessionState& state,
                                   net::Ipv4Addr default_dst);

}  // namespace nezha::nf
