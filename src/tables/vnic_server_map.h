// vNIC-Server mapping table: the cloud's "global routing table" (§4.2.1).
//
// Maps a vNIC (identified by its overlay IP within a VPC) to the underlay
// location (server IP/MAC) that currently hosts its packet processing. The
// authoritative copy lives at the gateway; vSwitches learn entries on demand
// and refresh them every learning interval (200ms in the paper). Nezha's
// offload re-points a hot vNIC's entry from its BE server to its FE set.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/flow/pre_actions.h"
#include "src/net/addr.h"

namespace nezha::tables {

using VnicId = std::uint64_t;

/// An underlay location (one server's SmartNIC).
struct Location {
  net::Ipv4Addr ip;
  net::MacAddr mac;
  bool valid() const { return ip.value() != 0; }
  bool operator==(const Location&) const = default;
};

/// A vNIC's current placement: either a single location (normal case) or a
/// set of FE locations (offloaded vNIC; the sender hashes flows across them).
struct VnicPlacement {
  std::vector<Location> locations;
  std::uint64_t version = 0;

  bool offloaded() const { return locations.size() > 1; }
  bool operator==(const VnicPlacement&) const = default;
};

/// Identity of a vNIC on the overlay: (VPC, overlay IP).
struct OverlayAddr {
  std::uint32_t vpc_id = 0;
  net::Ipv4Addr ip;
  bool operator==(const OverlayAddr&) const = default;
};

struct OverlayAddrHash {
  std::size_t operator()(const OverlayAddr& a) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(a.vpc_id) << 32) | a.ip.value());
  }
};

class VnicServerMap {
 public:
  /// Registers/updates a vNIC's overlay address and placement; bumps the
  /// entry version so learners can detect staleness.
  void set_placement(OverlayAddr addr, VnicId vnic,
                     std::vector<Location> locations);

  struct Entry {
    VnicId vnic = 0;
    VnicPlacement placement;
  };

  const Entry* lookup(const OverlayAddr& addr) const;
  bool erase(const OverlayAddr& addr);
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Entry footprint (overlay addr + a few locations + metadata). The paper
  /// notes large VPCs force O(100K) entries ⇒ >200MB, i.e. ≈2KB+/entry
  /// including indexes; we model the raw entry.
  static constexpr std::size_t kEntryBytes = 64;
  std::size_t memory_bytes() const { return entries_.size() * kEntryBytes; }

 private:
  std::unordered_map<OverlayAddr, Entry, OverlayAddrHash> entries_;
  std::uint64_t next_version_ = 1;
};

}  // namespace nezha::tables
