#include "src/tables/acl.h"

#include <algorithm>
#include <numeric>

namespace nezha::tables {

void AclTable::add_rule(AclRule rule) {
  rules_.push_back(std::move(rule));
  dirty_ = true;
  ++mutations_;
}

void AclTable::clear() {
  rules_.clear();
  for (auto& c : classes_) c.clear();
  dirty_ = false;
  ++mutations_;
}

std::size_t AclTable::proto_bin(net::IpProto proto) {
  switch (proto) {
    case net::IpProto::kIcmp: return 0;
    case net::IpProto::kTcp: return 1;
    case net::IpProto::kUdp: return 2;
  }
  return 3;  // future/unknown protocols share a bin
}

std::size_t AclTable::class_of(net::IpProto proto, flow::Direction dir) {
  return proto_bin(proto) * 2 + (dir == flow::Direction::kRx ? 1 : 0);
}

void AclTable::rebuild() const {
  for (auto& c : classes_) c.clear();
  // Merge order: priority, then insertion order within equal priorities.
  std::vector<std::size_t> order(rules_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return rules_[a].priority < rules_[b].priority;
                   });
  for (const std::size_t idx : order) {
    const AclRule& r = rules_[idx];
    const Compiled c{r.src.network(),     r.src.mask(),
                     r.dst.network(),     r.dst.mask(),
                     r.src_ports.lo,      r.src_ports.hi,
                     r.dst_ports.lo,      r.dst_ports.hi,
                     r.verdict};
    const std::size_t pb_lo = r.proto ? proto_bin(*r.proto) : 0;
    const std::size_t pb_hi = r.proto ? pb_lo : kNumClasses / 2 - 1;
    for (std::size_t pb = pb_lo; pb <= pb_hi; ++pb) {
      if (!r.direction || *r.direction == flow::Direction::kTx) {
        classes_[pb * 2 + 0].push_back(c);
      }
      if (!r.direction || *r.direction == flow::Direction::kRx) {
        classes_[pb * 2 + 1].push_back(c);
      }
    }
  }
  dirty_ = false;
}

flow::Verdict AclTable::lookup(const net::FiveTuple& ft,
                               flow::Direction dir) const {
  if (dirty_) rebuild();
  const std::vector<Compiled>& cands = classes_[class_of(ft.proto, dir)];
  const std::uint32_t src = ft.src_ip.value();
  const std::uint32_t dst = ft.dst_ip.value();
  for (const Compiled& c : cands) {
    if ((src & c.src_mask) != c.src_net) continue;
    if ((dst & c.dst_mask) != c.dst_net) continue;
    if (ft.src_port < c.sp_lo || ft.src_port > c.sp_hi) continue;
    if (ft.dst_port < c.dp_lo || ft.dst_port > c.dp_hi) continue;
    return c.verdict;
  }
  return default_verdict_;
}

flow::Verdict AclTable::lookup_probed(const net::FiveTuple& ft,
                                      flow::Direction dir,
                                      AclLookupProbe& probe) const {
  if (dirty_) rebuild();
  const std::vector<Compiled>& cands = classes_[class_of(ft.proto, dir)];
  const std::uint32_t src = ft.src_ip.value();
  const std::uint32_t dst = ft.dst_ip.value();
  // Same scan as lookup(), with consulted-port tracking: a port field is
  // consulted only when its test is reached AND the range is non-universal.
  // Tests run in a fixed order (src net, dst net, src ports, dst ports), so
  // any tuple agreeing on the consulted fields takes the identical path.
  for (const Compiled& c : cands) {
    if ((src & c.src_mask) != c.src_net) continue;
    if ((dst & c.dst_mask) != c.dst_net) continue;
    if (c.sp_lo != 0 || c.sp_hi != 65535) probe.src_port = true;
    if (ft.src_port < c.sp_lo || ft.src_port > c.sp_hi) continue;
    if (c.dp_lo != 0 || c.dp_hi != 65535) probe.dst_port = true;
    if (ft.dst_port < c.dp_lo || ft.dst_port > c.dp_hi) continue;
    return c.verdict;
  }
  return default_verdict_;
}

}  // namespace nezha::tables
