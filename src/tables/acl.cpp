#include "src/tables/acl.h"

#include <algorithm>

namespace nezha::tables {

void AclTable::add_rule(AclRule rule) {
  auto pos = std::lower_bound(
      rules_.begin(), rules_.end(), rule,
      [](const AclRule& a, const AclRule& b) { return a.priority < b.priority; });
  rules_.insert(pos, std::move(rule));
}

void AclTable::clear() { rules_.clear(); }

flow::Verdict AclTable::lookup(const net::FiveTuple& ft,
                               flow::Direction dir) const {
  for (const auto& rule : rules_) {
    if (rule.direction && *rule.direction != dir) continue;
    if (rule.proto && *rule.proto != ft.proto) continue;
    if (!rule.src.contains(ft.src_ip)) continue;
    if (!rule.dst.contains(ft.dst_ip)) continue;
    if (!rule.src_ports.contains(ft.src_port)) continue;
    if (!rule.dst_ports.contains(ft.dst_port)) continue;
    return rule.verdict;
  }
  return default_verdict_;
}

}  // namespace nezha::tables
