#include "src/tables/rule_set.h"

#include <algorithm>

namespace nezha::tables {

namespace {
constexpr std::size_t kSetupCacheInitial = 64;  // power of two
constexpr std::uint64_t kSetupCacheSeed = 0x6e657a68612d6663ull;  // "nezha-fc"
}  // namespace

flow::PreActions RuleTableSet::lookup(const net::FiveTuple& tx_ft) const {
  flow::PreActions pre;
  pre.rule_version = version_;

  const net::FiveTuple rx_ft = tx_ft.reversed();

  // ACL: evaluated per direction (the classic stateful-ACL setup evaluates
  // "deny all inbound" only on RX).
  if (profile_.acl_enabled) {
    pre.tx.acl_verdict = acl_.lookup(tx_ft, flow::Direction::kTx);
    pre.rx.acl_verdict = acl_.lookup(rx_ft, flow::Direction::kRx);
  }

  // QoS keyed by the remote peer (the TX destination).
  pre.tx.rate_limit_kbps = qos_.lookup(tx_ft.dst_ip);
  pre.rx.rate_limit_kbps = qos_.lookup(tx_ft.dst_ip);

  // Statistics policy applies to the session as a whole.
  const flow::StatsMode stats = stats_policy_.lookup(tx_ft.dst_ip);
  pre.tx.stats_mode = stats;
  pre.rx.stats_mode = stats;

  // NAT rewrites the TX direction (source NAT toward the destination).
  if (auto nat = nat_.lookup(tx_ft)) {
    pre.tx.nat_enabled = true;
    pre.tx.nat_ip = nat->ip;
    pre.tx.nat_port = nat->port;
  }

  // Policy routing can pre-pin the TX next hop; otherwise the vSwitch
  // resolves it via the learned vNIC-server map.
  if (auto hop = policy_routes_.lookup(tx_ft.dst_ip)) {
    pre.tx.next_hop = *hop;
  }

  // Traffic mirroring: copies of this flow's packets go to the collector.
  if (auto collector = mirrors_.lookup(tx_ft.dst_ip)) {
    pre.tx.mirror = pre.rx.mirror = true;
    pre.tx.mirror_target = pre.rx.mirror_target = *collector;
  }

  return pre;
}

flow::PreActions RuleTableSet::chain_with_mask(const net::FiveTuple& tx_ft,
                                               std::uint8_t& mask) const {
  flow::PreActions pre;
  pre.rule_version = version_;
  mask = 0;

  const net::FiveTuple rx_ft = tx_ft.reversed();

  if (profile_.acl_enabled) {
    AclLookupProbe tx_probe, rx_probe;
    pre.tx.acl_verdict =
        acl_.lookup_probed(tx_ft, flow::Direction::kTx, tx_probe);
    pre.rx.acl_verdict =
        acl_.lookup_probed(rx_ft, flow::Direction::kRx, rx_probe);
    // Consulted ports, mapped onto the TX tuple's field space: the RX
    // tuple's src_port is the TX tuple's dst_port and vice versa.
    if (tx_probe.src_port || rx_probe.dst_port) mask |= kMaskSrcPort;
    if (tx_probe.dst_port || rx_probe.src_port) mask |= kMaskDstPort;
  }

  pre.tx.rate_limit_kbps = qos_.lookup(tx_ft.dst_ip);
  pre.rx.rate_limit_kbps = qos_.lookup(tx_ft.dst_ip);

  const flow::StatsMode stats = stats_policy_.lookup(tx_ft.dst_ip);
  pre.tx.stats_mode = stats;
  pre.rx.stats_mode = stats;

  if (auto nat = nat_.lookup(tx_ft)) {
    pre.tx.nat_enabled = true;
    pre.tx.nat_ip = nat->ip;
    pre.tx.nat_port = nat->port;
    // The NAT endpoint is allocated from a hash of the full tuple; flows
    // differing only in ports get different endpoints, so a NAT hit pins
    // both ports into the key.
    mask |= kMaskSrcPort | kMaskDstPort;
  }

  if (auto hop = policy_routes_.lookup(tx_ft.dst_ip)) {
    pre.tx.next_hop = *hop;
  }

  if (auto collector = mirrors_.lookup(tx_ft.dst_ip)) {
    pre.tx.mirror = pre.rx.mirror = true;
    pre.tx.mirror_target = pre.rx.mirror_target = *collector;
  }

  return pre;
}

const RuleTableSet::CacheEntry* RuleTableSet::cache_find(
    const net::FiveTuple& masked, std::uint8_t mask, std::uint64_t h) const {
  const std::size_t m = cache_.size() - 1;
  for (std::size_t i = h & m;; i = (i + 1) & m) {
    const CacheEntry& e = cache_[i];
    if (!e.used) return nullptr;
    if (e.hash == h && e.mask == mask && e.key == masked) return &e;
  }
}

void RuleTableSet::cache_insert(const net::FiveTuple& masked,
                                std::uint8_t mask, std::uint64_t h,
                                const flow::PreActions& pre) const {
  // Grow at 1/2 load so probe chains stay short.
  if (cache_.empty()) {
    cache_.assign(kSetupCacheInitial, CacheEntry{});
  } else if ((cache_used_ + 1) * 2 > cache_.size()) {
    std::vector<CacheEntry> old;
    old.swap(cache_);
    cache_.assign(old.size() * 2, CacheEntry{});
    const std::size_t m = cache_.size() - 1;
    for (CacheEntry& e : old) {
      if (!e.used) continue;
      std::size_t i = e.hash & m;
      while (cache_[i].used) i = (i + 1) & m;
      cache_[i] = std::move(e);
    }
  }
  const std::size_t m = cache_.size() - 1;
  std::size_t i = h & m;
  while (cache_[i].used) i = (i + 1) & m;
  CacheEntry& e = cache_[i];
  e.key = masked;
  e.pre = pre;
  e.hash = h;
  e.mask = mask;
  e.used = true;
  ++cache_used_;
  cache_masks_ |= static_cast<std::uint8_t>(1u << mask);
}

flow::PreActions RuleTableSet::lookup_cached(
    const net::FiveTuple& tx_ft) const {
  const std::uint64_t epoch = setup_epoch();
  if (epoch != cache_epoch_) {
    // Some table mutated since the last lookup: drop every derived entry.
    cache_epoch_ = epoch;
    cache_masks_ = 0;
    cache_used_ = 0;
    if (!cache_.empty()) {
      std::fill(cache_.begin(), cache_.end(), CacheEntry{});
    }
  }
  // Probe each key shape seen so far (4 at most; typically 1).
  for (std::uint8_t mask = 0; mask < 4; ++mask) {
    if ((cache_masks_ & (1u << mask)) == 0) continue;
    const net::FiveTuple key = masked_tuple(tx_ft, mask);
    const std::uint64_t h = net::flow_hash(key, kSetupCacheSeed ^ mask);
    if (const CacheEntry* e = cache_find(key, mask, h)) {
      ++cache_hits_;
      return e->pre;
    }
  }
  ++cache_misses_;
  std::uint8_t mask = 0;
  const flow::PreActions pre = chain_with_mask(tx_ft, mask);
  const net::FiveTuple key = masked_tuple(tx_ft, mask);
  cache_insert(key, mask, net::flow_hash(key, kSetupCacheSeed ^ mask), pre);
  return pre;
}

}  // namespace nezha::tables
