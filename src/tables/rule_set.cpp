#include "src/tables/rule_set.h"

namespace nezha::tables {

flow::PreActions RuleTableSet::lookup(const net::FiveTuple& tx_ft) const {
  flow::PreActions pre;
  pre.rule_version = version_;

  const net::FiveTuple rx_ft = tx_ft.reversed();

  // ACL: evaluated per direction (the classic stateful-ACL setup evaluates
  // "deny all inbound" only on RX).
  if (profile_.acl_enabled) {
    pre.tx.acl_verdict = acl_.lookup(tx_ft, flow::Direction::kTx);
    pre.rx.acl_verdict = acl_.lookup(rx_ft, flow::Direction::kRx);
  }

  // QoS keyed by the remote peer (the TX destination).
  pre.tx.rate_limit_kbps = qos_.lookup(tx_ft.dst_ip);
  pre.rx.rate_limit_kbps = qos_.lookup(tx_ft.dst_ip);

  // Statistics policy applies to the session as a whole.
  const flow::StatsMode stats = stats_policy_.lookup(tx_ft.dst_ip);
  pre.tx.stats_mode = stats;
  pre.rx.stats_mode = stats;

  // NAT rewrites the TX direction (source NAT toward the destination).
  if (auto nat = nat_.lookup(tx_ft)) {
    pre.tx.nat_enabled = true;
    pre.tx.nat_ip = nat->ip;
    pre.tx.nat_port = nat->port;
  }

  // Policy routing can pre-pin the TX next hop; otherwise the vSwitch
  // resolves it via the learned vNIC-server map.
  if (auto hop = policy_routes_.lookup(tx_ft.dst_ip)) {
    pre.tx.next_hop = *hop;
  }

  // Traffic mirroring: copies of this flow's packets go to the collector.
  if (auto collector = mirrors_.lookup(tx_ft.dst_ip)) {
    pre.tx.mirror = pre.rx.mirror = true;
    pre.tx.mirror_target = pre.rx.mirror_target = *collector;
  }

  return pre;
}

}  // namespace nezha::tables
