#include "src/tables/policy_tables.h"

#include "src/net/five_tuple.h"

namespace nezha::tables {

std::optional<NatTable::NatResult> NatTable::lookup(
    const net::FiveTuple& ft) const {
  const Pool* pool = pools_.lookup(ft.dst_ip);
  if (pool == nullptr) return std::nullopt;
  const std::uint64_t h = net::flow_hash(ft, 0x4e41545fULL);  // "NAT_"
  NatResult r;
  r.ip = net::Ipv4Addr(pool->base_ip.value() +
                       static_cast<std::uint32_t>(h % pool->ip_count));
  r.port = static_cast<std::uint16_t>(
      pool->base_port + (h / pool->ip_count) % pool->ports_per_ip);
  return r;
}

}  // namespace nezha::tables
