// Longest-prefix-match table over IPv4, generic in the stored value.
//
// Implementation: one exact-match hash map per prefix length, probed from
// /32 down — simple, allocation-friendly, and plenty fast for simulation.
// Lookups walk a precomputed probe list of {mask, length} pairs (descending
// by length, one entry per populated level), so the common case is a few
// contiguous probes with no per-probe bit-scan or mask arithmetic. The list
// stores lengths, not level pointers, so the table stays trivially
// copyable/movable (RuleTableSet is full-copied on FE installation).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/net/addr.h"
#include "src/tables/prefix.h"

namespace nezha::tables {

template <typename V>
class LpmTable {
 public:
  void insert(Prefix prefix, V value) {
    auto& level = levels_[prefix.length];
    auto [it, inserted] = level.insert_or_assign(prefix.network(),
                                                 std::move(value));
    (void)it;
    if (inserted) ++size_;
    const std::uint64_t bit = std::uint64_t{1} << prefix.length;
    if ((populated_ & bit) == 0) {
      populated_ |= bit;
      rebuild_probes();
    }
  }

  bool erase(Prefix prefix) {
    auto& level = levels_[prefix.length];
    const bool removed = level.erase(prefix.network()) > 0;
    if (removed) {
      --size_;
      if (level.empty()) {
        populated_ &= ~(std::uint64_t{1} << prefix.length);
        rebuild_probes();
      }
    }
    return removed;
  }

  void clear() {
    for (auto& level : levels_) level.clear();
    size_ = 0;
    populated_ = 0;
    probes_.clear();
  }

  std::size_t size() const { return size_; }

  /// Longest-prefix match; nullptr when no prefix covers ip.
  const V* lookup(net::Ipv4Addr ip) const {
    for (const Probe& p : probes_) {
      const auto& level = levels_[p.length];
      auto it = level.find(ip.value() & p.mask);
      if (it != level.end()) return &it->second;
    }
    return nullptr;
  }

  /// Exact lookup of a specific prefix entry.
  const V* find_exact(Prefix prefix) const {
    const auto& level = levels_[prefix.length];
    auto it = level.find(prefix.network());
    return it == level.end() ? nullptr : &it->second;
  }

  /// Per-entry footprint: prefix key + value payload, modeled at 32B.
  static constexpr std::size_t kEntryBytes = 32;
  std::size_t memory_bytes() const { return size_ * kEntryBytes; }

 private:
  struct Probe {
    std::uint32_t mask;
    std::uint8_t length;
  };

  /// Regenerates the probe list from the populated-length bitmask; runs only
  /// when a level transitions empty↔non-empty, never per lookup.
  void rebuild_probes() {
    probes_.clear();
    for (std::uint64_t remaining = populated_; remaining != 0;) {
      const int len = std::bit_width(remaining) - 1;  // longest first
      remaining &= ~(std::uint64_t{1} << len);
      const std::uint32_t mask = (len == 0) ? 0u : (~0u << (32 - len));
      probes_.push_back(Probe{mask, static_cast<std::uint8_t>(len)});
    }
  }

  std::array<std::unordered_map<std::uint32_t, V>, 33> levels_;
  /// Bit L set ⇔ levels_[L] is non-empty.
  std::uint64_t populated_ = 0;
  /// Populated levels, longest first; what lookup() actually walks.
  std::vector<Probe> probes_;
  std::size_t size_ = 0;
};

}  // namespace nezha::tables
