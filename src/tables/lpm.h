// Longest-prefix-match table over IPv4, generic in the stored value.
//
// Implementation: one exact-match hash map per prefix length, probed from
// /32 down — simple, allocation-friendly, and plenty fast for simulation.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/net/addr.h"
#include "src/tables/prefix.h"

namespace nezha::tables {

template <typename V>
class LpmTable {
 public:
  void insert(Prefix prefix, V value) {
    auto& level = levels_[prefix.length];
    auto [it, inserted] = level.insert_or_assign(prefix.network(),
                                                 std::move(value));
    (void)it;
    if (inserted) ++size_;
  }

  bool erase(Prefix prefix) {
    const bool removed = levels_[prefix.length].erase(prefix.network()) > 0;
    if (removed) --size_;
    return removed;
  }

  void clear() {
    for (auto& level : levels_) level.clear();
    size_ = 0;
  }

  std::size_t size() const { return size_; }

  /// Longest-prefix match; nullptr when no prefix covers ip.
  const V* lookup(net::Ipv4Addr ip) const {
    for (int len = 32; len >= 0; --len) {
      const auto& level = levels_[static_cast<std::size_t>(len)];
      if (level.empty()) continue;
      const std::uint32_t mask = (len == 0) ? 0u : (~0u << (32 - len));
      auto it = level.find(ip.value() & mask);
      if (it != level.end()) return &it->second;
    }
    return nullptr;
  }

  /// Exact lookup of a specific prefix entry.
  const V* find_exact(Prefix prefix) const {
    const auto& level = levels_[prefix.length];
    auto it = level.find(prefix.network());
    return it == level.end() ? nullptr : &it->second;
  }

  /// Per-entry footprint: prefix key + value payload, modeled at 32B.
  static constexpr std::size_t kEntryBytes = 32;
  std::size_t memory_bytes() const { return size_ * kEntryBytes; }

 private:
  std::array<std::unordered_map<std::uint32_t, V>, 33> levels_;
  std::size_t size_ = 0;
};

}  // namespace nezha::tables
