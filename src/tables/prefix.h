// IPv4 prefix (CIDR) value type used by ACL/LPM/NAT matchers.
#pragma once

#include <cstdint>
#include <string>

#include "src/net/addr.h"

namespace nezha::tables {

struct Prefix {
  net::Ipv4Addr addr;
  std::uint8_t length = 0;  // 0..32

  static Prefix any() { return Prefix{net::Ipv4Addr(0), 0}; }
  static Prefix host(net::Ipv4Addr ip) { return Prefix{ip, 32}; }

  std::uint32_t mask() const {
    return length == 0 ? 0u : (~0u << (32 - length));
  }
  bool contains(net::Ipv4Addr ip) const {
    return (ip.value() & mask()) == (addr.value() & mask());
  }
  std::uint32_t network() const { return addr.value() & mask(); }

  std::string to_string() const {
    return addr.to_string() + "/" + std::to_string(length);
  }
  bool operator==(const Prefix&) const = default;
};

/// Inclusive port range; {0, 65535} matches everything.
struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;

  static PortRange any() { return {}; }
  static PortRange exact(std::uint16_t p) { return PortRange{p, p}; }
  bool contains(std::uint16_t p) const { return p >= lo && p <= hi; }
  bool operator==(const PortRange&) const = default;
};

}  // namespace nezha::tables
