// The remaining slow-path tables: QoS/metering, NAT, flow-statistics policy
// and policy-based routing. Each is a prefix-match table with a default,
// producing one field of the DirPreAction.
#pragma once

#include <cstdint>
#include <optional>

#include "src/flow/pre_actions.h"
#include "src/net/five_tuple.h"
#include "src/tables/lpm.h"
#include "src/tables/prefix.h"

namespace nezha::tables {

/// QoS / metering policy: committed rate per destination prefix.
class QosTable {
 public:
  void set_default_rate_kbps(std::uint32_t kbps) {
    default_kbps_ = kbps;
    ++mutations_;
  }
  void add_rate(Prefix dst, std::uint32_t kbps) {
    rates_.insert(dst, kbps);
    ++mutations_;
  }
  void clear() {
    rates_.clear();
    ++mutations_;
  }
  std::uint64_t mutations() const { return mutations_; }

  std::uint32_t lookup(net::Ipv4Addr dst) const {
    const std::uint32_t* v = rates_.lookup(dst);
    return v != nullptr ? *v : default_kbps_;
  }

  std::size_t size() const { return rates_.size(); }
  std::size_t memory_bytes() const { return rates_.memory_bytes(); }

 private:
  LpmTable<std::uint32_t> rates_;
  std::uint32_t default_kbps_ = 0;  // 0 = unlimited
  std::uint64_t mutations_ = 0;
};

/// NAT policy: flows to a matching destination prefix get source-NATed to a
/// deterministic address/port drawn from the pool.
class NatTable {
 public:
  struct Pool {
    net::Ipv4Addr base_ip;
    std::uint16_t base_port = 1024;
    std::uint32_t ip_count = 1;
    std::uint16_t ports_per_ip = 60000;
  };

  void add_pool(Prefix dst, Pool pool) {
    pools_.insert(dst, pool);
    ++mutations_;
  }
  void clear() {
    pools_.clear();
    ++mutations_;
  }
  std::uint64_t mutations() const { return mutations_; }

  struct NatResult {
    net::Ipv4Addr ip;
    std::uint16_t port;
  };

  /// Deterministic allocation from the pool keyed by the flow hash, so the
  /// same flow always maps to the same external endpoint.
  std::optional<NatResult> lookup(const net::FiveTuple& ft) const;

  std::size_t size() const { return pools_.size(); }
  std::size_t memory_bytes() const { return pools_.memory_bytes(); }

 private:
  LpmTable<Pool> pools_;
  std::uint64_t mutations_ = 0;
};

/// Flow-statistics policy (what to count per flow). This is the canonical
/// "rule-table-involved state" of §3.2.2: the result must reach the BE's
/// session state, via notify packets on the TX path.
class StatsPolicyTable {
 public:
  void set_default_mode(flow::StatsMode mode) {
    default_mode_ = mode;
    ++version_;
  }
  void add_policy(Prefix dst, flow::StatsMode mode) {
    policies_.insert(dst, mode);
    ++version_;
  }
  void clear() {
    policies_.clear();
    ++version_;
  }

  flow::StatsMode lookup(net::Ipv4Addr dst) const {
    const flow::StatsMode* v = policies_.lookup(dst);
    return v != nullptr ? *v : default_mode_;
  }

  /// Bumped on every policy change so notify logic can detect divergence.
  std::uint32_t version() const { return version_; }

  std::size_t size() const { return policies_.size(); }
  std::size_t memory_bytes() const { return policies_.memory_bytes(); }

 private:
  LpmTable<flow::StatsMode> policies_;
  flow::StatsMode default_mode_ = flow::StatsMode::kNone;
  std::uint32_t version_ = 0;
};

/// Traffic-mirroring policy: flows to a matching destination prefix have
/// copies of their packets sent to a collector (an advanced feature that
/// lengthens the lookup chain, §2.2.2).
class MirrorTable {
 public:
  void add_mirror(Prefix dst, flow::NextHop collector) {
    collectors_.insert(dst, collector);
    ++mutations_;
  }
  void clear() {
    collectors_.clear();
    ++mutations_;
  }
  std::uint64_t mutations() const { return mutations_; }

  std::optional<flow::NextHop> lookup(net::Ipv4Addr dst) const {
    const flow::NextHop* v = collectors_.lookup(dst);
    return v != nullptr ? std::optional(*v) : std::nullopt;
  }

  std::size_t size() const { return collectors_.size(); }
  std::size_t memory_bytes() const { return collectors_.memory_bytes(); }

 private:
  LpmTable<flow::NextHop> collectors_;
  std::uint64_t mutations_ = 0;
};

/// Policy-based routing: destination-prefix overrides of the next hop.
class PolicyRouteTable {
 public:
  void add_override(Prefix dst, flow::NextHop hop) {
    hops_.insert(dst, hop);
    ++mutations_;
  }
  void clear() {
    hops_.clear();
    ++mutations_;
  }
  std::uint64_t mutations() const { return mutations_; }

  std::optional<flow::NextHop> lookup(net::Ipv4Addr dst) const {
    const flow::NextHop* v = hops_.lookup(dst);
    return v != nullptr ? std::optional(*v) : std::nullopt;
  }

  std::size_t size() const { return hops_.size(); }
  std::size_t memory_bytes() const { return hops_.memory_bytes(); }

 private:
  LpmTable<flow::NextHop> hops_;
  std::uint64_t mutations_ = 0;
};

}  // namespace nezha::tables
