// CPU cost model for vSwitch packet processing, in CPU cycles.
//
// Calibrated against the paper's Table A1: an 8-core vSwitch (modeled at
// 2.5 GHz = 20e9 cycles/s) sustains ≈6.61 Mpps of slow-path SYN processing
// with 64B packets and an empty ACL (≈3.0k cycles/packet), degrading
// gradually with ACL rule count (≈0.66 cycles/rule) and packet size
// (≈0.7 cycles/byte of NIC→vSwitch movement).
#pragma once

#include <cstddef>
#include <cstdint>

namespace nezha::tables {

struct CostModel {
  // --- per-table lookup costs (slow path) ---
  double acl_base_cycles = 600.0;
  double acl_per_rule_cycles = 0.66;
  double lpm_route_cycles = 400.0;
  double qos_cycles = 300.0;
  double stats_policy_cycles = 300.0;
  double nat_cycles = 350.0;
  double policy_route_cycles = 300.0;
  double mirror_cycles = 300.0;
  double vnic_server_map_cycles = 200.0;
  double extra_table_cycles = 200.0;  // each additional advanced-feature table

  // --- fixed per-packet costs ---
  double parse_cycles = 300.0;
  double session_insert_cycles = 500.0;
  double session_lookup_cycles = 250.0;  // fast-path exact match
  double encap_cycles = 200.0;
  double decap_cycles = 150.0;
  double state_update_cycles = 120.0;   // BE-side state observe/update
  double carrier_codec_cycles = 100.0;  // add/strip the Nezha shim
  double per_byte_cycles = 0.7;         // NIC <-> vSwitch data movement
  /// §7.3 "packet processing acceleration at BE": without cached flows the
  /// BE inserts per-flow processing logic (header rewrite to the FE,
  /// state encap) into SmartNIC hardware, cutting its per-packet CPU cost
  /// to a fraction of the software path. Applied to be_tx/be_rx cycles.
  double be_hw_accel_factor = 0.35;
  /// FE cached-flow hits are exact-match lookups plus a forward — the same
  /// shape the production SmartNIC fast path offloads to FPGA hardware
  /// (§2.1). Applied to fe_tx/fe_rx packet cost when the flow cache hits;
  /// chain executions (cache misses) always run at full software cost.
  double fe_cache_hit_accel_factor = 0.55;

  /// Production-scale preset: the default constants above are calibrated to
  /// the Table A1 microbenchmark (small tables, empty-ish ACLs); production
  /// middlebox vNICs carry O(10K)-entry range ACLs, O(100K)-entry
  /// vNIC-server maps and deep policy trees, making each chain execution
  /// several times more expensive. This preset reproduces the production
  /// CPS regime (§2.2.2: "O(100K) CPS" per vSwitch) used by the scenario
  /// benches (Fig 9–12, Table 3).
  static CostModel production() {
    CostModel m;
    m.acl_base_cycles = 2400.0;
    m.acl_per_rule_cycles = 0.66;
    m.lpm_route_cycles = 1200.0;
    m.qos_cycles = 800.0;
    m.stats_policy_cycles = 800.0;
    m.nat_cycles = 1000.0;
    m.policy_route_cycles = 800.0;
    m.mirror_cycles = 800.0;
    m.vnic_server_map_cycles = 600.0;
    m.extra_table_cycles = 400.0;
    m.parse_cycles = 400.0;
    m.session_insert_cycles = 1500.0;
    m.session_lookup_cycles = 300.0;
    m.encap_cycles = 250.0;
    m.decap_cycles = 200.0;
    return m;
  }

  /// Slow-path rule-table chain cost for a vNIC whose ACL holds `acl_rules`
  /// and whose profile queries `num_tables` tables in total (>= the 5 basic
  /// ones; up to 12 with advanced features, §2.2.2).
  double slow_path_chain_cycles(std::size_t acl_rules, int num_tables,
                                bool acl_enabled) const {
    double c = lpm_route_cycles + qos_cycles + stats_policy_cycles +
               vnic_server_map_cycles;
    int counted = 4;
    if (acl_enabled) {
      c += acl_base_cycles +
           acl_per_rule_cycles * static_cast<double>(acl_rules);
      ++counted;
    }
    for (; counted < num_tables; ++counted) c += extra_table_cycles;
    return c;
  }
};

}  // namespace nezha::tables
