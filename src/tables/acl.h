// ACL rule table: priority-ordered 5-tuple rules with prefix and port-range
// matching — the most expensive lookup in the slow-path chain (§2.2.2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/flow/direction.h"
#include "src/flow/pre_actions.h"
#include "src/net/five_tuple.h"
#include "src/tables/prefix.h"

namespace nezha::tables {

struct AclRule {
  std::uint32_t priority = 0;  // lower value wins
  Prefix src = Prefix::any();
  Prefix dst = Prefix::any();
  PortRange src_ports = PortRange::any();
  PortRange dst_ports = PortRange::any();
  std::optional<net::IpProto> proto;  // nullopt = any
  std::optional<flow::Direction> direction;  // nullopt = both directions
  flow::Verdict verdict = flow::Verdict::kAccept;
};

class AclTable {
 public:
  /// Default verdict when no rule matches.
  explicit AclTable(flow::Verdict default_verdict = flow::Verdict::kAccept)
      : default_verdict_(default_verdict) {}

  void add_rule(AclRule rule);
  void clear();
  std::size_t rule_count() const { return rules_.size(); }

  /// Highest-priority matching verdict for a packet in `dir`.
  flow::Verdict lookup(const net::FiveTuple& ft, flow::Direction dir) const;

  flow::Verdict default_verdict() const { return default_verdict_; }
  void set_default_verdict(flow::Verdict v) { default_verdict_ = v; }

  /// Per-rule memory footprint (prefixes, ranges, metadata), for the
  /// slow-path memory model (#vNICs bottleneck, §2.2.2).
  static constexpr std::size_t kRuleBytes = 40;
  std::size_t memory_bytes() const { return rules_.size() * kRuleBytes; }

 private:
  std::vector<AclRule> rules_;  // kept sorted by priority
  flow::Verdict default_verdict_;
};

}  // namespace nezha::tables
