// ACL rule table: priority-ordered 5-tuple rules with prefix and port-range
// matching — the most expensive lookup in the slow-path chain (§2.2.2).
//
// Lookup is served from a tuple-space index: rules are partitioned by
// (protocol, direction) into eight candidate classes, with wildcard-proto /
// wildcard-direction rules replicated into every class they can match.
// Each class is pre-merged in (priority, insertion order) at build time, so
// a lookup scans one short, priority-sorted candidate list and exits on the
// first hit — no cross-bucket merge at query time. Candidates are compiled
// to packed (network, mask, port-bound) rows; the proto/direction tests are
// already paid for by class selection. The index rebuilds lazily on the
// first lookup after a mutation (rule churn is control-plane-rare, lookups
// are per-packet).
//
// Equal-priority ties resolve in insertion order (first added wins).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/flow/direction.h"
#include "src/flow/pre_actions.h"
#include "src/net/five_tuple.h"
#include "src/tables/prefix.h"

namespace nezha::tables {

struct AclRule {
  std::uint32_t priority = 0;  // lower value wins
  Prefix src = Prefix::any();
  Prefix dst = Prefix::any();
  PortRange src_ports = PortRange::any();
  PortRange dst_ports = PortRange::any();
  std::optional<net::IpProto> proto;  // nullopt = any
  std::optional<flow::Direction> direction;  // nullopt = both directions
  flow::Verdict verdict = flow::Verdict::kAccept;
};

/// Which tuple fields a lookup actually consulted before its outcome was
/// decided (ports only — IPs, proto and direction are always considered
/// consulted). The setup cache uses this to derive the narrowest sound
/// cache key for a flow, OVS-megaflow style: a port test that was never
/// reached (an earlier prefix test already rejected the rule) or that is
/// universal ({0, 65535}) cannot influence the verdict of any tuple that
/// agrees on the consulted fields.
struct AclLookupProbe {
  bool src_port = false;
  bool dst_port = false;
};

class AclTable {
 public:
  /// Default verdict when no rule matches.
  explicit AclTable(flow::Verdict default_verdict = flow::Verdict::kAccept)
      : default_verdict_(default_verdict) {}

  void add_rule(AclRule rule);
  void clear();
  std::size_t rule_count() const { return rules_.size(); }

  /// Highest-priority matching verdict for a packet in `dir`.
  flow::Verdict lookup(const net::FiveTuple& ft, flow::Direction dir) const;

  /// Same verdict as lookup(), additionally accumulating into `probe` which
  /// port fields the scan consulted (see AclLookupProbe).
  flow::Verdict lookup_probed(const net::FiveTuple& ft, flow::Direction dir,
                              AclLookupProbe& probe) const;

  flow::Verdict default_verdict() const { return default_verdict_; }
  void set_default_verdict(flow::Verdict v) {
    default_verdict_ = v;
    ++mutations_;
  }

  /// Monotone count of mutating calls; any change invalidates derived
  /// caches (RuleTableSet's flow-setup cache) even without commit_update().
  std::uint64_t mutations() const { return mutations_; }

  /// Per-rule memory footprint (prefixes, ranges, metadata), for the
  /// slow-path memory model (#vNICs bottleneck, §2.2.2).
  static constexpr std::size_t kRuleBytes = 40;
  std::size_t memory_bytes() const { return rules_.size() * kRuleBytes; }

 private:
  /// A rule compiled for one candidate class: proto/direction are implied
  /// by the class, prefixes are pre-expanded to network+mask.
  struct Compiled {
    std::uint32_t src_net;
    std::uint32_t src_mask;
    std::uint32_t dst_net;
    std::uint32_t dst_mask;
    std::uint16_t sp_lo, sp_hi;
    std::uint16_t dp_lo, dp_hi;
    flow::Verdict verdict;
  };

  static constexpr std::size_t kNumClasses = 8;  // 4 proto bins × 2 dirs
  static std::size_t proto_bin(net::IpProto proto);
  static std::size_t class_of(net::IpProto proto, flow::Direction dir);

  void rebuild() const;

  std::vector<AclRule> rules_;  // insertion order; index built lazily
  flow::Verdict default_verdict_;
  std::uint64_t mutations_ = 0;
  mutable std::array<std::vector<Compiled>, kNumClasses> classes_;
  mutable bool dirty_ = false;
};

}  // namespace nezha::tables
