#include "src/tables/vnic_server_map.h"

namespace nezha::tables {

void VnicServerMap::set_placement(OverlayAddr addr, VnicId vnic,
                                  std::vector<Location> locations) {
  Entry& e = entries_[addr];
  e.vnic = vnic;
  e.placement.locations = std::move(locations);
  e.placement.version = next_version_++;
}

const VnicServerMap::Entry* VnicServerMap::lookup(
    const OverlayAddr& addr) const {
  auto it = entries_.find(addr);
  return it == entries_.end() ? nullptr : &it->second;
}

bool VnicServerMap::erase(const OverlayAddr& addr) {
  return entries_.erase(addr) > 0;
}

}  // namespace nezha::tables
