#include "src/common/rng.h"

#include <cmath>

namespace nezha::common {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % span);
  std::uint64_t r;
  do {
    r = next();
  } while (r >= limit && limit != 0);
  return lo + (r % span);
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  return static_cast<std::int64_t>(
             uniform_u64(0, static_cast<std::uint64_t>(hi - lo))) +
         lo;
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * (u * factor);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  // Rejection-inversion sampling (Hormann & Derflinger) simplified for the
  // workload sizes we use; falls back to inverse-CDF for small n.
  if (n <= 1) return 1;
  if (n <= 1024) {
    // Exact inverse CDF over precomputable small supports.
    double total = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) total += 1.0 / std::pow(k, s);
    double u = uniform() * total;
    double acc = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(k, s);
      if (u <= acc) return k;
    }
    return n;
  }
  // For large n, approximate via the continuous bounding distribution.
  const double t = (std::pow(static_cast<double>(n), 1.0 - s) - s) / (1.0 - s);
  while (true) {
    const double u = uniform() * t;
    const double x =
        (u <= 1.0) ? u
                   : std::pow(u * (1.0 - s) + s, 1.0 / (1.0 - s));
    std::uint64_t k = static_cast<std::uint64_t>(x) + 1;
    if (k > n) k = n;
    const double ratio = std::pow(static_cast<double>(k), -s) /
                         ((u <= 1.0) ? 1.0 : std::pow(x, -s));
    if (uniform() <= ratio) return k;
  }
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace nezha::common
