// Minimal expected-style result type (std::expected is C++23; we target
// C++20). Used for fallible operations where exceptions would be noisy —
// packet parsing, table configuration, controller RPCs.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace nezha::common {

struct Error {
  std::string message;
};

inline Error make_error(std::string msg) { return Error{std::move(msg)}; }

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}                // NOLINT
  Result(Error error) : value_(std::move(error)) {}            // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(value_);
  }
  T& value() & {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(value_);
  }
  T&& take() && {
    if (!ok()) throw std::runtime_error("Result::take on error: " + error().message);
    return std::get<T>(std::move(value_));
  }

  const Error& error() const {
    return std::get<Error>(value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(value_) : fallback;
  }

 private:
  std::variant<T, Error> value_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;                                  // success
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  static Status ok_status() { return Status{}; }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return error_; }

 private:
  Error error_{};
  bool failed_ = false;
};

}  // namespace nezha::common
