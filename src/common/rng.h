// Deterministic random-number generation for the simulator.
//
// Every stochastic component takes an explicit Rng (or a seed) so that any
// experiment is exactly reproducible from its seed. The generator is
// xoshiro256** seeded through SplitMix64, which is fast, has a 2^256-1
// period, and passes BigCrush — more than adequate for workload synthesis.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace nezha::common {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface (usable with <random> if needed).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy tail).
  double pareto(double xm, double alpha);

  /// Zipf-distributed rank in [1, n] with exponent s (rejection sampling).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(0, i - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-component streams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace nezha::common
