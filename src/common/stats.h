// Statistics accumulators used by tests and benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nezha::common {

/// Streaming accumulator: count/mean/min/max/variance (Welford).
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile estimator: stores all samples; fine for simulation-scale
/// sample counts (millions). percentile(p) with p in [0,100].
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Linear-interpolated percentile; p in [0, 100]. Returns 0 when empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }

  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); sorted_ = false; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// CDF value at bucket upper edge i (counts underflow as mass below lo).
  double cdf_at(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Named counters for drop-reason accounting.
///
/// Hot callers register a static name table once (register_ids) and then
/// increment by compile-time id — a plain array increment, no string work.
/// The legacy string API stays for cold callers (benches, tests) and is
/// O(log n) over a key-sorted vector. get()/sorted() see both populations.
class Counter {
 public:
  /// Binds the id-indexed counters to a static name table. The span must
  /// outlive the Counter (point it at a constexpr array).
  void register_ids(std::span<const std::string_view> names);

  /// Id-based increment: an array increment on the datapath.
  void inc(std::size_t id, std::uint64_t by = 1) { id_counts_[id] += by; }
  std::uint64_t get_id(std::size_t id) const { return id_counts_[id]; }

  void inc(const std::string& key, std::uint64_t by = 1);
  std::uint64_t get(const std::string& key) const;
  /// All nonzero counters (id-registered and string-keyed), largest first.
  const std::vector<std::pair<std::string, std::uint64_t>> sorted() const;

 private:
  std::span<const std::string_view> id_names_;
  std::vector<std::uint64_t> id_counts_;
  std::vector<std::pair<std::string, std::uint64_t>> entries_;  // key-sorted
};

}  // namespace nezha::common
