// Statistics accumulators used by tests and benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nezha::common {

/// Streaming accumulator: count/mean/min/max/variance (Welford).
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// CDF value at bucket upper edge i (counts underflow as mass below lo).
  double cdf_at(std::size_t i) const;

  /// Interpolated quantile, p in [0, 100]. Mass in the underflow bucket maps
  /// to lo, overflow mass to hi; within a bucket the mass is assumed
  /// uniform. Returns 0 when empty.
  double quantile(double p) const;

  /// Accumulates `other` into this. Both histograms must have identical
  /// [lo, hi)/bucket shape; throws std::invalid_argument otherwise.
  void merge(const Histogram& other);

  void clear();

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Percentile estimator with two backends:
///
///  * exact (default) — stores every sample; fine for test-scale counts.
///  * bounded — construct via bounded(lo, hi, buckets); samples land in a
///    fixed-bucket Histogram and percentiles are interpolated from bucket
///    mass. Memory is O(buckets) regardless of sample count, which is what
///    fleet-scale benches need.
///
/// percentile(p) with p in [0,100]. merge() combines two estimators; when
/// either side is bounded the result is bounded (an exact target adopts the
/// bounded source's bucket shape, replaying its stored samples).
class Percentiles {
 public:
  Percentiles() = default;

  /// Bounded-memory estimator over [lo, hi) with `buckets` fixed buckets.
  static Percentiles bounded(double lo, double hi, std::size_t buckets);
  bool is_bounded() const { return hist_.has_value(); }

  void add(double x);
  void reserve(std::size_t n) { if (!hist_) samples_.reserve(n); }
  std::size_t count() const;
  bool empty() const { return count() == 0; }

  /// Accumulates `other` into this (see class comment for mode mixing).
  /// Merging two bounded estimators of different shape throws
  /// std::invalid_argument.
  void merge(const Percentiles& other);

  /// Linear-interpolated percentile; p in [0, 100]. Returns 0 when empty.
  /// Bounded mode clamps the bucket estimate to the true observed
  /// [min, max] (tracked exactly alongside the buckets).
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }

  /// Raw samples; empty in bounded mode (individual values are not kept).
  const std::vector<double>& samples() const { return samples_; }
  void clear();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  std::optional<Histogram> hist_;  // engaged => bounded mode
  double sum_ = 0.0;               // bounded-mode accumulators
  double min_ = 0.0;
  double max_ = 0.0;
  void ensure_sorted() const;
  void convert_to_bounded(double lo, double hi, std::size_t buckets);
};

/// Named counters for drop-reason accounting.
///
/// Hot callers register a static name table once (register_ids) and then
/// increment by compile-time id — a plain array increment, no string work.
/// The legacy string API stays for cold callers (benches, tests) and is
/// O(log n) over a key-sorted vector. get()/sorted() see both populations.
class Counter {
 public:
  /// Binds the id-indexed counters to a static name table. The span must
  /// outlive the Counter (point it at a constexpr array).
  void register_ids(std::span<const std::string_view> names);

  /// Id-based increment: an array increment on the datapath.
  void inc(std::size_t id, std::uint64_t by = 1) { id_counts_[id] += by; }
  std::uint64_t get_id(std::size_t id) const { return id_counts_[id]; }

  void inc(const std::string& key, std::uint64_t by = 1);
  std::uint64_t get(const std::string& key) const;
  /// All nonzero counters (id-registered and string-keyed), largest first.
  const std::vector<std::pair<std::string, std::uint64_t>> sorted() const;

 private:
  std::span<const std::string_view> id_names_;
  std::vector<std::uint64_t> id_counts_;
  std::vector<std::pair<std::string, std::uint64_t>> entries_;  // key-sorted
};

}  // namespace nezha::common
