// Minimal leveled logger. Off by default so tests and benches stay quiet;
// experiments flip the level to Info for timeline narration.
#pragma once

#include <cstdio>
#include <string>

namespace nezha::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& msg);

#define NEZHA_LOG(level, msg)                                      \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::nezha::common::log_level())) {          \
      ::nezha::common::log_message((level), (msg));                \
    }                                                              \
  } while (0)

#define NEZHA_LOG_INFO(msg) NEZHA_LOG(::nezha::common::LogLevel::kInfo, msg)
#define NEZHA_LOG_WARN(msg) NEZHA_LOG(::nezha::common::LogLevel::kWarn, msg)
#define NEZHA_LOG_DEBUG(msg) NEZHA_LOG(::nezha::common::LogLevel::kDebug, msg)

}  // namespace nezha::common
