// Minimal leveled logger. Off by default so tests and benches stay quiet;
// experiments flip the level to Info for timeline narration.
//
// Two-layer gating:
//  * NEZHA_LOG_MIN_LEVEL — a compile-time floor. The level check against it
//    is a constant expression at call sites with a constant level, so a
//    Release build configured with -DNEZHA_LOG_MIN_LEVEL=1 strips every
//    NEZHA_LOG_DEBUG (including its message-building argument) from the
//    datapath entirely.
//  * log_level() — the usual runtime threshold on top of the floor.
//
// Sim-time tagging: a running EventLoop registers itself as the log time
// source, so messages emitted from inside the simulation carry the virtual
// timestamp ("[INFO @1.500ms] ..."); messages from outside carry none.
#pragma once

#include <cstdio>
#include <string>

/// Compile-time log floor: statements below this level compile to nothing.
/// Levels: 0 = Debug, 1 = Info, 2 = Warn, 3 = Error, 4 = Off.
#ifndef NEZHA_LOG_MIN_LEVEL
#define NEZHA_LOG_MIN_LEVEL 0
#endif

namespace nezha::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Virtual-clock hook: when registered, log_message prefixes the current
/// simulated time. The EventLoop installs itself here while running (and
/// restores the previous source on exit, so nested loops behave).
struct LogTimeSource {
  using Fn = long long (*)(void* ctx);  // returns current time in ns
  Fn fn = nullptr;
  void* ctx = nullptr;
};
LogTimeSource log_time_source();
void set_log_time_source(LogTimeSource src);

void log_message(LogLevel level, const std::string& msg);

#define NEZHA_LOG(level, msg)                                      \
  do {                                                             \
    if (static_cast<int>(level) >= NEZHA_LOG_MIN_LEVEL &&          \
        static_cast<int>(level) >=                                 \
            static_cast<int>(::nezha::common::log_level())) {      \
      ::nezha::common::log_message((level), (msg));                \
    }                                                              \
  } while (0)

#define NEZHA_LOG_INFO(msg) NEZHA_LOG(::nezha::common::LogLevel::kInfo, msg)
#define NEZHA_LOG_WARN(msg) NEZHA_LOG(::nezha::common::LogLevel::kWarn, msg)
#define NEZHA_LOG_DEBUG(msg) NEZHA_LOG(::nezha::common::LogLevel::kDebug, msg)

}  // namespace nezha::common
