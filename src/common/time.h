// Simulated-time primitives.
//
// All simulator time is virtual and expressed as integer nanoseconds to keep
// event ordering exact and runs reproducible. We deliberately do not use
// std::chrono clocks anywhere in the simulation core: wall-clock time never
// influences results.
#pragma once

#include <cstdint>
#include <string>

namespace nezha::common {

/// Duration in virtual nanoseconds. Signed so that differences are safe.
using Duration = std::int64_t;

/// Absolute virtual time in nanoseconds since simulation start.
using TimePoint = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }

/// Converts a duration to fractional seconds (for reporting only).
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a duration to fractional milliseconds (for reporting only).
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Converts a duration to fractional microseconds (for reporting only).
constexpr double to_micros(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Converts fractional seconds to a duration, rounding to nearest ns.
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond) + 0.5);
}

/// Human-readable rendering, e.g. "1.500ms", "2.000s", used in logs/benches.
std::string format_duration(Duration d);

}  // namespace nezha::common
