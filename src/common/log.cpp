#include "src/common/log.h"

#include "src/common/time.h"

namespace nezha::common {
namespace {
LogLevel g_level = LogLevel::kOff;
// Thread-local: each sharded-engine worker installs its own shard loop as
// the time source while running (EventLoop's LogTimeScope); single-thread
// behavior is unchanged.
thread_local LogTimeSource g_time_source{};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

LogTimeSource log_time_source() { return g_time_source; }
void set_log_time_source(LogTimeSource src) { g_time_source = src; }

void log_message(LogLevel level, const std::string& msg) {
  if (g_time_source.fn != nullptr) {
    const long long t_ns = g_time_source.fn(g_time_source.ctx);
    std::fprintf(stderr, "[%s @%s] %s\n", level_name(level),
                 format_duration(t_ns).c_str(), msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
  }
}

}  // namespace nezha::common
