#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nezha::common {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

void Summary::reset() { *this = Summary{}; }

double Summary::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Percentiles::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Percentiles::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double Percentiles::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (!(hi > lo) || buckets == 0) {
    throw std::invalid_argument("Histogram requires hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    ++counts_[idx];
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::cdf_at(std::size_t i) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = underflow_;
  for (std::size_t k = 0; k <= i && k < counts_.size(); ++k) below += counts_[k];
  return static_cast<double>(below) / static_cast<double>(total_);
}

void Counter::register_ids(std::span<const std::string_view> names) {
  id_names_ = names;
  id_counts_.assign(names.size(), 0);
}

namespace {
/// Key-ordered position of `key` in a key-sorted entry vector.
auto entry_lower_bound(std::vector<std::pair<std::string, std::uint64_t>>& v,
                       const std::string& key) {
  return std::lower_bound(
      v.begin(), v.end(), key,
      [](const auto& e, const std::string& k) { return e.first < k; });
}
}  // namespace

void Counter::inc(const std::string& key, std::uint64_t by) {
  auto it = entry_lower_bound(entries_, key);
  if (it != entries_.end() && it->first == key) {
    it->second += by;
    return;
  }
  entries_.emplace(it, key, by);
}

std::uint64_t Counter::get(const std::string& key) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < id_names_.size(); ++i) {
    if (id_names_[i] == key) total += id_counts_[i];
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& e, const std::string& k) { return e.first < k; });
  if (it != entries_.end() && it->first == key) total += it->second;
  return total;
}

const std::vector<std::pair<std::string, std::uint64_t>> Counter::sorted()
    const {
  auto copy = entries_;
  for (std::size_t i = 0; i < id_names_.size(); ++i) {
    if (id_counts_[i] == 0) continue;
    bool merged = false;
    for (auto& [k, v] : copy) {
      if (k == id_names_[i]) {
        v += id_counts_[i];
        merged = true;
        break;
      }
    }
    if (!merged) copy.emplace_back(std::string(id_names_[i]), id_counts_[i]);
  }
  std::sort(copy.begin(), copy.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return copy;
}

}  // namespace nezha::common
