#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nezha::common {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

void Summary::reset() { *this = Summary{}; }

double Summary::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Percentiles::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

Percentiles Percentiles::bounded(double lo, double hi, std::size_t buckets) {
  Percentiles p;
  p.hist_.emplace(lo, hi, buckets);
  return p;
}

void Percentiles::add(double x) {
  if (hist_) {
    if (hist_->total() == 0) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    sum_ += x;
    hist_->add(x);
    return;
  }
  samples_.push_back(x);
  sorted_ = false;
}

std::size_t Percentiles::count() const {
  return hist_ ? static_cast<std::size_t>(hist_->total()) : samples_.size();
}

void Percentiles::convert_to_bounded(double lo, double hi,
                                     std::size_t buckets) {
  std::vector<double> old = std::move(samples_);
  samples_.clear();
  sorted_ = false;
  hist_.emplace(lo, hi, buckets);
  sum_ = 0.0;
  min_ = max_ = 0.0;
  for (double x : old) add(x);
}

void Percentiles::merge(const Percentiles& other) {
  if (other.empty()) {
    // Still adopt the source's backend so merge(a, b) has a mode
    // independent of which operands were empty.
    if (other.hist_ && !hist_) {
      convert_to_bounded(other.hist_->lo(), other.hist_->hi(),
                         other.hist_->bucket_count());
    }
    return;
  }
  if (!hist_ && other.hist_) {
    convert_to_bounded(other.hist_->lo(), other.hist_->hi(),
                       other.hist_->bucket_count());
  }
  if (hist_) {
    if (other.hist_) {
      const bool was_empty = hist_->total() == 0;
      hist_->merge(*other.hist_);  // throws on shape mismatch
      sum_ += other.sum_;
      if (was_empty) {
        min_ = other.min_;
        max_ = other.max_;
      } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
      }
    } else {
      for (double x : other.samples_) add(x);
    }
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double Percentiles::percentile(double p) const {
  if (hist_) {
    if (hist_->total() == 0) return 0.0;
    if (p <= 0.0) return min_;
    if (p >= 100.0) return max_;
    return std::clamp(hist_->quantile(p), min_, max_);
  }
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double Percentiles::mean() const {
  if (hist_) {
    return hist_->total() == 0
               ? 0.0
               : sum_ / static_cast<double>(hist_->total());
  }
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void Percentiles::clear() {
  samples_.clear();
  sorted_ = false;
  if (hist_) hist_->clear();
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (!(hi > lo) || buckets == 0) {
    throw std::invalid_argument("Histogram requires hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    ++counts_[idx];
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::cdf_at(std::size_t i) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = underflow_;
  for (std::size_t k = 0; k <= i && k < counts_.size(); ++k) below += counts_[k];
  return static_cast<double>(below) / static_cast<double>(total_);
}

double Histogram::quantile(double p) const {
  if (total_ == 0) return 0.0;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total_);
  double below = static_cast<double>(underflow_);
  if (target <= below) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto mass = static_cast<double>(counts_[i]);
    if (below + mass >= target && mass > 0.0) {
      const double frac = (target - below) / mass;
      return bucket_lo(i) + frac * width_;
    }
    below += mass;
  }
  return hi_;  // target lands in the overflow bucket
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = 0;
  overflow_ = 0;
  total_ = 0;
}

void Counter::register_ids(std::span<const std::string_view> names) {
  id_names_ = names;
  id_counts_.assign(names.size(), 0);
}

namespace {
/// Key-ordered position of `key` in a key-sorted entry vector.
auto entry_lower_bound(std::vector<std::pair<std::string, std::uint64_t>>& v,
                       const std::string& key) {
  return std::lower_bound(
      v.begin(), v.end(), key,
      [](const auto& e, const std::string& k) { return e.first < k; });
}
}  // namespace

void Counter::inc(const std::string& key, std::uint64_t by) {
  auto it = entry_lower_bound(entries_, key);
  if (it != entries_.end() && it->first == key) {
    it->second += by;
    return;
  }
  entries_.emplace(it, key, by);
}

std::uint64_t Counter::get(const std::string& key) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < id_names_.size(); ++i) {
    if (id_names_[i] == key) total += id_counts_[i];
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& e, const std::string& k) { return e.first < k; });
  if (it != entries_.end() && it->first == key) total += it->second;
  return total;
}

const std::vector<std::pair<std::string, std::uint64_t>> Counter::sorted()
    const {
  auto copy = entries_;
  for (std::size_t i = 0; i < id_names_.size(); ++i) {
    if (id_counts_[i] == 0) continue;
    bool merged = false;
    for (auto& [k, v] : copy) {
      if (k == id_names_[i]) {
        v += id_counts_[i];
        merged = true;
        break;
      }
    }
    if (!merged) copy.emplace_back(std::string(id_names_[i]), id_counts_[i]);
  }
  std::sort(copy.begin(), copy.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return copy;
}

}  // namespace nezha::common
