#include "src/common/time.h"

#include <cstdio>

namespace nezha::common {

std::string format_duration(Duration d) {
  char buf[64];
  const bool neg = d < 0;
  const std::int64_t abs = neg ? -d : d;
  const char* sign = neg ? "-" : "";
  if (abs >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", sign,
                  static_cast<double>(abs) / kSecond);
  } else if (abs >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fms", sign,
                  static_cast<double>(abs) / kMillisecond);
  } else if (abs >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fus", sign,
                  static_cast<double>(abs) / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%ldns", sign,
                  static_cast<long>(abs));
  }
  return buf;
}

}  // namespace nezha::common
