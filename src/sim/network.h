// The underlay network: registers nodes, routes packets by underlay IP,
// models per-port serialization (link bandwidth) plus fabric latency, and
// injects node crashes for failover experiments.
//
// Under a Clos topology (Topology::is_clos()), cross-leaf packets also
// traverse two contended fabric links — the leaf→spine uplink and the
// spine→leaf downlink of the ECMP-selected spine — each with finite
// bandwidth and a tail-drop queue, so offload traffic genuinely competes
// for spine capacity.
//
// Datapath memory model: a packet in flight lives in a pooled slab record
// (InFlight) addressed by a small slot index, and the scheduled completion
// captures only {this, slot} — small enough for std::function's inline
// buffer, so forwarding a packet performs no heap allocation. All per-packet
// lookups are dense-vector indexed: nodes/ports/crash bits by NodeId, fabric
// links by a precomputed (leaf, spine, direction) index, and the IP→node map
// is a flat open-addressed probe table.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/sim/event_loop.h"
#include "src/sim/node.h"
#include "src/sim/shard.h"
#include "src/sim/topology.h"

namespace nezha::telemetry {
class Hub;
}

namespace nezha::sim {

struct NetworkConfig {
  /// Per-server NIC port rate in bits per second (2x100G in the paper's
  /// testbed; a single logical 100G port suffices for the load model).
  double link_bps = 100e9;
  /// Egress queue capacity in bytes; beyond this, packets are tail-dropped.
  std::size_t egress_queue_bytes = 4 * 1024 * 1024;
  /// Clos only: per-direction leaf↔spine link rate. 0 derives it from the
  /// topology as link_bps * hosts_per_leaf / (num_spines * oversubscription),
  /// i.e. a leaf's host-facing capacity divided across its uplinks.
  double fabric_link_bps = 0;
  /// Clos only: tail-drop queue capacity per fabric link.
  std::size_t fabric_queue_bytes = 8 * 1024 * 1024;
  /// Clos only: seed mixed into ECMP spine selection so benches can explore
  /// different (deterministic) path placements.
  std::uint64_t ecmp_seed = 0x636c6f73;  // "clos"
  /// Burst delivery (DESIGN.md §11): when > 0, per-node deliveries are
  /// quantized up to the next multiple of this window and drained in one
  /// event per (node, window) — arrival order, at most kRxBurst packets per
  /// event — instead of one event per packet. Changes packet timing (each
  /// hop completes at the window boundary at or after its true arrival), so
  /// default 0 keeps unit-test timing exact; throughput benches opt in.
  common::Duration rx_burst_window = 0;
};

class Network {
 public:
  /// Max packets handed to a node per burst-drain event; a window holding
  /// more drains in several same-timestamp events that preserve arrival
  /// order (mirrors a NIC RX-burst cap).
  static constexpr std::size_t kRxBurst = 32;

  Network(EventLoop& loop, Topology topology, NetworkConfig config = {});

  EventLoop& loop() { return loop_; }
  const Topology& topology() const { return topology_; }

  /// Registers a node; the network does not take ownership.
  void attach(Node& node);
  void detach(NodeId id);

  Node* find_by_ip(net::Ipv4Addr ip) const;
  Node* find_by_id(NodeId id) const {
    return id < nodes_.size() ? nodes_[id] : nullptr;
  }

  /// Sends pkt from `from` to the node owning `to_ip`. The packet first
  /// waits in the sender's egress queue (serialization at link_bps), then
  /// crosses the fabric (topology latency; on Clos, also two contended
  /// fabric links), then is delivered — unless the destination is unknown,
  /// crashed, or a queue overflows.
  void send(NodeId from, net::Ipv4Addr to_ip, net::Packet pkt);

  /// Sharded-engine hookup (DESIGN.md §13). With a router set, a send()
  /// whose destination IP is not attached locally is resolved fleet-wide:
  /// the source shard models sender-port serialization (and, on Clos, the
  /// leaf→spine uplink it owns), then exports a ShardToken to the owning
  /// shard instead of scheduling a local delivery.
  void set_shard_router(ShardRouter* router, std::uint32_t shard_id) {
    router_ = router;
    shard_id_ = shard_id;
  }
  std::uint32_t shard_id() const { return shard_id_; }

  /// Injects a token exported by another shard (engine-only; called at
  /// epoch boundaries with every worker quiescent). Completes the fabric
  /// path: schedules delivery at tok.at (kArrival) or queues the
  /// spine→leaf downlink first (kAtSpine).
  void inject_token(ShardToken tok);

  /// Fault injection: a crashed node neither sends nor receives.
  void crash(NodeId id);
  void heal(NodeId id);
  bool crashed(NodeId id) const {
    return id < crashed_.size() && crashed_[id] != 0;
  }

  /// Link-level fault injection: drops all traffic between a and b (both
  /// directions) while both nodes stay healthy — the §C.1 scenario where
  /// the centralized monitor still sees an FE as alive but the FE-BE path
  /// is gone.
  void partition(NodeId a, NodeId b);
  void heal_partition(NodeId a, NodeId b);
  bool partitioned(NodeId a, NodeId b) const;
  std::uint64_t dropped_partitioned() const { return dropped_partitioned_; }

  // --- observability ---
  /// Total send() attempts; the conservation identity
  ///   sent() + imported() ==
  ///       delivered() + dropped_total() + in_flight() + exported()
  /// holds after every event (checked by core::InvariantChecker). Without
  /// a shard router exported/imported stay 0 and this reduces to the
  /// classic sent == delivered + dropped + in_flight.
  std::uint64_t sent() const { return sent_; }
  /// Packets handed off to another shard as tokens (cross-shard sends).
  std::uint64_t exported() const { return exported_; }
  /// Tokens received from other shards and scheduled locally.
  std::uint64_t imported() const { return imported_; }
  /// Packets scheduled into the fabric and not yet delivered or dropped.
  std::uint64_t in_flight() const { return in_flight_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped_no_route() const { return dropped_no_route_; }
  std::uint64_t dropped_crashed() const { return dropped_crashed_; }
  std::uint64_t dropped_queue_full() const { return dropped_queue_full_; }
  /// Clos only: tail drops on leaf↔spine fabric links.
  std::uint64_t dropped_fabric() const { return dropped_fabric_; }
  std::uint64_t dropped_total() const {
    return dropped_no_route_ + dropped_crashed_ + dropped_queue_full_ +
           dropped_partitioned_ + dropped_fabric_;
  }
  std::uint64_t total_bytes_sent() const { return total_bytes_; }
  /// Clos only: bytes carried per spine (ECMP balance observability).
  const std::vector<std::uint64_t>& spine_bytes() const { return spine_bytes_; }
  /// Effective per-direction fabric link rate (0 when not Clos).
  double fabric_link_bps() const { return fabric_link_bps_; }

  using TraceFn = std::function<void(common::TimePoint, const net::Packet&,
                                     NodeId from, NodeId to)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  /// Telemetry hook (null = off). The hub records enqueue/deliver/drop
  /// events and stamps packet ids at the send edge.
  void set_telemetry(telemetry::Hub* hub) { telemetry_ = hub; }

  /// Queue-depth observability for telemetry gauges.
  std::size_t port_queued_bytes(NodeId id) const {
    return id < ports_.size() ? ports_[id].queued_bytes : 0;
  }
  std::size_t fabric_link_count() const { return fabric_links_.size(); }
  std::size_t fabric_queued_bytes(std::size_t i) const {
    return i < fabric_links_.size() ? fabric_links_[i].queued_bytes : 0;
  }
  std::uint32_t num_spines() const { return num_spines_; }

 private:
  struct Port {
    // Virtual time at which the egress link becomes free.
    common::TimePoint busy_until = 0;
    std::size_t queued_bytes = 0;
  };

  /// What a scheduled completion does with its in-flight record.
  enum class HopKind : std::uint8_t {
    kDeliver = 0,          // hand the packet to the destination node
    kFabricDrop = 1,       // tail-dropped on a Clos fabric link
  };

  /// Pooled record for one packet between send() and its completion event.
  /// up_link / down_link are fabric-link indices to drain on completion
  /// (-1 = not queued on that link).
  struct InFlight {
    net::Packet pkt;
    NodeId from = 0;
    NodeId to = 0;
    std::uint32_t bytes = 0;
    std::int32_t up_link = -1;
    std::int32_t down_link = -1;
    HopKind kind = HopKind::kDeliver;
    /// Injected from another shard: `from` is a remote node, so completion
    /// must not drain this shard's port accounting for it (the source
    /// shard drains its own port at the handoff time).
    std::uint8_t imported = 0;
  };

  /// Cross-leaf Clos path: queue through the ECMP-selected uplink/downlink
  /// pair after sender-port serialization completes at tx_done.
  void send_clos(NodeId from, NodeId to, std::size_t bytes,
                 common::TimePoint tx_done, net::Packet pkt);

  /// Cross-shard path: serialize on the sender port (and the local Clos
  /// uplink), then export a token to the destination's shard.
  void send_remote(NodeId from, const ShardRouter::Remote& rem,
                   net::Packet pkt);

  /// Deferred queue-byte drains for exported packets (the completion that
  /// would normally drain them runs on another shard). arg packs
  /// (bytes << 32 | index).
  static std::uint64_t pack_drain(std::size_t bytes, std::uint32_t idx) {
    return (static_cast<std::uint64_t>(bytes) << 32) | idx;
  }
  void drain_port(std::uint64_t bytes, std::uint32_t node) {
    if (node < ports_.size() && ports_[node].queued_bytes >= bytes) {
      ports_[node].queued_bytes -= static_cast<std::size_t>(bytes);
    }
  }
  void drain_fabric(std::uint64_t bytes, std::uint32_t link) {
    if (link < fabric_links_.size() &&
        fabric_links_[link].queued_bytes >= bytes) {
      fabric_links_[link].queued_bytes -= static_cast<std::size_t>(bytes);
    }
  }
  static void drain_port_thunk(void* self, std::uint64_t arg) {
    static_cast<Network*>(self)->drain_port(arg >> 32,
                                            static_cast<std::uint32_t>(arg));
  }
  static void drain_fabric_thunk(void* self, std::uint64_t arg) {
    static_cast<Network*>(self)->drain_fabric(
        arg >> 32, static_cast<std::uint32_t>(arg));
  }

  /// One per-node batch of deliveries sharing a quantized window timestamp.
  /// Buckets are pooled (slots vectors keep their capacity across reuse) so
  /// steady-state burst delivery allocates nothing.
  struct RxBucket {
    common::TimePoint at = 0;
    NodeId node = 0;
    std::uint32_t drained = 0;  // next index in `slots` to deliver
    std::vector<std::uint32_t> slots;
  };

  std::uint32_t alloc_slot();
  void complete(std::uint32_t slot);
  /// Schedules the completion for `slot` at `arrival`: a per-packet event
  /// (exact mode) or membership in the destination's window bucket (burst
  /// mode, rx_burst_window > 0).
  void schedule_delivery(common::TimePoint arrival, std::uint32_t slot);
  /// Completion accounting shared by both modes: frees the slot, drains
  /// queue-byte accounting, and classifies the hop. Returns true when the
  /// packet survives to delivery (moved into *pkt_out).
  bool finish_hop(std::uint32_t slot, net::Packet* pkt_out, NodeId* from_out,
                  std::uint32_t* bytes_out);
  void rx_drain(std::uint32_t bucket);
  static void rx_drain_thunk(void* self, std::uint64_t bucket) {
    static_cast<Network*>(self)->rx_drain(static_cast<std::uint32_t>(bucket));
  }
  /// The single delivery tap: every completed hop — point-to-point and Clos
  /// fast path alike — funnels through here before the destination's
  /// receive(), so pcap capture and telemetry see identical traffic.
  void deliver_tap(const net::Packet& pkt, NodeId from, NodeId to,
                   std::uint32_t bytes);
  void record_drop(const net::Packet& pkt, NodeId node, std::uint64_t peer,
                   std::uint8_t reason, std::uint32_t bytes);
  /// EventLoop raw-callback shim for the per-hop delivery events — the
  /// hottest schedule site in the simulator; avoids a std::function per hop.
  static void complete_thunk(void* self, std::uint64_t slot) {
    static_cast<Network*>(self)->complete(static_cast<std::uint32_t>(slot));
  }
  void rebuild_ip_table();
  void ip_insert(std::uint32_t ip, Node* node);

  /// Directed fabric link index: appending leaves as higher NodeIds appear
  /// never renumbers existing links (spine count is fixed per topology).
  std::uint32_t fabric_index(bool down, std::uint32_t leaf,
                             std::uint32_t spine) const {
    return (leaf * num_spines_ + spine) * 2 + (down ? 1 : 0);
  }

  static std::uint64_t pair_key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  EventLoop& loop_;
  Topology topology_;
  NetworkConfig config_;
  double fabric_link_bps_ = 0;
  std::uint32_t num_spines_ = 1;

  // Dense per-node state, indexed by NodeId (ids are small and sequential).
  std::vector<Node*> nodes_;
  std::vector<Port> ports_;
  std::vector<std::uint8_t> crashed_;

  // Flat open-addressed IP→node probe table (key 0 = empty slot; a node
  // with underlay IP 0.0.0.0 gets the dedicated side slot).
  std::vector<std::pair<std::uint32_t, Node*>> ip_slots_;
  std::size_t ip_count_ = 0;
  Node* ip_zero_node_ = nullptr;

  // Directed Clos fabric links, indexed by fabric_index().
  std::vector<Port> fabric_links_;

  // Partitions are rare and few; a tiny pair-key vector beats a hash set.
  std::vector<std::uint64_t> partition_pairs_;

  // In-flight packet slab + free list (free list capacity tracks the slab,
  // so completion-side push_back never reallocates).
  std::vector<InFlight> slab_;
  std::vector<std::uint32_t> free_slots_;

  // Burst-mode delivery buckets: a pooled bucket slab, its free list, and
  // per-node lists of active bucket ids (at most a handful per node — one
  // per distinct pending window).
  std::vector<RxBucket> rx_buckets_;
  std::vector<std::uint32_t> rx_free_;
  std::vector<std::vector<std::uint32_t>> rx_active_;

  TraceFn trace_;
  telemetry::Hub* telemetry_ = nullptr;
  ShardRouter* router_ = nullptr;
  std::uint32_t shard_id_ = 0;

  std::uint64_t sent_ = 0;
  std::uint64_t exported_ = 0;
  std::uint64_t imported_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_no_route_ = 0;
  std::uint64_t dropped_crashed_ = 0;
  std::uint64_t dropped_queue_full_ = 0;
  std::uint64_t dropped_partitioned_ = 0;
  std::uint64_t dropped_fabric_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::vector<std::uint64_t> spine_bytes_;
};

}  // namespace nezha::sim
