// The underlay network: registers nodes, routes packets by underlay IP,
// models per-port serialization (link bandwidth) plus fabric latency, and
// injects node crashes for failover experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/sim/event_loop.h"
#include "src/sim/node.h"
#include "src/sim/topology.h"

namespace nezha::sim {

struct NetworkConfig {
  /// Per-server NIC port rate in bits per second (2x100G in the paper's
  /// testbed; a single logical 100G port suffices for the load model).
  double link_bps = 100e9;
  /// Egress queue capacity in bytes; beyond this, packets are tail-dropped.
  std::size_t egress_queue_bytes = 4 * 1024 * 1024;
};

class Network {
 public:
  Network(EventLoop& loop, Topology topology, NetworkConfig config = {});

  EventLoop& loop() { return loop_; }
  const Topology& topology() const { return topology_; }

  /// Registers a node; the network does not take ownership.
  void attach(Node& node);
  void detach(NodeId id);

  Node* find_by_ip(net::Ipv4Addr ip) const;
  Node* find_by_id(NodeId id) const;

  /// Sends pkt from `from` to the node owning `to_ip`. The packet first
  /// waits in the sender's egress queue (serialization at link_bps), then
  /// crosses the fabric (topology latency), then is delivered — unless the
  /// destination is unknown, crashed, or the egress queue overflows.
  void send(NodeId from, net::Ipv4Addr to_ip, net::Packet pkt);

  /// Fault injection: a crashed node neither sends nor receives.
  void crash(NodeId id);
  void heal(NodeId id);
  bool crashed(NodeId id) const { return crashed_.contains(id); }

  /// Link-level fault injection: drops all traffic between a and b (both
  /// directions) while both nodes stay healthy — the §C.1 scenario where
  /// the centralized monitor still sees an FE as alive but the FE-BE path
  /// is gone.
  void partition(NodeId a, NodeId b);
  void heal_partition(NodeId a, NodeId b);
  bool partitioned(NodeId a, NodeId b) const;
  std::uint64_t dropped_partitioned() const { return dropped_partitioned_; }

  // --- observability ---
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped_no_route() const { return dropped_no_route_; }
  std::uint64_t dropped_crashed() const { return dropped_crashed_; }
  std::uint64_t dropped_queue_full() const { return dropped_queue_full_; }
  std::uint64_t total_bytes_sent() const { return total_bytes_; }

  using TraceFn = std::function<void(common::TimePoint, const net::Packet&,
                                     NodeId from, NodeId to)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

 private:
  struct Port {
    // Virtual time at which the egress link becomes free.
    common::TimePoint busy_until = 0;
    std::size_t queued_bytes = 0;
  };

  EventLoop& loop_;
  Topology topology_;
  NetworkConfig config_;
  std::unordered_map<NodeId, Node*> nodes_;
  std::unordered_map<std::uint32_t, Node*> by_ip_;
  static std::uint64_t pair_key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::unordered_map<NodeId, Port> ports_;
  std::unordered_set<NodeId> crashed_;
  std::unordered_set<std::uint64_t> partitions_;
  TraceFn trace_;

  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_no_route_ = 0;
  std::uint64_t dropped_crashed_ = 0;
  std::uint64_t dropped_queue_full_ = 0;
  std::uint64_t dropped_partitioned_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace nezha::sim
