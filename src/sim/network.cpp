#include "src/sim/network.h"

#include <algorithm>
#include <utility>

#include "src/net/five_tuple.h"
#include "src/telemetry/hub.h"

namespace nezha::sim {

namespace {
/// Connection identity for trace events: the canonical inner 5-tuple hash
/// (seed 0), identical for both directions of a flow.
std::uint64_t trace_flow(const net::Packet& pkt) {
  return net::flow_hash(pkt.inner.ft.canonical(), 0);
}
}  // namespace

Network::Network(EventLoop& loop, Topology topology, NetworkConfig config)
    : loop_(loop), topology_(topology), config_(config) {
  if (topology_.is_clos()) {
    const ClosConfig& clos = topology_.config().clos;
    num_spines_ = clos.num_spines == 0 ? 1 : clos.num_spines;
    spine_bytes_.assign(num_spines_, 0);
    if (config_.fabric_link_bps > 0) {
      fabric_link_bps_ = config_.fabric_link_bps;
    } else {
      // A leaf's host-facing capacity, divided across its uplinks and scaled
      // down by the oversubscription ratio.
      const double spines = clos.num_spines == 0 ? 1.0 : clos.num_spines;
      const double oversub =
          clos.oversubscription > 0 ? clos.oversubscription : 1.0;
      fabric_link_bps_ =
          config_.link_bps * clos.hosts_per_leaf / (spines * oversub);
    }
    fabric_links_.resize(2 * num_spines_ * clos.num_leaves);
  }
  ip_slots_.assign(64, {0, nullptr});
}

void Network::ip_insert(std::uint32_t ip, Node* node) {
  if (ip == 0) {
    if (ip_zero_node_ == nullptr) ++ip_count_;
    ip_zero_node_ = node;
    return;
  }
  const std::size_t mask = ip_slots_.size() - 1;
  std::size_t i = (ip * 2654435761u) & mask;
  while (ip_slots_[i].first != 0) {
    if (ip_slots_[i].first == ip) {
      ip_slots_[i].second = node;
      return;
    }
    i = (i + 1) & mask;
  }
  ip_slots_[i] = {ip, node};
  ++ip_count_;
}

void Network::rebuild_ip_table() {
  std::size_t cap = ip_slots_.size();
  while (cap < 2 * (ip_count_ + 1)) cap *= 2;
  ip_slots_.assign(cap, {0, nullptr});
  ip_count_ = 0;
  ip_zero_node_ = nullptr;
  for (Node* node : nodes_) {
    if (node != nullptr) ip_insert(node->underlay_ip().value(), node);
  }
}

Node* Network::find_by_ip(net::Ipv4Addr ip) const {
  const std::uint32_t key = ip.value();
  if (key == 0) return ip_zero_node_;
  const std::size_t mask = ip_slots_.size() - 1;
  std::size_t i = (key * 2654435761u) & mask;
  while (ip_slots_[i].first != 0) {
    if (ip_slots_[i].first == key) return ip_slots_[i].second;
    i = (i + 1) & mask;
  }
  return nullptr;
}

void Network::attach(Node& node) {
  const NodeId id = node.id();
  if (id >= nodes_.size()) {
    nodes_.resize(id + 1, nullptr);
    ports_.resize(id + 1);
    crashed_.resize(id + 1, 0);
  }
  nodes_[id] = &node;
  ports_[id] = Port{};
  // Probe-table growth keeps the load factor ≤ 1/2.
  if (2 * (ip_count_ + 1) > ip_slots_.size()) {
    rebuild_ip_table();
  }
  ip_insert(node.underlay_ip().value(), &node);
}

void Network::detach(NodeId id) {
  if (id >= nodes_.size() || nodes_[id] == nullptr) return;
  nodes_[id] = nullptr;
  ports_[id] = Port{};
  crashed_[id] = 0;
  rebuild_ip_table();
}

std::uint32_t Network::alloc_slot() {
  if (free_slots_.empty()) {
    slab_.emplace_back();
    free_slots_.reserve(slab_.capacity());
    return static_cast<std::uint32_t>(slab_.size() - 1);
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

bool Network::finish_hop(std::uint32_t slot, net::Packet* pkt_out,
                         NodeId* from_out, std::uint32_t* bytes_out) {
  InFlight& rec = slab_[slot];
  net::Packet pkt = std::move(rec.pkt);
  const NodeId from = rec.from;
  const NodeId to = rec.to;
  const std::uint32_t bytes = rec.bytes;
  const std::int32_t up = rec.up_link;
  const std::int32_t down = rec.down_link;
  const HopKind kind = rec.kind;
  // Free before delivery: receive() may send and reuse this slot.
  free_slots_.push_back(slot);
  --in_flight_;

  const bool imported = rec.imported != 0;
  // Drain the queue accounting as the bytes leave the port / fabric links.
  // Imported packets' sender ports belong to another shard — the source
  // shard drained them at the handoff time.
  if (!imported && from < ports_.size() && ports_[from].queued_bytes >= bytes) {
    ports_[from].queued_bytes -= bytes;
  }
  if (up >= 0 && fabric_links_[up].queued_bytes >= bytes) {
    fabric_links_[up].queued_bytes -= bytes;
  }
  if (down >= 0 && fabric_links_[down].queued_bytes >= bytes) {
    fabric_links_[down].queued_bytes -= bytes;
  }

  if (kind == HopKind::kFabricDrop) {
    ++dropped_fabric_;
    record_drop(pkt, to, from,
                static_cast<std::uint8_t>(telemetry::DropReason::kFabric),
                bytes);
    return false;
  }
  if (crashed(to)) {
    ++dropped_crashed_;
    record_drop(pkt, to, from,
                static_cast<std::uint8_t>(telemetry::DropReason::kCrashed),
                bytes);
    return false;
  }
  if (find_by_id(to) == nullptr) {
    ++dropped_no_route_;
    record_drop(pkt, to, from,
                static_cast<std::uint8_t>(telemetry::DropReason::kNoRoute),
                bytes);
    return false;
  }
  *pkt_out = std::move(pkt);
  *from_out = from;
  *bytes_out = bytes;
  return true;
}

void Network::complete(std::uint32_t slot) {
  const NodeId to = slab_[slot].to;
  net::Packet pkt;
  NodeId from = 0;
  std::uint32_t bytes = 0;
  if (!finish_hop(slot, &pkt, &from, &bytes)) return;
  Node* node = find_by_id(to);
  ++delivered_;
  deliver_tap(pkt, from, to, bytes);
  node->receive(std::move(pkt));
}

void Network::schedule_delivery(common::TimePoint arrival,
                                std::uint32_t slot) {
  const common::Duration w = config_.rx_burst_window;
  if (w == 0) {
    loop_.schedule_raw_at(arrival, &Network::complete_thunk, this, slot);
    return;
  }
  // Quantize up: the hop completes at the first window boundary at or after
  // its true arrival. `arrival` is strictly in the future (serialization
  // time is positive), so a bucket opened here never lands at `now` — a
  // drain in progress cannot have its bucket mutated underneath it.
  const common::TimePoint at = (arrival + w - 1) / w * w;
  const NodeId to = slab_[slot].to;
  if (to >= rx_active_.size()) rx_active_.resize(to + 1);
  for (const std::uint32_t bid : rx_active_[to]) {
    if (rx_buckets_[bid].at == at) {
      rx_buckets_[bid].slots.push_back(slot);
      return;
    }
  }
  std::uint32_t bid;
  if (rx_free_.empty()) {
    bid = static_cast<std::uint32_t>(rx_buckets_.size());
    rx_buckets_.emplace_back();
  } else {
    bid = rx_free_.back();
    rx_free_.pop_back();
  }
  RxBucket& b = rx_buckets_[bid];
  b.at = at;
  b.node = to;
  b.drained = 0;
  b.slots.push_back(slot);
  rx_active_[to].push_back(bid);
  loop_.schedule_raw_at(at, &Network::rx_drain_thunk, this, bid);
}

void Network::rx_drain(std::uint32_t bucket) {
  std::uint32_t chunk[kRxBurst];
  std::size_t n = 0;
  {
    RxBucket& b = rx_buckets_[bucket];
    while (n < kRxBurst && b.drained < b.slots.size()) {
      chunk[n++] = b.slots[b.drained++];
    }
    if (b.drained < b.slots.size()) {
      // Over a burst's worth in this window: the remainder drains in
      // follow-up events at the same timestamp, preserving arrival order.
      loop_.schedule_raw_at(b.at, &Network::rx_drain_thunk, this, bucket);
    } else {
      auto& active = rx_active_[b.node];
      active.erase(std::find(active.begin(), active.end(), bucket));
      b.slots.clear();  // keeps capacity for the pooled reuse
      rx_free_.push_back(bucket);
    }
  }
  // Phase 1: completion accounting per hop; survivors form the burst. Every
  // packet in a bucket shares the destination node.
  net::Packet pkts[kRxBurst];
  NodeId froms[kRxBurst];
  std::uint32_t bytes[kRxBurst];
  NodeId to = 0;
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    to = slab_[chunk[i]].to;
    if (finish_hop(chunk[i], &pkts[m], &froms[m], &bytes[m])) ++m;
  }
  if (m == 0) return;
  // Phase 2: taps + counters, then one burst handoff to the node.
  Node* node = find_by_id(to);
  for (std::size_t i = 0; i < m; ++i) {
    ++delivered_;
    deliver_tap(pkts[i], froms[i], to, bytes[i]);
  }
  node->receive_burst(pkts, m);
}

void Network::deliver_tap(const net::Packet& pkt, NodeId from, NodeId to,
                          std::uint32_t bytes) {
  if (trace_) trace_(loop_.now(), pkt, from, to);
  if (telemetry_ != nullptr) {
    telemetry::TraceEvent e;
    e.at = loop_.now();
    e.packet_id = pkt.id;
    e.flow = trace_flow(pkt);
    e.a = from;
    e.b = bytes;
    e.node = to;
    e.kind = telemetry::EventKind::kPktDeliver;
    telemetry_->record(e);
  }
}

void Network::record_drop(const net::Packet& pkt, NodeId node,
                          std::uint64_t peer, std::uint8_t reason,
                          std::uint32_t bytes) {
  if (telemetry_ == nullptr) return;
  telemetry::TraceEvent e;
  e.at = loop_.now();
  e.packet_id = pkt.id;
  e.flow = trace_flow(pkt);
  e.a = peer;
  e.b = bytes;
  e.node = node;
  e.kind = telemetry::EventKind::kPktDrop;
  e.detail = reason;
  telemetry_->record(e);
}

void Network::send(NodeId from, net::Ipv4Addr to_ip, net::Packet pkt) {
  ++sent_;
  if (telemetry_ != nullptr) telemetry_->stamp(pkt);
  if (crashed(from)) {
    ++dropped_crashed_;
    record_drop(pkt, from, to_ip.value(),
                static_cast<std::uint8_t>(telemetry::DropReason::kCrashed),
                static_cast<std::uint32_t>(pkt.wire_size()));
    return;
  }
  Node* dst = find_by_ip(to_ip);
  if (dst == nullptr) {
    if (router_ != nullptr) {
      const ShardRouter::Remote* rem = router_->lookup_remote(to_ip);
      if (rem != nullptr && rem->shard != shard_id_) {
        send_remote(from, *rem, std::move(pkt));
        return;
      }
    }
    ++dropped_no_route_;
    record_drop(pkt, from, to_ip.value(),
                static_cast<std::uint8_t>(telemetry::DropReason::kNoRoute),
                static_cast<std::uint32_t>(pkt.wire_size()));
    return;
  }
  if (partitioned(from, dst->id())) {
    ++dropped_partitioned_;
    record_drop(pkt, from, dst->id(),
                static_cast<std::uint8_t>(telemetry::DropReason::kPartitioned),
                static_cast<std::uint32_t>(pkt.wire_size()));
    return;
  }
  const std::size_t bytes = pkt.wire_size();

  // Sender-port serialization: the port transmits packets back to back at
  // link_bps. busy_until tracks when the port frees up. Off-shard control
  // senders (e.g. the link prober speaking for a remote BE) may carry ids
  // beyond the locally attached range; grow the port table for them.
  if (from >= ports_.size()) ports_.resize(from + 1);
  Port& port = ports_[from];
  const common::TimePoint now = loop_.now();
  if (port.busy_until < now) {
    port.busy_until = now;
    port.queued_bytes = 0;
  }
  if (port.queued_bytes + bytes > config_.egress_queue_bytes) {
    ++dropped_queue_full_;
    record_drop(pkt, from, dst->id(),
                static_cast<std::uint8_t>(telemetry::DropReason::kQueueFull),
                static_cast<std::uint32_t>(bytes));
    return;
  }
  const auto serialization = static_cast<common::Duration>(
      static_cast<double>(bytes) * 8.0 / config_.link_bps *
      static_cast<double>(common::kSecond));
  port.busy_until += serialization;
  port.queued_bytes += bytes;
  const common::TimePoint tx_done = port.busy_until;
  const NodeId to = dst->id();

  if (telemetry_ != nullptr) {
    telemetry::TraceEvent e;
    e.at = loop_.now();
    e.packet_id = pkt.id;
    e.flow = trace_flow(pkt);
    e.a = to;
    e.b = static_cast<std::uint32_t>(bytes);
    e.node = from;
    e.kind = telemetry::EventKind::kPktEnqueue;
    telemetry_->record(e);
  }

  if (topology_.is_clos() && !topology_.same_leaf(from, to)) {
    total_bytes_ += bytes;
    send_clos(from, to, bytes, tx_done, std::move(pkt));
    return;
  }

  const common::TimePoint arrival = tx_done + topology_.latency(from, to);
  total_bytes_ += bytes;

  ++in_flight_;
  const std::uint32_t slot = alloc_slot();
  InFlight& rec = slab_[slot];
  rec.pkt = std::move(pkt);
  rec.from = from;
  rec.to = to;
  rec.bytes = static_cast<std::uint32_t>(bytes);
  rec.up_link = -1;
  rec.down_link = -1;
  rec.kind = HopKind::kDeliver;
  rec.imported = 0;
  schedule_delivery(arrival, slot);
}

void Network::send_remote(NodeId from, const ShardRouter::Remote& rem,
                          net::Packet pkt) {
  const NodeId to = rem.node;
  if (partitioned(from, to)) {
    ++dropped_partitioned_;
    record_drop(pkt, from, to,
                static_cast<std::uint8_t>(telemetry::DropReason::kPartitioned),
                static_cast<std::uint32_t>(pkt.wire_size()));
    return;
  }
  const std::size_t bytes = pkt.wire_size();
  if (from >= ports_.size()) ports_.resize(from + 1);
  Port& port = ports_[from];
  const common::TimePoint now = loop_.now();
  if (port.busy_until < now) {
    port.busy_until = now;
    port.queued_bytes = 0;
  }
  if (port.queued_bytes + bytes > config_.egress_queue_bytes) {
    ++dropped_queue_full_;
    record_drop(pkt, from, to,
                static_cast<std::uint8_t>(telemetry::DropReason::kQueueFull),
                static_cast<std::uint32_t>(bytes));
    return;
  }
  const auto serialization = static_cast<common::Duration>(
      static_cast<double>(bytes) * 8.0 / config_.link_bps *
      static_cast<double>(common::kSecond));
  port.busy_until += serialization;
  port.queued_bytes += bytes;
  const common::TimePoint tx_done = port.busy_until;
  total_bytes_ += bytes;

  if (telemetry_ != nullptr) {
    telemetry::TraceEvent e;
    e.at = loop_.now();
    e.packet_id = pkt.id;
    e.flow = trace_flow(pkt);
    e.a = to;
    e.b = static_cast<std::uint32_t>(bytes);
    e.node = from;
    e.kind = telemetry::EventKind::kPktEnqueue;
    telemetry_->record(e);
  }

  ShardToken tok;
  tok.from = from;
  tok.to = to;
  tok.bytes = static_cast<std::uint32_t>(bytes);
  if (topology_.is_clos() && !topology_.same_leaf(from, to)) {
    // Cross-leaf Clos: this shard owns the source leaf's uplinks (shards
    // are rack-aligned, so no other shard touches them). Model the uplink
    // leg locally; hand off at the spine.
    const ClosConfig& clos = topology_.config().clos;
    const std::uint64_t entropy =
        net::flow_hash(pkt.inner.ft.canonical(), config_.ecmp_seed);
    const std::uint32_t spine = topology_.ecmp_spine(from, to, entropy);
    const std::uint32_t up_idx =
        fabric_index(false, topology_.leaf_of(from), spine);
    if (up_idx >= fabric_links_.size()) fabric_links_.resize(up_idx + 1);
    const auto fabric_ser = static_cast<common::Duration>(
        static_cast<double>(bytes) * 8.0 / fabric_link_bps_ *
        static_cast<double>(common::kSecond));
    const common::TimePoint at_leaf = tx_done + clos.host_leaf_latency;
    Port& up = fabric_links_[up_idx];
    if (up.busy_until < at_leaf) {
      up.busy_until = at_leaf;
      up.queued_bytes = 0;
    }
    if (up.queued_bytes + bytes > config_.fabric_queue_bytes) {
      // Tail-dropped on our own uplink: stays shard-local (mirrors
      // send_clos — an in-flight record carried to the drop time).
      ++in_flight_;
      const std::uint32_t slot = alloc_slot();
      InFlight& rec = slab_[slot];
      rec.pkt = std::move(pkt);
      rec.from = from;
      rec.to = to;
      rec.bytes = static_cast<std::uint32_t>(bytes);
      rec.up_link = -1;
      rec.down_link = -1;
      rec.kind = HopKind::kFabricDrop;
      rec.imported = 0;
      schedule_delivery(at_leaf, slot);
      return;
    }
    up.busy_until += fabric_ser;
    up.queued_bytes += bytes;
    const common::TimePoint at_spine = up.busy_until + clos.leaf_spine_latency;
    // The bytes leave this shard's domain at the spine; the destination
    // shard cannot reach back to drain our queues, so drain the sender
    // port and uplink accounting here.
    loop_.schedule_raw_at(at_spine, &Network::drain_port_thunk, this,
                          pack_drain(bytes, from));
    loop_.schedule_raw_at(at_spine, &Network::drain_fabric_thunk, this,
                          pack_drain(bytes, up_idx));
    tok.pkt = std::move(pkt);
    tok.at = at_spine;
    tok.spine = spine;
    tok.kind = TokenKind::kAtSpine;
  } else {
    const common::TimePoint arrival = tx_done + topology_.latency(from, to);
    loop_.schedule_raw_at(arrival, &Network::drain_port_thunk, this,
                          pack_drain(bytes, from));
    tok.pkt = std::move(pkt);
    tok.at = arrival;
    tok.kind = TokenKind::kArrival;
  }
  ++exported_;
  router_->export_token(shard_id_, rem.shard, std::move(tok));
}

void Network::inject_token(ShardToken tok) {
  ++imported_;
  ++in_flight_;
  const std::uint32_t slot = alloc_slot();
  InFlight& rec = slab_[slot];
  rec.pkt = std::move(tok.pkt);
  rec.from = tok.from;
  rec.to = tok.to;
  rec.bytes = tok.bytes;
  rec.up_link = -1;
  rec.down_link = -1;
  rec.imported = 1;
  if (tok.kind == TokenKind::kArrival) {
    rec.kind = HopKind::kDeliver;
    schedule_delivery(tok.at, slot);
    return;
  }
  // kAtSpine: finish the Clos path on the spine→leaf downlink, which this
  // shard owns (the destination leaf is one of its racks).
  const ClosConfig& clos = topology_.config().clos;
  const std::uint32_t down_idx =
      fabric_index(true, topology_.leaf_of(tok.to), tok.spine);
  if (down_idx >= fabric_links_.size()) fabric_links_.resize(down_idx + 1);
  const auto fabric_ser = static_cast<common::Duration>(
      static_cast<double>(tok.bytes) * 8.0 / fabric_link_bps_ *
      static_cast<double>(common::kSecond));
  Port& down = fabric_links_[down_idx];
  if (down.busy_until < tok.at) {
    down.busy_until = tok.at;
    down.queued_bytes = 0;
  }
  if (down.queued_bytes + tok.bytes > config_.fabric_queue_bytes) {
    rec.kind = HopKind::kFabricDrop;
    schedule_delivery(tok.at, slot);
    return;
  }
  down.busy_until += fabric_ser;
  down.queued_bytes += tok.bytes;
  rec.down_link = static_cast<std::int32_t>(down_idx);
  spine_bytes_[tok.spine] += tok.bytes;
  rec.kind = HopKind::kDeliver;
  const common::TimePoint arrival =
      down.busy_until + clos.leaf_spine_latency + clos.host_leaf_latency;
  schedule_delivery(arrival, slot);
}

void Network::send_clos(NodeId from, NodeId to, std::size_t bytes,
                        common::TimePoint tx_done, net::Packet pkt) {
  const ClosConfig& clos = topology_.config().clos;
  // ECMP on the canonical inner 5-tuple: both directions of a flow, and both
  // runs of a seeded experiment, ride the same spine.
  const std::uint64_t entropy =
      net::flow_hash(pkt.inner.ft.canonical(), config_.ecmp_seed);
  const std::uint32_t spine = topology_.ecmp_spine(from, to, entropy);
  const std::uint32_t up_idx =
      fabric_index(false, topology_.leaf_of(from), spine);
  const std::uint32_t down_idx =
      fabric_index(true, topology_.leaf_of(to), spine);
  const std::uint32_t max_idx = std::max(up_idx, down_idx);
  if (max_idx >= fabric_links_.size()) {
    // Off-grid senders (gateway/monitor nodes beyond the host grid) extend
    // the link table; fabric_index() never renumbers existing links.
    fabric_links_.resize(max_idx + 1);
  }
  const auto fabric_ser = static_cast<common::Duration>(
      static_cast<double>(bytes) * 8.0 / fabric_link_bps_ *
      static_cast<double>(common::kSecond));

  ++in_flight_;
  const std::uint32_t slot = alloc_slot();
  InFlight& rec = slab_[slot];
  rec.pkt = std::move(pkt);
  rec.from = from;
  rec.to = to;
  rec.bytes = static_cast<std::uint32_t>(bytes);
  rec.up_link = -1;
  rec.down_link = -1;
  rec.imported = 0;

  // Leaf→spine uplink: queue + serialize at the contended fabric rate.
  const common::TimePoint at_leaf = tx_done + clos.host_leaf_latency;
  Port& up = fabric_links_[up_idx];
  if (up.busy_until < at_leaf) {
    up.busy_until = at_leaf;
    up.queued_bytes = 0;
  }
  if (up.queued_bytes + bytes > config_.fabric_queue_bytes) {
    rec.kind = HopKind::kFabricDrop;
    schedule_delivery(at_leaf, slot);
    return;
  }
  up.busy_until += fabric_ser;
  up.queued_bytes += bytes;
  rec.up_link = static_cast<std::int32_t>(up_idx);
  const common::TimePoint at_spine = up.busy_until + clos.leaf_spine_latency;

  // Spine→leaf downlink.
  Port& down = fabric_links_[down_idx];
  if (down.busy_until < at_spine) {
    down.busy_until = at_spine;
    down.queued_bytes = 0;
  }
  if (down.queued_bytes + bytes > config_.fabric_queue_bytes) {
    rec.kind = HopKind::kFabricDrop;
    schedule_delivery(at_spine, slot);
    return;
  }
  down.busy_until += fabric_ser;
  down.queued_bytes += bytes;
  rec.down_link = static_cast<std::int32_t>(down_idx);
  const common::TimePoint down_done = down.busy_until;
  spine_bytes_[spine] += bytes;

  const common::TimePoint arrival =
      down_done + clos.leaf_spine_latency + clos.host_leaf_latency;
  rec.kind = HopKind::kDeliver;
  schedule_delivery(arrival, slot);
}

void Network::crash(NodeId id) {
  if (id >= crashed_.size()) crashed_.resize(id + 1, 0);
  crashed_[id] = 1;
}

void Network::heal(NodeId id) {
  if (id < crashed_.size()) crashed_[id] = 0;
}

void Network::partition(NodeId a, NodeId b) {
  const std::uint64_t key = pair_key(a, b);
  if (std::find(partition_pairs_.begin(), partition_pairs_.end(), key) ==
      partition_pairs_.end()) {
    partition_pairs_.push_back(key);
  }
}

void Network::heal_partition(NodeId a, NodeId b) {
  const std::uint64_t key = pair_key(a, b);
  partition_pairs_.erase(
      std::remove(partition_pairs_.begin(), partition_pairs_.end(), key),
      partition_pairs_.end());
}

bool Network::partitioned(NodeId a, NodeId b) const {
  if (partition_pairs_.empty()) return false;
  return std::find(partition_pairs_.begin(), partition_pairs_.end(),
                   pair_key(a, b)) != partition_pairs_.end();
}

}  // namespace nezha::sim
