#include "src/sim/network.h"

#include <utility>

namespace nezha::sim {

Network::Network(EventLoop& loop, Topology topology, NetworkConfig config)
    : loop_(loop), topology_(topology), config_(config) {}

void Network::attach(Node& node) {
  nodes_[node.id()] = &node;
  by_ip_[node.underlay_ip().value()] = &node;
  ports_.emplace(node.id(), Port{});
}

void Network::detach(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  by_ip_.erase(it->second->underlay_ip().value());
  nodes_.erase(it);
  ports_.erase(id);
  crashed_.erase(id);
}

Node* Network::find_by_ip(net::Ipv4Addr ip) const {
  auto it = by_ip_.find(ip.value());
  return it == by_ip_.end() ? nullptr : it->second;
}

Node* Network::find_by_id(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second;
}

void Network::send(NodeId from, net::Ipv4Addr to_ip, net::Packet pkt) {
  if (crashed_.contains(from)) {
    ++dropped_crashed_;
    return;
  }
  Node* dst = find_by_ip(to_ip);
  if (dst == nullptr) {
    ++dropped_no_route_;
    return;
  }
  if (partitions_.contains(pair_key(from, dst->id()))) {
    ++dropped_partitioned_;
    return;
  }
  const std::size_t bytes = pkt.wire_size();

  // Sender-port serialization: the port transmits packets back to back at
  // link_bps. busy_until tracks when the port frees up.
  Port& port = ports_[from];
  const common::TimePoint now = loop_.now();
  if (port.busy_until < now) {
    port.busy_until = now;
    port.queued_bytes = 0;
  }
  if (port.queued_bytes + bytes > config_.egress_queue_bytes) {
    ++dropped_queue_full_;
    return;
  }
  const auto serialization = static_cast<common::Duration>(
      static_cast<double>(bytes) * 8.0 / config_.link_bps *
      static_cast<double>(common::kSecond));
  port.busy_until += serialization;
  port.queued_bytes += bytes;
  const common::TimePoint tx_done = port.busy_until;

  const common::TimePoint arrival = tx_done + topology_.latency(from, dst->id());
  total_bytes_ += bytes;

  const NodeId to = dst->id();
  loop_.schedule_at(arrival, [this, from, to, pkt = std::move(pkt),
                              bytes]() mutable {
    // Drain the sender queue accounting as the bytes leave the port.
    auto pit = ports_.find(from);
    if (pit != ports_.end() && pit->second.queued_bytes >= bytes) {
      pit->second.queued_bytes -= bytes;
    }
    if (crashed_.contains(to)) {
      ++dropped_crashed_;
      return;
    }
    Node* node = find_by_id(to);
    if (node == nullptr) {
      ++dropped_no_route_;
      return;
    }
    ++delivered_;
    if (trace_) trace_(loop_.now(), pkt, from, to);
    node->receive(std::move(pkt));
  });
}

void Network::crash(NodeId id) { crashed_.insert(id); }
void Network::heal(NodeId id) { crashed_.erase(id); }

void Network::partition(NodeId a, NodeId b) {
  partitions_.insert(pair_key(a, b));
}

void Network::heal_partition(NodeId a, NodeId b) {
  partitions_.erase(pair_key(a, b));
}

bool Network::partitioned(NodeId a, NodeId b) const {
  return partitions_.contains(pair_key(a, b));
}

}  // namespace nezha::sim
