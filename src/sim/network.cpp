#include "src/sim/network.h"

#include <utility>

#include "src/net/five_tuple.h"

namespace nezha::sim {

Network::Network(EventLoop& loop, Topology topology, NetworkConfig config)
    : loop_(loop), topology_(topology), config_(config) {
  if (topology_.is_clos()) {
    const ClosConfig& clos = topology_.config().clos;
    spine_bytes_.assign(clos.num_spines == 0 ? 1 : clos.num_spines, 0);
    if (config_.fabric_link_bps > 0) {
      fabric_link_bps_ = config_.fabric_link_bps;
    } else {
      // A leaf's host-facing capacity, divided across its uplinks and scaled
      // down by the oversubscription ratio.
      const double spines = clos.num_spines == 0 ? 1.0 : clos.num_spines;
      const double oversub =
          clos.oversubscription > 0 ? clos.oversubscription : 1.0;
      fabric_link_bps_ =
          config_.link_bps * clos.hosts_per_leaf / (spines * oversub);
    }
  }
}

void Network::attach(Node& node) {
  nodes_[node.id()] = &node;
  by_ip_[node.underlay_ip().value()] = &node;
  ports_.emplace(node.id(), Port{});
}

void Network::detach(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  by_ip_.erase(it->second->underlay_ip().value());
  nodes_.erase(it);
  ports_.erase(id);
  crashed_.erase(id);
}

Node* Network::find_by_ip(net::Ipv4Addr ip) const {
  auto it = by_ip_.find(ip.value());
  return it == by_ip_.end() ? nullptr : it->second;
}

Node* Network::find_by_id(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second;
}

void Network::send(NodeId from, net::Ipv4Addr to_ip, net::Packet pkt) {
  ++sent_;
  if (crashed_.contains(from)) {
    ++dropped_crashed_;
    return;
  }
  Node* dst = find_by_ip(to_ip);
  if (dst == nullptr) {
    ++dropped_no_route_;
    return;
  }
  if (partitions_.contains(pair_key(from, dst->id()))) {
    ++dropped_partitioned_;
    return;
  }
  const std::size_t bytes = pkt.wire_size();

  // Sender-port serialization: the port transmits packets back to back at
  // link_bps. busy_until tracks when the port frees up.
  Port& port = ports_[from];
  const common::TimePoint now = loop_.now();
  if (port.busy_until < now) {
    port.busy_until = now;
    port.queued_bytes = 0;
  }
  if (port.queued_bytes + bytes > config_.egress_queue_bytes) {
    ++dropped_queue_full_;
    return;
  }
  const auto serialization = static_cast<common::Duration>(
      static_cast<double>(bytes) * 8.0 / config_.link_bps *
      static_cast<double>(common::kSecond));
  port.busy_until += serialization;
  port.queued_bytes += bytes;
  const common::TimePoint tx_done = port.busy_until;
  const NodeId to = dst->id();

  if (topology_.is_clos() && !topology_.same_leaf(from, to)) {
    total_bytes_ += bytes;
    send_clos(from, to, bytes, tx_done, std::move(pkt));
    return;
  }

  const common::TimePoint arrival = tx_done + topology_.latency(from, dst->id());
  total_bytes_ += bytes;

  ++in_flight_;
  loop_.schedule_at(arrival, [this, from, to, pkt = std::move(pkt),
                              bytes]() mutable {
    --in_flight_;
    // Drain the sender queue accounting as the bytes leave the port.
    auto pit = ports_.find(from);
    if (pit != ports_.end() && pit->second.queued_bytes >= bytes) {
      pit->second.queued_bytes -= bytes;
    }
    if (crashed_.contains(to)) {
      ++dropped_crashed_;
      return;
    }
    Node* node = find_by_id(to);
    if (node == nullptr) {
      ++dropped_no_route_;
      return;
    }
    ++delivered_;
    if (trace_) trace_(loop_.now(), pkt, from, to);
    node->receive(std::move(pkt));
  });
}

void Network::send_clos(NodeId from, NodeId to, std::size_t bytes,
                        common::TimePoint tx_done, net::Packet pkt) {
  const ClosConfig& clos = topology_.config().clos;
  // ECMP on the canonical inner 5-tuple: both directions of a flow, and both
  // runs of a seeded experiment, ride the same spine.
  const std::uint64_t entropy =
      net::flow_hash(pkt.inner.ft.canonical(), config_.ecmp_seed);
  const std::uint32_t spine = topology_.ecmp_spine(from, to, entropy);
  const std::uint64_t up_key = fabric_key(false, topology_.leaf_of(from), spine);
  const std::uint64_t down_key = fabric_key(true, topology_.leaf_of(to), spine);
  const auto fabric_ser = static_cast<common::Duration>(
      static_cast<double>(bytes) * 8.0 / fabric_link_bps_ *
      static_cast<double>(common::kSecond));

  // Drains queue accounting once the packet's fate is decided. drained_links
  // counts how many fabric links the packet was accepted onto.
  const auto drain = [this, from, up_key, down_key, bytes](int drained_links) {
    auto pit = ports_.find(from);
    if (pit != ports_.end() && pit->second.queued_bytes >= bytes) {
      pit->second.queued_bytes -= bytes;
    }
    if (drained_links >= 1) {
      Port& up = fabric_links_[up_key];
      if (up.queued_bytes >= bytes) up.queued_bytes -= bytes;
    }
    if (drained_links >= 2) {
      Port& down = fabric_links_[down_key];
      if (down.queued_bytes >= bytes) down.queued_bytes -= bytes;
    }
  };

  ++in_flight_;

  // Leaf→spine uplink: queue + serialize at the contended fabric rate.
  const common::TimePoint at_leaf = tx_done + clos.host_leaf_latency;
  {
    Port& up = fabric_links_[up_key];
    if (up.busy_until < at_leaf) {
      up.busy_until = at_leaf;
      up.queued_bytes = 0;
    }
    if (up.queued_bytes + bytes > config_.fabric_queue_bytes) {
      loop_.schedule_at(at_leaf, [this, drain] {
        --in_flight_;
        ++dropped_fabric_;
        drain(0);
      });
      return;
    }
    up.busy_until += fabric_ser;
    up.queued_bytes += bytes;
  }
  const common::TimePoint at_spine =
      fabric_links_[up_key].busy_until + clos.leaf_spine_latency;

  // Spine→leaf downlink.
  common::TimePoint down_done;
  {
    Port& down = fabric_links_[down_key];
    if (down.busy_until < at_spine) {
      down.busy_until = at_spine;
      down.queued_bytes = 0;
    }
    if (down.queued_bytes + bytes > config_.fabric_queue_bytes) {
      loop_.schedule_at(at_spine, [this, drain] {
        --in_flight_;
        ++dropped_fabric_;
        drain(1);
      });
      return;
    }
    down.busy_until += fabric_ser;
    down.queued_bytes += bytes;
    down_done = down.busy_until;
  }
  spine_bytes_[spine] += bytes;

  const common::TimePoint arrival =
      down_done + clos.leaf_spine_latency + clos.host_leaf_latency;
  loop_.schedule_at(arrival, [this, from, to, pkt = std::move(pkt),
                              drain]() mutable {
    --in_flight_;
    drain(2);
    if (crashed_.contains(to)) {
      ++dropped_crashed_;
      return;
    }
    Node* node = find_by_id(to);
    if (node == nullptr) {
      ++dropped_no_route_;
      return;
    }
    ++delivered_;
    if (trace_) trace_(loop_.now(), pkt, from, to);
    node->receive(std::move(pkt));
  });
}

void Network::crash(NodeId id) { crashed_.insert(id); }
void Network::heal(NodeId id) { crashed_.erase(id); }

void Network::partition(NodeId a, NodeId b) {
  partitions_.insert(pair_key(a, b));
}

void Network::heal_partition(NodeId a, NodeId b) {
  partitions_.erase(pair_key(a, b));
}

bool Network::partitioned(NodeId a, NodeId b) const {
  return partitions_.contains(pair_key(a, b));
}

}  // namespace nezha::sim
