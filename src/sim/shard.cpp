#include "src/sim/shard.h"

#include <barrier>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/rng.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"

namespace nezha::sim {

namespace {
std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

SpscTokenRing::SpscTokenRing(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity == 0 ? 1 : capacity);
  buf_.resize(cap);
  mask_ = cap - 1;
}

void SpscTokenRing::push(ShardToken tok) {
  tok.seq = next_seq_++;
  const std::uint64_t t = tail_.load(std::memory_order_relaxed);
  if (t - head_.load(std::memory_order_acquire) > mask_) {
    // Ring momentarily full: spill. The consumer takes the batch wholesale
    // at the next quiescent barrier and restores order by seq.
    overflow_.push_back(std::move(tok));
    return;
  }
  buf_[t & mask_] = std::move(tok);
  tail_.store(t + 1, std::memory_order_release);
}

ShardToken SpscTokenRing::pop() {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  ShardToken tok = std::move(buf_[h & mask_]);
  head_.store(h + 1, std::memory_order_release);
  return tok;
}

ShardedEngine::ShardedEngine(std::vector<Shard> shards,
                             ShardedEngineConfig config)
    : shards_(std::move(shards)), config_(config) {
  const std::size_t k = shards_.size();
  rings_.reserve(k * k);
  for (std::size_t i = 0; i < k * k; ++i) {
    rings_.emplace_back(config_.ring_capacity);
  }
  snap_.assign(k * k, 0);
  staged_.resize(k * k);
  late_.assign(k, 0);
  busy_ns_.assign(k, 0);
  // The fixed injection order of source shards: a seeded permutation drawn
  // once, so the merge schedule is part of (config, seed) — not an artifact
  // of construction order — and identical for every thread count.
  merge_order_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    merge_order_[i] = static_cast<std::uint32_t>(i);
  }
  common::Rng rng(config_.seed ^ 0x5eedfab1ccafeULL);
  rng.shuffle(merge_order_);
}

void ShardedEngine::map_ip(net::Ipv4Addr ip, std::uint32_t shard,
                           NodeId node) {
  ip_map_[ip.value()] = Remote{shard, node};
}

const ShardRouter::Remote* ShardedEngine::lookup_remote(
    net::Ipv4Addr ip) const {
  const auto it = ip_map_.find(ip.value());
  return it == ip_map_.end() ? nullptr : &it->second;
}

void ShardedEngine::export_token(std::uint32_t src_shard,
                                 std::uint32_t dst_shard, ShardToken tok) {
  ring(src_shard, dst_shard).push(std::move(tok));
}

void ShardedEngine::snapshot_inbound(std::uint32_t s) {
  const std::size_t k = shards_.size();
  for (std::uint32_t src = 0; src < k; ++src) {
    if (src == s) continue;
    const std::size_t idx = src * k + s;
    snap_[idx] = rings_[idx].pending();
    if (rings_[idx].overflow_size() != 0) {
      staged_[idx] = rings_[idx].take_overflow();
    }
  }
}

void ShardedEngine::advance_shard(std::uint32_t s, common::TimePoint end) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t k = shards_.size();
  EventLoop* loop = shards_[s].loop;
  Network* net = shards_[s].net;
  const common::TimePoint epoch_start = loop->now();
  // Inject last epoch's inbound prefix: sources in the seeded merge order,
  // each source's tokens in production (seq) order — a 2-way merge of the
  // ring prefix and the overflow batch, both individually seq-ascending.
  for (const std::uint32_t src : merge_order_) {
    if (src == s) continue;
    const std::size_t idx = src * k + s;
    SpscTokenRing& r = rings_[idx];
    std::size_t n = snap_[idx];
    std::vector<ShardToken>& ov = staged_[idx];
    std::size_t oi = 0;
    while (n != 0 || oi < ov.size()) {
      bool from_ring;
      if (n == 0) {
        from_ring = false;
      } else if (oi >= ov.size()) {
        from_ring = true;
      } else {
        from_ring = r.front().seq < ov[oi].seq;
      }
      ShardToken tok = from_ring ? r.pop() : std::move(ov[oi]);
      if (from_ring) {
        --n;
      } else {
        ++oi;
      }
      if (tok.at < epoch_start) ++late_[s];
      net->inject_token(std::move(tok));
    }
    ov.clear();
  }
  loop->run_until(end);
  busy_ns_[s] += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void ShardedEngine::run_until(common::TimePoint t, int threads) {
  const std::size_t k = shards_.size();
  if (k == 0) return;
  const common::TimePoint start = shards_[0].loop->now();
  if (t <= start) return;
  const common::Duration epoch = config_.epoch < 1 ? 1 : config_.epoch;
  int w_count = threads < 1 ? 1 : threads;
  if (w_count > static_cast<int>(k)) w_count = static_cast<int>(k);

  if (w_count == 1) {
    // Same phase structure as the parallel path, minus the barriers: all
    // snapshots (quiescent), then all advances, per epoch — so results are
    // identical for every thread count by construction.
    for (common::TimePoint e = start; e < t;) {
      const common::TimePoint end = e + epoch < t ? e + epoch : t;
      for (std::uint32_t s = 0; s < k; ++s) snapshot_inbound(s);
      for (std::uint32_t s = 0; s < k; ++s) advance_shard(s, end);
      ++epochs_run_;
      e = end;
    }
    return;
  }

  std::barrier<> bar(w_count);
  auto work = [&](std::uint32_t w) {
    // Fixed shard→thread mapping: shard s is always driven by worker
    // s % w_count, epoch after epoch.
    for (common::TimePoint e = start; e < t;) {
      const common::TimePoint end = e + epoch < t ? e + epoch : t;
      for (std::uint32_t s = w; s < k; s += w_count) snapshot_inbound(s);
      bar.arrive_and_wait();
      for (std::uint32_t s = w; s < k; s += w_count) advance_shard(s, end);
      bar.arrive_and_wait();
      e = end;
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(w_count) - 1);
  for (int w = 1; w < w_count; ++w) {
    pool.emplace_back(work, static_cast<std::uint32_t>(w));
  }
  work(0);
  for (std::thread& th : pool) th.join();
  epochs_run_ += static_cast<std::uint64_t>((t - start + epoch - 1) / epoch);
}

std::uint64_t ShardedEngine::tokens_pending() const {
  std::uint64_t n = 0;
  for (const SpscTokenRing& r : rings_) {
    n += r.pending() + r.overflow_size();
  }
  for (const auto& batch : staged_) n += batch.size();
  return n;
}

std::uint64_t ShardedEngine::late_tokens() const {
  std::uint64_t n = 0;
  for (const std::uint64_t v : late_) n += v;
  return n;
}

}  // namespace nezha::sim
