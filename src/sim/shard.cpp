#include "src/sim/shard.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/rng.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"

namespace nezha::sim {

namespace {
std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

// Which shard's advance phase (if any) the current thread is inside. Lets
// schedule_fenced tell a mid-epoch registration (stage per shard, assign
// the global sequence at the barrier drain) from a quiescent one (assign
// immediately). Keyed by engine pointer so nested engines cannot alias.
thread_local const void* tls_engine = nullptr;
thread_local std::uint32_t tls_shard = 0;
}  // namespace

SpscTokenRing::SpscTokenRing(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity == 0 ? 1 : capacity);
  buf_.resize(cap);
  mask_ = cap - 1;
}

void SpscTokenRing::push(ShardToken tok) {
  tok.seq = next_seq_++;
  const std::uint64_t t = tail_.load(std::memory_order_relaxed);
  if (t - head_.load(std::memory_order_acquire) > mask_) {
    // Ring momentarily full: spill. The consumer takes the batch wholesale
    // at the next quiescent barrier and restores order by seq.
    overflow_.push_back(std::move(tok));
    return;
  }
  buf_[t & mask_] = std::move(tok);
  tail_.store(t + 1, std::memory_order_release);
}

ShardToken SpscTokenRing::pop() {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  ShardToken tok = std::move(buf_[h & mask_]);
  head_.store(h + 1, std::memory_order_release);
  return tok;
}

ShardedEngine::ShardedEngine(std::vector<Shard> shards,
                             ShardedEngineConfig config)
    : shards_(std::move(shards)), config_(config) {
  const std::size_t k = shards_.size();
  rings_.reserve(k * k);
  for (std::size_t i = 0; i < k * k; ++i) {
    rings_.emplace_back(config_.ring_capacity);
  }
  snap_.assign(k * k, 0);
  staged_.resize(k * k);
  late_.assign(k, 0);
  busy_ns_.assign(k, 0);
  snapshot_ns_.assign(k, 0);
  ff_ns_.assign(k, 0);
  fence_staged_.resize(k);
  next_event_.assign(k, 0);
  xfer_epoch_.assign(k, 0);
  xfer_inflight_.assign(k, 0);
  wait_.assign(k, BarrierWaitStats{});
  wait_observers_.resize(k);
  // The fixed injection order of source shards: a seeded permutation drawn
  // once, so the merge schedule is part of (config, seed) — not an artifact
  // of construction order — and identical for every thread count.
  merge_order_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    merge_order_[i] = static_cast<std::uint32_t>(i);
  }
  common::Rng rng(config_.seed ^ 0x5eedfab1ccafeULL);
  rng.shuffle(merge_order_);
}

void ShardedEngine::map_ip(net::Ipv4Addr ip, std::uint32_t shard,
                           NodeId node) {
  ip_map_[ip.value()] = Remote{shard, node};
}

const ShardRouter::Remote* ShardedEngine::lookup_remote(
    net::Ipv4Addr ip) const {
  const auto it = ip_map_.find(ip.value());
  return it == ip_map_.end() ? nullptr : &it->second;
}

void ShardedEngine::export_token(std::uint32_t src_shard,
                                 std::uint32_t dst_shard, ShardToken tok) {
  // Callers are always the thread exclusively driving src_shard (its owner
  // mid-advance, worker 0 inside a fence, or quiescent setup code), so the
  // phase counter needs no synchronization beyond the epoch barriers.
  ++xfer_epoch_[src_shard];
  ring(src_shard, dst_shard).push(std::move(tok));
}

void ShardedEngine::snapshot_inbound(std::uint32_t s) {
  const std::size_t k = shards_.size();
  for (std::uint32_t src = 0; src < k; ++src) {
    if (src == s) continue;
    const std::size_t idx = src * k + s;
    snap_[idx] = rings_[idx].pending();
    if (rings_[idx].overflow_size() != 0) {
      staged_[idx] = rings_[idx].take_overflow();
    }
  }
}

void ShardedEngine::advance_shard(std::uint32_t s, common::TimePoint end) {
  const auto t0 = std::chrono::steady_clock::now();
  tls_engine = this;
  tls_shard = s;
  const std::size_t k = shards_.size();
  EventLoop* loop = shards_[s].loop;
  Network* net = shards_[s].net;
  const common::TimePoint epoch_start = loop->now();
  // Inject last epoch's inbound prefix: sources in the seeded merge order,
  // each source's tokens in production (seq) order — a 2-way merge of the
  // ring prefix and the overflow batch, both individually seq-ascending.
  for (const std::uint32_t src : merge_order_) {
    if (src == s) continue;
    const std::size_t idx = src * k + s;
    SpscTokenRing& r = rings_[idx];
    std::size_t n = snap_[idx];
    std::vector<ShardToken>& ov = staged_[idx];
    std::size_t oi = 0;
    while (n != 0 || oi < ov.size()) {
      bool from_ring;
      if (n == 0) {
        from_ring = false;
      } else if (oi >= ov.size()) {
        from_ring = true;
      } else {
        from_ring = r.front().seq < ov[oi].seq;
      }
      ShardToken tok = from_ring ? r.pop() : std::move(ov[oi]);
      if (from_ring) {
        --n;
      } else {
        ++oi;
      }
      if (tok.at < epoch_start) ++late_[s];
      net->inject_token(std::move(tok));
    }
    ov.clear();
  }
  loop->run_until(end);
  tls_engine = nullptr;
  // Everything previously in s's outbound rings was snapshotted at this
  // epoch's start and injected by the consumers during this same phase, so
  // what remains in flight is exactly this phase's exports. Published to
  // the other workers by the post-advance barrier.
  xfer_inflight_[s] = xfer_epoch_[s];
  xfer_epoch_[s] = 0;
  busy_ns_[s] += ns_between(t0, std::chrono::steady_clock::now());
}

void ShardedEngine::schedule_fenced(common::TimePoint due,
                                    std::function<void()> fn) {
  if (tls_engine == static_cast<const void*>(this)) {
    // Mid-epoch, on a shard's worker thread (e.g. a monitor continuation
    // or a crash callback firing inside an advance phase). The global
    // sequence is assigned at the barrier drain, in seeded merge order, so
    // it cannot depend on wall-clock interleaving across workers.
    fence_staged_[tls_shard].push_back(Fence{due, 0, std::move(fn)});
    return;
  }
  // Quiescent context: setup code between windows, or another fenced
  // section's body. Sequence assignment here is already deterministic.
  Fence f{due, fence_seq_++, std::move(fn)};
  if (trace_) {
    trace_(FenceTracePoint{false, shards_.empty() ? 0 : shards_[0].loop->now(),
                           f.due, f.seq});
  }
  const auto pos = std::upper_bound(
      fences_.begin(), fences_.end(), f, [](const Fence& a, const Fence& b) {
        return a.due != b.due ? a.due < b.due : a.seq < b.seq;
      });
  fences_.insert(pos, std::move(f));
}

bool ShardedEngine::fence_work_pending(common::TimePoint e) const {
  for (const std::vector<Fence>& st : fence_staged_) {
    if (!st.empty()) return true;
  }
  return !fences_.empty() && fences_.front().due <= e;
}

void ShardedEngine::run_fences(common::TimePoint now) {
  bool drained = false;
  for (const std::uint32_t s : merge_order_) {
    std::vector<Fence>& st = fence_staged_[s];
    for (Fence& f : st) {
      f.seq = fence_seq_++;
      if (trace_) trace_(FenceTracePoint{false, now, f.due, f.seq});
      fences_.push_back(std::move(f));
      drained = true;
    }
    st.clear();
  }
  if (drained) {
    std::stable_sort(fences_.begin(), fences_.end(),
                     [](const Fence& a, const Fence& b) {
                       return a.due != b.due ? a.due < b.due : a.seq < b.seq;
                     });
  }
  // A section's body may register further fences; any it makes due <= now
  // are picked up by this same loop (sorted insertion keeps the order).
  while (!fences_.empty() && fences_.front().due <= now) {
    Fence f = std::move(fences_.front());
    fences_.erase(fences_.begin());
    if (trace_) trace_(FenceTracePoint{true, now, f.due, f.seq});
    f.fn();
    ++fences_run_;
  }
  // Sections schedule loop events and may export tokens; refresh the
  // next-event cache and fold the fence-phase exports into the in-flight
  // totals so a following fast-forward decision cannot jump over either.
  // Every loop is quiescent here and this thread owns them all.
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    next_event_[s] = shards_[s].loop->next_event_at();
    xfer_inflight_[s] += xfer_epoch_[s];
    xfer_epoch_[s] = 0;
  }
}

common::TimePoint ShardedEngine::fast_forward_target(
    common::TimePoint e, common::TimePoint t) const {
  if (!config_.fast_forward) return e;
  const common::Duration epoch = config_.epoch < 1 ? 1 : config_.epoch;
  common::TimePoint next_ev = EventLoop::kNoEvent;
  for (const common::TimePoint ne : next_event_) {
    if (ne < next_ev) next_ev = ne;
  }
  if (next_ev <= e + epoch) return e;
  // Any in-flight token must be injected at the very next boundary; the
  // epoch it lands in cannot be elided. Decided from the barrier-published
  // per-source totals, NOT from live ring state: another worker may
  // already be inside snapshot_inbound taking overflow batches while this
  // worker is still here, and all workers must reach the same verdict.
  for (const std::uint64_t n : xfer_inflight_) {
    if (n != 0) return e;
  }
  const common::TimePoint cap = next_ev < t ? next_ev : t;
  if (cap <= e + epoch) return e;
  // Largest boundary strictly below cap: an event AT a boundary belongs to
  // the epoch that ends there, so that epoch must run normally.
  common::TimePoint jump = e + ((cap - e - 1) / epoch) * epoch;
  if (!fences_.empty()) {
    // Jumping ONTO a fence's barrier is fine (the fence phase at the next
    // iteration fires it); jumping past it is not.
    const common::TimePoint due = fences_.front().due;
    const common::TimePoint fence_bar =
        due <= e ? e + epoch : e + ((due - e + epoch - 1) / epoch) * epoch;
    if (fence_bar < jump) jump = fence_bar;
  }
  return jump;
}

void ShardedEngine::run_until(common::TimePoint t, int threads) {
  const std::size_t k = shards_.size();
  if (k == 0) return;
  const common::TimePoint start = shards_[0].loop->now();
  if (t <= start) return;
  const common::Duration epoch = config_.epoch < 1 ? 1 : config_.epoch;
  int w_count = threads < 1 ? 1 : threads;
  if (w_count > static_cast<int>(k)) w_count = static_cast<int>(k);

  // Seed the next-event cache and fold any quiescent-context exports
  // (setup code may have scheduled events or sent cross-shard packets
  // since the last window ended). All loops are quiescent here.
  for (std::uint32_t s = 0; s < k; ++s) {
    next_event_[s] = shards_[s].loop->next_event_at();
    xfer_inflight_[s] += xfer_epoch_[s];
    xfer_epoch_[s] = 0;
  }

  // One loop for every thread count, including 1: each iteration's branch
  // (fence / fast-forward / normal epoch) is decided from state that is
  // identical across workers at the barrier, so all workers always take
  // the same path and results cannot depend on w_count.
  std::barrier<> bar(w_count);
  auto work = [&](std::uint32_t w) {
    // Fixed shard→thread mapping: shard s is always driven by worker
    // s % w_count, epoch after epoch.
    for (common::TimePoint e = start; e < t;) {
      if (fence_work_pending(e)) {
        // All workers evaluated the predicate against the same
        // barrier-synchronized state, so all of them are here. Park first:
        // run_fences mutates the very state the predicate reads, and a
        // worker still on its way in must not observe the drain.
        bar.arrive_and_wait();
        // Quiesce: worker 0 drains + executes while everyone else parks.
        if (w == 0) {
          const auto f0 = std::chrono::steady_clock::now();
          run_fences(e);
          fence_ns_ += ns_between(f0, std::chrono::steady_clock::now());
          ++fence_barriers_;
        }
        bar.arrive_and_wait();
      }
      const common::TimePoint jump = fast_forward_target(e, t);
      if (jump > e) {
        // Nothing can happen before `jump`: teleport the lockstep clock.
        // run_until executes no events here (jump < every next event) —
        // it only advances each loop's now.
        for (std::uint32_t s = w; s < k; s += w_count) {
          const auto j0 = std::chrono::steady_clock::now();
          shards_[s].loop->run_until(jump);
          ff_ns_[s] += ns_between(j0, std::chrono::steady_clock::now());
        }
        if (w == 0) {
          epochs_skipped_ += static_cast<std::uint64_t>((jump - e) / epoch);
          ++ff_jumps_;
        }
        bar.arrive_and_wait();
        e = jump;
        continue;
      }
      const common::TimePoint end = e + epoch < t ? e + epoch : t;
      for (std::uint32_t s = w; s < k; s += w_count) {
        const auto s0 = std::chrono::steady_clock::now();
        snapshot_inbound(s);
        snapshot_ns_[s] += ns_between(s0, std::chrono::steady_clock::now());
      }
      const auto t0 = std::chrono::steady_clock::now();
      bar.arrive_and_wait();
      const auto t1 = std::chrono::steady_clock::now();
      for (std::uint32_t s = w; s < k; s += w_count) {
        advance_shard(s, end);
        next_event_[s] = shards_[s].loop->next_event_at();
      }
      const auto t2 = std::chrono::steady_clock::now();
      bar.arrive_and_wait();
      const auto t3 = std::chrono::steady_clock::now();
      const std::uint64_t wait_ns =
          ns_between(t0, t1) + ns_between(t2, t3);
      for (std::uint32_t s = w; s < k; s += w_count) {
        BarrierWaitStats& ws = wait_[s];
        ++ws.epochs;
        ws.total_ns += wait_ns;
        if (wait_ns > ws.max_ns) ws.max_ns = wait_ns;
        if (wait_observers_[s]) {
          wait_observers_[s](static_cast<double>(wait_ns) * 1e-3);
        }
      }
      if (w == 0) ++epochs_run_;
      e = end;
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(w_count) - 1);
  for (int w = 1; w < w_count; ++w) {
    pool.emplace_back(work, static_cast<std::uint32_t>(w));
  }
  work(0);
  for (std::thread& th : pool) th.join();
  // Fences due exactly at `t` (or staged during the final epoch) get their
  // barrier here — run_until's contract is "everything due <= t ran".
  // Counted as a quiesce point like the in-loop barriers: one per
  // run_until call, so the count stays thread- and run-invariant.
  const auto f0 = std::chrono::steady_clock::now();
  run_fences(t);
  fence_ns_ += ns_between(f0, std::chrono::steady_clock::now());
  ++fence_barriers_;
}

ShardedEngine::PhaseProfile ShardedEngine::phase_profile(
    std::uint32_t shard) const {
  PhaseProfile p;
  p.epochs = wait_.at(shard).epochs;
  p.snapshot_ns = snapshot_ns_.at(shard);
  p.advance_ns = busy_ns_.at(shard);
  p.barrier_wait_ns = wait_.at(shard).total_ns;
  p.fast_forward_ns = ff_ns_.at(shard);
  return p;
}

std::uint64_t ShardedEngine::tokens_pending() const {
  std::uint64_t n = 0;
  for (const SpscTokenRing& r : rings_) {
    n += r.pending() + r.overflow_size();
  }
  for (const auto& batch : staged_) n += batch.size();
  return n;
}

std::uint64_t ShardedEngine::late_tokens() const {
  std::uint64_t n = 0;
  for (const std::uint64_t v : late_) n += v;
  return n;
}

}  // namespace nezha::sim
