#include "src/sim/event_loop.h"

#include <utility>

#include "src/common/log.h"

namespace nezha::sim {

namespace {

long long loop_now_thunk(void* ctx) {
  return static_cast<long long>(static_cast<const EventLoop*>(ctx)->now());
}

/// Registers the loop as the logger's virtual-clock source for the duration
/// of a run; restores the previous source on exit so nested loops (a
/// callback running its own sub-loop) stamp with the innermost clock.
class LogTimeScope {
 public:
  explicit LogTimeScope(EventLoop* loop) : prev_(common::log_time_source()) {
    common::set_log_time_source({&loop_now_thunk, loop});
  }
  ~LogTimeScope() { common::set_log_time_source(prev_); }
  LogTimeScope(const LogTimeScope&) = delete;
  LogTimeScope& operator=(const LogTimeScope&) = delete;

 private:
  common::LogTimeSource prev_;
};

}  // namespace

std::uint32_t EventLoop::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventLoop::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = nullptr;
  s.raw = nullptr;
  s.armed = false;
  s.period = -1;
  ++s.gen;  // ids minted for the old generation go permanently stale
  free_.push_back(slot);
}

EventId EventLoop::schedule_at(common::TimePoint t, Callback cb) {
  if (t < now_) t = now_;  // never schedule into the past
  const std::uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.armed = true;
  s.period = -1;
  heap_push(QEntry{t, next_seq_++, slot, s.gen});
  ++live_;
  return make_id(slot, s.gen);
}

EventId EventLoop::schedule_raw_at(common::TimePoint t, RawFn fn, void* ctx,
                                   std::uint64_t arg) {
  if (t < now_) t = now_;
  const std::uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  s.raw = fn;
  s.raw_ctx = ctx;
  s.raw_arg = arg;
  s.armed = true;
  s.period = -1;
  heap_push(QEntry{t, next_seq_++, slot, s.gen});
  ++live_;
  return make_id(slot, s.gen);
}

EventId EventLoop::schedule_after(common::Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(cb));
}

EventId EventLoop::schedule_periodic(common::Duration period, Callback cb) {
  if (period < 1) period = 1;  // a zero period would freeze virtual time
  const std::uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.armed = true;
  s.period = period;
  heap_push(QEntry{now_ + period, next_seq_++, slot, s.gen});
  ++live_;
  return make_id(slot, s.gen);
}

void EventLoop::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.gen != gen || !s.armed) return;  // fired, reused, or double-cancel
  s.armed = false;
  s.cb = nullptr;  // release captures now; slot freed when its entry pops
  --live_;
}

bool EventLoop::fire_next() {
  while (!heap_.empty()) {
    const QEntry top = heap_.front();
    heap_pop();
    Slot& s = slots_[top.slot];
    if (s.gen != top.gen) continue;            // stale reference
    if (!s.armed) {                            // cancelled while queued
      free_slot(top.slot);
      continue;
    }
    now_ = top.at;
    if (s.period >= 0) {
      // Move the callback out for the call: the slab may grow (and
      // reallocate) if the callback schedules new events.
      Callback cb = std::move(s.cb);
      const common::Duration period = s.period;
      cb();
      Slot& after = slots_[top.slot];
      if (after.gen == top.gen && after.armed) {
        after.cb = std::move(cb);
        // Re-arm after the callback ran so the next tick's sequence number
        // orders it behind events the callback itself scheduled (matches
        // the self-rescheduling pattern this API replaced).
        heap_push(QEntry{top.at + period, next_seq_++, top.slot, top.gen});
      } else if (after.gen == top.gen) {
        free_slot(top.slot);  // the callback cancelled its own series
      }
    } else if (s.raw != nullptr) {
      s.armed = false;
      --live_;
      // Copy out before freeing: the callee may schedule and reuse the slot.
      const RawFn fn = s.raw;
      void* ctx = s.raw_ctx;
      const std::uint64_t arg = s.raw_arg;
      free_slot(top.slot);
      fn(ctx, arg);
    } else {
      s.armed = false;
      --live_;
      Callback cb = std::move(s.cb);
      free_slot(top.slot);
      cb();
    }
    return true;
  }
  return false;
}

void EventLoop::drop_dead_heads() {
  while (!heap_.empty()) {
    const QEntry& top = heap_.front();
    const Slot& s = slots_[top.slot];
    if (s.gen == top.gen && s.armed) return;  // live head
    const std::uint32_t slot = top.slot;
    const bool owned = s.gen == top.gen;
    heap_pop();
    if (owned) free_slot(slot);
  }
}

common::TimePoint EventLoop::next_event_at() {
  drop_dead_heads();
  return heap_.empty() ? kNoEvent : heap_.front().at;
}

void EventLoop::run() {
  LogTimeScope scope(this);
  while (fire_next()) {
  }
}

void EventLoop::run_until(common::TimePoint t) {
  LogTimeScope scope(this);
  for (;;) {
    // Look past cancelled heads so a dead entry at <= t never lets an event
    // with a timestamp > t fire (the pre-slab implementation had exactly
    // that bug: fire_next() skipped the cancelled head and executed the
    // next live event regardless of its time).
    drop_dead_heads();
    if (heap_.empty() || heap_.front().at > t) break;
    fire_next();
  }
  if (now_ < t) now_ = t;
}

bool EventLoop::step() {
  LogTimeScope scope(this);
  return fire_next();
}

}  // namespace nezha::sim
