#include "src/sim/event_loop.h"

#include <stdexcept>
#include <utility>

namespace nezha::sim {

EventId EventLoop::schedule_at(common::TimePoint t, Callback cb) {
  if (t < now_) t = now_;  // never schedule into the past
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(cb)});
  return id;
}

EventId EventLoop::schedule_after(common::Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(cb));
}

void EventLoop::cancel(EventId id) {
  if (id != 0 && id < next_id_) cancelled_.insert(id);
}

bool EventLoop::fire_next() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.at;
    ev.cb();
    return true;
  }
  return false;
}

void EventLoop::run() {
  while (fire_next()) {
  }
}

void EventLoop::run_until(common::TimePoint t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    if (!fire_next()) break;
  }
  if (now_ < t) now_ = t;
}

bool EventLoop::step() { return fire_next(); }

}  // namespace nezha::sim
