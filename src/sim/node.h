// Simulation node interface: anything that terminates underlay packets —
// a server's SmartNIC vSwitch, a VM host stub, the gateway, the monitor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "src/net/addr.h"
#include "src/net/packet.h"

namespace nezha::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffff;

class Node {
 public:
  Node(NodeId id, std::string name, net::Ipv4Addr underlay_ip,
       net::MacAddr mac)
      : id_(id), name_(std::move(name)), underlay_ip_(underlay_ip),
        mac_(mac) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  net::Ipv4Addr underlay_ip() const { return underlay_ip_; }
  net::MacAddr mac() const { return mac_; }

  /// Delivers a packet that arrived on this node's NIC port.
  virtual void receive(net::Packet pkt) = 0;

  /// Delivers a burst of packets that arrived within one RX window (burst
  /// delivery mode, Network::rx_burst_window). The packets are in arrival
  /// order; the default processes them one by one, so results match
  /// per-packet delivery exactly. Overrides may software-prefetch lookup
  /// structures across the burst before processing.
  virtual void receive_burst(net::Packet* pkts, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) receive(std::move(pkts[i]));
  }

 private:
  NodeId id_;
  std::string name_;
  net::Ipv4Addr underlay_ip_;
  net::MacAddr mac_;
};

}  // namespace nezha::sim
