// Data-center topology model: servers under ToR switches, ToRs under
// aggregation blocks, blocks under a core. Only latency/locality matter to
// Nezha (FE selection prefers same-ToR idle vSwitches, §4.2.1/App B.1), so
// the fabric is modeled as per-tier one-way latencies rather than explicit
// switch nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/time.h"
#include "src/sim/node.h"

namespace nezha::sim {

struct TopologyConfig {
  std::uint32_t servers_per_tor = 40;
  std::uint32_t tors_per_agg = 16;
  common::Duration same_host_latency = common::microseconds(1);
  common::Duration same_tor_latency = common::microseconds(5);
  common::Duration same_agg_latency = common::microseconds(15);
  common::Duration core_latency = common::microseconds(30);
};

class Topology {
 public:
  explicit Topology(TopologyConfig config = {}) : config_(config) {}

  const TopologyConfig& config() const { return config_; }

  std::uint32_t tor_of(NodeId node) const {
    return node / config_.servers_per_tor;
  }
  std::uint32_t agg_of(NodeId node) const {
    return tor_of(node) / config_.tors_per_agg;
  }

  bool same_tor(NodeId a, NodeId b) const { return tor_of(a) == tor_of(b); }
  bool same_agg(NodeId a, NodeId b) const { return agg_of(a) == agg_of(b); }

  /// Number of fabric tiers a packet must cross (0 = same host).
  int hop_tier(NodeId a, NodeId b) const;

  /// One-way propagation + switching latency between two servers.
  common::Duration latency(NodeId a, NodeId b) const;

 private:
  TopologyConfig config_;
};

}  // namespace nezha::sim
