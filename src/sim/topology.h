// Data-center topology model. Two fabrics are supported:
//
//  * kTiered — servers under ToR switches, ToRs under aggregation blocks,
//    blocks under a core. Only latency/locality matter to Nezha's FE
//    selection (§4.2.1/App B.1), so the fabric is modeled as per-tier
//    one-way latencies rather than explicit switch nodes.
//  * kClos — an explicit 2-tier spine/leaf Clos: configurable leaves,
//    hosts-per-leaf, spine count and oversubscription. Cross-leaf packets
//    pick a spine by deterministic ECMP hashing and (in sim::Network)
//    contend for finite leaf-uplink/spine-downlink bandwidth — the fabric
//    the fleet-scale testbed runs offload traffic across.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/time.h"
#include "src/sim/node.h"

namespace nezha::sim {

/// 2-tier Clos parameters. Leaf switching capacity is assumed non-blocking
/// within a rack; only the leaf↔spine tier carries the oversubscription.
struct ClosConfig {
  std::uint32_t num_leaves = 8;
  std::uint32_t hosts_per_leaf = 16;
  std::uint32_t num_spines = 4;
  /// Ratio of host-facing to spine-facing capacity per leaf (1.0 = fully
  /// non-blocking). Used by sim::Network to derive per-spine link bandwidth
  /// when NetworkConfig::fabric_link_bps is 0.
  double oversubscription = 2.0;
  /// One-way host↔leaf and leaf↔spine hop latencies (propagation +
  /// switching); a cross-leaf path pays host→leaf→spine→leaf→host.
  common::Duration host_leaf_latency = common::microseconds(2);
  common::Duration leaf_spine_latency = common::microseconds(8);
};

enum class FabricKind : std::uint8_t { kTiered = 0, kClos = 1 };

struct TopologyConfig {
  std::uint32_t servers_per_tor = 40;
  std::uint32_t tors_per_agg = 16;
  common::Duration same_host_latency = common::microseconds(1);
  common::Duration same_tor_latency = common::microseconds(5);
  common::Duration same_agg_latency = common::microseconds(15);
  common::Duration core_latency = common::microseconds(30);
  FabricKind kind = FabricKind::kTiered;
  ClosConfig clos;
};

class Topology {
 public:
  explicit Topology(TopologyConfig config = {}) : config_(config) {}

  const TopologyConfig& config() const { return config_; }
  bool is_clos() const { return config_.kind == FabricKind::kClos; }

  /// Rack of a server: ToR index (tiered) or leaf index (Clos). Under Clos
  /// the same-rack test drives the controller's FE locality preference just
  /// as same-ToR does in the tiered model.
  std::uint32_t tor_of(NodeId node) const {
    return is_clos() ? node / config_.clos.hosts_per_leaf
                     : node / config_.servers_per_tor;
  }
  std::uint32_t agg_of(NodeId node) const {
    // A 2-tier Clos has a single spine block above all leaves.
    return is_clos() ? 0 : tor_of(node) / config_.tors_per_agg;
  }
  std::uint32_t leaf_of(NodeId node) const { return tor_of(node); }

  bool same_tor(NodeId a, NodeId b) const { return tor_of(a) == tor_of(b); }
  bool same_agg(NodeId a, NodeId b) const { return agg_of(a) == agg_of(b); }
  bool same_leaf(NodeId a, NodeId b) const { return same_tor(a, b); }

  /// Number of fabric tiers a packet must cross (0 = same host). Clos paths
  /// top out at 2 (leaf, then spine).
  int hop_tier(NodeId a, NodeId b) const;

  /// One-way propagation + switching latency between two servers. For Clos
  /// this is the uncongested path latency; queueing delay on fabric links
  /// is added by sim::Network.
  common::Duration latency(NodeId a, NodeId b) const;

  /// Number of racks spanned by node ids [0, num_nodes).
  std::uint32_t rack_count(std::size_t num_nodes) const {
    if (num_nodes == 0) return 1;
    return tor_of(static_cast<NodeId>(num_nodes - 1)) + 1;
  }

  /// Lower bound on the remaining one-way latency of any packet after it
  /// leaves its source rack's domain — the conservative-lookahead bound a
  /// sharded engine's lockstep epoch must not exceed (DESIGN.md §13). For
  /// Clos it is the leaf→spine hop (a cross-leaf packet handed off at the
  /// uplink still has at least that long before it can reach another
  /// rack); for the tiered fabric, the cheapest cross-ToR path.
  common::Duration min_cross_rack_latency() const {
    return is_clos() ? config_.clos.leaf_spine_latency
                     : config_.same_agg_latency;
  }

  /// ECMP: the spine a cross-leaf flow with the given entropy traverses.
  /// Deterministic in (a, b, entropy) so a flow stays on one path and a
  /// fixed seed reproduces the exact spine load split.
  std::uint32_t ecmp_spine(NodeId a, NodeId b, std::uint64_t entropy) const;

 private:
  TopologyConfig config_;
};

}  // namespace nezha::sim
