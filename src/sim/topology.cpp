#include "src/sim/topology.h"

namespace nezha::sim {

namespace {

// splitmix64 finalizer: cheap, well-mixed, and stable across platforms so
// ECMP path selection is reproducible from the seed alone.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int Topology::hop_tier(NodeId a, NodeId b) const {
  if (a == b) return 0;
  if (same_tor(a, b)) return 1;
  if (is_clos()) return 2;  // cross-leaf: up through a spine and back down
  if (same_agg(a, b)) return 2;
  return 3;
}

common::Duration Topology::latency(NodeId a, NodeId b) const {
  if (is_clos()) {
    switch (hop_tier(a, b)) {
      case 0:
        return config_.same_host_latency;
      case 1:
        // host → leaf → host.
        return 2 * config_.clos.host_leaf_latency;
      default:
        // host → leaf → spine → leaf → host.
        return 2 * config_.clos.host_leaf_latency +
               2 * config_.clos.leaf_spine_latency;
    }
  }
  switch (hop_tier(a, b)) {
    case 0: return config_.same_host_latency;
    case 1: return config_.same_tor_latency;
    case 2: return config_.same_agg_latency;
    default: return config_.core_latency;
  }
}

std::uint32_t Topology::ecmp_spine(NodeId a, NodeId b, std::uint64_t entropy) const {
  const std::uint32_t spines =
      config_.clos.num_spines == 0 ? 1 : config_.clos.num_spines;
  // Hash direction-insensitively over the leaf pair so both directions of a
  // flow ride the same spine (as canonical-5-tuple ECMP does in practice).
  std::uint32_t la = leaf_of(a);
  std::uint32_t lb = leaf_of(b);
  if (la > lb) std::swap(la, lb);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(la) << 32) | static_cast<std::uint64_t>(lb);
  return static_cast<std::uint32_t>(mix64(key ^ mix64(entropy)) % spines);
}

}  // namespace nezha::sim
