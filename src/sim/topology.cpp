#include "src/sim/topology.h"

namespace nezha::sim {

int Topology::hop_tier(NodeId a, NodeId b) const {
  if (a == b) return 0;
  if (same_tor(a, b)) return 1;
  if (same_agg(a, b)) return 2;
  return 3;
}

common::Duration Topology::latency(NodeId a, NodeId b) const {
  switch (hop_tier(a, b)) {
    case 0: return config_.same_host_latency;
    case 1: return config_.same_tor_latency;
    case 2: return config_.same_agg_latency;
    default: return config_.core_latency;
  }
}

}  // namespace nezha::sim
