// Sharded simulation engine (DESIGN.md §13): conservative parallel
// discrete-event execution in the style of FireSim's switch model.
//
// The fleet is partitioned per rack into shards; each shard owns an
// EventLoop, a Network and the vSwitches of its racks. Shards advance in
// lockstep epochs no longer than the minimum cross-rack fabric latency, so
// a packet handed off to another shard during epoch E can never be due
// before epoch E+1 begins — cross-shard influence always arrives with at
// least one full epoch of lookahead (the "conservative" condition of
// Chandy-Misra-style parallel simulation).
//
// Cross-shard packets travel as ShardTokens through preallocated SPSC
// rings, one per (src, dst) shard pair. Producers push during their epoch;
// consumers snapshot ring occupancy while every worker is quiescent at the
// epoch barrier and inject exactly that prefix at the start of the next
// epoch, merging sources in a fixed seeded order and each source's tokens
// in production order (seq). Shard s is always driven by worker thread
// s % num_threads, and threads interact only through the rings at
// barriers, so the schedule — and therefore every counter and fingerprint
// — is a pure function of (config, seed, shard_count), independent of the
// thread count and of wall-clock interleaving.
//
// Control-plane work that must touch cross-shard state (gateway placement
// publishes, fleet-wide policy pushes, crash failover) registers *fenced
// sections* through the FenceScheduler interface: each runs at the first
// epoch barrier at or after its due time, executed by one designated
// worker in (due, seq) order while every other worker is parked at the
// barrier (DESIGN.md §15). Symmetrically, when every shard's next event
// lies beyond the next epoch boundary and all rings are quiet, the engine
// *fast-forwards* — jumping the lockstep clock over the empty epochs
// instead of spinning barriers — without changing a single outcome.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/net/packet.h"
#include "src/sim/node.h"

namespace nezha::sim {

class EventLoop;
class Network;

/// How far along the fabric path a token's packet already is when it is
/// handed to the destination shard.
enum class TokenKind : std::uint8_t {
  /// `at` is the final arrival time at the destination host; the source
  /// shard already modeled the whole path (tiered fabrics, same-leaf).
  kArrival = 0,
  /// Clos cross-leaf: the source shard modeled sender-port serialization
  /// and the leaf→spine uplink; `at` is the time the packet reaches the
  /// spine. The destination shard owns the spine→leaf downlink (only its
  /// own racks' downlinks), so it queues the downlink leg and delivers.
  kAtSpine = 1,
};

/// One cross-shard packet handoff. POD-movable; the Packet rides by value.
struct ShardToken {
  net::Packet pkt;
  common::TimePoint at = 0;  // kind-dependent; always >= next epoch start
  std::uint64_t seq = 0;     // producer order within one (src, dst) ring
  NodeId from = 0;
  NodeId to = 0;
  std::uint32_t bytes = 0;
  std::uint32_t spine = 0;   // kAtSpine: ECMP spine already selected
  TokenKind kind = TokenKind::kArrival;
};

/// Single-producer/single-consumer token ring with a producer-side
/// overflow vector. The ring is preallocated; when it is momentarily full
/// (the consumer only frees slots while draining the previous epoch's
/// prefix) the producer spills to `overflow_`, which the consumer takes
/// wholesale at the quiescent epoch barrier. Tokens carry a producer
/// sequence number, so the consumer restores exact production order by
/// merging the ring prefix and the overflow batch on seq.
class SpscTokenRing {
 public:
  explicit SpscTokenRing(std::size_t capacity = 1024);

  /// Setup-time only (vector growth); never used while threads run.
  SpscTokenRing(SpscTokenRing&& o) noexcept
      : buf_(std::move(o.buf_)),
        mask_(o.mask_),
        next_seq_(o.next_seq_),
        overflow_(std::move(o.overflow_)) {
    head_.store(o.head_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    tail_.store(o.tail_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

  // --- producer side (owned by the source shard's worker) ---
  void push(ShardToken tok);

  // --- consumer side (owned by the destination shard's worker) ---
  /// Tokens currently visible to the consumer. Also safe mid-epoch (it is
  /// an atomic snapshot); the engine calls it at quiescent barriers.
  std::size_t pending() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_relaxed));
  }
  const ShardToken& front() const { return buf_[head_raw() & mask_]; }
  ShardToken pop();

  /// Quiescent-only: producer-side spill batch, moved out (ascending seq).
  std::vector<ShardToken> take_overflow() { return std::move(overflow_); }
  std::size_t overflow_size() const { return overflow_.size(); }

  std::size_t capacity() const { return mask_ + 1; }
  std::uint64_t produced() const { return next_seq_; }

 private:
  std::uint64_t head_raw() const {
    return head_.load(std::memory_order_relaxed);
  }

  std::vector<ShardToken> buf_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
  // Producer-only fields (same cache line as tail_ is fine: SPSC).
  std::uint64_t next_seq_ = 0;
  std::vector<ShardToken> overflow_;
};

/// Deterministic quiesce point for cross-shard control (DESIGN.md §15).
///
/// A fenced section runs at the first epoch barrier whose sim-time is
/// >= `due` (any due <= now, including 0, means "the next barrier"), with
/// every worker thread parked, so it may freely read or mutate state owned
/// by any shard. Pending sections execute in (due, seq) order, where seq
/// is assigned deterministically: registrations from a quiescent context
/// (setup code, or another fence's body) take the next global sequence
/// immediately; registrations made mid-epoch on a shard's worker thread
/// are staged per shard and drained at the next barrier in the engine's
/// seeded merge order — the same recipe that makes token injection a pure
/// function of (config, seed, shard_count).
class FenceScheduler {
 public:
  virtual ~FenceScheduler() = default;
  virtual void schedule_fenced(common::TimePoint due,
                               std::function<void()> fn) = 0;
};

/// The Network's view of the engine: resolve an underlay IP that is not
/// local to this shard, and hand off a token to the owning shard.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  struct Remote {
    std::uint32_t shard = 0;
    NodeId node = 0;
  };

  /// Null when the IP is unknown fleet-wide (genuine no-route).
  virtual const Remote* lookup_remote(net::Ipv4Addr ip) const = 0;
  virtual void export_token(std::uint32_t src_shard, std::uint32_t dst_shard,
                            ShardToken tok) = 0;
};

/// Maps racks (ToR/leaf index) onto contiguous shard blocks. Rack-aligned
/// blocks guarantee same-rack traffic is always intra-shard, which is what
/// lets the epoch length be the *cross-rack* minimum latency.
struct ShardMap {
  std::uint32_t shards = 1;
  std::uint32_t racks = 1;

  static ShardMap make(std::uint32_t racks, std::uint32_t shards) {
    ShardMap m;
    m.racks = racks == 0 ? 1 : racks;
    m.shards = shards == 0 ? 1 : (shards > m.racks ? m.racks : shards);
    return m;
  }
  std::uint32_t shard_of_rack(std::uint32_t rack) const {
    if (rack >= racks) return shards - 1;
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(rack) * shards) / racks);
  }
};

struct ShardedEngineConfig {
  /// Lockstep epoch length; must be <= the minimum latency of any
  /// cross-shard path (Topology::min_cross_rack_latency()).
  common::Duration epoch = common::microseconds(8);
  /// Seeds the fixed source-shard merge permutation used at injection.
  std::uint64_t seed = 0;
  /// Per-(src,dst) ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = 1024;
  /// Sparse-epoch fast-forward: when every shard's next event lies beyond
  /// the next epoch boundary and all token rings are empty, jump the
  /// lockstep clock to the boundary just before the earliest event (or
  /// fence barrier) instead of running empty epochs. Pure wall-clock
  /// optimization — outcomes are bit-identical either way.
  bool fast_forward = true;
};

class ShardedEngine final : public ShardRouter, public FenceScheduler {
 public:
  struct Shard {
    EventLoop* loop = nullptr;
    Network* net = nullptr;
  };

  ShardedEngine(std::vector<Shard> shards, ShardedEngineConfig config);

  std::size_t shard_count() const { return shards_.size(); }

  /// Registers a node's underlay IP so other shards can route to it.
  void map_ip(net::Ipv4Addr ip, std::uint32_t shard, NodeId node);

  /// Advances every shard loop to `t` in lockstep epochs using `threads`
  /// workers (clamped to [1, shard_count]). Worker threads only exist for
  /// the duration of the call; on return all loops are quiescent at `t`
  /// and every fenced section due <= t has executed. The result is
  /// identical for every thread count.
  void run_until(common::TimePoint t, int threads);

  // --- ShardRouter ---
  const Remote* lookup_remote(net::Ipv4Addr ip) const override;
  void export_token(std::uint32_t src_shard, std::uint32_t dst_shard,
                    ShardToken tok) override;

  // --- FenceScheduler ---
  /// Safe from any shard's worker mid-epoch (stages per shard, drained at
  /// the next barrier in seeded merge order), from inside another fenced
  /// section, and from quiescent setup code between run_until calls.
  void schedule_fenced(common::TimePoint due, std::function<void()> fn) override;

  // --- observability (quiescent reads) ---
  std::uint64_t epochs_run() const { return epochs_run_; }
  /// Tokens produced but not yet injected (sitting in rings/overflow).
  /// Together with the networks' exported()/imported() counters this
  /// closes the cross-shard conservation identity:
  ///   sum(exported) - sum(imported) == tokens_pending().
  std::uint64_t tokens_pending() const;
  /// Conservative-lookahead violations: tokens whose due time had already
  /// passed when injected (must stay 0; a nonzero count means the epoch
  /// length exceeded the true minimum cross-shard latency).
  std::uint64_t late_tokens() const;
  /// Per-shard busy wall-clock accumulated inside advance phases; the
  /// balance across shards bounds the achievable parallel speedup.
  std::uint64_t shard_busy_ns(std::uint32_t shard) const {
    return busy_ns_.at(shard);
  }
  const std::vector<std::uint32_t>& merge_order() const {
    return merge_order_;
  }
  /// Epochs elided by sparse-epoch fast-forward (would have run empty).
  std::uint64_t epochs_skipped() const { return epochs_skipped_; }
  /// Fenced sections executed so far (across all run_until calls).
  std::uint64_t fenced_sections_run() const { return fences_run_; }
  /// Fenced sections registered but not yet executed. Between run_until
  /// calls this counts exactly the fences whose due time lies beyond the
  /// last run's end — a nonzero value after a "final" window is the
  /// signature of a stuck fence.
  std::uint64_t fences_queued() const { return fences_.size(); }

  /// Wall-clock a shard's worker spent parked at epoch barriers while
  /// driving this shard — the imbalance signal complementing busy_ns.
  struct BarrierWaitStats {
    std::uint64_t epochs = 0;    // barrier crossings measured
    std::uint64_t total_ns = 0;  // summed wait
    std::uint64_t max_ns = 0;    // worst single wait
  };
  const BarrierWaitStats& barrier_wait_stats(std::uint32_t shard) const {
    return wait_.at(shard);
  }
  /// Called by shard `shard`'s owning worker with each epoch's barrier
  /// wait in microseconds — feeds the per-shard metrics histogram. The
  /// callback runs on that worker's thread; it must only touch state owned
  /// by that shard (per-shard registries satisfy this).
  void set_barrier_wait_observer(std::uint32_t shard,
                                 std::function<void(double)> fn) {
    wait_observers_.at(shard) = std::move(fn);
  }

  /// Per-shard wall-clock attribution of run_until time to epoch phases
  /// (DESIGN.md §16). The *_ns fields are wall-clock — never part of a
  /// determinism gate — while `epochs` (barrier crossings, == the
  /// BarrierWaitStats count) is a pure function of (config, seed,
  /// shard_count) and is gated for thread- and run-invariance.
  struct PhaseProfile {
    std::uint64_t epochs = 0;           // barrier crossings measured
    std::uint64_t snapshot_ns = 0;      // snapshot_inbound phases
    std::uint64_t advance_ns = 0;       // advance phases (== shard_busy_ns)
    std::uint64_t barrier_wait_ns = 0;  // parked at epoch barriers
    std::uint64_t fast_forward_ns = 0;  // clock teleports in jump phases
  };
  PhaseProfile phase_profile(std::uint32_t shard) const;

  /// Engine-global profile counters, owned by worker 0 (quiescent reads).
  /// fence_barriers / ff_jumps are event counts (thread- and
  /// run-invariant); fence_wall_ns is wall-clock.
  struct EngineProfile {
    std::uint64_t fence_wall_ns = 0;    // inside run_fences quiesce points
    std::uint64_t fence_barriers = 0;   // quiesce points taken
    std::uint64_t ff_jumps = 0;         // fast-forward teleports taken
  };
  EngineProfile engine_profile() const {
    return EngineProfile{fence_ns_, fence_barriers_, ff_jumps_};
  }

  /// Fence lifecycle tap for the flight recorder: fired once when a fence
  /// receives its global sequence number (executed=false) and once when it
  /// runs (executed=true). Always invoked in a quiescent context.
  struct FenceTracePoint {
    bool executed = false;
    common::TimePoint at = 0;   // sim-time of the tap
    common::TimePoint due = 0;  // requested due time
    std::uint64_t seq = 0;      // global deterministic sequence
  };
  void set_fence_trace(std::function<void(const FenceTracePoint&)> fn) {
    trace_ = std::move(fn);
  }

 private:
  SpscTokenRing& ring(std::uint32_t src, std::uint32_t dst) {
    return rings_[src * shards_.size() + dst];
  }

  /// Phase 1 (all workers quiescent): record how many tokens each inbound
  /// ring holds and take the overflow batches for shard `s`.
  void snapshot_inbound(std::uint32_t s);
  /// Phase 2: inject the snapshotted token prefix in (merge_order, seq)
  /// order, then run the shard's loop to the epoch end.
  void advance_shard(std::uint32_t s, common::TimePoint end);

  struct Fence {
    common::TimePoint due = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  /// True when a barrier at epoch-start `e` must stop for fence work:
  /// either a staged registration waits for its sequence number, or the
  /// earliest queued fence is due at or before `e`. Read-only; called
  /// by every worker with all shards quiescent (barrier-separated from
  /// the writes it observes).
  bool fence_work_pending(common::TimePoint e) const;
  /// Worker 0, everyone else parked: drain staged registrations in seeded
  /// merge order, then execute every fence with due <= now in (due, seq)
  /// order, then refresh every shard's next-event cache.
  void run_fences(common::TimePoint now);
  /// Sparse-epoch fast-forward decision at epoch-start `e` (run end `t`):
  /// returns `e` when the next epoch must run normally, else the
  /// epoch-aligned time (> e) to jump the lockstep clock to.
  common::TimePoint fast_forward_target(common::TimePoint e,
                                        common::TimePoint t) const;

  std::vector<Shard> shards_;
  ShardedEngineConfig config_;
  std::vector<SpscTokenRing> rings_;         // [src * K + dst]
  std::vector<std::size_t> snap_;            // per-ring snapshot counts
  std::vector<std::vector<ShardToken>> staged_;  // per-ring overflow batches
  std::vector<std::uint32_t> merge_order_;   // seeded source permutation
  std::unordered_map<std::uint32_t, Remote> ip_map_;
  std::uint64_t epochs_run_ = 0;
  std::vector<std::uint64_t> late_;          // per-shard, summed on read
  std::vector<std::uint64_t> busy_ns_;       // per-shard busy wall-clock
  // Phase-profiler wall clocks: per-shard fields are written only by the
  // shard's owning worker; the engine-global fence/jump fields only by
  // worker 0 (or quiescent code) — same discipline as busy_ns_/wait_.
  std::vector<std::uint64_t> snapshot_ns_;   // per-shard snapshot phases
  std::vector<std::uint64_t> ff_ns_;         // per-shard fast-forward jumps
  std::uint64_t fence_ns_ = 0;
  std::uint64_t fence_barriers_ = 0;
  std::uint64_t ff_jumps_ = 0;

  // Fence state. fences_ is kept sorted by (due, seq); only worker 0 (or
  // quiescent setup code) touches it. fence_staged_[s] is written only by
  // shard s's worker mid-epoch and drained by worker 0 at barriers.
  std::vector<Fence> fences_;
  std::vector<std::vector<Fence>> fence_staged_;
  std::uint64_t fence_seq_ = 0;
  std::uint64_t fences_run_ = 0;
  std::uint64_t epochs_skipped_ = 0;
  /// Per-shard cache of EventLoop::next_event_at(), refreshed by the
  /// owning worker after each advance (and by worker 0 after fences).
  std::vector<common::TimePoint> next_event_;
  /// Deterministic in-flight accounting for the fast-forward decision,
  /// indexed by *source* shard. Every token present in the rings at an
  /// epoch boundary is injected during the following epoch, so "tokens in
  /// flight from shard s" at a barrier is exactly "exports by s since its
  /// last advance began". xfer_epoch_[s] counts exports during the current
  /// phase (written only by the thread exclusively driving s: its owner
  /// mid-advance, worker 0 inside fences, or quiescent setup code);
  /// xfer_inflight_[s] is the barrier-published total still sitting in
  /// s's outbound rings. fast_forward_target reads only xfer_inflight_ —
  /// never live ring state, which snapshot_inbound mutates concurrently.
  std::vector<std::uint64_t> xfer_epoch_;
  std::vector<std::uint64_t> xfer_inflight_;
  std::vector<BarrierWaitStats> wait_;
  std::vector<std::function<void(double)>> wait_observers_;
  std::function<void(const FenceTracePoint&)> trace_;
};

}  // namespace nezha::sim
