// Discrete-event scheduler with virtual time.
//
// Determinism: events at equal timestamps fire in schedule order (a
// monotonically increasing sequence number breaks ties), so a run is a pure
// function of its inputs and seed.
//
// Storage: callbacks live in a slab of reusable slots; the priority queue
// holds only small POD references (time, seq, slot, generation). That keeps
// heap sift operations cheap (no std::function moves through the heap),
// makes cancel() an O(1) generation-checked flag flip — no tombstone set to
// populate or leak — and gives every slot a stable identity for periodic
// rescheduling. EventIds encode (generation << 32 | slot), so an id from a
// fired or cancelled event can never alias a later event reusing the slot:
// cancel-after-fire and double-cancel are structurally no-ops.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/time.h"

namespace nezha::sim {

using EventId = std::uint64_t;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  common::TimePoint now() const { return now_; }

  /// Schedules cb at absolute time t (>= now). Returns an id for cancel().
  EventId schedule_at(common::TimePoint t, Callback cb);

  /// Schedules cb after a relative delay (clamped to >= 0).
  EventId schedule_after(common::Duration delay, Callback cb);

  /// Schedules cb every `period` (clamped to >= 1ns), first at now + period,
  /// until cancelled. The returned id stays valid across firings — one
  /// cancel() stops the whole series. Replaces the self-rescheduling
  /// shared_ptr<function> pattern for monitor/aging ticks.
  EventId schedule_periodic(common::Duration period, Callback cb);

  /// Cancels a pending event (or a whole periodic series); O(1) and
  /// harmless if already fired, already cancelled, or unknown.
  void cancel(EventId id);

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with timestamp <= t, then sets now to t. Events later than
  /// t stay queued — cancelled queue heads never cause overshoot.
  void run_until(common::TimePoint t);

  /// Runs exactly one event if any; returns false when the queue is empty.
  bool step();

  /// Number of scheduled-and-not-yet-fired events (a periodic series counts
  /// as one). Maintained as a live counter — cannot underflow.
  std::size_t pending() const { return live_; }

 private:
  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;        // bumped on free; stale ids never match
    common::Duration period = -1; // >= 0 marks a periodic slot
    bool armed = false;
  };
  /// POD heap entry; the slab keeps the callback.
  struct QEntry {
    common::TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const QEntry& a, const QEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  /// Pops cancelled/stale heads; afterwards the head (if any) is live.
  void drop_dead_heads();

  bool fire_next();

  common::TimePoint now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::priority_queue<QEntry, std::vector<QEntry>, Later> queue_;
};

}  // namespace nezha::sim
