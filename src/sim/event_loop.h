// Discrete-event scheduler with virtual time.
//
// Determinism: events at equal timestamps fire in schedule order (a
// monotonically increasing sequence number breaks ties), so a run is a pure
// function of its inputs and seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/time.h"

namespace nezha::sim {

using EventId = std::uint64_t;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  common::TimePoint now() const { return now_; }

  /// Schedules cb at absolute time t (>= now). Returns an id for cancel().
  EventId schedule_at(common::TimePoint t, Callback cb);

  /// Schedules cb after a relative delay (clamped to >= 0).
  EventId schedule_after(common::Duration delay, Callback cb);

  /// Cancels a pending event; harmless if already fired or unknown.
  void cancel(EventId id);

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with timestamp <= t, then sets now to t.
  void run_until(common::TimePoint t);

  /// Runs exactly one event if any; returns false when the queue is empty.
  bool step();

  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    common::TimePoint at;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  bool fire_next();

  common::TimePoint now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace nezha::sim
