// Discrete-event scheduler with virtual time.
//
// Determinism: events at equal timestamps fire in schedule order (a
// monotonically increasing sequence number breaks ties), so a run is a pure
// function of its inputs and seed.
//
// Storage: callbacks live in a slab of reusable slots; the priority queue
// holds only small POD references (time, seq, slot, generation). That keeps
// heap sift operations cheap (no std::function moves through the heap),
// makes cancel() an O(1) generation-checked flag flip — no tombstone set to
// populate or leak — and gives every slot a stable identity for periodic
// rescheduling. EventIds encode (generation << 32 | slot), so an id from a
// fired or cancelled event can never alias a later event reusing the slot:
// cancel-after-fire and double-cancel are structurally no-ops.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "src/common/time.h"

namespace nezha::sim {

using EventId = std::uint64_t;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Fast-path callback shape: plain function pointer + context + one word.
  using RawFn = void (*)(void* ctx, std::uint64_t arg);

  common::TimePoint now() const { return now_; }

  /// Schedules cb at absolute time t (>= now). Returns an id for cancel().
  EventId schedule_at(common::TimePoint t, Callback cb);

  /// schedule_at for hot internal call sites: fires fn(ctx, arg) at t with
  /// no std::function construction, move, or destruction on either the
  /// schedule or the fire side. Ordering, ids, and cancel() are identical
  /// to schedule_at — only the callback storage differs.
  EventId schedule_raw_at(common::TimePoint t, RawFn fn, void* ctx,
                          std::uint64_t arg = 0);

  /// Schedules cb after a relative delay (clamped to >= 0).
  EventId schedule_after(common::Duration delay, Callback cb);

  /// Schedules cb every `period` (clamped to >= 1ns), first at now + period,
  /// until cancelled. The returned id stays valid across firings — one
  /// cancel() stops the whole series. Replaces the self-rescheduling
  /// shared_ptr<function> pattern for monitor/aging ticks.
  EventId schedule_periodic(common::Duration period, Callback cb);

  /// Cancels a pending event (or a whole periodic series); O(1) and
  /// harmless if already fired, already cancelled, or unknown.
  void cancel(EventId id);

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with timestamp <= t, then sets now to t. Events later than
  /// t stay queued — cancelled queue heads never cause overshoot.
  void run_until(common::TimePoint t);

  /// Runs exactly one event if any; returns false when the queue is empty.
  bool step();

  /// Sentinel returned by next_event_at() when no live event is queued.
  static constexpr common::TimePoint kNoEvent =
      std::numeric_limits<common::TimePoint>::max();

  /// Timestamp of the earliest live pending event, or kNoEvent. Pops
  /// cancelled heads first (amortized O(1)), so it mutates the heap: call
  /// it only from the thread that owns this loop, while it is quiescent.
  /// The sharded engine uses it to decide sparse-epoch fast-forward.
  common::TimePoint next_event_at();

  /// Number of scheduled-and-not-yet-fired events (a periodic series counts
  /// as one). Maintained as a live counter — cannot underflow.
  std::size_t pending() const { return live_; }

 private:
  struct Slot {
    Callback cb;
    RawFn raw = nullptr;          // set => fire raw(ctx, arg); cb stays empty
    void* raw_ctx = nullptr;
    std::uint64_t raw_arg = 0;
    std::uint32_t gen = 1;        // bumped on free; stale ids never match
    common::Duration period = -1; // >= 0 marks a periodic slot
    bool armed = false;
  };
  /// POD heap entry; the slab keeps the callback.
  struct QEntry {
    common::TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// (at, seq) is a strict total order (seq is unique), so ANY min-heap over
  /// it pops the exact same event sequence — the container layout is free to
  /// change without touching determinism. A 4-ary heap is half as deep as a
  /// binary one and its four children sit in adjacent cache lines, which
  /// measurably cuts the dependent loads per sift in this pop-heavy loop.
  static bool before(const QEntry& a, const QEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  void heap_push(QEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }
  void heap_pop() {
    const QEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      std::size_t min_child = first;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap_[c], heap_[min_child])) min_child = c;
      }
      if (!before(heap_[min_child], last)) break;
      heap_[i] = heap_[min_child];
      i = min_child;
    }
    heap_[i] = last;
  }

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  /// Pops cancelled/stale heads; afterwards the head (if any) is live.
  void drop_dead_heads();

  bool fire_next();

  common::TimePoint now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<QEntry> heap_;  // 4-ary min-heap over (at, seq)
};

}  // namespace nezha::sim
