// Classic pcap (libpcap) file writer for simulated traffic.
//
// Packets in this library serialize to real Ethernet frames, so captures
// taken from a simulation open directly in Wireshark/tcpdump — the VXLAN
// overlay, the inner frame, and (as unknown payload between VXLAN and the
// inner Ethernet header) the Nezha carrier shim. Attach via
// sim::Network::set_trace to capture everything crossing the fabric.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/common/time.h"
#include "src/net/packet.h"

namespace nezha::net {

class PcapWriter {
 public:
  /// Opens (truncates) `path` and writes the pcap global header.
  static common::Result<PcapWriter> open(const std::string& path);

  PcapWriter(PcapWriter&&) = default;
  PcapWriter& operator=(PcapWriter&&) = default;

  /// Appends one packet record stamped with the virtual capture time.
  void write(const Packet& pkt, common::TimePoint at);

  /// Appends pre-serialized frame bytes.
  void write_bytes(std::span<const std::uint8_t> frame, common::TimePoint at);

  std::uint64_t packets_written() const { return packets_; }
  void flush() { out_->flush(); }

 private:
  explicit PcapWriter(std::unique_ptr<std::ofstream> out)
      : out_(std::move(out)) {}

  std::unique_ptr<std::ofstream> out_;
  std::uint64_t packets_ = 0;
};

}  // namespace nezha::net
