// Byte-level protocol header codecs: Ethernet, IPv4, UDP, TCP, VXLAN.
//
// The simulator passes structured packets between nodes, but every header
// here serializes to real network-order bytes and parses back; round-trip
// identity is enforced by tests. Wire sizes derived from these codecs feed
// the link bandwidth model, so encapsulation overhead is accounted honestly.
#pragma once

#include <cstdint>

#include "src/net/addr.h"
#include "src/net/bytes.h"
#include "src/net/five_tuple.h"

namespace nezha::net {

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kVxlanUdpPort = 4789;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = kEtherTypeIpv4;

  void serialize(ByteWriter& w) const;
  static EthernetHeader parse(ByteReader& r);
  bool operator==(const EthernetHeader&) const = default;
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // filled by the packet serializer
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kTcp;
  Ipv4Addr src;
  Ipv4Addr dst;

  void serialize(ByteWriter& w) const;  // computes header checksum
  static Ipv4Header parse(ByteReader& r);
  bool operator==(const Ipv4Header&) const = default;
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // filled by the packet serializer

  void serialize(ByteWriter& w) const;
  static UdpHeader parse(ByteReader& r);
  bool operator==(const UdpHeader&) const = default;
};

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  std::uint8_t to_byte() const;
  static TcpFlags from_byte(std::uint8_t b);
  bool operator==(const TcpFlags&) const = default;
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // no options
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 65535;

  void serialize(ByteWriter& w) const;
  static TcpHeader parse(ByteReader& r);
  bool operator==(const TcpHeader&) const = default;
};

struct VxlanHeader {
  static constexpr std::size_t kSize = 8;
  std::uint32_t vni = 0;  // 24 bits on the wire

  void serialize(ByteWriter& w) const;
  static VxlanHeader parse(ByteReader& r);
  bool operator==(const VxlanHeader&) const = default;
};

/// RFC 1071 internet checksum over a byte range.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace nezha::net
