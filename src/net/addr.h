// IPv4 and MAC address value types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace nezha::net {

/// IPv4 address stored host-order for arithmetic; serialized big-endian.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : v_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : v_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
           (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return v_; }
  std::string to_string() const;

  /// Parses dotted-quad; returns 0.0.0.0 on malformed input (see try_parse).
  static Ipv4Addr parse(const std::string& s);
  static bool try_parse(const std::string& s, Ipv4Addr& out);

  auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t v_ = 0;
};

/// Ethernet MAC address.
class MacAddr {
 public:
  constexpr MacAddr() = default;
  constexpr explicit MacAddr(std::uint64_t low48) {
    for (int i = 5; i >= 0; --i) {
      b_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(low48);
      low48 >>= 8;
    }
  }
  explicit MacAddr(const std::array<std::uint8_t, 6>& bytes) : b_(bytes) {}

  const std::array<std::uint8_t, 6>& bytes() const { return b_; }
  std::uint64_t value() const {
    std::uint64_t v = 0;
    for (auto byte : b_) v = (v << 8) | byte;
    return v;
  }
  std::string to_string() const;

  auto operator<=>(const MacAddr&) const = default;

 private:
  std::array<std::uint8_t, 6> b_{};
};

}  // namespace nezha::net

template <>
struct std::hash<nezha::net::Ipv4Addr> {
  std::size_t operator()(const nezha::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<nezha::net::MacAddr> {
  std::size_t operator()(const nezha::net::MacAddr& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.value());
  }
};
