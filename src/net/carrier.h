// Nezha carrier header: the NSH-like shim (§3.2.1, RFC 8300 in the paper)
// that lets data packets transport the processing inputs that the receiving
// side lacks — session state in TX packets travelling BE→FE, pre-actions in
// RX packets travelling FE→BE, plus notify and stateful-decap info TLVs.
//
// The carrier is a base header followed by TLVs with opaque payloads; the
// Nezha core defines the payload encodings (keeping this layer free of any
// dependency on flow/NF types).
//
// TLV storage is an inline fixed-capacity arena (no heap): the simulated
// datapath attaches at most three small TLVs per packet, so a bounded
// in-object buffer keeps Packet copies and carrier construction
// allocation-free. Oversized or over-count TLV sets are rejected at add()
// and parse() time — they cannot occur on the simulated wire.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>

#include "src/common/result.h"
#include "src/net/bytes.h"

namespace nezha::net {

enum class CarrierTlvType : std::uint16_t {
  kStateSnapshot = 1,  // BE→FE on TX: the session state needed at the FE
  kPreActions = 2,     // FE→BE on RX: bidirectional pre-actions from tables
  kNotify = 3,         // FE→BE notify packet: rule-table-derived state update
  kDecapInfo = 4,      // FE→BE on RX: info lost at FE (e.g. overlay src IP)
  kVnicId = 5,         // which offloaded vNIC this packet belongs to
};

/// Flags in the carrier base header.
struct CarrierFlags {
  bool is_notify = false;   // standalone notify packet (no user payload)
  bool from_frontend = false;  // direction marker for debugging/validation

  bool operator==(const CarrierFlags&) const = default;
};

class CarrierHeader {
 public:
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kBaseSize = 4;  // version, flags, total length
  /// Inline capacity. The datapath attaches ≤3 TLVs (vNIC id + snapshot or
  /// pre-actions + decap info) totalling ≤88 payload bytes. Kept tight on
  /// purpose: Packet is trivially copyable, so every per-hop move memcpys
  /// sizeof(Packet) bytes — arena capacity is paid on every move, not just
  /// when TLVs are present.
  static constexpr std::size_t kMaxTlvs = 4;
  static constexpr std::size_t kArenaCapacity = 112;

  CarrierFlags flags;

  /// Copies `value` into the inline arena. Returns false (and adds nothing)
  /// if TLV count or arena capacity would be exceeded.
  bool add(CarrierTlvType type, std::span<const std::uint8_t> value);
  bool add(CarrierTlvType type, std::initializer_list<std::uint8_t> value) {
    return add(type, std::span<const std::uint8_t>(value.begin(), value.size()));
  }
  /// Reserves `len` arena bytes for a TLV and returns a writable view of them
  /// so fixed-size codecs can encode in place (no intermediate buffer).
  /// Empty span on capacity overflow.
  std::span<std::uint8_t> add_uninit(CarrierTlvType type, std::size_t len);

  /// The payload of the first TLV of `type`; nullopt if absent. The view
  /// aliases this header's inline arena.
  std::optional<std::span<const std::uint8_t>> find(CarrierTlvType type) const;
  bool has(CarrierTlvType type) const { return find(type).has_value(); }

  std::size_t tlv_count() const { return count_; }
  CarrierTlvType tlv_type(std::size_t i) const { return descs_[i].type; }
  std::span<const std::uint8_t> tlv_value(std::size_t i) const {
    return {arena_.data() + descs_[i].offset, descs_[i].len};
  }
  bool empty() const { return count_ == 0; }

  /// Serialized size in bytes (base + sum of TLVs).
  std::size_t wire_size() const;

  void serialize(ByteWriter& w) const;
  static common::Result<CarrierHeader> parse(ByteReader& r);

  bool operator==(const CarrierHeader& other) const;

 private:
  struct TlvDesc {
    CarrierTlvType type = CarrierTlvType::kStateSnapshot;
    std::uint16_t offset = 0;
    std::uint16_t len = 0;
  };

  std::array<TlvDesc, kMaxTlvs> descs_{};
  std::array<std::uint8_t, kArenaCapacity> arena_{};
  std::uint16_t used_ = 0;   // arena bytes consumed
  std::uint8_t count_ = 0;   // TLVs present
};

}  // namespace nezha::net
