// Nezha carrier header: the NSH-like shim (§3.2.1, RFC 8300 in the paper)
// that lets data packets transport the processing inputs that the receiving
// side lacks — session state in TX packets travelling BE→FE, pre-actions in
// RX packets travelling FE→BE, plus notify and stateful-decap info TLVs.
//
// The carrier is a base header followed by TLVs with opaque payloads; the
// Nezha core defines the payload encodings (keeping this layer free of any
// dependency on flow/NF types).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/net/bytes.h"

namespace nezha::net {

enum class CarrierTlvType : std::uint16_t {
  kStateSnapshot = 1,  // BE→FE on TX: the session state needed at the FE
  kPreActions = 2,     // FE→BE on RX: bidirectional pre-actions from tables
  kNotify = 3,         // FE→BE notify packet: rule-table-derived state update
  kDecapInfo = 4,      // FE→BE on RX: info lost at FE (e.g. overlay src IP)
  kVnicId = 5,         // which offloaded vNIC this packet belongs to
};

struct CarrierTlv {
  CarrierTlvType type = CarrierTlvType::kStateSnapshot;
  std::vector<std::uint8_t> value;

  bool operator==(const CarrierTlv&) const = default;
};

/// Flags in the carrier base header.
struct CarrierFlags {
  bool is_notify = false;   // standalone notify packet (no user payload)
  bool from_frontend = false;  // direction marker for debugging/validation

  bool operator==(const CarrierFlags&) const = default;
};

class CarrierHeader {
 public:
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kBaseSize = 4;  // version, flags, total length

  CarrierFlags flags;

  void add(CarrierTlvType type, std::vector<std::uint8_t> value);
  const CarrierTlv* find(CarrierTlvType type) const;
  const std::vector<CarrierTlv>& tlvs() const { return tlvs_; }
  bool empty() const { return tlvs_.empty(); }

  /// Serialized size in bytes (base + sum of TLVs).
  std::size_t wire_size() const;

  void serialize(ByteWriter& w) const;
  static common::Result<CarrierHeader> parse(ByteReader& r);

  bool operator==(const CarrierHeader&) const = default;

 private:
  std::vector<CarrierTlv> tlvs_;
};

}  // namespace nezha::net
