#include "src/net/addr.h"

#include <cstdio>

namespace nezha::net {

std::string Ipv4Addr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v_ >> 24) & 0xff,
                (v_ >> 16) & 0xff, (v_ >> 8) & 0xff, v_ & 0xff);
  return buf;
}

bool Ipv4Addr::try_parse(const std::string& s, Ipv4Addr& out) {
  unsigned a, b, c, d;
  char tail;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4) {
    return false;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) return false;
  out = Ipv4Addr(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                 static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
  return true;
}

Ipv4Addr Ipv4Addr::parse(const std::string& s) {
  Ipv4Addr out;
  try_parse(s, out);
  return out;
}

std::string MacAddr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", b_[0],
                b_[1], b_[2], b_[3], b_[4], b_[5]);
  return buf;
}

}  // namespace nezha::net
