// The simulator's packet representation.
//
// A Packet is a structured view of a frame: an inner Ethernet/IPv4/TCP|UDP
// frame, optionally wrapped in a VXLAN overlay, with an optional Nezha
// carrier shim between the VXLAN header and the inner frame. serialize()
// produces the exact wire bytes and parse() inverts it; wire_size() is the
// serialized length and drives the link bandwidth model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/time.h"
#include "src/net/addr.h"
#include "src/net/carrier.h"
#include "src/net/five_tuple.h"
#include "src/net/headers.h"

namespace nezha::net {

/// The tenant-visible inner frame. payload_len models application bytes; the
/// payload content itself is irrelevant to any vSwitch decision and is
/// serialized as zeros.
struct InnerFrame {
  MacAddr src_mac;
  MacAddr dst_mac;
  FiveTuple ft;
  TcpFlags tcp_flags;          // meaningful when ft.proto == kTcp
  std::uint32_t seq = 0;       // TCP sequence number
  std::uint32_t ack_no = 0;    // TCP acknowledgement number
  std::uint16_t payload_len = 0;

  std::size_t wire_size() const;
  bool operator==(const InnerFrame&) const = default;
};

/// Underlay VXLAN overlay: outer Ethernet + IPv4 + UDP + VXLAN.
struct Overlay {
  MacAddr src_mac;
  MacAddr dst_mac;
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0xbeef;  // 5-tuple-entropy source port
  std::uint32_t vni = 0;            // carries the VPC ID on the wire

  static constexpr std::size_t kSize = EthernetHeader::kSize +
                                       Ipv4Header::kSize + UdpHeader::kSize +
                                       VxlanHeader::kSize;
  bool operator==(const Overlay&) const = default;
};

struct Packet {
  std::optional<Overlay> overlay;
  std::optional<CarrierHeader> carrier;
  InnerFrame inner;

  // --- simulation metadata (never serialized) ---
  std::uint64_t id = 0;                   // unique per generated packet
  common::TimePoint created_at = 0;       // for end-to-end latency
  std::uint32_t vpc_id = 0;               // tenant; mirrored into vni on encap

  bool encapsulated() const { return overlay.has_value(); }

  /// Wraps the inner frame in a VXLAN overlay addressed to (dst_ip, dst_mac),
  /// setting the VNI from vpc_id and deriving an entropy source port from the
  /// inner 5-tuple so underlay ECMP stays flow-consistent.
  void encap(Ipv4Addr outer_src_ip, MacAddr outer_src_mac, Ipv4Addr outer_dst_ip,
             MacAddr outer_dst_mac);

  /// Removes the overlay (and any carrier shim). Returns the removed overlay.
  std::optional<Overlay> decap();

  std::size_t wire_size() const;
  std::vector<std::uint8_t> serialize() const;
  static common::Result<Packet> parse(std::span<const std::uint8_t> bytes);

  std::string to_string() const;
};

/// A factory for inner frames with convenient defaults, used by workloads
/// and tests.
Packet make_tcp_packet(const FiveTuple& ft, TcpFlags flags,
                       std::uint16_t payload_len = 0, std::uint32_t vpc_id = 0);
Packet make_udp_packet(const FiveTuple& ft, std::uint16_t payload_len = 0,
                       std::uint32_t vpc_id = 0);

}  // namespace nezha::net
