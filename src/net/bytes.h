// Big-endian byte serialization helpers used by all header codecs.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace nezha::net {

/// Appends big-endian (network order) fields to a growing byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Reads big-endian fields from a byte span with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!require(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                      data_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t hi = u16();
    std::uint32_t lo = u16();
    return (hi << 16) | lo;
  }
  std::uint64_t u64() {
    std::uint64_t hi = u32();
    std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }
  std::vector<std::uint8_t> bytes(std::size_t n) {
    if (!require(n)) return {};
    std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                  data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }
  void skip(std::size_t n) {
    if (require(n)) pos_ += n;
  }

 private:
  bool require(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return ok_;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace nezha::net
