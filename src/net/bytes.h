// Big-endian byte serialization helpers used by all header codecs.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace nezha::net {

/// Appends big-endian (network order) fields to a growing byte buffer.
/// Multi-byte writes grow the vector once (resize) and store directly —
/// no per-byte push_back on the codec hot path.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    std::uint8_t* p = grow(2);
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
  }
  void u32(std::uint32_t v) {
    std::uint8_t* p = grow(4);
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
  }
  void u64(std::uint64_t v) {
    std::uint8_t* p = grow(8);
    for (int i = 0; i < 8; ++i) {
      p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
    }
  }
  void bytes(std::span<const std::uint8_t> data) {
    if (data.empty()) return;
    std::uint8_t* p = grow(data.size());
    std::memcpy(p, data.data(), data.size());
  }
  void zeros(std::size_t n) { out_.resize(out_.size() + n); }

  std::size_t size() const { return out_.size(); }

 private:
  std::uint8_t* grow(std::size_t n) {
    const std::size_t at = out_.size();
    out_.resize(at + n);
    return out_.data() + at;
  }

  std::vector<std::uint8_t>& out_;
};

/// Big-endian writer over a fixed caller-provided buffer: the zero-allocation
/// counterpart of ByteWriter for fixed-size encodings (pre-actions, state
/// snapshots, vNIC ids). Overrunning the buffer is a programming error
/// (asserted); fixed-size codecs know their exact length at compile time.
class FixedWriter {
 public:
  explicit FixedWriter(std::span<std::uint8_t> out) : out_(out) {}

  void u8(std::uint8_t v) {
    assert(pos_ + 1 <= out_.size());
    out_[pos_++] = v;
  }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  std::size_t written() const { return pos_; }

 private:
  std::span<std::uint8_t> out_;
  std::size_t pos_ = 0;
};

/// Reads big-endian fields from a byte span with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!require(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                      data_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t hi = u16();
    std::uint32_t lo = u16();
    return (hi << 16) | lo;
  }
  std::uint64_t u64() {
    std::uint64_t hi = u32();
    std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }
  /// A view of the next n bytes of the underlying buffer (no copy); empty
  /// span on bounds failure. The view aliases the reader's input buffer.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!require(n)) return {};
    std::span<const std::uint8_t> out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  void skip(std::size_t n) {
    if (require(n)) pos_ += n;
  }

 private:
  bool require(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return ok_;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace nezha::net
