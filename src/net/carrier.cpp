#include "src/net/carrier.h"

namespace nezha::net {

void CarrierHeader::add(CarrierTlvType type, std::vector<std::uint8_t> value) {
  tlvs_.push_back(CarrierTlv{type, std::move(value)});
}

const CarrierTlv* CarrierHeader::find(CarrierTlvType type) const {
  for (const auto& tlv : tlvs_) {
    if (tlv.type == type) return &tlv;
  }
  return nullptr;
}

std::size_t CarrierHeader::wire_size() const {
  std::size_t n = kBaseSize;
  for (const auto& tlv : tlvs_) n += 4 + tlv.value.size();
  return n;
}

void CarrierHeader::serialize(ByteWriter& w) const {
  w.u8(kVersion);
  std::uint8_t f = 0;
  if (flags.is_notify) f |= 0x01;
  if (flags.from_frontend) f |= 0x02;
  w.u8(f);
  w.u16(static_cast<std::uint16_t>(wire_size()));
  for (const auto& tlv : tlvs_) {
    w.u16(static_cast<std::uint16_t>(tlv.type));
    w.u16(static_cast<std::uint16_t>(tlv.value.size()));
    w.bytes(tlv.value);
  }
}

common::Result<CarrierHeader> CarrierHeader::parse(ByteReader& r) {
  CarrierHeader h;
  const std::uint8_t version = r.u8();
  if (version != kVersion) {
    return common::make_error("carrier: unsupported version");
  }
  const std::uint8_t f = r.u8();
  h.flags.is_notify = f & 0x01;
  h.flags.from_frontend = f & 0x02;
  const std::uint16_t total = r.u16();
  if (total < kBaseSize) return common::make_error("carrier: bad length");
  std::size_t consumed = kBaseSize;
  while (consumed < total) {
    const auto type = static_cast<CarrierTlvType>(r.u16());
    const std::uint16_t len = r.u16();
    auto value = r.bytes(len);
    if (!r.ok()) return common::make_error("carrier: truncated TLV");
    h.tlvs_.push_back(CarrierTlv{type, std::move(value)});
    consumed += 4 + len;
  }
  if (consumed != total || !r.ok()) {
    return common::make_error("carrier: length mismatch");
  }
  return h;
}

}  // namespace nezha::net
