#include "src/net/carrier.h"

#include <algorithm>
#include <cstring>

namespace nezha::net {

bool CarrierHeader::add(CarrierTlvType type,
                        std::span<const std::uint8_t> value) {
  std::span<std::uint8_t> dst = add_uninit(type, value.size());
  if (dst.size() != value.size()) return false;
  if (!value.empty()) std::memcpy(dst.data(), value.data(), value.size());
  return true;
}

std::span<std::uint8_t> CarrierHeader::add_uninit(CarrierTlvType type,
                                                  std::size_t len) {
  if (count_ >= kMaxTlvs || used_ + len > kArenaCapacity) return {};
  TlvDesc& d = descs_[count_];
  d.type = type;
  d.offset = used_;
  d.len = static_cast<std::uint16_t>(len);
  used_ = static_cast<std::uint16_t>(used_ + len);
  ++count_;
  return {arena_.data() + d.offset, d.len};
}

std::optional<std::span<const std::uint8_t>> CarrierHeader::find(
    CarrierTlvType type) const {
  for (std::size_t i = 0; i < count_; ++i) {
    if (descs_[i].type == type) return tlv_value(i);
  }
  return std::nullopt;
}

std::size_t CarrierHeader::wire_size() const {
  return kBaseSize + 4 * static_cast<std::size_t>(count_) + used_;
}

void CarrierHeader::serialize(ByteWriter& w) const {
  w.u8(kVersion);
  std::uint8_t f = 0;
  if (flags.is_notify) f |= 0x01;
  if (flags.from_frontend) f |= 0x02;
  w.u8(f);
  w.u16(static_cast<std::uint16_t>(wire_size()));
  for (std::size_t i = 0; i < count_; ++i) {
    w.u16(static_cast<std::uint16_t>(descs_[i].type));
    w.u16(descs_[i].len);
    w.bytes(tlv_value(i));
  }
}

common::Result<CarrierHeader> CarrierHeader::parse(ByteReader& r) {
  CarrierHeader h;
  const std::uint8_t version = r.u8();
  if (version != kVersion) {
    return common::make_error("carrier: unsupported version");
  }
  const std::uint8_t f = r.u8();
  h.flags.is_notify = f & 0x01;
  h.flags.from_frontend = f & 0x02;
  const std::uint16_t total = r.u16();
  if (total < kBaseSize) return common::make_error("carrier: bad length");
  std::size_t consumed = kBaseSize;
  while (consumed < total) {
    const auto type = static_cast<CarrierTlvType>(r.u16());
    const std::uint16_t len = r.u16();
    auto value = r.bytes(len);
    if (!r.ok()) return common::make_error("carrier: truncated TLV");
    if (!h.add(type, value)) {
      return common::make_error("carrier: TLV capacity exceeded");
    }
    consumed += 4 + len;
  }
  if (consumed != total || !r.ok()) {
    return common::make_error("carrier: length mismatch");
  }
  return h;
}

bool CarrierHeader::operator==(const CarrierHeader& other) const {
  if (flags != other.flags || count_ != other.count_) return false;
  for (std::size_t i = 0; i < count_; ++i) {
    if (descs_[i].type != other.descs_[i].type) return false;
    const auto a = tlv_value(i);
    const auto b = other.tlv_value(i);
    if (!std::ranges::equal(a, b)) return false;
  }
  return true;
}

}  // namespace nezha::net
